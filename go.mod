module prionn

go 1.22
