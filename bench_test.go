// Package prionn_bench benchmarks every table and figure of the paper's
// evaluation (DESIGN.md §3), plus the substrate kernels and the DESIGN.md
// ablations. Figure benchmarks run the same code paths as the
// cmd/experiments runners at benchmark-friendly scale; full-scale
// regeneration lives in cmd/experiments.
package prionn_bench

import (
	"math/rand"
	"sync"
	"testing"

	"prionn/internal/analysis"
	"prionn/internal/experiments"
	"prionn/internal/ioaware"
	"prionn/internal/mapping"
	"prionn/internal/mlbase"
	"prionn/internal/nn"
	"prionn/internal/prionn"
	"prionn/internal/sched"
	"prionn/internal/tensor"
	"prionn/internal/trace"
	"prionn/internal/word2vec"
)

// benchJobs caches a shared trace across benchmarks.
var benchJobs = trace.Completed(trace.Generate(trace.Config{Seed: 77, Jobs: 600, Users: 30, Apps: 8}))

func benchScripts(n int) []string {
	if n > len(benchJobs) {
		n = len(benchJobs)
	}
	s := make([]string, n)
	for i := 0; i < n; i++ {
		s[i] = benchJobs[i].Script
	}
	return s
}

var benchEmb = word2vec.Train(benchScripts(100),
	word2vec.Config{Dim: 4, Window: 4, Negative: 5, LR: 0.05, Epochs: 1, Seed: 1, MaxPairs: 20000})

// --- Fig. 3: transformation cost -----------------------------------------

func benchTransform(b *testing.B, tr mapping.Transform) {
	scripts := benchScripts(100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mapping.MapBatch(scripts, tr, 64, 64)
	}
}

func BenchmarkFig3TransformBinary(b *testing.B)   { benchTransform(b, mapping.Binary{}) }
func BenchmarkFig3TransformSimple(b *testing.B)   { benchTransform(b, mapping.Simple{}) }
func BenchmarkFig3TransformOneHot(b *testing.B)   { benchTransform(b, mapping.OneHot{}) }
func BenchmarkFig3TransformWord2vec(b *testing.B) { benchTransform(b, mapping.Word2Vec{Emb: benchEmb}) }

// --- Fig. 4: 2D-CNN training cost per transformation ----------------------

func benchTrain(b *testing.B, tk prionn.TransformKind, mk prionn.ModelKind) {
	cfg := prionn.TinyConfig()
	cfg.Transform = tk
	cfg.Model = mk
	cfg.PredictIO = false
	cfg.Epochs = 1
	window := benchJobs[:40]
	scripts := benchScripts(40)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := prionn.New(cfg, scripts)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := p.Train(window); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4TrainBinary(b *testing.B) { benchTrain(b, prionn.TransformBinary, prionn.Model2DCNN) }
func BenchmarkFig4TrainSimple(b *testing.B) { benchTrain(b, prionn.TransformSimple, prionn.Model2DCNN) }
func BenchmarkFig4TrainOneHot(b *testing.B) { benchTrain(b, prionn.TransformOneHot, prionn.Model2DCNN) }
func BenchmarkFig4TrainWord2vec(b *testing.B) {
	benchTrain(b, prionn.TransformWord2Vec, prionn.Model2DCNN)
}

// --- Figs. 5/7: online-loop accuracy runs ---------------------------------

func benchOnline(b *testing.B, mutate func(*prionn.Config)) {
	jobs := trace.Generate(trace.Config{Seed: 5, Jobs: 200, Users: 15, Apps: 5})
	cfg := prionn.TinyConfig()
	cfg.RetrainEvery = 50
	cfg.TrainWindow = 50
	cfg.Epochs = 1
	cfg.PredictIO = false
	mutate(&cfg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := prionn.RunOnline(jobs, cfg, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5OnlineBinary(b *testing.B) {
	benchOnline(b, func(c *prionn.Config) { c.Transform = prionn.TransformBinary })
}

func BenchmarkFig5OnlineWord2vec(b *testing.B) {
	benchOnline(b, func(c *prionn.Config) { c.Transform = prionn.TransformWord2Vec })
}

// --- Fig. 6: training cost per model --------------------------------------

func BenchmarkFig6TrainNN(b *testing.B) { benchTrain(b, prionn.TransformWord2Vec, prionn.ModelNN) }
func BenchmarkFig6Train1DCNN(b *testing.B) {
	benchTrain(b, prionn.TransformWord2Vec, prionn.Model1DCNN)
}
func BenchmarkFig6Train2DCNN(b *testing.B) {
	benchTrain(b, prionn.TransformWord2Vec, prionn.Model2DCNN)
}

func BenchmarkFig7OnlineNN(b *testing.B) {
	benchOnline(b, func(c *prionn.Config) { c.Model = prionn.ModelNN })
}

func BenchmarkFig7Online1DCNN(b *testing.B) {
	benchOnline(b, func(c *prionn.Config) { c.Model = prionn.Model1DCNN })
}

func BenchmarkFig7Online2DCNN(b *testing.B) {
	benchOnline(b, func(c *prionn.Config) { c.Model = prionn.Model2DCNN })
}

// --- Table 2: RF on SDSC-like traces --------------------------------------

func benchTable2(b *testing.B, cfg trace.Config) {
	o := experiments.Options{Jobs: cfg.Jobs, Seed: 1, Cfg: prionn.TinyConfig()}
	_ = o
	jobs := trace.Completed(trace.Generate(cfg))
	x := make([][]float64, len(jobs))
	y := make([]float64, len(jobs))
	// The Table-2 pipeline: extract + encode + fit + MAE.
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc := newEncoderForBench()
		for k, j := range jobs {
			x[k] = enc(j)
			y[k] = float64(j.ActualMin())
		}
		cut := len(jobs) * 3 / 4
		rf := mlbase.NewRandomForest(mlbase.ForestConfig{Trees: 10, MaxDepth: 10, Seed: 1})
		rf.Fit(x[:cut], y[:cut])
		mlbase.MAE(rf, x[cut:], y[cut:])
	}
}

func BenchmarkTable2SDSC95(b *testing.B) { benchTable2(b, trace.SDSC95Config(500)) }
func BenchmarkTable2SDSC96(b *testing.B) { benchTable2(b, trace.SDSC96Config(500)) }

// --- Figs. 8/9: evaluation experiments at benchmark scale -----------------

func benchExperiment(b *testing.B, id string) {
	cfg := prionn.TinyConfig()
	cfg.RetrainEvery = 60
	cfg.TrainWindow = 60
	cfg.Epochs = 1
	o := experiments.Options{Jobs: 250, Seed: 3, Cfg: cfg, Nodes: 256, Samples: 2, SampleJobs: 120}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Run(id, o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8RuntimeEvaluation(b *testing.B)  { benchExperiment(b, "fig8") }
func BenchmarkFig9IOEvaluation(b *testing.B)       { benchExperiment(b, "fig9") }
func BenchmarkFig11Turnaround(b *testing.B)        { benchExperiment(b, "fig11") }
func BenchmarkFig12SystemIOPerfect(b *testing.B)   { benchExperiment(b, "fig12") }
func BenchmarkFig13BurstsPerfect(b *testing.B)     { benchExperiment(b, "fig13") }
func BenchmarkFig14SystemIOPredicted(b *testing.B) { benchExperiment(b, "fig14") }
func BenchmarkFig15BurstsPredicted(b *testing.B)   { benchExperiment(b, "fig15") }

// --- Ablations (DESIGN.md §4) ----------------------------------------------

func BenchmarkAblationWarmStart(b *testing.B) { benchExperiment(b, "ablate-warm") }

// --- Scheduler and IO substrate --------------------------------------------

func BenchmarkSchedSnapshotTurnaround(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	var items []sched.Item
	clock := int64(0)
	for i := 0; i < 300; i++ {
		clock += int64(rng.Intn(30))
		items = append(items, sched.Item{
			ID: i, Submit: clock, Nodes: 1 + rng.Intn(16),
			RuntimeSec: int64(30 + rng.Intn(600)),
		})
	}
	pred := func(id int) int64 { return 300 }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sched.PredictTurnarounds(items, sched.SimConfig{Nodes: 64, Backfill: true}, pred); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIOSeries(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	ivs := make([]ioaware.Interval, 5000)
	for i := range ivs {
		start := int64(rng.Intn(100000))
		ivs[i] = ioaware.Interval{Start: start, End: start + int64(60+rng.Intn(3600)), BW: rng.Float64() * 1e8}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ioaware.Series(ivs, 0, 110000, 60)
	}
}

func BenchmarkBurstMatch(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	n := 10000
	actual := make([]bool, n)
	pred := make([]bool, n)
	for i := range actual {
		actual[i] = rng.Float64() < 0.05
		pred[i] = rng.Float64() < 0.05
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ioaware.MatchBursts(actual, pred, 5)
	}
}

// --- Numerical substrate ----------------------------------------------------

func BenchmarkMatMul128(b *testing.B) {
	rng := rand.New(rand.NewSource(12))
	x := tensor.New(128, 128).RandN(rng, 1)
	y := tensor.New(128, 128).RandN(rng, 1)
	dst := tensor.New(128, 128)
	b.SetBytes(128 * 128 * 128 * 2 * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMul(dst, x, y)
	}
}

func BenchmarkConv2DForward(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	spec := tensor.ConvSpec{KH: 3, KW: 3, Stride: 1, PadH: 1, PadW: 1}
	x := tensor.New(8, 4, 32, 32).RandN(rng, 1)
	w := tensor.New(8, 4*9).RandN(rng, 1)
	bias := tensor.New(8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.Conv2DForward(x, w, bias, 4, 32, 32, spec, false)
	}
}

// benchGEMM times dst[m,n] = a[m,k]·b[k,n] with a preallocated
// destination, reporting achieved ns/op and allocs/op for the blocked
// kernel.
func benchGEMM(b *testing.B, m, k, n int) {
	rng := rand.New(rand.NewSource(15))
	x := tensor.New(m, k).RandN(rng, 1)
	y := tensor.New(k, n).RandN(rng, 1)
	dst := tensor.New(m, n)
	b.SetBytes(int64(m) * int64(k) * int64(n) * 2 * 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMul(dst, x, y)
	}
}

// GEMM shapes: Small is sub-tile scheduling overhead; CNNShape is the
// Fig. 4 conv forward (weights [8, C·KH·KW] × cols [·, N·OH·OW]);
// CNNDense is the first dense layer after flatten; Large is the
// throughput ceiling.
func BenchmarkGEMMSmall(b *testing.B)    { benchGEMM(b, 32, 64, 32) }
func BenchmarkGEMMCNNShape(b *testing.B) { benchGEMM(b, 8, 200, 4096) }
func BenchmarkGEMMCNNDense(b *testing.B) { benchGEMM(b, 40, 1024, 128) }
func BenchmarkGEMMLarge(b *testing.B)    { benchGEMM(b, 256, 256, 256) }

// BenchmarkConvForward measures the batched single-GEMM convolution with
// arena recycling: steady state must report ~0 allocs/op.
func BenchmarkConvForward(b *testing.B) {
	rng := rand.New(rand.NewSource(16))
	spec := tensor.ConvSpec{KH: 3, KW: 3, Stride: 1, PadH: 1, PadW: 1}
	x := tensor.New(8, 4, 32, 32).RandN(rng, 1)
	w := tensor.New(8, 4*9).RandN(rng, 1)
	bias := tensor.New(8)
	ar := tensor.NewArena()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		y, _ := tensor.Conv2DForwardArena(ar, x, w, bias, 4, 32, 32, spec, false)
		ar.Put(y)
	}
}

// BenchmarkConvBackward measures the two-GEMM backward pass (dW, dcols)
// plus the sample-parallel Col2Im scatter, arena-recycled.
func BenchmarkConvBackward(b *testing.B) {
	rng := rand.New(rand.NewSource(17))
	spec := tensor.ConvSpec{KH: 3, KW: 3, Stride: 1, PadH: 1, PadW: 1}
	x := tensor.New(8, 4, 32, 32).RandN(rng, 1)
	w := tensor.New(8, 4*9).RandN(rng, 1)
	bias := tensor.New(8)
	dW := tensor.New(8, 4*9)
	dB := tensor.New(8)
	ar := tensor.NewArena()
	y, cols := tensor.Conv2DForwardArena(ar, x, w, bias, 4, 32, 32, spec, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dx := tensor.Conv2DBackwardArena(ar, y, w, cols, dW, dB, 4, 32, 32, spec)
		ar.Put(dx)
	}
}

func BenchmarkMapBatchSerialVsParallel(b *testing.B) {
	scripts := benchScripts(200)
	b.Run("serial", func(b *testing.B) {
		prev := tensor.SetMaxWorkers(1)
		defer tensor.SetMaxWorkers(prev)
		for i := 0; i < b.N; i++ {
			mapping.MapBatch(scripts, mapping.Simple{}, 64, 64)
		}
	})
	b.Run("parallel", func(b *testing.B) {
		prev := tensor.SetMaxWorkers(0)
		defer tensor.SetMaxWorkers(prev)
		for i := 0; i < b.N; i++ {
			mapping.MapBatch(scripts, mapping.Simple{}, 64, 64)
		}
	})
}

func BenchmarkDenseTrainStep(b *testing.B) {
	rng := rand.New(rand.NewSource(14))
	m := nn.NewSequential(
		nn.NewDense(rng, 256, 128),
		nn.NewReLU(),
		nn.NewDense(rng, 128, 64),
	)
	x := tensor.New(32, 256).RandN(rng, 1)
	labels := make([]int, 32)
	for i := range labels {
		labels[i] = rng.Intn(64)
	}
	opt := nn.NewAdam(1e-3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.TrainBatch(x, labels, opt)
	}
}

// newEncoderForBench builds a fresh feature encoder closure (avoids
// importing features directly into the bench namespace).
func newEncoderForBench() func(trace.Job) []float64 {
	return experiments.EncodeJobFeatures()
}

// --- prionnvet static-analysis gate ----------------------------------------

// vetPackages loads and type-checks every package in the repo exactly
// once, so BenchmarkPrionnvetRunAll times only the analysis passes
// (dataflow construction + checkers), not parsing or type-checking.
var vetPackages = struct {
	once   sync.Once
	loader *analysis.Loader
	pkgs   []*analysis.Package
	err    error
}{}

func loadVetPackages(b *testing.B) (*analysis.Loader, []*analysis.Package) {
	b.Helper()
	v := &vetPackages
	v.once.Do(func() {
		v.loader, v.err = analysis.NewLoader(".")
		if v.err != nil {
			return
		}
		dirs, err := analysis.PackageDirs(".", nil)
		if err != nil {
			v.err = err
			return
		}
		for _, dir := range dirs {
			pkg, err := v.loader.LoadDir(dir)
			if err != nil {
				v.err = err
				return
			}
			v.pkgs = append(v.pkgs, pkg)
		}
	})
	if v.err != nil {
		b.Fatal(v.err)
	}
	return v.loader, v.pkgs
}

// BenchmarkPrionnvetRunAll measures one full gate sweep: every checker
// over every package in the repo. A fresh Pass per package per
// iteration makes the per-iteration cost include the SSA-lite def-use
// index (Pass memoizes FuncInfos, so reusing passes would time only
// the first iteration honestly).
func BenchmarkPrionnvetRunAll(b *testing.B) {
	loader, pkgs := loadVetPackages(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		for _, pkg := range pkgs {
			n += len(analysis.RunAll(pkg.Pass(loader.Fset), nil))
		}
		if n != 0 {
			b.Fatalf("gate not clean: %d findings", n)
		}
	}
}

// BenchmarkAnalysisRepoWide breaks the gate sweep into its shared
// substrate layers — the SSA-lite def-use index, the call graph, and
// the lockset engine (regions + entry-lockset/may-acquire fixpoints +
// lock-order graph) — each timed repo-wide on a fresh Pass so the cost
// of every memoized structure is visible on its own, not buried in the
// first checker that demands it.
func BenchmarkAnalysisRepoWide(b *testing.B) {
	loader, pkgs := loadVetPackages(b)
	bench := func(name string, build func(p *analysis.Pass)) {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, pkg := range pkgs {
					build(pkg.Pass(loader.Fset))
				}
			}
		})
	}
	bench("funcinfo", func(p *analysis.Pass) { p.FuncInfos() })
	bench("callgraph", func(p *analysis.Pass) { p.CallGraph() })
	bench("lockset", func(p *analysis.Pass) { p.LockFacts() })
}
