// Command tracegen generates and inspects synthetic HPC workload traces
// (the substitute for the closed LLNL Cab dataset — see DESIGN.md §1).
//
// Usage:
//
//	tracegen -jobs 10000 -preset cab -format stats
//	tracegen -jobs 5000 -preset sdsc95 -format json -o trace.json
//	tracegen -jobs 100 -format scripts | less
package main

import (
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"
	"strings"

	"prionn/internal/metrics"
	"prionn/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracegen: ")

	jobs := flag.Int("jobs", 10000, "number of jobs to generate")
	seed := flag.Int64("seed", 1, "generator seed")
	preset := flag.String("preset", "cab", "trace preset: cab, sdsc95, sdsc96")
	format := flag.String("format", "stats", "output format: stats, json, csv, scripts")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	var cfg trace.Config
	switch *preset {
	case "cab":
		cfg = trace.DefaultConfig(*jobs)
		cfg.Seed = *seed
	case "sdsc95":
		cfg = trace.SDSC95Config(*jobs)
	case "sdsc96":
		cfg = trace.SDSC96Config(*jobs)
	default:
		log.Fatalf("unknown preset %q", *preset)
	}
	cfg.Jobs = *jobs

	all := trace.Generate(cfg)

	var w io.Writer = os.Stdout
	closeOut := func() error { return nil }
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		closeOut = f.Close
		w = f
	}

	switch *format {
	case "stats":
		if err := printStats(w, all); err != nil {
			log.Fatal(err)
		}
	case "json":
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(all); err != nil {
			log.Fatal(err)
		}
	case "csv":
		if err := writeCSV(w, all); err != nil {
			log.Fatal(err)
		}
	case "scripts":
		for _, j := range all {
			if _, err := fmt.Fprintf(w, "### job %d (user %s, %d min actual, %d min requested)\n%s\n",
				j.ID, j.User, j.ActualMin(), j.RequestedMin, j.Script); err != nil {
				log.Fatal(err)
			}
		}
	default:
		log.Fatalf("unknown format %q", *format)
	}
	// A trace file truncated by a failed close would silently skew every
	// downstream experiment; report it.
	if err := closeOut(); err != nil {
		log.Fatal(err)
	}
}

// printStats renders the summary into memory and writes it once, so a
// single error check covers the whole report.
func printStats(w io.Writer, all []trace.Job) error {
	completed := trace.Completed(all)
	var mins, reqErr, rbw, wbw []float64
	for _, j := range completed {
		mins = append(mins, float64(j.ActualMin()))
		reqErr = append(reqErr, float64(j.RequestedMin-j.ActualMin()))
		rbw = append(rbw, j.ReadBW())
		wbw = append(wbw, j.WriteBW())
	}
	ms := metrics.Summarize(mins)
	rs := metrics.Summarize(rbw)
	ws := metrics.Summarize(wbw)

	var b strings.Builder
	fmt.Fprintf(&b, "jobs:            %d (%d completed, %d canceled)\n",
		len(all), len(completed), len(all)-len(completed))
	fmt.Fprintf(&b, "unique scripts:  %d (%.1f%%)\n",
		trace.UniqueScripts(all), 100*float64(trace.UniqueScripts(all))/float64(len(all)))
	fmt.Fprintf(&b, "runtime (min):   mean %.1f  median %.1f  p95 %.1f  max %.0f\n",
		ms.Mean, ms.Median, ms.P95, ms.Max)
	sort.Float64s(reqErr)
	var errSum float64
	for _, e := range reqErr {
		if e < 0 {
			e = -e
		}
		errSum += e
	}
	fmt.Fprintf(&b, "user estimate:   mean abs error %.0f min (paper: 172)\n", errSum/float64(len(reqErr)))
	fmt.Fprintf(&b, "read BW (B/s):   mean %.2e  median %.2e  (mean/median %.0fx)\n",
		rs.Mean, rs.Median, rs.Mean/maxf(rs.Median, 1))
	fmt.Fprintf(&b, "write BW (B/s):  mean %.2e  median %.2e  (mean/median %.0fx)\n",
		ws.Mean, ws.Median, ws.Mean/maxf(ws.Median, 1))
	if len(all) > 0 {
		span := all[len(all)-1].SubmitTime - all[0].SubmitTime
		fmt.Fprintf(&b, "trace span:      %.1f days\n", float64(span)/86400)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func writeCSV(w io.Writer, all []trace.Job) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"id", "user", "group", "account", "script_id", "submit", "nodes", "tasks",
		"requested_min", "actual_sec", "read_bytes", "write_bytes", "canceled",
	}); err != nil {
		return err
	}
	for _, j := range all {
		if err := cw.Write([]string{
			fmt.Sprint(j.ID), j.User, j.Group, j.Account, fmt.Sprint(j.ScriptID),
			fmt.Sprint(j.SubmitTime), fmt.Sprint(j.Nodes), fmt.Sprint(j.Tasks),
			fmt.Sprint(j.RequestedMin), fmt.Sprint(j.ActualSec),
			fmt.Sprint(j.ReadBytes), fmt.Sprint(j.WriteBytes), fmt.Sprint(j.Canceled),
		}); err != nil {
			return err
		}
	}
	// Flush buffers through to w; csv.Writer surfaces the error via
	// Error(), which a deferred Flush would have dropped.
	cw.Flush()
	return cw.Error()
}
