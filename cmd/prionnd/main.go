// Command prionnd is PRIONN's batched inference daemon: it publishes a
// trained model snapshot behind the internal/serve coalescer and
// answers per-job prediction requests over HTTP, at submission time,
// the way the paper's continuous deployment loop does (§2.3) — but
// batched, so concurrent traffic rides the blocked-GEMM compute core
// instead of N single-sample forwards.
//
// Usage:
//
//	prionnd -jobs 2000 -scale fast -addr :8356   # train on a synthetic trace, then serve
//	prionnd -load model.ckpt -addr :8356         # serve a model saved by cmd/prionn
//	prionnd -demo 5000 -clients 64               # in-process throughput demo, no HTTP
//	prionnd -replicas 4 -policy affinity ...     # fault-tolerant multi-replica cluster
//	prionnd -quant -jobs 2000 ...                # serve the int8-quantized snapshot
//	prionnd -retrain-every 100 -canary-frac 0.1  # close the online-learning loop
//
// With -replicas N > 1 the daemon serves from an internal/cluster of N
// replicated coalescers behind a health-checked router: budgeted
// retries, per-replica circuit breakers, optional hedging (-hedge), a
// script-affinity prediction cache (-cache), and graceful degradation —
// when no replica can answer, /predict returns the request's own
// requested runtime with "degraded": true instead of an error.
//
// With -retrain-every N > 0 the daemon runs the internal/pilot
// online-learning pipeline: completed jobs POSTed to /complete stream
// into a warm-start retraining loop (every N completions), each
// candidate snapshot is shadow-evaluated against the serving model on
// the last -shadow-window completions, and accepted candidates serve a
// -canary-frac fraction of live traffic — with automatic rollback on
// error or disagreement spikes — before being atomically promoted to
// every replica. -retrain-ckpt persists the retraining state crash-
// safely so a restarted daemon resumes instead of training from
// scratch. /stats gains a "pipeline" object with the loop's state.
//
// Endpoints:
//
//	POST /predict  {"script": "...", "input_deck": "...", "requested_min": 60}
//	               → {"runtime_min": 57, "read_bytes": ..., "write_bytes": ...,
//	                  "read_bw": ..., "write_bw": ..., "from_model": true}
//	               503 with a text body when the admission queue is full;
//	               504 when -request-timeout expires (single-replica mode).
//	POST /complete {"script": "...", "actual_sec": 3420, "read_bytes": ...,
//	               "write_bytes": ...} → 202; feeds one finished job to the
//	               online-learning pipeline (requires -retrain-every > 0;
//	               503 when the completion queue is full).
//	GET  /stats    → JSON serving counters (queue depth, batch-size
//	               histogram, per-stage latency, predictions served, the
//	               published snapshot's kernel kind and persisted byte
//	               size; in cluster mode: retries, hedges, cache hit
//	               rate, and a per-replica breakdown with breaker
//	               states).
//	GET  /healthz  → 200 ok (liveness: the process is up)
//	GET  /readyz   → 200 ready, or 503 once draining has begun — and, under
//	               -no-fallback, until a trained snapshot is published.
//
// Until the first training event has been published, predictions fall
// back to the request's user-requested runtime ("from_model": false) —
// the daemon never emits forward passes of untrained weights. -jobs 0
// skips initial training entirely and starts a fallback-only daemon.
//
// SIGINT/SIGTERM drain gracefully: /readyz flips to 503, -drain-grace
// elapses (so load balancers observe the flip), admission stops, queued
// requests are answered, then the process exits, printing a final stats
// snapshot when -stats is set.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"prionn/internal/cluster"
	"prionn/internal/pilot"
	"prionn/internal/prionn"
	"prionn/internal/serve"
	"prionn/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, nil))
}

// predictRequest is the POST /predict wire format.
type predictRequest struct {
	Script       string `json:"script"`
	InputDeck    string `json:"input_deck,omitempty"`
	RequestedMin int    `json:"requested_min,omitempty"`
}

// completeRequest is the POST /complete wire format: one finished job
// reported back to the daemon for the online-learning pipeline.
type completeRequest struct {
	Script       string  `json:"script"`
	InputDeck    string  `json:"input_deck,omitempty"`
	RequestedMin int     `json:"requested_min,omitempty"`
	ActualSec    int64   `json:"actual_sec"`
	ReadBytes    int64   `json:"read_bytes,omitempty"`
	WriteBytes   int64   `json:"write_bytes,omitempty"`
	AvgPowerW    float64 `json:"avg_power_w,omitempty"`
	Canceled     bool    `json:"canceled,omitempty"`
}

// predictResponse is the POST /predict reply.
type predictResponse struct {
	RuntimeMin int     `json:"runtime_min"`
	ReadBytes  float64 `json:"read_bytes"`
	WriteBytes float64 `json:"write_bytes"`
	ReadBW     float64 `json:"read_bw"`
	WriteBW    float64 `json:"write_bw"`
	PowerW     float64 `json:"power_w,omitempty"`
	FromModel  bool    `json:"from_model"`

	// Cluster-mode fields: Degraded marks a requested-runtime fallback
	// served because no replica could answer; Cached marks a prediction
	// served from the memoizing cache; Replica identifies the answering
	// replica.
	Degraded bool `json:"degraded,omitempty"`
	Cached   bool `json:"cached,omitempty"`
	Replica  *int `json:"replica,omitempty"`
}

// engine abstracts the two serving backends — a single coalescing
// server or a replicated cluster — behind the daemon front end (HTTP
// handlers and the -demo driver).
type engine interface {
	Predict(ctx context.Context, req serve.Request) (cluster.Response, error)
	Stop(ctx context.Context) error
	// StatsJSON is marshaled for GET /stats; StatsText is the block the
	// -stats ticker and the shutdown path print.
	StatsJSON() any
	StatsText() string
}

// singleEngine serves from one coalescing server (the -replicas 1
// default, wire- and stats-compatible with earlier daemons).
// snapBytes is the persisted byte size of the published snapshot
// artifact, reported on /stats alongside the kernel kind so operators
// can see what the -quant switch bought.
type singleEngine struct {
	srv       *serve.Server
	snapBytes int64
}

func (e *singleEngine) Predict(ctx context.Context, req serve.Request) (cluster.Response, error) {
	resp, err := e.srv.Predict(ctx, req)
	return cluster.Response{Pred: resp.Pred, FromModel: resp.FromModel, Replica: -1}, err
}
func (e *singleEngine) Stop(ctx context.Context) error { return e.srv.Stop(ctx) }
func (e *singleEngine) StatsJSON() any {
	// The embedded snapshot keeps its fields at the top level of the
	// /stats document, so existing consumers are unaffected.
	return struct {
		serve.Snapshot
		SnapshotBytes int64 `json:"snapshot_bytes"`
	}{e.srv.Stats(), e.snapBytes}
}
func (e *singleEngine) StatsText() string {
	return e.srv.Stats().String() + fmt.Sprintf("snapshot: %d bytes\n", e.snapBytes)
}

// clusterEngine serves from a replicated cluster.
type clusterEngine struct {
	cl        *cluster.Cluster
	snapBytes int64
}

func (e *clusterEngine) Predict(ctx context.Context, req serve.Request) (cluster.Response, error) {
	return e.cl.Predict(ctx, req)
}
func (e *clusterEngine) Stop(ctx context.Context) error { return e.cl.Stop(ctx) }
func (e *clusterEngine) StatsJSON() any {
	return struct {
		cluster.Snapshot
		SnapshotBytes int64 `json:"snapshot_bytes"`
	}{e.cl.Stats(), e.snapBytes}
}
func (e *clusterEngine) StatsText() string {
	return e.cl.Stats().String() + fmt.Sprintf("snapshot: %d bytes\n", e.snapBytes)
}

// run is the testable body of main: parse argv, build the model and
// serving engine, and either run the in-process demo or serve HTTP
// until a signal (or ready-callback-driven shutdown in tests). ready,
// when non-nil, receives the bound listen address once the HTTP server
// accepts connections; the stop function it is handed initiates the
// same graceful drain a SIGINT would.
func run(argv []string, stdout, stderr io.Writer, ready func(addr string, stop func())) int {
	fs := flag.NewFlagSet("prionnd", flag.ContinueOnError)
	fs.SetOutput(stderr)

	addr := fs.String("addr", ":8356", "HTTP listen address")
	jobs := fs.Int("jobs", 2000, "synthetic trace length for initial training (0: skip training, serve fallback only)")
	seed := fs.Int64("seed", 1, "seed for trace and model")
	scale := fs.String("scale", "fast", "model scale: tiny, fast, paper")
	load := fs.String("load", "", "serve a model checkpoint instead of training")
	quant := fs.Bool("quant", false, "serve an int8-quantized snapshot (post-training calibration on a held-out trace slice)")
	maxBatch := fs.Int("max-batch", 64, "largest coalesced minibatch")
	maxDelay := fs.Duration("max-delay", 2*time.Millisecond, "coalescing flush deadline")
	queueDepth := fs.Int("queue", 256, "admission queue depth (backpressure bound)")
	statsEvery := fs.Duration("stats", 0, "print serving stats at this interval (0: only at shutdown)")
	demo := fs.Int("demo", 0, "serve this many in-process requests from -clients goroutines, print throughput, exit")
	clients := fs.Int("clients", 64, "concurrent clients for -demo")

	replicas := fs.Int("replicas", 1, "serving replicas; >1 enables the fault-tolerant cluster")
	policy := fs.String("policy", "affinity", "cluster routing policy: round-robin, least-loaded, affinity")
	cacheSize := fs.Int("cache", 4096, "cluster prediction-cache entries per run (0: disable)")
	hedge := fs.Float64("hedge", 0, "cluster hedging percentile in (0,1), e.g. 0.95 (0: disable)")
	reqTimeout := fs.Duration("request-timeout", 5*time.Second, "per-request deadline for /predict (0: none); in cluster mode expiry degrades to the requested runtime, in single mode it returns 504")
	drainGrace := fs.Duration("drain-grace", 0, "pause between flipping /readyz to 503 and closing admission, so load balancers drain first")
	noFallback := fs.Bool("no-fallback", false, "report not-ready on /readyz until a trained snapshot is published")

	retrainEvery := fs.Int("retrain-every", 0, "completed jobs (POST /complete) between online retraining events (0: online learning off)")
	shadowWindow := fs.Int("shadow-window", 64, "most recent completions replayed by the shadow-evaluation gate")
	canaryFrac := fs.Float64("canary-frac", 0.1, "live-traffic fraction served by an accepted candidate during its canary stage")
	retrainCkpt := fs.String("retrain-ckpt", "", "crash-safe checkpoint path for the online-retrain predictor (loaded on restart)")
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	logf := func(format string, args ...interface{}) {
		_, _ = fmt.Fprintf(stderr, "prionnd: "+format+"\n", args...)
	}

	if *retrainEvery > 0 && *quant {
		// Retrained candidates are float32 snapshots; promoting one would
		// silently replace the int8 kernel the operator asked for.
		logf("-retrain-every and -quant are mutually exclusive: online retraining publishes float32 candidates")
		return 1
	}

	mcfg, err := modelConfig(*scale, *seed)
	if err != nil {
		logf("%v", err)
		return 1
	}
	view, all, snapBytes, mcfg, err := buildSnapshot(*load, mcfg, *seed, *jobs, *quant, logf)
	if err != nil {
		logf("%v", err)
		return 1
	}

	serveCfg := serve.Config{
		MaxBatch:   *maxBatch,
		MaxDelay:   *maxDelay,
		QueueDepth: *queueDepth,
	}
	var eng engine
	if *replicas > 1 {
		pol, err := cluster.ParsePolicy(*policy)
		if err != nil {
			logf("%v", err)
			return 1
		}
		cl, err := cluster.New(view, cluster.Config{
			Replicas:        *replicas,
			Serve:           serveCfg,
			Policy:          pol,
			RequestTimeout:  *reqTimeout,
			HedgePercentile: *hedge,
			CacheSize:       *cacheSize,
			Seed:            *seed,
		})
		if err != nil {
			logf("%v", err)
			return 1
		}
		logf("cluster: %d replicas, %s routing", *replicas, pol)
		eng = &clusterEngine{cl: cl, snapBytes: snapBytes}
	} else {
		eng = &singleEngine{srv: serve.New(view, serveCfg), snapBytes: snapBytes}
	}

	if *demo > 0 {
		code := runDemo(eng, all, *demo, *clients, stdout, logf)
		_ = eng.Stop(context.Background())
		_, _ = fmt.Fprint(stdout, eng.StatsText())
		return code
	}

	// The online-learning pipeline: the cluster is its own canary-capable
	// deployer; a single coalescing server deploys directly (accepted
	// candidates swap in without a traffic-split stage).
	var pl *pilot.Pilot
	if *retrainEvery > 0 {
		mcfg.RetrainEvery = *retrainEvery
		var dep pilot.Deployer
		if ce, ok := eng.(*clusterEngine); ok {
			dep = ce.cl
		} else {
			dep = &pilot.DirectDeployer{Srv: eng.(*singleEngine).srv}
		}
		pl, err = pilot.New(pilot.Config{
			Model:          mcfg,
			ShadowWindow:   *shadowWindow,
			Canary:         cluster.CanaryConfig{Frac: *canaryFrac},
			CheckpointPath: *retrainCkpt,
		}, dep)
		if err != nil {
			logf("%v", err)
			_ = eng.Stop(context.Background())
			return 1
		}
		logf("online learning: retrain every %d completions (window %d), shadow window %d, canary fraction %.2f",
			mcfg.RetrainEvery, mcfg.TrainWindow, *shadowWindow, *canaryFrac)
		if pl.Events() > 0 {
			logf("online learning: resumed from %s (%d training events)", *retrainCkpt, pl.Events())
		}
	}

	d := &daemon{
		eng:         eng,
		pilot:       pl,
		clusterMode: *replicas > 1,
		hasSnapshot: view != nil,
		noFallback:  *noFallback,
		reqTimeout:  *reqTimeout,
		drainGrace:  *drainGrace,
	}
	return d.serveHTTP(*addr, *statsEvery, stdout, logf, ready)
}

// modelConfig resolves -scale into a predictor configuration.
func modelConfig(scale string, seed int64) (prionn.Config, error) {
	var cfg prionn.Config
	switch scale {
	case "tiny":
		cfg = prionn.TinyConfig()
	case "fast":
		cfg = prionn.FastConfig()
	case "paper":
		cfg = prionn.DefaultConfig()
	default:
		return prionn.Config{}, fmt.Errorf("unknown scale %q (tiny, fast, paper)", scale)
	}
	cfg.Seed = seed
	return cfg, nil
}

// buildSnapshot loads or trains a predictor and returns its published
// inference snapshot, the synthetic trace (for -demo request
// generation), the persisted byte size of the snapshot artifact (for
// /stats), and the model configuration actually in effect — the loaded
// checkpoint's when -load is set, cfg otherwise — which the online-
// learning pipeline adopts so its candidates match the serving model.
// With -quant the published snapshot is the predictor's int8
// quantization, calibrated on a held-out slice of completed jobs. With
// -jobs 0 and no checkpoint it returns a nil view: the daemon serves
// the requested-runtime fallback until a snapshot exists.
func buildSnapshot(load string, cfg prionn.Config, seed int64, jobs int, quant bool, logf func(string, ...interface{})) (*prionn.Inference, []trace.Job, int64, prionn.Config, error) {
	all := trace.Generate(trace.Config{Seed: seed, Jobs: jobs})
	completed := trace.Completed(all)
	var p *prionn.Predictor
	trainWindow := 0
	if load != "" {
		var err error
		p, err = prionn.LoadFile(load)
		if err != nil {
			return nil, nil, 0, cfg, err
		}
		cfg = p.Config
		logf("restored model from %s (%d training events)", load, p.Events())
	} else {
		if jobs <= 0 {
			logf("no initial training (-jobs 0): serving the requested-runtime fallback")
			return nil, all, 0, cfg, nil
		}
		window := completed
		if len(window) > cfg.TrainWindow {
			window = window[len(window)-cfg.TrainWindow:]
		}
		trainWindow = len(window)
		scripts := make([]string, len(completed))
		for i, j := range completed {
			scripts[i] = j.Script
		}
		var err error
		p, err = prionn.New(cfg, scripts)
		if err != nil {
			return nil, nil, 0, cfg, err
		}
		logf("training on %d most recently completed jobs...", len(window))
		if _, err := p.Train(window); err != nil {
			return nil, nil, 0, cfg, err
		}
	}
	if quant {
		view, bytes, err := quantizedSnapshot(p, completed, trainWindow, logf)
		return view, all, bytes, cfg, err
	}
	view, err := p.Snapshot()
	if err != nil {
		return nil, nil, 0, cfg, err
	}
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		return nil, nil, 0, cfg, err
	}
	return view, all, int64(buf.Len()), cfg, nil
}

// quantizedSnapshot freezes the trained predictor into an int8 serving
// snapshot. The activation ranges are calibrated on the most recent
// completed jobs *preceding* the training window (held out from
// training); when the whole trace fit in the window — or the model came
// from -load, where the local trace is entirely held out — the most
// recent completed jobs are used instead. Calibration is capped at
// maxCalib jobs to bound startup time.
func quantizedSnapshot(p *prionn.Predictor, completed []trace.Job, trainWindow int, logf func(string, ...interface{})) (*prionn.Inference, int64, error) {
	const maxCalib = 256
	calib := completed
	if trainWindow > 0 && trainWindow < len(completed) {
		calib = completed[:len(completed)-trainWindow]
	}
	if len(calib) > maxCalib {
		calib = calib[len(calib)-maxCalib:]
	}
	if len(calib) == 0 {
		return nil, 0, fmt.Errorf("-quant needs completed jobs to calibrate on (trace too short)")
	}
	view, err := p.SnapshotQuantized(calib)
	if err != nil {
		return nil, 0, err
	}
	var qbuf, fbuf bytes.Buffer
	if err := view.SaveQuantized(&qbuf); err != nil {
		return nil, 0, err
	}
	if err := p.Save(&fbuf); err != nil {
		return nil, 0, err
	}
	logf("int8 snapshot published: %d calibration jobs, %d bytes (float checkpoint: %d bytes)",
		len(calib), qbuf.Len(), fbuf.Len())
	return view, int64(qbuf.Len()), nil
}

// runDemo drives the engine with in-process concurrent clients and
// reports end-to-end serving throughput.
func runDemo(eng engine, all []trace.Job, total, clients int, stdout io.Writer, logf func(string, ...interface{})) int {
	if clients < 1 {
		clients = 1
	}
	completed := trace.Completed(all)
	if len(completed) == 0 {
		logf("demo: empty trace")
		return 1
	}
	logf("demo: %d requests from %d concurrent clients", total, clients)
	var served, fellBack, degraded, failed atomic.Int64
	var next atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(total) {
					return
				}
				j := completed[int(i)%len(completed)]
				resp, err := eng.Predict(context.Background(), serve.Request{
					Script:       j.Script,
					InputDeck:    j.InputDeck,
					RequestedMin: j.RequestedMin,
				})
				switch {
				case errors.Is(err, serve.ErrOverloaded):
					// Back off and retry: demo clients model patient
					// submitters, so total served is deterministic.
					time.Sleep(200 * time.Microsecond)
					next.Add(-1)
				case err != nil:
					failed.Add(1)
				case resp.Degraded:
					degraded.Add(1)
				case resp.FromModel:
					served.Add(1)
				default:
					fellBack.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	answered := served.Load() + fellBack.Load() + degraded.Load()
	rate := float64(answered) / elapsed.Seconds()
	_, _ = fmt.Fprintf(stdout, "demo: %d predictions in %v (%.0f predictions/sec), %d fallback, %d degraded, %d failed\n",
		answered, elapsed.Round(time.Millisecond), rate, fellBack.Load(), degraded.Load(), failed.Load())
	if failed.Load() > 0 {
		return 1
	}
	return 0
}

// daemon is the HTTP front end's state: the serving engine plus the
// readiness knobs the handlers consult.
type daemon struct {
	eng         engine
	clusterMode bool
	hasSnapshot bool
	noFallback  bool
	reqTimeout  time.Duration
	drainGrace  time.Duration

	// pilot, when non-nil, is the online-learning pipeline; completions
	// is the bounded queue between the POST /complete handler and the
	// pipeline's single consumer goroutine (the pilot is goroutine-
	// confined, so only that consumer calls Observe/Tick).
	pilot       *pilot.Pilot
	completions chan trace.Job

	// draining flips once shutdown begins; /readyz reports 503 from then
	// on while /healthz (liveness) stays 200 until the process exits.
	draining atomic.Bool
}

// statsText is the block the -stats ticker and the shutdown path print:
// the engine's counters plus, with online learning on, a pipeline line.
func (d *daemon) statsText() string {
	s := d.eng.StatsText()
	if d.pilot != nil {
		st := d.pilot.Status()
		s += fmt.Sprintf("pipeline: %s, %d events (%d trained, %d replayed), shadow %d accepted / %d rejected, canary %d started / %d promoted / %d rolled back\n",
			st.Phase, st.Events, st.TrainedThisRun, st.ReplayedEvents,
			st.ShadowAccepted, st.ShadowRejected,
			st.CanaryStarts, st.CanaryPromotions, st.CanaryRollbacks)
	}
	return s
}

// serveHTTP runs the HTTP front end until SIGINT/SIGTERM (or the
// test-supplied stop function), then drains: readiness flips, the
// drain grace elapses, in-flight handlers finish, the engine stops.
func (d *daemon) serveHTTP(addr string, statsEvery time.Duration, stdout io.Writer, logf func(string, ...interface{}), ready func(addr string, stop func())) int {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /predict", d.handlePredict)
	if d.pilot != nil {
		d.completions = make(chan trace.Job, 1024)
		mux.HandleFunc("POST /complete", d.handleComplete)
	}
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		doc := d.eng.StatsJSON()
		if d.pilot != nil {
			// Graft the pipeline's state into the engine document without
			// disturbing its top-level keys.
			if raw, err := json.Marshal(doc); err == nil {
				m := map[string]interface{}{}
				if json.Unmarshal(raw, &m) == nil {
					m["pipeline"] = d.pilot.Status()
					_ = json.NewEncoder(w).Encode(m)
					return
				}
			}
		}
		_ = json.NewEncoder(w).Encode(doc)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		// Liveness only: the process is up and the mux is answering. Do
		// not add readiness conditions here — a draining daemon is alive.
		_, _ = io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		switch {
		case d.draining.Load():
			http.Error(w, "draining", http.StatusServiceUnavailable)
		case d.noFallback && !d.hasSnapshot:
			http.Error(w, "no trained snapshot published", http.StatusServiceUnavailable)
		default:
			_, _ = io.WriteString(w, "ready\n")
		}
	})

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		logf("%v", err)
		return 1
	}
	// Every timeout here exists to bound a resource a slow or hostile
	// client could otherwise hold forever: header trickling (slowloris),
	// body trickling, a reader that never drains the response, and idle
	// keep-alive connections. WriteTimeout must exceed the /predict
	// deadline or the server would cut off legitimately slow responses
	// before the handler's own timeout fires.
	writeTimeout := 30 * time.Second
	if d.reqTimeout > 0 && d.reqTimeout+5*time.Second > writeTimeout {
		writeTimeout = d.reqTimeout + 5*time.Second
	}
	hs := &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      writeTimeout,
		IdleTimeout:       2 * time.Minute,
	}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigCh)
	stopCh := make(chan struct{})
	var stopOnce sync.Once
	stop := func() { stopOnce.Do(func() { close(stopCh) }) }

	httpDone := make(chan error, 1)
	go func() { httpDone <- hs.Serve(ln) }()
	logf("serving on %s", ln.Addr())

	// The pipeline's single consumer: every Observe/Tick call happens on
	// this goroutine, preserving the pilot's confinement contract.
	pilotStop := make(chan struct{})
	pilotDone := make(chan struct{})
	if d.pilot != nil {
		go d.pilotLoop(pilotStop, pilotDone, logf)
	} else {
		close(pilotDone)
	}

	if ready != nil {
		ready(ln.Addr().String(), stop)
	}

	var ticker *time.Ticker
	var tick <-chan time.Time
	if statsEvery > 0 {
		ticker = time.NewTicker(statsEvery)
		tick = ticker.C
		defer ticker.Stop()
	}

	code := 0
loop:
	for {
		select {
		case <-tick:
			_, _ = fmt.Fprint(stdout, d.statsText())
		case sig := <-sigCh:
			logf("received %v, draining...", sig)
			break loop
		case <-stopCh:
			logf("stop requested, draining...")
			break loop
		case err := <-httpDone:
			if err != nil && !errors.Is(err, http.ErrServerClosed) {
				logf("http: %v", err)
				code = 1
			}
			break loop
		}
	}

	// Drain ladder: advertise not-ready first, give load balancers the
	// grace window to act on it, then stop accepting and drain.
	d.draining.Store(true)
	if d.drainGrace > 0 {
		time.Sleep(d.drainGrace)
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		logf("http shutdown: %v", err)
		code = 1
	}
	// Stop the pipeline after the handlers (no more completions arrive)
	// but before the engine, so a promotion never lands on a stopped
	// cluster.
	close(pilotStop)
	<-pilotDone
	if err := d.eng.Stop(shutdownCtx); err != nil {
		logf("drain: %v", err)
		code = 1
	}
	_, _ = fmt.Fprint(stdout, d.statsText())
	return code
}

// pilotLoop drains the completion queue into the pipeline and advances
// canary promotion/rollback on a ticker. It is the only goroutine that
// touches the pilot. On stop it consumes whatever is already queued —
// the handler stopped enqueueing when the HTTP server shut down — so
// accepted completions are never silently dropped.
func (d *daemon) pilotLoop(stop <-chan struct{}, done chan<- struct{}, logf func(string, ...interface{})) {
	defer close(done)
	ctx := context.Background()
	tick := time.NewTicker(500 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case j := <-d.completions:
			if err := d.pilot.Observe(ctx, j); err != nil {
				logf("pipeline: %v", err)
			}
		case <-tick.C:
			if err := d.pilot.Tick(ctx); err != nil {
				logf("pipeline: %v", err)
			}
		case <-stop:
			for {
				select {
				case j := <-d.completions:
					if err := d.pilot.Observe(ctx, j); err != nil {
						logf("pipeline: %v", err)
					}
				default:
					return
				}
			}
		}
	}
}

// handleComplete answers POST /complete: decode one finished job and
// enqueue it for the pipeline. The queue is bounded; a full queue is
// the submitter's backpressure signal (503), mirroring /predict.
func (d *daemon) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req completeRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if req.Script == "" {
		http.Error(w, "bad request: script is required", http.StatusBadRequest)
		return
	}
	if req.ActualSec < 0 || req.ReadBytes < 0 || req.WriteBytes < 0 {
		http.Error(w, "bad request: negative runtime or IO volume", http.StatusBadRequest)
		return
	}
	j := trace.Job{
		Script:       req.Script,
		InputDeck:    req.InputDeck,
		RequestedMin: req.RequestedMin,
		ActualSec:    req.ActualSec,
		ReadBytes:    req.ReadBytes,
		WriteBytes:   req.WriteBytes,
		AvgPowerW:    req.AvgPowerW,
		Canceled:     req.Canceled,
	}
	select {
	case d.completions <- j:
		w.WriteHeader(http.StatusAccepted)
		_, _ = io.WriteString(w, "accepted\n")
	default:
		http.Error(w, "completion queue full", http.StatusServiceUnavailable)
	}
}

// handlePredict answers POST /predict through the engine. In single
// mode the -request-timeout deadline is applied here and maps to 504;
// in cluster mode the cluster owns the deadline and expiry degrades to
// the requested-runtime fallback instead.
func (d *daemon) handlePredict(w http.ResponseWriter, r *http.Request) {
	var req predictRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	ctx := r.Context()
	if d.reqTimeout > 0 && !d.clusterMode {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d.reqTimeout)
		defer cancel()
	}
	resp, err := d.eng.Predict(ctx, serve.Request{
		Script:       req.Script,
		InputDeck:    req.InputDeck,
		RequestedMin: req.RequestedMin,
	})
	switch {
	case errors.Is(err, serve.ErrOverloaded), errors.Is(err, serve.ErrStopped):
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	case errors.Is(err, context.DeadlineExceeded) && r.Context().Err() == nil:
		// Our own per-request deadline, not the client hanging up.
		http.Error(w, "prediction deadline exceeded", http.StatusGatewayTimeout)
		return
	case err != nil:
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	out := predictResponse{
		RuntimeMin: resp.Pred.RuntimeMin,
		ReadBytes:  resp.Pred.ReadBytes,
		WriteBytes: resp.Pred.WriteBytes,
		ReadBW:     resp.Pred.ReadBW(),
		WriteBW:    resp.Pred.WriteBW(),
		PowerW:     resp.Pred.PowerW,
		FromModel:  resp.FromModel,
		Degraded:   resp.Degraded,
		Cached:     resp.Cached,
	}
	if d.clusterMode && resp.Replica >= 0 {
		id := resp.Replica
		out.Replica = &id
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(out)
}
