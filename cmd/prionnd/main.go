// Command prionnd is PRIONN's batched inference daemon: it publishes a
// trained model snapshot behind the internal/serve coalescer and
// answers per-job prediction requests over HTTP, at submission time,
// the way the paper's continuous deployment loop does (§2.3) — but
// batched, so concurrent traffic rides the blocked-GEMM compute core
// instead of N single-sample forwards.
//
// Usage:
//
//	prionnd -jobs 2000 -scale fast -addr :8356   # train on a synthetic trace, then serve
//	prionnd -load model.ckpt -addr :8356         # serve a model saved by cmd/prionn
//	prionnd -demo 5000 -clients 64               # in-process throughput demo, no HTTP
//
// Endpoints:
//
//	POST /predict  {"script": "...", "input_deck": "...", "requested_min": 60}
//	               → {"runtime_min": 57, "read_bytes": ..., "write_bytes": ...,
//	                  "read_bw": ..., "write_bw": ..., "from_model": true}
//	               503 with a text body when the admission queue is full.
//	GET  /stats    → JSON serving counters (queue depth, batch-size
//	               histogram, per-stage latency, predictions served).
//	GET  /healthz  → 200 ok
//
// Until the first training event has been published, predictions fall
// back to the request's user-requested runtime ("from_model": false) —
// the daemon never emits forward passes of untrained weights.
//
// SIGINT/SIGTERM drain gracefully: admission stops, queued requests are
// answered, then the process exits, printing a final stats snapshot
// when -stats is set.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"prionn/internal/prionn"
	"prionn/internal/serve"
	"prionn/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, nil))
}

// predictRequest is the POST /predict wire format.
type predictRequest struct {
	Script       string `json:"script"`
	InputDeck    string `json:"input_deck,omitempty"`
	RequestedMin int    `json:"requested_min,omitempty"`
}

// predictResponse is the POST /predict reply.
type predictResponse struct {
	RuntimeMin int     `json:"runtime_min"`
	ReadBytes  float64 `json:"read_bytes"`
	WriteBytes float64 `json:"write_bytes"`
	ReadBW     float64 `json:"read_bw"`
	WriteBW    float64 `json:"write_bw"`
	PowerW     float64 `json:"power_w,omitempty"`
	FromModel  bool    `json:"from_model"`
}

// run is the testable body of main: parse argv, build the model and
// server, and either run the in-process demo or serve HTTP until a
// signal (or ready-callback-driven shutdown in tests). ready, when
// non-nil, receives the bound listen address once the HTTP server
// accepts connections; closing the returned stop function initiates
// the same graceful drain a SIGINT would.
func run(argv []string, stdout, stderr io.Writer, ready func(addr string, stop func())) int {
	fs := flag.NewFlagSet("prionnd", flag.ContinueOnError)
	fs.SetOutput(stderr)

	addr := fs.String("addr", ":8356", "HTTP listen address")
	jobs := fs.Int("jobs", 2000, "synthetic trace length for initial training")
	seed := fs.Int64("seed", 1, "seed for trace and model")
	scale := fs.String("scale", "fast", "model scale: tiny, fast, paper")
	load := fs.String("load", "", "serve a model checkpoint instead of training")
	maxBatch := fs.Int("max-batch", 64, "largest coalesced minibatch")
	maxDelay := fs.Duration("max-delay", 2*time.Millisecond, "coalescing flush deadline")
	queueDepth := fs.Int("queue", 256, "admission queue depth (backpressure bound)")
	statsEvery := fs.Duration("stats", 0, "print serving stats at this interval (0: only at shutdown)")
	demo := fs.Int("demo", 0, "serve this many in-process requests from -clients goroutines, print throughput, exit")
	clients := fs.Int("clients", 64, "concurrent clients for -demo")
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	logf := func(format string, args ...interface{}) {
		_, _ = fmt.Fprintf(stderr, "prionnd: "+format+"\n", args...)
	}

	view, all, err := buildSnapshot(*load, *scale, *seed, *jobs, logf)
	if err != nil {
		logf("%v", err)
		return 1
	}

	srv := serve.New(view, serve.Config{
		MaxBatch:   *maxBatch,
		MaxDelay:   *maxDelay,
		QueueDepth: *queueDepth,
	})

	if *demo > 0 {
		code := runDemo(srv, all, *demo, *clients, stdout, logf)
		_ = srv.Stop(context.Background())
		_, _ = fmt.Fprint(stdout, srv.Stats().String())
		return code
	}
	return serveHTTP(srv, *addr, *statsEvery, stdout, logf, ready)
}

// buildSnapshot loads or trains a predictor and returns its published
// inference snapshot plus the synthetic trace (for -demo request
// generation).
func buildSnapshot(load, scale string, seed int64, jobs int, logf func(string, ...interface{})) (*prionn.Inference, []trace.Job, error) {
	all := trace.Generate(trace.Config{Seed: seed, Jobs: jobs})
	var p *prionn.Predictor
	if load != "" {
		var err error
		p, err = prionn.LoadFile(load)
		if err != nil {
			return nil, nil, err
		}
		logf("restored model from %s (%d training events)", load, p.Events())
	} else {
		var cfg prionn.Config
		switch scale {
		case "tiny":
			cfg = prionn.TinyConfig()
		case "fast":
			cfg = prionn.FastConfig()
		case "paper":
			cfg = prionn.DefaultConfig()
		default:
			return nil, nil, fmt.Errorf("unknown scale %q (tiny, fast, paper)", scale)
		}
		cfg.Seed = seed
		completed := trace.Completed(all)
		window := completed
		if len(window) > cfg.TrainWindow {
			window = window[len(window)-cfg.TrainWindow:]
		}
		scripts := make([]string, len(completed))
		for i, j := range completed {
			scripts[i] = j.Script
		}
		var err error
		p, err = prionn.New(cfg, scripts)
		if err != nil {
			return nil, nil, err
		}
		logf("training on %d most recently completed jobs...", len(window))
		if _, err := p.Train(window); err != nil {
			return nil, nil, err
		}
	}
	view, err := p.Snapshot()
	if err != nil {
		return nil, nil, err
	}
	return view, all, nil
}

// runDemo drives the server with in-process concurrent clients and
// reports end-to-end serving throughput.
func runDemo(srv *serve.Server, all []trace.Job, total, clients int, stdout io.Writer, logf func(string, ...interface{})) int {
	if clients < 1 {
		clients = 1
	}
	completed := trace.Completed(all)
	if len(completed) == 0 {
		logf("demo: empty trace")
		return 1
	}
	logf("demo: %d requests from %d concurrent clients", total, clients)
	var served, fellBack, failed atomic.Int64
	var next atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(total) {
					return
				}
				j := completed[int(i)%len(completed)]
				resp, err := srv.Predict(context.Background(), serve.Request{
					Script:       j.Script,
					InputDeck:    j.InputDeck,
					RequestedMin: j.RequestedMin,
				})
				switch {
				case errors.Is(err, serve.ErrOverloaded):
					// Back off and retry: demo clients model patient
					// submitters, so total served is deterministic.
					time.Sleep(200 * time.Microsecond)
					next.Add(-1)
				case err != nil:
					failed.Add(1)
				case resp.FromModel:
					served.Add(1)
				default:
					fellBack.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	rate := float64(served.Load()+fellBack.Load()) / elapsed.Seconds()
	_, _ = fmt.Fprintf(stdout, "demo: %d predictions in %v (%.0f predictions/sec), %d fallback, %d failed\n",
		served.Load()+fellBack.Load(), elapsed.Round(time.Millisecond), rate, fellBack.Load(), failed.Load())
	if failed.Load() > 0 {
		return 1
	}
	return 0
}

// serveHTTP runs the HTTP front end until SIGINT/SIGTERM (or the
// test-supplied stop function), then drains the coalescer.
func serveHTTP(srv *serve.Server, addr string, statsEvery time.Duration, stdout io.Writer, logf func(string, ...interface{}), ready func(addr string, stop func())) int {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /predict", func(w http.ResponseWriter, r *http.Request) {
		var req predictRequest
		if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
			http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
			return
		}
		resp, err := srv.Predict(r.Context(), serve.Request{
			Script:       req.Script,
			InputDeck:    req.InputDeck,
			RequestedMin: req.RequestedMin,
		})
		switch {
		case errors.Is(err, serve.ErrOverloaded), errors.Is(err, serve.ErrStopped):
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		case err != nil:
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(predictResponse{
			RuntimeMin: resp.Pred.RuntimeMin,
			ReadBytes:  resp.Pred.ReadBytes,
			WriteBytes: resp.Pred.WriteBytes,
			ReadBW:     resp.Pred.ReadBW(),
			WriteBW:    resp.Pred.WriteBW(),
			PowerW:     resp.Pred.PowerW,
			FromModel:  resp.FromModel,
		})
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(srv.Stats())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		_, _ = io.WriteString(w, "ok\n")
	})

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		logf("%v", err)
		return 1
	}
	hs := &http.Server{Handler: mux}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigCh)
	stopCh := make(chan struct{})
	var stopOnce sync.Once
	stop := func() { stopOnce.Do(func() { close(stopCh) }) }

	httpDone := make(chan error, 1)
	go func() { httpDone <- hs.Serve(ln) }()
	logf("serving on %s", ln.Addr())
	if ready != nil {
		ready(ln.Addr().String(), stop)
	}

	var ticker *time.Ticker
	var tick <-chan time.Time
	if statsEvery > 0 {
		ticker = time.NewTicker(statsEvery)
		tick = ticker.C
		defer ticker.Stop()
	}

	code := 0
loop:
	for {
		select {
		case <-tick:
			_, _ = fmt.Fprint(stdout, srv.Stats().String())
		case sig := <-sigCh:
			logf("received %v, draining...", sig)
			break loop
		case <-stopCh:
			logf("stop requested, draining...")
			break loop
		case err := <-httpDone:
			if err != nil && !errors.Is(err, http.ErrServerClosed) {
				logf("http: %v", err)
				code = 1
			}
			break loop
		}
	}

	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		logf("http shutdown: %v", err)
		code = 1
	}
	if err := srv.Stop(shutdownCtx); err != nil {
		logf("drain: %v", err)
		code = 1
	}
	_, _ = fmt.Fprint(stdout, srv.Stats().String())
	return code
}
