package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"prionn/internal/fault"
	"prionn/internal/serve"
	"prionn/internal/trace"
)

// demoArgs keeps the daemon tests fast: tiny model, short trace.
func demoArgs(extra ...string) []string {
	base := []string{"-scale", "tiny", "-jobs", "150", "-seed", "5"}
	return append(base, extra...)
}

// TestRunDemo exercises the full in-process path: train, snapshot,
// coalesced serving under concurrent clients, drain, stats print.
func TestRunDemo(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run(demoArgs("-demo", "300", "-clients", "16", "-max-batch", "16"), &stdout, &stderr, nil)
	if code != 0 {
		t.Fatalf("exit %d\nstderr: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "predictions/sec") {
		t.Fatalf("demo output missing throughput line:\n%s", out)
	}
	if !strings.Contains(out, "0 failed") {
		t.Fatalf("demo reported failures:\n%s", out)
	}
	if !strings.Contains(out, "served 300") {
		t.Fatalf("stats block should report 300 model predictions:\n%s", out)
	}
}

// TestRunDemoQuant drives the demo path on an int8-quantized snapshot:
// the daemon trains, calibrates on the held-out slice, publishes the
// quantized view, and the stats block reports the int8 kernel and the
// snapshot's byte size.
func TestRunDemoQuant(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run(demoArgs("-quant", "-demo", "200", "-clients", "8"), &stdout, &stderr, nil)
	if code != 0 {
		t.Fatalf("exit %d\nstderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "int8 snapshot published") {
		t.Fatalf("-quant must log the quantization event:\nstderr: %s", stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "[int8] served 200") {
		t.Fatalf("stats block should report 200 model predictions under the int8 kernel:\n%s", out)
	}
	if !strings.Contains(out, "0 failed") {
		t.Fatalf("demo reported failures:\n%s", out)
	}
	if !strings.Contains(out, "snapshot: ") {
		t.Fatalf("stats block missing the snapshot byte-size line:\n%s", out)
	}
}

// TestRunHTTP boots the daemon on an ephemeral port, predicts over
// HTTP, reads stats, and shuts down via the test stop hook (the same
// path a SIGINT takes).
func TestRunHTTP(t *testing.T) {
	var stdout, stderr bytes.Buffer
	type started struct {
		addr string
		stop func()
	}
	readyCh := make(chan started, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	var code int
	go func() {
		defer wg.Done()
		code = run(demoArgs("-addr", "127.0.0.1:0", "-queue", "64"), &stdout, &stderr,
			func(addr string, stop func()) { readyCh <- started{addr, stop} })
	}()

	var st started
	select {
	case st = <-readyCh:
	case <-time.After(2 * time.Minute):
		t.Fatal("daemon did not come up")
	}
	base := "http://" + st.addr

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}

	body, _ := json.Marshal(predictRequest{
		Script:       "#!/bin/bash\nsrun ./lulesh.exe -s 32\n",
		RequestedMin: 120,
	})
	var pr predictResponse
	post, err := http.Post(base+"/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if post.StatusCode != http.StatusOK {
		t.Fatalf("predict status %d", post.StatusCode)
	}
	if err := json.NewDecoder(post.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if !pr.FromModel {
		t.Fatalf("trained daemon served a fallback: %+v", pr)
	}
	if pr.RuntimeMin <= 0 {
		t.Fatalf("non-positive predicted runtime: %+v", pr)
	}

	// Malformed request → 400, not a wedged coalescer.
	bad, err := http.Post(base+"/predict", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed predict status %d, want 400", bad.StatusCode)
	}

	stats, err := http.Get(base + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var snap map[string]interface{}
	if err := json.NewDecoder(stats.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	stats.Body.Close()
	if served, ok := snap["served"].(float64); !ok || served < 1 {
		t.Fatalf("stats served = %v, want >= 1", snap["served"])
	}

	st.stop()
	wg.Wait()
	if code != 0 {
		t.Fatalf("daemon exit %d\nstderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "served") {
		t.Fatalf("shutdown must print a final stats block:\n%s", stdout.String())
	}
}

// TestRunBadFlags pins CLI error handling.
func TestRunBadFlags(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-scale", "nope", "-demo", "1"}, &stdout, &stderr, nil); code != 1 {
		t.Fatalf("unknown scale: exit %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "unknown scale") {
		t.Fatalf("stderr: %s", stderr.String())
	}
	if code := run([]string{"-definitely-not-a-flag"}, &stdout, &stderr, nil); code != 2 {
		t.Fatal("bad flag must exit 2")
	}
}

// TestRunLoadMissingCheckpoint: a bad -load path is a clean error.
func TestRunLoadMissingCheckpoint(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-load", t.TempDir() + "/nope.ckpt", "-demo", "1"}, &stdout, &stderr, nil); code != 1 {
		t.Fatalf("missing checkpoint: exit %d, want 1", code)
	}
}

// TestRunDemoCluster runs the in-process demo through the replicated
// cluster engine: all requests answered from the model, none failed,
// and the cluster stats block (with per-replica lines) is printed.
func TestRunDemoCluster(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run(demoArgs("-demo", "300", "-clients", "16", "-max-batch", "16",
		"-replicas", "3", "-policy", "affinity", "-cache", "512"), &stdout, &stderr, nil)
	if code != 0 {
		t.Fatalf("exit %d\nstderr: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "0 degraded, 0 failed") {
		t.Fatalf("cluster demo must answer everything from the model:\n%s", out)
	}
	if !strings.Contains(out, "replica 0") || !strings.Contains(out, "replica 2") {
		t.Fatalf("cluster stats block missing per-replica lines:\n%s", out)
	}
	if !strings.Contains(stderr.String(), "cluster: 3 replicas, affinity routing") {
		t.Fatalf("stderr missing cluster banner: %s", stderr.String())
	}
}

// TestRunHTTPCluster boots a 2-replica daemon, checks /readyz before
// and during the drain, predicts through the cluster (the reply carries
// the answering replica), and reads the cluster-shaped /stats.
func TestRunHTTPCluster(t *testing.T) {
	var stdout, stderr bytes.Buffer
	type started struct {
		addr string
		stop func()
	}
	readyCh := make(chan started, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	var code int
	go func() {
		defer wg.Done()
		code = run(demoArgs("-addr", "127.0.0.1:0", "-replicas", "2", "-cache", "64"),
			&stdout, &stderr, func(addr string, stop func()) { readyCh <- started{addr, stop} })
	}()

	var st started
	select {
	case st = <-readyCh:
	case <-time.After(2 * time.Minute):
		t.Fatal("daemon did not come up")
	}
	base := "http://" + st.addr

	rz, err := http.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	rz.Body.Close()
	if rz.StatusCode != http.StatusOK {
		t.Fatalf("readyz status %d before drain, want 200", rz.StatusCode)
	}

	body, _ := json.Marshal(predictRequest{
		Script:       "#!/bin/bash\nsrun ./lulesh.exe -s 32\n",
		RequestedMin: 120,
	})
	// Twice: the second identical request should be a cache hit from the
	// same home replica.
	var first, second predictResponse
	for i, dst := range []*predictResponse{&first, &second} {
		post, err := http.Post(base+"/predict", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if post.StatusCode != http.StatusOK {
			t.Fatalf("predict %d status %d", i, post.StatusCode)
		}
		if err := json.NewDecoder(post.Body).Decode(dst); err != nil {
			t.Fatal(err)
		}
		post.Body.Close()
	}
	if !first.FromModel || first.Degraded || first.Replica == nil {
		t.Fatalf("first cluster reply: %+v", first)
	}
	if !second.Cached || second.RuntimeMin != first.RuntimeMin || *second.Replica != *first.Replica {
		t.Fatalf("second identical request should be a cache hit on the same replica: %+v vs %+v", second, first)
	}

	stats, err := http.Get(base + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var snap map[string]interface{}
	if err := json.NewDecoder(stats.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	stats.Body.Close()
	reps, ok := snap["replicas"].([]interface{})
	if !ok || len(reps) != 2 {
		t.Fatalf("cluster /stats must carry 2 replica snapshots: %v", snap["replicas"])
	}
	if hits, ok := snap["cache_hits"].(float64); !ok || hits < 1 {
		t.Fatalf("cluster /stats cache_hits = %v, want >= 1", snap["cache_hits"])
	}

	st.stop()
	wg.Wait()
	if code != 0 {
		t.Fatalf("daemon exit %d\nstderr: %s", code, stderr.String())
	}
}

// TestRunHTTPReadinessDrain pins the liveness/readiness split across a
// graceful drain: a -drain-grace window keeps the mux up after the stop
// signal, during which /readyz reports 503 while /healthz stays 200.
func TestRunHTTPReadinessDrain(t *testing.T) {
	var stdout, stderr bytes.Buffer
	type started struct {
		addr string
		stop func()
	}
	readyCh := make(chan started, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		run(demoArgs("-addr", "127.0.0.1:0", "-drain-grace", "300ms"),
			&stdout, &stderr, func(addr string, stop func()) { readyCh <- started{addr, stop} })
	}()
	st := <-readyCh
	base := "http://" + st.addr

	st.stop()
	// Inside the grace window the daemon is alive but not ready.
	deadline := time.Now().Add(5 * time.Second)
	for {
		rz, err := http.Get(base + "/readyz")
		if err != nil {
			t.Fatalf("readyz during grace window: %v", err)
		}
		rz.Body.Close()
		if rz.StatusCode == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("readyz never flipped to 503 after stop")
		}
		time.Sleep(5 * time.Millisecond)
	}
	hz, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz during grace window: %v", err)
	}
	hz.Body.Close()
	if hz.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d during drain, want 200 (liveness is not readiness)", hz.StatusCode)
	}
	wg.Wait()
}

// TestRunHTTPNoFallbackNotReady: -jobs 0 serves fallback-only; under
// -no-fallback the daemon reports not-ready while /predict still
// answers with the requested runtime.
func TestRunHTTPNoFallbackNotReady(t *testing.T) {
	var stdout, stderr bytes.Buffer
	type started struct {
		addr string
		stop func()
	}
	readyCh := make(chan started, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		run([]string{"-addr", "127.0.0.1:0", "-jobs", "0", "-no-fallback"},
			&stdout, &stderr, func(addr string, stop func()) { readyCh <- started{addr, stop} })
	}()
	st := <-readyCh
	base := "http://" + st.addr

	rz, err := http.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	rz.Body.Close()
	if rz.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("untrained -no-fallback daemon readyz status %d, want 503", rz.StatusCode)
	}

	body, _ := json.Marshal(predictRequest{Script: "x", RequestedMin: 42})
	post, err := http.Post(base+"/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var pr predictResponse
	if err := json.NewDecoder(post.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if pr.FromModel || pr.RuntimeMin != 42 {
		t.Fatalf("untrained daemon must echo the requested runtime: %+v", pr)
	}
	st.stop()
	wg.Wait()
}

// TestRunHTTPRequestTimeout504: in single mode an expired
// -request-timeout surfaces as 504 Gateway Timeout, distinguishing the
// server's own deadline from client disconnects.
func TestRunHTTPRequestTimeout504(t *testing.T) {
	defer fault.DisarmAll()
	var stdout, stderr bytes.Buffer
	type started struct {
		addr string
		stop func()
	}
	readyCh := make(chan started, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		run(demoArgs("-addr", "127.0.0.1:0", "-request-timeout", "30ms"),
			&stdout, &stderr, func(addr string, stop func()) { readyCh <- started{addr, stop} })
	}()
	st := <-readyCh
	base := "http://" + st.addr

	// Stall the flush path past the request timeout.
	fault.Arm(serve.FailpointFlush, fault.Failure{Sleep: 300 * time.Millisecond})
	body, _ := json.Marshal(predictRequest{Script: "y", RequestedMin: 1})
	post, err := http.Post(base+"/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("stalled predict status %d, want 504", post.StatusCode)
	}
	fault.DisarmAll()
	st.stop()
	wg.Wait()
}

// TestRunHTTPPipeline closes the loop over the wire: a daemon started
// with no initial training (-jobs 0) learns online from POST /complete
// — the stream crosses -retrain-every, the candidate passes the shadow
// gate (trivially: no baseline yet), is promoted by the pipeline's
// ticker, and /predict flips from the requested-runtime fallback to
// model predictions. /stats carries the pipeline object throughout and
// the retrain checkpoint materializes on disk.
func TestRunHTTPPipeline(t *testing.T) {
	var stdout, stderr bytes.Buffer
	ckpt := t.TempDir() + "/retrain.ckpt"
	type started struct {
		addr string
		stop func()
	}
	readyCh := make(chan started, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	var code int
	go func() {
		defer wg.Done()
		code = run([]string{"-addr", "127.0.0.1:0", "-jobs", "0", "-scale", "tiny", "-seed", "5",
			"-retrain-every", "10", "-shadow-window", "8", "-retrain-ckpt", ckpt},
			&stdout, &stderr, func(addr string, stop func()) { readyCh <- started{addr, stop} })
	}()

	var st started
	select {
	case st = <-readyCh:
	case <-time.After(2 * time.Minute):
		t.Fatal("daemon did not come up")
	}
	base := "http://" + st.addr

	// Before any completions: fallback predictions, idle pipeline.
	predictOnce := func() predictResponse {
		t.Helper()
		body, _ := json.Marshal(predictRequest{Script: "#!/bin/bash\nsrun ./lulesh.exe -s 32\n", RequestedMin: 120})
		post, err := http.Post(base+"/predict", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer post.Body.Close()
		if post.StatusCode != http.StatusOK {
			t.Fatalf("predict status %d", post.StatusCode)
		}
		var pr predictResponse
		if err := json.NewDecoder(post.Body).Decode(&pr); err != nil {
			t.Fatal(err)
		}
		return pr
	}
	if pr := predictOnce(); pr.FromModel {
		t.Fatalf("untrained daemon must serve the fallback: %+v", pr)
	}
	pipelineStats := func() map[string]interface{} {
		t.Helper()
		resp, err := http.Get(base + "/stats")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var snap map[string]interface{}
		if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
			t.Fatal(err)
		}
		pl, ok := snap["pipeline"].(map[string]interface{})
		if !ok {
			t.Fatalf("/stats missing the pipeline object: %v", snap)
		}
		return pl
	}
	if phase := pipelineStats()["phase"]; phase != "idle" {
		t.Fatalf("pipeline phase before completions = %v, want idle", phase)
	}

	// Malformed completions are rejected before touching the queue.
	for _, bad := range []string{`{`, `{"actual_sec": 60}`, `{"script": "x", "actual_sec": -1}`} {
		resp, err := http.Post(base+"/complete", "application/json", strings.NewReader(bad))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("complete(%s) status %d, want 400", bad, resp.StatusCode)
		}
	}

	// Stream two retrain cadences' worth of finished jobs.
	jobs := trace.Completed(trace.Generate(trace.Config{Seed: 7, Jobs: 60}))
	for i := 0; i < 20; i++ {
		j := jobs[i%len(jobs)]
		body, _ := json.Marshal(completeRequest{
			Script: j.Script, InputDeck: j.InputDeck, RequestedMin: j.RequestedMin,
			ActualSec: j.ActualSec, ReadBytes: j.ReadBytes, WriteBytes: j.WriteBytes,
		})
		resp, err := http.Post(base+"/complete", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("complete %d status %d, want 202", i, resp.StatusCode)
		}
	}

	// The first candidate has no baseline, passes the shadow gate
	// trivially, and the ticker promotes it into the serving path.
	deadline := time.Now().Add(2 * time.Minute)
	for {
		pl := pipelineStats()
		if ev, _ := pl["events"].(float64); ev >= 1 {
			if promoted, _ := pl["canary_promotions"].(float64); promoted >= 1 {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("pipeline never promoted a candidate: %v", pipelineStats())
		}
		time.Sleep(50 * time.Millisecond)
	}
	if pr := predictOnce(); !pr.FromModel {
		t.Fatalf("post-promotion prediction still a fallback: %+v", pr)
	}
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("retrain checkpoint missing after a training event: %v", err)
	}

	st.stop()
	wg.Wait()
	if code != 0 {
		t.Fatalf("daemon exit %d\nstderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "pipeline:") {
		t.Fatalf("shutdown stats block missing the pipeline line:\n%s", stdout.String())
	}
}

// TestRunPipelineQuantRejected: online retraining publishes float32
// candidates, so combining it with -quant is a configuration error.
func TestRunPipelineQuantRejected(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-quant", "-retrain-every", "50", "-jobs", "100", "-scale", "tiny"},
		&stdout, &stderr, nil); code != 1 {
		t.Fatalf("-quant with -retrain-every: exit %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "mutually exclusive") {
		t.Fatalf("stderr: %s", stderr.String())
	}
}
