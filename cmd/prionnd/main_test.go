package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// demoArgs keeps the daemon tests fast: tiny model, short trace.
func demoArgs(extra ...string) []string {
	base := []string{"-scale", "tiny", "-jobs", "150", "-seed", "5"}
	return append(base, extra...)
}

// TestRunDemo exercises the full in-process path: train, snapshot,
// coalesced serving under concurrent clients, drain, stats print.
func TestRunDemo(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run(demoArgs("-demo", "300", "-clients", "16", "-max-batch", "16"), &stdout, &stderr, nil)
	if code != 0 {
		t.Fatalf("exit %d\nstderr: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "predictions/sec") {
		t.Fatalf("demo output missing throughput line:\n%s", out)
	}
	if !strings.Contains(out, "0 failed") {
		t.Fatalf("demo reported failures:\n%s", out)
	}
	if !strings.Contains(out, "served 300") {
		t.Fatalf("stats block should report 300 model predictions:\n%s", out)
	}
}

// TestRunHTTP boots the daemon on an ephemeral port, predicts over
// HTTP, reads stats, and shuts down via the test stop hook (the same
// path a SIGINT takes).
func TestRunHTTP(t *testing.T) {
	var stdout, stderr bytes.Buffer
	type started struct {
		addr string
		stop func()
	}
	readyCh := make(chan started, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	var code int
	go func() {
		defer wg.Done()
		code = run(demoArgs("-addr", "127.0.0.1:0", "-queue", "64"), &stdout, &stderr,
			func(addr string, stop func()) { readyCh <- started{addr, stop} })
	}()

	var st started
	select {
	case st = <-readyCh:
	case <-time.After(2 * time.Minute):
		t.Fatal("daemon did not come up")
	}
	base := "http://" + st.addr

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}

	body, _ := json.Marshal(predictRequest{
		Script:       "#!/bin/bash\nsrun ./lulesh.exe -s 32\n",
		RequestedMin: 120,
	})
	var pr predictResponse
	post, err := http.Post(base+"/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if post.StatusCode != http.StatusOK {
		t.Fatalf("predict status %d", post.StatusCode)
	}
	if err := json.NewDecoder(post.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if !pr.FromModel {
		t.Fatalf("trained daemon served a fallback: %+v", pr)
	}
	if pr.RuntimeMin <= 0 {
		t.Fatalf("non-positive predicted runtime: %+v", pr)
	}

	// Malformed request → 400, not a wedged coalescer.
	bad, err := http.Post(base+"/predict", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed predict status %d, want 400", bad.StatusCode)
	}

	stats, err := http.Get(base + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var snap map[string]interface{}
	if err := json.NewDecoder(stats.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	stats.Body.Close()
	if served, ok := snap["served"].(float64); !ok || served < 1 {
		t.Fatalf("stats served = %v, want >= 1", snap["served"])
	}

	st.stop()
	wg.Wait()
	if code != 0 {
		t.Fatalf("daemon exit %d\nstderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "served") {
		t.Fatalf("shutdown must print a final stats block:\n%s", stdout.String())
	}
}

// TestRunBadFlags pins CLI error handling.
func TestRunBadFlags(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-scale", "nope", "-demo", "1"}, &stdout, &stderr, nil); code != 1 {
		t.Fatalf("unknown scale: exit %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "unknown scale") {
		t.Fatalf("stderr: %s", stderr.String())
	}
	if code := run([]string{"-definitely-not-a-flag"}, &stdout, &stderr, nil); code != 2 {
		t.Fatal("bad flag must exit 2")
	}
}

// TestRunLoadMissingCheckpoint: a bad -load path is a clean error.
func TestRunLoadMissingCheckpoint(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-load", t.TempDir() + "/nope.ckpt", "-demo", "1"}, &stdout, &stderr, nil); code != 1 {
		t.Fatalf("missing checkpoint: exit %d, want 1", code)
	}
}
