// Command prionn trains the PRIONN tool on a synthetic trace and either
// reports online prediction accuracy or predicts the resources of a job
// script supplied by the user.
//
// Usage:
//
//	prionn -jobs 2000 -scale fast            # online evaluation report
//	prionn -jobs 1000 -script my_job.sbatch  # predict one script
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"prionn/internal/metrics"
	"prionn/internal/prionn"
	"prionn/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("prionn: ")

	jobs := flag.Int("jobs", 2000, "trace length for training/evaluation")
	seed := flag.Int64("seed", 1, "seed for trace and model")
	scale := flag.String("scale", "fast", "model scale: tiny, fast, paper")
	script := flag.String("script", "", "job script file to predict after training")
	save := flag.String("save", "", "write the trained model to this file")
	load := flag.String("load", "", "restore a model from this file instead of training")
	verbose := flag.Bool("v", false, "print training progress")
	flag.Parse()

	cfg, err := configFor(*scale)
	if err != nil {
		log.Fatal(err)
	}
	cfg.Seed = *seed

	all := trace.Generate(trace.Config{Seed: *seed, Jobs: *jobs})

	if *script != "" {
		predictScript(all, cfg, *script, *save, *load)
		return
	}

	var progress func(done, total int)
	if *verbose {
		progress = func(done, total int) {
			log.Printf("retrained at %d/%d submissions", done, total)
		}
	}
	recs, err := prionn.RunOnline(all, cfg, progress)
	if err != nil {
		log.Fatal(err)
	}
	report(recs)
}

func configFor(scale string) (prionn.Config, error) {
	switch scale {
	case "tiny":
		return prionn.TinyConfig(), nil
	case "fast":
		return prionn.FastConfig(), nil
	case "paper":
		return prionn.DefaultConfig(), nil
	}
	return prionn.Config{}, fmt.Errorf("unknown scale %q (tiny, fast, paper)", scale)
}

func predictScript(all []trace.Job, cfg prionn.Config, path, save, load string) {
	text, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	var p *prionn.Predictor
	if load != "" {
		p, err = prionn.LoadFile(load)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("restored model from %s", load)
	} else {
		completed := trace.Completed(all)
		window := completed
		if len(window) > cfg.TrainWindow {
			window = window[len(window)-cfg.TrainWindow:]
		}
		scripts := make([]string, len(completed))
		for i, j := range completed {
			scripts[i] = j.Script
		}
		p, err = prionn.New(cfg, scripts)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("training on %d most recently completed jobs...", len(window))
		if _, err := p.Train(window); err != nil {
			log.Fatal(err)
		}
	}
	if save != "" {
		if err := p.SaveFile(save); err != nil {
			log.Fatal(err)
		}
		log.Printf("saved model to %s", save)
	}
	pred := p.PredictOne(string(text))
	fmt.Printf("predicted runtime:     %d min\n", pred.RuntimeMin)
	fmt.Printf("predicted bytes read:  %.3e\n", pred.ReadBytes)
	fmt.Printf("predicted bytes write: %.3e\n", pred.WriteBytes)
	fmt.Printf("implied read BW:       %.3e B/s\n", pred.ReadBW())
	fmt.Printf("implied write BW:      %.3e B/s\n", pred.WriteBW())
}

func report(recs []prionn.OnlineRecord) {
	pred := prionn.PredictedRecords(recs)
	if len(pred) == 0 {
		fmt.Println("no predictions made (trace too short for a training event)")
		return
	}
	var rt, rd, wr []float64
	for _, r := range pred {
		rt = append(rt, metrics.RelativeAccuracy(float64(r.Job.ActualMin()), float64(r.Pred.RuntimeMin)))
		rd = append(rd, metrics.RelativeAccuracy(r.Job.ReadBW(), r.Pred.ReadBW()))
		wr = append(wr, metrics.RelativeAccuracy(r.Job.WriteBW(), r.Pred.WriteBW()))
	}
	fmt.Printf("predictions: %d of %d submissions\n", len(pred), len(recs))
	for _, row := range []struct {
		name  string
		acc   []float64
		paper string
	}{
		{"runtime accuracy ", rt, "76.1% mean / 100% median"},
		{"read BW accuracy ", rd, "80.2% mean"},
		{"write BW accuracy", wr, "75.6% mean"},
	} {
		s := metrics.Summarize(row.acc)
		fmt.Printf("%s  mean %5.1f%%  median %5.1f%%  q1 %5.1f%%  q3 %5.1f%%   (paper: %s)\n",
			row.name, s.Mean*100, s.Median*100, s.Q1*100, s.Q3*100, row.paper)
	}
}
