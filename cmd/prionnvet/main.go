// Command prionnvet is the repo's static-analysis gate: a stdlib-only
// vet pass (go/ast + go/types, no external deps) over the bug classes
// that silently break the paper's reproducibility — unseeded
// randomness, exact float comparison, dropped IO errors, unjoined
// goroutines, loop-variable captures, unsynchronized package state,
// map-iteration order leaking into results, RNGs shared across
// goroutines or seeded from laundered wall time, wall-clock values
// flowing into data, and completion-order channel aggregation — plus
// the interprocedural concurrency/resource checks built on the package
// call graph: broken context chains, leaked arena buffers, mutexes
// held across blocking operations, violated //prionnvet:confined
// contracts, mixed atomic/plain access, inconsistently guarded fields,
// lock-order deadlock cycles, goroutines that can never terminate, and
// WaitGroup protocol violations. The checkers share an SSA-lite
// def-use index, a memoized call graph, and a lockset engine; see
// DESIGN.md §6.
//
// Usage:
//
//	go run ./cmd/prionnvet [-json] [-checks a,b] [patterns...]
//
// Patterns are package directories or the ./... form (the default).
// Findings are suppressed at the site with
//
//	//prionnvet:ignore <check>[,<check>...] -- <justification>
//
// on the flagged line or the line above it. The justification is
// mandatory: a directive without " -- reason" still suppresses but is
// reported as an ignore-reason meta-finding. Exit status: 0 clean,
// 1 findings, 2 usage or load errors.
//
// With -json, the output is a versioned envelope (schemaVersion 2):
// {"schemaVersion": 2, "findings": [...]} where each finding carries
// check, doc, message, file, line, col, offset, endLine, endCol,
// endOffset, and — for interprocedural findings — a "why" array of
// derivation steps (e.g. the lock acquisitions forming an order
// cycle). Findings are sorted (file, line, col, check), so outputs are
// diffable across commits. In text mode the why steps render as
// indented "why:" lines under the finding.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"prionn/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("prionnvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	list := fs.Bool("list", false, "list available checks and exit")
	checksFlag := fs.String("checks", "", "comma-separated subset of checks to run (default: all)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, c := range analysis.All() {
			if _, err := fmt.Fprintf(stdout, "%-18s %s\n", c.Name(), c.Doc()); err != nil {
				_, _ = fmt.Fprintf(stderr, "prionnvet: %v\n", err)
				return 2
			}
		}
		return 0
	}

	checkers := analysis.All()
	if *checksFlag != "" {
		checkers = nil
		for _, name := range strings.Split(*checksFlag, ",") {
			name = strings.TrimSpace(name)
			c := analysis.ByName(name)
			if c == nil {
				_, _ = fmt.Fprintf(stderr, "prionnvet: unknown check %q; valid checks are %s\n", name, strings.Join(checkNames(), ", "))
				return 2
			}
			checkers = append(checkers, c)
		}
	}

	root, err := findModuleRoot()
	if err != nil {
		_, _ = fmt.Fprintf(stderr, "prionnvet: %v\n", err)
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirs, err := expandPatterns(patterns)
	if err != nil {
		_, _ = fmt.Fprintf(stderr, "prionnvet: %v\n", err)
		return 2
	}

	loader, err := analysis.NewLoader(root)
	if err != nil {
		_, _ = fmt.Fprintf(stderr, "prionnvet: %v\n", err)
		return 2
	}

	var findings []analysis.Finding
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			_, _ = fmt.Fprintf(stderr, "prionnvet: %v\n", err)
			return 2
		}
		findings = append(findings, analysis.RunAll(pkg.Pass(loader.Fset), checkers)...)
	}

	// Report paths relative to the module root for stable, clickable
	// output regardless of where the tool was invoked, then re-sort the
	// aggregate so multi-package output (and its JSON) is deterministic.
	for i := range findings {
		if rel, err := filepath.Rel(root, findings[i].File); err == nil && !strings.HasPrefix(rel, "..") {
			findings[i].File = rel
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Check < b.Check
	})

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(analysis.NewReport(findings)); err != nil {
			_, _ = fmt.Fprintf(stderr, "prionnvet: %v\n", err)
			return 2
		}
	} else {
		for _, f := range findings {
			if _, err := fmt.Fprintln(stdout, f.String()); err != nil {
				_, _ = fmt.Fprintf(stderr, "prionnvet: %v\n", err)
				return 2
			}
			// Interprocedural findings carry their derivation: render the
			// acquisition chain as indented why-steps under the line.
			for _, step := range f.Why {
				if _, err := fmt.Fprintf(stdout, "\twhy: %s\n", step); err != nil {
					_, _ = fmt.Fprintf(stderr, "prionnvet: %v\n", err)
					return 2
				}
			}
		}
	}
	if len(findings) > 0 {
		if !*jsonOut {
			_, _ = fmt.Fprintf(stderr, "prionnvet: %d finding(s)\n", len(findings))
		}
		return 1
	}
	return 0
}

// checkNames returns every registered checker name, for the -checks
// error message.
func checkNames() []string {
	var names []string
	for _, c := range analysis.All() {
		names = append(names, c.Name())
	}
	return names
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// expandPatterns turns CLI patterns into package directories, resolved
// against the working directory as the go tool does. "dir/..."
// recurses; a plain path must itself contain Go files.
func expandPatterns(patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(ds ...string) {
		for _, d := range ds {
			if !seen[d] {
				seen[d] = true
				dirs = append(dirs, d)
			}
		}
	}
	for _, pat := range patterns {
		recursive := false
		if pat == "..." {
			recursive = true
			pat = "."
		} else if strings.HasSuffix(pat, "/...") {
			recursive = true
			pat = strings.TrimSuffix(pat, "/...")
		}
		if pat == "" {
			pat = "."
		}
		abs, err := filepath.Abs(pat)
		if err != nil {
			return nil, err
		}
		if recursive {
			ds, err := analysis.PackageDirs(abs, nil)
			if err != nil {
				return nil, err
			}
			add(ds...)
		} else {
			add(abs)
		}
	}
	return dirs, nil
}
