package main

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"prionn/internal/analysis"
)

// runCLI drives run() with captured streams, the same entry point main
// uses, so tests see exactly what a shell invocation would.
func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestListFlag(t *testing.T) {
	code, out, errb := runCLI(t, "-list")
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, errb)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if want := len(analysis.All()); len(lines) != want {
		t.Fatalf("-list printed %d lines, want %d:\n%s", len(lines), want, out)
	}
	for i, c := range analysis.All() {
		if !strings.HasPrefix(lines[i], c.Name()) {
			t.Errorf("line %d = %q, want prefix %q", i, lines[i], c.Name())
		}
		if !strings.Contains(lines[i], c.Doc()) {
			t.Errorf("line %d missing doc for %s", i, c.Name())
		}
	}
}

func TestUnknownCheck(t *testing.T) {
	code, _, errb := runCLI(t, "-checks", "no-such-check", "testdata/clean")
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errb, `unknown check "no-such-check"`) {
		t.Errorf("stderr %q does not name the bad check", errb)
	}
	// The error must enumerate every valid name so the fix is in the
	// message, not a second invocation of -list.
	for _, c := range analysis.All() {
		if !strings.Contains(errb, c.Name()) {
			t.Errorf("stderr does not list valid check %s", c.Name())
		}
	}
}

func TestCleanPackageExitsZero(t *testing.T) {
	code, out, errb := runCLI(t, "testdata/clean")
	if code != 0 || out != "" || errb != "" {
		t.Errorf("clean run: exit=%d stdout=%q stderr=%q, want 0 with no output", code, out, errb)
	}
}

func TestFindingsExitOne(t *testing.T) {
	code, out, errb := runCLI(t, "testdata/dirty")
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, errb)
	}
	// The dirty fixture is the registry's living proof: every registered
	// checker must fire at least once, so a checker that silently stops
	// firing (or a fixture edit that defuses a trigger) fails here.
	for _, c := range analysis.All() {
		if !strings.Contains(out, c.Name()+":") {
			t.Errorf("stdout has no %s finding:\n%s", c.Name(), out)
		}
	}
	// Interprocedural findings render their derivation as indented
	// why-steps (the dirty lock-order cycle has a two-step chain).
	if !strings.Contains(out, "\twhy: ") {
		t.Errorf("stdout missing why-step rendering:\n%s", out)
	}
	if !regexp.MustCompile(`\d+ finding\(s\)`).MatchString(errb) {
		t.Errorf("stderr = %q, want finding count summary", errb)
	}
}

func TestChecksSubset(t *testing.T) {
	code, out, _ := runCLI(t, "-checks", "float-eq", "testdata/dirty")
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if !strings.Contains(out, "float-eq") || strings.Contains(out, "unseeded-rand") {
		t.Errorf("-checks float-eq should report only float-eq findings:\n%s", out)
	}
}

func TestJSONShape(t *testing.T) {
	code, out, errb := runCLI(t, "-json", "testdata/dirty", "testdata/clean")
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, errb)
	}
	if errb != "" {
		t.Errorf("-json must keep stderr clean for piping, got %q", errb)
	}
	var report analysis.Report
	if err := json.Unmarshal([]byte(out), &report); err != nil {
		t.Fatalf("output is not a JSON report envelope: %v\n%s", err, out)
	}
	if report.SchemaVersion != analysis.SchemaVersion {
		t.Fatalf("schemaVersion = %d, want %d", report.SchemaVersion, analysis.SchemaVersion)
	}
	findings := report.Findings
	if len(findings) < len(analysis.All()) {
		t.Fatalf("got %d findings, want at least one per checker (%d)", len(findings), len(analysis.All()))
	}
	seen := map[string]bool{}
	wantFile := filepath.Join("cmd", "prionnvet", "testdata", "dirty", "dirty.go")
	for i, f := range findings {
		seen[f.Check] = true
		if f.File != wantFile {
			t.Errorf("finding %d file = %q, want module-relative %q", i, f.File, wantFile)
		}
		if f.Check == "" || f.Message == "" || f.Doc == "" {
			t.Errorf("finding %d missing check/message/doc: %+v", i, f)
		}
		// Token-anchored findings have a zero-width range (end == start);
		// an end before the start would mean the schema broke.
		if f.Line <= 0 || f.Col <= 0 || f.Offset < 0 || f.EndOffset < f.Offset {
			t.Errorf("finding %d has a degenerate range: %+v", i, f)
		}
		if f.EndLine < f.Line || f.EndLine <= 0 || f.EndCol <= 0 {
			t.Errorf("finding %d has bad end position: %+v", i, f)
		}
		// Findings must be sorted (file, line, col, check) so JSON output
		// is diffable across commits.
		if i > 0 {
			p := findings[i-1]
			if p.Line > f.Line || (p.Line == f.Line && p.Col > f.Col) ||
				(p.Line == f.Line && p.Col == f.Col && p.Check > f.Check) {
				t.Errorf("findings %d..%d out of order: %s:%d:%d then %s:%d:%d",
					i-1, i, p.Check, p.Line, p.Col, f.Check, f.Line, f.Col)
			}
		}
	}
	for _, c := range analysis.All() {
		if !seen[c.Name()] {
			t.Errorf("no %s finding in JSON output", c.Name())
		}
	}
	// The lock-order cycle carries its acquisition chain in the why field.
	cycle := false
	for _, f := range findings {
		if f.Check == "lock-order-cycle" && len(f.Why) >= 2 {
			cycle = true
		}
	}
	if !cycle {
		t.Error("lock-order-cycle finding is missing its why chain")
	}
}

func TestJSONCleanEmitsEmptyFindings(t *testing.T) {
	code, out, _ := runCLI(t, "-json", "testdata/clean")
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	var report analysis.Report
	if err := json.Unmarshal([]byte(out), &report); err != nil {
		t.Fatalf("clean -json output is not a report envelope: %v\n%s", err, out)
	}
	if report.SchemaVersion != analysis.SchemaVersion {
		t.Errorf("schemaVersion = %d, want %d", report.SchemaVersion, analysis.SchemaVersion)
	}
	// The findings array must serialize as [], not null, so downstream
	// jq pipelines never see a null.
	if !strings.Contains(out, `"findings": []`) {
		t.Errorf("clean -json output = %q, want empty findings array (not null)", out)
	}
}

func TestBadPathExitsTwo(t *testing.T) {
	code, _, errb := runCLI(t, "testdata/no-such-dir")
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errb, "prionnvet:") {
		t.Errorf("stderr = %q, want a prionnvet-prefixed error", errb)
	}
}

func TestBadFlagExitsTwo(t *testing.T) {
	code, _, errb := runCLI(t, "-definitely-not-a-flag")
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errb, "flag") {
		t.Errorf("stderr = %q, want flag usage error", errb)
	}
}
