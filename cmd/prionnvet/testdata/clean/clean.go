// Package clean is a CLI test fixture that no checker flags.
package clean

// Add is deliberately boring: no randomness, no floats, no goroutines.
func Add(a, b int) int { return a + b }
