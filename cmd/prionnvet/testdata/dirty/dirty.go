// Package dirty is the CLI test fixture: every registered checker
// fires at least once in this file, so main_test.go can pin the CLI's
// exit code, text rendering, and -json schema against the full checker
// registry. Each function below is the minimal trigger for the checker
// named in its comment (some launches intentionally trip several).
package dirty

import (
	"context"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// Compare trips float-eq.
func Compare(a, b float64) bool {
	return a == b
}

// Roll trips unseeded-rand.
func Roll() int {
	return rand.Intn(6)
}

// DropErr trips unchecked-err.
func DropErr(f *os.File) {
	f.Close()
}

func doWork() error { return nil }

// StartLeaky trips naked-goroutine, bare-panic-goroutine, AND
// goroutine-lifecycle on one launch: unjoined, no recover, and parked
// forever on a send nobody reads.
func StartLeaky() {
	errs := make(chan error)
	go func() {
		err := doWork()
		if err != nil {
			panic(err)
		}
		errs <- err
	}()
}

// CaptureLoop trips loopvar-capture (joined, so the launch itself is
// not naked).
func CaptureLoop(items []int) {
	var wg sync.WaitGroup
	for _, it := range items {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = it * 2
		}()
	}
	wg.Wait()
}

var hits int

// Bump trips mutable-pkg-var.
func Bump() {
	hits++
}

// Values trips map-order.
func Values(m map[string]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v)
	}
	return out
}

// Shadow trips seed-flow.
func Shadow(rng *rand.Rand) float64 {
	total := rng.Float64()
	if total > 0.5 {
		rng := rand.New(rand.NewSource(2))
		total += rng.Float64()
	}
	return total
}

// Elapsed trips time-dep.
func Elapsed() float64 {
	start := time.Now()
	Compare(1, 2)
	return time.Since(start).Seconds()
}

// Gather trips nondet-select.
func Gather(a, b chan float64) float64 {
	var sum float64
	for i := 0; i < 2; i++ {
		select {
		case v := <-a:
			sum += v
		case v := <-b:
			sum += v
		}
	}
	return sum
}

func helper(ctx context.Context) {}

// Handler trips ctx-propagation.
func Handler(ctx context.Context) {
	helper(context.Background())
}

type buf struct{ data []byte }

type pool struct{ free []*buf }

func (p *pool) Get(n int) *buf { return &buf{data: make([]byte, n)} }

func (p *pool) Put(b *buf) { p.free = append(p.free, b) }

// Leak trips arena-leak.
func Leak(p *pool) byte {
	b := p.Get(8)
	return b.data[0]
}

type store struct{ mu sync.Mutex }

// Save trips lock-held-io.
func (s *store) Save(path string, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return os.WriteFile(path, data, 0o600)
}

type engine struct{ state int }

//prionnvet:confined
func (e *engine) predict() int {
	e.state++
	return e.state
}

// TwoSites trips confined-call.
func TwoSites(e *engine, wg *sync.WaitGroup) {
	wg.Add(2)
	go func() {
		defer wg.Done()
		e.predict()
	}()
	go func() {
		defer wg.Done()
		e.predict()
	}()
	wg.Wait()
}

var total int64

func BumpAtomic() {
	atomic.AddInt64(&total, 1)
}

// ReadPlain trips atomic-plain-mix.
func ReadPlain() int64 {
	return total
}

type gauge struct {
	mu sync.Mutex
	n  int
}

// RunGauge trips guarded-field: the lock-free write races with the
// goroutine writing under g.mu.
func RunGauge(g *gauge) {
	go g.loop()
	g.n = 7
}

func (g *gauge) loop() {
	g.mu.Lock()
	g.n++
	g.mu.Unlock()
}

var (
	muA sync.Mutex
	muB sync.Mutex
)

// LockAB/LockBA trip lock-order-cycle.
func LockAB() {
	muA.Lock()
	muB.Lock()
	muB.Unlock()
	muA.Unlock()
}

func LockBA() {
	muB.Lock()
	muA.Lock()
	muA.Unlock()
	muB.Unlock()
}

// AddInside trips waitgroup-misuse.
func AddInside() {
	var wg sync.WaitGroup
	go func() {
		wg.Add(1)
		defer wg.Done()
	}()
	wg.Wait()
}
