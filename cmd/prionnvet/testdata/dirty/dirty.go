// Package dirty is a CLI test fixture with two known findings:
// a float-eq on Compare's line and an unseeded-rand on Roll's.
package dirty

import "math/rand"

// Compare trips float-eq.
func Compare(a, b float64) bool {
	return a == b
}

// Roll trips unseeded-rand.
func Roll() int {
	return rand.Intn(6)
}
