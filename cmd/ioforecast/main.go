// Command ioforecast runs the full phase-2 pipeline (paper §4, Fig. 10)
// end to end on one synthetic trace: PRIONN online predictions → snapshot
// turnaround predictions → system-IO forecast → IO-burst report.
//
// Usage:
//
//	ioforecast -jobs 1500 -nodes 1296
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"prionn/internal/ioaware"
	"prionn/internal/metrics"
	"prionn/internal/prionn"
	"prionn/internal/sched"
	"prionn/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ioforecast: ")

	jobs := flag.Int("jobs", 1500, "trace length")
	seed := flag.Int64("seed", 1, "seed")
	nodes := flag.Int("nodes", 1296, "machine size")
	scale := flag.String("scale", "fast", "model scale: tiny, fast, paper")
	flag.Parse()

	var cfg prionn.Config
	switch *scale {
	case "tiny":
		cfg = prionn.TinyConfig()
	case "fast":
		cfg = prionn.FastConfig()
	case "paper":
		cfg = prionn.DefaultConfig()
	default:
		log.Fatalf("unknown scale %q", *scale)
	}
	cfg.Seed = *seed
	cfg.PredictIO = true

	all := trace.Generate(trace.Config{Seed: *seed, Jobs: *jobs})
	completed := trace.Completed(all)
	log.Printf("trace: %d jobs (%d completed)", len(all), len(completed))

	// Phase 1: PRIONN per-job predictions in the online loop.
	recs, err := prionn.RunOnline(all, cfg, func(done, total int) {
		log.Printf("retrained at %d/%d submissions", done, total)
	})
	if err != nil {
		log.Fatal(err)
	}
	byID := map[int]prionn.OnlineRecord{}
	for _, r := range recs {
		byID[r.Job.ID] = r
	}

	// Phase 2: scheduler simulation with snapshot turnaround prediction.
	items := make([]sched.Item, 0, len(completed))
	for _, j := range completed {
		items = append(items, sched.Item{
			ID: j.ID, Submit: j.SubmitTime, Nodes: j.Nodes,
			RuntimeSec: j.ActualSec, LimitSec: int64(j.RequestedMin) * 60,
		})
	}
	pred := func(id int) int64 {
		r := byID[id]
		if !r.Predicted {
			return int64(r.Job.RequestedMin) * 60
		}
		return int64(r.Pred.RuntimeMin) * 60
	}
	results, err := sched.PredictTurnarounds(items, sched.SimConfig{Nodes: *nodes, Backfill: true}, pred)
	if err != nil {
		log.Fatal(err)
	}

	// Build actual vs predicted system-IO series.
	var actualIvs, predIvs []ioaware.Interval
	var t0, t1 int64
	first := true
	var taAcc []float64
	for _, r := range results {
		rec := byID[r.ID]
		j := rec.Job
		actualIvs = append(actualIvs, ioaware.Interval{
			Start: r.RealPlacement.Start, End: r.RealPlacement.End, BW: j.ReadBW() + j.WriteBW(),
		})
		pp := r.PredPlacement
		if pp.End <= pp.Start {
			pp = r.RealPlacement
		}
		predIvs = append(predIvs, ioaware.Interval{
			Start: pp.Start, End: pp.End, BW: rec.Pred.ReadBW() + rec.Pred.WriteBW(),
		})
		if first || r.RealPlacement.Start < t0 {
			t0 = r.RealPlacement.Start
		}
		first = false
		if r.RealPlacement.End > t1 {
			t1 = r.RealPlacement.End
		}
		if pp.End > t1 {
			t1 = pp.End
		}
		taAcc = append(taAcc, metrics.RelativeAccuracy(float64(r.RealSec), float64(r.PredictedSec)))
	}
	actual := ioaware.Series(actualIvs, t0, t1, 60)
	predicted := ioaware.Series(predIvs, t0, t1, 60)

	ts := metrics.Summarize(taAcc)
	fmt.Printf("\nturnaround accuracy: mean %.1f%%  median %.1f%%  (paper: 42.1%% / 40.8%%)\n",
		ts.Mean*100, ts.Median*100)

	ioAcc := metrics.Summarize(ioaware.SeriesAccuracy(actual, predicted))
	fmt.Printf("system-IO accuracy:  mean %.1f%%  median %.1f%%\n", ioAcc.Mean*100, ioAcc.Median*100)

	thr := ioaware.BurstThreshold(actual)
	am := ioaware.BurstMask(actual, thr)
	pm := ioaware.BurstMask(predicted, thr)
	fmt.Printf("burst threshold:     %.3e B/s (mean + 1 std, paper Fig. 12a style)\n\n", thr)

	fmt.Println("window(min)  sensitivity  precision")
	for _, w := range []int{5, 10, 20, 30, 40, 50, 60} {
		c := ioaware.MatchBursts(am, pm, w/2)
		fmt.Printf("%10d  %10.1f%%  %8.1f%%\n", w, c.Sensitivity()*100, c.Precision()*100)
	}

	// A coarse text rendering of the two series (16 buckets).
	fmt.Println("\nsystem IO over time (actual vs predicted, relative):")
	fmt.Printf("actual    %s\n", spark(actual))
	fmt.Printf("predicted %s\n", spark(predicted))
}

// spark renders a series as a 64-character bar string.
func spark(series []float64) string {
	if len(series) == 0 {
		return ""
	}
	const width = 64
	levels := []rune(" ▁▂▃▄▅▆▇█")
	buckets := make([]float64, width)
	for i, v := range series {
		buckets[i*width/len(series)] += v
	}
	var max float64
	for _, v := range buckets {
		if v > max {
			max = v
		}
	}
	if max == 0 {
		return strings.Repeat(" ", width)
	}
	var b strings.Builder
	for _, v := range buckets {
		b.WriteRune(levels[int(v/max*float64(len(levels)-1))])
	}
	return b.String()
}
