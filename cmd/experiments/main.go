// Command experiments regenerates the paper's tables and figures
// (DESIGN.md §3 lists the mapping). Results print as text tables with
// the paper's published numbers alongside.
//
// A failing figure — error, panic, or deadline — no longer aborts the
// run: its failure is recorded in the report, the remaining figures
// still render, and the process exits nonzero.
//
// Usage:
//
//	experiments -run all -jobs 2000
//	experiments -run fig8,fig9 -jobs 5000 -scale fast
//	experiments -run fig11 -jobs 4000 -samples 5 -samplejobs 1500
//	experiments -run all -timeout 10m
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"prionn/internal/experiments"
	"prionn/internal/fault"
	"prionn/internal/prionn"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable body of main: parse argv, run the selected
// figures, write the report to stdout (and -o), log to stderr, and
// return the process exit code.
func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)

	runIDs := fs.String("run", "all", "comma-separated experiment ids, or 'all' (known: "+
		strings.Join(experiments.IDs(), ", ")+")")
	jobs := fs.Int("jobs", 2000, "trace length")
	seed := fs.Int64("seed", 1, "seed")
	scale := fs.String("scale", "fast", "model scale: tiny, fast, paper")
	nodes := fs.Int("nodes", 1296, "simulated machine size (Cab: 1296)")
	samples := fs.Int("samples", 5, "sub-trace samples for §4 experiments (paper: 5)")
	sampleJobs := fs.Int("samplejobs", 0, "jobs per sample (default jobs/2)")
	timeout := fs.Duration("timeout", 0, "per-figure deadline (0 disables); a figure past it fails, the rest still run")
	inject := fs.String("inject", "", "comma-separated id=error|panic pairs forcing figures to fail (exercises the degraded-report path)")
	out := fs.String("o", "", "also write the report to this file")
	quiet := fs.Bool("q", false, "suppress progress output")
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	logf := func(format string, args ...interface{}) {
		_, _ = fmt.Fprintf(stderr, "experiments: "+format+"\n", args...)
	}

	var cfg prionn.Config
	switch *scale {
	case "tiny":
		cfg = prionn.TinyConfig()
	case "fast":
		cfg = prionn.FastConfig()
	case "paper":
		cfg = prionn.DefaultConfig()
	default:
		logf("unknown scale %q", *scale)
		return 2
	}
	cfg.Seed = *seed

	opts := experiments.Options{
		Jobs:       *jobs,
		Seed:       *seed,
		Cfg:        cfg,
		Nodes:      *nodes,
		Samples:    *samples,
		SampleJobs: *sampleJobs,
	}
	if !*quiet {
		opts.Progress = func(s string) { logf("%s", s) }
	}

	if *inject != "" {
		disarm, err := armInjections(*inject)
		if err != nil {
			logf("%v", err)
			return 2
		}
		defer disarm()
	}

	ids := experiments.IDs()
	if *runIDs != "all" {
		ids = strings.Split(*runIDs, ",")
	}

	var w io.Writer = stdout
	closeOut := func() error { return nil }
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			logf("%v", err)
			return 1
		}
		closeOut = f.Close
		w = io.MultiWriter(stdout, f)
	}

	if _, err := fmt.Fprintf(w, "PRIONN experiment harness — %d jobs, scale %s, seed %d\n\n", *jobs, *scale, *seed); err != nil {
		logf("%v", err)
		return 1
	}
	var failed []string
	for _, id := range ids {
		id = strings.TrimSpace(id)
		ctx := context.Background()
		cancel := context.CancelFunc(func() {})
		if *timeout > 0 {
			ctx, cancel = context.WithTimeout(ctx, *timeout)
		}
		start := time.Now()
		res, err := experiments.RunCtx(ctx, id, opts)
		cancel()
		if err != nil {
			failed = append(failed, id)
			logf("%s failed: %v", id, err)
			if _, werr := fmt.Fprintf(w, "== %s: FAILED ==\nerror: %v\n\n", id, err); werr != nil {
				logf("%v", werr)
				return 1
			}
			continue
		}
		//prionnvet:ignore time-dep -- wall time is an intentional measurement note, not model data
		res.Notes = append(res.Notes, fmt.Sprintf("wall time %.1fs", time.Since(start).Seconds()))
		if _, err := res.WriteTo(w); err != nil {
			logf("%v", err)
			return 1
		}
	}
	// Close reports buffered-write failures; losing the report file
	// silently would defeat the point of -o.
	if err := closeOut(); err != nil {
		logf("%v", err)
		return 1
	}
	if len(failed) > 0 {
		logf("%d of %d figure(s) failed: %s", len(failed), len(ids), strings.Join(failed, ", "))
		return 1
	}
	return 0
}

// armInjections parses -inject ("fig3=panic,fig11=error") and arms the
// corresponding figure failpoints, returning a disarm for all of them.
func armInjections(spec string) (func(), error) {
	var disarms []func()
	disarmAll := func() {
		for _, d := range disarms {
			d()
		}
	}
	for _, pair := range strings.Split(spec, ",") {
		id, mode, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok {
			disarmAll()
			return nil, fmt.Errorf("bad -inject entry %q (want id=error or id=panic)", pair)
		}
		if _, err := experiments.Lookup(id); err != nil {
			disarmAll()
			return nil, err
		}
		var f fault.Failure
		switch mode {
		case "error":
			f.Err = fault.ErrInjected
		case "panic":
			f.Panic = true
		default:
			disarmAll()
			return nil, fmt.Errorf("bad -inject mode %q for %s (want error or panic)", mode, id)
		}
		disarms = append(disarms, fault.Arm(experiments.FailpointFigure(id), f))
	}
	return disarmAll, nil
}
