// Command experiments regenerates the paper's tables and figures
// (DESIGN.md §3 lists the mapping). Results print as text tables with
// the paper's published numbers alongside.
//
// Usage:
//
//	experiments -run all -jobs 2000
//	experiments -run fig8,fig9 -jobs 5000 -scale fast
//	experiments -run fig11 -jobs 4000 -samples 5 -samplejobs 1500
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"
	"time"

	"prionn/internal/experiments"
	"prionn/internal/prionn"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")

	run := flag.String("run", "all", "comma-separated experiment ids, or 'all' (known: "+
		strings.Join(experiments.IDs(), ", ")+")")
	jobs := flag.Int("jobs", 2000, "trace length")
	seed := flag.Int64("seed", 1, "seed")
	scale := flag.String("scale", "fast", "model scale: tiny, fast, paper")
	nodes := flag.Int("nodes", 1296, "simulated machine size (Cab: 1296)")
	samples := flag.Int("samples", 5, "sub-trace samples for §4 experiments (paper: 5)")
	sampleJobs := flag.Int("samplejobs", 0, "jobs per sample (default jobs/2)")
	out := flag.String("o", "", "also write the report to this file")
	quiet := flag.Bool("q", false, "suppress progress output")
	flag.Parse()

	var cfg prionn.Config
	switch *scale {
	case "tiny":
		cfg = prionn.TinyConfig()
	case "fast":
		cfg = prionn.FastConfig()
	case "paper":
		cfg = prionn.DefaultConfig()
	default:
		log.Fatalf("unknown scale %q", *scale)
	}
	cfg.Seed = *seed

	opts := experiments.Options{
		Jobs:       *jobs,
		Seed:       *seed,
		Cfg:        cfg,
		Nodes:      *nodes,
		Samples:    *samples,
		SampleJobs: *sampleJobs,
	}
	if !*quiet {
		opts.Progress = func(s string) { log.Print(s) }
	}

	ids := experiments.IDs()
	if *run != "all" {
		ids = strings.Split(*run, ",")
	}

	var w io.Writer = os.Stdout
	closeOut := func() error { return nil }
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		closeOut = f.Close
		w = io.MultiWriter(os.Stdout, f)
	}

	if _, err := fmt.Fprintf(w, "PRIONN experiment harness — %d jobs, scale %s, seed %d\n\n", *jobs, *scale, *seed); err != nil {
		log.Fatal(err)
	}
	for _, id := range ids {
		id = strings.TrimSpace(id)
		start := time.Now()
		res, err := experiments.Run(id, opts)
		if err != nil {
			log.Fatalf("%s: %v", id, err)
		}
		//prionnvet:ignore time-dep wall time is an intentional measurement note, not model data
		res.Notes = append(res.Notes, fmt.Sprintf("wall time %.1fs", time.Since(start).Seconds()))
		if _, err := res.WriteTo(w); err != nil {
			log.Fatal(err)
		}
	}
	// Close reports buffered-write failures; losing the report file
	// silently would defeat the point of -o.
	if err := closeOut(); err != nil {
		log.Fatal(err)
	}
}
