package main

import (
	"bytes"
	"strings"
	"testing"
)

// tinyArgs keeps CLI tests fast: fig3/fig4 only measure the data-mapping
// stage, no online training.
func tinyArgs(extra ...string) []string {
	return append([]string{
		"-run", "fig3,fig4", "-jobs", "300", "-scale", "tiny", "-q",
	}, extra...)
}

func TestRunAllFiguresSucceed(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(tinyArgs(), &out, &errb); code != 0 {
		t.Fatalf("exit %d; stderr:\n%s", code, errb.String())
	}
	for _, id := range []string{"fig3", "fig4"} {
		if !strings.Contains(out.String(), "== "+id+":") {
			t.Fatalf("report lacks %s section:\n%s", id, out.String())
		}
	}
}

// TestRunDegradesOnInjectedPanic is the acceptance check for graceful
// degradation: with fig3 forced to panic via fault injection, the run
// still emits fig4's report section and exits nonzero.
func TestRunDegradesOnInjectedPanic(t *testing.T) {
	var out, errb bytes.Buffer
	code := run(tinyArgs("-inject", "fig3=panic"), &out, &errb)
	if code == 0 {
		t.Fatal("exit 0 despite a failed figure")
	}
	if !strings.Contains(out.String(), "== fig3: FAILED ==") {
		t.Fatalf("report does not mark fig3 failed:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "== fig4:") {
		t.Fatalf("surviving figure fig4 missing from report:\n%s", out.String())
	}
	if !strings.Contains(errb.String(), "fig3") {
		t.Fatalf("stderr does not name the failed figure:\n%s", errb.String())
	}
}

func TestRunDegradesOnInjectedError(t *testing.T) {
	var out, errb bytes.Buffer
	code := run(tinyArgs("-inject", "fig4=error"), &out, &errb)
	if code == 0 {
		t.Fatal("exit 0 despite a failed figure")
	}
	if !strings.Contains(out.String(), "== fig4: FAILED ==") {
		t.Fatalf("report does not mark fig4 failed:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "== fig3:") {
		t.Fatalf("surviving figure fig3 missing from report:\n%s", out.String())
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(tinyArgs("-inject", "fig3"), &out, &errb); code != 2 {
		t.Fatalf("malformed -inject: exit %d", code)
	}
	if code := run(tinyArgs("-inject", "nope=error"), &out, &errb); code != 2 {
		t.Fatalf("unknown -inject id: exit %d", code)
	}
	if code := run([]string{"-scale", "huge"}, &out, &errb); code != 2 {
		t.Fatalf("unknown scale: exit %d", code)
	}
	if !strings.Contains(errb.String(), "valid ids are:") {
		t.Fatalf("unknown-id error does not list valid ids:\n%s", errb.String())
	}
}

// TestRunTimeoutFailsSlowFigure gives a training-driven figure a
// deadline it cannot meet and asserts the run reports the failure and
// exits nonzero instead of hanging.
func TestRunTimeoutFailsSlowFigure(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-run", "fig8", "-jobs", "400", "-scale", "tiny", "-q", "-timeout", "1ns"}, &out, &errb)
	if code == 0 {
		t.Fatal("exit 0 despite a deadline failure")
	}
	if !strings.Contains(out.String(), "== fig8: FAILED ==") {
		t.Fatalf("report does not mark fig8 failed:\n%s", out.String())
	}
}
