// Futurework demonstrates the two extensions the paper's conclusion
// proposes (§6): feeding application input decks into the workflow and
// predicting power. The trace generator attaches a deck and a mean power
// draw to every job; PRIONN maps script+deck and trains a power head.
//
//	go run ./examples/futurework
package main

import (
	"fmt"
	"log"

	"prionn/internal/metrics"
	"prionn/internal/prionn"
	"prionn/internal/trace"
)

func main() {
	log.SetFlags(0)
	jobs := trace.Completed(trace.Generate(trace.Config{Seed: 33, Jobs: 500, Users: 24, Apps: 8}))
	train, test := jobs[:350], jobs[350:]

	for _, withDeck := range []bool{false, true} {
		cfg := prionn.FastConfig()
		cfg.PredictIO = false
		cfg.PredictPower = true
		cfg.IncludeDeck = withDeck
		cfg.Epochs = 4

		scripts := make([]string, len(train))
		for i, j := range train {
			scripts[i] = j.Script
			if withDeck {
				scripts[i] += "\n" + j.InputDeck
			}
		}
		p, err := prionn.New(cfg, scripts)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := p.Train(train); err != nil {
			log.Fatal(err)
		}

		var rtAcc, pwAcc float64
		preds := p.PredictJobs(test)
		for i, j := range test {
			rtAcc += metrics.RelativeAccuracy(float64(j.ActualMin()), float64(preds[i].RuntimeMin))
			pwAcc += metrics.RelativeAccuracy(j.AvgPowerW, preds[i].PowerW)
		}
		rtAcc /= float64(len(test))
		pwAcc /= float64(len(test))

		label := "script only         "
		if withDeck {
			label = "script + input deck "
		}
		fmt.Printf("%s runtime accuracy %5.1f%%   power accuracy %5.1f%%\n",
			label, rtAcc*100, pwAcc*100)
	}
	fmt.Println("\n(paper §6: \"future work includes incorporating application input decks")
	fmt.Println(" into PRIONN's workflow and the prediction of other types of resources")
	fmt.Println(" such as power and network\")")

	// Show one deck so the reader sees what the model consumes.
	fmt.Printf("\nexample input deck for %q jobs:\n%s", jobs[0].User, jobs[0].InputDeck)
}
