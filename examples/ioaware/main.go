// Ioaware demonstrates phase 2 of the PRIONN workflow (paper §4): per-job
// predictions feed a cluster simulator whose snapshot mechanism predicts
// turnaround times, and the combination forecasts system IO and IO
// bursts for an IO-aware scheduler.
//
//	go run ./examples/ioaware
package main

import (
	"fmt"
	"log"

	"prionn/internal/ioaware"
	"prionn/internal/metrics"
	"prionn/internal/prionn"
	"prionn/internal/sched"
	"prionn/internal/trace"
)

func main() {
	log.SetFlags(0)

	// A short, busy trace so the queue actually forms.
	all := trace.Generate(trace.Config{
		Seed: 11, Jobs: 600, Users: 30, Apps: 8, MeanInterarrival: 40,
	})
	completed := trace.Completed(all)

	// Phase 1: online per-job predictions.
	cfg := prionn.FastConfig()
	cfg.TrainWindow = 150
	cfg.RetrainEvery = 75
	cfg.Epochs = 2
	recs, err := prionn.RunOnline(all, cfg, nil)
	if err != nil {
		log.Fatal(err)
	}
	byID := map[int]prionn.OnlineRecord{}
	for _, r := range recs {
		byID[r.Job.ID] = r
	}

	// Phase 2: snapshot turnaround prediction on a 256-node machine.
	items := make([]sched.Item, 0, len(completed))
	for _, j := range completed {
		items = append(items, sched.Item{
			ID: j.ID, Submit: j.SubmitTime, Nodes: j.Nodes,
			RuntimeSec: j.ActualSec, LimitSec: int64(j.RequestedMin) * 60,
		})
	}
	pred := func(id int) int64 {
		r := byID[id]
		if !r.Predicted {
			return int64(r.Job.RequestedMin) * 60
		}
		return int64(r.Pred.RuntimeMin) * 60
	}
	results, err := sched.PredictTurnarounds(items, sched.SimConfig{Nodes: 256, Backfill: true}, pred)
	if err != nil {
		log.Fatal(err)
	}

	var taAcc []float64
	var actualIvs, predIvs []ioaware.Interval
	var t0, t1 int64
	for i, r := range results {
		taAcc = append(taAcc, metrics.RelativeAccuracy(float64(r.RealSec), float64(r.PredictedSec)))
		rec := byID[r.ID]
		actualIvs = append(actualIvs, ioaware.Interval{
			Start: r.RealPlacement.Start, End: r.RealPlacement.End,
			BW: rec.Job.ReadBW() + rec.Job.WriteBW(),
		})
		pp := r.PredPlacement
		if pp.End <= pp.Start {
			pp = r.RealPlacement
		}
		predIvs = append(predIvs, ioaware.Interval{
			Start: pp.Start, End: pp.End, BW: rec.Pred.ReadBW() + rec.Pred.WriteBW(),
		})
		if i == 0 || r.RealPlacement.Start < t0 {
			t0 = r.RealPlacement.Start
		}
		if r.RealPlacement.End > t1 {
			t1 = r.RealPlacement.End
		}
	}
	ts := metrics.Summarize(taAcc)
	fmt.Printf("turnaround accuracy: mean %.1f%% median %.1f%% (paper: 42.1%% / 40.8%%)\n",
		ts.Mean*100, ts.Median*100)

	// System-IO forecast and burst report.
	actual := ioaware.Series(actualIvs, t0, t1, 60)
	predicted := ioaware.Series(predIvs, t0, t1, 60)
	acc := metrics.Summarize(ioaware.SeriesAccuracy(actual, predicted))
	fmt.Printf("system-IO accuracy:  mean %.1f%% median %.1f%%\n", acc.Mean*100, acc.Median*100)

	thr := ioaware.BurstThreshold(actual)
	am := ioaware.BurstMask(actual, thr)
	pm := ioaware.BurstMask(predicted, thr)
	nBursts := 0
	for _, b := range am {
		if b {
			nBursts++
		}
	}
	fmt.Printf("IO bursts:           %d minutes above mean+1σ (%.3e B/s)\n", nBursts, thr)
	for _, w := range []int{5, 15, 60} {
		c := ioaware.MatchBursts(am, pm, w/2)
		fmt.Printf("  %2d-min window: sensitivity %5.1f%%  precision %5.1f%%\n",
			w, c.Sensitivity()*100, c.Precision()*100)
	}
	fmt.Println("(paper: >50% of bursts predicted; sensitivity/precision rise with window size)")
}
