// Modelselect reproduces the paper's component-selection study (§2.4,
// Figs. 3–7) in miniature: it times the four data transformations and
// the three deep learning architectures, and compares their runtime
// prediction accuracy on one training window.
//
//	go run ./examples/modelselect
package main

import (
	"fmt"
	"log"
	"time"

	"prionn/internal/mapping"
	"prionn/internal/metrics"
	"prionn/internal/prionn"
	"prionn/internal/trace"
	"prionn/internal/word2vec"
)

func main() {
	log.SetFlags(0)
	jobs := trace.Completed(trace.Generate(trace.Config{Seed: 7, Jobs: 500, Users: 24, Apps: 8}))
	scripts := make([]string, len(jobs))
	for i, j := range jobs {
		scripts[i] = j.Script
	}
	train, test := jobs[:350], jobs[350:]

	// Fig. 3 in miniature: transformation cost.
	emb := word2vec.Train(scripts, word2vec.Config{Dim: 4, Window: 4, Negative: 5,
		LR: 0.05, Epochs: 2, Seed: 1, MaxPairs: 50000})
	fmt.Println("— transformation cost (paper Fig. 3: one-hot slowest) —")
	for _, tr := range mapping.All(emb) {
		start := time.Now()
		mapping.MapBatch(scripts, tr, 32, 32)
		fmt.Printf("  %-9s %3d channels  %7.4fs\n", tr.Name(), tr.Channels(), time.Since(start).Seconds())
	}

	// Figs. 4–7 in miniature: train each transform × the 2D-CNN, then
	// each model × word2vec, and compare held-out accuracy.
	eval := func(cfg prionn.Config) (trainSec float64, acc float64) {
		cfg.PredictIO = false
		p, err := prionn.New(cfg, scripts)
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		if _, err := p.Train(train); err != nil {
			log.Fatal(err)
		}
		trainSec = time.Since(start).Seconds()
		var sum float64
		testScripts := make([]string, len(test))
		for i, j := range test {
			testScripts[i] = j.Script
		}
		for i, pr := range p.Predict(testScripts) {
			sum += metrics.RelativeAccuracy(float64(test[i].ActualMin()), float64(pr.RuntimeMin))
		}
		//prionnvet:ignore time-dep -- training wall time is the quantity being reported
		return trainSec, sum / float64(len(test))
	}

	fmt.Println("\n— transformations × 2D-CNN (paper Figs. 4–5: word2vec best accuracy) —")
	for _, tk := range []prionn.TransformKind{
		prionn.TransformBinary, prionn.TransformSimple, prionn.TransformOneHot, prionn.TransformWord2Vec,
	} {
		cfg := prionn.FastConfig()
		cfg.Transform = tk
		cfg.Epochs = 3
		sec, acc := eval(cfg)
		fmt.Printf("  %-9s train %6.2fs  held-out accuracy %.1f%%\n", tk, sec, acc*100)
	}

	fmt.Println("\n— models × word2vec (paper Figs. 6–7: 2D-CNN selected) —")
	for _, mk := range []prionn.ModelKind{prionn.ModelNN, prionn.Model1DCNN, prionn.Model2DCNN} {
		cfg := prionn.FastConfig()
		cfg.Model = mk
		cfg.Epochs = 3
		sec, acc := eval(cfg)
		fmt.Printf("  %-7s train %6.2fs  held-out accuracy %.1f%%\n", mk, sec, acc*100)
	}
}
