// Quickstart: map a job script to PRIONN's image-like representation,
// train a small model on a synthetic trace, and predict the runtime and
// IO of a new job script.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"prionn/internal/mapping"
	"prionn/internal/prionn"
	"prionn/internal/trace"
	"prionn/internal/word2vec"
)

const myScript = `#!/bin/bash
#SBATCH --job-name=lulesh_s64
#SBATCH --nodes=8
#SBATCH --ntasks=128
#SBATCH --time=4:00:00
#SBATCH --account=physics

module load intel mvapich2
cd /p/lustre1/alice/runs/lulesh

srun -n 128 ./lulesh.exe -s 64 -i 5000 -f /p/lustre1/alice/decks/lulesh_s64.in
echo "lulesh done"
`

func main() {
	log.SetFlags(0)

	// 1. The data mapping (paper §2.1): the script text becomes an
	// image-like matrix, one pixel (vector) per character.
	emb := word2vec.Train([]string{myScript}, word2vec.Config{Dim: 4, Epochs: 2, Seed: 1, MaxPairs: 5000})
	img := mapping.MapScript(myScript, mapping.Word2Vec{Emb: emb}, 64, 64)
	fmt.Printf("mapped script: %d channels × %d rows × %d cols (%d pixels)\n",
		img.Dim(0), img.Dim(1), img.Dim(2), img.Len())

	// 2. Generate a small synthetic workload standing in for the
	// historical job data of a production cluster.
	jobs := trace.Completed(trace.Generate(trace.Config{Seed: 42, Jobs: 400, Users: 24, Apps: 8}))
	fmt.Printf("historical jobs: %d (for training)\n", len(jobs))

	// 3. Build and train PRIONN on the most recent window.
	cfg := prionn.FastConfig()
	cfg.Epochs = 3
	scripts := make([]string, len(jobs))
	for i, j := range jobs {
		scripts[i] = j.Script
	}
	p, err := prionn.New(cfg, scripts)
	if err != nil {
		log.Fatal(err)
	}
	window := jobs
	if len(window) > cfg.TrainWindow {
		window = window[len(window)-cfg.TrainWindow:]
	}
	fmt.Printf("training %d-parameter model on %d jobs...\n", p.NumParams(), len(window))
	if _, err := p.Train(window); err != nil {
		log.Fatal(err)
	}

	// 4. Predict the resources of a job the cluster has never run.
	pred := p.PredictOne(myScript)
	fmt.Printf("\nprediction for the new script:\n")
	fmt.Printf("  runtime:      %d minutes\n", pred.RuntimeMin)
	fmt.Printf("  bytes read:   %.3e\n", pred.ReadBytes)
	fmt.Printf("  bytes write:  %.3e\n", pred.WriteBytes)
	fmt.Printf("  read BW:      %.3e B/s\n", pred.ReadBW())
	fmt.Printf("  write BW:     %.3e B/s\n", pred.WriteBW())

	// 5. Which characters drove the prediction? (brackets mark the
	// top-salience cells — typically the binary name and parameters).
	top := p.ExplainRuntime(myScript).TopCells(8)
	fmt.Printf("\nmost influential script characters:\n")
	for _, c := range top {
		fmt.Printf("  row %2d col %2d  %q  weight %.2f\n", c.Row, c.Col, c.Char, c.Weight)
	}
}
