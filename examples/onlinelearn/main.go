// Onlinelearn shows the paper's online training behaviour (§2.3): models
// retrain (warm-start) every N submissions on the most recently
// completed jobs, and prediction accuracy improves as the system sees
// more of the workload.
//
//	go run ./examples/onlinelearn
package main

import (
	"fmt"
	"log"

	"prionn/internal/metrics"
	"prionn/internal/prionn"
	"prionn/internal/trace"
)

func main() {
	log.SetFlags(0)

	all := trace.Generate(trace.Config{Seed: 21, Jobs: 1200, Users: 25, Apps: 8})
	cfg := prionn.FastConfig()
	cfg.TrainWindow = 150
	cfg.RetrainEvery = 100
	cfg.Epochs = 2
	cfg.PredictIO = false

	fmt.Printf("online loop: retrain every %d submissions on the %d most recently completed jobs\n\n",
		cfg.RetrainEvery, cfg.TrainWindow)

	recs, err := prionn.RunOnline(all, cfg, func(done, total int) {
		fmt.Printf("  retrained after submission %d/%d\n", done, total)
	})
	if err != nil {
		log.Fatal(err)
	}

	// Accuracy per 200-submission phase: warm-started models should not
	// collapse between phases, and typically improve early on.
	fmt.Println("\nruntime accuracy by submission phase:")
	const phase = 200
	for start := 0; start < len(recs); start += phase {
		end := start + phase
		if end > len(recs) {
			end = len(recs)
		}
		var acc []float64
		for _, r := range recs[start:end] {
			if r.Predicted {
				acc = append(acc, metrics.RelativeAccuracy(
					float64(r.Job.ActualMin()), float64(r.Pred.RuntimeMin)))
			}
		}
		if len(acc) == 0 {
			fmt.Printf("  jobs %4d-%4d: (no model yet)\n", start, end)
			continue
		}
		s := metrics.Summarize(acc)
		fmt.Printf("  jobs %4d-%4d: mean %5.1f%%  median %5.1f%%  (%d predicted)\n",
			start, end, s.Mean*100, s.Median*100, s.N)
	}

	total := metrics.Summarize(func() []float64 {
		var acc []float64
		for _, r := range prionn.PredictedRecords(recs) {
			acc = append(acc, metrics.RelativeAccuracy(
				float64(r.Job.ActualMin()), float64(r.Pred.RuntimeMin)))
		}
		return acc
	}())
	fmt.Printf("\noverall: mean %.1f%% median %.1f%% over %d predictions (paper: 76.1%% / 100%%)\n",
		total.Mean*100, total.Median*100, total.N)
}
