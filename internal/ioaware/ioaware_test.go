package ioaware

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSeriesSingleInterval(t *testing.T) {
	s := Series([]Interval{{Start: 60, End: 180, BW: 10}}, 0, 240, 60)
	want := []float64{0, 10, 10, 0}
	for i, w := range want {
		if math.Abs(s[i]-w) > 1e-9 {
			t.Fatalf("series %v, want %v", s, want)
		}
	}
}

func TestSeriesPartialOverlap(t *testing.T) {
	// Interval covers half of bucket 0 and half of bucket 1.
	s := Series([]Interval{{Start: 30, End: 90, BW: 10}}, 0, 120, 60)
	if math.Abs(s[0]-5) > 1e-9 || math.Abs(s[1]-5) > 1e-9 {
		t.Fatalf("series %v, want [5 5]", s)
	}
}

func TestSeriesSumsOverlappingJobs(t *testing.T) {
	s := Series([]Interval{
		{Start: 0, End: 120, BW: 3},
		{Start: 0, End: 120, BW: 4},
	}, 0, 120, 60)
	if s[0] != 7 || s[1] != 7 {
		t.Fatalf("series %v, want [7 7]", s)
	}
}

func TestSeriesClipsToRange(t *testing.T) {
	s := Series([]Interval{{Start: -1000, End: 1000, BW: 1}}, 0, 120, 60)
	if s[0] != 1 || s[1] != 1 {
		t.Fatalf("series %v", s)
	}
}

func TestSeriesDegenerate(t *testing.T) {
	if s := Series(nil, 100, 100, 60); s != nil {
		t.Fatal("empty range must return nil")
	}
	s := Series([]Interval{{Start: 10, End: 10, BW: 5}}, 0, 60, 60)
	if s[0] != 0 {
		t.Fatal("zero-length interval contributed")
	}
}

func TestSeriesMassConservation(t *testing.T) {
	// Total bytes in the series equals BW * duration for intervals fully
	// inside the range, regardless of bucket alignment.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		step := int64(60)
		t1 := int64(3600)
		var ivs []Interval
		var wantBytes float64
		for i := 0; i < 10; i++ {
			start := int64(rng.Intn(3000))
			end := start + int64(1+rng.Intn(500))
			if end > t1 {
				end = t1
			}
			bw := rng.Float64() * 100
			ivs = append(ivs, Interval{Start: start, End: end, BW: bw})
			wantBytes += bw * float64(end-start)
		}
		s := Series(ivs, 0, t1, step)
		var got float64
		for _, v := range s {
			got += v * float64(step)
		}
		return math.Abs(got-wantBytes) < 1e-6*(1+wantBytes)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBurstThresholdAndMask(t *testing.T) {
	series := []float64{1, 1, 1, 1, 10}
	thr := BurstThreshold(series)
	mean := 14.0 / 5
	if thr <= mean {
		t.Fatalf("threshold %v must exceed mean %v", thr, mean)
	}
	mask := BurstMask(series, thr)
	if !mask[4] {
		t.Fatal("spike not flagged as burst")
	}
	for i := 0; i < 4; i++ {
		if mask[i] {
			t.Fatalf("baseline point %d flagged", i)
		}
	}
}

func TestMatchBurstsExact(t *testing.T) {
	actual := []bool{false, true, false, false, true, false}
	pred := []bool{false, true, false, false, false, false}
	c := MatchBursts(actual, pred, 0)
	if c.TP != 1 || c.FN != 1 || c.FP != 0 {
		t.Fatalf("confusion %+v", c)
	}
}

func TestMatchBurstsWindow(t *testing.T) {
	actual := []bool{false, false, true, false, false}
	pred := []bool{true, false, false, false, false}
	// Radius 1: predicted burst at 0 is not within 1 of actual at 2.
	c := MatchBursts(actual, pred, 1)
	if c.TP != 0 || c.FN != 1 || c.FP != 1 {
		t.Fatalf("radius1 confusion %+v", c)
	}
	// Radius 2: it is.
	c = MatchBursts(actual, pred, 2)
	if c.TP != 1 || c.FN != 0 || c.FP != 0 {
		t.Fatalf("radius2 confusion %+v", c)
	}
}

func TestMatchBurstsBoundaries(t *testing.T) {
	// Bursts at the edges must not index out of range.
	actual := []bool{true, false, false, true}
	pred := []bool{true, false, false, true}
	c := MatchBursts(actual, pred, 5)
	if c.TP != 2 || c.FN != 0 || c.FP != 0 {
		t.Fatalf("confusion %+v", c)
	}
}

func TestWindowSweepMonotone(t *testing.T) {
	// Sensitivity and precision must be non-decreasing in window size
	// (larger windows can only match more) — the paper observes this in
	// Figs. 13 and 15.
	rng := rand.New(rand.NewSource(5))
	n := 500
	actual := make([]bool, n)
	pred := make([]bool, n)
	for i := range actual {
		actual[i] = rng.Float64() < 0.1
		// Predictions: shifted/noisy copy of actual.
		j := i + rng.Intn(7) - 3
		if j >= 0 && j < n {
			pred[j] = pred[j] || actual[i] && rng.Float64() < 0.7
		}
		if rng.Float64() < 0.02 {
			pred[i] = true
		}
	}
	windows := []int{5, 10, 20, 30, 60}
	sens, prec := WindowSweep(actual, pred, windows)
	for i := 1; i < len(windows); i++ {
		if sens[i] < sens[i-1]-1e-12 {
			t.Fatalf("sensitivity not monotone: %v", sens)
		}
		if prec[i] < prec[i-1]-1e-12 {
			t.Fatalf("precision not monotone: %v", prec)
		}
	}
}

func TestSeriesAccuracy(t *testing.T) {
	actual := []float64{10, 0, 5}
	pred := []float64{10, 0, 10}
	acc := SeriesAccuracy(actual, pred)
	// The (0,0) bucket is skipped.
	if len(acc) != 2 {
		t.Fatalf("accuracy length %d, want 2", len(acc))
	}
	if acc[0] != 1 {
		t.Fatalf("perfect bucket scored %v", acc[0])
	}
	if math.Abs(acc[1]-0.5) > 1e-12 {
		t.Fatalf("half-miss bucket scored %v", acc[1])
	}
}

func TestPerfectPredictionGivesPerfectBurstScores(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		series := make([]float64, 200)
		for i := range series {
			series[i] = rng.Float64() * 100
			if rng.Float64() < 0.05 {
				series[i] += 1000
			}
		}
		thr := BurstThreshold(series)
		mask := BurstMask(series, thr)
		c := MatchBursts(mask, mask, 0)
		return c.FN == 0 && c.FP == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestBurstEvents(t *testing.T) {
	series := []float64{1, 9, 9, 1, 1, 9, 1, 9}
	events := BurstEvents(series, 5)
	if len(events) != 3 {
		t.Fatalf("%d events, want 3", len(events))
	}
	if events[0].Start != 1 || events[0].End != 3 || events[0].Duration() != 2 {
		t.Fatalf("event0 %+v", events[0])
	}
	if events[0].Peak != 9 || events[0].MeanBW != 9 {
		t.Fatalf("event0 stats %+v", events[0])
	}
	if events[2].Start != 7 || events[2].End != 8 {
		t.Fatalf("event2 %+v", events[2])
	}
}

func TestBurstEventsNone(t *testing.T) {
	if ev := BurstEvents([]float64{1, 2, 3}, 10); len(ev) != 0 {
		t.Fatalf("unexpected events %v", ev)
	}
}

func TestBurstEventsCoverMask(t *testing.T) {
	// Property: the union of events equals the burst mask.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		series := make([]float64, 100)
		for i := range series {
			series[i] = rng.Float64() * 100
		}
		thr := 50.0
		mask := BurstMask(series, thr)
		events := BurstEvents(series, thr)
		covered := make([]bool, len(series))
		for _, e := range events {
			for i := e.Start; i < e.End; i++ {
				if covered[i] {
					return false // overlapping events
				}
				covered[i] = true
			}
		}
		for i := range mask {
			if mask[i] != covered[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
