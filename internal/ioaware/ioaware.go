// Package ioaware builds system-level IO forecasts from per-job
// placements and IO-bandwidth predictions, and scores IO-burst prediction
// — the paper's §4.3 pipeline feeding an IO-aware scheduler.
//
// The total system IO at a time t is the sum of the (predicted or actual)
// IO bandwidth of every job running at t. An IO burst is any point where
// the system bandwidth exceeds one standard deviation above the mean of
// the actual distribution. Burst predictions are scored with windowed
// matching: a real burst counts as predicted (TP) if a predicted burst
// occurs within the window around it.
package ioaware

import (
	"prionn/internal/metrics"
)

// Interval is one job's execution span with its mean IO bandwidth in
// bytes/second (read, write, or combined — the caller chooses).
type Interval struct {
	Start, End int64 // epoch seconds, End > Start
	BW         float64
}

// Series accumulates intervals into a bandwidth time series over
// [t0, t1) with the given bucket width in seconds (the paper uses
// one-minute resolution). Partial overlaps contribute proportionally.
func Series(intervals []Interval, t0, t1, step int64) []float64 {
	if t1 <= t0 || step <= 0 {
		return nil
	}
	n := int((t1 - t0 + step - 1) / step)
	out := make([]float64, n)
	for _, iv := range intervals {
		if iv.End <= iv.Start || iv.BW == 0 {
			continue
		}
		lo, hi := iv.Start, iv.End
		if lo < t0 {
			lo = t0
		}
		if hi > t1 {
			hi = t1
		}
		if hi <= lo {
			continue
		}
		b0 := int((lo - t0) / step)
		b1 := int((hi - t0 - 1) / step)
		for b := b0; b <= b1 && b < n; b++ {
			bs := t0 + int64(b)*step
			be := bs + step
			os, oe := lo, hi
			if os < bs {
				os = bs
			}
			if oe > be {
				oe = be
			}
			out[b] += iv.BW * float64(oe-os) / float64(step)
		}
	}
	return out
}

// BurstThreshold returns mean + one standard deviation of the series,
// the paper's burst definition (Fig. 12a marks 1.35e9 B/s on Cab).
func BurstThreshold(series []float64) float64 {
	mean, std := metrics.MeanStd(series)
	return mean + std
}

// BurstMask flags every point strictly above the threshold.
func BurstMask(series []float64, threshold float64) []bool {
	mask := make([]bool, len(series))
	for i, v := range series {
		mask[i] = v > threshold
	}
	return mask
}

// MatchBursts scores predicted bursts against actual bursts with the
// paper's window technique. radius is in buckets: with one-minute buckets
// a "5-minute window" is radius 2 (two minutes before through two minutes
// after). A real burst with a predicted burst within ±radius is a TP;
// a real burst with none is an FN; a predicted burst with no real burst
// within ±radius is an FP.
func MatchBursts(actual, pred []bool, radius int) metrics.Confusion {
	if len(actual) != len(pred) {
		panic("ioaware: series length mismatch")
	}
	var c metrics.Confusion
	near := func(mask []bool, i int) bool {
		lo, hi := i-radius, i+radius
		if lo < 0 {
			lo = 0
		}
		if hi >= len(mask) {
			hi = len(mask) - 1
		}
		for j := lo; j <= hi; j++ {
			if mask[j] {
				return true
			}
		}
		return false
	}
	for i, a := range actual {
		if a {
			if near(pred, i) {
				c.TP++
			} else {
				c.FN++
			}
		}
	}
	for i, p := range pred {
		if p && !near(actual, i) {
			c.FP++
		}
	}
	return c
}

// WindowSweep evaluates burst sensitivity and precision across the
// paper's window sizes (5 to 60 minutes, Figs. 13 and 15). windows are
// in buckets; radius used is window/2.
func WindowSweep(actual, pred []bool, windows []int) (sens, prec []float64) {
	sens = make([]float64, len(windows))
	prec = make([]float64, len(windows))
	for i, w := range windows {
		c := MatchBursts(actual, pred, w/2)
		sens[i] = c.Sensitivity()
		prec[i] = c.Precision()
	}
	return sens, prec
}

// SeriesAccuracy returns the per-bucket relative accuracy (Eq. 1) of a
// predicted system-IO series against the actual one, skipping buckets
// where both are zero-traffic (idle system tells nothing about IO
// prediction quality).
func SeriesAccuracy(actual, pred []float64) []float64 {
	if len(actual) != len(pred) {
		panic("ioaware: series length mismatch")
	}
	out := make([]float64, 0, len(actual))
	for i := range actual {
		if actual[i] == 0 && pred[i] == 0 {
			continue
		}
		out = append(out, metrics.RelativeAccuracy(actual[i], pred[i]))
	}
	return out
}

// BurstEvent is a maximal run of consecutive above-threshold buckets.
type BurstEvent struct {
	Start, End int // bucket indices, [Start, End)
	Peak       float64
	MeanBW     float64
}

// Duration returns the event length in buckets.
func (b BurstEvent) Duration() int { return b.End - b.Start }

// BurstEvents extracts contiguous burst events from a series given the
// threshold. An IO-aware scheduler acts on events (defer IO-heavy jobs
// until the burst passes), not individual minutes.
func BurstEvents(series []float64, threshold float64) []BurstEvent {
	var events []BurstEvent
	var cur *BurstEvent
	var sum float64
	for i, v := range series {
		if v > threshold {
			if cur == nil {
				events = append(events, BurstEvent{Start: i, Peak: v})
				cur = &events[len(events)-1]
				sum = 0
			}
			if v > cur.Peak {
				cur.Peak = v
			}
			sum += v
			cur.End = i + 1
			cur.MeanBW = sum / float64(cur.Duration())
			continue
		}
		cur = nil
	}
	return events
}
