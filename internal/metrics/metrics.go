// Package metrics implements the evaluation metrics of the paper:
// relative accuracy (Eq. 1), mean absolute error, boxplot five-number
// summaries for the accuracy-distribution figures, histograms for the
// workload-distribution figures, and precision/sensitivity for IO-burst
// prediction (§4.3).
package metrics

import (
	"math"
	"sort"
)

// RelativeAccuracy implements the paper's Equation 1:
//
//	1 - |true - pred| / (max(true, pred) + ε)
//
// The max in the denominator keeps the metric in [0, 1] and penalizes
// underprediction more than overprediction; ε (machine epsilon) avoids
// 0/0 when both values are zero (two zero values score a perfect 1).
func RelativeAccuracy(truth, pred float64) float64 {
	return 1 - math.Abs(truth-pred)/(math.Max(truth, pred)+machineEps)
}

const machineEps = 2.220446049250313e-16

// RelativeAccuracies applies Eq. 1 elementwise.
func RelativeAccuracies(truth, pred []float64) []float64 {
	if len(truth) != len(pred) {
		panic("metrics: length mismatch")
	}
	out := make([]float64, len(truth))
	for i := range truth {
		out[i] = RelativeAccuracy(truth[i], pred[i])
	}
	return out
}

// MAE returns the mean absolute error between two series.
func MAE(truth, pred []float64) float64 {
	if len(truth) != len(pred) {
		panic("metrics: length mismatch")
	}
	if len(truth) == 0 {
		return 0
	}
	var s float64
	for i := range truth {
		s += math.Abs(truth[i] - pred[i])
	}
	return s / float64(len(truth))
}

// Summary is the five-number boxplot summary (plus mean and whiskers)
// used by the paper's accuracy-distribution figures.
type Summary struct {
	N      int
	Mean   float64
	Min    float64
	Q1     float64
	Median float64
	Q3     float64
	Max    float64
	// WhiskerLo/Hi are the Tukey 1.5×IQR whisker positions clipped to the
	// data range.
	WhiskerLo, WhiskerHi float64
	// P5 and P95 support the paper's percentile statements (e.g. the
	// 95th-percentile turnaround accuracy comparison).
	P5, P95 float64
}

// Summarize computes a Summary of vals. It does not modify vals.
func Summarize(vals []float64) Summary {
	n := len(vals)
	if n == 0 {
		return Summary{}
	}
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	var mean float64
	for _, v := range s {
		mean += v
	}
	mean /= float64(n)
	sum := Summary{
		N:      n,
		Mean:   mean,
		Min:    s[0],
		Q1:     quantile(s, 0.25),
		Median: quantile(s, 0.5),
		Q3:     quantile(s, 0.75),
		Max:    s[n-1],
		P5:     quantile(s, 0.05),
		P95:    quantile(s, 0.95),
	}
	iqr := sum.Q3 - sum.Q1
	sum.WhiskerLo = math.Max(sum.Min, sum.Q1-1.5*iqr)
	sum.WhiskerHi = math.Min(sum.Max, sum.Q3+1.5*iqr)
	return sum
}

// quantile returns the linearly interpolated q-quantile of sorted data.
func quantile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 1 {
		return sorted[0]
	}
	pos := q * float64(n-1)
	lo := int(pos)
	if lo >= n-1 {
		return sorted[n-1]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Histogram counts vals into equal-width bins over [lo, hi]; values
// outside the range are clamped into the end bins.
func Histogram(vals []float64, lo, hi float64, bins int) []int {
	counts := make([]int, bins)
	if hi <= lo || bins == 0 {
		return counts
	}
	w := (hi - lo) / float64(bins)
	for _, v := range vals {
		b := int((v - lo) / w)
		if b < 0 {
			b = 0
		}
		if b >= bins {
			b = bins - 1
		}
		counts[b]++
	}
	return counts
}

// Confusion holds the burst-prediction counts of §4.3.
type Confusion struct {
	TP, FP, FN int
}

// Sensitivity is TP / (TP + FN) — the fraction of real bursts predicted.
func (c Confusion) Sensitivity() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// Precision is TP / (TP + FP) — the fraction of predicted bursts that
// are real.
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// ApproxEqual reports whether a and b are equal within absolute
// tolerance tol. It is the repo's approved float comparison (enforced
// by the prionnvet float-eq checker): exact ==/!= on floats silently
// diverges across refactors that reassociate arithmetic, which corrupts
// the reproduced accuracy tables. NaN compares unequal to everything,
// matching IEEE semantics.
func ApproxEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	if a == b { // fast path; also handles equal infinities
		return true
	}
	return math.Abs(a-b) <= tol
}

// ApproxEqualRel reports whether a and b are equal within relative
// tolerance rel of the larger magnitude, falling back to absolute
// comparison near zero (|a-b| <= rel when both magnitudes are below 1).
func ApproxEqualRel(a, b, rel float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	if a == b {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1 {
		scale = 1
	}
	return math.Abs(a-b) <= rel*scale
}

// MAPE returns the mean absolute percentage error over the finite,
// nonzero-truth pairs of the two series, plus the number of pairs that
// contributed. Pairs where either value is NaN/±Inf — a poisoned
// prediction must not poison the aggregate — or where the truth is
// exactly zero (the percentage is undefined) are skipped and do not
// count toward n. An input with no usable pairs returns (0, 0); the
// result is always finite.
func MAPE(truth, pred []float64) (mape float64, n int) {
	if len(truth) != len(pred) {
		panic("metrics: length mismatch")
	}
	var s float64
	for i := range truth {
		t, p := truth[i], pred[i]
		if !finite(t) || !finite(p) {
			continue
		}
		if t == 0 { //prionnvet:ignore float-eq -- exact zero truth is the only undefined denominator; a tolerance would silently drop valid tiny truths
			continue
		}
		s += math.Abs(t-p) / math.Abs(t)
		n++
	}
	if n == 0 {
		return 0, 0
	}
	return s / float64(n), n
}

// PearsonR returns the Pearson correlation coefficient over the finite
// pairs of the two series, plus the number of pairs that contributed.
// NaN/±Inf pairs are skipped. Degenerate inputs — fewer than two usable
// pairs, or a zero-variance series — return (0, n): an uncorrelatable
// series reads as "no evidence of correlation", never as NaN, so a
// comparison gate built on top cannot be poisoned by a constant or
// broken prediction head.
func PearsonR(truth, pred []float64) (r float64, n int) {
	if len(truth) != len(pred) {
		panic("metrics: length mismatch")
	}
	var st, sp float64
	var ts, ps []float64
	for i := range truth {
		t, p := truth[i], pred[i]
		if !finite(t) || !finite(p) {
			continue
		}
		ts = append(ts, t)
		ps = append(ps, p)
		st += t
		sp += p
	}
	n = len(ts)
	if n < 2 {
		return 0, n
	}
	mt, mp := st/float64(n), sp/float64(n)
	var cov, vt, vp float64
	for i := range ts {
		dt, dp := ts[i]-mt, ps[i]-mp
		cov += dt * dp
		vt += dt * dt
		vp += dp * dp
	}
	if vt == 0 || vp == 0 { //prionnvet:ignore float-eq -- exact zero variance (a constant series) is the only undefined correlation input
		return 0, n
	}
	r = cov / math.Sqrt(vt*vp)
	// Guard the rounding tail: |r| can exceed 1 by an ulp.
	if r > 1 {
		r = 1
	}
	if r < -1 {
		r = -1
	}
	return r, n
}

// ClassAccuracy returns the fraction of positions where the two class
// series agree, plus the number of pairs compared. Empty input returns
// (0, 0) — the caller decides whether "no evidence" passes its gate.
func ClassAccuracy(truth, pred []int) (acc float64, n int) {
	if len(truth) != len(pred) {
		panic("metrics: length mismatch")
	}
	if len(truth) == 0 {
		return 0, 0
	}
	match := 0
	for i := range truth {
		if truth[i] == pred[i] {
			match++
		}
	}
	return float64(match) / float64(len(truth)), len(truth)
}

// finite reports whether v is neither NaN nor ±Inf.
func finite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}

// MeanStd returns the mean and (population) standard deviation.
func MeanStd(vals []float64) (mean, std float64) {
	n := float64(len(vals))
	if n == 0 {
		return 0, 0
	}
	for _, v := range vals {
		mean += v
	}
	mean /= n
	var sq float64
	for _, v := range vals {
		d := v - mean
		sq += d * d
	}
	return mean, math.Sqrt(sq / n)
}
