package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRelativeAccuracyKnown(t *testing.T) {
	cases := []struct {
		truth, pred, want float64
	}{
		{100, 100, 1},
		{0, 0, 1},             // ε prevents 0/0; both zero is a perfect prediction
		{100, 50, 0.5},        // underprediction
		{50, 100, 0.5},        // overprediction penalized the same at 2x
		{100, 0, 0},           // total miss
		{10, 25, 1 - 15.0/25}, // paper's example direction
	}
	for _, c := range cases {
		got := RelativeAccuracy(c.truth, c.pred)
		if math.Abs(got-c.want) > 1e-9 {
			t.Fatalf("RelativeAccuracy(%v, %v) = %v, want %v", c.truth, c.pred, got, c.want)
		}
	}
}

func TestRelativeAccuracyRangeProperty(t *testing.T) {
	f := func(a, b float64) bool {
		a, b = math.Abs(a), math.Abs(b) // resource usage is nonnegative
		if math.IsInf(a, 0) || math.IsInf(b, 0) || math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		r := RelativeAccuracy(a, b)
		return r >= -1e-12 && r <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRelativeAccuracyPenalizesUnderprediction(t *testing.T) {
	// Underpredicting by a factor f scores the same as overpredicting by
	// the same factor, but underprediction at a fixed absolute error
	// scores worse: |err| / max picks the larger denominator.
	under := RelativeAccuracy(100, 70) // err 30, denom 100
	over := RelativeAccuracy(100, 130) // err 30, denom 130
	if !(under < over) {
		t.Fatalf("underprediction %v should score below overprediction %v", under, over)
	}
}

func TestRelativeAccuracies(t *testing.T) {
	got := RelativeAccuracies([]float64{10, 20}, []float64{10, 10})
	if got[0] != 1 || math.Abs(got[1]-0.5) > 1e-12 {
		t.Fatalf("got %v", got)
	}
}

func TestMAE(t *testing.T) {
	if m := MAE([]float64{1, 2, 3}, []float64{2, 2, 5}); math.Abs(m-1) > 1e-12 {
		t.Fatalf("MAE = %v, want 1", m)
	}
	if m := MAE(nil, nil); m != 0 {
		t.Fatalf("empty MAE = %v", m)
	}
}

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Median != 3 || s.Mean != 3 {
		t.Fatalf("summary %+v", s)
	}
	if s.Q1 != 2 || s.Q3 != 4 {
		t.Fatalf("quartiles %v %v", s.Q1, s.Q3)
	}
}

func TestSummarizeEmptyAndSingle(t *testing.T) {
	if s := Summarize(nil); s.N != 0 {
		t.Fatalf("empty summary %+v", s)
	}
	s := Summarize([]float64{7})
	if s.Min != 7 || s.Max != 7 || s.Median != 7 || s.Mean != 7 {
		t.Fatalf("single summary %+v", s)
	}
}

func TestSummarizeDoesNotMutate(t *testing.T) {
	in := []float64{3, 1, 2}
	Summarize(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatal("Summarize mutated its input")
	}
}

func TestSummarizeOrderingProperty(t *testing.T) {
	f := func(vals []float64) bool {
		clean := vals[:0]
		for _, v := range vals {
			// Restrict to the magnitudes the metric actually sees
			// (accuracies and runtimes); summing near ±MaxFloat64
			// overflows the mean, which is out of scope.
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e12 {
				clean = append(clean, v)
			}
		}
		if len(clean) == 0 {
			return true
		}
		s := Summarize(clean)
		return s.Min <= s.Q1 && s.Q1 <= s.Median && s.Median <= s.Q3 && s.Q3 <= s.Max &&
			s.Min <= s.Mean && s.Mean <= s.Max &&
			s.WhiskerLo >= s.Min && s.WhiskerHi <= s.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	h := Histogram([]float64{0, 1, 2, 3, 9, 100, -5}, 0, 10, 5)
	// bins: [0,2) [2,4) [4,6) [6,8) [8,10]; 100 clamps to last, -5 to first.
	want := []int{3, 2, 0, 0, 2}
	for i, w := range want {
		if h[i] != w {
			t.Fatalf("hist %v, want %v", h, want)
		}
	}
}

func TestHistogramDegenerate(t *testing.T) {
	if h := Histogram([]float64{1}, 5, 5, 3); h[0] != 0 {
		t.Fatal("degenerate range must count nothing")
	}
}

func TestConfusionMetrics(t *testing.T) {
	c := Confusion{TP: 8, FP: 2, FN: 8}
	if s := c.Sensitivity(); math.Abs(s-0.5) > 1e-12 {
		t.Fatalf("sensitivity %v", s)
	}
	if p := c.Precision(); math.Abs(p-0.8) > 1e-12 {
		t.Fatalf("precision %v", p)
	}
	empty := Confusion{}
	if empty.Sensitivity() != 0 || empty.Precision() != 0 {
		t.Fatal("empty confusion must report 0")
	}
}

func TestMeanStd(t *testing.T) {
	m, s := MeanStd([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(m-5) > 1e-12 || math.Abs(s-2) > 1e-12 {
		t.Fatalf("mean %v std %v, want 5 and 2", m, s)
	}
	if m, s := MeanStd(nil); m != 0 || s != 0 {
		t.Fatal("empty MeanStd must be 0,0")
	}
}

func TestApproxEqual(t *testing.T) {
	cases := []struct {
		a, b, tol float64
		want      bool
	}{
		{1, 1, 0, true},
		{1, 1 + 1e-13, 1e-12, true},
		{1, 1.1, 1e-2, false},
		{0, 1e-13, 1e-12, true},
		{math.Inf(1), math.Inf(1), 1e-9, true},
		{math.Inf(1), math.Inf(-1), 1e-9, false},
		{math.NaN(), math.NaN(), 1e-9, false},
		{1, math.NaN(), 1e-9, false},
	}
	for i, c := range cases {
		if got := ApproxEqual(c.a, c.b, c.tol); got != c.want {
			t.Errorf("case %d: ApproxEqual(%v, %v, %v) = %v, want %v", i, c.a, c.b, c.tol, got, c.want)
		}
	}
}

func TestApproxEqualRel(t *testing.T) {
	cases := []struct {
		a, b, rel float64
		want      bool
	}{
		{1000, 1000.5, 1e-3, true},
		{1000, 1002, 1e-3, false},
		{1e-9, 2e-9, 1e-6, true}, // near zero: absolute fallback
		{0, 0, 1e-12, true},
		{math.NaN(), 0, 1e-3, false},
	}
	for i, c := range cases {
		if got := ApproxEqualRel(c.a, c.b, c.rel); got != c.want {
			t.Errorf("case %d: ApproxEqualRel(%v, %v, %v) = %v, want %v", i, c.a, c.b, c.rel, got, c.want)
		}
	}
}

// TestMAPE covers the shadow-gate hygiene contract: NaN/Inf pairs and
// zero truths are skipped, never propagated, and the result is always
// finite.
func TestMAPE(t *testing.T) {
	cases := []struct {
		name        string
		truth, pred []float64
		want        float64
		wantN       int
	}{
		{"exact", []float64{10, 20}, []float64{10, 20}, 0, 2},
		{"half off", []float64{10, 20}, []float64{15, 10}, 0.5, 2},
		{"empty", nil, nil, 0, 0},
		{"zero truth skipped", []float64{0, 10}, []float64{5, 5}, 0.5, 1},
		{"nan pred skipped", []float64{10, 10}, []float64{math.NaN(), 20}, 1, 1},
		{"inf pred skipped", []float64{10, 10}, []float64{math.Inf(1), 5}, 0.5, 1},
		{"nan truth skipped", []float64{math.NaN(), 10}, []float64{10, 20}, 1, 1},
		{"all poisoned", []float64{math.NaN(), math.Inf(-1)}, []float64{1, 2}, 0, 0},
	}
	for _, c := range cases {
		got, n := MAPE(c.truth, c.pred)
		if math.IsNaN(got) || math.IsInf(got, 0) {
			t.Errorf("%s: MAPE returned non-finite %v", c.name, got)
		}
		if !ApproxEqual(got, c.want, 1e-12) || n != c.wantN {
			t.Errorf("%s: MAPE = (%v, %d), want (%v, %d)", c.name, got, n, c.want, c.wantN)
		}
	}
}

// TestPearsonR pins the correlation helper's degenerate-input contract:
// constant series, short series, and poisoned values all return a
// finite coefficient instead of NaN.
func TestPearsonR(t *testing.T) {
	cases := []struct {
		name        string
		truth, pred []float64
		want        float64
		wantN       int
	}{
		{"perfect", []float64{1, 2, 3, 4}, []float64{2, 4, 6, 8}, 1, 4},
		{"anti", []float64{1, 2, 3}, []float64{3, 2, 1}, -1, 3},
		{"constant pred", []float64{1, 2, 3}, []float64{5, 5, 5}, 0, 3},
		{"constant truth", []float64{7, 7, 7}, []float64{1, 2, 3}, 0, 3},
		{"single pair", []float64{1}, []float64{1}, 0, 1},
		{"empty", nil, nil, 0, 0},
		{"nan skipped", []float64{1, 2, math.NaN(), 3}, []float64{2, 4, 9, 6}, 1, 3},
		{"inf skipped", []float64{1, 2, 3, math.Inf(1)}, []float64{2, 4, 6, 0}, 1, 3},
		{"all poisoned", []float64{math.NaN(), math.NaN()}, []float64{1, 2}, 0, 0},
	}
	for _, c := range cases {
		got, n := PearsonR(c.truth, c.pred)
		if math.IsNaN(got) || math.IsInf(got, 0) {
			t.Errorf("%s: PearsonR returned non-finite %v", c.name, got)
		}
		if !ApproxEqual(got, c.want, 1e-12) || n != c.wantN {
			t.Errorf("%s: PearsonR = (%v, %d), want (%v, %d)", c.name, got, n, c.want, c.wantN)
		}
	}
}

func TestClassAccuracy(t *testing.T) {
	if acc, n := ClassAccuracy(nil, nil); acc != 0 || n != 0 {
		t.Errorf("empty: got (%v, %d), want (0, 0)", acc, n)
	}
	if acc, n := ClassAccuracy([]int{1, 2, 3, 4}, []int{1, 2, 0, 4}); !ApproxEqual(acc, 0.75, 1e-12) || n != 4 {
		t.Errorf("got (%v, %d), want (0.75, 4)", acc, n)
	}
}

func TestMetricsLengthMismatchPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"MAPE":          func() { MAPE([]float64{1}, nil) },
		"PearsonR":      func() { PearsonR([]float64{1}, nil) },
		"ClassAccuracy": func() { ClassAccuracy([]int{1}, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: length mismatch did not panic", name)
				}
			}()
			fn()
		}()
	}
}
