// Package sched is an event-driven cluster/batch-scheduler simulator
// standing in for the Flux resource-manager simulator the paper drives
// with its predictions (§4.1–4.2). It models a Cab-like machine — 1,296
// nodes, FCFS dispatch with EASY backfilling, SLURM-style termination of
// jobs that exceed their requested wall time — and implements the paper's
// snapshot mechanism for turnaround-time prediction: on each submission,
// copy the system state, replace every queued and running job's runtime
// with its predicted runtime, and roll the copy forward until the new job
// completes.
package sched

import (
	"container/heap"
	"fmt"
	"sort"
)

// CabNodes is the node count of the LLNL Cab cluster.
const CabNodes = 1296

// Item is one job as the scheduler sees it.
type Item struct {
	ID         int
	Submit     int64 // submission time, epoch seconds
	Nodes      int   // nodes requested
	RuntimeSec int64 // runtime the simulator will execute (actual runtime)
	LimitSec   int64 // requested wall limit; jobs are killed at this point
}

// Placement records when a job started and finished in a simulation.
type Placement struct {
	ID         int
	Submit     int64
	Start, End int64
	Nodes      int
}

// Turnaround returns end - submit in seconds.
func (p Placement) Turnaround() int64 { return p.End - p.Submit }

// simJob is the mutable in-simulator job state.
type simJob struct {
	Item
	start   int64
	end     int64 // valid while running
	running bool
}

// runHeap orders running jobs by end time.
type runHeap []*simJob

func (h runHeap) Len() int            { return len(h) }
func (h runHeap) Less(i, j int) bool  { return h[i].end < h[j].end }
func (h runHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *runHeap) Push(x interface{}) { *h = append(*h, x.(*simJob)) }
func (h *runHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Sim is the cluster simulator state. The zero value is not usable; call
// NewSim.
type Sim struct {
	nodes   int
	free    int
	now     int64
	queue   []*simJob // FCFS order
	running runHeap
	done    []Placement
	// Backfill toggles EASY backfilling; plain FCFS when false.
	Backfill bool
}

// SimConfig configures a simulator.
type SimConfig struct {
	Nodes    int  // machine size (e.g. CabNodes)
	Backfill bool // enable EASY backfilling
}

// NewSim returns an EASY-backfilling simulator for a cluster with the
// given node count.
func NewSim(nodes int) *Sim {
	return &Sim{nodes: nodes, free: nodes, Backfill: true}
}

// NewSimConfig returns a simulator for cfg.
func NewSimConfig(cfg SimConfig) *Sim {
	return &Sim{nodes: cfg.Nodes, free: cfg.Nodes, Backfill: cfg.Backfill}
}

// Now returns the simulator clock.
func (s *Sim) Now() int64 { return s.now }

// FreeNodes returns the currently unallocated node count.
func (s *Sim) FreeNodes() int { return s.free }

// QueueLen returns the number of queued (not yet started) jobs.
func (s *Sim) QueueLen() int { return len(s.queue) }

// RunningLen returns the number of executing jobs.
func (s *Sim) RunningLen() int { return len(s.running) }

// Submit adds a job at its submission time. Submissions must be fed in
// non-decreasing Submit order; the clock advances (processing
// completions) to the submission time first.
func (s *Sim) Submit(it Item) error {
	if it.Submit < s.now {
		return fmt.Errorf("sched: job %d submitted at %d, before clock %d", it.ID, it.Submit, s.now)
	}
	if it.Nodes <= 0 || it.Nodes > s.nodes {
		return fmt.Errorf("sched: job %d requests %d nodes on a %d-node machine", it.ID, it.Nodes, s.nodes)
	}
	s.AdvanceTo(it.Submit)
	j := &simJob{Item: it}
	if j.RuntimeSec < 0 {
		// A negative runtime (garbage prediction or corrupt trace row)
		// would move a job's end before its start and stall the event
		// loop; treat it as an instant job instead.
		j.RuntimeSec = 0
	}
	if j.LimitSec > 0 && j.RuntimeSec > j.LimitSec {
		// SLURM kills the job at its requested limit.
		j.RuntimeSec = j.LimitSec
	}
	s.queue = append(s.queue, j)
	s.schedule()
	return nil
}

// AdvanceTo processes completions up to time t and moves the clock.
func (s *Sim) AdvanceTo(t int64) {
	for len(s.running) > 0 && s.running[0].end <= t {
		j := heap.Pop(&s.running).(*simJob)
		s.now = j.end
		s.free += j.Nodes
		s.done = append(s.done, Placement{ID: j.ID, Submit: j.Submit, Start: j.start, End: j.end, Nodes: j.Nodes})
		s.schedule()
	}
	if t > s.now {
		s.now = t
	}
}

// Drain runs the simulation until every submitted job has completed and
// returns all placements in completion order.
func (s *Sim) Drain() []Placement {
	for len(s.running) > 0 || len(s.queue) > 0 {
		if len(s.running) == 0 {
			// Queue non-empty but nothing running: schedule() must start
			// something (the head always fits eventually on an idle
			// machine).
			s.schedule()
			continue
		}
		s.AdvanceTo(s.running[0].end)
	}
	return s.done
}

// Placements returns completions recorded so far, in completion order.
func (s *Sim) Placements() []Placement { return s.done }

// start begins executing job j at the current clock.
func (s *Sim) start(j *simJob) {
	j.running = true
	j.start = s.now
	j.end = s.now + j.RuntimeSec
	s.free -= j.Nodes
	heap.Push(&s.running, j)
}

// schedule starts queued jobs: FCFS head first, then EASY backfill —
// a later job may start now if it does not delay the head job's earliest
// possible start (the "shadow time").
func (s *Sim) schedule() {
	// Start head jobs while they fit.
	for len(s.queue) > 0 && s.queue[0].Nodes <= s.free {
		s.start(s.queue[0])
		s.queue = s.queue[1:]
	}
	if !s.Backfill || len(s.queue) == 0 || len(s.running) == 0 {
		return
	}
	// Compute the shadow time: walk running jobs in end order until the
	// head fits, tracking how many nodes are spare at that instant.
	head := s.queue[0]
	avail := s.free
	ends := make([]*simJob, len(s.running))
	copy(ends, s.running)
	sort.Slice(ends, func(i, j int) bool { return ends[i].end < ends[j].end })
	var shadow int64
	extra := 0
	for _, rj := range ends {
		avail += rj.Nodes
		if avail >= head.Nodes {
			shadow = rj.end
			extra = avail - head.Nodes
			break
		}
	}
	if shadow == 0 {
		return // head can never fit; guarded by Submit validation
	}
	// Backfill pass over the rest of the queue.
	kept := s.queue[:1]
	for _, j := range s.queue[1:] {
		canFill := j.Nodes <= s.free &&
			(s.now+j.RuntimeSec <= shadow || j.Nodes <= min(s.free, extra))
		if canFill {
			if j.Nodes <= extra {
				extra -= j.Nodes
			}
			s.start(j)
			continue
		}
		kept = append(kept, j)
	}
	s.queue = kept
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Clone deep-copies the simulator state — the paper's snapshot step.
// Completed placements are not carried over (the snapshot only needs the
// queued and running jobs).
func (s *Sim) Clone() *Sim {
	c := &Sim{nodes: s.nodes, free: s.free, now: s.now, Backfill: s.Backfill}
	c.queue = make([]*simJob, len(s.queue))
	for i, j := range s.queue {
		cp := *j
		c.queue[i] = &cp
	}
	c.running = make(runHeap, len(s.running))
	for i, j := range s.running {
		cp := *j
		c.running[i] = &cp
	}
	// The heap order of copies matches the original ordering.
	return c
}

// OverrideRuntimes replaces the runtime of every queued and running job
// using pred (keyed by job ID) — the paper's "replace the runtime of each
// job in execution and in the queue with the predicted job runtime".
// Runtimes remain clipped at each job's limit. For running jobs the new
// end time is start + predicted; if that is already past, the job ends at
// the current clock (it should have finished by now according to the
// prediction).
func (s *Sim) OverrideRuntimes(pred func(id int) int64) {
	for _, j := range s.queue {
		r := pred(j.ID)
		if j.LimitSec > 0 && r > j.LimitSec {
			r = j.LimitSec
		}
		if r < 1 {
			r = 1
		}
		j.RuntimeSec = r
	}
	for _, j := range s.running {
		r := pred(j.ID)
		if j.LimitSec > 0 && r > j.LimitSec {
			r = j.LimitSec
		}
		if r < 1 {
			r = 1
		}
		j.RuntimeSec = r
		j.end = j.start + r
		if j.end < s.now {
			j.end = s.now
		}
	}
	heap.Init(&s.running)
}

// RunUntilDone rolls the simulation forward (no further arrivals) until
// job id completes and returns its placement. The second return is false
// if the job is not present in the snapshot.
func (s *Sim) RunUntilDone(id int) (Placement, bool) {
	present := false
	for _, j := range s.queue {
		if j.ID == id {
			present = true
		}
	}
	for _, j := range s.running {
		if j.ID == id {
			present = true
		}
	}
	if !present {
		return Placement{}, false
	}
	for {
		if len(s.running) == 0 {
			if len(s.queue) == 0 {
				return Placement{}, false
			}
			s.schedule()
			if len(s.running) == 0 {
				return Placement{}, false
			}
		}
		next := s.running[0].end
		doneBefore := len(s.done)
		s.AdvanceTo(next)
		for _, p := range s.done[doneBefore:] {
			if p.ID == id {
				return p, true
			}
		}
	}
}
