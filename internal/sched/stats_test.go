package sched

import (
	"math"
	"testing"
)

func TestComputeUtilStatsKnown(t *testing.T) {
	// Two jobs, 2-node machine: J1 uses 1 node for [0,100); J2 uses 2
	// nodes for [100,200) after waiting 90s.
	ps := []Placement{
		{ID: 1, Submit: 0, Start: 0, End: 100, Nodes: 1},
		{ID: 2, Submit: 10, Start: 100, End: 200, Nodes: 2},
	}
	s := ComputeUtilStats(ps, 2)
	if s.MakespanSec != 200 {
		t.Fatalf("makespan %d", s.MakespanSec)
	}
	// busy = 1*100 + 2*100 = 300; capacity = 2*200 = 400.
	if math.Abs(s.Utilization-0.75) > 1e-9 {
		t.Fatalf("utilization %v, want 0.75", s.Utilization)
	}
	if s.MaxWaitSec != 90 || math.Abs(s.MeanWaitSec-45) > 1e-9 {
		t.Fatalf("wait stats %v/%v", s.MeanWaitSec, s.MaxWaitSec)
	}
	if s.PeakNodes != 2 {
		t.Fatalf("peak %d", s.PeakNodes)
	}
}

func TestComputeUtilStatsEmpty(t *testing.T) {
	if s := ComputeUtilStats(nil, 4); s.Utilization != 0 {
		t.Fatalf("empty stats %+v", s)
	}
}

func TestUtilizationNeverExceedsOne(t *testing.T) {
	// A valid schedule from the simulator can never exceed machine
	// capacity, so utilization must stay in (0, 1].
	s := NewSim(8)
	for i := 0; i < 100; i++ {
		s.Submit(Item{ID: i, Submit: int64(i * 3), Nodes: 1 + i%8, RuntimeSec: int64(20 + i%200)})
	}
	stats := ComputeUtilStats(s.Drain(), 8)
	if stats.Utilization <= 0 || stats.Utilization > 1 {
		t.Fatalf("utilization %v out of (0,1]", stats.Utilization)
	}
	if stats.PeakNodes > 8 {
		t.Fatalf("peak %d exceeds machine", stats.PeakNodes)
	}
}
