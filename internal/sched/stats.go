package sched

import "sort"

// UtilStats summarizes how a simulated schedule used the machine.
type UtilStats struct {
	// Utilization is mean allocated-node-seconds divided by available
	// node-seconds over the schedule's makespan.
	Utilization float64
	// MeanWaitSec and MaxWaitSec summarize queue waits (start - submit).
	MeanWaitSec float64
	MaxWaitSec  int64
	// MakespanSec is last end minus first start.
	MakespanSec int64
	// PeakNodes is the maximum simultaneously allocated node count.
	PeakNodes int
}

// ComputeUtilStats derives utilization statistics from placements on a
// machine of the given size.
func ComputeUtilStats(placements []Placement, machineNodes int) UtilStats {
	var s UtilStats
	if len(placements) == 0 || machineNodes <= 0 {
		return s
	}
	type ev struct {
		t     int64
		delta int
	}
	evs := make([]ev, 0, 2*len(placements))
	var first, last int64
	var busy float64 // node-seconds
	var waitSum float64
	for i, p := range placements {
		if i == 0 || p.Start < first {
			first = p.Start
		}
		if p.End > last {
			last = p.End
		}
		busy += float64(p.Nodes) * float64(p.End-p.Start)
		wait := p.Start - p.Submit
		waitSum += float64(wait)
		if wait > s.MaxWaitSec {
			s.MaxWaitSec = wait
		}
		evs = append(evs, ev{p.Start, p.Nodes}, ev{p.End, -p.Nodes})
	}
	s.MakespanSec = last - first
	s.MeanWaitSec = waitSum / float64(len(placements))
	if s.MakespanSec > 0 {
		s.Utilization = busy / (float64(machineNodes) * float64(s.MakespanSec))
	}
	sort.Slice(evs, func(a, b int) bool {
		if evs[a].t != evs[b].t {
			return evs[a].t < evs[b].t
		}
		// Frees before allocations at the same instant.
		return evs[a].delta < evs[b].delta
	})
	cur := 0
	for _, e := range evs {
		cur += e.delta
		if cur > s.PeakNodes {
			s.PeakNodes = cur
		}
	}
	return s
}
