package sched

import (
	"context"
	"math"
)

// maxPredictedSec caps predicted runtimes fed to the simulator (~35,000
// years) so an Inf or overflowed prediction cannot wrap the int64 event
// clock.
const maxPredictedSec = int64(1) << 40

// SanitizePredictedSec converts a model-predicted runtime in float
// seconds into a value safe to feed the simulator. Model output can be
// garbage — NaN from a degenerate division, Inf from an overflow,
// zero or negative from an untrained head — and an unchecked int64
// conversion of those is platform-defined, producing placements with
// negative durations. The result is always in [1, limitSec] (or
// [1, maxPredictedSec] when limitSec is 0, i.e. no wall limit).
func SanitizePredictedSec(sec float64, limitSec int64) int64 {
	r := int64(1)
	if !math.IsNaN(sec) && sec > 1 {
		if sec >= float64(maxPredictedSec) { // also catches +Inf
			r = maxPredictedSec
		} else {
			r = int64(sec)
		}
	}
	if limitSec > 0 && r > limitSec {
		r = limitSec
	}
	return r
}

// TurnaroundResult pairs the simulated (real) turnaround of a job with
// the turnaround predicted at its submission instant via the snapshot
// mechanism.
type TurnaroundResult struct {
	ID            int
	RealSec       int64
	PredictedSec  int64
	RealPlacement Placement
	// PredPlacement is the placement of the job inside the snapshot
	// simulation (predicted start and end), used to build predicted
	// system-IO series.
	PredPlacement Placement
}

// PredictTurnarounds runs the full workload through a simulator of the
// given node count and, at every submission, predicts the submitted job's
// turnaround time with the paper's four snapshot steps (§4.2):
//
//  1. copy the system state (allocated/free nodes, clock, executing and
//     queued jobs) in memory;
//  2. replace the runtime of every executing and queued job with its
//     predicted runtime (pred, keyed by job ID);
//  3. simulate the snapshot forward until the submitted job completes;
//  4. record completion − submission as the predicted turnaround.
//
// The real simulation continues with actual runtimes, and the returned
// results pair each job's real turnaround with its prediction. items
// must be sorted by Submit time.
//
// Note that even a perfect runtime predictor does not give perfect
// turnaround predictions under EASY backfilling: arrivals after the
// snapshot change shadow times and hence which queued jobs backfill.
// Under plain FCFS (cfg.Backfill false) perfect runtimes do give exact
// turnarounds, a property the test suite verifies.
func PredictTurnarounds(items []Item, cfg SimConfig, pred func(id int) int64) ([]TurnaroundResult, error) {
	return PredictTurnaroundsCtx(context.Background(), items, cfg, pred)
}

// PredictTurnaroundsCtx is PredictTurnarounds with cooperative
// cancellation: the context is polled before every submission (each of
// which triggers a full snapshot simulation), so a canceled run stops
// within one snapshot.
func PredictTurnaroundsCtx(ctx context.Context, items []Item, cfg SimConfig, pred func(id int) int64) ([]TurnaroundResult, error) {
	sim := NewSimConfig(cfg)
	predicted := make(map[int]Placement, len(items))
	for _, it := range items {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := sim.Submit(it); err != nil {
			return nil, err
		}
		snap := sim.Clone()
		snap.OverrideRuntimes(pred)
		if p, ok := snap.RunUntilDone(it.ID); ok {
			predicted[it.ID] = p
		}
	}
	placements := sim.Drain()
	results := make([]TurnaroundResult, 0, len(placements))
	for _, p := range placements {
		pp := predicted[p.ID]
		results = append(results, TurnaroundResult{
			ID:            p.ID,
			RealSec:       p.Turnaround(),
			PredictedSec:  pp.End - p.Submit,
			RealPlacement: p,
			PredPlacement: pp,
		})
	}
	return results, nil
}

// Schedule runs items (sorted by submit time) through a simulator with
// actual runtimes only and returns the placements keyed by job ID. This
// produces the "real" execution schedule used as perfect turnaround
// knowledge in the paper's first system-IO evaluation.
func Schedule(items []Item, cfg SimConfig) (map[int]Placement, error) {
	return ScheduleCtx(context.Background(), items, cfg)
}

// ScheduleCtx is Schedule with cooperative cancellation, polled per
// submission.
func ScheduleCtx(ctx context.Context, items []Item, cfg SimConfig) (map[int]Placement, error) {
	sim := NewSimConfig(cfg)
	for _, it := range items {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := sim.Submit(it); err != nil {
			return nil, err
		}
	}
	out := make(map[int]Placement, len(items))
	for _, p := range sim.Drain() {
		out[p.ID] = p
	}
	return out, nil
}
