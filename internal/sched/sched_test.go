package sched

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSingleJob(t *testing.T) {
	s := NewSim(4)
	if err := s.Submit(Item{ID: 1, Submit: 100, Nodes: 2, RuntimeSec: 60}); err != nil {
		t.Fatal(err)
	}
	ps := s.Drain()
	if len(ps) != 1 {
		t.Fatalf("%d placements", len(ps))
	}
	p := ps[0]
	if p.Start != 100 || p.End != 160 {
		t.Fatalf("placement %+v, want start 100 end 160", p)
	}
	if p.Turnaround() != 60 {
		t.Fatalf("turnaround %d", p.Turnaround())
	}
}

func TestFCFSQueueing(t *testing.T) {
	// Two 3-node jobs on a 4-node machine: the second waits.
	s := NewSim(4)
	s.Submit(Item{ID: 1, Submit: 0, Nodes: 3, RuntimeSec: 100})
	s.Submit(Item{ID: 2, Submit: 10, Nodes: 3, RuntimeSec: 50})
	got := map[int]Placement{}
	for _, p := range s.Drain() {
		got[p.ID] = p
	}
	if got[1].Start != 0 {
		t.Fatalf("job1 start %d", got[1].Start)
	}
	if got[2].Start != 100 {
		t.Fatalf("job2 start %d, want 100 (after job1)", got[2].Start)
	}
}

func TestBackfillFillsHole(t *testing.T) {
	// Machine: 4 nodes. J1 occupies 3 nodes until t=100. J2 (head,
	// 4 nodes) must wait for t=100. J3 (1 node, 50s) fits in the hole and
	// ends before J2's shadow time → backfills at its submit time.
	s := NewSim(4)
	s.Submit(Item{ID: 1, Submit: 0, Nodes: 3, RuntimeSec: 100})
	s.Submit(Item{ID: 2, Submit: 5, Nodes: 4, RuntimeSec: 100})
	s.Submit(Item{ID: 3, Submit: 10, Nodes: 1, RuntimeSec: 50})
	got := map[int]Placement{}
	for _, p := range s.Drain() {
		got[p.ID] = p
	}
	if got[3].Start != 10 {
		t.Fatalf("job3 start %d, want 10 (backfilled)", got[3].Start)
	}
	if got[2].Start != 100 {
		t.Fatalf("job2 start %d, want 100 (not delayed by backfill)", got[2].Start)
	}
}

func TestBackfillDoesNotDelayHead(t *testing.T) {
	// J3 would fit in free nodes but runs past the shadow time and would
	// steal the head's reserved nodes → must not backfill.
	s := NewSim(4)
	s.Submit(Item{ID: 1, Submit: 0, Nodes: 3, RuntimeSec: 100})
	s.Submit(Item{ID: 2, Submit: 5, Nodes: 4, RuntimeSec: 100})
	s.Submit(Item{ID: 3, Submit: 10, Nodes: 1, RuntimeSec: 500})
	got := map[int]Placement{}
	for _, p := range s.Drain() {
		got[p.ID] = p
	}
	if got[2].Start != 100 {
		t.Fatalf("head start %d, want 100", got[2].Start)
	}
	if got[3].Start < 100 {
		t.Fatalf("long filler started at %d, delaying head", got[3].Start)
	}
}

func TestFCFSWithoutBackfill(t *testing.T) {
	s := NewSim(4)
	s.Backfill = false
	s.Submit(Item{ID: 1, Submit: 0, Nodes: 3, RuntimeSec: 100})
	s.Submit(Item{ID: 2, Submit: 5, Nodes: 4, RuntimeSec: 100})
	s.Submit(Item{ID: 3, Submit: 10, Nodes: 1, RuntimeSec: 50})
	got := map[int]Placement{}
	for _, p := range s.Drain() {
		got[p.ID] = p
	}
	if got[3].Start < got[2].Start {
		t.Fatalf("job3 started %d before head %d without backfill", got[3].Start, got[2].Start)
	}
}

func TestLimitKillsJob(t *testing.T) {
	s := NewSim(2)
	s.Submit(Item{ID: 1, Submit: 0, Nodes: 1, RuntimeSec: 1000, LimitSec: 300})
	p := s.Drain()[0]
	if p.End != 300 {
		t.Fatalf("job ended at %d, want killed at limit 300", p.End)
	}
}

func TestSubmitValidation(t *testing.T) {
	s := NewSim(4)
	if err := s.Submit(Item{ID: 1, Submit: 100, Nodes: 5, RuntimeSec: 10}); err == nil {
		t.Fatal("oversized job accepted")
	}
	s.Submit(Item{ID: 2, Submit: 100, Nodes: 1, RuntimeSec: 10})
	if err := s.Submit(Item{ID: 3, Submit: 50, Nodes: 1, RuntimeSec: 10}); err == nil {
		t.Fatal("out-of-order submission accepted")
	}
}

func TestNoOverlapInvariant(t *testing.T) {
	// Property: at no instant does allocated node count exceed the
	// machine size, and every job runs exactly its runtime.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nodes := 8 + rng.Intn(24)
		s := NewSim(nodes)
		var items []Item
		clock := int64(0)
		for i := 0; i < 60; i++ {
			clock += int64(rng.Intn(50))
			it := Item{
				ID:         i,
				Submit:     clock,
				Nodes:      1 + rng.Intn(nodes),
				RuntimeSec: int64(1 + rng.Intn(500)),
			}
			items = append(items, it)
			if err := s.Submit(it); err != nil {
				return false
			}
		}
		ps := s.Drain()
		if len(ps) != len(items) {
			return false
		}
		byID := map[int]Item{}
		for _, it := range items {
			byID[it.ID] = it
		}
		// Check runtimes and start >= submit.
		type ev struct {
			t     int64
			delta int
		}
		var evs []ev
		for _, p := range ps {
			it := byID[p.ID]
			if p.End-p.Start != it.RuntimeSec {
				return false
			}
			if p.Start < it.Submit {
				return false
			}
			evs = append(evs, ev{p.Start, it.Nodes}, ev{p.End, -it.Nodes})
		}
		// Sweep: allocation never exceeds capacity. Completions at time t
		// free nodes before starts at time t.
		used := 0
		for {
			if len(evs) == 0 {
				break
			}
			// Find min time.
			mt := evs[0].t
			for _, e := range evs {
				if e.t < mt {
					mt = e.t
				}
			}
			rest := evs[:0]
			delta := 0
			for _, e := range evs {
				if e.t == mt {
					delta += e.delta
				} else {
					rest = append(rest, e)
				}
			}
			evs = rest
			used += delta
			if used > nodes || used < 0 {
				return false
			}
		}
		return used == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestCloneIndependence(t *testing.T) {
	s := NewSim(4)
	s.Submit(Item{ID: 1, Submit: 0, Nodes: 2, RuntimeSec: 100})
	s.Submit(Item{ID: 2, Submit: 10, Nodes: 4, RuntimeSec: 50})
	c := s.Clone()
	c.OverrideRuntimes(func(id int) int64 { return 1 })
	c.Drain()
	// Original still has its jobs with original runtimes.
	got := map[int]Placement{}
	for _, p := range s.Drain() {
		got[p.ID] = p
	}
	if got[1].End-got[1].Start != 100 {
		t.Fatalf("clone mutation leaked into original: %+v", got[1])
	}
}

func TestOverrideRuntimesPastEnd(t *testing.T) {
	// A running job whose predicted runtime is already exceeded ends at
	// the current clock, not in the past.
	s := NewSim(2)
	s.Submit(Item{ID: 1, Submit: 0, Nodes: 1, RuntimeSec: 1000})
	s.Submit(Item{ID: 2, Submit: 500, Nodes: 2, RuntimeSec: 100})
	c := s.Clone()
	c.OverrideRuntimes(func(id int) int64 { return 10 }) // job1 "should" have ended at t=10
	p, ok := c.RunUntilDone(2)
	if !ok {
		t.Fatal("job 2 missing from snapshot")
	}
	if p.Start < 500 {
		t.Fatalf("job2 started at %d, before its submission", p.Start)
	}
}

func TestRunUntilDoneMissingJob(t *testing.T) {
	s := NewSim(2)
	s.Submit(Item{ID: 1, Submit: 0, Nodes: 1, RuntimeSec: 10})
	if _, ok := s.Clone().RunUntilDone(99); ok {
		t.Fatal("found a job that was never submitted")
	}
}

func TestPredictTurnaroundsPerfectPredictorFCFS(t *testing.T) {
	// Under plain FCFS, pred == actual runtime ⇒ predicted turnaround
	// equals real turnaround for every job (no backfill interactions
	// with future arrivals).
	rng := rand.New(rand.NewSource(42))
	var items []Item
	clock := int64(0)
	runtimes := map[int]int64{}
	for i := 0; i < 80; i++ {
		clock += int64(rng.Intn(40))
		r := int64(10 + rng.Intn(300))
		runtimes[i] = r
		items = append(items, Item{ID: i, Submit: clock, Nodes: 1 + rng.Intn(8), RuntimeSec: r})
	}
	res, err := PredictTurnarounds(items, SimConfig{Nodes: 16}, func(id int) int64 { return runtimes[id] })
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(items) {
		t.Fatalf("%d results for %d items", len(res), len(items))
	}
	for _, r := range res {
		if r.PredictedSec != r.RealSec {
			t.Fatalf("job %d: predicted %d, real %d with a perfect predictor",
				r.ID, r.PredictedSec, r.RealSec)
		}
	}
}

func TestPredictTurnaroundsPerfectPredictorBackfillClose(t *testing.T) {
	// Under EASY backfill, future arrivals shift shadow times, so even a
	// perfect runtime predictor has residual turnaround error — but it
	// must stay small in aggregate.
	rng := rand.New(rand.NewSource(43))
	var items []Item
	clock := int64(0)
	runtimes := map[int]int64{}
	for i := 0; i < 150; i++ {
		clock += int64(rng.Intn(40))
		r := int64(10 + rng.Intn(300))
		runtimes[i] = r
		items = append(items, Item{ID: i, Submit: clock, Nodes: 1 + rng.Intn(8), RuntimeSec: r})
	}
	res, err := PredictTurnarounds(items, SimConfig{Nodes: 16, Backfill: true},
		func(id int) int64 { return runtimes[id] })
	if err != nil {
		t.Fatal(err)
	}
	var accSum float64
	for _, r := range res {
		a, p := float64(r.RealSec), float64(r.PredictedSec)
		accSum += 1 - abs64(a-p)/(max64(a, p)+1e-12)
	}
	if mean := accSum / float64(len(res)); mean < 0.8 {
		t.Fatalf("mean turnaround accuracy %v < 0.8 with perfect runtimes", mean)
	}
}

func abs64(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func max64(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func TestPredictTurnaroundsBiasedPredictor(t *testing.T) {
	// Systematic 4x overprediction of runtimes must inflate predicted
	// turnarounds for queued jobs.
	var items []Item
	for i := 0; i < 20; i++ {
		items = append(items, Item{ID: i, Submit: int64(i), Nodes: 4, RuntimeSec: 100})
	}
	res, err := PredictTurnarounds(items, SimConfig{Nodes: 4, Backfill: true}, func(id int) int64 { return 400 })
	if err != nil {
		t.Fatal(err)
	}
	// The last job queues behind 19 others: real turnaround ≈ 19*100,
	// predicted ≈ 19*400.
	last := res[len(res)-1]
	for _, r := range res {
		if r.ID == 19 {
			last = r
		}
	}
	if last.PredictedSec < 2*last.RealSec {
		t.Fatalf("overpredicting runtimes did not inflate turnaround: real %d pred %d",
			last.RealSec, last.PredictedSec)
	}
}

func TestScheduleProducesAllPlacements(t *testing.T) {
	var items []Item
	for i := 0; i < 50; i++ {
		items = append(items, Item{ID: i, Submit: int64(i * 5), Nodes: 2, RuntimeSec: 60})
	}
	got, err := Schedule(items, SimConfig{Nodes: 8, Backfill: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 50 {
		t.Fatalf("%d placements", len(got))
	}
	for id, p := range got {
		if p.Start < items[id].Submit {
			t.Fatalf("job %d starts before submission", id)
		}
	}
}

func TestDrainIdleGap(t *testing.T) {
	// A gap with an empty machine between two jobs must not wedge Drain.
	s := NewSim(2)
	s.Submit(Item{ID: 1, Submit: 0, Nodes: 1, RuntimeSec: 10})
	s.Submit(Item{ID: 2, Submit: 10000, Nodes: 1, RuntimeSec: 10})
	ps := s.Drain()
	if len(ps) != 2 {
		t.Fatalf("%d placements", len(ps))
	}
}
