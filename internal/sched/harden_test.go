package sched

import (
	"math"
	"testing"
)

func TestSanitizePredictedSec(t *testing.T) {
	cases := []struct {
		sec   float64
		limit int64
		want  int64
	}{
		{600, 3600, 600},
		{600, 300, 300},       // clipped at the wall limit
		{math.NaN(), 3600, 1}, // NaN never reaches the simulator
		{math.Inf(1), 3600, 3600},
		{math.Inf(1), 0, maxPredictedSec},
		{math.Inf(-1), 3600, 1},
		{-42, 3600, 1},
		{0, 3600, 1},
		{0.2, 3600, 1},
		{1e30, 3600, 3600}, // overflow-sized prediction
		{1e30, 0, maxPredictedSec},
	}
	for _, c := range cases {
		if got := SanitizePredictedSec(c.sec, c.limit); got != c.want {
			t.Errorf("SanitizePredictedSec(%v, %d) = %d, want %d", c.sec, c.limit, got, c.want)
		}
	}
}

// TestSubmitClampsNegativeRuntime asserts a garbage negative runtime
// becomes an instant job instead of a placement that ends before it
// starts.
func TestSubmitClampsNegativeRuntime(t *testing.T) {
	s := NewSim(4)
	if err := s.Submit(Item{ID: 1, Submit: 10, Nodes: 1, RuntimeSec: -500}); err != nil {
		t.Fatal(err)
	}
	ps := s.Drain()
	if len(ps) != 1 {
		t.Fatalf("%d placements", len(ps))
	}
	if ps[0].End < ps[0].Start || ps[0].Start < 10 {
		t.Fatalf("garbage runtime produced placement %+v", ps[0])
	}
}

// TestPredictTurnaroundsGarbagePredictor runs the snapshot mechanism
// with a predictor returning nonsense (zero and negative runtimes) and
// asserts every prediction still yields a well-formed placement.
func TestPredictTurnaroundsGarbagePredictor(t *testing.T) {
	var items []Item
	for i := 0; i < 20; i++ {
		items = append(items, Item{ID: i, Submit: int64(i * 30), Nodes: 2, RuntimeSec: 120, LimitSec: 600})
	}
	garbage := func(id int) int64 {
		switch id % 3 {
		case 0:
			return -999
		case 1:
			return 0
		default:
			return 1 << 50 // beyond any wall limit
		}
	}
	results, err := PredictTurnarounds(items, SimConfig{Nodes: 8, Backfill: true}, garbage)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(items) {
		t.Fatalf("%d results for %d items", len(results), len(items))
	}
	for _, r := range results {
		if r.PredPlacement.End < r.PredPlacement.Start {
			t.Fatalf("job %d: predicted placement ends before it starts: %+v", r.ID, r.PredPlacement)
		}
		if r.RealSec <= 0 {
			t.Fatalf("job %d: real turnaround %d", r.ID, r.RealSec)
		}
	}
}
