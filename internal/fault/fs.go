package fault

import (
	"io"
	"os"
)

// FS is the injectable file-operation layer used by crash-safe writers
// (prionn.SaveFile and the training checkpoints). Only the operations a
// write-temp → fsync → atomic-rename sequence needs are modeled; reads
// stay on the plain os package because a reader cannot corrupt state.
type FS interface {
	Create(name string) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	// SyncDir fsyncs a directory so a completed rename survives a power
	// cut. Implementations may degrade to a no-op where directory
	// handles cannot be synced.
	SyncDir(dir string) error
}

// File is the writable half of FS, mirroring the *os.File subset the
// persistence layer uses.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// OS is the pass-through FS backed by the real os package.
type OS struct{}

// Create implements FS.
func (OS) Create(name string) (File, error) { return os.Create(name) }

// Rename implements FS.
func (OS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Remove implements FS.
func (OS) Remove(name string) error { return os.Remove(name) }

// SyncDir implements FS by opening the directory and fsyncing its
// handle.
func (OS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		_ = d.Close() // the sync error is the interesting one
		return err
	}
	return d.Close()
}

// InjectFS wraps an FS with an Injector: every operation first consults
// the injector's schedule and fails (or writes short, or "crashes")
// when a fault fires. Operations that proceed hit the underlying FS, so
// the on-disk state after an injected failure is exactly what a real
// partial failure leaves behind.
type InjectFS struct {
	Under FS
	Inj   *Injector
}

// NewInjectFS wraps under with the injector's schedule.
func NewInjectFS(under FS, inj *Injector) *InjectFS {
	return &InjectFS{Under: under, Inj: inj}
}

// Create implements FS.
func (f *InjectFS) Create(name string) (File, error) {
	if flt, ok := f.Inj.check(OpCreate); ok {
		return nil, flt.err()
	}
	file, err := f.Under.Create(name)
	if err != nil {
		return nil, err
	}
	return &injectFile{under: file, inj: f.Inj}, nil
}

// Rename implements FS.
func (f *InjectFS) Rename(oldpath, newpath string) error {
	if flt, ok := f.Inj.check(OpRename); ok {
		return flt.err()
	}
	return f.Under.Rename(oldpath, newpath)
}

// Remove implements FS.
func (f *InjectFS) Remove(name string) error {
	if flt, ok := f.Inj.check(OpRemove); ok {
		return flt.err()
	}
	return f.Under.Remove(name)
}

// SyncDir implements FS.
func (f *InjectFS) SyncDir(dir string) error {
	if flt, ok := f.Inj.check(OpSyncDir); ok {
		return flt.err()
	}
	return f.Under.SyncDir(dir)
}

// injectFile applies the injector to per-file operations.
type injectFile struct {
	under File
	inj   *Injector
}

func (f *injectFile) Write(p []byte) (int, error) {
	if flt, ok := f.inj.check(OpWrite); ok {
		if flt.Mode == ModeShortWrite && flt.Keep > 0 {
			keep := flt.Keep
			if keep > len(p) {
				keep = len(p)
			}
			n, err := f.under.Write(p[:keep])
			if err != nil {
				return n, err
			}
			return n, flt.err()
		}
		return 0, flt.err()
	}
	return f.under.Write(p)
}

func (f *injectFile) Sync() error {
	if flt, ok := f.inj.check(OpSync); ok {
		return flt.err()
	}
	return f.under.Sync()
}

func (f *injectFile) Close() error {
	if flt, ok := f.inj.check(OpClose); ok {
		// The underlying descriptor is still closed: a failed close has
		// released the fd on every mainstream kernel, and leaking fds
		// across thousands of crash-matrix cases would exhaust the
		// process limit.
		_ = f.under.Close()
		return flt.err()
	}
	return f.under.Close()
}
