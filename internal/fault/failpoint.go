package fault

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Failpoints are named crash points compiled into non-hot paths: code
// calls Here("site") and, when a test or the experiments CLI has armed
// that site, the call returns an error or panics. Disarmed sites cost
// one atomic load, so failpoints can stay in production code paths
// (per-figure runs, per-training-event checkpoints) without a build tag.

// Failure describes what an armed failpoint does when reached.
type Failure struct {
	// Err is returned by Here. Defaults to ErrInjected when nil and
	// Panic is false.
	Err error
	// Panic makes Here panic instead of returning an error — the
	// worker-crash case the harness's panic isolation must contain.
	Panic bool
	// After skips the first After hits before firing, so a test can
	// interrupt the Nth checkpoint or the Nth retraining event. 0 fires
	// on the first hit.
	After int
	// Sleep stalls Here for this duration before acting — latency
	// injection for overload and backpressure tests (a slow forward
	// pass, a slow disk). A Failure with Sleep set but no Err and no
	// Panic is pure latency: Here sleeps and then returns nil, so the
	// instrumented path proceeds normally, just slower.
	Sleep time.Duration
}

var (
	// armedCount lets Here skip the registry lock entirely while nothing
	// is armed — the common case outside tests.
	armedCount atomic.Int64

	fpMu     sync.Mutex
	failSite = map[string]*Failure{}
)

// Arm installs a failure at the named site and returns a disarm
// function. Re-arming a site replaces its failure.
func Arm(name string, f Failure) (disarm func()) {
	fpMu.Lock()
	if _, exists := failSite[name]; !exists {
		armedCount.Add(1)
	}
	fc := f
	failSite[name] = &fc
	fpMu.Unlock()
	return func() { Disarm(name) }
}

// Disarm removes the failure at the named site, if armed.
func Disarm(name string) {
	fpMu.Lock()
	if _, exists := failSite[name]; exists {
		delete(failSite, name)
		armedCount.Add(-1)
	}
	fpMu.Unlock()
}

// DisarmAll removes every armed failpoint.
func DisarmAll() {
	fpMu.Lock()
	for name := range failSite {
		delete(failSite, name)
		armedCount.Add(-1)
	}
	fpMu.Unlock()
}

// Here is a failpoint site. It returns nil (cheaply) unless the named
// site is armed, in which case it returns the armed error or panics.
func Here(name string) error {
	if armedCount.Load() == 0 {
		return nil
	}
	fpMu.Lock()
	f := failSite[name]
	var fire Failure
	hit := false
	if f != nil {
		if f.After > 0 {
			f.After--
		} else {
			fire, hit = *f, true
		}
	}
	fpMu.Unlock()
	if !hit {
		return nil
	}
	if fire.Sleep > 0 {
		// Outside the registry lock, so a stalled site never blocks
		// arming or firing other sites.
		time.Sleep(fire.Sleep)
	}
	if fire.Panic {
		panic(fmt.Sprintf("fault: failpoint %q armed to panic", name))
	}
	if fire.Err != nil {
		return fire.Err
	}
	if fire.Sleep > 0 {
		return nil // pure latency injection
	}
	return fmt.Errorf("%w at failpoint %q", ErrInjected, name)
}
