// Package fault is the deterministic fault-injection substrate for the
// PRIONN reproduction's robustness layer. A production deployment of the
// paper's tool (§2.3 runs it persistently on a dedicated node) must
// survive partial failures — a kill mid-checkpoint, a full disk, a
// flaky fsync — and the only way to *prove* that is to inject every such
// failure on demand, deterministically, in tests.
//
// The package has two halves:
//
//   - An injectable file-operation layer (FS / File, see fs.go): code
//     that persists state writes through an FS value instead of calling
//     the os package directly. The OS implementation is a thin
//     pass-through; the Injector implementation executes a seeded or
//     explicit schedule of failures — fail the Nth write, write short,
//     fail fsync/rename/close, or simulate a crash (every subsequent
//     operation fails, so error-path cleanup cannot run, exactly as if
//     the process had died at that instant).
//
//   - Named failpoints (see failpoint.go): `fault.Here("site")` sites
//     compiled into non-hot paths that tests and the experiments CLI arm
//     to force an error or a panic at a precise point.
//
// Everything is deterministic: an Injector executes a fixed schedule
// (optionally generated from a seed), never the wall clock or global
// randomness, so a failing crash-matrix case replays exactly.
package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
)

// Op identifies one injectable file-operation kind.
type Op string

// The injectable operation kinds. OpWrite covers every File.Write call;
// the remaining ops fire once per corresponding FS/File method call.
const (
	OpCreate  Op = "create"
	OpWrite   Op = "write"
	OpSync    Op = "sync"
	OpClose   Op = "close"
	OpRename  Op = "rename"
	OpRemove  Op = "remove"
	OpSyncDir Op = "syncdir"
)

// Ops lists every injectable operation kind in stable order.
func Ops() []Op {
	return []Op{OpCreate, OpWrite, OpSync, OpClose, OpRename, OpRemove, OpSyncDir}
}

// Mode selects how an armed fault manifests.
type Mode int

const (
	// ModeError makes the operation fail with ErrInjected (or the
	// fault's Err) after performing no work.
	ModeError Mode = iota
	// ModeShortWrite (OpWrite only) writes the first Keep bytes to the
	// underlying file, then fails. This is the torn-write case a real
	// kernel produces when the process dies between write and fsync.
	ModeShortWrite
	// ModeCrash fails the operation and latches the injector into a
	// crashed state: every subsequent operation fails with ErrCrash.
	// Cleanup paths (remove-temp-on-error) therefore cannot run, which
	// is exactly the on-disk state a process kill leaves behind.
	ModeCrash
)

func (m Mode) String() string {
	switch m {
	case ModeError:
		return "error"
	case ModeShortWrite:
		return "short-write"
	case ModeCrash:
		return "crash"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// ErrInjected is the default error returned by injected operation
// failures.
var ErrInjected = errors.New("fault: injected failure")

// ErrCrash is returned by every operation after a ModeCrash fault fires
// (and by the crash fault itself).
var ErrCrash = errors.New("fault: simulated crash")

// Fault is one scheduled failure: the Nth occurrence (1-based) of Op
// fails in the given Mode.
type Fault struct {
	Op   Op
	Nth  int  // 1-based occurrence of Op that fails
	Mode Mode // how the failure manifests
	Keep int  // ModeShortWrite: bytes actually written before the failure
	Err  error
}

func (f Fault) String() string {
	return fmt.Sprintf("%s#%d:%s", f.Op, f.Nth, f.Mode)
}

func (f Fault) err() error {
	switch {
	case f.Mode == ModeCrash:
		return ErrCrash
	case f.Err != nil:
		return f.Err
	default:
		return ErrInjected
	}
}

// Injector executes a deterministic fault schedule. The zero value is an
// injector with no faults (all operations succeed); it is safe for
// concurrent use.
type Injector struct {
	mu      sync.Mutex
	faults  []Fault
	counts  map[Op]int
	crashed bool
	fired   []Fault
}

// NewInjector returns an injector armed with the given schedule.
func NewInjector(faults ...Fault) *Injector {
	return &Injector{faults: faults}
}

// NewSeededInjector derives a schedule pseudo-randomly from seed: each
// of n faults picks an operation kind, an occurrence in [1, maxNth], and
// a mode. The same seed always yields the same schedule, so a failing
// robustness test names its seed and replays exactly.
func NewSeededInjector(seed int64, n, maxNth int) *Injector {
	rng := rand.New(rand.NewSource(seed))
	ops := Ops()
	modes := []Mode{ModeError, ModeShortWrite, ModeCrash}
	faults := make([]Fault, 0, n)
	for i := 0; i < n; i++ {
		f := Fault{
			Op:   ops[rng.Intn(len(ops))],
			Nth:  1 + rng.Intn(maxNth),
			Mode: modes[rng.Intn(len(modes))],
		}
		if f.Mode == ModeShortWrite {
			f.Op = OpWrite
			f.Keep = rng.Intn(16)
		}
		faults = append(faults, f)
	}
	return NewInjector(faults...)
}

// check records one occurrence of op and returns the fault that fires at
// it, if any. The second return is false when the operation should
// proceed normally.
func (in *Injector) check(op Op) (Fault, bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.crashed {
		return Fault{Op: op, Mode: ModeCrash}, true
	}
	if in.counts == nil {
		in.counts = map[Op]int{}
	}
	in.counts[op]++
	n := in.counts[op]
	for _, f := range in.faults {
		if f.Op == op && f.Nth == n {
			if f.Mode == ModeCrash {
				in.crashed = true
			}
			in.fired = append(in.fired, f)
			return f, true
		}
	}
	return Fault{}, false
}

// Crashed reports whether a ModeCrash fault has fired.
func (in *Injector) Crashed() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.crashed
}

// Fired returns the faults that have fired so far, in firing order.
func (in *Injector) Fired() []Fault {
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]Fault(nil), in.fired...)
}

// Counts returns the number of occurrences seen per operation kind, in
// stable Op order. Running a workload under an empty Injector and
// reading Counts is how the crash-matrix test discovers every injectable
// fault point before enumerating them.
func (in *Injector) Counts() map[Op]int {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[Op]int, len(in.counts))
	for op, n := range in.counts {
		out[op] = n
	}
	return out
}

// Points enumerates every (op, nth) pair observed by a counting run as
// explicit fault specs, one per mode in modes — the full crash matrix
// for a workload. Order is deterministic (ops in Ops() order, then nth).
func Points(counts map[Op]int, modes ...Mode) []Fault {
	if len(modes) == 0 {
		modes = []Mode{ModeError, ModeCrash}
	}
	ops := make([]Op, 0, len(counts))
	for op := range counts {
		ops = append(ops, op)
	}
	sort.Slice(ops, func(i, j int) bool { return ops[i] < ops[j] })
	var out []Fault
	for _, op := range ops {
		for nth := 1; nth <= counts[op]; nth++ {
			for _, m := range modes {
				f := Fault{Op: op, Nth: nth, Mode: m}
				if m == ModeShortWrite && op != OpWrite {
					continue
				}
				out = append(out, f)
			}
		}
	}
	return out
}
