package fault

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestInjectorFailNthWrite(t *testing.T) {
	dir := t.TempDir()
	inj := NewInjector(Fault{Op: OpWrite, Nth: 2, Mode: ModeError})
	fsys := NewInjectFS(OS{}, inj)
	f, err := fsys.Create(filepath.Join(dir, "x"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("aa")); err != nil {
		t.Fatalf("first write should pass: %v", err)
	}
	if _, err := f.Write([]byte("bb")); !errors.Is(err, ErrInjected) {
		t.Fatalf("second write: got %v, want ErrInjected", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if got := inj.Fired(); len(got) != 1 || got[0].Op != OpWrite {
		t.Fatalf("fired = %v", got)
	}
}

func TestInjectorShortWrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x")
	inj := NewInjector(Fault{Op: OpWrite, Nth: 1, Mode: ModeShortWrite, Keep: 3})
	fsys := NewInjectFS(OS{}, inj)
	f, err := fsys.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("abcdef"))
	if n != 3 || !errors.Is(err, ErrInjected) {
		t.Fatalf("short write: n=%d err=%v", n, err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "abc" {
		t.Fatalf("on-disk bytes %q, want torn prefix \"abc\"", b)
	}
}

func TestInjectorCrashLatches(t *testing.T) {
	dir := t.TempDir()
	inj := NewInjector(Fault{Op: OpSync, Nth: 1, Mode: ModeCrash})
	fsys := NewInjectFS(OS{}, inj)
	f, err := fsys.Create(filepath.Join(dir, "x"))
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); !errors.Is(err, ErrCrash) {
		t.Fatalf("sync: got %v, want ErrCrash", err)
	}
	// Post-crash, every operation fails: cleanup cannot run.
	if err := fsys.Remove(filepath.Join(dir, "x")); !errors.Is(err, ErrCrash) {
		t.Fatalf("remove after crash: got %v, want ErrCrash", err)
	}
	if !inj.Crashed() {
		t.Fatal("injector did not latch crashed state")
	}
}

func TestCountsAndPoints(t *testing.T) {
	dir := t.TempDir()
	inj := &Injector{}
	fsys := NewInjectFS(OS{}, inj)
	f, err := fsys.Create(filepath.Join(dir, "x"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := f.Write([]byte("a")); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	counts := inj.Counts()
	if counts[OpCreate] != 1 || counts[OpWrite] != 3 || counts[OpClose] != 1 {
		t.Fatalf("counts = %v", counts)
	}
	pts := Points(counts, ModeError)
	if len(pts) != 5 { // 1 create + 3 writes + 1 close
		t.Fatalf("points = %v", pts)
	}
	// Determinism: the same counts always enumerate the same matrix.
	pts2 := Points(counts, ModeError)
	for i := range pts {
		if pts[i] != pts2[i] {
			t.Fatalf("points not deterministic: %v vs %v", pts[i], pts2[i])
		}
	}
}

func TestSeededInjectorDeterministic(t *testing.T) {
	a := NewSeededInjector(7, 5, 4)
	b := NewSeededInjector(7, 5, 4)
	if len(a.faults) != len(b.faults) {
		t.Fatal("seeded schedules differ in length")
	}
	for i := range a.faults {
		if a.faults[i] != b.faults[i] {
			t.Fatalf("seeded schedule differs at %d: %v vs %v", i, a.faults[i], b.faults[i])
		}
	}
}

func TestFailpointDisarmedIsFree(t *testing.T) {
	if err := Here("nothing/armed"); err != nil {
		t.Fatalf("disarmed failpoint fired: %v", err)
	}
}

func TestFailpointError(t *testing.T) {
	sentinel := errors.New("boom")
	disarm := Arm("site/a", Failure{Err: sentinel})
	defer disarm()
	if err := Here("site/a"); !errors.Is(err, sentinel) {
		t.Fatalf("got %v, want sentinel", err)
	}
	if err := Here("site/other"); err != nil {
		t.Fatalf("unarmed sibling fired: %v", err)
	}
	disarm()
	if err := Here("site/a"); err != nil {
		t.Fatalf("disarmed site fired: %v", err)
	}
}

func TestFailpointAfter(t *testing.T) {
	defer DisarmAll()
	Arm("site/after", Failure{After: 2})
	for i := 0; i < 2; i++ {
		if err := Here("site/after"); err != nil {
			t.Fatalf("hit %d fired early: %v", i, err)
		}
	}
	if err := Here("site/after"); !errors.Is(err, ErrInjected) {
		t.Fatalf("third hit: got %v, want ErrInjected", err)
	}
}

func TestFailpointPanic(t *testing.T) {
	defer DisarmAll()
	Arm("site/panic", Failure{Panic: true})
	defer func() {
		if recover() == nil {
			t.Fatal("armed panic failpoint did not panic")
		}
	}()
	_ = Here("site/panic")
}

func TestFailpointSleepPureLatency(t *testing.T) {
	defer DisarmAll()
	Arm("site/slow", Failure{Sleep: 20 * time.Millisecond})
	start := time.Now()
	if err := Here("site/slow"); err != nil {
		t.Fatalf("pure-latency failpoint returned an error: %v", err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("Here returned after %v, want >= 20ms stall", d)
	}
	// A second hit stalls again: latency injection fires on every hit.
	if err := Here("site/slow"); err != nil {
		t.Fatalf("second hit errored: %v", err)
	}
}

func TestFailpointSleepThenError(t *testing.T) {
	defer DisarmAll()
	sentinel := errors.New("slow boom")
	Arm("site/slowerr", Failure{Sleep: 5 * time.Millisecond, Err: sentinel})
	start := time.Now()
	err := Here("site/slowerr")
	if !errors.Is(err, sentinel) {
		t.Fatalf("got %v, want sentinel after stall", err)
	}
	if d := time.Since(start); d < 5*time.Millisecond {
		t.Fatalf("error fired after %v, want >= 5ms stall first", d)
	}
}
