package features

import (
	"math"
	"testing"
)

const sampleScript = `#!/bin/bash
#SBATCH --job-name=lulesh_prod
#SBATCH -N 16
#SBATCH -n 256
#SBATCH -t 4:30:00
#SBATCH --account=physics
#SBATCH --chdir=/p/lustre1/alice/runs

module load mpi
cd /p/lustre1/alice/runs
srun ./lulesh2.0 -s 80 -i 3000
`

func TestExtractSampleScript(t *testing.T) {
	s := Extract(RawJob{
		Script:    sampleScript,
		User:      "alice",
		Group:     "phys",
		Account:   "",
		SubmitDir: "/home/alice",
	})
	if math.Abs(s.ReqTimeHours-4.5) > 1e-9 {
		t.Fatalf("ReqTimeHours = %v, want 4.5", s.ReqTimeHours)
	}
	if s.ReqNodes != 16 || s.ReqTasks != 256 {
		t.Fatalf("nodes/tasks = %v/%v, want 16/256", s.ReqNodes, s.ReqTasks)
	}
	if s.JobName != "lulesh_prod" {
		t.Fatalf("JobName = %q", s.JobName)
	}
	if s.Account != "physics" {
		t.Fatalf("Account = %q", s.Account)
	}
	if s.WorkDir != "/p/lustre1/alice/runs" {
		t.Fatalf("WorkDir = %q", s.WorkDir)
	}
	if s.User != "alice" || s.Group != "phys" || s.SubmitDir != "/home/alice" {
		t.Fatalf("metadata not carried through: %+v", s)
	}
}

func TestExtractSpaceSeparatedDirectives(t *testing.T) {
	s := Extract(RawJob{Script: "#SBATCH -t 90\n#SBATCH --nodes 4\n#SBATCH -J myjob\n"})
	if math.Abs(s.ReqTimeHours-1.5) > 1e-9 {
		t.Fatalf("minutes format: %v hours, want 1.5", s.ReqTimeHours)
	}
	if s.ReqNodes != 4 {
		t.Fatalf("nodes = %v", s.ReqNodes)
	}
	if s.JobName != "myjob" {
		t.Fatalf("job name = %q", s.JobName)
	}
}

func TestExtractDayFormat(t *testing.T) {
	s := Extract(RawJob{Script: "#SBATCH --time=1-12:00:00\n"})
	if math.Abs(s.ReqTimeHours-36) > 1e-9 {
		t.Fatalf("1-12:00:00 = %v hours, want 36", s.ReqTimeHours)
	}
}

func TestExtractHHMM(t *testing.T) {
	s := Extract(RawJob{Script: "#SBATCH -t 2:30\n"})
	if math.Abs(s.ReqTimeHours-2.5) > 1e-9 {
		t.Fatalf("2:30 = %v hours, want 2.5", s.ReqTimeHours)
	}
}

func TestExtractMalformedScript(t *testing.T) {
	// Must not panic and must return zero values.
	s := Extract(RawJob{Script: "#SBATCH\n#SBATCH -t banana\n#SBATCH -N\ngarbage\x00line\n"})
	if s.ReqTimeHours != 0 || s.ReqNodes != 0 {
		t.Fatalf("malformed script parsed as %+v", s)
	}
}

func TestExtractWorkDirFallsBackToSubmitDir(t *testing.T) {
	s := Extract(RawJob{Script: "#SBATCH -N 1\n", SubmitDir: "/home/u"})
	if s.WorkDir != "/home/u" {
		t.Fatalf("WorkDir = %q, want submit dir", s.WorkDir)
	}
}

func TestExtractCdLine(t *testing.T) {
	s := Extract(RawJob{Script: "cd /scratch/run42\nsrun ./a\n"})
	if s.WorkDir != "/scratch/run42" {
		t.Fatalf("WorkDir = %q", s.WorkDir)
	}
}

func TestEncoderStableCodes(t *testing.T) {
	e := NewEncoder()
	a := e.Encode(Set{User: "alice", JobName: "j1"})
	b := e.Encode(Set{User: "bob", JobName: "j2"})
	a2 := e.Encode(Set{User: "alice", JobName: "j1"})
	if a[3] != a2[3] || a[6] != a2[6] {
		t.Fatal("repeat encoding changed codes")
	}
	if a[3] == b[3] {
		t.Fatal("distinct users share a code")
	}
	if len(a) != NumFeatures {
		t.Fatalf("vector width %d, want %d", len(a), NumFeatures)
	}
}

func TestEncoderAssignsNewCodesForUnseen(t *testing.T) {
	e := NewEncoder()
	e.Encode(Set{User: "u0"})
	v := e.Encode(Set{User: "u1"})
	if v[3] != 1 {
		t.Fatalf("second user coded %v, want 1", v[3])
	}
}

func TestEncodeBatch(t *testing.T) {
	e := NewEncoder()
	jobs := []RawJob{
		{Script: "#SBATCH -N 2\n#SBATCH -t 60\n", User: "a"},
		{Script: "#SBATCH -N 4\n#SBATCH -t 120\n", User: "b"},
	}
	rows := e.EncodeBatch(jobs)
	if len(rows) != 2 {
		t.Fatalf("batch size %d", len(rows))
	}
	if rows[0][1] != 2 || rows[1][1] != 4 {
		t.Fatalf("node features wrong: %v %v", rows[0][1], rows[1][1])
	}
	if rows[0][0] != 1 || rows[1][0] != 2 {
		t.Fatalf("time features wrong: %v %v", rows[0][0], rows[1][0])
	}
	if rows[0][3] == rows[1][3] {
		t.Fatal("users a and b share a code")
	}
}

func TestParseTimeHoursEdgeCases(t *testing.T) {
	cases := map[string]float64{
		"":         0,
		"60":       1,
		"0:30:00":  0.5,
		"12:00:00": 12,
		"2-0:0:0":  48,
	}
	for in, want := range cases {
		if got := parseTimeHours(in); math.Abs(got-want) > 1e-9 {
			t.Fatalf("parseTimeHours(%q) = %v, want %v", in, got, want)
		}
	}
}
