// Package features implements the manual job-script feature extraction
// that traditional machine-learning baselines require (paper Table 1,
// replicating Smith et al.). It parses SLURM-style batch scripts for the
// nine features — requested time, nodes, tasks, user, group, account, job
// name, working directory, submission directory — and label-encodes the
// string-valued ones into numerical columns.
//
// The paper notes this approach "proved difficult due to inconsistencies
// in job script format"; the parser here mirrors that reality by handling
// the directive variants our synthetic trace emits while remaining
// intentionally blind to information embedded in command lines — exactly
// the truncation PRIONN's whole-script mapping avoids.
package features

import (
	"strconv"
	"strings"
)

// RawJob is the per-job information available to the manual extractor:
// the script text plus the submission metadata the scheduler knows.
type RawJob struct {
	Script    string
	User      string
	Group     string
	Account   string
	SubmitDir string
}

// Set is the Table-1 feature set for one job.
type Set struct {
	ReqTimeHours float64 // user-requested runtime in hours
	ReqNodes     float64 // user-requested node count
	ReqTasks     float64 // user-requested task count
	User         string
	Group        string
	Account      string
	JobName      string
	WorkDir      string
	SubmitDir    string
}

// NumFeatures is the width of the encoded feature vector.
const NumFeatures = 9

// Extract parses the Table-1 features from a raw job. Unparsable numeric
// fields are left at zero; missing string fields are empty.
func Extract(j RawJob) Set {
	s := Set{
		User:      j.User,
		Group:     j.Group,
		Account:   j.Account,
		SubmitDir: j.SubmitDir,
	}
	for _, line := range strings.Split(j.Script, "\n") {
		line = strings.TrimSpace(line)
		if !strings.HasPrefix(line, "#SBATCH") && !strings.HasPrefix(line, "#MSUB") {
			if strings.HasPrefix(line, "cd ") && s.WorkDir == "" {
				s.WorkDir = strings.TrimSpace(strings.TrimPrefix(line, "cd "))
			}
			continue
		}
		isMSUB := strings.HasPrefix(line, "#MSUB")
		rest := strings.TrimSpace(line[strings.Index(line, " ")+1:])
		key, val := splitDirective(rest)
		if isMSUB {
			// Moab/Torque style: "-l nodes=16", "-l walltime=8:00:00",
			// "-N jobname".
			switch key {
			case "-l":
				rkey, rval := splitDirective(val)
				switch rkey {
				case "nodes":
					s.ReqNodes = parseFloat(rval)
				case "walltime":
					s.ReqTimeHours = parseTimeHours(rval)
				case "ttc", "procs":
					s.ReqTasks = parseFloat(rval)
				}
			case "-N":
				s.JobName = val
			case "-A":
				if s.Account == "" {
					s.Account = val
				}
			}
			continue
		}
		switch key {
		case "-t", "--time":
			s.ReqTimeHours = parseTimeHours(val)
		case "-N", "--nodes":
			s.ReqNodes = parseFloat(val)
		case "-n", "--ntasks":
			s.ReqTasks = parseFloat(val)
		case "-J", "--job-name":
			s.JobName = val
		case "-A", "--account":
			if s.Account == "" {
				s.Account = val
			}
		case "-D", "--chdir", "--workdir":
			s.WorkDir = val
		}
	}
	if s.WorkDir == "" {
		s.WorkDir = s.SubmitDir
	}
	return s
}

// splitDirective separates "--time=4:00:00", "--time 4:00:00", or
// "-t 4:00:00" into key and value.
func splitDirective(d string) (key, val string) {
	d = strings.TrimSpace(d)
	if d == "" {
		return "", ""
	}
	sp := strings.IndexAny(d, " \t")
	eq := strings.IndexByte(d, '=')
	// "--time=4:00:00" style: '=' appears before any whitespace.
	if eq >= 0 && (sp < 0 || eq < sp) {
		return d[:eq], strings.TrimSpace(d[eq+1:])
	}
	if sp < 0 {
		return d, ""
	}
	return d[:sp], strings.TrimSpace(d[sp+1:])
}

// parseTimeHours parses SLURM time formats — "MM", "HH:MM:SS",
// "D-HH:MM:SS", "HH:MM" — into hours.
func parseTimeHours(v string) float64 {
	v = strings.TrimSpace(v)
	if v == "" {
		return 0
	}
	var days float64
	if i := strings.IndexByte(v, '-'); i >= 0 {
		days = parseFloat(v[:i])
		v = v[i+1:]
	}
	parts := strings.Split(v, ":")
	var h float64
	switch len(parts) {
	case 1: // minutes
		h = parseFloat(parts[0]) / 60
	case 2: // HH:MM
		h = parseFloat(parts[0]) + parseFloat(parts[1])/60
	case 3: // HH:MM:SS
		h = parseFloat(parts[0]) + parseFloat(parts[1])/60 + parseFloat(parts[2])/3600
	}
	return days*24 + h
}

func parseFloat(v string) float64 {
	f, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
	if err != nil {
		return 0
	}
	return f
}

// Encoder label-encodes the string-valued features into stable integer
// codes, assigning codes in first-seen order. The same Encoder instance
// must be used for training and prediction so codes are consistent; it
// is the counterpart of the paper's scikit-learn LabelEncoder, extended
// to assign fresh codes to unseen values at prediction time (new users
// and job names keep arriving in the online setting).
type Encoder struct {
	columns [6]map[string]int
}

// NewEncoder returns an empty encoder.
func NewEncoder() *Encoder {
	e := &Encoder{}
	for i := range e.columns {
		e.columns[i] = make(map[string]int)
	}
	return e
}

func (e *Encoder) code(col int, v string) float64 {
	m := e.columns[col]
	c, ok := m[v]
	if !ok {
		c = len(m)
		m[v] = c
	}
	return float64(c)
}

// Encode converts a feature set into the numerical vector consumed by the
// mlbase regressors: the three numeric features followed by the six
// label-encoded string features.
func (e *Encoder) Encode(s Set) []float64 {
	return []float64{
		s.ReqTimeHours,
		s.ReqNodes,
		s.ReqTasks,
		e.code(0, s.User),
		e.code(1, s.Group),
		e.code(2, s.Account),
		e.code(3, s.JobName),
		e.code(4, s.WorkDir),
		e.code(5, s.SubmitDir),
	}
}

// EncodeBatch extracts and encodes a batch of raw jobs.
func (e *Encoder) EncodeBatch(jobs []RawJob) [][]float64 {
	out := make([][]float64, len(jobs))
	for i, j := range jobs {
		out[i] = e.Encode(Extract(j))
	}
	return out
}
