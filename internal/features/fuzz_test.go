package features

import (
	"strings"
	"testing"
)

// FuzzExtract throws arbitrary script text at the #SBATCH/#MSUB
// directive parser. Beyond not panicking, the parser must preserve the
// identity fields verbatim and honor the workdir fallback contract.
func FuzzExtract(f *testing.F) {
	f.Add("#!/bin/bash\n#SBATCH --time=2-12:30:00\n#SBATCH -N 16\nsrun ./app\n", "u1", "g1", "a1")
	f.Add("#MSUB -l walltime=8:00:00\n#MSUB -l nodes=4\n#MSUB -N myjob\n", "u2", "g2", "")
	f.Add("#SBATCH", "", "", "")
	f.Add("#SBATCH --time=\n#SBATCH -n\ncd /lustre/runs\n", "u", "g", "a")
	f.Add("#SBATCH -t NaN\n#SBATCH -N 1e999\n", "u", "g", "a")
	f.Fuzz(func(t *testing.T, script, user, group, account string) {
		j := RawJob{Script: script, User: user, Group: group, Account: account, SubmitDir: "/submit"}
		s := Extract(j)
		if s.User != user || s.Group != group {
			t.Fatalf("identity fields rewritten: %q/%q from %q/%q", s.User, s.Group, user, group)
		}
		if account != "" && s.Account == "" {
			t.Fatalf("non-empty account %q dropped", account)
		}
		if s.SubmitDir != "/submit" {
			t.Fatalf("submit dir rewritten to %q", s.SubmitDir)
		}
		if s.WorkDir == "" {
			t.Fatal("workdir empty despite non-empty submit dir fallback")
		}
	})
}

// FuzzSplitDirective pins the directive tokenizer: key+val never gain
// bytes that were not in the input, and "--k=v" always splits at '='.
func FuzzSplitDirective(f *testing.F) {
	f.Add("--time=4:00:00")
	f.Add("--time 4:00:00")
	f.Add("-t\t30")
	f.Add("=leading")
	f.Add("   ")
	f.Fuzz(func(t *testing.T, d string) {
		key, val := splitDirective(d)
		if len(key)+len(val) > len(d) {
			t.Fatalf("split grew input: %q -> %q + %q", d, key, val)
		}
		if key != "" && !strings.Contains(d, key) {
			t.Fatalf("key %q not a substring of %q", key, d)
		}
		if val != "" && !strings.Contains(d, val) {
			t.Fatalf("val %q not a substring of %q", val, d)
		}
	})
}
