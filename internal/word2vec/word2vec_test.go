package word2vec

import (
	"bytes"
	"math"
	"testing"
)

func TestFold(t *testing.T) {
	if fold('a') != 97 {
		t.Fatalf("fold('a') = %d", fold('a'))
	}
	if fold(200) != 127 {
		t.Fatalf("fold(200) = %d, want 127", fold(200))
	}
}

func TestTrainEmptyCorpus(t *testing.T) {
	e := Train(nil, DefaultConfig())
	if e.Dim != 4 {
		t.Fatalf("Dim = %d, want 4", e.Dim)
	}
	for c := 0; c < VocabSize; c++ {
		if len(e.Vectors[c]) != 4 {
			t.Fatalf("char %d has vector length %d", c, len(e.Vectors[c]))
		}
	}
}

func TestTrainProducesFiniteVectors(t *testing.T) {
	corpus := []string{
		"#!/bin/bash\n#SBATCH -N 4\nsrun ./app --steps 100\n",
		"#!/bin/bash\n#SBATCH -N 8\nsrun ./app --steps 200\n",
	}
	cfg := DefaultConfig()
	cfg.Epochs = 2
	cfg.MaxPairs = 5000
	e := Train(corpus, cfg)
	for c := 0; c < VocabSize; c++ {
		for _, v := range e.Vectors[c] {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				t.Fatalf("char %d has non-finite component %v", c, v)
			}
		}
	}
}

func TestTrainDeterministicForSeed(t *testing.T) {
	corpus := []string{"srun ./sim --n 16\nsrun ./sim --n 32\n"}
	cfg := DefaultConfig()
	cfg.MaxPairs = 2000
	a := Train(corpus, cfg)
	b := Train(corpus, cfg)
	for c := 0; c < VocabSize; c++ {
		for d := 0; d < a.Dim; d++ {
			if a.Vectors[c][d] != b.Vectors[c][d] {
				t.Fatal("training is not deterministic for a fixed seed")
			}
		}
	}
}

func TestContextSimilarity(t *testing.T) {
	// Digits appear in interchangeable contexts ("x=1;", "x=2;", ...) while
	// 'q' appears in a disjoint context. After training, digit-digit
	// similarity should exceed digit-q similarity on average.
	var corpus []string
	for i := 0; i < 200; i++ {
		d1 := byte('0' + i%10)
		d2 := byte('0' + (i*3)%10)
		corpus = append(corpus,
			"value="+string(d1)+string(d2)+"; run\n",
			"qqq bbb qqq bbb qqq\n")
	}
	cfg := DefaultConfig()
	cfg.Epochs = 4
	cfg.MaxPairs = 30000
	e := Train(corpus, cfg)
	var digitSim, crossSim float64
	var nd, nc int
	for a := byte('0'); a <= '9'; a++ {
		for b := byte('0'); b <= '9'; b++ {
			if a != b {
				digitSim += e.Similarity(a, b)
				nd++
			}
		}
		crossSim += e.Similarity(a, 'q')
		nc++
	}
	digitSim /= float64(nd)
	crossSim /= float64(nc)
	if digitSim <= crossSim {
		t.Fatalf("digit-digit similarity %v not above digit-q similarity %v", digitSim, crossSim)
	}
}

func TestVectorFoldsHighBytes(t *testing.T) {
	e := Train([]string{"abc"}, Config{Dim: 2, Epochs: 1, Seed: 3, MaxPairs: 100})
	if &e.Vector(255)[0] != &e.Vectors[127][0] {
		t.Fatal("high bytes must fold to the last vocabulary slot")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	e := Train([]string{"hello world\n"}, Config{Dim: 3, Epochs: 1, Seed: 9, MaxPairs: 500})
	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Dim != e.Dim {
		t.Fatalf("Dim %d != %d", got.Dim, e.Dim)
	}
	for c := 0; c < VocabSize; c++ {
		for d := 0; d < e.Dim; d++ {
			if got.Vectors[c][d] != e.Vectors[c][d] {
				t.Fatal("vectors differ after round trip")
			}
		}
	}
}

func TestSimilarityRange(t *testing.T) {
	e := Train([]string{"abcabcabc"}, Config{Dim: 4, Epochs: 2, Seed: 5, MaxPairs: 2000})
	s := e.Similarity('a', 'b')
	if s < -1.000001 || s > 1.000001 {
		t.Fatalf("cosine similarity %v out of [-1, 1]", s)
	}
	if sa := e.Similarity('a', 'a'); math.Abs(sa-1) > 1e-6 {
		t.Fatalf("self-similarity %v, want 1", sa)
	}
}
