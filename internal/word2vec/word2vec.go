// Package word2vec implements character-level word2vec (skip-gram with
// negative sampling, Mikolov et al. 2013) for the PRIONN data mapping.
//
// The paper's word2vec transformation embeds every job-script character
// into a small dense vector (output size 4–8) whose geometry reflects the
// contexts the character appears in. PRIONN trains the embedding on the
// corpus of historical job scripts and then uses the per-character vectors
// as the pixel channels of the image-like script representation.
package word2vec

import (
	"encoding/gob"
	"io"
	"math"
	"math/rand"
)

// VocabSize is the character vocabulary: standard 7-bit ASCII. Bytes
// outside the range are folded onto the last slot.
const VocabSize = 128

// Config controls embedding training.
type Config struct {
	Dim      int     // embedding dimensionality (paper: 4)
	Window   int     // context radius in characters
	Negative int     // negative samples per positive pair
	LR       float64 // initial learning rate, linearly decayed
	Epochs   int     // passes over the corpus
	Seed     int64   // RNG seed
	// MaxPairs caps the number of (center, context) pairs sampled per
	// epoch; 0 means use every pair. Large corpora train well below the
	// full pair count.
	MaxPairs int
}

// DefaultConfig returns the configuration used by PRIONN: 4-dimensional
// vectors, window 4, 5 negatives.
func DefaultConfig() Config {
	return Config{Dim: 4, Window: 4, Negative: 5, LR: 0.05, Epochs: 3, Seed: 1, MaxPairs: 200000}
}

// Embedding holds trained character vectors.
type Embedding struct {
	Dim     int
	Vectors [VocabSize][]float32 // input vectors, one per character
}

// Vector returns the embedding of character c (folded to ASCII).
func (e *Embedding) Vector(c byte) []float32 {
	if c >= VocabSize {
		c = VocabSize - 1
	}
	return e.Vectors[c]
}

// fold maps a byte to a vocabulary index.
func fold(c byte) int {
	if c >= VocabSize {
		return VocabSize - 1
	}
	return int(c)
}

// Train learns character embeddings from a corpus of job scripts using
// skip-gram with negative sampling. The corpus is treated as independent
// documents; context windows do not cross document boundaries.
func Train(corpus []string, cfg Config) *Embedding {
	if cfg.Dim <= 0 {
		cfg.Dim = 4
	}
	if cfg.Window <= 0 {
		cfg.Window = 4
	}
	if cfg.Negative <= 0 {
		cfg.Negative = 5
	}
	if cfg.LR <= 0 {
		cfg.LR = 0.05
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Unigram table with the customary 3/4-power smoothing for negative
	// sampling.
	counts := make([]float64, VocabSize)
	total := 0
	for _, doc := range corpus {
		for i := 0; i < len(doc); i++ {
			counts[fold(doc[i])]++
			total++
		}
	}
	if total == 0 {
		// Degenerate corpus: return deterministic small random vectors so
		// downstream mapping still works.
		e := &Embedding{Dim: cfg.Dim}
		for c := 0; c < VocabSize; c++ {
			v := make([]float32, cfg.Dim)
			for d := range v {
				v[d] = float32(rng.NormFloat64() * 0.1)
			}
			e.Vectors[c] = v
		}
		return e
	}
	const tableSize = 1 << 16
	negTable := make([]uint8, tableSize)
	{
		var z float64
		for _, c := range counts {
			z += math.Pow(c, 0.75)
		}
		idx, cum := 0, 0.0
		for c := 0; c < VocabSize && idx < tableSize; c++ {
			cum += math.Pow(counts[c], 0.75) / z
			for idx < tableSize && float64(idx)/tableSize < cum {
				negTable[idx] = uint8(c)
				idx++
			}
		}
		for ; idx < tableSize; idx++ {
			negTable[idx] = VocabSize - 1
		}
	}

	// Parameter matrices: input (the embedding we keep) and output.
	in := make([][]float32, VocabSize)
	out := make([][]float32, VocabSize)
	for c := 0; c < VocabSize; c++ {
		in[c] = make([]float32, cfg.Dim)
		out[c] = make([]float32, cfg.Dim)
		for d := 0; d < cfg.Dim; d++ {
			in[c][d] = float32((rng.Float64() - 0.5) / float64(cfg.Dim))
		}
	}

	// Enumerate candidate (doc, pos) centers once.
	type center struct{ doc, pos int32 }
	var centers []center
	for di, doc := range corpus {
		for p := 0; p < len(doc); p++ {
			centers = append(centers, center{int32(di), int32(p)})
		}
	}
	pairsPerEpoch := len(centers)
	if cfg.MaxPairs > 0 && cfg.MaxPairs < pairsPerEpoch {
		pairsPerEpoch = cfg.MaxPairs
	}

	steps := cfg.Epochs * pairsPerEpoch
	step := 0
	grad := make([]float32, cfg.Dim)
	for e := 0; e < cfg.Epochs; e++ {
		for k := 0; k < pairsPerEpoch; k++ {
			ct := centers[rng.Intn(len(centers))]
			doc := corpus[ct.doc]
			pos := int(ct.pos)
			w := fold(doc[pos])
			// Dynamic window as in the original implementation.
			b := 1 + rng.Intn(cfg.Window)
			lr := float32(cfg.LR * (1 - float64(step)/float64(steps+1)))
			if lr < float32(cfg.LR)*1e-2 {
				lr = float32(cfg.LR) * 1e-2
			}
			step++
			for off := -b; off <= b; off++ {
				cp := pos + off
				if off == 0 || cp < 0 || cp >= len(doc) {
					continue
				}
				ctx := fold(doc[cp])
				v := in[w]
				clear(grad)
				// One positive plus cfg.Negative negatives.
				for s := 0; s <= cfg.Negative; s++ {
					var target int
					var label float32
					if s == 0 {
						target, label = ctx, 1
					} else {
						target, label = int(negTable[rng.Intn(tableSize)]), 0
						if target == ctx {
							continue
						}
					}
					u := out[target]
					var dot float32
					for d := 0; d < cfg.Dim; d++ {
						dot += v[d] * u[d]
					}
					g := (label - sigmoid(dot)) * lr
					for d := 0; d < cfg.Dim; d++ {
						grad[d] += g * u[d]
						u[d] += g * v[d]
					}
				}
				for d := 0; d < cfg.Dim; d++ {
					v[d] += grad[d]
				}
			}
		}
	}

	emb := &Embedding{Dim: cfg.Dim}
	for c := 0; c < VocabSize; c++ {
		emb.Vectors[c] = in[c]
	}
	return emb
}

func sigmoid(x float32) float32 {
	return float32(1 / (1 + math.Exp(-float64(x))))
}

// Similarity returns the cosine similarity between the embeddings of two
// characters.
func (e *Embedding) Similarity(a, b byte) float64 {
	va, vb := e.Vector(a), e.Vector(b)
	var dot, na, nb float64
	for d := 0; d < e.Dim; d++ {
		dot += float64(va[d]) * float64(vb[d])
		na += float64(va[d]) * float64(va[d])
		nb += float64(vb[d]) * float64(vb[d])
	}
	if na == 0 || nb == 0 { //prionnvet:ignore float-eq -- exact zero norm (all-zero vector) is the only undefined cosine input
		return 0
	}
	return dot / math.Sqrt(na*nb)
}

// Save writes the embedding with gob.
func (e *Embedding) Save(w io.Writer) error {
	return gob.NewEncoder(w).Encode(e)
}

// Load reads an embedding written by Save.
func Load(r io.Reader) (*Embedding, error) {
	var e Embedding
	if err := gob.NewDecoder(r).Decode(&e); err != nil {
		return nil, err
	}
	return &e, nil
}
