package nn

import (
	"math/rand"

	"prionn/internal/tensor"
)

// Dense is a fully connected layer computing y = x·W + b over batches
// [N, in] → [N, out].
type Dense struct {
	In, Out int
	W       *tensor.Tensor // [in, out]
	B       *tensor.Tensor // [out]
	dW, dB  *tensor.Tensor
	x       *tensor.Tensor // cached input
	y, dx   *tensor.Tensor // recycled train-time output and input-gradient buffers
}

// NewDense returns a Dense layer with He-initialized weights.
func NewDense(rng *rand.Rand, in, out int) *Dense {
	return &Dense{
		In:  in,
		Out: out,
		W:   tensor.New(in, out).HeInit(rng, in),
		B:   tensor.New(out),
		dW:  tensor.New(in, out),
		dB:  tensor.New(out),
	}
}

// Name implements Layer.
func (d *Dense) Name() string { return "dense" }

// Forward implements Layer.
func (d *Dense) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 2 || x.Dim(1) != d.In {
		x = x.Reshape(x.Dim(0), -1)
	}
	d.x = x
	var y *tensor.Tensor
	if train {
		// The previous step's output is dead once its TrainBatch
		// returned, so the layer cycles one arena buffer instead of
		// allocating per batch. Inference outputs escape to the caller
		// and get fresh tensors.
		d.y = tensor.DefaultArena().Reuse(d.y, x.Dim(0), d.Out)
		y = d.y
	} else {
		y = tensor.New(x.Dim(0), d.Out)
	}
	tensor.MatMul(y, x, d.W)
	y.AddRowVector(d.B)
	return y
}

// Backward implements Layer.
func (d *Dense) Backward(dy *tensor.Tensor) *tensor.Tensor {
	// dW += xᵀ·dy ; dB += column sums of dy ; dx = dy·Wᵀ
	tensor.MatMulTransAAcc(d.dW, d.x, dy)
	dy.SumRowsAcc(d.dB)
	d.dx = tensor.DefaultArena().Reuse(d.dx, dy.Dim(0), d.In)
	return tensor.MatMulTransB(d.dx, dy, d.W)
}

// Params implements Layer.
func (d *Dense) Params() []*tensor.Tensor { return []*tensor.Tensor{d.W, d.B} }

// Grads implements Layer.
func (d *Dense) Grads() []*tensor.Tensor { return []*tensor.Tensor{d.dW, d.dB} }

// ReLU applies the rectified linear unit elementwise.
type ReLU struct {
	mask  []bool
	y, dx *tensor.Tensor // recycled train-time buffers
}

// NewReLU returns a ReLU activation layer.
func NewReLU() *ReLU { return &ReLU{} }

// Name implements Layer.
func (r *ReLU) Name() string { return "relu" }

// Forward implements Layer.
func (r *ReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	var y *tensor.Tensor
	if train {
		r.y = tensor.DefaultArena().Reuse(r.y, x.Shape...)
		y = r.y
	} else {
		y = tensor.New(x.Shape...)
	}
	if cap(r.mask) < x.Len() {
		r.mask = make([]bool, x.Len())
	}
	r.mask = r.mask[:x.Len()]
	for i, v := range x.Data {
		if v <= 0 {
			y.Data[i] = 0
			r.mask[i] = false
		} else {
			y.Data[i] = v
			r.mask[i] = true
		}
	}
	return y
}

// Backward implements Layer.
func (r *ReLU) Backward(dy *tensor.Tensor) *tensor.Tensor {
	r.dx = tensor.DefaultArena().Reuse(r.dx, dy.Shape...)
	dx := r.dx
	for i, v := range dy.Data {
		if r.mask[i] {
			dx.Data[i] = v
		} else {
			dx.Data[i] = 0
		}
	}
	return dx
}

// Params implements Layer.
func (r *ReLU) Params() []*tensor.Tensor { return nil }

// Grads implements Layer.
func (r *ReLU) Grads() []*tensor.Tensor { return nil }

// Flatten reshapes [N, ...] to [N, features], remembering the input shape
// so the gradient can be restored on the way back.
type Flatten struct {
	inShape []int
}

// NewFlatten returns a Flatten layer.
func NewFlatten() *Flatten { return &Flatten{} }

// Name implements Layer.
func (f *Flatten) Name() string { return "flatten" }

// Forward implements Layer.
func (f *Flatten) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	f.inShape = append(f.inShape[:0], x.Shape...)
	return x.Reshape(x.Dim(0), -1)
}

// Backward implements Layer.
func (f *Flatten) Backward(dy *tensor.Tensor) *tensor.Tensor {
	return dy.Reshape(f.inShape...)
}

// Params implements Layer.
func (f *Flatten) Params() []*tensor.Tensor { return nil }

// Grads implements Layer.
func (f *Flatten) Grads() []*tensor.Tensor { return nil }

// Dropout randomly zeroes activations at train time with probability P and
// rescales survivors by 1/(1-P) (inverted dropout), acting as identity at
// inference time.
type Dropout struct {
	P     float64
	rng   *rand.Rand
	mask  []float32
	y, dx *tensor.Tensor // recycled train-time buffers
}

// NewDropout returns a Dropout layer with drop probability p in [0, 1).
func NewDropout(rng *rand.Rand, p float64) *Dropout {
	if p < 0 || p >= 1 {
		panic("nn: dropout probability must be in [0, 1)")
	}
	return &Dropout{P: p, rng: rng}
}

// Name implements Layer.
func (d *Dropout) Name() string { return "dropout" }

// Forward implements Layer.
func (d *Dropout) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if !train || d.P == 0 {
		d.mask = nil
		return x
	}
	d.y = tensor.DefaultArena().Reuse(d.y, x.Shape...)
	y := d.y
	if cap(d.mask) < y.Len() {
		d.mask = make([]float32, y.Len())
	}
	d.mask = d.mask[:y.Len()]
	scale := float32(1 / (1 - d.P))
	for i, v := range x.Data {
		if d.rng.Float64() < d.P {
			d.mask[i] = 0
			y.Data[i] = 0
		} else {
			d.mask[i] = scale
			y.Data[i] = v * scale
		}
	}
	return y
}

// Backward implements Layer.
func (d *Dropout) Backward(dy *tensor.Tensor) *tensor.Tensor {
	if d.mask == nil {
		return dy
	}
	d.dx = tensor.DefaultArena().Reuse(d.dx, dy.Shape...)
	dx := d.dx
	for i, v := range dy.Data {
		dx.Data[i] = v * d.mask[i]
	}
	return dx
}

// Params implements Layer.
func (d *Dropout) Params() []*tensor.Tensor { return nil }

// Grads implements Layer.
func (d *Dropout) Grads() []*tensor.Tensor { return nil }
