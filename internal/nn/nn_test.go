package nn

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"prionn/internal/tensor"
)

func TestDenseForwardKnown(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := NewDense(rng, 2, 3)
	d.W = tensor.FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	d.B = tensor.FromSlice([]float32{10, 20, 30}, 3)
	x := tensor.FromSlice([]float32{1, 1}, 1, 2)
	y := d.Forward(x, false)
	want := []float32{1 + 4 + 10, 2 + 5 + 20, 3 + 6 + 30}
	for i, w := range want {
		if y.Data[i] != w {
			t.Fatalf("y[%d] = %v, want %v", i, y.Data[i], w)
		}
	}
}

// lossOf computes the scalar loss for gradient checking.
func lossOf(m *Sequential, x *tensor.Tensor, labels []int) float64 {
	logits := m.Forward(x, false)
	loss, _ := SoftmaxCrossEntropy(logits, labels)
	return loss
}

// checkGradients numerically verifies a few parameter gradients of m.
func checkGradients(t *testing.T, m *Sequential, x *tensor.Tensor, labels []int, tol float64) {
	t.Helper()
	zeroGrads(m.Layers)
	logits := m.Forward(x, true)
	_, dlogits := SoftmaxCrossEntropy(logits, labels)
	m.Backward(dlogits)
	params, grads := m.collect()
	const eps = 1e-2
	for pi, p := range params {
		// Check a spread of indices per tensor.
		idxs := []int{0, p.Len() / 2, p.Len() - 1}
		for _, i := range idxs {
			orig := p.Data[i]
			p.Data[i] = orig + eps
			up := lossOf(m, x, labels)
			p.Data[i] = orig - eps
			down := lossOf(m, x, labels)
			p.Data[i] = orig
			num := (up - down) / (2 * eps)
			got := float64(grads[pi].Data[i])
			if math.Abs(num-got) > tol*(1+math.Abs(num)) {
				t.Fatalf("param %d idx %d: analytic %v vs numeric %v", pi, i, got, num)
			}
		}
	}
}

func TestDenseNetworkGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := NewSequential(
		NewDense(rng, 6, 8),
		NewReLU(),
		NewDense(rng, 8, 4),
	)
	x := tensor.New(3, 6).RandN(rng, 1)
	checkGradients(t, m, x, []int{1, 3, 0}, 0.15)
}

func TestConvNetworkGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	conv := NewConv2D(rng, 1, 6, 6, 2, tensor.ConvSpec{KH: 3, KW: 3, Stride: 1, PadH: 1, PadW: 1})
	pool := NewMaxPool2D(2, 6, 6, 2, 2)
	m := NewSequential(
		conv,
		NewReLU(),
		pool,
		NewFlatten(),
		NewDense(rng, 2*3*3, 4),
	)
	x := tensor.New(2, 1, 6, 6).RandN(rng, 1)
	checkGradients(t, m, x, []int{2, 1}, 0.15)
}

func TestSoftmaxCrossEntropyKnown(t *testing.T) {
	// Uniform logits over K classes → loss = ln K.
	logits := tensor.New(2, 4)
	loss, grad := SoftmaxCrossEntropy(logits, []int{0, 3})
	if math.Abs(loss-math.Log(4)) > 1e-6 {
		t.Fatalf("loss = %v, want ln4 = %v", loss, math.Log(4))
	}
	// Gradient: (0.25 - onehot)/N.
	if math.Abs(float64(grad.At(0, 0))-(0.25-1)/2) > 1e-6 {
		t.Fatalf("grad(0,0) = %v", grad.At(0, 0))
	}
	if math.Abs(float64(grad.At(0, 1))-0.25/2) > 1e-6 {
		t.Fatalf("grad(0,1) = %v", grad.At(0, 1))
	}
}

func TestSoftmaxCrossEntropyGradSumsToZero(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, k := 1+rng.Intn(6), 2+rng.Intn(8)
		logits := tensor.New(n, k).RandN(rng, 3)
		labels := make([]int, n)
		for i := range labels {
			labels[i] = rng.Intn(k)
		}
		loss, grad := SoftmaxCrossEntropy(logits, labels)
		if loss < 0 {
			return false
		}
		// Each row of the gradient sums to zero: sum(softmax) - 1 = 0.
		for i := 0; i < n; i++ {
			var s float64
			for _, v := range grad.Row(i) {
				s += float64(v)
			}
			if math.Abs(s) > 1e-5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestAccuracy(t *testing.T) {
	logits := tensor.FromSlice([]float32{
		0, 1, 0,
		5, 1, 0,
		0, 0, 9,
	}, 3, 3)
	if a := Accuracy(logits, []int{1, 0, 2}); a != 1 {
		t.Fatalf("accuracy = %v, want 1", a)
	}
	if a := Accuracy(logits, []int{0, 0, 2}); math.Abs(a-2.0/3) > 1e-9 {
		t.Fatalf("accuracy = %v, want 2/3", a)
	}
}

func TestFitLearnsSeparableProblem(t *testing.T) {
	// Two Gaussian blobs in 2D; a tiny dense net should reach high
	// training accuracy quickly.
	rng := rand.New(rand.NewSource(4))
	n := 200
	x := tensor.New(n, 2)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		c := i % 2
		labels[i] = c
		cx := float64(c)*4 - 2
		x.Set(float32(cx+rng.NormFloat64()*0.5), i, 0)
		x.Set(float32(cx+rng.NormFloat64()*0.5), i, 1)
	}
	m := NewSequential(
		NewDense(rng, 2, 16),
		NewReLU(),
		NewDense(rng, 16, 2),
	)
	opt := NewAdam(0.01)
	m.Fit(x, labels, opt, FitOptions{Epochs: 30, BatchSize: 32, Shuffle: rng})
	acc := Accuracy(m.Predict(x), labels)
	if acc < 0.95 {
		t.Fatalf("training accuracy %v < 0.95 on separable data", acc)
	}
}

func TestFitLossDecreases(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 64
	x := tensor.New(n, 4).RandN(rng, 1)
	labels := make([]int, n)
	for i := range labels {
		if x.At(i, 0) > 0 {
			labels[i] = 1
		}
	}
	m := NewSequential(NewDense(rng, 4, 8), NewReLU(), NewDense(rng, 8, 2))
	opt := NewSGD(0.1, 0.9)
	var losses []float64
	m.Fit(x, labels, opt, FitOptions{
		Epochs: 10, BatchSize: 16, Shuffle: rng,
		Verbose: func(e int, l float64) { losses = append(losses, l) },
	})
	if len(losses) != 10 {
		t.Fatalf("want 10 epoch losses, got %d", len(losses))
	}
	if losses[len(losses)-1] >= losses[0] {
		t.Fatalf("loss did not decrease: %v → %v", losses[0], losses[len(losses)-1])
	}
}

func TestSGDMomentumMatchesManual(t *testing.T) {
	p := tensor.FromSlice([]float32{1}, 1)
	g := tensor.FromSlice([]float32{2}, 1)
	opt := NewSGD(0.1, 0.5)
	opt.Step([]*tensor.Tensor{p}, []*tensor.Tensor{g})
	// v = -0.1*2 = -0.2; p = 1 - 0.2 = 0.8
	if math.Abs(float64(p.Data[0])-0.8) > 1e-6 {
		t.Fatalf("step1 p = %v, want 0.8", p.Data[0])
	}
	opt.Step([]*tensor.Tensor{p}, []*tensor.Tensor{g})
	// v = 0.5*(-0.2) - 0.2 = -0.3; p = 0.8 - 0.3 = 0.5
	if math.Abs(float64(p.Data[0])-0.5) > 1e-6 {
		t.Fatalf("step2 p = %v, want 0.5", p.Data[0])
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	// Minimize (p-3)^2 via its gradient 2(p-3).
	p := tensor.FromSlice([]float32{0}, 1)
	g := tensor.New(1)
	opt := NewAdam(0.1)
	for i := 0; i < 500; i++ {
		g.Data[0] = 2 * (p.Data[0] - 3)
		opt.Step([]*tensor.Tensor{p}, []*tensor.Tensor{g})
	}
	if math.Abs(float64(p.Data[0])-3) > 0.05 {
		t.Fatalf("Adam converged to %v, want 3", p.Data[0])
	}
}

func TestDropoutTrainVsEval(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	d := NewDropout(rng, 0.5)
	x := tensor.New(1, 1000).Fill(1)
	yTrain := d.Forward(x, true)
	zeros := 0
	var sum float64
	for _, v := range yTrain.Data {
		if v == 0 {
			zeros++
		}
		sum += float64(v)
	}
	if zeros < 350 || zeros > 650 {
		t.Fatalf("dropout zeroed %d of 1000, expected ≈500", zeros)
	}
	// Inverted dropout keeps the expected activation scale.
	if sum < 700 || sum > 1300 {
		t.Fatalf("dropout train-mode sum %v, expected ≈1000", sum)
	}
	yEval := d.Forward(x, false)
	for _, v := range yEval.Data {
		if v != 1 {
			t.Fatal("dropout must be identity at eval time")
		}
	}
}

func TestDropoutBackwardMasksGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d := NewDropout(rng, 0.5)
	x := tensor.New(1, 100).Fill(1)
	y := d.Forward(x, true)
	dy := tensor.New(1, 100).Fill(1)
	dx := d.Backward(dy)
	for i := range y.Data {
		if (y.Data[i] == 0) != (dx.Data[i] == 0) {
			t.Fatal("gradient mask does not match forward mask")
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	build := func(r *rand.Rand) *Sequential {
		return NewSequential(NewDense(r, 4, 8), NewReLU(), NewDense(r, 8, 3))
	}
	m1 := build(rng)
	x := tensor.New(5, 4).RandN(rng, 1)
	want := m1.Predict(x).Clone()

	var buf bytes.Buffer
	if err := m1.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2 := build(rand.New(rand.NewSource(999))) // different init
	if err := m2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	got := m2.Predict(x)
	for i := range want.Data {
		if want.Data[i] != got.Data[i] {
			t.Fatalf("prediction differs after Load at %d", i)
		}
	}
}

func TestLoadSizeMismatchError(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m1 := NewSequential(NewDense(rng, 4, 8))
	var buf bytes.Buffer
	if err := m1.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2 := NewSequential(NewDense(rng, 4, 9))
	if err := m2.Load(&buf); err == nil {
		t.Fatal("expected error loading mismatched snapshot")
	}
}

func TestCopyParamsFromWarmStart(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	m1 := NewSequential(NewDense(rng, 3, 5), NewReLU(), NewDense(rng, 5, 2))
	m2 := NewSequential(NewDense(rng, 3, 5), NewReLU(), NewDense(rng, 5, 2))
	if err := m2.CopyParamsFrom(m1); err != nil {
		t.Fatal(err)
	}
	x := tensor.New(4, 3).RandN(rng, 1)
	a, b := m1.Predict(x), m2.Predict(x)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("warm-started model differs from source")
		}
	}
}

func TestArchBuildersShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cfg := ArchConfig{Rows: 16, Cols: 16, Channels: 4, Classes: 10, Width: 0.25}
	for name, build := range map[string]func(*rand.Rand, ArchConfig) *Sequential{
		"NN":     NewFullyConnected,
		"1D-CNN": NewCNN1D,
		"2D-CNN": NewCNN2D,
	} {
		m := build(rng, cfg)
		x := tensor.New(3, cfg.Channels, cfg.Rows, cfg.Cols).RandN(rng, 1)
		var logits *tensor.Tensor
		switch name {
		case "NN":
			logits = m.Predict(x)
		case "1D-CNN":
			logits = m.Predict(x.Reshape(3, cfg.Channels, 1, cfg.Rows*cfg.Cols))
		default:
			logits = m.Predict(x)
		}
		if logits.Dim(0) != 3 || logits.Dim(1) != cfg.Classes {
			t.Fatalf("%s: logits shape %v, want [3 %d]", name, logits.Shape, cfg.Classes)
		}
		if m.NumParams() == 0 {
			t.Fatalf("%s: no parameters", name)
		}
	}
}

func TestCNN2DTrainsOnSyntheticImages(t *testing.T) {
	// Class 0: bright top half. Class 1: bright bottom half. The 2D-CNN
	// must learn this spatial pattern.
	rng := rand.New(rand.NewSource(12))
	cfg := ArchConfig{Rows: 8, Cols: 8, Channels: 1, Classes: 2, Width: 0.5}
	n := 60
	x := tensor.New(n, 1, 8, 8)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		c := i % 2
		labels[i] = c
		for r := 0; r < 8; r++ {
			for col := 0; col < 8; col++ {
				v := rng.Float64() * 0.2
				if (c == 0 && r < 4) || (c == 1 && r >= 4) {
					v += 1
				}
				x.Set(float32(v), i, 0, r, col)
			}
		}
	}
	m := NewCNN2D(rng, cfg)
	opt := NewAdam(0.005)
	m.Fit(x, labels, opt, FitOptions{Epochs: 8, BatchSize: 16, Shuffle: rng})
	if acc := Accuracy(m.Predict(x), labels); acc < 0.9 {
		t.Fatalf("2D-CNN training accuracy %v < 0.9", acc)
	}
}

func TestFitEmptyDataset(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	m := NewSequential(NewDense(rng, 2, 2))
	loss := m.Fit(tensor.New(0, 2), nil, NewSGD(0.1, 0), FitOptions{Epochs: 3})
	if loss != 0 {
		t.Fatalf("Fit on empty dataset returned %v, want 0", loss)
	}
}

func TestFlattenRoundTrip(t *testing.T) {
	f := NewFlatten()
	x := tensor.New(2, 3, 4, 5)
	y := f.Forward(x, true)
	if y.Dim(0) != 2 || y.Dim(1) != 60 {
		t.Fatalf("flatten shape %v", y.Shape)
	}
	dy := tensor.New(2, 60)
	dx := f.Backward(dy)
	if dx.Rank() != 4 || dx.Dim(3) != 5 {
		t.Fatalf("flatten backward shape %v", dx.Shape)
	}
}

func TestStepDecaySchedule(t *testing.T) {
	d := StepDecay{Base: 1.0, Factor: 0.5, Every: 2}
	want := map[int]float64{0: 1, 1: 1, 2: 0.5, 3: 0.5, 4: 0.25}
	for e, w := range want {
		if got := d.At(e); math.Abs(got-w) > 1e-12 {
			t.Fatalf("At(%d) = %v, want %v", e, got, w)
		}
	}
	// Every <= 0 disables decay.
	if (StepDecay{Base: 2, Factor: 0.1}).At(100) != 2 {
		t.Fatal("zero-Every schedule decayed")
	}
}

func TestLRAdjusters(t *testing.T) {
	for _, opt := range []LRAdjuster{NewSGD(0.1, 0), NewAdam(0.01)} {
		orig := opt.LearningRate()
		StepDecay{Base: orig, Factor: 0.5, Every: 1}.Apply(opt, 2)
		if got := opt.LearningRate(); math.Abs(got-orig*0.25) > 1e-12 {
			t.Fatalf("adjusted LR %v, want %v", got, orig*0.25)
		}
	}
}

func TestDescribe(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	m := NewSequential(
		NewConv2D(rng, 1, 8, 8, 2, tensor.ConvSpec{KH: 3, KW: 3, Stride: 1, PadH: 1, PadW: 1}),
		NewReLU(),
		NewFlatten(),
		NewDense(rng, 128, 4),
	)
	desc := m.Describe()
	for _, want := range []string{"conv2d", "dense", "128 -> 4", "total"} {
		if !strings.Contains(desc, want) {
			t.Fatalf("Describe missing %q:\n%s", want, desc)
		}
	}
}

func TestGradientNorms(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	m := NewSequential(NewDense(rng, 4, 8), NewReLU(), NewDense(rng, 8, 2))
	x := tensor.New(4, 4).RandN(rng, 1)
	m.TrainBatch(x, []int{0, 1, 0, 1}, NewSGD(0.01, 0))
	norms := m.GradientNorms()
	if len(norms) != 4 { // W1, b1, W2, b2
		t.Fatalf("%d gradient norms", len(norms))
	}
	nonzero := 0
	for _, n := range norms {
		if n > 0 {
			nonzero++
		}
	}
	if nonzero == 0 {
		t.Fatal("all gradients zero after a training step")
	}
}
