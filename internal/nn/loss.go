package nn

import (
	"math"

	"prionn/internal/tensor"
)

// SoftmaxCrossEntropy computes the mean cross-entropy loss of logits
// [N, K] against integer class labels, together with the gradient of the
// loss with respect to the logits (softmax(x) - onehot(y), scaled by 1/N).
//
// PRIONN's heads are classifiers — e.g. the runtime head has one output
// node per minute in [0, 960] — so this is the only loss the models need.
func SoftmaxCrossEntropy(logits *tensor.Tensor, labels []int) (loss float64, dlogits *tensor.Tensor) {
	if logits.Rank() != 2 {
		panic("nn: SoftmaxCrossEntropy requires rank-2 logits")
	}
	n, k := logits.Dim(0), logits.Dim(1)
	if len(labels) != n {
		panic("nn: label count does not match batch size")
	}
	probs := logits.Clone().SoftmaxRows()
	dlogits = probs // reuse: gradient is probs with the label entries shifted
	invN := float32(1.0 / float64(n))
	var total float64
	for i := 0; i < n; i++ {
		y := labels[i]
		if y < 0 || y >= k {
			panic("nn: label out of range")
		}
		p := probs.At(i, y)
		// Clamp to avoid log(0) for confidently wrong predictions.
		if p < 1e-12 {
			p = 1e-12
		}
		total += -math.Log(float64(p))
		row := dlogits.Row(i)
		row[y] -= 1
		for j := range row {
			row[j] *= invN
		}
	}
	return total / float64(n), dlogits
}

// Accuracy returns the fraction of rows of logits whose argmax equals the
// label.
func Accuracy(logits *tensor.Tensor, labels []int) float64 {
	n := logits.Dim(0)
	if n == 0 {
		return 0
	}
	correct := 0
	for i := 0; i < n; i++ {
		if logits.ArgMaxRow(i) == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(n)
}
