// Package nn is a small neural-network framework built on package tensor.
// It provides the three deep-learning architectures evaluated by PRIONN —
// a fully connected network (NN), a 1D convolutional network (1D-CNN), and
// a 2D convolutional network (2D-CNN) — as compositions of layers with
// exact backpropagation, SGD/Adam optimizers, gob snapshots, and the
// warm-start retraining behaviour the paper's online loop depends on
// (models are retrained, not re-initialized, so knowledge persists across
// training events).
package nn

import "prionn/internal/tensor"

// Layer is one differentiable stage of a Sequential model.
//
// Forward consumes the batch produced by the previous layer and caches
// whatever it needs for Backward. Backward consumes the gradient of the
// loss with respect to the layer's output, accumulates gradients into the
// tensors returned by Grads, and returns the gradient with respect to its
// input. A Forward/Backward pair must not be interleaved with another
// pair on the same layer.
type Layer interface {
	// Forward runs the layer on a batch. train toggles train-time
	// behaviour such as dropout.
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	// Backward propagates the upstream gradient and returns the gradient
	// with respect to the layer input.
	Backward(dy *tensor.Tensor) *tensor.Tensor
	// Params returns the trainable tensors (possibly empty).
	Params() []*tensor.Tensor
	// Grads returns the gradient accumulators matching Params.
	Grads() []*tensor.Tensor
	// Name identifies the layer kind for diagnostics and snapshots.
	Name() string
}

// zeroGrads clears every gradient accumulator of a layer stack.
func zeroGrads(layers []Layer) {
	for _, l := range layers {
		for _, g := range l.Grads() {
			g.Zero()
		}
	}
}
