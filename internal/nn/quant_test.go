package nn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"prionn/internal/tensor"
)

// TestQuantizeChannelErrorBound is the per-channel round-trip property
// test: for every channel, dequantizing the int8 weights reproduces the
// float weights to within half a quantization step of that channel's
// scale — the tightest bound round-to-nearest can promise.
func TestQuantizeChannelErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(300)
		w := make([]float32, n)
		mag := float32(math.Exp(rng.Float64()*10 - 5)) // spans ~e^-5..e^5
		for i := range w {
			w[i] = (rng.Float32()*2 - 1) * mag
		}
		q := make([]int8, n)
		scale := quantizeChannel(q, w)
		if scale <= 0 {
			t.Fatalf("trial %d: non-positive scale %v", trial, scale)
		}
		// Half-step bound with a float32 slack factor for the scale
		// division itself.
		bound := scale * 0.5001
		for i := range w {
			deq := float32(q[i]) * scale
			if err := float32(math.Abs(float64(w[i] - deq))); err > bound {
				t.Fatalf("trial %d weight %d: |%v - %v| = %v exceeds scale/2 = %v",
					trial, i, w[i], deq, err, scale/2)
			}
			if q[i] < -127 || q[i] > 127 {
				t.Fatalf("trial %d: quantized weight %d outside symmetric range", trial, q[i])
			}
		}
	}
}

// TestQuantizeChannelZeroChannel pins the degenerate all-zero channel:
// scale falls back to 1 and every weight quantizes to exactly 0.
func TestQuantizeChannelZeroChannel(t *testing.T) {
	w := make([]float32, 16)
	q := make([]int8, 16)
	scale := quantizeChannel(q, w)
	if scale != 1 {
		t.Fatalf("zero channel scale = %v, want 1", scale)
	}
	for i, v := range q {
		if v != 0 {
			t.Fatalf("zero channel quantized weight %d = %d, want 0", i, v)
		}
	}
}

// TestQParamsZeroExact pins the asymmetric scheme's core invariant:
// real 0.0 is exactly representable, so conv zero padding and the
// folded ReLU clamp are exact.
func TestQParamsZeroExact(t *testing.T) {
	data := []float32{-3.7, 0.2, 11.9, 4.4}
	p := calibrateQParams(data)
	if got := p.Dequantize(p.Quantize(0)); got != 0 {
		t.Fatalf("0.0 round-trips to %v", got)
	}
}

// quantTestModel builds a small trained-ish CNN2D (random but fixed
// weights) plus a calibration batch for the structural tests.
func quantTestModel(t *testing.T) (*Sequential, *tensor.Tensor) {
	t.Helper()
	rng := rand.New(rand.NewSource(32))
	arch := ArchConfig{Rows: 18, Cols: 18, Channels: 3, Classes: 10, Width: 0.25}
	m := NewCNN2D(rng, arch)
	calib := tensor.New(6, 3, 18, 18).RandN(rng, 1)
	return m, calib
}

// TestQuantizedModelClassParity checks end-to-end behaviour: on the
// calibration distribution, the quantized model's argmax classes agree
// with the float model's on the overwhelming majority of samples. With
// random (untrained) weights logits are near-tied, so this is a
// smoke-level parity check; the serving-accuracy gate on trained heads
// lives in internal/prionn.
func TestQuantizedModelClassParity(t *testing.T) {
	m, calib := quantTestModel(t)
	qm, err := Quantize(m, calib)
	if err != nil {
		t.Fatalf("Quantize: %v", err)
	}
	rng := rand.New(rand.NewSource(33))
	x := tensor.New(32, 3, 18, 18).RandN(rng, 1)
	want := m.PredictClasses(x)
	got := qm.PredictClasses(x)
	agree := 0
	for i := range want {
		if got[i] == want[i] {
			agree++
		}
	}
	if agree < len(want)*3/4 {
		t.Fatalf("quantized model agrees on only %d/%d random samples", agree, len(want))
	}
}

// TestQuantizedModelDeterministicAcrossWorkers pins bitwise-identical
// quantized logits for every worker count.
func TestQuantizedModelDeterministicAcrossWorkers(t *testing.T) {
	m, calib := quantTestModel(t)
	qm, err := Quantize(m, calib)
	if err != nil {
		t.Fatalf("Quantize: %v", err)
	}
	rng := rand.New(rand.NewSource(34))
	x := tensor.New(8, 3, 18, 18).RandN(rng, 1)
	prev := tensor.SetMaxWorkers(1)
	defer tensor.SetMaxWorkers(prev)
	base := qm.Predict(x)
	for _, workers := range []int{2, 4, 8} {
		tensor.SetMaxWorkers(workers)
		got := qm.Predict(x)
		for i := range base.Data {
			if got.Data[i] != base.Data[i] {
				t.Fatalf("workers=%d: logit %d = %v, want %v (bitwise)", workers, i, got.Data[i], base.Data[i])
			}
		}
	}
}

// TestQModelSaveLoadRoundTrip proves the gob wire format reproduces
// bitwise-identical predictions.
func TestQModelSaveLoadRoundTrip(t *testing.T) {
	m, calib := quantTestModel(t)
	qm, err := Quantize(m, calib)
	if err != nil {
		t.Fatalf("Quantize: %v", err)
	}
	var buf bytes.Buffer
	if err := qm.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := LoadQModel(&buf)
	if err != nil {
		t.Fatalf("LoadQModel: %v", err)
	}
	rng := rand.New(rand.NewSource(35))
	x := tensor.New(4, 3, 18, 18).RandN(rng, 1)
	a, b := qm.Predict(x), loaded.Predict(x)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatalf("logit %d differs after round trip: %v vs %v", i, a.Data[i], b.Data[i])
		}
	}
}

// TestQuantizeAllArchitectures proves the quantizer recognizes the
// layer grammar of all three PRIONN model families.
func TestQuantizeAllArchitectures(t *testing.T) {
	rng := rand.New(rand.NewSource(36))
	arch := ArchConfig{Rows: 16, Cols: 16, Channels: 2, Classes: 8, Width: 0.25}
	build := map[string]*Sequential{
		"nn":     NewFullyConnected(rng, arch),
		"1d-cnn": NewCNN1D(rng, arch),
		"2d-cnn": NewCNN2D(rng, arch),
	}
	for name, m := range build {
		var calib *tensor.Tensor
		if name == "1d-cnn" {
			calib = tensor.New(4, 2, 1, 16*16).RandN(rng, 1)
		} else {
			calib = tensor.New(4, 2, 16, 16).RandN(rng, 1)
		}
		qm, err := Quantize(m, calib)
		if err != nil {
			t.Fatalf("%s: Quantize: %v", name, err)
		}
		if err := qm.Validate(); err != nil {
			t.Fatalf("%s: Validate: %v", name, err)
		}
		got := qm.PredictClasses(calib)
		if len(got) != 4 {
			t.Fatalf("%s: %d predictions for 4 samples", name, len(got))
		}
	}
}

// TestQuantizeRejectsEmptyCalibration pins the error contract.
func TestQuantizeRejectsEmptyCalibration(t *testing.T) {
	m, _ := quantTestModel(t)
	if _, err := Quantize(m, nil); err == nil {
		t.Fatal("Quantize(nil calibration) must fail")
	}
	if _, err := Quantize(m, tensor.New(0, 3, 18, 18)); err == nil {
		t.Fatal("Quantize(empty calibration) must fail")
	}
}
