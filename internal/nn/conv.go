package nn

import (
	"fmt"
	"math/rand"

	"prionn/internal/tensor"
)

// Conv2D is a 2D convolutional layer over [N, C, H, W] batches. Input
// channel count and spatial extent are fixed at construction so the layer
// can validate shapes and report its output size.
type Conv2D struct {
	InC, InH, InW int
	Filters       int
	Spec          tensor.ConvSpec
	W             *tensor.Tensor // [F, C*KH*KW]
	B             *tensor.Tensor // [F]
	dW, dB        *tensor.Tensor
	cols          *tensor.Tensor // shared batch column matrix from the last train-mode Forward
	y, dx         *tensor.Tensor // recycled train-time buffers
}

// NewConv2D returns a Conv2D layer with He-initialized kernels. It panics
// if the spec is invalid for the declared input extent.
func NewConv2D(rng *rand.Rand, inC, inH, inW, filters int, spec tensor.ConvSpec) *Conv2D {
	if err := spec.Validate(inH, inW); err != nil {
		panic(fmt.Sprintf("nn: bad Conv2D spec: %v", err))
	}
	fanIn := inC * spec.KH * spec.KW
	return &Conv2D{
		InC: inC, InH: inH, InW: inW,
		Filters: filters,
		Spec:    spec,
		W:       tensor.New(filters, fanIn).HeInit(rng, fanIn),
		B:       tensor.New(filters),
		dW:      tensor.New(filters, fanIn),
		dB:      tensor.New(filters),
	}
}

// OutDims returns the spatial extent of the layer output.
func (c *Conv2D) OutDims() (oh, ow int) { return c.Spec.OutDims(c.InH, c.InW) }

// Name implements Layer.
func (c *Conv2D) Name() string { return "conv2d" }

// Forward implements Layer.
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 4 {
		x = x.Reshape(x.Dim(0), c.InC, c.InH, c.InW)
	}
	ar := tensor.DefaultArena()
	if !train {
		// Inference outputs escape to the caller; let them come from the
		// arena but do not recycle them here.
		y, _ := tensor.Conv2DForwardArena(ar, x, c.W, c.B, c.InC, c.InH, c.InW, c.Spec, false)
		return y
	}
	// The previous step's output and column matrix are dead once that
	// TrainBatch returned; recycling them makes the batched forward
	// allocation-free at a steady batch shape.
	ar.Put(c.y)
	c.y, c.cols = tensor.Conv2DForwardArena(ar, x, c.W, c.B, c.InC, c.InH, c.InW, c.Spec, true)
	return c.y
}

// Backward implements Layer.
func (c *Conv2D) Backward(dy *tensor.Tensor) *tensor.Tensor {
	if c.cols == nil {
		panic("nn: Conv2D.Backward without a train-mode Forward")
	}
	ar := tensor.DefaultArena()
	ar.Put(c.dx)
	c.dx = tensor.Conv2DBackwardArena(ar, dy, c.W, c.cols, c.dW, c.dB, c.InC, c.InH, c.InW, c.Spec)
	ar.Put(c.cols)
	c.cols = nil
	return c.dx
}

// Params implements Layer.
func (c *Conv2D) Params() []*tensor.Tensor { return []*tensor.Tensor{c.W, c.B} }

// Grads implements Layer.
func (c *Conv2D) Grads() []*tensor.Tensor { return []*tensor.Tensor{c.dW, c.dB} }

// NewConv1D returns a 1D convolutional layer over [N, C, L] sequences,
// implemented as a Conv2D with unit height: kernel 1×k, input C×1×L.
func NewConv1D(rng *rand.Rand, inC, length, filters, k, stride, pad int) *Conv2D {
	return NewConv2D(rng, inC, 1, length, filters,
		tensor.ConvSpec{KH: 1, KW: k, Stride: stride, PadW: pad})
}

// MaxPool2D is a max-pooling layer over [N, C, H, W] batches.
type MaxPool2D struct {
	InC, InH, InW int
	Spec          tensor.ConvSpec
	argmax        []int32
	n             int
}

// NewMaxPool2D returns a max-pooling layer with the given window and
// stride (no padding).
func NewMaxPool2D(inC, inH, inW, window, stride int) *MaxPool2D {
	spec := tensor.ConvSpec{KH: window, KW: window, Stride: stride}
	if err := spec.Validate(inH, inW); err != nil {
		panic(fmt.Sprintf("nn: bad MaxPool2D spec: %v", err))
	}
	return &MaxPool2D{InC: inC, InH: inH, InW: inW, Spec: spec}
}

// OutDims returns the spatial extent of the pooled output.
func (p *MaxPool2D) OutDims() (oh, ow int) { return p.Spec.OutDims(p.InH, p.InW) }

// Name implements Layer.
func (p *MaxPool2D) Name() string { return "maxpool2d" }

// Forward implements Layer.
func (p *MaxPool2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 4 {
		x = x.Reshape(x.Dim(0), p.InC, p.InH, p.InW)
	}
	p.n = x.Dim(0)
	y, argmax := tensor.MaxPool2DForward(x, p.InC, p.InH, p.InW, p.Spec)
	p.argmax = argmax
	return y
}

// Backward implements Layer.
func (p *MaxPool2D) Backward(dy *tensor.Tensor) *tensor.Tensor {
	return tensor.MaxPool2DBackward(dy, p.argmax, p.n, p.InC, p.InH, p.InW)
}

// Params implements Layer.
func (p *MaxPool2D) Params() []*tensor.Tensor { return nil }

// Grads implements Layer.
func (p *MaxPool2D) Grads() []*tensor.Tensor { return nil }
