package nn

import (
	"encoding/gob"
	"fmt"
	"io"
	"math"
	"sync"

	"prionn/internal/tensor"
)

// Post-training int8 quantization of a trained Sequential.
//
// Scheme. Weights are quantized per output channel with symmetric int8
// scales (one scale per conv filter / dense output unit, range
// [-127, 127]); activations are quantized per tensor with an
// asymmetric uint8 scale and zero point calibrated from the min/max
// observed on a held-out calibration batch. The zero point makes real
// 0.0 exactly representable, which keeps conv padding and the folded
// ReLU exact. Between layers activations stay uint8; each layer
// accumulates in int32 via the tensor package's int8 GEMM and
// requantizes its output with the calibrated parameters of the NEXT
// activation, so the only dequantization to float happens at the
// logits.
//
// The int32 → real mapping uses the standard zero-point correction:
// with x_q = x/s_x + z_x and w_q = w/s_w[ch],
//
//	Σ_p w·x = s_x·s_w[ch]·(Σ_p w_q·x_q − z_x·Σ_p w_q)
//
// where Σ_p w_q (WSum) is precomputed per channel. The correction is
// exact integer arithmetic; the surrounding scale multiplications are
// elementwise float32 in a fixed expression order, so requantization is
// deterministic for any worker count and identical across the asm and
// pure-Go GEMM kernels (whose int32 accumulators are bitwise equal).
//
// A quantized model is immutable and its forwards are stateless —
// unlike Sequential, whose layers cache per-call state — so one QModel
// may serve concurrent callers without cloning.

// QParams is a per-tensor asymmetric uint8 quantization: real = (q − Zero)·Scale.
type QParams struct {
	Scale float32
	Zero  uint8
}

// roundI32 is int32(math.Round(v)) for the magnitudes quantization
// produces: round half away from zero via biased truncation. For any v
// whose significand fits float64 exactly after adding ±0.5 (always true
// here — inputs are float32-valued and far below 2^52), the result is
// bit-identical to the library routine, which is pure-Go bit twiddling
// and dominates the requantization profile otherwise.
func roundI32(v float64) int32 {
	if v >= 0 {
		return int32(v + 0.5)
	}
	return int32(v - 0.5)
}

// Quantize maps a real value to its uint8 representation, rounding to
// nearest and saturating at the type bounds.
func (p QParams) Quantize(x float32) uint8 {
	v := roundI32(float64(x/p.Scale)) + int32(p.Zero)
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return uint8(v)
}

// Dequantize maps a uint8 representation back to its real value.
func (p QParams) Dequantize(q uint8) float32 {
	return (float32(q) - float32(p.Zero)) * p.Scale
}

// calibShrinkFactors are the candidate range-clip factors the MSE
// search in calibrateQParams sweeps. Factor 1 is pure min/max; smaller
// factors shrink the range (tightening the quantization step for
// typical values at the cost of saturating the tail). The factor with
// the least squared reconstruction error on the calibration data wins —
// a deterministic, data-driven version of percentile clipping.
var calibShrinkFactors = []float32{1, 0.95, 0.9, 0.85, 0.8, 0.7, 0.6, 0.5}

// calibrateQParams derives activation quantization parameters from the
// observed value range, widened to include 0 so the zero point is a
// valid uint8 and real 0.0 round-trips exactly, with the range clip
// chosen by MSE search (see calibShrinkFactors).
func calibrateQParams(data []float32) QParams {
	var lo, hi float32
	for _, v := range data {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	mk := func(lo, hi float32) QParams {
		scale := (hi - lo) / 255
		if scale <= 0 {
			scale = 1
		}
		zp := int32(math.Round(float64(-lo / scale)))
		if zp < 0 {
			zp = 0
		}
		if zp > 255 {
			zp = 255
		}
		return QParams{Scale: scale, Zero: uint8(zp)}
	}
	best := mk(lo, hi)
	if len(data) == 0 {
		return best
	}
	bestErr := math.Inf(1)
	for _, f := range calibShrinkFactors {
		p := mk(lo*f, hi*f)
		var sse float64
		for _, v := range data {
			d := float64(p.Dequantize(p.Quantize(v)) - v)
			sse += d * d
		}
		if sse < bestErr {
			best, bestErr = p, sse
		}
	}
	return best
}

// quantizeChannel quantizes one output channel's weights symmetrically
// into [-127, 127] and returns the per-channel scale. The dequantized
// error per weight is at most scale/2 (the rounding half-step); the
// property test pins this bound.
func quantizeChannel(dst []int8, w []float32) (scale float32) {
	var maxAbs float32
	for _, v := range w {
		a := v
		if a < 0 {
			a = -a
		}
		if a > maxAbs {
			maxAbs = a
		}
	}
	scale = maxAbs / 127
	if scale == 0 { //prionnvet:ignore float-eq -- exact zero (an all-zero weight channel) is the only degenerate input; any tolerance would misquantize real near-zero channels
		scale = 1
	}
	for i, v := range w {
		q := int32(math.Round(float64(v / scale)))
		if q < -127 {
			q = -127
		}
		if q > 127 {
			q = 127
		}
		dst[i] = int8(q)
	}
	return scale
}

// requantU8 maps one real-valued accumulator result to the next
// activation's uint8 domain. With relu the low clamp sits at the zero
// point — the quantized image of real 0 — which folds the ReLU into
// requantization exactly.
func requantU8(real float32, p QParams, relu bool) uint8 {
	v := roundI32(float64(real/p.Scale)) + int32(p.Zero)
	lo := int32(0)
	if relu {
		lo = int32(p.Zero)
	}
	if v < lo {
		v = lo
	}
	if v > 255 {
		return 255
	}
	return uint8(v)
}

// QOp is one stage of a quantized forward pass: uint8 activations in,
// uint8 activations out, batch size n. Implementations are immutable
// after construction and allocate their outputs per call, so a QOp is
// safe for concurrent use.
type QOp interface {
	QForward(x []uint8, n int) []uint8
}

// qScratch holds a forward pass's internal column and accumulator
// buffers. They never escape a single QForward call, every byte is
// overwritten before it is read (im2col fills the whole column matrix,
// the GEMM writes every destination cell), and conv scratch at serving
// batch sizes runs to megabytes — so the buffers are pooled unzeroed
// rather than allocated per call. The pool lives at package level,
// keeping QModel itself stateless and safe to share across goroutines.
type qScratch struct {
	u8  []uint8
	i32 []int32
}

var qScratchPool = sync.Pool{New: func() any { return new(qScratch) }}

// getQScratch returns a scratch pair with at least the requested
// lengths. Contents are unspecified.
func getQScratch(u8n, i32n int) *qScratch {
	s := qScratchPool.Get().(*qScratch)
	if cap(s.u8) < u8n {
		s.u8 = make([]uint8, u8n)
	}
	if cap(s.i32) < i32n {
		s.i32 = make([]int32, i32n)
	}
	s.u8, s.i32 = s.u8[:u8n], s.i32[:i32n]
	return s
}

// QConv2D is the quantized twin of Conv2D (with an optionally folded
// following ReLU). Weights are [Filters, InC*KH*KW] row-major int8.
type QConv2D struct {
	InC, InH, InW int
	Filters       int
	Spec          tensor.ConvSpec
	W             []int8
	WScale        []float32 // per-filter symmetric weight scale
	WSum          []int32   // per-filter Σ w_q, the zero-point correction term
	Bias          []float32
	InQ, OutQ     QParams
	Relu          bool

	// packedW is W pre-packed into the int8 GEMM's panel layout, built
	// once at quantization (or load) time because the weights never
	// change afterwards. Unexported, so gob skips it; LoadQModel
	// rebuilds it after decoding.
	packedW *tensor.PackedInt8A
}

// prepack builds the frozen GEMM panels from W. Must run after the
// weights are final (they are written once, at construction).
func (c *QConv2D) prepack() {
	colRows := c.InC * c.Spec.KH * c.Spec.KW
	c.packedW = tensor.PackInt8A(c.W, colRows, 1, c.Filters, colRows)
}

// gemm runs the layer GEMM acc[F, N·OH·OW] = W · cols, through the
// pre-packed panels when available.
func (c *QConv2D) gemm(acc []int32, cols []uint8, n, colW, colRows int) {
	if c.packedW != nil {
		tensor.GemmInt8PackedA(acc, n*colW, n*colW, c.packedW, cols, n*colW, 1)
		return
	}
	tensor.GemmInt8(acc, n*colW, c.Filters, n*colW, colRows, c.W, colRows, 1, cols, n*colW, 1)
}

// QForward implements QOp: u8 im2col (padding with the input zero
// point), one int8 GEMM for the whole batch, then a sample-parallel
// requantizing scatter from the [F, N*OH*OW] accumulator layout into
// [N, F, OH, OW] — the quantized mirror of Conv2DForwardArena.
func (c *QConv2D) QForward(x []uint8, n int) []uint8 {
	oh, ow := c.Spec.OutDims(c.InH, c.InW)
	colW := oh * ow
	colRows := c.InC * c.Spec.KH * c.Spec.KW
	sc := getQScratch(colRows*n*colW, c.Filters*n*colW)
	cols, acc := sc.u8, sc.i32
	tensor.Im2ColBatchU8(cols, x, n, c.InC, c.InH, c.InW, c.Spec, c.InQ.Zero)
	c.gemm(acc, cols, n, colW, colRows)
	out := make([]uint8, n*c.Filters*colW)
	zx := int32(c.InQ.Zero)
	tensor.ParallelForMin(n, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			for f := 0; f < c.Filters; f++ {
				s := c.InQ.Scale * c.WScale[f]
				corr := zx * c.WSum[f]
				bias := c.Bias[f]
				src := acc[f*n*colW+i*colW : f*n*colW+(i+1)*colW]
				dst := out[(i*c.Filters+f)*colW : (i*c.Filters+f+1)*colW]
				for j, a := range src {
					dst[j] = requantU8(s*float32(a-corr)+bias, c.OutQ, c.Relu)
				}
			}
		}
	})
	qScratchPool.Put(sc)
	return out
}

// realForward computes the layer's real-valued pre-activation outputs
// in the float layout [N, F, OH, OW] — the dequantized view of the
// accumulator before requantization. Quantize uses it to measure each
// filter's mean quantization-induced drift on the calibration batch
// (bias correction); the serving path never calls it.
func (c *QConv2D) realForward(x []uint8, n int) []float32 {
	oh, ow := c.Spec.OutDims(c.InH, c.InW)
	colW := oh * ow
	colRows := c.InC * c.Spec.KH * c.Spec.KW
	sc := getQScratch(colRows*n*colW, c.Filters*n*colW)
	cols, acc := sc.u8, sc.i32
	tensor.Im2ColBatchU8(cols, x, n, c.InC, c.InH, c.InW, c.Spec, c.InQ.Zero)
	c.gemm(acc, cols, n, colW, colRows)
	out := make([]float32, n*c.Filters*colW)
	zx := int32(c.InQ.Zero)
	for f := 0; f < c.Filters; f++ {
		s := c.InQ.Scale * c.WScale[f]
		corr := zx * c.WSum[f]
		bias := c.Bias[f]
		for i := 0; i < n; i++ {
			src := acc[f*n*colW+i*colW : f*n*colW+(i+1)*colW]
			dst := out[(i*c.Filters+f)*colW : (i*c.Filters+f+1)*colW]
			for j, a := range src {
				dst[j] = s*float32(a-corr) + bias
			}
		}
	}
	qScratchPool.Put(sc)
	return out
}

// QMaxPool2D is the quantized twin of MaxPool2D. Max pooling commutes
// with (monotonic) quantization, so it runs directly on uint8 and the
// activation parameters pass through unchanged.
type QMaxPool2D struct {
	InC, InH, InW int
	Spec          tensor.ConvSpec
}

// QForward implements QOp.
func (p *QMaxPool2D) QForward(x []uint8, n int) []uint8 {
	oh, ow := p.Spec.OutDims(p.InH, p.InW)
	out := make([]uint8, n*p.InC*oh*ow)
	tensor.MaxPool2DForwardU8(out, x, n, p.InC, p.InH, p.InW, p.Spec)
	return out
}

// QDense is the quantized twin of Dense (with an optionally folded
// following ReLU). Weights are stored output-major [Out, In] — the
// transpose of Dense's [In, Out] — so each output unit's row is the
// contiguous per-channel GEMM operand.
type QDense struct {
	In, Out   int
	W         []int8
	WScale    []float32
	WSum      []int32
	Bias      []float32
	InQ, OutQ QParams
	Relu      bool

	packedW *tensor.PackedInt8A // see QConv2D.packedW
}

// prepack builds the frozen GEMM panels from W (see QConv2D.prepack).
func (d *QDense) prepack() {
	d.packedW = tensor.PackInt8A(d.W, d.In, 1, d.Out, d.In)
}

// matmul runs the head GEMM transposed — yT[out, N] = W[Out,In] ·
// xᵀ[In, N], with xᵀ expressed as a strided view of the row-major
// batch — so the weight matrix is operand A regardless of batch size.
func (d *QDense) matmul(x []uint8, n int) []int32 {
	yT := make([]int32, d.Out*n)
	if d.packedW != nil {
		tensor.GemmInt8PackedA(yT, n, n, d.packedW, x, 1, d.In)
	} else {
		tensor.GemmInt8(yT, n, d.Out, n, d.In, d.W, d.In, 1, x, 1, d.In)
	}
	return yT
}

// QForward implements QOp (hidden layers: requantize to uint8).
func (d *QDense) QForward(x []uint8, n int) []uint8 {
	yT := d.matmul(x, n)
	out := make([]uint8, n*d.Out)
	zx := int32(d.InQ.Zero)
	for o := 0; o < d.Out; o++ {
		s := d.InQ.Scale * d.WScale[o]
		corr := zx * d.WSum[o]
		bias := d.Bias[o]
		row := yT[o*n : (o+1)*n]
		for j, a := range row {
			out[j*d.Out+o] = requantU8(s*float32(a-corr)+bias, d.OutQ, d.Relu)
		}
	}
	return out
}

// realForward is QConv2D.realForward's dense twin: real-valued
// pre-activation outputs in the float layout [N, Out].
func (d *QDense) realForward(x []uint8, n int) []float32 {
	yT := d.matmul(x, n)
	out := make([]float32, n*d.Out)
	zx := int32(d.InQ.Zero)
	for o := 0; o < d.Out; o++ {
		s := d.InQ.Scale * d.WScale[o]
		corr := zx * d.WSum[o]
		bias := d.Bias[o]
		row := yT[o*n : (o+1)*n]
		for j, a := range row {
			out[j*d.Out+o] = s*float32(a-corr) + bias
		}
	}
	return out
}

// forwardLogits is the head-layer path: dequantize straight to float32
// logits, skipping output requantization entirely.
func (d *QDense) forwardLogits(x []uint8, n int) *tensor.Tensor {
	yT := d.matmul(x, n)
	logits := tensor.New(n, d.Out)
	zx := int32(d.InQ.Zero)
	for o := 0; o < d.Out; o++ {
		s := d.InQ.Scale * d.WScale[o]
		corr := zx * d.WSum[o]
		bias := d.Bias[o]
		row := yT[o*n : (o+1)*n]
		for j, a := range row {
			logits.Data[j*d.Out+o] = s*float32(a-corr) + bias
		}
	}
	return logits
}

// QModel is a quantized inference-only model: an input quantization, a
// chain of uint8 ops, and a float32-logits head. It is immutable and
// safe for concurrent use (see the package comment on statelessness).
type QModel struct {
	InQ  QParams
	Ops  []QOp
	Head *QDense
}

func init() {
	// The op chain is serialized through a gob interface slice; register
	// every concrete op type once.
	gob.Register(&QConv2D{})
	gob.Register(&QMaxPool2D{})
	gob.Register(&QDense{})
}

// Predict quantizes the float input batch and returns the float32
// logits, matching Sequential.Predict's shape contract.
func (m *QModel) Predict(x *tensor.Tensor) *tensor.Tensor {
	n := x.Dim(0)
	q := make([]uint8, x.Len())
	for i, v := range x.Data {
		q[i] = m.InQ.Quantize(v)
	}
	for _, op := range m.Ops {
		q = op.QForward(q, n)
	}
	return m.Head.forwardLogits(q, n)
}

// PredictClasses returns the argmax class per sample.
func (m *QModel) PredictClasses(x *tensor.Tensor) []int {
	logits := m.Predict(x)
	out := make([]int, logits.Dim(0))
	for i := range out {
		out[i] = logits.ArgMaxRow(i)
	}
	return out
}

// Save writes the quantized model to w with gob.
func (m *QModel) Save(w io.Writer) error {
	return gob.NewEncoder(w).Encode(m)
}

// LoadQModel restores a quantized model saved by Save and validates its
// internal shape consistency, so a decoded-but-nonsensical payload is
// rejected here instead of panicking inside a forward pass.
func LoadQModel(r io.Reader) (*QModel, error) {
	var m QModel
	if err := gob.NewDecoder(r).Decode(&m); err != nil {
		return nil, err
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	// The packed GEMM panels are derived state gob does not carry;
	// rebuild them now that shapes are known-consistent.
	for _, op := range m.Ops {
		switch l := op.(type) {
		case *QConv2D:
			l.prepack()
		case *QDense:
			l.prepack()
		}
	}
	m.Head.prepack()
	return &m, nil
}

// Validate checks structural invariants: every op's weight and scale
// slices match its declared geometry.
func (m *QModel) Validate() error {
	if m.Head == nil {
		return fmt.Errorf("nn: quantized model has no head layer")
	}
	check := func(op QOp) error {
		switch l := op.(type) {
		case *QConv2D:
			fanIn := l.InC * l.Spec.KH * l.Spec.KW
			if l.Filters <= 0 || fanIn <= 0 {
				return fmt.Errorf("nn: quantized conv has empty geometry")
			}
			if err := l.Spec.Validate(l.InH, l.InW); err != nil {
				return err
			}
			if len(l.W) != l.Filters*fanIn || len(l.WScale) != l.Filters ||
				len(l.WSum) != l.Filters || len(l.Bias) != l.Filters {
				return fmt.Errorf("nn: quantized conv weight shapes inconsistent")
			}
			if l.OutQ.Scale <= 0 || l.InQ.Scale <= 0 {
				return fmt.Errorf("nn: quantized conv has non-positive activation scale")
			}
		case *QMaxPool2D:
			if err := l.Spec.Validate(l.InH, l.InW); err != nil {
				return err
			}
			if l.InC <= 0 {
				return fmt.Errorf("nn: quantized pool has empty geometry")
			}
		case *QDense:
			if l.In <= 0 || l.Out <= 0 {
				return fmt.Errorf("nn: quantized dense has empty geometry")
			}
			if len(l.W) != l.Out*l.In || len(l.WScale) != l.Out ||
				len(l.WSum) != l.Out || len(l.Bias) != l.Out {
				return fmt.Errorf("nn: quantized dense weight shapes inconsistent")
			}
			if l.InQ.Scale <= 0 {
				return fmt.Errorf("nn: quantized dense has non-positive activation scale")
			}
		default:
			return fmt.Errorf("nn: unknown quantized op %T", op)
		}
		return nil
	}
	for _, op := range m.Ops {
		if err := check(op); err != nil {
			return err
		}
	}
	if err := check(m.Head); err != nil {
		return err
	}
	if m.InQ.Scale <= 0 {
		return fmt.Errorf("nn: quantized model has non-positive input scale")
	}
	return nil
}

// quantizeConv builds the QConv2D for a float Conv2D.
func quantizeConv(l *Conv2D, inQ, outQ QParams, relu bool) *QConv2D {
	fanIn := l.W.Shape[1]
	q := &QConv2D{
		InC: l.InC, InH: l.InH, InW: l.InW,
		Filters: l.Filters,
		Spec:    l.Spec,
		W:       make([]int8, l.Filters*fanIn),
		WScale:  make([]float32, l.Filters),
		WSum:    make([]int32, l.Filters),
		Bias:    append([]float32(nil), l.B.Data...),
		InQ:     inQ, OutQ: outQ,
		Relu: relu,
	}
	for f := 0; f < l.Filters; f++ {
		row := q.W[f*fanIn : (f+1)*fanIn]
		q.WScale[f] = quantizeChannel(row, l.W.Data[f*fanIn:(f+1)*fanIn])
		var sum int32
		for _, v := range row {
			sum += int32(v)
		}
		q.WSum[f] = sum
	}
	q.prepack()
	return q
}

// quantizeDense builds the QDense for a float Dense, transposing the
// weights to output-major layout.
func quantizeDense(l *Dense, inQ, outQ QParams, relu bool) *QDense {
	q := &QDense{
		In: l.In, Out: l.Out,
		W:      make([]int8, l.Out*l.In),
		WScale: make([]float32, l.Out),
		WSum:   make([]int32, l.Out),
		Bias:   append([]float32(nil), l.B.Data...),
		InQ:    inQ, OutQ: outQ,
		Relu: relu,
	}
	col := make([]float32, l.In)
	for o := 0; o < l.Out; o++ {
		for i := 0; i < l.In; i++ {
			col[i] = l.W.Data[i*l.Out+o]
		}
		row := q.W[o*l.In : (o+1)*l.In]
		q.WScale[o] = quantizeChannel(row, col)
		var sum int32
		for _, v := range row {
			sum += int32(v)
		}
		q.WSum[o] = sum
	}
	q.prepack()
	return q
}

// correctBias folds each channel's mean calibration drift into its
// bias: want and got are the float and dequantized-quantized
// pre-activation outputs in [N, chans, chanW] layout (chanW = 1 for
// dense). Per-tensor activation rounding and range clipping accumulate
// a small systematic per-channel offset across layers; measuring it on
// the calibration batch and subtracting it from the bias removes the
// drift's mean component without touching the weights.
func correctBias(bias []float32, n, chanW int, want, got []float32) {
	chans := len(bias)
	for f := 0; f < chans; f++ {
		var sum float64
		for i := 0; i < n; i++ {
			base := (i*chans + f) * chanW
			for j := 0; j < chanW; j++ {
				sum += float64(want[base+j] - got[base+j])
			}
		}
		bias[f] += float32(sum / float64(n*chanW))
	}
}

// Quantize builds the int8 inference twin of a trained Sequential using
// calib — a batch of already-mapped model inputs — to calibrate every
// activation scale and correct every channel bias. It recognizes the
// layer grammar of the three PRIONN architectures (Conv2D/Dense each
// optionally followed by ReLU, plus MaxPool2D, Flatten, and Dropout)
// and returns an error for anything else.
//
// The walk runs the float model and the growing quantized chain side by
// side over the calibration batch: each new quantized layer's bias is
// corrected against the float layer's pre-activation output (see
// correctBias) before its output quantization is calibrated on the
// float activations. The source model's parameters are read, never
// written; its per-layer inference caches are touched by the
// calibration forwards, so Quantize inherits the model's
// single-goroutine confinement.
func Quantize(m *Sequential, calib *tensor.Tensor) (*QModel, error) {
	if calib == nil || calib.Dim(0) == 0 {
		return nil, fmt.Errorf("nn: quantization requires a non-empty calibration batch")
	}
	qm := &QModel{InQ: calibrateQParams(calib.Data)}
	curQ := qm.InQ
	x := calib
	n := calib.Dim(0)
	// qx is the calibration batch as the quantized chain sees it — the
	// reference for per-layer drift measurement.
	qx := make([]uint8, calib.Len())
	for i, v := range calib.Data {
		qx[i] = qm.InQ.Quantize(v)
	}
	layers := m.Layers
	for i := 0; i < len(layers); i++ {
		switch l := layers[i].(type) {
		case *Flatten, *Dropout:
			// Identity at inference over the flat row-major buffer: the
			// quantized chain tracks geometry per op, so neither needs a
			// quantized counterpart.
			x = layers[i].Forward(x, false)
		case *MaxPool2D:
			x = l.Forward(x, false)
			op := &QMaxPool2D{InC: l.InC, InH: l.InH, InW: l.InW, Spec: l.Spec}
			qm.Ops = append(qm.Ops, op)
			qx = op.QForward(qx, n)
		case *Conv2D:
			y := l.Forward(x, false)
			var r *ReLU
			if i+1 < len(layers) {
				if rl, ok := layers[i+1].(*ReLU); ok {
					r = rl
					i++
				}
			}
			q := quantizeConv(l, curQ, QParams{}, r != nil)
			oh, ow := l.Spec.OutDims(l.InH, l.InW)
			correctBias(q.Bias, n, oh*ow, y.Data, q.realForward(qx, n))
			if r != nil {
				y = r.Forward(y, false)
			}
			q.OutQ = calibrateQParams(y.Data)
			qm.Ops = append(qm.Ops, q)
			qx = q.QForward(qx, n)
			curQ = q.OutQ
			x = y
		case *Dense:
			if i == len(layers)-1 {
				// The logits head: dequantized output, no requantization.
				q := quantizeDense(l, curQ, QParams{}, false)
				correctBias(q.Bias, n, 1, l.Forward(x, false).Data, q.realForward(qx, n))
				qm.Head = q
				return qm, nil
			}
			y := l.Forward(x, false)
			var r *ReLU
			if i+1 < len(layers) {
				if rl, ok := layers[i+1].(*ReLU); ok {
					r = rl
					i++
				}
			}
			q := quantizeDense(l, curQ, QParams{}, r != nil)
			correctBias(q.Bias, n, 1, y.Data, q.realForward(qx, n))
			if r != nil {
				y = r.Forward(y, false)
			}
			q.OutQ = calibrateQParams(y.Data)
			qm.Ops = append(qm.Ops, q)
			qx = q.QForward(qx, n)
			curQ = q.OutQ
			x = y
		default:
			return nil, fmt.Errorf("nn: cannot quantize layer %q", layers[i].Name())
		}
	}
	return nil, fmt.Errorf("nn: model does not end in a Dense logits head")
}
