package nn

import (
	"math/rand"
	"testing"

	"prionn/internal/tensor"
)

// TestDenseTrainStepZeroAlloc proves the dense forward+backward training
// path performs no steady-state heap allocation once its arena-recycled
// buffers are warm.
func TestDenseTrainStepZeroAlloc(t *testing.T) {
	prev := tensor.SetMaxWorkers(1)
	defer tensor.SetMaxWorkers(prev)
	rng := rand.New(rand.NewSource(1))
	d := NewDense(rng, 64, 32)
	x := tensor.New(8, 64).RandN(rng, 1)
	dy := tensor.New(8, 32).RandN(rng, 1)
	step := func() {
		d.Forward(x, true)
		d.Backward(dy)
	}
	step() // warm the arena
	if avg := testing.AllocsPerRun(20, step); avg != 0 {
		t.Fatalf("dense train step allocates %.1f times per run in steady state", avg)
	}
}

// TestConvLayerTrainStepZeroAlloc proves the conv layer's batched
// forward+backward cycle is allocation-free in steady state.
func TestConvLayerTrainStepZeroAlloc(t *testing.T) {
	prev := tensor.SetMaxWorkers(1)
	defer tensor.SetMaxWorkers(prev)
	rng := rand.New(rand.NewSource(2))
	spec := tensor.ConvSpec{KH: 3, KW: 3, Stride: 1, PadH: 1, PadW: 1}
	c := NewConv2D(rng, 3, 16, 16, 8, spec)
	x := tensor.New(4, 3, 16, 16).RandN(rng, 1)
	oh, ow := c.OutDims()
	dy := tensor.New(4, 8, oh, ow).RandN(rng, 1)
	step := func() {
		c.Forward(x, true)
		c.Backward(dy)
	}
	step() // warm the arena
	if avg := testing.AllocsPerRun(20, step); avg != 0 {
		t.Fatalf("conv train step allocates %.1f times per run in steady state", avg)
	}
}

// TestReLUTrainStepZeroAlloc covers the recycled activation buffers.
func TestReLUTrainStepZeroAlloc(t *testing.T) {
	prev := tensor.SetMaxWorkers(1)
	defer tensor.SetMaxWorkers(prev)
	rng := rand.New(rand.NewSource(3))
	r := NewReLU()
	x := tensor.New(8, 128).RandN(rng, 1)
	dy := tensor.New(8, 128).RandN(rng, 1)
	step := func() {
		r.Forward(x, true)
		r.Backward(dy)
	}
	step()
	if avg := testing.AllocsPerRun(20, step); avg != 0 {
		t.Fatalf("relu train step allocates %.1f times per run in steady state", avg)
	}
}
