package nn

import (
	"encoding/gob"
	"fmt"
	"io"
	"math"

	"prionn/internal/tensor"
)

// Optimizer updates parameters in place from accumulated gradients.
// Implementations keep per-parameter state keyed by tensor identity, so
// the same optimizer instance can be reused across the warm-start
// retraining events of PRIONN's online loop.
type Optimizer interface {
	// Step applies one update. params[i] is updated from grads[i].
	Step(params, grads []*tensor.Tensor)
}

// SGD is stochastic gradient descent with classical momentum and optional
// gradient clipping.
type SGD struct {
	LR       float64 // learning rate
	Momentum float64 // momentum coefficient in [0, 1)
	Clip     float64 // max L2 norm per gradient tensor; 0 disables
	velocity map[*tensor.Tensor]*tensor.Tensor
}

// NewSGD returns an SGD optimizer.
func NewSGD(lr, momentum float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, velocity: make(map[*tensor.Tensor]*tensor.Tensor)}
}

// Step implements Optimizer.
func (s *SGD) Step(params, grads []*tensor.Tensor) {
	for i, p := range params {
		g := grads[i]
		if s.Clip > 0 {
			g.ClipNorm(s.Clip)
		}
		if s.Momentum > 0 {
			v, ok := s.velocity[p]
			if !ok {
				v = tensor.New(g.Shape...)
				s.velocity[p] = v
			}
			v.Scale(float32(s.Momentum)).AddScaled(-float32(s.LR), g)
			p.Add(v)
		} else {
			p.AddScaled(-float32(s.LR), g)
		}
	}
}

// Adam implements the Adam optimizer (Kingma & Ba) with bias correction
// and optional gradient clipping.
type Adam struct {
	LR     float64
	Beta1  float64
	Beta2  float64
	Eps    float64
	Clip   float64
	states map[*tensor.Tensor]*adamState
	t      int
}

type adamState struct {
	m, v *tensor.Tensor
}

// NewAdam returns an Adam optimizer with the customary defaults
// beta1=0.9, beta2=0.999, eps=1e-8.
func NewAdam(lr float64) *Adam {
	return &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		states: make(map[*tensor.Tensor]*adamState),
	}
}

// Step implements Optimizer.
func (a *Adam) Step(params, grads []*tensor.Tensor) {
	a.t++
	c1 := 1 - math.Pow(a.Beta1, float64(a.t))
	c2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for i, p := range params {
		g := grads[i]
		if a.Clip > 0 {
			g.ClipNorm(a.Clip)
		}
		st, ok := a.states[p]
		if !ok {
			st = &adamState{m: tensor.New(g.Shape...), v: tensor.New(g.Shape...)}
			a.states[p] = st
		}
		b1, b2 := float32(a.Beta1), float32(a.Beta2)
		for j, gv := range g.Data {
			st.m.Data[j] = b1*st.m.Data[j] + (1-b1)*gv
			st.v.Data[j] = b2*st.v.Data[j] + (1-b2)*gv*gv
			mh := float64(st.m.Data[j]) / c1
			vh := float64(st.v.Data[j]) / c2
			p.Data[j] -= float32(a.LR * mh / (math.Sqrt(vh) + a.Eps))
		}
	}
}

// Reset clears all accumulated optimizer state (momentum/moment
// estimates). Used by the cold-start ablation; the paper's warm-start
// loop never calls it.
func (a *Adam) Reset() {
	a.states = make(map[*tensor.Tensor]*adamState)
	a.t = 0
}

// StatefulOptimizer is an optimizer whose accumulated state can be
// checkpointed. Both methods take the parameter list the state is keyed
// by (in Sequential.Params order), because the in-memory state maps are
// keyed by tensor identity, which does not survive a process restart.
type StatefulOptimizer interface {
	Optimizer
	SaveState(params []*tensor.Tensor, w io.Writer) error
	LoadState(params []*tensor.Tensor, r io.Reader) error
}

// adamSnapshot is the gob wire format for Adam state. Moments are stored
// in parameter order; Present marks parameters that have been stepped at
// least once (all of them, in practice, after the first Step).
type adamSnapshot struct {
	T       int
	Present []bool
	M, V    [][]float32
}

// SaveState writes the Adam moment estimates and step counter for the
// given parameters. Resuming an interrupted training event bitwise-
// identically requires this state: restarting Adam from zero moments
// takes different steps than the uninterrupted run.
func (a *Adam) SaveState(params []*tensor.Tensor, w io.Writer) error {
	s := adamSnapshot{T: a.t}
	for _, p := range params {
		st, ok := a.states[p]
		s.Present = append(s.Present, ok)
		if ok {
			s.M = append(s.M, st.m.Data)
			s.V = append(s.V, st.v.Data)
		} else {
			s.M = append(s.M, nil)
			s.V = append(s.V, nil)
		}
	}
	return gob.NewEncoder(w).Encode(s)
}

// LoadState restores state saved by SaveState, re-keying it onto params.
func (a *Adam) LoadState(params []*tensor.Tensor, r io.Reader) error {
	var s adamSnapshot
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return err
	}
	if len(s.Present) != len(params) {
		return fmt.Errorf("nn: optimizer snapshot has %d parameter states, model has %d", len(s.Present), len(params))
	}
	a.Reset()
	a.t = s.T
	for i, p := range params {
		if !s.Present[i] {
			continue
		}
		if len(s.M[i]) != p.Len() || len(s.V[i]) != p.Len() {
			return fmt.Errorf("nn: optimizer state %d size mismatch: snapshot %d vs param %d", i, len(s.M[i]), p.Len())
		}
		st := &adamState{m: tensor.New(p.Shape...), v: tensor.New(p.Shape...)}
		copy(st.m.Data, s.M[i])
		copy(st.v.Data, s.V[i])
		a.states[p] = st
	}
	return nil
}
