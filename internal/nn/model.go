package nn

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"io"
	"math/rand"

	"prionn/internal/tensor"
)

// Sequential is a feed-forward stack of layers trained with softmax
// cross-entropy. It is the model container for all three PRIONN deep
// learning architectures.
type Sequential struct {
	Layers []Layer
}

// NewSequential builds a model from the given layers.
func NewSequential(layers ...Layer) *Sequential {
	return &Sequential{Layers: layers}
}

// Forward runs the full stack and returns the logits.
func (m *Sequential) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	for _, l := range m.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward propagates a logits gradient through the stack, accumulating
// parameter gradients.
func (m *Sequential) Backward(dy *tensor.Tensor) {
	for i := len(m.Layers) - 1; i >= 0; i-- {
		dy = m.Layers[i].Backward(dy)
	}
}

// TrainBatch performs one optimization step on a batch (inputs x, integer
// labels) and returns the batch loss.
func (m *Sequential) TrainBatch(x *tensor.Tensor, labels []int, opt Optimizer) float64 {
	zeroGrads(m.Layers)
	logits := m.Forward(x, true)
	loss, dlogits := SoftmaxCrossEntropy(logits, labels)
	m.Backward(dlogits)
	params, grads := m.collect()
	opt.Step(params, grads)
	return loss
}

func (m *Sequential) collect() (params, grads []*tensor.Tensor) {
	for _, l := range m.Layers {
		params = append(params, l.Params()...)
		grads = append(grads, l.Grads()...)
	}
	return params, grads
}

// Params returns the trainable parameter tensors in stable (layer)
// order — the order Save/Load and StatefulOptimizer snapshots use.
func (m *Sequential) Params() []*tensor.Tensor {
	params, _ := m.collect()
	return params
}

// FitOptions configures Sequential.Fit / FitCtx.
type FitOptions struct {
	Epochs    int
	BatchSize int
	Shuffle   *rand.Rand // nil disables shuffling
	// Verbose receives one line per epoch when non-nil.
	Verbose func(epoch int, loss float64)
	// StartEpoch resumes a previously interrupted fit: epochs before it
	// replay only their shuffle draws (reproducing both the permutation
	// and the RNG state of the uninterrupted run, since the draw
	// sequence depends only on n and the epoch count) and skip all
	// gradient work. Parameters and optimizer state for the completed
	// epochs must have been restored by the caller.
	StartEpoch int
	// AfterEpoch, when non-nil, runs after every completed epoch —
	// the checkpoint hook. A non-nil return aborts the fit with that
	// error; the epochs already run remain applied.
	AfterEpoch func(epoch int, loss float64) error
}

// Fit trains the model on a dataset of stacked samples x [N, ...] with
// labels, iterating epochs × minibatches, and returns the final epoch's
// mean loss. It is FitCtx without cancellation; any AfterEpoch error is
// dropped, so checkpointing callers should use FitCtx.
func (m *Sequential) Fit(x *tensor.Tensor, labels []int, opt Optimizer, o FitOptions) float64 {
	loss, _ := m.FitCtx(context.Background(), x, labels, opt, o)
	return loss
}

// FitCtx is Fit with cooperative cancellation and resume support. The
// context is polled between minibatches, so a canceled training event
// returns within one batch; the error is ctx.Err() on cancellation or
// the first AfterEpoch error.
func (m *Sequential) FitCtx(ctx context.Context, x *tensor.Tensor, labels []int, opt Optimizer, o FitOptions) (float64, error) {
	n := x.Dim(0)
	if n == 0 {
		return 0, nil
	}
	if len(labels) != n {
		panic(fmt.Sprintf("nn: %d samples but %d labels", n, len(labels)))
	}
	if o.Epochs <= 0 {
		o.Epochs = 1
	}
	if o.BatchSize <= 0 || o.BatchSize > n {
		o.BatchSize = n
	}
	sampleLen := x.Len() / n
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	bx := tensor.New(append([]int{o.BatchSize}, x.Shape[1:]...)...)
	bl := make([]int, o.BatchSize)
	var epochLoss float64
	for e := 0; e < o.Epochs; e++ {
		if o.Shuffle != nil {
			o.Shuffle.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		}
		if e < o.StartEpoch {
			continue // replayed epoch: shuffle consumed, no gradient work
		}
		var total float64
		batches := 0
		for start := 0; start < n; start += o.BatchSize {
			if err := ctx.Err(); err != nil {
				return epochLoss, err
			}
			end := start + o.BatchSize
			if end > n {
				end = n
			}
			bs := end - start
			var xb *tensor.Tensor
			var lb []int
			if bs == o.BatchSize {
				xb, lb = bx, bl
			} else {
				xb = tensor.New(append([]int{bs}, x.Shape[1:]...)...)
				lb = make([]int, bs)
			}
			for i := 0; i < bs; i++ {
				src := order[start+i]
				copy(xb.Data[i*sampleLen:(i+1)*sampleLen], x.Data[src*sampleLen:(src+1)*sampleLen])
				lb[i] = labels[src]
			}
			total += m.TrainBatch(xb, lb, opt)
			batches++
		}
		epochLoss = total / float64(batches)
		if o.Verbose != nil {
			o.Verbose(e, epochLoss)
		}
		if o.AfterEpoch != nil {
			if err := o.AfterEpoch(e, epochLoss); err != nil {
				return epochLoss, err
			}
		}
	}
	return epochLoss, nil
}

// Predict returns the logits for a batch without touching train-time
// state.
func (m *Sequential) Predict(x *tensor.Tensor) *tensor.Tensor {
	return m.Forward(x, false)
}

// PredictClasses returns the argmax class per sample.
func (m *Sequential) PredictClasses(x *tensor.Tensor) []int {
	logits := m.Predict(x)
	out := make([]int, logits.Dim(0))
	for i := range out {
		out[i] = logits.ArgMaxRow(i)
	}
	return out
}

// snapshot is the gob wire format for model parameters.
type snapshot struct {
	Shapes [][]int
	Data   [][]float32
}

// Save writes the model parameters (not the architecture) to w with gob.
// A model restored with Load must be built with the identical layer
// configuration.
func (m *Sequential) Save(w io.Writer) error {
	params, _ := m.collect()
	s := snapshot{}
	for _, p := range params {
		s.Shapes = append(s.Shapes, p.Shape)
		s.Data = append(s.Data, p.Data)
	}
	return gob.NewEncoder(w).Encode(s)
}

// Load restores parameters saved by Save into an identically structured
// model.
func (m *Sequential) Load(r io.Reader) error {
	var s snapshot
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return err
	}
	params, _ := m.collect()
	if len(params) != len(s.Data) {
		return fmt.Errorf("nn: snapshot has %d parameter tensors, model has %d", len(s.Data), len(params))
	}
	for i, p := range params {
		if len(p.Data) != len(s.Data[i]) {
			return fmt.Errorf("nn: parameter %d size mismatch: snapshot %d vs model %d (shape %v vs %v)",
				i, len(s.Data[i]), len(p.Data), s.Shapes[i], p.Shape)
		}
		copy(p.Data, s.Data[i])
	}
	return nil
}

// CopyParamsFrom copies parameter values from src into m. Both models
// must have identical architectures. This is the warm-start primitive:
// PRIONN retrains the existing parameters rather than re-initializing.
func (m *Sequential) CopyParamsFrom(src *Sequential) error {
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		return err
	}
	return m.Load(&buf)
}

// NumParams returns the total trainable parameter count.
func (m *Sequential) NumParams() int {
	params, _ := m.collect()
	n := 0
	for _, p := range params {
		n += p.Len()
	}
	return n
}
