package nn

import (
	"fmt"
	"strings"
)

// LRAdjuster is implemented by optimizers whose learning rate can be
// changed mid-training (both SGD and Adam qualify). Schedules operate
// through this interface.
type LRAdjuster interface {
	LearningRate() float64
	SetLearningRate(lr float64)
}

// LearningRate implements LRAdjuster.
func (s *SGD) LearningRate() float64 { return s.LR }

// SetLearningRate implements LRAdjuster.
func (s *SGD) SetLearningRate(lr float64) { s.LR = lr }

// LearningRate implements LRAdjuster.
func (a *Adam) LearningRate() float64 { return a.LR }

// SetLearningRate implements LRAdjuster.
func (a *Adam) SetLearningRate(lr float64) { a.LR = lr }

// StepDecay halves (or scales by Factor) the learning rate every Every
// epochs — the standard staircase schedule.
type StepDecay struct {
	Base   float64 // learning rate at epoch 0
	Factor float64 // multiplicative decay, e.g. 0.5
	Every  int     // epochs between decays
}

// At returns the learning rate for an epoch.
func (d StepDecay) At(epoch int) float64 {
	if d.Every <= 0 {
		return d.Base
	}
	lr := d.Base
	for k := 0; k < epoch/d.Every; k++ {
		lr *= d.Factor
	}
	return lr
}

// Apply installs the schedule into a FitOptions Verbose hook position:
// call it at the start of each epoch.
func (d StepDecay) Apply(opt LRAdjuster, epoch int) {
	opt.SetLearningRate(d.At(epoch))
}

// Describe returns a human-readable summary of the model: one line per
// layer with its parameter count, plus a total.
func (m *Sequential) Describe() string {
	var b strings.Builder
	total := 0
	for i, l := range m.Layers {
		n := 0
		for _, p := range l.Params() {
			n += p.Len()
		}
		total += n
		fmt.Fprintf(&b, "%2d  %-10s %9d params", i, l.Name(), n)
		if c, ok := l.(*Conv2D); ok {
			oh, ow := c.OutDims()
			fmt.Fprintf(&b, "  %dx%dx%d -> %dx%dx%d", c.InC, c.InH, c.InW, c.Filters, oh, ow)
		}
		if d, ok := l.(*Dense); ok {
			fmt.Fprintf(&b, "  %d -> %d", d.In, d.Out)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "total %d params\n", total)
	return b.String()
}

// GradientNorms returns the L2 norm of each parameter-gradient tensor,
// in layer order — a training-health diagnostic (vanishing or exploding
// gradients show up immediately).
func (m *Sequential) GradientNorms() []float64 {
	var out []float64
	for _, l := range m.Layers {
		for _, g := range l.Grads() {
			out = append(out, g.L2Norm())
		}
	}
	return out
}
