package nn

import (
	"math/rand"

	"prionn/internal/tensor"
)

// ArchConfig describes the input geometry and output size of a PRIONN
// model. Rows×Cols is the standardized job-script extent (64×64 in the
// paper), Channels the embedding depth of the data mapping (1 for binary
// and simple, 128 for one-hot, 4 for word2vec), and Classes the output
// layer width (960 one-minute runtime bins in the paper).
type ArchConfig struct {
	Rows, Cols int
	Channels   int
	Classes    int
	// Width scales the hidden-layer sizes; 1.0 matches the defaults,
	// smaller values give the fast models used in tests.
	Width float64
}

func (c ArchConfig) scaled(base int) int {
	w := c.Width
	if w <= 0 {
		w = 1
	}
	n := int(float64(base) * w)
	if n < 1 {
		n = 1
	}
	return n
}

// NewFullyConnected builds the paper's "NN" model: the mapped script is
// flattened to a 1D sequence and passed through several fully connected
// hidden layers.
func NewFullyConnected(rng *rand.Rand, c ArchConfig) *Sequential {
	in := c.Rows * c.Cols * c.Channels
	h1, h2, h3 := c.scaled(256), c.scaled(128), c.scaled(64)
	return NewSequential(
		NewFlatten(),
		NewDense(rng, in, h1),
		NewReLU(),
		NewDense(rng, h1, h2),
		NewReLU(),
		NewDense(rng, h2, h3),
		NewReLU(),
		NewDense(rng, h3, c.Classes),
	)
}

// NewCNN1D builds the paper's "1D-CNN": the mapped script is flattened to
// a 1D sequence of length Rows*Cols with Channels input channels, passed
// through several 1D convolutional layers and then fully connected
// layers.
func NewCNN1D(rng *rand.Rand, c ArchConfig) *Sequential {
	length := c.Rows * c.Cols
	f1, f2 := c.scaled(8), c.scaled(16)
	// Strided convolutions perform the sequence-length reduction.
	conv1 := NewConv1D(rng, c.Channels, length, f1, 5, 2, 2)
	_, l1 := conv1.OutDims()
	conv2 := NewConv1D(rng, f1, l1, f2, 5, 2, 2)
	_, l2 := conv2.OutDims()
	h1 := c.scaled(128)
	return NewSequential(
		conv1,
		NewReLU(),
		conv2,
		NewReLU(),
		NewFlatten(),
		NewDense(rng, f2*l2, h1),
		NewReLU(),
		NewDense(rng, h1, c.Classes),
	)
}

// poolFloor is the smallest spatial extent NewCNN2D pools down to; job
// scripts are small images whose discriminative detail (numeric
// parameters, binary names) lives at character scale, so over-pooling
// destroys signal.
const poolFloor = 16

// NewCNN2D builds PRIONN's selected model: a 2D CNN with four
// convolutional layers and four fully connected layers over the 2D
// image-like script matrix (paper §2.4).
func NewCNN2D(rng *rand.Rand, c ArchConfig) *Sequential {
	f1, f2, f3, f4 := c.scaled(8), c.scaled(12), c.scaled(16), c.scaled(24)
	spec := func() tensor.ConvSpec { return tensor.ConvSpec{KH: 3, KW: 3, Stride: 1, PadH: 1, PadW: 1} }

	layers := []Layer{}
	ch, h, w := c.Channels, c.Rows, c.Cols
	for _, f := range []int{f1, f2, f3, f4} {
		conv := NewConv2D(rng, ch, h, w, f, spec())
		layers = append(layers, conv, NewReLU())
		ch = f
		if h > poolFloor && w > poolFloor {
			pool := NewMaxPool2D(ch, h, w, 2, 2)
			layers = append(layers, pool)
			h, w = pool.OutDims()
		}
	}
	flat := ch * h * w
	h1, h2, h3 := c.scaled(256), c.scaled(128), c.scaled(64)
	layers = append(layers,
		NewFlatten(),
		NewDense(rng, flat, h1),
		NewReLU(),
		NewDense(rng, h1, h2),
		NewReLU(),
		NewDense(rng, h2, h3),
		NewReLU(),
		NewDense(rng, h3, c.Classes),
	)
	return NewSequential(layers...)
}
