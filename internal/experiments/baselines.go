package experiments

import (
	"prionn/internal/features"
	"prionn/internal/mlbase"
	"prionn/internal/trace"
)

// BaselineKind selects a traditional machine-learning baseline.
type BaselineKind string

// The three traditional models the paper compares (§2.2); RF is the best
// and serves as the representative baseline in §3.
const (
	BaselineRF  BaselineKind = "rf"
	BaselineDT  BaselineKind = "dt"
	BaselineKNN BaselineKind = "knn"
)

// newBaseline constructs a fresh regressor of the given kind.
func newBaseline(kind BaselineKind, seed int64) mlbase.Regressor {
	switch kind {
	case BaselineDT:
		return mlbase.NewDecisionTree(mlbase.TreeConfig{MaxDepth: 12, MinSamplesLeaf: 2})
	case BaselineKNN:
		return mlbase.NewKNN(mlbase.KNNConfig{K: 5})
	default:
		return mlbase.NewRandomForest(mlbase.ForestConfig{Trees: 30, MaxDepth: 14, Seed: seed})
	}
}

// rawJob converts a trace job into the manual extractor's input.
func rawJob(j trace.Job) features.RawJob {
	return features.RawJob{
		Script:    j.Script,
		User:      j.User,
		Group:     j.Group,
		Account:   j.Account,
		SubmitDir: "/g/g0/" + j.User,
	}
}

// runBaseline runs a traditional model through the same online loop as
// PRIONN: predict at submission, retrain every retrainEvery submissions
// on the window most recently completed jobs. Unlike PRIONN, traditional
// models cannot warm-start — each training event fits a fresh model on
// the window (the paper calls this out as a deep-learning advantage).
func runBaseline(jobs []trace.Job, kind BaselineKind, window, retrainEvery int, seed int64, predictIO bool) []JobPred {
	enc := features.NewEncoder()

	type completion struct {
		end int64
		idx int
	}
	pending := make([]completion, 0, len(jobs))
	for i, j := range jobs {
		if !j.Canceled {
			pending = append(pending, completion{end: j.SubmitTime + j.ActualSec, idx: i})
		}
	}
	// Pending is nearly sorted (submission order); sort by end time.
	for i := 1; i < len(pending); i++ {
		for k := i; k > 0 && pending[k].end < pending[k-1].end; k-- {
			pending[k], pending[k-1] = pending[k-1], pending[k]
		}
	}

	var completed []int
	pi := 0
	sinceTrain := 0
	trained := false

	var runtimeModel, readModel, writeModel mlbase.Regressor

	out := make([]JobPred, len(jobs))
	for i, j := range jobs {
		for pi < len(pending) && pending[pi].end <= j.SubmitTime {
			completed = append(completed, pending[pi].idx)
			pi++
		}
		sinceTrain++
		if sinceTrain >= retrainEvery && len(completed) > 0 {
			win := completed
			if len(win) > window {
				win = win[len(win)-window:]
			}
			x := make([][]float64, len(win))
			rt := make([]float64, len(win))
			rd := make([]float64, len(win))
			wr := make([]float64, len(win))
			for k, idx := range win {
				x[k] = enc.Encode(features.Extract(rawJob(jobs[idx])))
				rt[k] = float64(jobs[idx].ActualMin())
				rd[k] = float64(jobs[idx].ReadBytes)
				wr[k] = float64(jobs[idx].WriteBytes)
			}
			runtimeModel = newBaseline(kind, seed)
			runtimeModel.Fit(x, rt)
			if predictIO {
				readModel = newBaseline(kind, seed+1)
				readModel.Fit(x, rd)
				writeModel = newBaseline(kind, seed+2)
				writeModel.Fit(x, wr)
			}
			trained = true
			sinceTrain = 0
		}

		out[i].Job = j
		if trained && !j.Canceled {
			row := enc.Encode(features.Extract(rawJob(j)))
			rm := runtimeModel.Predict(row)
			if rm < 0 {
				rm = 0
			}
			out[i].RuntimeMin = int(rm + 0.5)
			if predictIO {
				out[i].ReadBytes = maxf(readModel.Predict(row), 0)
				out[i].WriteBytes = maxf(writeModel.Predict(row), 0)
			}
			out[i].OK = true
		}
	}
	return out
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// EncodeJobFeatures returns a closure performing the full manual-feature
// pipeline (Table-1 extraction plus label encoding) over trace jobs, with
// encoder state shared across calls. Exposed for the benchmark harness.
func EncodeJobFeatures() func(trace.Job) []float64 {
	enc := features.NewEncoder()
	return func(j trace.Job) []float64 {
		return enc.Encode(features.Extract(rawJob(j)))
	}
}

// runBaselinePower runs the RF online loop with each job's mean power
// draw (watts) as the regression target — the baseline for the
// ext-power future-work experiment.
func runBaselinePower(jobs []trace.Job, window, retrainEvery int, seed int64) []powerPred {
	enc := features.NewEncoder()

	type completion struct {
		end int64
		idx int
	}
	pending := make([]completion, 0, len(jobs))
	for i, j := range jobs {
		if !j.Canceled {
			pending = append(pending, completion{end: j.SubmitTime + j.ActualSec, idx: i})
		}
	}
	for i := 1; i < len(pending); i++ {
		for k := i; k > 0 && pending[k].end < pending[k-1].end; k-- {
			pending[k], pending[k-1] = pending[k-1], pending[k]
		}
	}

	var completed []int
	pi, sinceTrain := 0, 0
	var model mlbase.Regressor

	out := make([]powerPred, len(jobs))
	for i, j := range jobs {
		for pi < len(pending) && pending[pi].end <= j.SubmitTime {
			completed = append(completed, pending[pi].idx)
			pi++
		}
		sinceTrain++
		if sinceTrain >= retrainEvery && len(completed) > 0 {
			win := completed
			if len(win) > window {
				win = win[len(win)-window:]
			}
			x := make([][]float64, len(win))
			y := make([]float64, len(win))
			for k, idx := range win {
				x[k] = enc.Encode(features.Extract(rawJob(jobs[idx])))
				y[k] = jobs[idx].AvgPowerW
			}
			model = newBaseline(BaselineRF, seed)
			model.Fit(x, y)
			sinceTrain = 0
		}
		if model != nil && !j.Canceled {
			row := enc.Encode(features.Extract(rawJob(j)))
			out[i] = powerPred{PowerW: maxf(model.Predict(row), 0), OK: true}
		}
	}
	return out
}

// RunBaselineForProbe exposes the RF online loop for the tuning probe
// binary (runtime target only).
func RunBaselineForProbe(jobs []trace.Job, window, retrainEvery int) []JobPred {
	return runBaseline(jobs, BaselineRF, window, retrainEvery, 1, false)
}
