package experiments

import (
	"fmt"

	"prionn/internal/metrics"
	"prionn/internal/prionn"
)

// ExtDeck evaluates the paper's first future-work item: "incorporating
// application input decks into PRIONN's workflow". The trace generator
// attaches an input deck to every job whose parameters (mesh size, step
// count, solver intensity) drive runtime and IO; this experiment runs
// the online loop with and without the deck appended to the mapped
// input.
func ExtDeck(o Options) (Result, error) {
	o = o.withDefaults()
	jobs := cabTrace(o)
	res := Result{
		ID:    "ext-deck",
		Title: "future work: appending application input decks to the mapped input",
		Rows:  [][]string{{"input", "runtime mean", "runtime median", "read BW mean"}},
	}
	for _, withDeck := range []bool{false, true} {
		cfg := o.Cfg
		cfg.IncludeDeck = withDeck
		cfg.PredictIO = true
		preds, err := runPRIONN(jobs, cfg, o)
		if err != nil {
			return Result{}, err
		}
		rs := metrics.Summarize(o.runtimeAccuracies(preds, nil))
		var ioAcc []float64
		start := int(float64(len(preds)) * o.BurnIn)
		for i, p := range preds {
			if i < start || !p.OK || p.Job.Canceled {
				continue
			}
			ioAcc = append(ioAcc, metrics.RelativeAccuracy(p.Job.ReadBW(), p.ReadBW()))
		}
		is := metrics.Summarize(ioAcc)
		label := "script only (paper)"
		if withDeck {
			label = "script + input deck"
		}
		res.Rows = append(res.Rows, []string{label, fmtPct(rs.Mean), fmtPct(rs.Median), fmtPct(is.Mean)})
		o.progress("ext-deck: withDeck=%v runtime mean %.3f", withDeck, rs.Mean)
	}
	res.Notes = append(res.Notes,
		"paper §6: future work proposes feeding input decks into the workflow; decks carry solver parameters invisible to both the script and Table-1 features")
	return res, nil
}

// ExtPower evaluates the paper's second future-work item: predicting
// power. The trace assigns every job a mean power draw that depends on
// node count and a per-configuration compute intensity recorded only in
// the input deck; PRIONN (script+deck) competes against the RF on
// Table-1 features.
func ExtPower(o Options) (Result, error) {
	o = o.withDefaults()
	jobs := cabTrace(o)
	res := Result{
		ID:    "ext-power",
		Title: "future work: per-job mean power prediction (watts)",
		Rows:  [][]string{{"predictor", "mean", "median", "q1", "q3", "paper"}},
	}

	cfg := o.Cfg
	cfg.PredictIO = false
	cfg.PredictPower = true
	cfg.IncludeDeck = true
	recs, err := prionn.RunOnline(jobs, cfg, nil)
	if err != nil {
		return Result{}, err
	}

	// RF baseline on Table-1 features, same online schedule, power
	// target.
	rf := runBaselinePower(jobs, cfg.TrainWindow, cfg.RetrainEvery, o.Seed)

	start := int(float64(len(jobs)) * o.BurnIn)
	var prAcc, rfAcc []float64
	for i, r := range recs {
		if i < start || !r.Predicted || !rf[i].OK {
			continue
		}
		prAcc = append(prAcc, metrics.RelativeAccuracy(r.Job.AvgPowerW, r.Pred.PowerW))
		rfAcc = append(rfAcc, metrics.RelativeAccuracy(r.Job.AvgPowerW, rf[i].PowerW))
	}
	ps := metrics.Summarize(prAcc)
	fs := metrics.Summarize(rfAcc)
	res.Rows = append(res.Rows,
		summaryRow("RF (features)", fs, "not evaluated"),
		summaryRow("PRIONN (script+deck)", ps, "future work"),
	)
	if ps.Mean > 0.5 {
		res.Notes = append(res.Notes, fmt.Sprintf(
			"power is predictable from whole inputs: PRIONN mean %.1f%% vs RF %.1f%%", ps.Mean*100, fs.Mean*100))
	} else {
		res.Notes = append(res.Notes, fmt.Sprintf(
			"power accuracy: PRIONN %.1f%% vs RF %.1f%%", ps.Mean*100, fs.Mean*100))
	}
	return res, nil
}

// powerPred carries the RF baseline's power predictions.
type powerPred struct {
	PowerW float64
	OK     bool
}
