package experiments

import (
	"context"
	"errors"
	"strings"
	"testing"

	"prionn/internal/fault"
)

// TestLookupUnknownListsValidIDs asserts the unknown-id error names
// every registered figure, so a typo on the CLI is self-correcting.
func TestLookupUnknownListsValidIDs(t *testing.T) {
	_, err := Lookup("fig999")
	if err == nil {
		t.Fatal("unknown id accepted")
	}
	for _, id := range IDs() {
		if !strings.Contains(err.Error(), id) {
			t.Fatalf("error %q does not mention valid id %q", err, id)
		}
	}
}

// TestRunCtxRecoversPanic asserts a panicking figure surfaces as a
// *PanicError carrying the figure ID and a stack, not a process crash.
func TestRunCtxRecoversPanic(t *testing.T) {
	disarm := fault.Arm(FailpointFigure("fig3"), fault.Failure{Panic: true})
	defer disarm()
	_, err := RunCtx(context.Background(), "fig3", tinyOptions())
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("got %v, want *PanicError", err)
	}
	if pe.ID != "fig3" || pe.Stack == "" {
		t.Fatalf("panic error lacks context: %+v", pe)
	}
}

// TestRunCtxInjectedError asserts an armed error failpoint fails only
// the targeted figure.
func TestRunCtxInjectedError(t *testing.T) {
	disarm := fault.Arm(FailpointFigure("fig4"), fault.Failure{})
	defer disarm()
	if _, err := RunCtx(context.Background(), "fig4", tinyOptions()); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("got %v, want injected error", err)
	}
	if _, err := RunCtx(context.Background(), "fig3", tinyOptions()); err != nil {
		t.Fatalf("uninjected figure failed: %v", err)
	}
}

// TestRunCtxCancellation asserts a canceled context aborts a figure that
// drives the online-training loop.
func TestRunCtxCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunCtx(ctx, "fig8", tinyOptions()); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}
