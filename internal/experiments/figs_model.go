package experiments

import (
	"fmt"
	"time"

	"prionn/internal/features"
	"prionn/internal/mapping"
	"prionn/internal/metrics"
	"prionn/internal/mlbase"
	"prionn/internal/prionn"
	"prionn/internal/trace"
	"prionn/internal/word2vec"
)

// trainEmbedding fits the word2vec character embedding on a corpus of
// scripts with the experiment configuration's dimensionality.
func trainEmbedding(scripts []string, cfg prionn.Config) *word2vec.Embedding {
	c := word2vec.DefaultConfig()
	c.Dim = cfg.EmbeddingDim
	c.Seed = cfg.Seed
	return word2vec.Train(scripts, c)
}

// windowScripts extracts the training-window scripts (paper: 500 jobs
// per training event; Figs. 3, 4, 6 time exactly one such window).
func windowScripts(jobs []trace.Job, n int) []string {
	if n > len(jobs) {
		n = len(jobs)
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = jobs[i].Script
	}
	return out
}

// Fig3 measures the time to transform one training window of job scripts
// into pixel representations, per transformation (paper Fig. 3: one-hot
// is the slowest by far; the others take under three seconds for 500
// scripts).
func Fig3(o Options) (Result, error) {
	o = o.withDefaults()
	jobs := trace.Completed(cabTrace(o))
	window := o.Cfg.TrainWindow
	scripts := windowScripts(jobs, window)
	emb := trainEmbedding(scripts, o.Cfg)

	res := Result{
		ID:    "fig3",
		Title: fmt.Sprintf("time to map %d job scripts, per transformation", len(scripts)),
		Rows:  [][]string{{"transform", "channels", "seconds", "paper shape"}},
	}
	type timing struct {
		name string
		sec  float64
	}
	var timings []timing
	for _, tr := range mapping.All(emb) {
		start := time.Now()
		mapping.MapBatch(scripts, tr, o.Cfg.Rows, o.Cfg.Cols)
		sec := time.Since(start).Seconds()
		//prionnvet:ignore time-dep -- Fig. 3 reports transform wall time by design
		timings = append(timings, timing{tr.Name(), sec})
		shape := "cheap (<3s at paper scale)"
		if tr.Name() == "one-hot" {
			shape = "slowest transform"
		}
		//prionnvet:ignore time-dep -- Fig. 3 reports transform wall time by design
		res.Rows = append(res.Rows, []string{
			tr.Name(), fmt.Sprint(tr.Channels()), fmt.Sprintf("%.4f", sec), shape,
		})
	}
	// Shape check: one-hot must be the most expensive.
	var oneHot, worstOther float64
	for _, t := range timings {
		if t.name == "one-hot" {
			oneHot = t.sec
		} else if t.sec > worstOther {
			worstOther = t.sec
		}
	}
	if oneHot > worstOther {
		res.Notes = append(res.Notes, "shape holds: one-hot is the slowest transformation (as in paper Fig. 3)")
	} else {
		res.Notes = append(res.Notes, "SHAPE MISMATCH: one-hot was not the slowest transformation")
	}
	return res, nil
}

// Fig4 measures the time to train the 2D-CNN for the configured number
// of epochs on one training window, per transformation (paper Fig. 4:
// one-hot's 128 input channels make it the most expensive; the other
// three are comparable).
func Fig4(o Options) (Result, error) {
	o = o.withDefaults()
	jobs := trace.Completed(cabTrace(o))
	window := jobs[:minInt(o.Cfg.TrainWindow, len(jobs))]
	scripts := windowScripts(window, len(window))

	res := Result{
		ID: "fig4",
		Title: fmt.Sprintf("time to train 2D-CNN %d epochs on %d jobs, per transformation",
			o.Cfg.Epochs, len(window)),
		Rows: [][]string{{"transform", "seconds", "paper shape"}},
	}
	var oneHot, worstOther float64
	for _, tk := range []prionn.TransformKind{
		prionn.TransformBinary, prionn.TransformSimple, prionn.TransformOneHot, prionn.TransformWord2Vec,
	} {
		cfg := o.Cfg
		cfg.Transform = tk
		cfg.Model = prionn.Model2DCNN
		cfg.PredictIO = false
		p, err := prionn.New(cfg, scripts)
		if err != nil {
			return Result{}, err
		}
		start := time.Now()
		if _, err := p.Train(window); err != nil {
			return Result{}, err
		}
		sec := time.Since(start).Seconds()
		if tk == prionn.TransformOneHot {
			oneHot = sec
		} else if sec > worstOther {
			worstOther = sec
		}
		shape := "comparable"
		if tk == prionn.TransformOneHot {
			shape = "most training time"
		}
		//prionnvet:ignore time-dep -- Fig. 4 reports training wall time by design
		res.Rows = append(res.Rows, []string{string(tk), fmt.Sprintf("%.2f", sec), shape})
		o.progress("fig4: trained %s in %.2fs", tk, sec)
	}
	if oneHot > worstOther {
		res.Notes = append(res.Notes, "shape holds: one-hot requires the most training time (paper Fig. 4)")
	} else {
		res.Notes = append(res.Notes, "SHAPE MISMATCH: one-hot was not the slowest to train")
	}
	return res, nil
}

// Fig5 runs the online loop once per transformation (2D-CNN) and reports
// the runtime-prediction accuracy distributions (paper Fig. 5: word2vec
// gives the best accuracy).
func Fig5(o Options) (Result, error) {
	o = o.withDefaults()
	jobs := cabTrace(o)
	res := Result{
		ID:    "fig5",
		Title: "runtime relative accuracy per transformation (2D-CNN)",
		Rows:  [][]string{{"transform", "mean", "median", "q1", "q3", "paper shape"}},
	}
	best, bestMean := "", -1.0
	for _, tk := range []prionn.TransformKind{
		prionn.TransformBinary, prionn.TransformSimple, prionn.TransformOneHot, prionn.TransformWord2Vec,
	} {
		cfg := o.Cfg
		cfg.Transform = tk
		cfg.Model = prionn.Model2DCNN
		cfg.PredictIO = false
		preds, err := runPRIONN(jobs, cfg, o)
		if err != nil {
			return Result{}, err
		}
		s := metrics.Summarize(o.runtimeAccuracies(preds, nil))
		if s.Mean > bestMean {
			best, bestMean = string(tk), s.Mean
		}
		shape := ""
		if tk == prionn.TransformWord2Vec {
			shape = "best accuracy in paper"
		}
		res.Rows = append(res.Rows, summaryRow(string(tk), s, shape))
		o.progress("fig5: %s mean accuracy %.3f", tk, s.Mean)
	}
	res.Notes = append(res.Notes, fmt.Sprintf("best transform here: %s (paper: word2vec)", best))
	return res, nil
}

// Fig6 measures training time per deep learning model with the word2vec
// mapping (paper Fig. 6: 1D-CNN < 2D-CNN < NN).
func Fig6(o Options) (Result, error) {
	o = o.withDefaults()
	jobs := trace.Completed(cabTrace(o))
	window := jobs[:minInt(o.Cfg.TrainWindow, len(jobs))]
	scripts := windowScripts(window, len(window))

	res := Result{
		ID: "fig6",
		Title: fmt.Sprintf("time to train each deep learning model (%d epochs, %d jobs, word2vec)",
			o.Cfg.Epochs, len(window)),
		Rows: [][]string{{"model", "params", "seconds", "paper shape"}},
	}
	secs := map[prionn.ModelKind]float64{}
	for _, mk := range []prionn.ModelKind{prionn.ModelNN, prionn.Model1DCNN, prionn.Model2DCNN} {
		cfg := o.Cfg
		cfg.Model = mk
		cfg.Transform = prionn.TransformWord2Vec
		cfg.PredictIO = false
		p, err := prionn.New(cfg, scripts)
		if err != nil {
			return Result{}, err
		}
		start := time.Now()
		if _, err := p.Train(window); err != nil {
			return Result{}, err
		}
		//prionnvet:ignore time-dep -- Fig. 6 compares model training wall time by design
		secs[mk] = time.Since(start).Seconds()
		shape := map[prionn.ModelKind]string{
			prionn.ModelNN:    "slowest in paper",
			prionn.Model1DCNN: "fastest in paper",
			prionn.Model2DCNN: "middle in paper",
		}[mk]
		res.Rows = append(res.Rows, []string{
			string(mk), fmt.Sprint(p.NumParams()), fmt.Sprintf("%.2f", secs[mk]), shape,
		})
		o.progress("fig6: trained %s in %.2fs", mk, secs[mk])
	}
	if secs[prionn.Model1DCNN] < secs[prionn.Model2DCNN] {
		res.Notes = append(res.Notes, "shape holds: 1D-CNN trains faster than 2D-CNN (paper Fig. 6)")
	} else {
		res.Notes = append(res.Notes, "SHAPE MISMATCH: 1D-CNN not faster than 2D-CNN")
	}
	return res, nil
}

// Fig7 runs the online loop per deep learning model (word2vec mapping)
// and reports runtime accuracy distributions (paper Fig. 7: NN and
// 2D-CNN beat the 1D-CNN; 2D-CNN is selected).
func Fig7(o Options) (Result, error) {
	o = o.withDefaults()
	jobs := cabTrace(o)
	res := Result{
		ID:    "fig7",
		Title: "runtime relative accuracy per deep learning model (word2vec)",
		Rows:  [][]string{{"model", "mean", "median", "q1", "q3", "paper shape"}},
	}
	means := map[prionn.ModelKind]float64{}
	for _, mk := range []prionn.ModelKind{prionn.ModelNN, prionn.Model1DCNN, prionn.Model2DCNN} {
		cfg := o.Cfg
		cfg.Model = mk
		cfg.Transform = prionn.TransformWord2Vec
		cfg.PredictIO = false
		preds, err := runPRIONN(jobs, cfg, o)
		if err != nil {
			return Result{}, err
		}
		s := metrics.Summarize(o.runtimeAccuracies(preds, nil))
		means[mk] = s.Mean
		shape := ""
		if mk == prionn.Model2DCNN {
			shape = "selected by paper"
		}
		res.Rows = append(res.Rows, summaryRow(string(mk), s, shape))
		o.progress("fig7: %s mean accuracy %.3f", mk, s.Mean)
	}
	if means[prionn.Model2DCNN] >= means[prionn.Model1DCNN] {
		res.Notes = append(res.Notes, "shape holds: 2D-CNN at least matches 1D-CNN accuracy (paper Fig. 7)")
	} else {
		res.Notes = append(res.Notes, "SHAPE MISMATCH: 1D-CNN beat 2D-CNN")
	}
	return res, nil
}

// Table2 replicates the Smith et al. comparison: runtime MAE of the RF
// on extracted features over SDSC95/SDSC96-like traces (paper Table 2:
// 35.95 and 76.69 minutes for the authors' replication, against 59.65
// and 74.56 reported by Smith et al.).
func Table2(o Options) (Result, error) {
	o = o.withDefaults()
	res := Result{
		ID:    "tab2",
		Title: "runtime MAE (minutes) of the RF replication on SDSC-like traces",
		Rows: [][]string{{
			"dataset", "jobs", "MAE (ours)", "Smith et al. (paper)", "paper replication",
		}},
	}
	for _, ds := range []struct {
		name       string
		cfg        trace.Config
		smith, rep string
	}{
		{"SDSC95", trace.SDSC95Config(o.Jobs), "59.65", "35.95"},
		{"SDSC96", trace.SDSC96Config(o.Jobs), "74.56", "76.69"},
	} {
		jobs := trace.Completed(trace.Generate(ds.cfg))
		enc := features.NewEncoder()
		x := make([][]float64, len(jobs))
		y := make([]float64, len(jobs))
		for i, j := range jobs {
			x[i] = enc.Encode(features.Extract(rawJob(j)))
			y[i] = float64(j.ActualMin())
		}
		// Chronological 75/25 split, as prediction is always forward in
		// time.
		cut := len(jobs) * 3 / 4
		rf := mlbase.NewRandomForest(mlbase.ForestConfig{Trees: 30, MaxDepth: 14, Seed: o.Seed})
		rf.Fit(x[:cut], y[:cut])
		mae := mlbase.MAE(rf, x[cut:], y[cut:])
		res.Rows = append(res.Rows, []string{
			ds.name, fmt.Sprint(len(jobs)), fmt.Sprintf("%.2f", mae), ds.smith, ds.rep,
		})
		o.progress("tab2: %s MAE %.2f min", ds.name, mae)
	}
	res.Notes = append(res.Notes,
		"MAE magnitudes are trace-dependent; the check is that an RF on Table-1 features lands in the tens-of-minutes regime on multi-hour traces, as in both published rows")
	return res, nil
}

// warmStartAblation quantifies the value of warm-start retraining: the
// same online schedule run with warm-started vs re-initialized models.
// The paper credits warm starting for PRIONN training well on 500-job
// windows ("learned parameters pass to subsequent models").
func WarmStartAblation(o Options) (Result, error) {
	o = o.withDefaults()
	jobs := cabTrace(o)
	res := Result{
		ID:    "ablate-warm",
		Title: "warm-start vs cold-start retraining (runtime accuracy)",
		Rows:  [][]string{{"mode", "mean", "median", "q1", "q3", "paper shape"}},
	}

	cfg := o.Cfg
	cfg.PredictIO = false
	warm, err := runPRIONN(jobs, cfg, o)
	if err != nil {
		return Result{}, err
	}
	warmAcc := metrics.Summarize(o.runtimeAccuracies(warm, nil))
	res.Rows = append(res.Rows, summaryRow("warm start (paper)", warmAcc, "paper's loop"))

	cold, err := runColdStart(jobs, cfg, o)
	if err != nil {
		return Result{}, err
	}
	coldAcc := metrics.Summarize(o.runtimeAccuracies(cold, nil))
	res.Rows = append(res.Rows, summaryRow("cold start", coldAcc, "ablation"))

	if warmAcc.Mean >= coldAcc.Mean {
		res.Notes = append(res.Notes, "shape holds: warm start at least matches cold start on small windows")
	} else {
		res.Notes = append(res.Notes, fmt.Sprintf(
			"cold start won by %.1f points on this trace (short windows can favor fresh fits)",
			(coldAcc.Mean-warmAcc.Mean)*100))
	}
	return res, nil
}

// runColdStart mirrors prionn.RunOnline but re-initializes model
// parameters before every training event.
func runColdStart(jobs []trace.Job, cfg prionn.Config, o Options) ([]JobPred, error) {
	// Reuse the online loop by interposing re-initialization: simplest
	// correct implementation is a copy of the loop driving Predictor
	// directly.
	var (
		p   *prionn.Predictor
		err error
	)
	type completion struct {
		end int64
		idx int
	}
	var pending []completion
	for i, j := range jobs {
		if !j.Canceled {
			pending = append(pending, completion{end: j.SubmitTime + j.ActualSec, idx: i})
		}
	}
	for i := 1; i < len(pending); i++ {
		for k := i; k > 0 && pending[k].end < pending[k-1].end; k-- {
			pending[k], pending[k-1] = pending[k-1], pending[k]
		}
	}
	var completed []int
	pi, sinceTrain := 0, 0
	out := make([]JobPred, len(jobs))
	for i, j := range jobs {
		for pi < len(pending) && pending[pi].end <= j.SubmitTime {
			completed = append(completed, pending[pi].idx)
			pi++
		}
		sinceTrain++
		if sinceTrain >= cfg.RetrainEvery && len(completed) > 0 {
			win := completed
			if len(win) > cfg.TrainWindow {
				win = win[len(win)-cfg.TrainWindow:]
			}
			batch := make([]trace.Job, len(win))
			scripts := make([]string, len(win))
			for k, idx := range win {
				batch[k] = jobs[idx]
				scripts[k] = jobs[idx].Script
			}
			if p == nil {
				p, err = prionn.New(cfg, scripts)
				if err != nil {
					return nil, err
				}
			} else {
				p.Reinitialize() // the cold-start difference
			}
			if _, err := p.Train(batch); err != nil {
				return nil, err
			}
			sinceTrain = 0
		}
		out[i].Job = j
		if p != nil && p.Trained() && !j.Canceled {
			pr := p.PredictOne(j.Script)
			out[i].RuntimeMin = pr.RuntimeMin
			out[i].OK = true
		}
	}
	return out, nil
}

// WindowAblation sweeps the training-window size (paper §2.3: "minor
// improvement of prediction accuracy and higher cost to train beyond 500
// jobs").
func WindowAblation(o Options) (Result, error) {
	o = o.withDefaults()
	jobs := cabTrace(o)
	res := Result{
		ID:    "ablate-window",
		Title: "training-window size sweep (runtime accuracy and training cost)",
		Rows:  [][]string{{"window", "mean acc", "median acc", "train sec/event"}},
	}
	for _, w := range []int{50, 100, 200, 400} {
		cfg := o.Cfg
		cfg.TrainWindow = w
		cfg.PredictIO = false
		start := time.Now()
		preds, err := runPRIONN(jobs, cfg, o)
		if err != nil {
			return Result{}, err
		}
		elapsed := time.Since(start).Seconds()
		events := float64(len(jobs)) / float64(cfg.RetrainEvery)
		s := metrics.Summarize(o.runtimeAccuracies(preds, nil))
		//prionnvet:ignore time-dep -- ablation reports retrain cost in wall time by design
		res.Rows = append(res.Rows, []string{
			fmt.Sprint(w), fmtPct(s.Mean), fmtPct(s.Median), fmt.Sprintf("%.2f", elapsed/events),
		})
		o.progress("ablate-window: w=%d mean %.3f", w, s.Mean)
	}
	res.Notes = append(res.Notes, "paper: accuracy saturates near 500-job windows while cost keeps growing")
	return res, nil
}

// LayoutAblation compares the 2D matrix layout against the flattened 1D
// layout at matched parameter budgets (the paper hypothesizes 2D
// convolutions exploit line structure).
func LayoutAblation(o Options) (Result, error) {
	o = o.withDefaults()
	jobs := cabTrace(o)
	res := Result{
		ID:    "ablate-layout",
		Title: "2D matrix vs flattened 1D sequence layout (word2vec mapping)",
		Rows:  [][]string{{"layout", "model", "mean acc", "median acc"}},
	}
	for _, mk := range []prionn.ModelKind{prionn.Model2DCNN, prionn.Model1DCNN} {
		cfg := o.Cfg
		cfg.Model = mk
		cfg.PredictIO = false
		preds, err := runPRIONN(jobs, cfg, o)
		if err != nil {
			return Result{}, err
		}
		s := metrics.Summarize(o.runtimeAccuracies(preds, nil))
		layout := "2D matrix"
		if mk == prionn.Model1DCNN {
			layout = "1D sequence"
		}
		res.Rows = append(res.Rows, []string{layout, string(mk), fmtPct(s.Mean), fmtPct(s.Median)})
	}
	return res, nil
}

// CropAblation sweeps the standardized script extent (paper fixes 64×64,
// noting only 9.9% of scripts exceed 64 lines and 13.8% of lines exceed
// 64 characters).
func CropAblation(o Options) (Result, error) {
	o = o.withDefaults()
	jobs := cabTrace(o)
	res := Result{
		ID:    "ablate-crop",
		Title: "script standardization extent sweep",
		Rows:  [][]string{{"extent", "mean acc", "median acc"}},
	}
	for _, ext := range [][2]int{{16, 16}, {32, 32}, {48, 48}} {
		cfg := o.Cfg
		cfg.Rows, cfg.Cols = ext[0], ext[1]
		cfg.PredictIO = false
		preds, err := runPRIONN(jobs, cfg, o)
		if err != nil {
			return Result{}, err
		}
		s := metrics.Summarize(o.runtimeAccuracies(preds, nil))
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("%dx%d", ext[0], ext[1]), fmtPct(s.Mean), fmtPct(s.Median),
		})
		o.progress("ablate-crop: %dx%d mean %.3f", ext[0], ext[1], s.Mean)
	}
	return res, nil
}

// embeddingAccuracy is a helper for tests: trains one window and reports
// training accuracy — a smoke signal that the pipeline learns at all.
func embeddingAccuracy(cfg prionn.Config, jobs []trace.Job) (float64, error) {
	scripts := windowScripts(jobs, len(jobs))
	p, err := prionn.New(cfg, scripts)
	if err != nil {
		return 0, err
	}
	if _, err := p.Train(jobs); err != nil {
		return 0, err
	}
	preds := p.Predict(scripts)
	var sum float64
	for i, j := range jobs {
		sum += metrics.RelativeAccuracy(float64(j.ActualMin()), float64(preds[i].RuntimeMin))
	}
	return sum / float64(len(jobs)), nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// word2vecSanity exposes the embedding trainer for the modelselect
// example; kept here so the examples depend only on experiments.
func TrainEmbeddingForScripts(scripts []string, dim int, seed int64) *word2vec.Embedding {
	c := word2vec.DefaultConfig()
	c.Dim = dim
	c.Seed = seed
	return word2vec.Train(scripts, c)
}
