// Package experiments contains one runner per data-bearing table and
// figure in the paper's evaluation (see DESIGN.md §3 for the index).
// Each runner regenerates the rows or series the paper reports — scaled
// by Options.Jobs — and formats them next to the paper's published
// numbers so EXPERIMENTS.md can record paper-vs-measured.
package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"

	"prionn/internal/metrics"
	"prionn/internal/prionn"
	"prionn/internal/trace"
)

// Options configures an experiment run.
type Options struct {
	// Jobs is the trace length. The paper uses 265,786 completed jobs;
	// runners accept any size and keep the qualitative shape.
	Jobs int
	// Seed drives trace generation and model initialization.
	Seed int64
	// Cfg is the PRIONN configuration; zero value means FastConfig.
	Cfg prionn.Config
	// Nodes is the simulated machine size (default Cab's 1,296).
	Nodes int
	// Samples is the number of sampled sub-traces for the §4 experiments
	// (paper: five 10,000-job samples).
	Samples int
	// SampleJobs is the per-sample job count for §4 experiments.
	SampleJobs int
	// BurnIn is the fraction of each trace's submissions excluded from
	// accuracy statistics (default 0.25). The paper evaluates all 265k
	// jobs, but its 500-job warm-up is a negligible sliver of that
	// trace; at reproduction scale the warm-up would otherwise dominate
	// the mean, so accuracies are reported over the mature part of the
	// stream. Set to a negative value to disable.
	BurnIn float64
	// Progress, when non-nil, receives coarse progress lines.
	Progress func(string)
	// ctx carries the run's cancellation signal; nil means Background.
	// Set it through WithContext so a zero Options stays valid.
	ctx context.Context
}

// WithContext returns a copy of o carrying ctx. The context reaches the
// online-training loop and the scheduler simulator, both of which poll
// it at submission granularity, so canceling it stops a figure within
// one minibatch.
func (o Options) WithContext(ctx context.Context) Options {
	o.ctx = ctx
	return o
}

// Context returns the run's context, defaulting to Background.
func (o Options) Context() context.Context {
	if o.ctx == nil {
		return context.Background()
	}
	return o.ctx
}

func (o Options) withDefaults() Options {
	if o.Jobs <= 0 {
		o.Jobs = 2000
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Cfg.Rows == 0 {
		o.Cfg = prionn.FastConfig()
	}
	if o.Nodes <= 0 {
		o.Nodes = 1296
	}
	if o.Samples <= 0 {
		o.Samples = 5
	}
	if o.SampleJobs <= 0 {
		o.SampleJobs = o.Jobs / 2
		if o.SampleJobs < 200 {
			o.SampleJobs = o.Jobs
		}
	}
	if o.BurnIn == 0 {
		o.BurnIn = 0.25
	} else if o.BurnIn < 0 {
		o.BurnIn = 0
	}
	return o
}

func (o Options) progress(format string, args ...interface{}) {
	if o.Progress != nil {
		o.Progress(fmt.Sprintf(format, args...))
	}
}

// Result is the outcome of one experiment: a titled table of rows
// (header first) plus free-form notes comparing against the paper.
type Result struct {
	ID    string
	Title string
	Rows  [][]string
	Notes []string
}

// WriteTo renders the result as an aligned text table.
func (r Result) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	if len(r.Rows) > 0 {
		widths := make([]int, len(r.Rows[0]))
		for _, row := range r.Rows {
			for i, cell := range row {
				if i < len(widths) && len(cell) > widths[i] {
					widths[i] = len(cell)
				}
			}
		}
		for ri, row := range r.Rows {
			for i, cell := range row {
				fmt.Fprintf(&b, "%-*s  ", widths[i], cell)
			}
			b.WriteByte('\n')
			if ri == 0 {
				for _, wd := range widths {
					b.WriteString(strings.Repeat("-", wd) + "  ")
				}
				b.WriteByte('\n')
			}
		}
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	b.WriteByte('\n')
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// String renders the result table.
func (r Result) String() string {
	var b strings.Builder
	_, _ = r.WriteTo(&b) // strings.Builder writes cannot fail
	return b.String()
}

// cabTrace generates the Cab-like workload for the run.
func cabTrace(o Options) []trace.Job {
	return trace.Generate(trace.Config{Seed: o.Seed, Jobs: o.Jobs})
}

// JobPred is a per-job prediction from any predictor (PRIONN, a
// traditional baseline, or the user estimate).
type JobPred struct {
	Job        trace.Job
	RuntimeMin int
	ReadBytes  float64
	WriteBytes float64
	OK         bool // prediction exists (post first training event)
}

// ReadBW and WriteBW derive bandwidth the way the paper does: predicted
// total bytes divided by predicted runtime.
func (p JobPred) ReadBW() float64 {
	if p.RuntimeMin <= 0 {
		return 0
	}
	return p.ReadBytes / (float64(p.RuntimeMin) * 60)
}

// WriteBW returns the predicted write bandwidth.
func (p JobPred) WriteBW() float64 {
	if p.RuntimeMin <= 0 {
		return 0
	}
	return p.WriteBytes / (float64(p.RuntimeMin) * 60)
}

// runPRIONN executes PRIONN's online loop over the trace.
func runPRIONN(jobs []trace.Job, cfg prionn.Config, o Options) ([]JobPred, error) {
	recs, err := prionn.RunOnlineCtx(o.Context(), jobs, cfg, func(done, total int) {
		o.progress("prionn online: %d/%d submissions", done, total)
	})
	if err != nil {
		return nil, err
	}
	out := make([]JobPred, len(recs))
	for i, r := range recs {
		out[i] = JobPred{
			Job:        r.Job,
			RuntimeMin: r.Pred.RuntimeMin,
			ReadBytes:  r.Pred.ReadBytes,
			WriteBytes: r.Pred.WriteBytes,
			OK:         r.Predicted,
		}
	}
	return out, nil
}

// userPreds derives the user-estimate "predictor" (requested runtime; no
// IO information, as the paper notes users do not provide any).
func userPreds(jobs []trace.Job) []JobPred {
	out := make([]JobPred, len(jobs))
	for i, j := range jobs {
		out[i] = JobPred{Job: j, RuntimeMin: j.RequestedMin, OK: !j.Canceled}
	}
	return out
}

// runtimeAccuracies computes Eq.-1 accuracies of predicted vs actual
// runtime over the records where both series have predictions, skipping
// the burn-in prefix of the submission stream (see Options.BurnIn).
func (o Options) runtimeAccuracies(preds []JobPred, gate []JobPred) []float64 {
	var acc []float64
	start := int(float64(len(preds)) * o.BurnIn)
	for i, p := range preds {
		if i < start || !p.OK || p.Job.Canceled || (gate != nil && !gate[i].OK) {
			continue
		}
		acc = append(acc, metrics.RelativeAccuracy(float64(p.Job.ActualMin()), float64(p.RuntimeMin)))
	}
	return acc
}

// fmtPct formats a fraction as a percentage.
func fmtPct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }

// fmtSummary renders the boxplot stats used across the accuracy figures.
func summaryRow(label string, s metrics.Summary, paper string) []string {
	return []string{
		label,
		fmtPct(s.Mean),
		fmtPct(s.Median),
		fmtPct(s.Q1),
		fmtPct(s.Q3),
		paper,
	}
}

// sampleTrace extracts deterministic contiguous samples from a trace,
// mirroring the paper's five randomly placed 10,000-job subsets.
func sampleTraces(jobs []trace.Job, samples, size int, seed int64) [][]trace.Job {
	if size >= len(jobs) {
		return [][]trace.Job{jobs}
	}
	out := make([][]trace.Job, 0, samples)
	span := len(jobs) - size
	for s := 0; s < samples; s++ {
		start := int(int64(s)*(int64(span))/int64(samples) + seed%97)
		if start > span {
			start = span
		}
		out = append(out, jobs[start:start+size])
	}
	return out
}

// sortedCopy returns a sorted copy of vals.
func sortedCopy(vals []float64) []float64 {
	c := append([]float64(nil), vals...)
	sort.Float64s(c)
	return c
}
