package experiments

import (
	"strings"
	"testing"

	"prionn/internal/prionn"
	"prionn/internal/sched"
	"prionn/internal/trace"
)

// tinyOptions keeps experiment tests fast while exercising every code
// path: ~300-job traces, 16×16 scripts, quarter-width models.
func tinyOptions() Options {
	cfg := prionn.TinyConfig()
	cfg.RetrainEvery = 60
	cfg.TrainWindow = 60
	cfg.Epochs = 1
	return Options{
		Jobs:       300,
		Seed:       3,
		Cfg:        cfg,
		Nodes:      256,
		Samples:    2,
		SampleJobs: 150,
	}
}

func TestResultFormatting(t *testing.T) {
	r := Result{
		ID:    "x",
		Title: "demo",
		Rows:  [][]string{{"a", "b"}, {"1", "22"}},
		Notes: []string{"n1"},
	}
	s := r.String()
	for _, want := range []string{"== x: demo ==", "a", "22", "note: n1"} {
		if !strings.Contains(s, want) {
			t.Fatalf("formatted result missing %q:\n%s", want, s)
		}
	}
}

func TestRegistry(t *testing.T) {
	ids := IDs()
	if len(ids) < 13 {
		t.Fatalf("only %d experiments registered", len(ids))
	}
	for _, id := range []string{"fig3", "fig8", "fig11", "fig15", "tab2"} {
		if _, err := Lookup(id); err != nil {
			t.Fatalf("missing %s: %v", id, err)
		}
	}
	if _, err := Lookup("fig99"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestFig3(t *testing.T) {
	res, err := Fig3(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 { // header + 4 transforms
		t.Fatalf("fig3 rows %d", len(res.Rows))
	}
	if !strings.Contains(res.String(), "one-hot") {
		t.Fatal("fig3 missing one-hot row")
	}
}

func TestFig4(t *testing.T) {
	o := tinyOptions()
	o.Cfg.TrainWindow = 30
	res, err := Fig4(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("fig4 rows %d", len(res.Rows))
	}
	// One-hot (128 channels) must be the slowest to train — this is a
	// deterministic architectural fact, assert it even at tiny scale.
	if !strings.Contains(strings.Join(res.Notes, " "), "shape holds") {
		t.Fatalf("fig4 shape note: %v", res.Notes)
	}
}

func TestFig6(t *testing.T) {
	o := tinyOptions()
	o.Cfg.TrainWindow = 30
	res, err := Fig6(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("fig6 rows %d", len(res.Rows))
	}
}

func TestFig8SmallTrace(t *testing.T) {
	res, err := Fig8(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 { // header + user + RF + PRIONN
		t.Fatalf("fig8 rows %d", len(res.Rows))
	}
	if len(res.Notes) < 2 {
		t.Fatalf("fig8 notes %v", res.Notes)
	}
}

func TestTable2Small(t *testing.T) {
	o := tinyOptions()
	o.Jobs = 600
	res, err := Table2(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("tab2 rows %d", len(res.Rows))
	}
	if res.Rows[1][0] != "SDSC95" || res.Rows[2][0] != "SDSC96" {
		t.Fatalf("tab2 datasets wrong: %v", res.Rows)
	}
}

func TestFig11Small(t *testing.T) {
	res, err := Fig11(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("fig11 rows %d", len(res.Rows))
	}
}

func TestFig12And13Small(t *testing.T) {
	o := tinyOptions()
	res12, err := Fig12(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res12.Rows) != 3 {
		t.Fatalf("fig12 rows %d", len(res12.Rows))
	}
	res13, err := Fig13(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res13.Rows) != len(burstWindows)+1 {
		t.Fatalf("fig13 rows %d", len(res13.Rows))
	}
}

func TestFig14And15Small(t *testing.T) {
	o := tinyOptions()
	res14, err := Fig14(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res14.Rows) != 3 {
		t.Fatalf("fig14 rows %d", len(res14.Rows))
	}
	res15, err := Fig15(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res15.Rows) != len(burstWindows)+1 {
		t.Fatalf("fig15 rows %d", len(res15.Rows))
	}
}

func TestBaselineOnlineLoop(t *testing.T) {
	jobs := trace.Generate(trace.Config{Seed: 4, Jobs: 250, Users: 15, Apps: 5})
	preds := runBaseline(jobs, BaselineRF, 60, 60, 1, true)
	if len(preds) != len(jobs) {
		t.Fatalf("%d preds", len(preds))
	}
	var ok int
	for i, p := range preds {
		if p.OK {
			ok++
			if p.Job.Canceled {
				t.Fatal("canceled job predicted")
			}
			if p.RuntimeMin < 0 || p.ReadBytes < 0 {
				t.Fatal("negative baseline prediction")
			}
		}
		if i < 59 && p.OK {
			t.Fatal("prediction before first possible training event")
		}
	}
	if ok == 0 {
		t.Fatal("baseline never predicted")
	}
}

func TestBaselineKinds(t *testing.T) {
	jobs := trace.Generate(trace.Config{Seed: 6, Jobs: 150, Users: 10, Apps: 4})
	for _, k := range []BaselineKind{BaselineRF, BaselineDT, BaselineKNN} {
		preds := runBaseline(jobs, k, 40, 40, 1, false)
		any := false
		for _, p := range preds {
			if p.OK {
				any = true
			}
		}
		if !any {
			t.Fatalf("baseline %s never predicted", k)
		}
	}
}

func TestUserPreds(t *testing.T) {
	jobs := trace.Generate(trace.Config{Seed: 7, Jobs: 50})
	preds := userPreds(jobs)
	for i, p := range preds {
		if p.OK == jobs[i].Canceled {
			t.Fatal("OK flag wrong for user predictions")
		}
		if p.RuntimeMin != jobs[i].RequestedMin {
			t.Fatal("user prediction must be the requested runtime")
		}
	}
}

func TestSampleTraces(t *testing.T) {
	jobs := trace.Generate(trace.Config{Seed: 8, Jobs: 1000})
	samples := sampleTraces(jobs, 5, 200, 1)
	if len(samples) != 5 {
		t.Fatalf("%d samples", len(samples))
	}
	for _, s := range samples {
		if len(s) != 200 {
			t.Fatalf("sample size %d", len(s))
		}
	}
	// Whole trace returned when size >= len.
	whole := sampleTraces(jobs, 5, 2000, 1)
	if len(whole) != 1 || len(whole[0]) != 1000 {
		t.Fatal("oversized sample must return the full trace")
	}
}

func TestJobPredBandwidth(t *testing.T) {
	p := JobPred{RuntimeMin: 2, ReadBytes: 1200, WriteBytes: 600}
	if p.ReadBW() != 10 || p.WriteBW() != 5 {
		t.Fatalf("BW %v/%v", p.ReadBW(), p.WriteBW())
	}
	if (JobPred{}).ReadBW() != 0 {
		t.Fatal("zero-runtime JobPred must have zero BW")
	}
}

func TestIOSeriesPairPerfect(t *testing.T) {
	// With predictions equal to ground truth, the predicted system-IO
	// series must closely track the actual one.
	jobs := trace.Completed(trace.Generate(trace.Config{Seed: 9, Jobs: 20, Users: 3, Apps: 2}))
	byID := map[int]JobPred{}
	items := toItems(jobs)
	sch, err := sched.Schedule(items, sched.SimConfig{Nodes: 1296, Backfill: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		// "Prediction" equal to truth.
		byID[j.ID] = JobPred{
			Job:        j,
			RuntimeMin: j.ActualMin(),
			ReadBytes:  float64(j.ReadBytes),
			WriteBytes: float64(j.WriteBytes),
			OK:         true,
		}
	}
	actual, predicted := ioSeriesPair(sch, nil, byID, false)
	if len(actual) == 0 || len(actual) != len(predicted) {
		t.Fatalf("series lengths %d/%d", len(actual), len(predicted))
	}
	// With perfect bytes but bandwidth derived from rounded minutes the
	// series are close, not exact; compare totals within 10%.
	var ta, tp float64
	for i := range actual {
		ta += actual[i]
		tp += predicted[i]
	}
	if ta == 0 {
		t.Fatal("empty actual series")
	}
	ratio := tp / ta
	if ratio < 0.7 || ratio > 1.3 {
		t.Fatalf("perfect-prediction series total ratio %.2f", ratio)
	}
}

func TestFig5Small(t *testing.T) {
	o := tinyOptions()
	o.Jobs = 200
	res, err := Fig5(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 { // header + 4 transforms
		t.Fatalf("fig5 rows %d", len(res.Rows))
	}
}

func TestFig7Small(t *testing.T) {
	o := tinyOptions()
	o.Jobs = 200
	res, err := Fig7(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 { // header + 3 models
		t.Fatalf("fig7 rows %d", len(res.Rows))
	}
}

func TestFig9Small(t *testing.T) {
	o := tinyOptions()
	o.Jobs = 250
	res, err := Fig9(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 { // header + RF read/write + PRIONN read/write
		t.Fatalf("fig9 rows %d", len(res.Rows))
	}
}

func TestWarmStartAblationSmall(t *testing.T) {
	o := tinyOptions()
	o.Jobs = 200
	res, err := WarmStartAblation(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("ablate-warm rows %d", len(res.Rows))
	}
}

func TestCropAblationSmall(t *testing.T) {
	o := tinyOptions()
	o.Jobs = 200
	res, err := CropAblation(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 { // header + 3 extents
		t.Fatalf("ablate-crop rows %d", len(res.Rows))
	}
}

func TestBurnInExcludesEarlyPredictions(t *testing.T) {
	// With BurnIn = 0.5, accuracies must come only from the second half.
	preds := make([]JobPred, 100)
	for i := range preds {
		preds[i] = JobPred{
			Job:        trace.Job{ActualSec: 600},
			RuntimeMin: 10, // perfect
			OK:         true,
		}
	}
	// First half: wildly wrong predictions. If burn-in works they are
	// excluded and mean accuracy is 1.
	for i := 0; i < 50; i++ {
		preds[i].RuntimeMin = 1000
	}
	o := Options{BurnIn: 0.5}.withDefaults()
	acc := o.runtimeAccuracies(preds, nil)
	if len(acc) != 50 {
		t.Fatalf("%d accuracies, want 50", len(acc))
	}
	for _, a := range acc {
		if a < 0.99 {
			t.Fatalf("early bad prediction leaked into accuracy: %v", a)
		}
	}
}
