package experiments

import (
	"fmt"

	"prionn/internal/metrics"
	"prionn/internal/trace"
)

// Fig8 reproduces the §3.1 per-job runtime evaluation: the actual
// runtime distribution (8a) and the relative-accuracy boxplots of user
// requested time, the RF baseline, and PRIONN (8b). Paper headline:
// PRIONN mean 76.1% (+6.0 over RF), median 100%; users far behind.
func Fig8(o Options) (Result, error) {
	o = o.withDefaults()
	jobs := cabTrace(o)
	completed := trace.Completed(jobs)

	res := Result{
		ID:    "fig8",
		Title: "per-job runtime predictions (distribution + accuracy)",
	}

	// (a) runtime distribution.
	mins := make([]float64, len(completed))
	for i, j := range completed {
		mins[i] = float64(j.ActualMin())
	}
	dist := metrics.Summarize(mins)
	hist := metrics.Histogram(mins, 0, 960, 16)
	res.Notes = append(res.Notes, fmt.Sprintf(
		"8a distribution: mean %.1f min (paper 44), median %.1f, max %.0f; first-hour share %.0f%%",
		dist.Mean, dist.Median, dist.Max,
		100*float64(hist[0])/float64(len(mins))))

	// (b) accuracy boxplots.
	cfg := o.Cfg
	cfg.PredictIO = false
	pr, err := runPRIONN(jobs, cfg, o)
	if err != nil {
		return Result{}, err
	}
	rf := runBaseline(jobs, BaselineRF, cfg.TrainWindow, cfg.RetrainEvery, o.Seed, false)
	user := userPreds(jobs)

	// Evaluate only jobs all three predicted (post-first-training).
	gate := make([]JobPred, len(jobs))
	for i := range jobs {
		gate[i].OK = pr[i].OK && rf[i].OK && user[i].OK
	}
	prAcc := metrics.Summarize(o.runtimeAccuracies(pr, gate))
	rfAcc := metrics.Summarize(o.runtimeAccuracies(rf, gate))
	userAcc := metrics.Summarize(o.runtimeAccuracies(user, gate))

	res.Rows = [][]string{{"predictor", "mean", "median", "q1", "q3", "paper"}}
	res.Rows = append(res.Rows,
		summaryRow("user requested", userAcc, "≈24% mean"),
		summaryRow("RF (features)", rfAcc, "70.1% mean"),
		summaryRow("PRIONN", prAcc, "76.1% mean, 100% median"),
	)

	res.Notes = append(res.Notes, fmt.Sprintf(
		"accuracies over the final %.0f%% of submissions (warm-up excluded; the paper's warm-up is a negligible fraction of its 265k-job trace)",
		100*(1-o.BurnIn)))
	if prAcc.Mean > rfAcc.Mean && rfAcc.Mean > userAcc.Mean {
		res.Notes = append(res.Notes, "shape holds: PRIONN > RF > user (paper Fig. 8b)")
	} else {
		res.Notes = append(res.Notes, fmt.Sprintf(
			"SHAPE CHECK: PRIONN %.3f vs RF %.3f vs user %.3f", prAcc.Mean, rfAcc.Mean, userAcc.Mean))
	}
	return res, nil
}

// Fig9 reproduces the §3.2 per-job IO evaluation: the bandwidth
// distribution (9a) and read/write bandwidth accuracy for RF (9b) and
// PRIONN (9c). Paper headline: PRIONN 80.2%/75.6% mean for read/write,
// +12.1/+9.6 points over RF; users provide no IO estimates at all.
func Fig9(o Options) (Result, error) {
	o = o.withDefaults()
	jobs := cabTrace(o)
	completed := trace.Completed(jobs)

	res := Result{
		ID:    "fig9",
		Title: "per-job IO bandwidth predictions (distribution + accuracy)",
	}

	// (a) bandwidth distribution: mean orders of magnitude above median.
	var rbws, wbws []float64
	for _, j := range completed {
		rbws = append(rbws, j.ReadBW())
		wbws = append(wbws, j.WriteBW())
	}
	rs, ws := metrics.Summarize(rbws), metrics.Summarize(wbws)
	res.Notes = append(res.Notes, fmt.Sprintf(
		"9a distribution: read mean/median = %.0f (paper: orders of magnitude), write mean/median = %.0f",
		rs.Mean/maxf(rs.Median, 1), ws.Mean/maxf(ws.Median, 1)))

	cfg := o.Cfg
	cfg.PredictIO = true
	pr, err := runPRIONN(jobs, cfg, o)
	if err != nil {
		return Result{}, err
	}
	rf := runBaseline(jobs, BaselineRF, cfg.TrainWindow, cfg.RetrainEvery, o.Seed, true)

	burnStart := int(float64(len(jobs)) * o.BurnIn)
	bwAcc := func(preds []JobPred, read bool) metrics.Summary {
		var acc []float64
		for i, p := range preds {
			if i < burnStart || !p.OK || p.Job.Canceled || !pr[i].OK || !rf[i].OK {
				continue
			}
			var truth, predBW float64
			if read {
				truth, predBW = p.Job.ReadBW(), p.ReadBW()
			} else {
				truth, predBW = p.Job.WriteBW(), p.WriteBW()
			}
			acc = append(acc, metrics.RelativeAccuracy(truth, predBW))
		}
		return metrics.Summarize(acc)
	}

	res.Rows = [][]string{{"predictor", "mean", "median", "q1", "q3", "paper"}}
	res.Rows = append(res.Rows,
		summaryRow("RF read BW", bwAcc(rf, true), "68.1% mean"),
		summaryRow("RF write BW", bwAcc(rf, false), "66.0% mean"),
		summaryRow("PRIONN read BW", bwAcc(pr, true), "80.2% mean"),
		summaryRow("PRIONN write BW", bwAcc(pr, false), "75.6% mean"),
	)

	prRead, rfRead := bwAcc(pr, true), bwAcc(rf, true)
	prWrite, rfWrite := bwAcc(pr, false), bwAcc(rf, false)
	if prRead.Mean > rfRead.Mean && prWrite.Mean > rfWrite.Mean {
		res.Notes = append(res.Notes, "shape holds: PRIONN beats RF on both read and write bandwidth (paper Figs. 9b/9c)")
	} else {
		res.Notes = append(res.Notes, fmt.Sprintf(
			"SHAPE CHECK: read %.3f vs %.3f, write %.3f vs %.3f (PRIONN vs RF)",
			prRead.Mean, rfRead.Mean, prWrite.Mean, rfWrite.Mean))
	}
	return res, nil
}
