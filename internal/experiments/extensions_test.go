package experiments

import (
	"testing"

	"prionn/internal/trace"
)

func TestExtDeckSmall(t *testing.T) {
	o := tinyOptions()
	o.Jobs = 250
	res, err := ExtDeck(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 { // header + without + with
		t.Fatalf("ext-deck rows %d", len(res.Rows))
	}
	if res.Rows[1][0] == res.Rows[2][0] {
		t.Fatal("ext-deck rows not labeled distinctly")
	}
}

func TestExtPowerSmall(t *testing.T) {
	o := tinyOptions()
	o.Jobs = 250
	res, err := ExtPower(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("ext-power rows %d", len(res.Rows))
	}
}

func TestRunBaselinePower(t *testing.T) {
	jobs := trace.Generate(trace.Config{Seed: 12, Jobs: 200, Users: 12, Apps: 4})
	preds := runBaselinePower(jobs, 50, 50, 1)
	any := false
	for i, p := range preds {
		if p.OK {
			any = true
			if p.PowerW < 0 {
				t.Fatal("negative power prediction")
			}
			if jobs[i].Canceled {
				t.Fatal("canceled job predicted")
			}
		}
	}
	if !any {
		t.Fatal("power baseline never predicted")
	}
}

func TestTraceCarriesDeckAndPower(t *testing.T) {
	jobs := trace.Completed(trace.Generate(trace.Config{Seed: 13, Jobs: 100}))
	for _, j := range jobs {
		if j.InputDeck == "" {
			t.Fatal("job missing input deck")
		}
		if j.AvgPowerW <= 0 {
			t.Fatal("job missing power draw")
		}
		// Power scales with nodes: a job's watts must be at least its
		// node count times a plausible per-node floor.
		if j.AvgPowerW < float64(j.Nodes)*100 {
			t.Fatalf("power %f too low for %d nodes", j.AvgPowerW, j.Nodes)
		}
	}
}
