package experiments

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"prionn/internal/ioaware"
	"prionn/internal/metrics"
	"prionn/internal/sched"
	"prionn/internal/trace"
)

// burstWindows are the paper's window sizes in minutes (Figs. 13, 15).
var burstWindows = []int{5, 10, 20, 30, 40, 50, 60}

// toItems converts completed trace jobs into scheduler items.
func toItems(jobs []trace.Job) []sched.Item {
	items := make([]sched.Item, 0, len(jobs))
	for _, j := range jobs {
		items = append(items, sched.Item{
			ID:         j.ID,
			Submit:     j.SubmitTime,
			Nodes:      j.Nodes,
			RuntimeSec: j.ActualSec,
			LimitSec:   int64(j.RequestedMin) * 60,
		})
	}
	return items
}

// predictorsForSample runs PRIONN online over a sample and returns
// runtime (seconds) and bandwidth lookup functions. Jobs submitted
// before the first training event fall back to the user estimate for
// runtime and zero for IO — exactly what a freshly deployed system has.
func predictorsForSample(jobsAll []trace.Job, o Options) (map[int]JobPred, error) {
	cfg := o.Cfg
	cfg.PredictIO = true
	preds, err := runPRIONN(jobsAll, cfg, o)
	if err != nil {
		return nil, err
	}
	byID := make(map[int]JobPred, len(preds))
	for _, p := range preds {
		byID[p.Job.ID] = p
	}
	return byID, nil
}

// Fig11 reproduces the §4.2 turnaround evaluation over sampled
// sub-traces: the turnaround distribution (11a) and the relative
// accuracy of turnaround predictions driven by user-requested runtimes
// vs PRIONN runtimes (11b). Paper headline: +14.0 mean / +14.1 median
// points over user estimates; PRIONN mean 42.1%.
func Fig11(o Options) (Result, error) {
	o = o.withDefaults()
	full := cabTrace(o)
	samples := sampleTraces(full, o.Samples, o.SampleJobs, o.Seed)

	var turnarounds []float64
	var userAcc, prAcc []float64
	for si, sample := range samples {
		completed := trace.Completed(sample)
		items := toItems(completed)
		byID, err := predictorsForSample(sample, o)
		if err != nil {
			return Result{}, err
		}
		userRuntime := func(id int) int64 { return int64(byID[id].Job.RequestedMin) * 60 }
		prionnRuntime := func(id int) int64 {
			p := byID[id]
			if !p.OK {
				return userRuntime(id)
			}
			return sched.SanitizePredictedSec(float64(p.RuntimeMin)*60, int64(p.Job.RequestedMin)*60)
		}
		simCfg := sched.SimConfig{Nodes: o.Nodes, Backfill: true}
		ur, err := sched.PredictTurnaroundsCtx(o.Context(), items, simCfg, userRuntime)
		if err != nil {
			return Result{}, err
		}
		pr, err := sched.PredictTurnaroundsCtx(o.Context(), items, simCfg, prionnRuntime)
		if err != nil {
			return Result{}, err
		}
		for i := range ur {
			turnarounds = append(turnarounds, float64(ur[i].RealSec))
			userAcc = append(userAcc, metrics.RelativeAccuracy(float64(ur[i].RealSec), float64(ur[i].PredictedSec)))
			prAcc = append(prAcc, metrics.RelativeAccuracy(float64(pr[i].RealSec), float64(pr[i].PredictedSec)))
		}
		o.progress("fig11: sample %d/%d done", si+1, len(samples))
	}

	ta := metrics.Summarize(turnarounds)
	us := metrics.Summarize(userAcc)
	ps := metrics.Summarize(prAcc)

	res := Result{
		ID:    "fig11",
		Title: fmt.Sprintf("turnaround prediction over %d samples (11a distribution, 11b accuracy)", len(samples)),
		Rows:  [][]string{{"runtime source", "mean", "median", "q1", "q3", "paper"}},
	}
	res.Rows = append(res.Rows,
		summaryRow("user requested", us, "28.1% mean"),
		summaryRow("PRIONN", ps, "42.1% mean, 40.8% median"),
	)
	res.Notes = append(res.Notes, fmt.Sprintf(
		"11a: simulated turnaround mean %.0fs median %.0fs p95 %.0fs", ta.Mean, ta.Median, ta.P95))
	res.Notes = append(res.Notes, fmt.Sprintf(
		"75th/95th percentile accuracy with PRIONN: %s / %s (paper: >20 points above user at these percentiles)",
		fmtPct(ps.Q3), fmtPct(ps.P95)))
	if ps.Mean > us.Mean {
		res.Notes = append(res.Notes, fmt.Sprintf(
			"shape holds: PRIONN improves mean turnaround accuracy by %.1f points (paper: +14.0)",
			(ps.Mean-us.Mean)*100))
	} else {
		res.Notes = append(res.Notes, "SHAPE MISMATCH: PRIONN did not beat user-driven turnaround accuracy")
	}
	return res, nil
}

// sanitizeBW clamps a derived bandwidth before it enters an IO series:
// a NaN, Inf, or negative value (degenerate predicted bytes divided by a
// degenerate predicted runtime) would poison every downstream bucket sum
// and burst threshold.
func sanitizeBW(bw float64) float64 {
	if math.IsNaN(bw) || math.IsInf(bw, 0) || bw < 0 {
		return 0
	}
	return bw
}

// ioSeriesPair builds actual and predicted system-IO series (one-minute
// buckets) from placements and per-job predictions. When usePredPlace is
// true, predicted intervals come from the snapshot placements (Figs.
// 14/15); otherwise predictions ride the real placements — perfect
// turnaround knowledge (Figs. 12/13).
func ioSeriesPair(
	placements map[int]sched.Placement,
	predPlacements map[int]sched.Placement,
	byID map[int]JobPred,
	usePredPlace bool,
) (actual, predicted []float64) {
	var t0, t1 int64
	first := true
	var actualIvs, predIvs []ioaware.Interval
	// Iterate job IDs in sorted order: interval order decides float
	// summation order in ioaware.Series, and map order would make
	// same-seed runs differ in the last bits.
	ids := make([]int, 0, len(placements))
	for id := range placements {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		pl := placements[id]
		p := byID[id]
		j := p.Job
		actualIvs = append(actualIvs, ioaware.Interval{
			Start: pl.Start, End: pl.End, BW: sanitizeBW(j.ReadBW() + j.WriteBW()),
		})
		pp := pl
		if usePredPlace {
			var ok bool
			pp, ok = predPlacements[id]
			if !ok || pp.End <= pp.Start {
				pp = pl
			}
		}
		predIvs = append(predIvs, ioaware.Interval{
			Start: pp.Start, End: pp.End, BW: sanitizeBW(p.ReadBW() + p.WriteBW()),
		})
		for _, b := range []int64{pl.Start, pp.Start} {
			if first || b < t0 {
				t0 = b
			}
			first = false
		}
		for _, e := range []int64{pl.End, pp.End} {
			if e > t1 {
				t1 = e
			}
		}
	}
	if t1 <= t0 {
		return nil, nil
	}
	const step = 60
	return ioaware.Series(actualIvs, t0, t1, step), ioaware.Series(predIvs, t0, t1, step)
}

// systemIOCache memoizes the §4.3 pipeline so figure pairs sharing it
// (12/13 and 14/15) run it once per options set. systemIOMu guards it:
// experiment runners are callable from concurrent harnesses, and an
// unsynchronized package-level map write is a fatal data race.
var (
	systemIOMu    sync.Mutex
	systemIOCache = map[string]systemIOResult{}
)

type systemIOResult struct {
	acc    metrics.Summary
	sweeps []metrics.Confusion
}

// systemIO is the shared §4.3 pipeline; perfect selects the Figs. 12/13
// evaluation (perfect turnaround knowledge) vs Figs. 14/15 (predicted
// turnaround). Results are memoized per (options, perfect) pair.
func systemIO(o Options, perfect bool) (accSummary metrics.Summary, sweeps []metrics.Confusion, err error) {
	key := fmt.Sprintf("%d/%d/%d/%d/%v/%+v", o.Jobs, o.Seed, o.Samples, o.SampleJobs, perfect, o.Cfg)
	systemIOMu.Lock()
	r, ok := systemIOCache[key]
	systemIOMu.Unlock()
	if ok {
		return r.acc, r.sweeps, nil
	}
	defer func() {
		if err == nil {
			systemIOMu.Lock()
			systemIOCache[key] = systemIOResult{acc: accSummary, sweeps: sweeps}
			systemIOMu.Unlock()
		}
	}()
	full := cabTrace(o)
	var samples [][]trace.Job
	if perfect {
		// First evaluation uses all jobs.
		samples = [][]trace.Job{full}
	} else {
		samples = sampleTraces(full, o.Samples, o.SampleJobs, o.Seed)
	}

	var allAcc []float64
	sweeps = make([]metrics.Confusion, len(burstWindows))
	for si, sample := range samples {
		completed := trace.Completed(sample)
		items := toItems(completed)
		byID, err := predictorsForSample(sample, o)
		if err != nil {
			return metrics.Summary{}, nil, err
		}
		simCfg := sched.SimConfig{Nodes: o.Nodes, Backfill: true}

		real, err := sched.ScheduleCtx(o.Context(), items, simCfg)
		if err != nil {
			return metrics.Summary{}, nil, err
		}
		predPlace := map[int]sched.Placement{}
		if !perfect {
			prionnRuntime := func(id int) int64 {
				p := byID[id]
				if !p.OK {
					return int64(p.Job.RequestedMin) * 60
				}
				return sched.SanitizePredictedSec(float64(p.RuntimeMin)*60, int64(p.Job.RequestedMin)*60)
			}
			results, err := sched.PredictTurnaroundsCtx(o.Context(), items, simCfg, prionnRuntime)
			if err != nil {
				return metrics.Summary{}, nil, err
			}
			for _, r := range results {
				predPlace[r.ID] = r.PredPlacement
			}
		}

		actual, predicted := ioSeriesPair(real, predPlace, byID, !perfect)
		if len(actual) == 0 {
			continue
		}
		allAcc = append(allAcc, ioaware.SeriesAccuracy(actual, predicted)...)

		thr := ioaware.BurstThreshold(actual)
		am := ioaware.BurstMask(actual, thr)
		pm := ioaware.BurstMask(predicted, thr)
		for wi, w := range burstWindows {
			c := ioaware.MatchBursts(am, pm, w/2)
			sweeps[wi].TP += c.TP
			sweeps[wi].FP += c.FP
			sweeps[wi].FN += c.FN
		}
		o.progress("systemIO(perfect=%v): sample %d/%d", perfect, si+1, len(samples))
	}
	return metrics.Summarize(allAcc), sweeps, nil
}

// Fig12 reports system-IO prediction accuracy with perfect turnaround
// knowledge (paper: mean 63.6%, median 55.3%).
func Fig12(o Options) (Result, error) {
	o = o.withDefaults()
	acc, _, err := systemIO(o, true)
	if err != nil {
		return Result{}, err
	}
	res := Result{
		ID:    "fig12",
		Title: "system-IO prediction accuracy, perfect turnaround knowledge",
		Rows: [][]string{
			{"metric", "measured", "paper"},
			{"mean accuracy", fmtPct(acc.Mean), "63.6%"},
			{"median accuracy", fmtPct(acc.Median), "55.3%"},
		},
	}
	return res, nil
}

// Fig13 reports burst sensitivity/precision across window sizes with
// perfect turnaround knowledge (paper: 47.5% sensitivity and 73.9%
// precision at the 5-minute window, both rising with window size).
func Fig13(o Options) (Result, error) {
	o = o.withDefaults()
	_, sweeps, err := systemIO(o, true)
	if err != nil {
		return Result{}, err
	}
	return burstResult("fig13",
		"IO-burst prediction, perfect turnaround knowledge",
		sweeps, "47.5% sens / 73.9% prec @5min"), nil
}

// Fig14 reports system-IO accuracy with predicted turnaround (paper:
// accuracy decreases vs Fig. 12 — mean error up to 36.4%).
func Fig14(o Options) (Result, error) {
	o = o.withDefaults()
	acc, _, err := systemIO(o, false)
	if err != nil {
		return Result{}, err
	}
	res := Result{
		ID:    "fig14",
		Title: "system-IO prediction accuracy, predicted turnaround",
		Rows: [][]string{
			{"metric", "measured", "paper"},
			{"mean accuracy", fmtPct(acc.Mean), "≈63.6% → lower than fig12"},
			{"median accuracy", fmtPct(acc.Median), "—"},
		},
	}
	res.Notes = append(res.Notes,
		"paper: accuracy decreases when predicted turnaround replaces perfect knowledge; top whisker still captures many IO patterns")
	return res, nil
}

// Fig15 reports burst sensitivity/precision with predicted turnaround
// (paper: 55.3% sensitivity and 70.0% precision at the 5-minute window;
// over 50% of bursts predicted).
func Fig15(o Options) (Result, error) {
	o = o.withDefaults()
	_, sweeps, err := systemIO(o, false)
	if err != nil {
		return Result{}, err
	}
	return burstResult("fig15",
		"IO-burst prediction, predicted turnaround",
		sweeps, "55.3% sens / 70.0% prec @5min"), nil
}

// burstResult formats a window sweep.
func burstResult(id, title string, sweeps []metrics.Confusion, paper string) Result {
	res := Result{
		ID:    id,
		Title: title,
		Rows:  [][]string{{"window (min)", "sensitivity", "precision", "TP", "FP", "FN"}},
	}
	for i, w := range burstWindows {
		c := sweeps[i]
		res.Rows = append(res.Rows, []string{
			fmt.Sprint(w), fmtPct(c.Sensitivity()), fmtPct(c.Precision()),
			fmt.Sprint(c.TP), fmt.Sprint(c.FP), fmt.Sprint(c.FN),
		})
	}
	res.Notes = append(res.Notes, "paper @5-minute window: "+paper)
	mono := true
	for i := 1; i < len(burstWindows); i++ {
		if sweeps[i].Sensitivity() < sweeps[i-1].Sensitivity()-1e-12 {
			mono = false
		}
	}
	if mono {
		res.Notes = append(res.Notes, "shape holds: sensitivity non-decreasing with window size")
	} else {
		res.Notes = append(res.Notes, "SHAPE MISMATCH: sensitivity not monotone in window size")
	}
	return res
}
