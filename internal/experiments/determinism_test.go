package experiments

import (
	"testing"

	"prionn/internal/sched"
	"prionn/internal/trace"
)

// TestIOSeriesPairDeterministic pins the map-order fix in ioSeriesPair:
// interval order decides float summation order inside ioaware.Series,
// so iterating the placements map directly made same-seed runs differ
// in the last bits. With sorted IDs the output must be bit-identical
// across repeated calls within one process (each call re-randomizes Go
// map iteration, so repeats genuinely exercise the ordering).
func TestIOSeriesPairDeterministic(t *testing.T) {
	const jobs = 12
	placements := map[int]sched.Placement{}
	predPlacements := map[int]sched.Placement{}
	byID := map[int]JobPred{}
	for i := 0; i < jobs; i++ {
		id := 100 + i
		start := int64(i * 90)
		placements[id] = sched.Placement{ID: id, Start: start, End: start + 600}
		predPlacements[id] = sched.Placement{ID: id, Start: start + 30, End: start + 540}
		byID[id] = JobPred{
			Job: trace.Job{
				ID:         id,
				ActualSec:  600,
				ReadBytes:  int64(1e7 + i*3e5),
				WriteBytes: int64(7e6 + i*1e5),
			},
			RuntimeMin: 9,
			ReadBytes:  1.1e7 + float64(i)*2.7e5,
			WriteBytes: 6.5e6 + float64(i)*1.3e5,
			OK:         true,
		}
	}

	refActual, refPred := ioSeriesPair(placements, predPlacements, byID, true)
	if len(refActual) == 0 || len(refPred) == 0 {
		t.Fatal("empty series from ioSeriesPair")
	}
	for run := 0; run < 25; run++ {
		actual, pred := ioSeriesPair(placements, predPlacements, byID, true)
		for i := range refActual {
			if actual[i] != refActual[i] {
				t.Fatalf("run %d: actual[%d] = %x, want %x (summation order leaked)", run, i, actual[i], refActual[i])
			}
		}
		for i := range refPred {
			if pred[i] != refPred[i] {
				t.Fatalf("run %d: pred[%d] = %x, want %x (summation order leaked)", run, i, pred[i], refPred[i])
			}
		}
	}
}

// TestSameSeedReportByteIdentical is the end-to-end determinism gate:
// two same-seed runs of an experiment must render byte-identical
// reports. Fig8 is the probe because its output has no wall-time
// columns (the timing figures measure wall clock by design).
func TestSameSeedReportByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("trains twice; skipped in -short")
	}
	o := tinyOptions()
	first, err := Fig8(o)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Fig8(o)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := first.String(), second.String(); a != b {
		t.Fatalf("same-seed reports differ:\n--- first ---\n%s\n--- second ---\n%s", a, b)
	}
}
