package experiments

import (
	"context"
	"fmt"
	"runtime/debug"
	"sort"
	"strings"

	"prionn/internal/fault"
)

// Runner executes one experiment.
type Runner func(Options) (Result, error)

// registry maps experiment IDs (DESIGN.md §3) to runners.
var registry = map[string]Runner{
	"fig3":          Fig3,
	"fig4":          Fig4,
	"fig5":          Fig5,
	"fig6":          Fig6,
	"fig7":          Fig7,
	"tab2":          Table2,
	"fig8":          Fig8,
	"fig9":          Fig9,
	"fig11":         Fig11,
	"fig12":         Fig12,
	"fig13":         Fig13,
	"fig14":         Fig14,
	"fig15":         Fig15,
	"ablate-warm":   WarmStartAblation,
	"ext-deck":      ExtDeck,
	"ext-power":     ExtPower,
	"ablate-window": WindowAblation,
	"ablate-layout": LayoutAblation,
	"ablate-crop":   CropAblation,
}

// IDs returns the registered experiment IDs in a stable order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Lookup returns the runner for an experiment ID.
func Lookup(id string) (Runner, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown id %q — valid ids are: %s", id, strings.Join(IDs(), ", "))
	}
	return r, nil
}

// PanicError reports a panic captured while a figure ran. One
// misbehaving runner must not take down the whole report; the harness
// converts its panic into this error and moves on to the next figure.
type PanicError struct {
	ID    string
	Value interface{}
	Stack string
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("experiments: figure %s panicked: %v", e.ID, e.Value)
}

// FailpointFigure is the failpoint name for one figure; arming it (see
// internal/fault) forces that figure to fail with an error or a panic,
// which is how the degraded-report path is exercised end to end.
func FailpointFigure(id string) string { return "experiments/" + id }

// Run executes one experiment by ID.
func Run(id string, o Options) (Result, error) {
	return RunCtx(context.Background(), id, o)
}

// RunCtx executes one experiment by ID with cooperative cancellation:
// ctx flows through Options into the online-training loop and the
// scheduler simulator, which poll it at submission granularity. A panic
// anywhere inside the runner is captured and returned as a *PanicError
// instead of crashing the process.
func RunCtx(ctx context.Context, id string, o Options) (res Result, err error) {
	r, lerr := Lookup(id)
	if lerr != nil {
		return Result{}, lerr
	}
	defer func() {
		if rec := recover(); rec != nil {
			res = Result{}
			err = &PanicError{ID: id, Value: rec, Stack: string(debug.Stack())}
		}
	}()
	if ferr := fault.Here(FailpointFigure(id)); ferr != nil {
		return Result{}, fmt.Errorf("%s: %w", id, ferr)
	}
	return r(o.WithContext(ctx))
}
