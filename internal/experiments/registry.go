package experiments

import (
	"fmt"
	"sort"
)

// Runner executes one experiment.
type Runner func(Options) (Result, error)

// registry maps experiment IDs (DESIGN.md §3) to runners.
var registry = map[string]Runner{
	"fig3":          Fig3,
	"fig4":          Fig4,
	"fig5":          Fig5,
	"fig6":          Fig6,
	"fig7":          Fig7,
	"tab2":          Table2,
	"fig8":          Fig8,
	"fig9":          Fig9,
	"fig11":         Fig11,
	"fig12":         Fig12,
	"fig13":         Fig13,
	"fig14":         Fig14,
	"fig15":         Fig15,
	"ablate-warm":   WarmStartAblation,
	"ext-deck":      ExtDeck,
	"ext-power":     ExtPower,
	"ablate-window": WindowAblation,
	"ablate-layout": LayoutAblation,
	"ablate-crop":   CropAblation,
}

// IDs returns the registered experiment IDs in a stable order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Lookup returns the runner for an experiment ID.
func Lookup(id string) (Runner, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown id %q (known: %v)", id, IDs())
	}
	return r, nil
}

// Run executes one experiment by ID.
func Run(id string, o Options) (Result, error) {
	r, err := Lookup(id)
	if err != nil {
		return Result{}, err
	}
	return r(o)
}
