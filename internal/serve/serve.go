// Package serve is PRIONN's online inference service: it coalesces
// concurrent single-job prediction requests into minibatches so that
// serving throughput rides the batched-GEMM compute core instead of N
// single-sample forwards (paper §2.3's continuous deployment loop, at
// production traffic).
//
// Three mechanisms make it production-shaped:
//
//   - Request coalescing: concurrent Predict calls queue into a bounded
//     admission channel; a single inference loop collects up to
//     Config.MaxBatch of them (waiting at most Config.MaxDelay after
//     the first) and runs one batched map+forward for the whole group.
//     Every response is bitwise identical to what a single-request
//     forward would return — the compute core's reductions are
//     batch-size and worker-count invariant.
//
//   - Bounded admission with backpressure: when the queue is full,
//     Predict fails fast with ErrOverloaded instead of growing an
//     unbounded backlog. Graceful shutdown (Stop) stops admission,
//     drains every already-admitted request, then returns.
//
//   - Atomic snapshot swap: the server holds a read-only
//     prionn.Inference snapshot. A retraining loop publishes new
//     weights with Swap without blocking in-flight inference — the loop
//     picks up the new snapshot at its next flush. Because the nn
//     layers cache per-call state even during inference, all forwards
//     are confined to the single inference loop; snapshots make the
//     swap safe without any lock on the hot path.
package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"prionn/internal/fault"
	"prionn/internal/prionn"
)

// ErrOverloaded is returned by Predict when the admission queue is
// full. The request was not enqueued; the caller owns retry policy
// (shed, backoff, or block).
var ErrOverloaded = errors.New("serve: admission queue full")

// ErrStopped is returned by Predict after Stop has begun: the server
// no longer admits new requests.
var ErrStopped = errors.New("serve: server stopped")

// Failpoint names compiled into the serving path; tests arm them to
// inject admission failures and slow or failing forward passes.
const (
	// FailpointAdmit fires in Predict before a request is enqueued.
	FailpointAdmit = "serve/admit"
	// FailpointFlush fires in the inference loop before each batch's
	// map+forward. Armed with Sleep it emulates a slow forward pass
	// (the overload scenario); armed with Err the whole batch completes
	// with that error.
	FailpointFlush = "serve/flush"
)

// Config tunes the server. The zero value gets sensible defaults from
// New.
type Config struct {
	// MaxBatch is the largest coalesced minibatch (default 64).
	MaxBatch int
	// MaxDelay bounds how long the first request of a batch waits for
	// company before the batch is flushed anyway (default 2ms).
	MaxDelay time.Duration
	// QueueDepth is the admission-queue capacity — the backpressure
	// bound. Requests beyond it get ErrOverloaded (default 4×MaxBatch).
	QueueDepth int
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = 2 * time.Millisecond
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.MaxBatch
	}
	return c
}

// Request is one job to predict at submission time.
type Request struct {
	// Script is the job script text.
	Script string
	// InputDeck is the optional application input deck, appended to the
	// script when the model was configured with IncludeDeck.
	InputDeck string
	// RequestedMin is the user-requested runtime in minutes — the
	// fallback prediction while no trained model is published (the
	// paper's pre-first-training behaviour).
	RequestedMin int
}

// Response is the served prediction.
type Response struct {
	Pred prionn.Prediction
	// FromModel is false when the prediction is the requested-runtime
	// fallback (no trained snapshot was published at flush time).
	FromModel bool
}

// pending is one admitted request waiting for its flush.
type pending struct {
	req  Request
	resp Response
	err  error
	done chan struct{} // closed exactly once, after resp/err are set
}

// Server coalesces concurrent prediction requests into batched forwards
// over an atomically swappable model snapshot. Create with New; all
// methods are safe for concurrent use.
type Server struct {
	cfg  Config
	view atomic.Pointer[prionn.Inference]

	// mu guards stopped against the enqueue in Predict: Stop takes the
	// write lock, so no sender can be mid-send when the queue closes.
	mu      sync.RWMutex
	stopped bool

	queue    chan *pending
	loopDone chan struct{}

	st stats
}

// New starts a server over the given snapshot (nil is allowed: every
// request is served from the requested-runtime fallback until Swap
// publishes a trained snapshot). The inference loop goroutine runs
// until Stop.
func New(view *prionn.Inference, cfg Config) *Server {
	s := &Server{
		cfg:      cfg.withDefaults(),
		queue:    make(chan *pending, cfg.withDefaults().QueueDepth),
		loopDone: make(chan struct{}),
	}
	if view != nil {
		s.view.Store(view)
	}
	//prionnvet:ignore naked-goroutine -- joined via s.loopDone, closed by loop and received in Stop
	go s.loop()
	return s
}

// Swap atomically publishes a new model snapshot and returns the
// previous one (nil if none was set). In-flight batches finish on the
// snapshot they loaded; the next flush uses the new one. Swap never
// blocks on inference.
func (s *Server) Swap(v *prionn.Inference) *prionn.Inference {
	s.st.swaps.Add(1)
	if v == nil {
		return s.view.Swap(nil)
	}
	return s.view.Swap(v)
}

// View returns the currently published snapshot (nil if none).
func (s *Server) View() *prionn.Inference { return s.view.Load() }

// Stats returns a point-in-time copy of the serving counters, stamped
// with the published snapshot's kernel kind.
func (s *Server) Stats() Snapshot {
	sn := s.st.snapshot()
	if v := s.view.Load(); v != nil {
		sn.Kernel = string(v.Kernel())
	} else {
		sn.Kernel = string(prionn.KernelF32)
	}
	return sn
}

// Predict submits one job for prediction and blocks until the
// coalesced batch containing it is served, the context is canceled, or
// the server refuses admission. A context cancellation abandons the
// wait but not the work: an already-admitted request is still flushed
// (its response is discarded), so cancellation never corrupts a batch.
func (s *Server) Predict(ctx context.Context, req Request) (Response, error) {
	if err := ctx.Err(); err != nil {
		s.st.recordCtxErr(err)
		return Response{}, err
	}
	if err := fault.Here(FailpointAdmit); err != nil {
		s.st.rejected.Add(1)
		return Response{}, err
	}
	p := &pending{req: req, done: make(chan struct{})}

	s.mu.RLock()
	if s.stopped {
		s.mu.RUnlock()
		s.st.rejected.Add(1)
		return Response{}, ErrStopped
	}
	select {
	case s.queue <- p:
		s.mu.RUnlock()
		s.st.admitted.Add(1)
		s.st.queueDepth.Add(1)
	default:
		s.mu.RUnlock()
		s.st.rejected.Add(1)
		return Response{}, ErrOverloaded
	}

	select {
	case <-p.done:
		return p.resp, p.err
	case <-ctx.Done():
		err := ctx.Err()
		s.st.recordCtxErr(err)
		return Response{}, err
	}
}

// Stop shuts the server down gracefully: admission closes immediately
// (subsequent Predicts get ErrStopped), every already-admitted request
// is flushed and answered, and the inference loop exits. The context
// bounds how long to wait for the drain; on cancellation the drain
// keeps running in the background and a later Stop call can wait for
// it again. Stop is idempotent.
func (s *Server) Stop(ctx context.Context) error {
	s.mu.Lock()
	first := !s.stopped
	s.stopped = true
	s.mu.Unlock()
	if first {
		// No sender can be in the enqueue select here: each holds the
		// read lock across it and re-checks stopped after Stop's write
		// lock section, so closing the queue is race-free.
		close(s.queue)
	}
	select {
	case <-s.loopDone:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// loop is the single inference goroutine: it owns every forward pass,
// which is what makes the layer-cache-mutating nn forwards safe under
// concurrent callers. It exits when the queue is closed and drained,
// then signals loopDone.
func (s *Server) loop() {
	defer close(s.loopDone)
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	batch := make([]*pending, 0, s.cfg.MaxBatch)
	for first := range s.queue {
		batch = append(batch[:0], first)
		timer.Reset(s.cfg.MaxDelay)
	collect:
		for len(batch) < s.cfg.MaxBatch {
			//prionnvet:ignore nondet-select -- batch composition is timing-dependent by design; per-request responses are batch-invariant (bitwise), so coalescing order never changes any output
			select {
			case p, ok := <-s.queue:
				if !ok {
					break collect // closed and drained; flush what we hold
				}
				batch = append(batch, p)
			case <-timer.C:
				break collect
			}
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		s.flush(batch)
	}
}

// flush serves one coalesced batch: a single batched map+forward on the
// current snapshot, or the requested-runtime fallback when no trained
// snapshot is published.
func (s *Server) flush(batch []*pending) {
	s.st.queueDepth.Add(-int64(len(batch)))
	finish := func() {
		for _, p := range batch {
			close(p.done)
		}
	}

	if err := fault.Here(FailpointFlush); err != nil {
		s.st.errored.Add(int64(len(batch)))
		s.st.recordBatch(len(batch), 0, 0)
		for _, p := range batch {
			p.err = err
		}
		finish()
		return
	}

	v := s.view.Load()
	if v == nil || !v.Trained() {
		// Pre-first-training: the paper's deployment serves the user's
		// requested runtime until the first model is trained. Emitting
		// the untrained heads' forward output here would be silent
		// garbage — He-init noise unrelated to the job.
		s.st.fallback.Add(int64(len(batch)))
		s.st.recordBatch(len(batch), 0, 0)
		for _, p := range batch {
			p.resp = Response{Pred: prionn.Prediction{RuntimeMin: p.req.RequestedMin}}
		}
		finish()
		return
	}

	texts := make([]string, len(batch))
	for i, p := range batch {
		texts[i] = v.InputText(p.req.Script, p.req.InputDeck)
	}
	//prionnvet:ignore time-dep -- serving latency counters are wall-clock metrics by design
	t0 := time.Now()
	x := v.MapTexts(texts)
	//prionnvet:ignore time-dep -- serving latency counters are wall-clock metrics by design
	mapDur := time.Since(t0)
	t1 := time.Now()
	preds := v.PredictMapped(x)
	//prionnvet:ignore time-dep -- serving latency counters are wall-clock metrics by design
	forwardDur := time.Since(t1)

	s.st.served.Add(int64(len(batch)))
	s.st.recordBatch(len(batch), mapDur, forwardDur)
	for i, p := range batch {
		p.resp = Response{Pred: preds[i], FromModel: true}
	}
	finish()
}
