package serve

import (
	"bytes"
	"context"
	"sync"
	"testing"
	"time"

	"prionn/internal/prionn"
	"prionn/internal/trace"
)

// The quantized-serving pair behind BENCH_quant.json: the same 64
// concurrent coalesced clients, served from a float32 snapshot or its
// int8 quantization. Unlike the coalescing pair above, this fixture is
// the conv-dominated 2D-CNN at FastConfig scale (32×32 job images),
// because that is where the integer GEMM earns its keep: conv forwards
// are large GEMMs whose int8 path moves a quarter of the bytes and
// packs four multiply-adds per lane. ns/op is per prediction, so
// int8_speedup = f32 ns_op / int8 ns_op.
//
// Each benchmark reports its snapshot's persisted byte size
// (snap-bytes); the int8 run additionally reports the class-level
// disagreement rate vs float32 over the bench scripts (disagree-rate —
// predictions are decoded class values, so two snapshots disagree iff
// some head picked a different class).
var (
	quantBenchOnce sync.Once
	quantBenchErr  error
	quantBenchF32  *prionn.Inference
	quantBenchInt8 *prionn.Inference
	quantBenchJobs []trace.Job
	quantF32Bytes  int
	quantInt8Bytes int
	quantDisagree  float64
)

func quantBenchViews(b *testing.B) (*prionn.Inference, *prionn.Inference) {
	b.Helper()
	quantBenchOnce.Do(func() {
		// One epoch over a short window: the benchmark measures forward
		// throughput, not accuracy, and FastConfig training is the setup
		// cost every quant benchmark in the package shares.
		cfg := prionn.FastConfig()
		cfg.Seed = 3
		cfg.Epochs = 1
		cfg.TrainWindow = 40
		jobs := trace.Completed(trace.Generate(trace.Config{Seed: 3, Jobs: 120}))
		scripts := make([]string, len(jobs))
		for i, j := range jobs {
			scripts[i] = j.Script
		}
		p, err := prionn.New(cfg, scripts)
		if err != nil {
			quantBenchErr = err
			return
		}
		if _, err := p.Train(jobs[:40]); err != nil {
			quantBenchErr = err
			return
		}
		if quantBenchF32, err = p.Snapshot(); err != nil {
			quantBenchErr = err
			return
		}
		if quantBenchInt8, err = p.SnapshotQuantized(jobs[40:80]); err != nil {
			quantBenchErr = err
			return
		}
		var fbuf, qbuf bytes.Buffer
		if err := p.Save(&fbuf); err != nil {
			quantBenchErr = err
			return
		}
		if err := quantBenchInt8.SaveQuantized(&qbuf); err != nil {
			quantBenchErr = err
			return
		}
		quantF32Bytes, quantInt8Bytes = fbuf.Len(), qbuf.Len()
		quantBenchJobs = jobs
		disagree := 0
		for _, j := range jobs {
			if quantBenchF32.PredictOne(j.Script) != quantBenchInt8.PredictOne(j.Script) {
				disagree++
			}
		}
		quantDisagree = float64(disagree) / float64(len(jobs))
	})
	if quantBenchErr != nil {
		b.Fatal(quantBenchErr)
	}
	return quantBenchF32, quantBenchInt8
}

func quantBenchScripts(b *testing.B) []string {
	quantBenchViews(b)
	scripts := make([]string, 256)
	for i := range scripts {
		scripts[i] = quantBenchJobs[i%len(quantBenchJobs)].Script
	}
	return scripts
}

// benchQuantServe drives b.N predictions from 64 concurrent coalesced
// clients through a server over the given snapshot.
func benchQuantServe(b *testing.B, v *prionn.Inference, snapBytes int) {
	scripts := quantBenchScripts(b)
	s := New(v, Config{
		MaxBatch:   benchClients,
		MaxDelay:   500 * time.Microsecond,
		QueueDepth: 4 * benchClients,
	})
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	runClients(b.N, benchClients, func(i int) {
		if _, err := s.Predict(ctx, Request{Script: scripts[i%len(scripts)]}); err != nil {
			b.Error(err)
		}
	})
	b.StopTimer()
	if err := s.Stop(ctx); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(snapBytes), "snap-bytes")
}

// BenchmarkQuantServeF32 is the float32 baseline on the conv-dominated
// fixture.
func BenchmarkQuantServeF32(b *testing.B) {
	f32, _ := quantBenchViews(b)
	benchQuantServe(b, f32, quantF32Bytes)
}

// BenchmarkQuantServeInt8 is the same load on the int8 snapshot. The
// acceptance target is ≥2x predictions/sec over BenchmarkQuantServeF32.
func BenchmarkQuantServeInt8(b *testing.B) {
	_, int8v := quantBenchViews(b)
	benchQuantServe(b, int8v, quantInt8Bytes)
	b.ReportMetric(quantDisagree, "disagree-rate")
}
