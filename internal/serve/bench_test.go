package serve

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"prionn/internal/prionn"
	"prionn/internal/trace"
)

// The serving-throughput pair behind BENCH_serve.json: the same 64
// concurrent clients, served either one request at a time (the
// pre-serve deployment, where every consumer calls PredictOne and
// forwards are batch-1) or through the coalescer (requests ride the
// batched-GEMM path). ns/op is per prediction, so predictions/sec =
// 1e9 / ns_op and the coalescing speedup is the ratio of the two.
//
// The benchmark model is the paper's fully connected NN (§2.2), not
// the 2D-CNN the correctness tests use, because the dense architecture
// is where coalescing pays: a batch-1 dense forward is a matrix-vector
// product that streams the entire weight matrix from memory per
// sample, while a batch-64 forward reuses each weight panel across the
// whole batch in one GEMM (~7x per-sample on a single core). Conv
// forwards are already large weight-reusing GEMMs at batch 1 (im2col
// rows = output spatial positions), so they only gain the per-call
// overhead amortization (~1.7x) on a machine with no spare cores.

const benchClients = 64

// Separate fixture from trainedViews: same trace and training window,
// dense model.
var (
	benchOnce sync.Once
	benchErr  error
	benchView *prionn.Inference
	benchJobs []trace.Job
)

func benchTrainedView(b *testing.B) (*prionn.Inference, []trace.Job) {
	b.Helper()
	benchOnce.Do(func() {
		cfg := prionn.TinyConfig()
		cfg.Model = prionn.ModelNN
		jobs := trace.Completed(trace.Generate(trace.Config{Seed: 3, Jobs: 120}))
		scripts := make([]string, len(jobs))
		for i, j := range jobs {
			scripts[i] = j.Script
		}
		p, err := prionn.New(cfg, scripts)
		if err != nil {
			benchErr = err
			return
		}
		if _, err := p.Train(jobs[:40]); err != nil {
			benchErr = err
			return
		}
		if benchView, err = p.Snapshot(); err != nil {
			benchErr = err
			return
		}
		benchJobs = jobs
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchView, benchJobs
}

// runClients fans total calls of fn across the client pool and joins.
func runClients(total, clients int, fn func(i int)) {
	var next atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= total {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

func benchScripts(b *testing.B) []string {
	_, jobs := benchTrainedView(b)
	scripts := make([]string, 256)
	for i := range scripts {
		scripts[i] = jobs[i%len(jobs)].Script
	}
	return scripts
}

// BenchmarkServeSequential64Clients is the baseline: concurrent callers
// serialized over single-request forwards (batch 1), which is how every
// consumer used the predictor before the serving layer existed. The
// mutex mirrors the Predict concurrency contract — forwards mutate
// layer caches, so naive callers must serialize.
func BenchmarkServeSequential64Clients(b *testing.B) {
	v, _ := benchTrainedView(b)
	scripts := benchScripts(b)
	var mu sync.Mutex
	b.ReportAllocs()
	b.ResetTimer()
	runClients(b.N, benchClients, func(i int) {
		mu.Lock()
		_ = v.PredictOne(scripts[i%len(scripts)])
		mu.Unlock()
	})
}

// BenchmarkServeCoalesced64Clients routes the same concurrent load
// through the coalescer: requests group into minibatches (up to 64) and
// each flush is one batched map+forward on the blocked-GEMM core.
func BenchmarkServeCoalesced64Clients(b *testing.B) {
	v, _ := benchTrainedView(b)
	scripts := benchScripts(b)
	s := New(v, Config{
		MaxBatch: benchClients,
		MaxDelay: 500 * time.Microsecond,
		// Deep enough that 64 clients with one outstanding request each
		// can never trip backpressure — this benchmark measures
		// throughput, not shedding.
		QueueDepth: 4 * benchClients,
	})
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	runClients(b.N, benchClients, func(i int) {
		if _, err := s.Predict(ctx, Request{Script: scripts[i%len(scripts)]}); err != nil {
			b.Error(err)
		}
	})
	b.StopTimer()
	if err := s.Stop(ctx); err != nil {
		b.Fatal(err)
	}
	snap := s.Stats()
	b.ReportMetric(snap.MeanBatch(), "batch-size")
}
