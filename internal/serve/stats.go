package serve

import (
	"context"
	"errors"
	"fmt"
	"math/bits"
	"strings"
	"sync/atomic"
	"time"
)

// batchBuckets is the number of power-of-two batch-size histogram
// buckets: bucket i counts flushes of size in (2^(i-1), 2^i], so bucket
// 0 is exactly size 1 and bucket 11 covers up to 2048 — far above any
// sane MaxBatch.
const batchBuckets = 12

// stats is the server's hot-path counter block. Every field is atomic:
// the flush loop, the admission path, and Stats() readers touch them
// concurrently without locks.
type stats struct {
	admitted atomic.Int64 // requests accepted into the queue
	rejected atomic.Int64 // requests refused with ErrOverloaded
	served   atomic.Int64 // predictions returned from model forwards
	fallback atomic.Int64 // predictions served from the requested-runtime fallback
	errored  atomic.Int64 // requests completed with an error (injected faults)
	canceled atomic.Int64 // waits abandoned because the request context was canceled
	deadline atomic.Int64 // waits abandoned because the request context deadline expired

	batches    atomic.Int64 // coalesced flushes executed
	swaps      atomic.Int64 // snapshot swaps published
	queueDepth atomic.Int64 // requests admitted but not yet flushed

	mapNs     atomic.Int64 // cumulative mapping-stage wall time
	forwardNs atomic.Int64 // cumulative forward-stage wall time

	batchHist [batchBuckets]atomic.Int64
}

// histBucket maps a batch size to its histogram bucket.
func histBucket(n int) int {
	if n < 1 {
		n = 1
	}
	b := bits.Len(uint(n - 1))
	if b >= batchBuckets {
		b = batchBuckets - 1
	}
	return b
}

// recordCtxErr classifies an abandoned wait by its context error.
func (s *stats) recordCtxErr(err error) {
	if errors.Is(err, context.DeadlineExceeded) {
		s.deadline.Add(1)
		return
	}
	s.canceled.Add(1)
}

// recordBatch folds one flushed batch into the counters.
func (s *stats) recordBatch(size int, mapDur, forwardDur time.Duration) {
	s.batches.Add(1)
	s.batchHist[histBucket(size)].Add(1)
	s.mapNs.Add(int64(mapDur))
	s.forwardNs.Add(int64(forwardDur))
}

// Snapshot is an expvar-style point-in-time copy of the serving
// counters, safe to marshal, print, or diff against an earlier one.
type Snapshot struct {
	// Kernel is the published snapshot's serving kernel kind ("f32" or
	// "int8"; a server with no published snapshot reports "f32", the
	// default path a future Swap would have to beat).
	Kernel string `json:"kernel"`

	Admitted int64 `json:"admitted"`
	Rejected int64 `json:"rejected"`
	Served   int64 `json:"served"`
	Fallback int64 `json:"fallback"`
	Errored  int64 `json:"errored"`

	// Canceled and DeadlineExceeded count Predict calls whose caller
	// abandoned the wait (context canceled / deadline expired) before the
	// response arrived. An admitted request is still flushed with its
	// batch — these count abandoned waits, not lost work, and they make
	// context-abandoned traffic visible in /stats instead of silently
	// disappearing from the served/fallback totals.
	Canceled         int64 `json:"canceled"`
	DeadlineExceeded int64 `json:"deadline_exceeded"`

	Batches    int64 `json:"batches"`
	Swaps      int64 `json:"swaps"`
	QueueDepth int64 `json:"queue_depth"`

	MapNs     int64 `json:"map_ns"`
	ForwardNs int64 `json:"forward_ns"`

	// BatchHist[i] counts flushes with batch size in (2^(i-1), 2^i];
	// BatchHist[0] counts single-request flushes.
	BatchHist [batchBuckets]int64 `json:"batch_hist"`
}

// snapshot copies the counters. Individual loads are atomic; the copy
// as a whole is not a consistent cut, which is fine for monitoring.
func (s *stats) snapshot() Snapshot {
	var out Snapshot
	out.Admitted = s.admitted.Load()
	out.Rejected = s.rejected.Load()
	out.Served = s.served.Load()
	out.Fallback = s.fallback.Load()
	out.Errored = s.errored.Load()
	out.Canceled = s.canceled.Load()
	out.DeadlineExceeded = s.deadline.Load()
	out.Batches = s.batches.Load()
	out.Swaps = s.swaps.Load()
	out.QueueDepth = s.queueDepth.Load()
	out.MapNs = s.mapNs.Load()
	out.ForwardNs = s.forwardNs.Load()
	for i := range out.BatchHist {
		out.BatchHist[i] = s.batchHist[i].Load()
	}
	return out
}

// MeanBatch returns the mean coalesced batch size.
func (sn Snapshot) MeanBatch() float64 {
	if sn.Batches == 0 {
		return 0
	}
	return float64(sn.Served+sn.Fallback+sn.Errored) / float64(sn.Batches)
}

// String renders the snapshot as the multi-line block `prionnd -stats`
// prints.
func (sn Snapshot) String() string {
	var b strings.Builder
	kernel := ""
	if sn.Kernel != "" {
		kernel = "[" + sn.Kernel + "] "
	}
	fmt.Fprintf(&b, "%sserved %d (model) + %d (fallback), %d errored; admitted %d, rejected %d\n",
		kernel, sn.Served, sn.Fallback, sn.Errored, sn.Admitted, sn.Rejected)
	if sn.Canceled > 0 || sn.DeadlineExceeded > 0 {
		fmt.Fprintf(&b, "abandoned waits: %d canceled, %d deadline-exceeded\n",
			sn.Canceled, sn.DeadlineExceeded)
	}
	fmt.Fprintf(&b, "batches %d (mean size %.1f), queue depth %d, swaps %d\n",
		sn.Batches, sn.MeanBatch(), sn.QueueDepth, sn.Swaps)
	if sn.Batches > 0 {
		perBatchMap := time.Duration(sn.MapNs / sn.Batches)
		perBatchFwd := time.Duration(sn.ForwardNs / sn.Batches)
		fmt.Fprintf(&b, "per-batch latency: map %v, forward %v\n", perBatchMap, perBatchFwd)
	}
	b.WriteString("batch-size histogram:")
	for i, c := range sn.BatchHist {
		if c == 0 {
			continue
		}
		lo, hi := 1, 1<<i
		if i > 0 {
			lo = 1<<(i-1) + 1
		}
		if lo == hi {
			fmt.Fprintf(&b, " %d:%d", hi, c)
		} else {
			fmt.Fprintf(&b, " %d-%d:%d", lo, hi, c)
		}
	}
	b.WriteString("\n")
	return b.String()
}
