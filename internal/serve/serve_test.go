package serve

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"prionn/internal/fault"
	"prionn/internal/prionn"
	"prionn/internal/trace"
)

// Shared trained snapshots: training even a tiny predictor dominates
// test wall time, so every test reuses one setup. The two views come
// from different training points, so Swap tests can observe a real
// weight change.
var (
	setupOnce sync.Once
	setupErr  error
	view1     *prionn.Inference
	view2     *prionn.Inference
	testJobs  []trace.Job
)

func trainedViews(t testing.TB) (*prionn.Inference, *prionn.Inference, []trace.Job) {
	t.Helper()
	setupOnce.Do(func() {
		cfg := prionn.TinyConfig()
		jobs := trace.Completed(trace.Generate(trace.Config{Seed: 3, Jobs: 120}))
		scripts := make([]string, len(jobs))
		for i, j := range jobs {
			scripts[i] = j.Script
		}
		p, err := prionn.New(cfg, scripts)
		if err != nil {
			setupErr = err
			return
		}
		if _, err := p.Train(jobs[:40]); err != nil {
			setupErr = err
			return
		}
		if view1, err = p.Snapshot(); err != nil {
			setupErr = err
			return
		}
		if _, err := p.Train(jobs[40:80]); err != nil {
			setupErr = err
			return
		}
		if view2, err = p.Snapshot(); err != nil {
			setupErr = err
			return
		}
		testJobs = jobs
	})
	if setupErr != nil {
		t.Fatal(setupErr)
	}
	return view1, view2, testJobs
}

// TestServeBatchedBitwiseIdenticalToSingle is the core correctness claim of
// the coalescer: a prediction served from a coalesced minibatch must be
// bitwise identical to the one a single-request forward returns. The
// first flush is stalled with a latency failpoint so the remaining
// requests genuinely coalesce.
func TestServeBatchedBitwiseIdenticalToSingle(t *testing.T) {
	v, _, jobs := trainedViews(t)
	const n = 16
	want := make([]prionn.Prediction, n)
	for i := 0; i < n; i++ {
		// Reference: single-request forward, computed before the server
		// owns the view.
		want[i] = v.PredictOne(jobs[i].Script)
	}

	defer fault.DisarmAll()
	fault.Arm(FailpointFlush, fault.Failure{Sleep: 30 * time.Millisecond})

	s := New(v, Config{MaxBatch: n, MaxDelay: 2 * time.Millisecond, QueueDepth: 2 * n})
	got := make([]Response, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], errs[i] = s.Predict(context.Background(), Request{Script: jobs[i].Script})
		}(i)
	}
	wg.Wait()
	if err := s.Stop(context.Background()); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if !got[i].FromModel {
			t.Fatalf("request %d served from fallback, want model", i)
		}
		if got[i].Pred != want[i] {
			t.Fatalf("request %d: coalesced %+v != single-request %+v", i, got[i].Pred, want[i])
		}
	}
	snap := s.Stats()
	if snap.Served != n || snap.Admitted != n {
		t.Fatalf("stats served=%d admitted=%d, want %d", snap.Served, snap.Admitted, n)
	}
	// The stalled first flush lets the rest coalesce: far fewer batches
	// than requests proves the minibatch path actually ran.
	if snap.Batches >= n {
		t.Fatalf("no coalescing happened: %d batches for %d requests", snap.Batches, n)
	}
}

// TestServeUntrainedFallback: with no trained snapshot published, the
// server must return the user-requested runtime (the paper's
// pre-first-training behaviour), never the untrained heads' noise.
// Publishing a trained snapshot via Swap switches to model serving
// without a restart.
func TestServeUntrainedFallback(t *testing.T) {
	v, _, jobs := trainedViews(t)
	s := New(nil, Config{MaxBatch: 4, MaxDelay: time.Millisecond})
	defer s.Stop(context.Background())

	resp, err := s.Predict(context.Background(), Request{Script: jobs[0].Script, RequestedMin: 240})
	if err != nil {
		t.Fatal(err)
	}
	if resp.FromModel {
		t.Fatal("untrained server claimed a model prediction")
	}
	if resp.Pred.RuntimeMin != 240 {
		t.Fatalf("fallback runtime %d, want the requested 240", resp.Pred.RuntimeMin)
	}
	if resp.Pred.ReadBytes != 0 || resp.Pred.WriteBytes != 0 {
		t.Fatalf("fallback must not invent IO: %+v", resp.Pred)
	}

	if old := s.Swap(v); old != nil {
		t.Fatalf("first Swap returned %v, want nil previous snapshot", old)
	}
	resp, err = s.Predict(context.Background(), Request{Script: jobs[0].Script, RequestedMin: 240})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.FromModel {
		t.Fatal("after Swap the server must serve from the model")
	}
	if want := v.PredictOne(jobs[0].Script); resp.Pred != want {
		t.Fatalf("post-swap prediction %+v, want %+v", resp.Pred, want)
	}
	if snap := s.Stats(); snap.Fallback != 1 || snap.Served != 1 || snap.Swaps != 1 {
		t.Fatalf("stats %+v: want 1 fallback, 1 served, 1 swap", snap)
	}
}

// TestServeOverloadBoundedQueue: under injected slow forward passes the
// admission queue must stay bounded — excess requests fail fast with
// ErrOverloaded — and every admitted request must still be answered.
func TestServeOverloadBoundedQueue(t *testing.T) {
	defer fault.DisarmAll()
	fault.Arm(FailpointFlush, fault.Failure{Sleep: 40 * time.Millisecond})

	const clients = 24
	s := New(nil, Config{MaxBatch: 1, MaxDelay: time.Millisecond, QueueDepth: 2})

	var wg sync.WaitGroup
	results := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := s.Predict(context.Background(), Request{Script: "x", RequestedMin: 7})
			if err == nil && resp.Pred.RuntimeMin != 7 {
				err = errors.New("admitted request served a corrupt response")
			}
			results[i] = err
		}(i)
	}
	wg.Wait()
	if err := s.Stop(context.Background()); err != nil {
		t.Fatal(err)
	}

	var ok, overloaded int
	for i, err := range results {
		switch {
		case err == nil:
			ok++
		case errors.Is(err, ErrOverloaded):
			overloaded++
		default:
			t.Fatalf("request %d: unexpected error %v", i, err)
		}
	}
	if ok+overloaded != clients {
		t.Fatalf("ok %d + overloaded %d != %d clients", ok, overloaded, clients)
	}
	if overloaded == 0 {
		t.Fatal("queue depth 2 with 24 clients and 40ms flushes must shed load")
	}
	snap := s.Stats()
	if snap.Admitted != int64(ok) || snap.Rejected != int64(overloaded) {
		t.Fatalf("stats admitted=%d rejected=%d, want %d/%d", snap.Admitted, snap.Rejected, ok, overloaded)
	}
	// Bounded queue: every admitted request was answered; none left.
	if snap.QueueDepth != 0 {
		t.Fatalf("queue depth %d after drain, want 0", snap.QueueDepth)
	}
	if snap.Fallback != int64(ok) {
		t.Fatalf("fallback served %d, want %d (all admitted)", snap.Fallback, ok)
	}
}

// TestServeGracefulDrainNoDrops: Stop must answer every already-admitted
// request before the loop exits — shutdown sheds new load but never
// drops in-flight work.
func TestServeGracefulDrainNoDrops(t *testing.T) {
	defer fault.DisarmAll()
	fault.Arm(FailpointFlush, fault.Failure{Sleep: 30 * time.Millisecond})

	const queued = 4
	s := New(nil, Config{MaxBatch: 1, MaxDelay: time.Millisecond, QueueDepth: queued + 1})
	var wg sync.WaitGroup
	results := make([]error, queued)
	for i := 0; i < queued; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, results[i] = s.Predict(context.Background(), Request{Script: "y", RequestedMin: 3})
		}(i)
	}
	// Wait until all four are admitted (the first may already be mid-flush).
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Admitted < queued {
		if time.Now().After(deadline) {
			t.Fatalf("only %d admitted", s.Stats().Admitted)
		}
		time.Sleep(time.Millisecond)
	}

	if err := s.Stop(context.Background()); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	for i, err := range results {
		if err != nil {
			t.Fatalf("admitted request %d dropped during drain: %v", i, err)
		}
	}
	if _, err := s.Predict(context.Background(), Request{Script: "z"}); !errors.Is(err, ErrStopped) {
		t.Fatalf("post-Stop Predict: got %v, want ErrStopped", err)
	}
	// Idempotent Stop.
	if err := s.Stop(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestServeStopDrainTimeout: a context that expires mid-drain surfaces
// its error while the drain keeps running; a later Stop can still wait
// for completion.
func TestServeStopDrainTimeout(t *testing.T) {
	defer fault.DisarmAll()
	fault.Arm(FailpointFlush, fault.Failure{Sleep: 50 * time.Millisecond})

	s := New(nil, Config{MaxBatch: 1, MaxDelay: time.Millisecond, QueueDepth: 4})
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _ = s.Predict(context.Background(), Request{Script: "w"})
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Admitted < 3 {
		if time.Now().After(deadline) {
			t.Fatal("requests not admitted")
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	if err := s.Stop(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("rushed Stop: got %v, want deadline exceeded", err)
	}
	if err := s.Stop(context.Background()); err != nil {
		t.Fatalf("second Stop: %v", err)
	}
	wg.Wait()
}

// TestServePredictContextCancel: a caller that gives up stops waiting
// immediately; the admitted request is still flushed without
// corrupting its batch.
func TestServePredictContextCancel(t *testing.T) {
	defer fault.DisarmAll()
	fault.Arm(FailpointFlush, fault.Failure{Sleep: 30 * time.Millisecond})

	s := New(nil, Config{MaxBatch: 1, MaxDelay: time.Millisecond, QueueDepth: 4})
	defer s.Stop(context.Background())

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := s.Predict(ctx, Request{Script: "c"})
		done <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Admitted < 1 {
		if time.Now().After(deadline) {
			t.Fatal("request not admitted")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

// TestServeConcurrentPredictSwap hammers Predict, Swap, and Stats from
// many goroutines — the -race target for the snapshot-swap design.
func TestServeConcurrentPredictSwap(t *testing.T) {
	v1, v2, jobs := trainedViews(t)
	s := New(v1, Config{MaxBatch: 8, MaxDelay: 500 * time.Microsecond, QueueDepth: 64})

	const clients = 8
	const perClient = 25
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				script := jobs[(c*perClient+i)%len(jobs)].Script
				resp, err := s.Predict(context.Background(), Request{Script: script, RequestedMin: 5})
				if errors.Is(err, ErrOverloaded) {
					continue // backpressure is a legal outcome under hammering
				}
				if err != nil {
					t.Errorf("client %d: %v", c, err)
					return
				}
				if !resp.FromModel {
					t.Errorf("client %d: fallback response with a trained view published", c)
					return
				}
			}
		}(c)
	}
	swapDone := make(chan struct{})
	go func() {
		defer close(swapDone)
		views := [2]*prionn.Inference{v1, v2}
		for i := 0; i < 100; i++ {
			s.Swap(views[i%2])
			_ = s.Stats()
		}
	}()
	wg.Wait()
	<-swapDone
	if err := s.Stop(context.Background()); err != nil {
		t.Fatal(err)
	}
	snap := s.Stats()
	if snap.Swaps != 100 {
		t.Fatalf("swaps %d, want 100", snap.Swaps)
	}
	if snap.Served+snap.Rejected != clients*perClient {
		t.Fatalf("served %d + rejected %d != %d", snap.Served, snap.Rejected, clients*perClient)
	}
}

// TestServeSwapDoesNotMixBatches: every prediction must come wholly
// from one snapshot — a response equals either v1's or v2's
// single-request prediction, never a blend.
func TestServeSwapDoesNotMixBatches(t *testing.T) {
	v1, v2, jobs := trainedViews(t)
	script := jobs[0].Script
	want1 := v1.PredictOne(script)
	want2 := v2.PredictOne(script)

	s := New(v1, Config{MaxBatch: 4, MaxDelay: 500 * time.Microsecond, QueueDepth: 32})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			s.Swap(v1)
			s.Swap(v2)
		}
	}()
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				resp, err := s.Predict(context.Background(), Request{Script: script})
				if errors.Is(err, ErrOverloaded) {
					continue
				}
				if err != nil {
					t.Errorf("predict: %v", err)
					return
				}
				if resp.Pred != want1 && resp.Pred != want2 {
					t.Errorf("prediction %+v matches neither snapshot (%+v / %+v)", resp.Pred, want1, want2)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	if err := s.Stop(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestHistBucket(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 64: 6, 65: 7, 1 << 20: batchBuckets - 1}
	for n, want := range cases {
		if got := histBucket(n); got != want {
			t.Errorf("histBucket(%d) = %d, want %d", n, got, want)
		}
	}
}

// TestServeStopRacesPredictSwapExactlyOnce is the drain pinning test:
// Stop races concurrent Predict and Swap traffic, with latency
// failpoints at the admission and flush sites widening the race
// windows. Every request admitted before the drain must be answered
// exactly once with a snapshot-pure prediction; everything after gets
// ErrStopped; nothing hangs and nothing is double-answered.
func TestServeStopRacesPredictSwapExactlyOnce(t *testing.T) {
	v1, v2, jobs := trainedViews(t)
	script := jobs[2].Script
	want1 := v1.PredictOne(script)
	want2 := v2.PredictOne(script)

	defer fault.DisarmAll()
	fault.Arm(FailpointAdmit, fault.Failure{Sleep: 50 * time.Microsecond})
	fault.Arm(FailpointFlush, fault.Failure{Sleep: 100 * time.Microsecond})

	s := New(v1, Config{MaxBatch: 4, MaxDelay: 100 * time.Microsecond, QueueDepth: 256})

	var ok, stopped atomic.Int64
	swapStop := make(chan struct{})
	var swapWG sync.WaitGroup
	swapWG.Add(1)
	go func() {
		defer swapWG.Done()
		views := [2]*prionn.Inference{v2, v1}
		for i := 0; ; i++ {
			select {
			case <-swapStop:
				return
			default:
				s.Swap(views[i%2])
			}
		}
	}()

	var clientWG sync.WaitGroup
	for g := 0; g < 8; g++ {
		clientWG.Add(1)
		go func() {
			defer clientWG.Done()
			for {
				resp, err := s.Predict(context.Background(), Request{Script: script, RequestedMin: 1})
				switch {
				case err == nil:
					ok.Add(1)
					if resp.Pred != want1 && resp.Pred != want2 {
						t.Errorf("prediction %+v matches neither snapshot (%+v / %+v)", resp.Pred, want1, want2)
						return
					}
				case errors.Is(err, ErrStopped):
					stopped.Add(1)
					return // drain has begun; this client is done
				case errors.Is(err, ErrOverloaded):
					// Back off and retry; the queue is deliberately tight.
					time.Sleep(10 * time.Microsecond)
				default:
					t.Errorf("unexpected predict error: %v", err)
					return
				}
			}
		}()
	}

	// Let the race build up real concurrency, then pull the plug
	// mid-traffic.
	time.Sleep(5 * time.Millisecond)
	if err := s.Stop(context.Background()); err != nil {
		t.Fatalf("stop: %v", err)
	}
	clientWG.Wait()
	close(swapStop)
	swapWG.Wait()

	snap := s.Stats()
	// Exactly-once: no caller abandoned its wait (contexts never fire),
	// so successful responses must equal admissions — every admitted
	// request was answered, none twice, none lost in the drain.
	if ok.Load() != snap.Admitted {
		t.Fatalf("answered %d requests but admitted %d", ok.Load(), snap.Admitted)
	}
	if stopped.Load() != 8 {
		t.Fatalf("stopped clients %d, want all 8", stopped.Load())
	}
	if snap.QueueDepth != 0 {
		t.Fatalf("drain left queue depth %d", snap.QueueDepth)
	}
	if snap.Served != snap.Admitted {
		t.Fatalf("served %d != admitted %d after drain", snap.Served, snap.Admitted)
	}
}

// TestServeAbandonedWaitCounters pins the canceled / deadline-exceeded
// accounting: both abandonment paths (pre-admission and mid-wait) are
// classified by context error and surfaced in the snapshot and its
// String rendering.
func TestServeAbandonedWaitCounters(t *testing.T) {
	defer fault.DisarmAll()
	s := New(nil, Config{MaxBatch: 4, MaxDelay: time.Millisecond, QueueDepth: 8})
	defer func() {
		if err := s.Stop(context.Background()); err != nil {
			t.Fatalf("stop: %v", err)
		}
	}()

	// Pre-admission: an already-canceled context is refused and counted.
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Predict(canceled, Request{Script: "x"}); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}

	// Mid-wait: stall the flush so an admitted request's deadline fires
	// while it waits for its batch.
	fault.Arm(FailpointFlush, fault.Failure{Sleep: 50 * time.Millisecond})
	ctx, cancel2 := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel2()
	if _, err := s.Predict(ctx, Request{Script: "y"}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want context.DeadlineExceeded", err)
	}

	snap := s.Stats()
	if snap.Canceled != 1 || snap.DeadlineExceeded != 1 {
		t.Fatalf("canceled %d, deadline-exceeded %d; want 1 and 1", snap.Canceled, snap.DeadlineExceeded)
	}
	if !strings.Contains(snap.String(), "abandoned waits: 1 canceled, 1 deadline-exceeded") {
		t.Fatalf("String() missing the abandoned-waits line:\n%s", snap.String())
	}
	// The abandoned wait was still flushed: no lost work in the drain.
	fault.DisarmAll()
}
