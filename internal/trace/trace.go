// Package trace generates synthetic HPC workload traces that substitute
// for the closed 295,077-job LLNL Cab dataset the paper evaluates on
// (see DESIGN.md §1 for the substitution argument).
//
// The generator emulates a population of users running a catalog of
// scientific applications. Each (user, application, configuration)
// triple renders a concrete SLURM job script whose text — application
// binary, command-line parameters, input decks — carries the information
// that determines the job's actual runtime and IO, part of which is
// invisible to the Table-1 manual feature parser. Matching the published
// trace statistics:
//
//   - roughly half of all jobs run under 60 minutes, mean ≈ 44 min,
//     16-hour (960 min) cap (paper Fig. 8a);
//   - IO bytes are heavy-tailed with mean ≫ median (paper Fig. 9a);
//   - user-requested runtimes overestimate heavily (paper: ≈ 24 % mean
//     relative accuracy, 172 min mean error);
//   - ≈ 37 % of job scripts are unique (repeat submissions dominate);
//   - ≈ 10 % of submissions are canceled before execution.
package trace

import (
	"fmt"
	"math"
	"math/rand"
)

// Job is one generated HPC job: the script a user submitted plus the
// ground-truth execution and IO data the paper's dataset records.
type Job struct {
	ID       int
	User     string
	Group    string
	Account  string
	Script   string
	ScriptID int // jobs sharing a script share this ID

	SubmitTime int64 // epoch seconds
	Nodes      int
	Tasks      int

	RequestedMin int   // user-requested runtime, minutes
	ActualSec    int64 // actual runtime, seconds (0 for canceled jobs)

	ReadBytes  int64 // total bytes read over the job lifetime
	WriteBytes int64 // total bytes written

	// InputDeck is the application input file referenced by the script
	// (the paper's future work proposes feeding decks into PRIONN; see
	// the ext-deck experiment).
	InputDeck string
	// AvgPowerW is the job's mean power draw in watts (another
	// future-work resource; see the ext-power experiment).
	AvgPowerW float64

	Canceled bool // canceled/removed before execution (excluded from analysis)
}

// ActualMin returns the actual runtime rounded to the nearest minute,
// the resolution at which the paper predicts runtime.
func (j Job) ActualMin() int {
	return int((j.ActualSec + 30) / 60)
}

// ReadBW returns the mean read bandwidth in bytes/second.
func (j Job) ReadBW() float64 {
	if j.ActualSec <= 0 {
		return 0
	}
	return float64(j.ReadBytes) / float64(j.ActualSec)
}

// WriteBW returns the mean write bandwidth in bytes/second.
func (j Job) WriteBW() float64 {
	if j.ActualSec <= 0 {
		return 0
	}
	return float64(j.WriteBytes) / float64(j.ActualSec)
}

// Config controls trace generation.
type Config struct {
	Seed int64
	Jobs int

	Users int // default 492 (paper)
	Apps  int // application archetypes, default 24

	// ConfigsPerUser is the number of distinct script configurations a
	// user cycles through; lower values mean more repeat submissions.
	// Default 8, which combined with repeat sampling yields ≈ 35-40 %
	// unique scripts as in the paper.
	ConfigsPerUser int

	StartTime        int64   // epoch seconds of first submission
	MeanInterarrival float64 // seconds between submissions, default 100

	MaxRuntimeMin int     // scheduler wall-time cap, default 960 (16 h)
	CancelFrac    float64 // fraction canceled before execution, default 0.1

	// RuntimeScale multiplies all actual runtimes; the SDSC presets use
	// it to reach multi-hour mean runtimes. Default 1.
	RuntimeScale float64
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Users <= 0 {
		c.Users = 492
	}
	if c.Apps <= 0 {
		c.Apps = 24
	}
	if c.ConfigsPerUser <= 0 {
		c.ConfigsPerUser = 8
	}
	if c.MeanInterarrival <= 0 {
		c.MeanInterarrival = 100
	}
	if c.MaxRuntimeMin <= 0 {
		c.MaxRuntimeMin = 960
	}
	if c.CancelFrac < 0 {
		c.CancelFrac = 0
	} else if c.CancelFrac == 0 {
		c.CancelFrac = 0.10
	}
	if c.RuntimeScale <= 0 {
		c.RuntimeScale = 1
	}
	if c.StartTime == 0 {
		c.StartTime = 1451606400 // 2016-01-01, the year of the Cab trace
	}
	return c
}

// DefaultConfig returns a Cab-like configuration for n jobs.
func DefaultConfig(n int) Config {
	return Config{Seed: 1, Jobs: n}.withDefaults()
}

// SDSC95Config and SDSC96Config approximate the SDSC workload traces used
// for the Table-2 replication of Smith et al.: fewer users, longer mean
// runtimes, no IO emphasis. jobs lets benchmarks scale the trace down
// from the published sizes (76,840 and 32,100 jobs).
func SDSC95Config(jobs int) Config {
	c := Config{Seed: 95, Jobs: jobs, Users: 98, Apps: 12, ConfigsPerUser: 6,
		MeanInterarrival: 400, MaxRuntimeMin: 2880, RuntimeScale: 4.0}
	return c.withDefaults()
}

// SDSC96Config is the 1996 SDSC trace preset (see SDSC95Config).
func SDSC96Config(jobs int) Config {
	c := Config{Seed: 96, Jobs: jobs, Users: 60, Apps: 10, ConfigsPerUser: 6,
		MeanInterarrival: 900, MaxRuntimeMin: 2880, RuntimeScale: 5.0}
	return c.withDefaults()
}

// appProfile is one scientific-application archetype. The runtime and IO
// of a job depend on the archetype and on the numeric parameters rendered
// into its script — information a manual parser never sees.
type appProfile struct {
	name      string
	binary    string
	medianMin float64 // median runtime at reference parameters, minutes
	sigma     float64 // lognormal spread across configurations
	readBW    float64 // characteristic read bandwidth, bytes/s
	writeBW   float64 // characteristic write bandwidth, bytes/s
	maxNodes  int
	template  int // script rendering style
}

// appCatalog builds the archetype catalog. A handful of archetypes are
// IO-heavy, giving the heavy-tailed bandwidth distribution of Fig. 9a.
func appCatalog(n int, rng *rand.Rand) []appProfile {
	names := []string{
		"lulesh", "qbox", "hypre", "amg", "laghos", "kripke", "quicksilver",
		"nekbone", "miniFE", "comd", "snap", "pennant", "vpic", "chombo",
		"ares", "pf3d", "mercury", "cretin", "juqcs", "gromacs", "lammps",
		"namd", "hacc", "nyx", "sw4", "samrai", "cam", "wrf", "mpas", "qmcpack",
	}
	apps := make([]appProfile, n)
	for i := range apps {
		name := names[i%len(names)]
		if i >= len(names) {
			name = fmt.Sprintf("%s%d", name, i/len(names)+2)
		}
		// Median runtimes spread log-uniformly over [3, 60] minutes so
		// the aggregate runtime distribution is heavy-tailed with roughly
		// half the mass below an hour (calibrated against paper Fig. 8a:
		// mean ≈ 44 min).
		medianMin := 10 * math.Exp(rng.Float64()*math.Log(8))
		// Most apps do modest IO; every sixth app is IO-intensive by one
		// to two orders of magnitude.
		ioScale := math.Exp(rng.NormFloat64() * 1.0)
		if i%6 == 0 {
			ioScale *= 40
		}
		apps[i] = appProfile{
			name:      name,
			binary:    "./" + name + ".exe",
			medianMin: medianMin,
			sigma:     0.4 + rng.Float64()*0.5,
			readBW:    2e6 * ioScale * (0.5 + rng.Float64()),
			writeBW:   1.2e6 * ioScale * (0.5 + rng.Float64()),
			maxNodes:  1 << (3 + rng.Intn(5)), // 8..128
			template:  rng.Intn(nTemplates),
		}
	}
	return apps
}

// jobConfig is one concrete configuration of an application by a user:
// fixed parameters, fixed script text, and a deterministic base runtime
// and IO that repeat submissions share (with small per-run noise).
type jobConfig struct {
	scriptID  int
	user      int
	app       int
	size      int
	steps     int
	script    string
	deck      string
	nodes     int
	tasks     int
	baseSec   float64
	readBW    float64 // bytes/s for this configuration
	writeBW   float64
	powerW    float64 // mean power draw, watts
	reqMin    int
	groupName string
	account   string
	userName  string
}

// Generator produces jobs one at a time so the scheduler simulator can
// stream arbitrarily long traces. Use Generate for a fully materialized
// slice.
type Generator struct {
	cfg     Config
	rng     *rand.Rand
	apps    []appProfile
	configs []jobConfig
	clock   float64
	nextID  int
}

// NewGenerator builds the user/application population for cfg.
func NewGenerator(cfg Config) *Generator {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := &Generator{cfg: cfg, rng: rng, clock: float64(cfg.StartTime)}
	g.apps = appCatalog(cfg.Apps, rng)

	groups := []string{"phys", "chem", "bio", "climate", "matsci", "fusion", "nukes", "astro"}
	banks := []string{"bdivp", "wbronze", "science", "asccasc", "exalearn", "mlstrat"}

	for u := 0; u < cfg.Users; u++ {
		userName := fmt.Sprintf("user%03d", u)
		group := groups[u%len(groups)]
		account := banks[(u/3)%len(banks)]
		// Each user works with a small personal subset of applications,
		// runs at a characteristic scale, and has a fixed habit for how
		// much wall time to request. Because these habits are per-user,
		// a user's distinct configurations look alike to the Table-1
		// features — only the script text (problem size, step count,
		// deck) tells them apart, which is the paper's core premise.
		nApps := 1 + g.rng.Intn(3)
		userApps := make([]int, nApps)
		for i := range userApps {
			userApps[i] = g.rng.Intn(len(g.apps))
		}
		habit := userHabit{
			nodesExp: g.rng.Intn(6),             // characteristic scale 1..32 nodes
			inflate:  1.3 + g.rng.Float64()*2.2, // safety pad over the worst case
		}
		first := len(g.configs)
		for c := 0; c < cfg.ConfigsPerUser; c++ {
			ai := userApps[g.rng.Intn(nApps)]
			g.configs = append(g.configs, g.makeConfig(len(g.configs), u, ai, userName, group, account, habit))
		}
		// Users pick one safe wall-time limit and submit everything with
		// it (the overestimation behaviour the paper reports: requested
		// times carry little per-job information, ≈24% mean accuracy).
		// The limit covers the user's longest configuration with the
		// user's habitual safety pad.
		var worst float64
		for _, c := range g.configs[first:] {
			if c.baseSec > worst {
				worst = c.baseSec
			}
		}
		req := roundUpToLimit(worst/60*habit.inflate, cfg.MaxRuntimeMin)
		// Job names are generic, as on real systems: users reuse the same
		// name across many distinct configurations, so the Table-1
		// features cannot identify a configuration — only the script text
		// can (the paper's core premise).
		jobNames := []string{"prod", "run", "sim", "batch", "experiment"}
		for i := first; i < len(g.configs); i++ {
			c := &g.configs[i]
			c.reqMin = req
			app := g.apps[c.app]
			jobName := jobNames[g.rng.Intn(len(jobNames))]
			c.script = renderScript(app, userName, account, jobName,
				c.nodes, c.tasks, c.size, c.steps, c.reqMin, fmt.Sprintf("/p/lustre1/%s/decks/%s_s%d.in", userName, app.name, c.size))
		}
	}
	return g
}

// makeConfig draws parameters for one configuration and renders its
// script.
// userHabit captures per-user behaviour shared across a user's
// configurations.
type userHabit struct {
	nodesExp int     // log2 of the user's characteristic node count
	inflate  float64 // how much the user pads requested wall time
}

func (g *Generator) makeConfig(scriptID, user, appIdx int, userName, group, account string, habit userHabit) jobConfig {
	app := g.apps[appIdx]
	rng := g.rng

	// Numeric parameters that appear in the script and modulate runtime
	// and IO: problem size, iterations/steps, node count.
	size := 16 << rng.Intn(4)         // 16..128
	steps := (1 + rng.Intn(40)) * 250 // 250..10000
	// Node count: the user's characteristic scale with a one-step
	// jitter, clamped to the application's maximum.
	nodesExp := habit.nodesExp + rng.Intn(2)
	for 1<<nodesExp > app.maxNodes {
		nodesExp--
	}
	nodes := 1 << nodesExp
	tasks := nodes * 16

	// Runtime model: the archetype's lognormal median scaled by the
	// parameters. Larger problems and more steps run longer; more nodes
	// run (sub-linearly) shorter.
	sizeFactor := math.Pow(float64(size)/32.0, 0.7)
	stepFactor := math.Pow(float64(steps)/5000.0, 0.7)
	nodeFactor := math.Pow(float64(nodes), -0.35)
	base := app.medianMin * math.Exp(rng.NormFloat64()*app.sigma)
	baseMin := base * sizeFactor * stepFactor * nodeFactor * g.cfg.RuntimeScale
	maxMin := float64(g.cfg.MaxRuntimeMin)
	if baseMin > maxMin*0.98 {
		baseMin = maxMin * 0.98
	}
	if baseMin < 0.5 {
		baseMin = 0.5
	}

	// IO model: bandwidth characteristic of the app, modulated by the
	// problem size (bigger problems read bigger decks and dump bigger
	// checkpoints).
	ioFactor := math.Pow(float64(size)/32.0, 0.8) * math.Exp(rng.NormFloat64()*0.3)
	readBW := app.readBW * ioFactor
	writeBW := app.writeBW * ioFactor

	// reqMin is assigned after all of the user's configurations exist
	// (one shared wall-time limit per user; see NewGenerator).

	// Mean power: nodes × a per-node draw that scales with the app's
	// compute intensity (encoded in the deck but not the Table-1
	// features).
	intensity := 0.5 + rng.Float64()
	powerW := float64(nodes) * (180 + 240*intensity)
	// The script itself is rendered by NewGenerator once the user's
	// shared wall-time limit is known.
	return jobConfig{
		scriptID:  scriptID,
		user:      user,
		app:       appIdx,
		size:      size,
		steps:     steps,
		deck:      renderDeck(app, size, steps, intensity),
		nodes:     nodes,
		tasks:     tasks,
		baseSec:   baseMin * 60,
		readBW:    readBW,
		writeBW:   writeBW,
		powerW:    powerW,
		groupName: group,
		account:   account,
		userName:  userName,
	}
}

func bits(n int) int {
	b := 1
	for 1<<b <= n {
		b++
	}
	return b
}

// queueLimits are the customary wall-time limits users round up to.
var queueLimits = []int{30, 60, 120, 240, 480, 720, 960}

func roundUpToLimit(minutes float64, maxMin int) int {
	for _, l := range queueLimits {
		if float64(l) >= minutes && l <= maxMin {
			return l
		}
	}
	return maxMin
}

// Next generates the next job in submission order.
func (g *Generator) Next() Job {
	cfg := g.cfg
	rng := g.rng
	// Diurnal bursty arrivals: exponential interarrival modulated by a
	// day cycle (submissions cluster in working hours).
	hour := math.Mod(g.clock/3600, 24)
	diurnal := 0.35 + 1.3*math.Exp(-math.Pow(hour-14, 2)/18)
	g.clock += rng.ExpFloat64() * cfg.MeanInterarrival / diurnal

	// Heavily skewed config popularity: a few configurations are
	// resubmitted constantly (production campaigns), most rarely.
	var c *jobConfig
	if rng.Float64() < 0.7 {
		// Zipf-ish: pick from the first portion of the config list.
		c = &g.configs[rng.Intn(1+len(g.configs)/8)]
	} else {
		c = &g.configs[rng.Intn(len(g.configs))]
	}

	j := Job{
		ID:           g.nextID,
		User:         c.userName,
		Group:        c.groupName,
		Account:      c.account,
		Script:       c.script,
		ScriptID:     c.scriptID,
		SubmitTime:   int64(g.clock),
		Nodes:        c.nodes,
		Tasks:        c.tasks,
		RequestedMin: c.reqMin,
	}
	g.nextID++

	if rng.Float64() < cfg.CancelFrac {
		j.Canceled = true
		return j
	}

	// Per-run noise around the configuration's deterministic base.
	noise := 1 + rng.NormFloat64()*0.05
	if noise < 0.5 {
		noise = 0.5
	}
	sec := c.baseSec * noise
	// SLURM kills jobs at the requested limit.
	if limit := float64(c.reqMin) * 60; sec > limit {
		sec = limit
	}
	if maxSec := float64(cfg.MaxRuntimeMin) * 60; sec > maxSec {
		sec = maxSec
	}
	if sec < 30 {
		sec = 30
	}
	j.ActualSec = int64(sec)
	j.ReadBytes = int64(c.readBW * sec * (0.8 + 0.4*rng.Float64()))
	j.WriteBytes = int64(c.writeBW * sec * (0.8 + 0.4*rng.Float64()))
	j.InputDeck = c.deck
	j.AvgPowerW = c.powerW * (0.95 + 0.1*rng.Float64())
	return j
}

// Generate materializes a full trace for cfg in submission order.
func Generate(cfg Config) []Job {
	g := NewGenerator(cfg)
	jobs := make([]Job, cfg.withDefaults().Jobs)
	for i := range jobs {
		jobs[i] = g.Next()
	}
	return jobs
}

// Completed filters out canceled jobs, mirroring the paper's exclusion of
// the 29,291 canceled/removed jobs from analysis.
func Completed(jobs []Job) []Job {
	out := make([]Job, 0, len(jobs))
	for _, j := range jobs {
		if !j.Canceled {
			out = append(out, j)
		}
	}
	return out
}

// UniqueScripts returns the number of distinct job scripts in a trace.
func UniqueScripts(jobs []Job) int {
	seen := make(map[int]struct{})
	for _, j := range jobs {
		seen[j.ScriptID] = struct{}{}
	}
	return len(seen)
}
