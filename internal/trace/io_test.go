package trace

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	jobs := Generate(Config{Seed: 15, Jobs: 50})
	var buf bytes.Buffer
	if err := SaveJSON(&buf, jobs); err != nil {
		t.Fatal(err)
	}
	got, err := LoadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(jobs) {
		t.Fatalf("%d jobs after round trip, want %d", len(got), len(jobs))
	}
	for i := range jobs {
		if got[i].Script != jobs[i].Script || got[i].ActualSec != jobs[i].ActualSec ||
			got[i].ReadBytes != jobs[i].ReadBytes || got[i].InputDeck != jobs[i].InputDeck {
			t.Fatalf("job %d differs after round trip", i)
		}
	}
}

func TestJSONFileRoundTrip(t *testing.T) {
	jobs := Generate(Config{Seed: 16, Jobs: 20})
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := SaveJSONFile(path, jobs); err != nil {
		t.Fatal(err)
	}
	got, err := LoadJSONFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 20 {
		t.Fatalf("%d jobs", len(got))
	}
}

func TestLoadJSONRejectsGarbage(t *testing.T) {
	if _, err := LoadJSON(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestLoadJSONValidatesOrder(t *testing.T) {
	in := `[
	 {"ID":0,"Script":"x","SubmitTime":100},
	 {"ID":1,"Script":"y","SubmitTime":50}
	]`
	if _, err := LoadJSON(strings.NewReader(in)); err == nil {
		t.Fatal("out-of-order trace accepted")
	}
}

func TestLoadJSONValidatesFields(t *testing.T) {
	in := `[{"ID":0,"Script":"x","SubmitTime":1,"Nodes":-2}]`
	if _, err := LoadJSON(strings.NewReader(in)); err == nil {
		t.Fatal("negative nodes accepted")
	}
	in = `[{"ID":0,"Script":"","SubmitTime":1,"Canceled":false}]`
	if _, err := LoadJSON(strings.NewReader(in)); err == nil {
		t.Fatal("empty script accepted")
	}
}

func TestComputeStats(t *testing.T) {
	jobs := Generate(Config{Seed: 17, Jobs: 2000})
	s := ComputeStats(jobs)
	if s.Jobs != 2000 {
		t.Fatalf("Jobs = %d", s.Jobs)
	}
	if s.Completed+s.Canceled != s.Jobs {
		t.Fatal("completed + canceled != jobs")
	}
	if s.MeanRuntime <= 0 || s.MedianRuntime <= 0 || s.MaxRuntime < s.MeanRuntime {
		t.Fatalf("runtime stats implausible: %+v", s)
	}
	if s.MeanUserError < 30 {
		t.Fatalf("user error %f too small — overestimation missing", s.MeanUserError)
	}
	if s.UniqueScripts <= 0 || s.UniqueScripts > s.Jobs {
		t.Fatalf("unique scripts %d", s.UniqueScripts)
	}
	if s.SpanSeconds <= 0 {
		t.Fatal("no time span")
	}
}

func TestComputeStatsEmpty(t *testing.T) {
	s := ComputeStats(nil)
	if s.Jobs != 0 || s.MeanRuntime != 0 {
		t.Fatalf("empty stats %+v", s)
	}
}
