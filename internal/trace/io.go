package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// SaveJSON writes a trace as a JSON array.
func SaveJSON(w io.Writer, jobs []Job) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(jobs)
}

// LoadJSON reads a trace written by SaveJSON (or by cmd/tracegen
// -format json) and validates basic invariants.
func LoadJSON(r io.Reader) ([]Job, error) {
	var jobs []Job
	if err := json.NewDecoder(r).Decode(&jobs); err != nil {
		return nil, fmt.Errorf("trace: decoding JSON: %w", err)
	}
	var prev int64
	for i, j := range jobs {
		if j.SubmitTime < prev {
			return nil, fmt.Errorf("trace: job %d out of submission order", i)
		}
		prev = j.SubmitTime
		if j.Nodes < 0 || j.ActualSec < 0 || j.RequestedMin < 0 {
			return nil, fmt.Errorf("trace: job %d has negative resource fields", i)
		}
		if !j.Canceled && j.Script == "" {
			return nil, fmt.Errorf("trace: job %d has an empty script", i)
		}
	}
	return jobs, nil
}

// SaveJSONFile writes a trace to a file. Close errors are propagated:
// a silently truncated trace would skew every downstream table.
func SaveJSONFile(path string, jobs []Job) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	return SaveJSON(f, jobs)
}

// LoadJSONFile reads a trace from a file.
func LoadJSONFile(path string) ([]Job, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer func() { _ = f.Close() }() // read-only; close errors carry no data loss
	return LoadJSON(f)
}

// Stats summarizes a trace; it is what cmd/tracegen -format stats prints
// and what tests assert against.
type Stats struct {
	Jobs          int
	Completed     int
	Canceled      int
	UniqueScripts int
	MeanRuntime   float64 // minutes, completed jobs
	MedianRuntime float64
	MaxRuntime    float64
	MeanUserError float64 // |requested - actual| minutes
	SpanSeconds   int64
}

// ComputeStats derives Stats from a trace.
func ComputeStats(jobs []Job) Stats {
	s := Stats{Jobs: len(jobs), UniqueScripts: UniqueScripts(jobs)}
	var mins []float64
	var errSum float64
	for _, j := range jobs {
		if j.Canceled {
			s.Canceled++
			continue
		}
		s.Completed++
		m := float64(j.ActualMin())
		mins = append(mins, m)
		d := float64(j.RequestedMin) - m
		if d < 0 {
			d = -d
		}
		errSum += d
	}
	if len(mins) > 0 {
		var sum float64
		max := mins[0]
		for _, m := range mins {
			sum += m
			if m > max {
				max = m
			}
		}
		s.MeanRuntime = sum / float64(len(mins))
		s.MaxRuntime = max
		s.MedianRuntime = medianOf(mins)
		s.MeanUserError = errSum / float64(len(mins))
	}
	if len(jobs) > 1 {
		s.SpanSeconds = jobs[len(jobs)-1].SubmitTime - jobs[0].SubmitTime
	}
	return s
}

// medianOf returns the median without mutating its input.
func medianOf(vals []float64) float64 {
	c := append([]float64(nil), vals...)
	sort.Float64s(c)
	return c[len(c)/2]
}
