package trace

import (
	"fmt"
	"strings"
)

// nTemplates is the number of distinct script rendering styles. Multiple
// styles reproduce the "inconsistencies in job script format" the paper
// reports fighting when writing manual parsers.
const nTemplates = 4

// renderScript produces the SLURM batch script for one job configuration.
// The numeric parameters that drive runtime and IO (problem size, step
// count, node count, input deck) appear in the srun command line — text a
// whole-script model can exploit but the Table-1 parser discards.
func renderScript(app appProfile, user, account, jobName string, nodes, tasks, size, steps, reqMin int, deck string) string {
	var b strings.Builder
	b.WriteString("#!/bin/bash\n")
	switch app.template {
	case 0:
		fmt.Fprintf(&b, "#SBATCH --job-name=%s\n", jobName)
		fmt.Fprintf(&b, "#SBATCH --nodes=%d\n", nodes)
		fmt.Fprintf(&b, "#SBATCH --ntasks=%d\n", tasks)
		fmt.Fprintf(&b, "#SBATCH --time=%s\n", slurmTime(reqMin))
		fmt.Fprintf(&b, "#SBATCH --account=%s\n", account)
		b.WriteString("\nmodule load intel mvapich2\n")
		fmt.Fprintf(&b, "cd /p/lustre1/%s/runs/%s\n\n", user, app.name)
		fmt.Fprintf(&b, "srun -n %d %s -s %d -i %d -f %s\n", tasks, app.binary, size, steps, deck)
		fmt.Fprintf(&b, "echo \"%s done\"\n", app.name)
	case 1:
		fmt.Fprintf(&b, "#SBATCH -J %s\n", jobName)
		fmt.Fprintf(&b, "#SBATCH -N %d\n", nodes)
		fmt.Fprintf(&b, "#SBATCH -n %d\n", tasks)
		fmt.Fprintf(&b, "#SBATCH -t %d\n", reqMin)
		fmt.Fprintf(&b, "#SBATCH -A %s\n", account)
		b.WriteString("\nexport OMP_NUM_THREADS=1\n")
		fmt.Fprintf(&b, "export DECK=%s\n", deck)
		fmt.Fprintf(&b, "srun %s --size %d --steps %d --deck $DECK\n", app.binary, size, steps)
	case 2:
		fmt.Fprintf(&b, "# production run for %s\n", app.name)
		fmt.Fprintf(&b, "#SBATCH --nodes %d\n", nodes)
		fmt.Fprintf(&b, "#SBATCH --time %s\n", slurmTime(reqMin))
		fmt.Fprintf(&b, "#SBATCH --job-name %s\n", jobName)
		b.WriteString("set -e\nmodule purge\nmodule load gcc openmpi\n")
		fmt.Fprintf(&b, "INPUT=%s\n", deck)
		fmt.Fprintf(&b, "for rep in 1; do\n  srun -N %d %s -in $INPUT -x %d -nsteps %d\ndone\n",
			nodes, app.binary, size, steps)
		fmt.Fprintf(&b, "cp out.dat /p/lustre1/%s/results/\n", user)
	default:
		fmt.Fprintf(&b, "#MSUB -l nodes=%d\n", nodes)
		fmt.Fprintf(&b, "#MSUB -l walltime=%s\n", slurmTime(reqMin))
		fmt.Fprintf(&b, "#MSUB -N %s\n", jobName)
		b.WriteString("\n. /etc/profile\n")
		fmt.Fprintf(&b, "cd /p/lustre2/%s\n", user)
		fmt.Fprintf(&b, "srun -n %d %s %s %d %d\n", tasks, app.binary, deck, size, steps)
		b.WriteString("rc=$?\nexit $rc\n")
	}
	return b.String()
}

// slurmTime renders minutes as H:MM:SS.
func slurmTime(minutes int) string {
	return fmt.Sprintf("%d:%02d:00", minutes/60, minutes%60)
}

// renderDeck produces the application input deck a job reads. Deck
// contents carry resource-relevant parameters (mesh extent, step count,
// solver intensity) that never appear in Table-1 features — the signal
// the paper's future work proposes exploiting.
func renderDeck(app appProfile, size, steps int, intensity float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s input deck\n", app.name)
	fmt.Fprintf(&b, "mesh_size = %d %d %d\n", size, size, size)
	fmt.Fprintf(&b, "max_steps = %d\n", steps)
	fmt.Fprintf(&b, "solver_intensity = %.3f\n", intensity)
	fmt.Fprintf(&b, "checkpoint_every = %d\n", steps/10+1)
	fmt.Fprintf(&b, "output_dir = ./out_%s_s%d\n", app.name, size)
	return b.String()
}
