package trace

import (
	"math"
	"sort"
	"strings"
	"testing"

	"prionn/internal/features"
)

func genTest(n int) []Job {
	return Generate(Config{Seed: 7, Jobs: n})
}

func TestGenerateCount(t *testing.T) {
	jobs := genTest(500)
	if len(jobs) != 500 {
		t.Fatalf("generated %d jobs, want 500", len(jobs))
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{Seed: 3, Jobs: 50})
	b := Generate(Config{Seed: 3, Jobs: 50})
	for i := range a {
		if a[i].Script != b[i].Script || a[i].ActualSec != b[i].ActualSec ||
			a[i].SubmitTime != b[i].SubmitTime {
			t.Fatalf("job %d differs between same-seed generations", i)
		}
	}
}

func TestSubmitTimesMonotonic(t *testing.T) {
	jobs := genTest(1000)
	for i := 1; i < len(jobs); i++ {
		if jobs[i].SubmitTime < jobs[i-1].SubmitTime {
			t.Fatalf("submit times not monotone at %d", i)
		}
	}
}

func TestRuntimeDistributionMatchesPaper(t *testing.T) {
	// Paper Fig. 8a: ~half the jobs below 60 minutes, mean ≈ 44 min,
	// nothing above the 960-minute cap. We accept generous bands.
	jobs := Completed(genTest(5000))
	var under60, total int
	var sum float64
	for _, j := range jobs {
		m := j.ActualMin()
		if m > 960 {
			t.Fatalf("job runtime %d min exceeds 960 cap", m)
		}
		if m < 60 {
			under60++
		}
		sum += float64(m)
		total++
	}
	frac := float64(under60) / float64(total)
	mean := sum / float64(total)
	if frac < 0.45 || frac > 0.85 {
		t.Fatalf("fraction under 60 min = %.2f, want roughly half or more", frac)
	}
	if mean < 25 || mean > 90 {
		t.Fatalf("mean runtime %.1f min, want ≈ 44", mean)
	}
}

func TestUserOverestimation(t *testing.T) {
	// Paper: user estimates have ≈ 24% mean relative accuracy and a mean
	// error around 172 minutes. Requested must almost always be >= actual
	// (SLURM kills at the limit) and heavily inflated on average.
	jobs := Completed(genTest(4000))
	var errSum float64
	var relAccSum float64
	for _, j := range jobs {
		if j.RequestedMin*60 < int(j.ActualSec)-60 {
			t.Fatalf("job %d ran %ds past its %dmin request", j.ID, j.ActualSec, j.RequestedMin)
		}
		e := float64(j.RequestedMin - j.ActualMin())
		errSum += math.Abs(e)
		a, p := float64(j.ActualMin()), float64(j.RequestedMin)
		relAccSum += 1 - math.Abs(a-p)/(math.Max(a, p)+1e-12)
	}
	meanErr := errSum / float64(len(jobs))
	meanAcc := relAccSum / float64(len(jobs))
	if meanErr < 60 || meanErr > 400 {
		t.Fatalf("mean user estimate error %.0f min, want ≈ 172", meanErr)
	}
	if meanAcc > 0.5 {
		t.Fatalf("user relative accuracy %.2f, want ≈ 0.24 (heavy overestimation)", meanAcc)
	}
}

func TestIOHeavyTail(t *testing.T) {
	// Paper Fig. 9a: mean bandwidth orders of magnitude above the median.
	jobs := Completed(genTest(5000))
	bws := make([]float64, 0, len(jobs))
	var sum float64
	for _, j := range jobs {
		bw := j.ReadBW()
		bws = append(bws, bw)
		sum += bw
	}
	sort.Float64s(bws)
	mean := sum / float64(len(bws))
	median := bws[len(bws)/2]
	if mean < 5*median {
		t.Fatalf("read BW mean/median = %.1f, want heavy tail (> 5x)", mean/median)
	}
}

func TestCanceledFraction(t *testing.T) {
	jobs := genTest(5000)
	canceled := 0
	for _, j := range jobs {
		if j.Canceled {
			canceled++
			if j.ActualSec != 0 || j.ReadBytes != 0 {
				t.Fatal("canceled job has execution data")
			}
		}
	}
	frac := float64(canceled) / float64(len(jobs))
	if frac < 0.05 || frac > 0.15 {
		t.Fatalf("canceled fraction %.3f, want ≈ 0.10", frac)
	}
	if got := len(Completed(jobs)); got != len(jobs)-canceled {
		t.Fatalf("Completed kept %d, want %d", got, len(jobs)-canceled)
	}
}

func TestUniqueScriptRatio(t *testing.T) {
	// Paper: 111,596 unique of 295,077 (≈ 38%) pre-filter. Accept a broad
	// band; the essential property is heavy script repetition.
	jobs := genTest(20000)
	u := UniqueScripts(jobs)
	ratio := float64(u) / float64(len(jobs))
	if ratio > 0.6 {
		t.Fatalf("unique ratio %.2f — not enough repeat submissions", ratio)
	}
	if u < 50 {
		t.Fatalf("only %d unique scripts — population too small", u)
	}
}

func TestScriptsParseable(t *testing.T) {
	// Every generated script must yield nodes and requested time through
	// the Table-1 extractor (all template styles).
	jobs := genTest(400)
	for _, j := range jobs {
		s := features.Extract(features.RawJob{Script: j.Script, User: j.User})
		if s.ReqNodes <= 0 {
			t.Fatalf("script for job %d yields no node count:\n%s", j.ID, j.Script)
		}
		if s.ReqTimeHours <= 0 {
			t.Fatalf("script for job %d yields no requested time:\n%s", j.ID, j.Script)
		}
		if math.Abs(s.ReqTimeHours*60-float64(j.RequestedMin)) > 1 {
			t.Fatalf("parsed %.0f min, job says %d min", s.ReqTimeHours*60, j.RequestedMin)
		}
	}
}

func TestScriptEmbedsParameters(t *testing.T) {
	// The script text must contain the binary name and the deck path —
	// the signal PRIONN learns from.
	jobs := genTest(100)
	for _, j := range jobs {
		if !strings.Contains(j.Script, ".exe") {
			t.Fatalf("script missing binary:\n%s", j.Script)
		}
		if !strings.Contains(j.Script, "/p/lustre") {
			t.Fatalf("script missing filesystem paths:\n%s", j.Script)
		}
	}
}

func TestRepeatSubmissionsShareGroundTruthScale(t *testing.T) {
	// Jobs sharing a ScriptID are resubmissions of the same configuration
	// and must have runtimes within the ±5% noise plus limit-capping.
	jobs := Completed(genTest(10000))
	byScript := map[int][]Job{}
	for _, j := range jobs {
		byScript[j.ScriptID] = append(byScript[j.ScriptID], j)
	}
	checked := 0
	for _, group := range byScript {
		if len(group) < 3 {
			continue
		}
		lo, hi := group[0].ActualSec, group[0].ActualSec
		for _, j := range group {
			if j.ActualSec < lo {
				lo = j.ActualSec
			}
			if j.ActualSec > hi {
				hi = j.ActualSec
			}
		}
		if float64(hi) > float64(lo)*1.6+120 {
			t.Fatalf("script %d runtimes spread %d..%d sec — repeats should be consistent",
				group[0].ScriptID, lo, hi)
		}
		checked++
	}
	if checked < 10 {
		t.Fatalf("only %d scripts had 3+ repeats — repetition too low", checked)
	}
}

func TestSDSCPresets(t *testing.T) {
	// SDSC traces: longer runtimes than Cab.
	cab := Completed(Generate(Config{Seed: 1, Jobs: 2000}))
	sdsc := Completed(Generate(SDSC95Config(2000)))
	meanOf := func(jobs []Job) float64 {
		var s float64
		for _, j := range jobs {
			s += float64(j.ActualMin())
		}
		return s / float64(len(jobs))
	}
	if meanOf(sdsc) < 2*meanOf(cab) {
		t.Fatalf("SDSC mean runtime %.0f not well above Cab %.0f", meanOf(sdsc), meanOf(cab))
	}
	if got := Generate(SDSC96Config(100)); len(got) != 100 {
		t.Fatalf("SDSC96 generated %d", len(got))
	}
}

func TestActualMinRounding(t *testing.T) {
	j := Job{ActualSec: 89}
	if j.ActualMin() != 1 {
		t.Fatalf("89s = %d min, want 1", j.ActualMin())
	}
	j.ActualSec = 91
	if j.ActualMin() != 2 {
		t.Fatalf("91s = %d min, want 2", j.ActualMin())
	}
}

func TestBandwidthZeroForCanceled(t *testing.T) {
	j := Job{Canceled: true}
	if j.ReadBW() != 0 || j.WriteBW() != 0 {
		t.Fatal("canceled job must report zero bandwidth")
	}
}

func TestGeneratorStreaming(t *testing.T) {
	g := NewGenerator(Config{Seed: 11, Jobs: 10})
	prev := int64(0)
	ids := map[int]bool{}
	for i := 0; i < 50; i++ {
		j := g.Next()
		if j.SubmitTime < prev {
			t.Fatal("streamed jobs out of order")
		}
		prev = j.SubmitTime
		if ids[j.ID] {
			t.Fatalf("duplicate job ID %d", j.ID)
		}
		ids[j.ID] = true
	}
}
