package prionn

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"prionn/internal/fault"
)

// trainedPredictor builds a tiny trained predictor for persistence
// tests.
func trainedPredictor(t *testing.T, n int) *Predictor {
	t.Helper()
	jobs := testJobs(n)
	cfg := TinyConfig()
	cfg.PredictIO = true
	cfg.Epochs = 1
	scripts := make([]string, len(jobs))
	for i, j := range jobs {
		scripts[i] = j.Script
	}
	p, err := New(cfg, scripts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Train(jobs); err != nil {
		t.Fatal(err)
	}
	return p
}

// TestSaveFileCrashMatrix is the tentpole's persistence proof: for every
// injectable fault point during SaveFile — create, each write, fsync,
// close, rename, directory sync — in every mode (clean error, torn
// short write, simulated crash with no cleanup), the save must fail
// loudly AND the previous checkpoint at the path must remain loadable,
// byte-for-byte. No fault point may ever leave bytes at the path that
// Load accepts as a hybrid of old and new state.
func TestSaveFileCrashMatrix(t *testing.T) {
	pA := trainedPredictor(t, 40)
	jobs := testJobs(60)
	pB := trainedPredictor(t, 40)
	if _, err := pB.Train(jobs[40:]); err != nil { // pB diverges from pA
		t.Fatal(err)
	}

	dir := t.TempDir()
	path := filepath.Join(dir, "model.ckpt")
	if err := pA.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	prev, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Counting pass: discover every fault point a successful save hits,
	// and capture the bytes a completed save of pB produces.
	counter := &fault.Injector{}
	pB.SetFS(fault.NewInjectFS(fault.OS{}, counter))
	if err := pB.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	next, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(next, prev) {
		t.Fatal("checkpoints A and B serialize identically; matrix cannot distinguish old from new")
	}
	counts := counter.Counts()
	if counts[fault.OpWrite] < 2 || counts[fault.OpRename] != 1 || counts[fault.OpSync] != 1 {
		t.Fatalf("unexpected fault-point census: %v", counts)
	}

	matrix := fault.Points(counts, fault.ModeError, fault.ModeCrash, fault.ModeShortWrite)
	if len(matrix) < 10 {
		t.Fatalf("crash matrix has only %d points: %v", len(matrix), matrix)
	}
	for _, f := range matrix {
		f := f
		t.Run(f.String(), func(t *testing.T) {
			// Reset on-disk state: previous checkpoint in place, no
			// stranded temp from a prior crash case.
			if err := os.WriteFile(path, prev, 0o644); err != nil {
				t.Fatal(err)
			}
			_ = os.Remove(path + ".tmp")

			if f.Mode == fault.ModeShortWrite {
				f.Keep = 7 // tear the write partway
			}
			inj := fault.NewInjector(f)
			pB.SetFS(fault.NewInjectFS(fault.OS{}, inj))
			err := pB.SaveFile(path)
			if err == nil {
				t.Fatalf("save with fault %v reported success", f)
			}
			if f.Mode == fault.ModeCrash && !errors.Is(err, fault.ErrCrash) {
				t.Fatalf("crash fault surfaced as %v", err)
			}
			got, rerr := os.ReadFile(path)
			if rerr != nil {
				t.Fatalf("checkpoint gone after failed save: %v", rerr)
			}
			// Atomicity: the file is either the untouched previous
			// checkpoint (fault hit before the rename committed) or the
			// complete new one (only the post-rename directory sync
			// failed) — never a hybrid or a torn prefix.
			switch {
			case f.Op == fault.OpSyncDir:
				if !bytes.Equal(got, next) {
					t.Fatalf("fault %v: rename committed but file is not the complete new checkpoint", f)
				}
			case !bytes.Equal(got, prev):
				t.Fatalf("fault %v altered the previous checkpoint bytes", f)
			}
			if _, lerr := LoadFile(path); lerr != nil {
				t.Fatalf("checkpoint unloadable after fault %v: %v", f, lerr)
			}
		})
	}
}

// TestLoadTypedErrors pins the typed-error contract: truncations report
// ErrTruncated, damaged bytes report ErrCorrupt, and neither ever
// yields a predictor.
func TestLoadTypedErrors(t *testing.T) {
	p := trainedPredictor(t, 40)
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	t.Run("truncated-header", func(t *testing.T) {
		if _, err := Load(bytes.NewReader(full[:20])); !errors.Is(err, ErrTruncated) {
			t.Fatalf("got %v, want ErrTruncated", err)
		}
	})
	t.Run("truncated-payload", func(t *testing.T) {
		if _, err := Load(bytes.NewReader(full[:len(full)/2])); !errors.Is(err, ErrTruncated) {
			t.Fatalf("got %v, want ErrTruncated", err)
		}
	})
	t.Run("empty", func(t *testing.T) {
		if _, err := Load(bytes.NewReader(nil)); !errors.Is(err, ErrTruncated) {
			t.Fatalf("got %v, want ErrTruncated", err)
		}
	})
	t.Run("bad-magic", func(t *testing.T) {
		b := append([]byte(nil), full...)
		b[0] ^= 0xff
		if _, err := Load(bytes.NewReader(b)); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("got %v, want ErrCorrupt", err)
		}
	})
	t.Run("bad-version", func(t *testing.T) {
		b := append([]byte(nil), full...)
		b[7] = 99
		if _, err := Load(bytes.NewReader(b)); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("got %v, want ErrCorrupt", err)
		}
	})
	t.Run("flipped-payload-byte", func(t *testing.T) {
		b := append([]byte(nil), full...)
		b[len(b)-1] ^= 0x01
		if _, err := Load(bytes.NewReader(b)); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("got %v, want ErrCorrupt", err)
		}
	})
	t.Run("trailing-garbage", func(t *testing.T) {
		b := append(append([]byte(nil), full...), 'x', 'y')
		if _, err := Load(bytes.NewReader(b)); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("got %v, want ErrCorrupt", err)
		}
	})
	t.Run("intact", func(t *testing.T) {
		if _, err := Load(bytes.NewReader(full)); err != nil {
			t.Fatalf("pristine bytes rejected: %v", err)
		}
	})
}

// TestInterruptResumeBitwiseIdentical is the tentpole's training proof:
// interrupting a checkpointed training event at epoch k and resuming
// from the checkpoint yields a saved model byte-identical to the
// uninterrupted same-seed run — parameters, optimizer moments, shuffle
// stream, and event counter all line up.
func TestInterruptResumeBitwiseIdentical(t *testing.T) {
	jobs := testJobs(50)
	cfg := TinyConfig()
	cfg.PredictIO = true
	cfg.Epochs = 2 // ×3 bootstrap ⇒ 6 epochs per head
	scripts := make([]string, len(jobs))
	for i, j := range jobs {
		scripts[i] = j.Script
	}
	dir := t.TempDir()

	// Uninterrupted reference run.
	ref, err := New(cfg, scripts)
	if err != nil {
		t.Fatal(err)
	}
	refLoss, err := ref.TrainCheckpointed(context.Background(), jobs, filepath.Join(dir, "ref.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	var refBytes bytes.Buffer
	if err := ref.Save(&refBytes); err != nil {
		t.Fatal(err)
	}

	// Interrupt at several positions across the event: after the k-th
	// epoch checkpoint (k spans head boundaries: 6 epochs per head × 3
	// heads = 18 checkpoints + 1 final).
	for _, k := range []int{0, 2, 5, 7, 12, 17} {
		k := k
		t.Run(fmt.Sprintf("epoch-%d", k), func(t *testing.T) {
			path := filepath.Join(dir, "int.ckpt")
			p, err := New(cfg, scripts)
			if err != nil {
				t.Fatal(err)
			}
			disarm := fault.Arm(FailpointTrainCheckpoint, fault.Failure{After: k})
			_, err = p.TrainCheckpointed(context.Background(), jobs, path)
			disarm()
			if !errors.Is(err, fault.ErrInjected) {
				t.Fatalf("interrupt %d: train returned %v, want injected interrupt", k, err)
			}

			resumed, loss, err := ResumeTrain(context.Background(), path, jobs)
			if err != nil {
				t.Fatalf("resume after interrupt %d: %v", k, err)
			}
			if loss != refLoss {
				t.Fatalf("interrupt %d: resumed runtime loss %v != reference %v", k, loss, refLoss)
			}
			var got bytes.Buffer
			if err := resumed.Save(&got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got.Bytes(), refBytes.Bytes()) {
				t.Fatalf("interrupt %d: resumed model bytes differ from uninterrupted run", k)
			}
		})
	}
}

// TestResumeCompletedEventIsNoop asserts resuming a checkpoint written
// after its event finished changes nothing — the event counter must not
// advance twice.
func TestResumeCompletedEventIsNoop(t *testing.T) {
	jobs := testJobs(40)
	cfg := TinyConfig()
	cfg.Epochs = 1
	scripts := make([]string, len(jobs))
	for i, j := range jobs {
		scripts[i] = j.Script
	}
	p, err := New(cfg, scripts)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "done.ckpt")
	if _, err := p.TrainCheckpointed(context.Background(), jobs, path); err != nil {
		t.Fatal(err)
	}
	resumed, _, err := ResumeTrain(context.Background(), path, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Events() != p.Events() {
		t.Fatalf("resume of completed event moved the counter: %d vs %d", resumed.Events(), p.Events())
	}
	var a, b bytes.Buffer
	if err := p.Save(&a); err != nil {
		t.Fatal(err)
	}
	if err := resumed.Save(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("resume of completed event altered the model")
	}
}

// TestResumeWindowMismatchRejected guards against resuming an event
// over a different job window than it was interrupted on.
func TestResumeWindowMismatchRejected(t *testing.T) {
	jobs := testJobs(40)
	cfg := TinyConfig()
	cfg.Epochs = 1
	scripts := []string{jobs[0].Script}
	p, err := New(cfg, scripts)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "w.ckpt")
	disarm := fault.Arm(FailpointTrainCheckpoint, fault.Failure{})
	_, err = p.TrainCheckpointed(context.Background(), jobs, path)
	disarm()
	if err == nil {
		t.Fatal("expected interrupt")
	}
	if _, _, err := ResumeTrain(context.Background(), path, jobs[:10]); err == nil {
		t.Fatal("resume with a different window accepted")
	}
}

// TestTrainCtxCancellation asserts a canceled context stops a training
// event promptly and surfaces context.Canceled.
func TestTrainCtxCancellation(t *testing.T) {
	jobs := testJobs(40)
	cfg := TinyConfig()
	cfg.Epochs = 4
	scripts := []string{jobs[0].Script}
	p, err := New(cfg, scripts)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.TrainCtx(ctx, jobs); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if p.Trained() {
		t.Fatal("canceled-before-start event marked the predictor trained")
	}
}

// TestOnlineRetrainCrashRecovery is the satellite's online-loop proof:
// the checkpointed online loop dies mid-save at a later training event,
// and the checkpoint file still holds the previous event's complete,
// loadable model.
func TestOnlineRetrainCrashRecovery(t *testing.T) {
	jobs := testJobs(150)
	cfg := TinyConfig()
	cfg.RetrainEvery = 30
	cfg.TrainWindow = 40
	cfg.Epochs = 1
	path := filepath.Join(t.TempDir(), "online.ckpt")

	// Reference pass: count saves and capture the checkpoint after each
	// event by running the loop to completion once.
	if _, err := RunOnlineCheckpointed(context.Background(), jobs, cfg, path, nil); err != nil {
		t.Fatal(err)
	}
	ref, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Events() < 2 {
		t.Fatalf("trace too short: only %d training events", ref.Events())
	}

	// Crash pass: a fresh deployment (its own checkpoint path — runOnline
	// now resumes from an existing checkpoint, so reusing the completed
	// reference path would skip every event) whose second event's save
	// dies mid-write (torn write, then latched crash — no cleanup runs).
	// Each save performs exactly two writes (frame header, then payload),
	// and saves are sequential, so the 3rd write overall is the first
	// write of the second event's save.
	crashPath := filepath.Join(t.TempDir(), "crash.ckpt")
	inj := fault.NewInjector(fault.Fault{Op: fault.OpWrite, Nth: 3, Mode: fault.ModeCrash})
	_, err = runOnline(context.Background(), jobs, cfg, crashPath, fault.NewInjectFS(fault.OS{}, inj), nil)
	if !errors.Is(err, fault.ErrCrash) {
		t.Fatalf("crashed run returned %v, want ErrCrash", err)
	}
	if len(inj.Fired()) == 0 {
		t.Fatal("crash fault never fired; adjust the write ordinal")
	}

	// Recovery: the file at crashPath is the first event's checkpoint —
	// complete, loadable, and predictive.
	rec, err := LoadFile(crashPath)
	if err != nil {
		t.Fatalf("checkpoint unloadable after mid-save crash: %v", err)
	}
	if !rec.Trained() || rec.Events() != 1 {
		t.Fatalf("recovered model: trained=%v events=%d, want trained after exactly 1 event", rec.Trained(), rec.Events())
	}
	if pred := rec.PredictJob(jobs[0]); pred.RuntimeMin <= 0 {
		t.Fatalf("recovered model predicts nonsense: %+v", pred)
	}
}

// TestOnlineCtxCancellation asserts the online loop honors cancellation
// between submissions.
func TestOnlineCtxCancellation(t *testing.T) {
	jobs := testJobs(100)
	cfg := TinyConfig()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunOnlineCtx(ctx, jobs, cfg, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}
