package prionn

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"prionn/internal/trace"
)

// quantFixture trains one TinyConfig 2D-CNN predictor and takes both a
// float32 snapshot and an int8 snapshot (calibrated on a held-out slice
// of the trace), shared by every quantization test in the package.
type quantFixture struct {
	pred  *Predictor
	f32   *Inference
	int8v *Inference
	jobs  []trace.Job // the full generated trace; [:200] trained, [200:280] calibration
}

var (
	quantOnce sync.Once
	quantFix  quantFixture
)

func quantizedFixture(t *testing.T) *quantFixture {
	t.Helper()
	quantOnce.Do(func() {
		cfg := TinyConfig()
		cfg.Seed = 7
		cfg.Epochs = 10
		cfg.TrainWindow = 200
		jobs := trace.Completed(trace.Generate(trace.Config{Seed: 7, Jobs: 600}))
		scripts := make([]string, 200)
		for i, j := range jobs[:200] {
			scripts[i] = j.Script
		}
		p, err := New(cfg, scripts)
		if err != nil {
			panic(err)
		}
		if _, err := p.Train(jobs[:200]); err != nil {
			panic(err)
		}
		f32, err := p.Snapshot()
		if err != nil {
			panic(err)
		}
		q, err := p.SnapshotQuantized(jobs[200:280])
		if err != nil {
			panic(err)
		}
		quantFix = quantFixture{pred: p, f32: f32, int8v: q, jobs: jobs}
	})
	if quantFix.int8v == nil {
		t.Fatal("quantized fixture failed to build")
	}
	return &quantFix
}

// TestQuantizedSnapshotKernelKind pins the kernel identity every serving
// layer keys caches and stats on.
func TestQuantizedSnapshotKernelKind(t *testing.T) {
	fix := quantizedFixture(t)
	if k := fix.f32.Kernel(); k != KernelF32 {
		t.Fatalf("float snapshot kernel = %q, want %q", k, KernelF32)
	}
	if k := fix.int8v.Kernel(); k != KernelInt8 {
		t.Fatalf("quantized snapshot kernel = %q, want %q", k, KernelInt8)
	}
	if !fix.int8v.Trained() {
		t.Fatal("quantized snapshot of a trained predictor must report Trained")
	}
}

// TestQuantizedSnapshotAccuracyGate is the serving accuracy gate the
// int8 path ships behind, on the in-distribution evaluation the paper's
// figures use: jobs from the same workload stream as the training
// window, disjoint from both it and the calibration slice.
//
// Two criteria, both per head:
//
//  1. Accuracy parity — the fraction of jobs whose predicted runtime
//     class / IO bin matches the job's actual class may degrade by at
//     most 0.5 percentage points relative to float32. This is the gate
//     that matters for serving: the int8 model must predict the
//     workload as well as the float model.
//  2. Agreement floor — int8 and f32 must pick the same class on ≥95%
//     of jobs. The residual flips sit on bin-boundary ties where the
//     float logit gap is below the int8 path's quantization noise
//     (≈0.5% relative activation error per layer — see DESIGN.md §11),
//     so they are coin flips between equally-supported bins; parity
//     (criterion 1) verifies they are accuracy-neutral.
func TestQuantizedSnapshotAccuracyGate(t *testing.T) {
	fix := quantizedFixture(t)
	eval := trace.Completed(trace.Generate(trace.Config{Seed: 7, Jobs: 2000}))[280:]
	scripts := make([]string, len(eval))
	for i, j := range eval {
		scripts[i] = fix.f32.InputText(j.Script, j.InputDeck)
	}
	want := fix.f32.Predict(scripts)
	got := fix.int8v.Predict(scripts)
	n := len(eval)
	v := fix.f32
	type head struct {
		name             string
		accF, accQ, flip int
	}
	heads := []*head{{name: "runtime"}, {name: "read"}, {name: "write"}}
	for i, j := range eval {
		actual := [3]int{
			v.rbins.Class(j.ActualMin()),
			v.iobin.Class(float64(j.ReadBytes)),
			v.iobin.Class(float64(j.WriteBytes)),
		}
		predF := [3]int{
			v.rbins.Class(want[i].RuntimeMin),
			v.iobin.Class(want[i].ReadBytes),
			v.iobin.Class(want[i].WriteBytes),
		}
		predQ := [3]int{
			v.rbins.Class(got[i].RuntimeMin),
			v.iobin.Class(got[i].ReadBytes),
			v.iobin.Class(got[i].WriteBytes),
		}
		for h := range heads {
			if predF[h] == actual[h] {
				heads[h].accF++
			}
			if predQ[h] == actual[h] {
				heads[h].accQ++
			}
			if predF[h] != predQ[h] {
				heads[h].flip++
			}
		}
	}
	for _, h := range heads {
		delta := float64(h.accF-h.accQ) / float64(n)
		flipRate := float64(h.flip) / float64(n)
		t.Logf("%s head: f32 acc %.4f, int8 acc %.4f (delta %+.4f), flip rate %.4f",
			h.name, float64(h.accF)/float64(n), float64(h.accQ)/float64(n), -delta, flipRate)
		if delta > 0.005 {
			t.Errorf("%s head: int8 accuracy degrades by %.2f pp on %d jobs (gate: 0.5 pp)",
				h.name, 100*delta, n)
		}
		if flipRate > 0.05 {
			t.Errorf("%s head: int8 disagrees with f32 on %.1f%% of %d jobs (gate: 5%%)",
				h.name, 100*flipRate, n)
		}
	}
}

// TestQuantizedSnapshotDeterministicAcrossClones pins the cluster
// contract: a clone of an int8 snapshot shares its immutable quantized
// heads and predicts bitwise identically.
func TestQuantizedSnapshotDeterministicAcrossClones(t *testing.T) {
	fix := quantizedFixture(t)
	clone, err := fix.int8v.Clone()
	if err != nil {
		t.Fatal(err)
	}
	if clone.qruntime != fix.int8v.qruntime {
		t.Fatal("clone of an int8 snapshot must share its immutable quantized heads")
	}
	for _, j := range fix.jobs[80:100] {
		want := fix.int8v.PredictOne(j.Script)
		if got := clone.PredictOne(j.Script); got != want {
			t.Fatalf("clone prediction %+v differs from original %+v", got, want)
		}
	}
}

// TestQuantizedSnapshotPersistRoundTrip proves the frameVersionQuant
// wire format reproduces bitwise-identical predictions, and that the
// quantized artifact is dramatically smaller than the float checkpoint
// (int8 weights, no Adam moments) — the size win the serving switch is
// partly for.
func TestQuantizedSnapshotPersistRoundTrip(t *testing.T) {
	fix := quantizedFixture(t)
	var qbuf, fbuf bytes.Buffer
	if err := fix.int8v.SaveQuantized(&qbuf); err != nil {
		t.Fatal(err)
	}
	if err := fix.pred.Save(&fbuf); err != nil {
		t.Fatal(err)
	}
	if max := fbuf.Len() * 3 / 10; qbuf.Len() > max {
		t.Errorf("quantized frame is %d bytes; want ≤30%% of the %d-byte float frame (%d)",
			qbuf.Len(), fbuf.Len(), max)
	}
	loaded, err := LoadQuantized(bytes.NewReader(qbuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Kernel() != KernelInt8 {
		t.Fatalf("loaded snapshot kernel = %q", loaded.Kernel())
	}
	for _, j := range fix.jobs[100:120] {
		want := fix.int8v.PredictOne(j.Script)
		if got := loaded.PredictOne(j.Script); got != want {
			t.Fatalf("loaded prediction %+v differs from original %+v", got, want)
		}
	}
}

// TestQuantizedSnapshotFileRoundTrip drives the crash-safe file pair.
func TestQuantizedSnapshotFileRoundTrip(t *testing.T) {
	fix := quantizedFixture(t)
	path := t.TempDir() + "/snap.prionn8"
	if err := fix.int8v.SaveQuantizedFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadQuantizedFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want := fix.int8v.PredictOne(fix.jobs[0].Script)
	if got := loaded.PredictOne(fix.jobs[0].Script); got != want {
		t.Fatalf("file round trip: %+v vs %+v", got, want)
	}
}

// TestQuantizedFrameVersionSeparation pins the format-version byte: the
// float loader rejects quantized frames and vice versa, both with
// ErrCorrupt — mixing the two artifact kinds is detected at the header.
func TestQuantizedFrameVersionSeparation(t *testing.T) {
	fix := quantizedFixture(t)
	var qbuf, fbuf bytes.Buffer
	if err := fix.int8v.SaveQuantized(&qbuf); err != nil {
		t.Fatal(err)
	}
	if err := fix.pred.Save(&fbuf); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(bytes.NewReader(qbuf.Bytes())); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Load(quantized frame) = %v, want ErrCorrupt", err)
	}
	if _, err := LoadQuantized(bytes.NewReader(fbuf.Bytes())); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("LoadQuantized(float frame) = %v, want ErrCorrupt", err)
	}
}

// TestSnapshotQuantizedContracts pins the error paths: an untrained
// predictor and an empty calibration slice are rejected, and
// SaveQuantized on a float view is an error.
func TestSnapshotQuantizedContracts(t *testing.T) {
	cfg := TinyConfig()
	p, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.SnapshotQuantized(testJobs(10)); err == nil {
		t.Fatal("SnapshotQuantized on an untrained predictor must fail")
	}
	fix := quantizedFixture(t)
	if _, err := fix.pred.SnapshotQuantized(nil); err == nil {
		t.Fatal("SnapshotQuantized with no calibration jobs must fail")
	}
	if err := fix.f32.SaveQuantized(&bytes.Buffer{}); err == nil {
		t.Fatal("SaveQuantized on a float32 snapshot must fail")
	}
}
