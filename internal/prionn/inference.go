package prionn

import (
	"math/rand"

	"prionn/internal/mapping"
	"prionn/internal/nn"
	"prionn/internal/tensor"
)

// Inference is the read-only prediction view of a Predictor: the data
// mapping plus the classifier forward passes, with no optimizer state,
// RNG, or persistence machinery. It is what a serving layer holds — a
// snapshot of trained weights that can be published atomically while a
// training Predictor keeps mutating its own copies (see Snapshot and
// the internal/serve package).
//
// An Inference is confined to one goroutine at a time: the nn layers
// cache per-call state (ReLU masks, conv column matrices, cached
// inputs) even during inference-mode forwards, so two goroutines must
// not call Predict on the same Inference concurrently. The serve layer
// honors this by funneling every coalesced batch through a single
// inference loop; swapping to a new snapshot never requires locking
// because each snapshot owns its weights outright.
type Inference struct {
	cfg       Config
	transform mapping.Transform

	runtime *nn.Sequential
	read    *nn.Sequential
	write   *nn.Sequential
	power   *nn.Sequential

	// kernel selects the forward-pass arithmetic: KernelF32 runs the
	// float heads above; KernelInt8 runs the quantized heads below
	// (built by Predictor.SnapshotQuantized, restored by LoadQuantized).
	kernel   KernelKind
	qruntime *nn.QModel
	qread    *nn.QModel
	qwrite   *nn.QModel
	qpower   *nn.QModel

	rbins runtimeBins
	iobin ioBins
	pbins ioBins

	trained bool
}

// KernelKind names the forward-pass arithmetic of an Inference. It is
// part of a snapshot's identity: the serving layers tag caches and
// stats with it, because f32 and int8 snapshots of the same weights are
// distinct predictors (they may disagree on a small fraction of bin
// assignments, within the accuracy gate's bound).
type KernelKind string

const (
	// KernelF32 is the float32 blocked-GEMM path (the default).
	KernelF32 KernelKind = "f32"
	// KernelInt8 is the quantized path: int8 weights, uint8
	// activations, int32 accumulation, dequantized only at the logits.
	KernelInt8 KernelKind = "int8"
)

// Kernel returns the view's forward-pass kind. The zero value of
// Inference (and every snapshot taken before quantization existed)
// reports KernelF32.
func (v *Inference) Kernel() KernelKind {
	if v.kernel == "" {
		return KernelF32
	}
	return v.kernel
}

// view returns an Inference sharing the predictor's heads in place —
// the zero-copy view the Predictor's own Predict path runs through.
// It inherits the predictor's single-goroutine confinement.
func (p *Predictor) view() *Inference {
	return &Inference{
		cfg:       p.Config,
		transform: p.transform,
		runtime:   p.runtime,
		read:      p.read,
		write:     p.write,
		power:     p.power,
		rbins:     p.rbins,
		iobin:     p.iobin,
		pbins:     p.pbins,
		trained:   p.trained,
	}
}

// Snapshot returns an Inference with deep-copied weights: a frozen
// picture of the predictor at this instant, safe to hand to a serving
// goroutine while the predictor continues training. The copy shares the
// (immutable) word2vec embedding and transform but owns every model
// parameter tensor, so subsequent Train calls on the predictor never
// show through. Snapshot does not consume the predictor's RNG stream,
// so taking one leaves training bitwise-reproducible.
func (p *Predictor) Snapshot() (*Inference, error) {
	return p.view().Clone()
}

// Clone returns a deep copy of the view: same config, transform, and
// bins, with every head's parameters copied into freshly built models.
// Because forwards mutate per-layer caches even in inference mode, a
// shared Inference is confined to one goroutine — a serving cluster
// therefore hands each replica its own Clone so the replicas' inference
// loops never touch common layer state. Clones are bitwise-equivalent:
// a prediction from a clone is identical to one from the original.
//
// Quantized heads are immutable and stateless (see nn.QModel), so an
// int8 view's clone shares them — the deep copy applies only to the
// float heads, which an int8 snapshot does not carry.
func (v *Inference) Clone() (*Inference, error) {
	out := *v
	// Fresh heads are built with a throwaway RNG (their He-init values
	// are immediately overwritten by the parameter copy), so cloning —
	// and Predictor.Snapshot, which delegates here — never consumes a
	// training RNG stream.
	scratch := rand.New(rand.NewSource(0))
	arch := nn.ArchConfig{
		Rows:     v.cfg.Rows,
		Cols:     v.cfg.Cols,
		Channels: v.transform.Channels(),
		Classes:  0,
		Width:    v.cfg.Width,
	}
	clone := func(src *nn.Sequential, classes int) (*nn.Sequential, error) {
		if src == nil {
			return nil, nil
		}
		a := arch
		a.Classes = classes
		var m *nn.Sequential
		switch v.cfg.Model {
		case ModelNN:
			m = nn.NewFullyConnected(scratch, a)
		case Model1DCNN:
			m = nn.NewCNN1D(scratch, a)
		default:
			m = nn.NewCNN2D(scratch, a)
		}
		if err := m.CopyParamsFrom(src); err != nil {
			return nil, err
		}
		return m, nil
	}
	var err error
	if out.runtime, err = clone(v.runtime, v.cfg.RuntimeClasses); err != nil {
		return nil, err
	}
	if out.read, err = clone(v.read, v.cfg.IOClasses); err != nil {
		return nil, err
	}
	if out.write, err = clone(v.write, v.cfg.IOClasses); err != nil {
		return nil, err
	}
	if out.power, err = clone(v.power, v.cfg.PowerClasses); err != nil {
		return nil, err
	}
	return &out, nil
}

// Config returns the configuration the view was built with.
func (v *Inference) Config() Config { return v.cfg }

// RuntimeClass maps a runtime in minutes onto the view's classifier
// bins — the class a perfect model would emit for that runtime. Shadow
// evaluation uses it to score class accuracy between two views' decoded
// predictions on the same bin layout.
func (v *Inference) RuntimeClass(minutes int) int { return v.rbins.Class(minutes) }

// IOClass maps a total byte count onto the view's IO classifier bins;
// the class-accuracy analogue of RuntimeClass for the read/write heads.
func (v *Inference) IOClass(bytes float64) int { return v.iobin.Class(bytes) }

// Trained reports whether the underlying predictor had completed at
// least one training event when the view was taken. An untrained view
// emits meaningless forward passes; callers (the serve layer) must fall
// back to the job's user-requested runtime instead — the paper's
// behaviour before the first training event.
func (v *Inference) Trained() bool { return v.trained }

// InputText assembles the model input for one job: the script, with the
// input deck appended when IncludeDeck is set.
func (v *Inference) InputText(script, deck string) string {
	if v.cfg.IncludeDeck && deck != "" {
		return script + "\n" + deck
	}
	return script
}

// MapTexts transforms already-assembled input texts into the model
// input layout (the mapping stage of a prediction). The NN and 1D-CNN
// consume the flattened 1D sequence; the 2D-CNN consumes the 2D matrix.
// Both views share the same underlying mapped buffer (§2.1).
func (v *Inference) MapTexts(texts []string) *tensor.Tensor {
	x := mapping.MapBatch(texts, v.transform, v.cfg.Rows, v.cfg.Cols)
	if v.cfg.Model == Model1DCNN {
		return x.Reshape(x.Dim(0), v.transform.Channels(), 1, v.cfg.Rows*v.cfg.Cols)
	}
	return x
}

// PredictMapped runs the classifier forward passes over an
// already-mapped batch (the forward stage of a prediction) and decodes
// the argmax classes through the bins.
//
//prionnvet:confined
func (v *Inference) PredictMapped(x *tensor.Tensor) []Prediction {
	if v.Kernel() == KernelInt8 {
		return v.predictMappedInt8(x)
	}
	n := x.Dim(0)
	out := make([]Prediction, n)
	for i, c := range v.runtime.PredictClasses(x) {
		out[i].RuntimeMin = v.rbins.Minutes(c)
	}
	if v.cfg.PredictIO {
		for i, c := range v.read.PredictClasses(x) {
			out[i].ReadBytes = v.iobin.Bytes(c)
		}
		for i, c := range v.write.PredictClasses(x) {
			out[i].WriteBytes = v.iobin.Bytes(c)
		}
	}
	if v.cfg.PredictPower {
		for i, c := range v.power.PredictClasses(x) {
			out[i].PowerW = v.pbins.Bytes(c)
		}
	}
	return out
}

// predictMappedInt8 is the quantized forward stage: identical decoding,
// but the classes come from the int8 heads. The quantized models
// allocate per call and cache nothing, so this path has no per-view
// mutable state — the goroutine confinement of an int8 Inference is
// inherited from the type contract, not required by it.
func (v *Inference) predictMappedInt8(x *tensor.Tensor) []Prediction {
	n := x.Dim(0)
	out := make([]Prediction, n)
	for i, c := range v.qruntime.PredictClasses(x) {
		out[i].RuntimeMin = v.rbins.Minutes(c)
	}
	if v.cfg.PredictIO {
		for i, c := range v.qread.PredictClasses(x) {
			out[i].ReadBytes = v.iobin.Bytes(c)
		}
		for i, c := range v.qwrite.PredictClasses(x) {
			out[i].WriteBytes = v.iobin.Bytes(c)
		}
	}
	if v.cfg.PredictPower {
		for i, c := range v.qpower.PredictClasses(x) {
			out[i].PowerW = v.pbins.Bytes(c)
		}
	}
	return out
}

// Predict returns predictions for a batch of job scripts: MapTexts
// followed by PredictMapped. See the type comment for the concurrency
// contract and Trained for the untrained-weights contract.
//
//prionnvet:confined
func (v *Inference) Predict(scripts []string) []Prediction {
	if len(scripts) == 0 {
		return nil
	}
	return v.PredictMapped(v.MapTexts(scripts))
}

// PredictOne returns the prediction for a single job script.
//
//prionnvet:confined
func (v *Inference) PredictOne(script string) Prediction {
	return v.Predict([]string{script})[0]
}
