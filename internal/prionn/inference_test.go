package prionn

import (
	"testing"

	"prionn/internal/trace"
)

func trainedSnapshotPredictor(t *testing.T, seed int64) (*Predictor, []trace.Job) {
	t.Helper()
	cfg := TinyConfig()
	cfg.Seed = seed
	jobs := trace.Completed(trace.Generate(trace.Config{Seed: seed, Jobs: 120}))
	window := jobs
	if len(window) > cfg.TrainWindow {
		window = window[:cfg.TrainWindow]
	}
	scripts := make([]string, len(window))
	for i, j := range window {
		scripts[i] = j.Script
	}
	p, err := New(cfg, scripts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Train(window); err != nil {
		t.Fatal(err)
	}
	return p, jobs
}

// TestSnapshotPredictsIdentically: a Snapshot must reproduce the
// predictor's own predictions bitwise — same mapping, same weights,
// same bins.
func TestSnapshotPredictsIdentically(t *testing.T) {
	p, jobs := trainedSnapshotPredictor(t, 7)
	v, err := p.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !v.Trained() {
		t.Fatal("snapshot of a trained predictor must report Trained")
	}
	for _, j := range jobs[:20] {
		want := p.PredictOne(j.Script)
		got := v.PredictOne(j.Script)
		if got != want {
			t.Fatalf("snapshot prediction %+v differs from predictor %+v", got, want)
		}
	}
}

// TestSnapshotIsolatedFromRetraining: weights published in a snapshot
// must not move when the predictor trains again — the property the
// serve layer's atomic swap depends on.
func TestSnapshotIsolatedFromRetraining(t *testing.T) {
	p, jobs := trainedSnapshotPredictor(t, 11)
	v, err := p.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	before := v.Predict([]string{jobs[0].Script, jobs[1].Script, jobs[2].Script})
	if _, err := p.Train(jobs[:30]); err != nil {
		t.Fatal(err)
	}
	after := v.Predict([]string{jobs[0].Script, jobs[1].Script, jobs[2].Script})
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("snapshot prediction changed after retraining: %+v -> %+v", before[i], after[i])
		}
	}
}

// TestSnapshotDoesNotPerturbTraining: taking a snapshot mid-run must
// not consume the predictor's RNG stream — two runs, one with a
// snapshot taken between training events and one without, must end
// bitwise identical.
func TestSnapshotDoesNotPerturbTraining(t *testing.T) {
	run := func(snapshotBetween bool) []Prediction {
		p, jobs := trainedSnapshotPredictor(t, 13)
		if snapshotBetween {
			if _, err := p.Snapshot(); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := p.Train(jobs[:30]); err != nil {
			t.Fatal(err)
		}
		return p.Predict([]string{jobs[0].Script, jobs[5].Script})
	}
	plain := run(false)
	snapped := run(true)
	for i := range plain {
		if plain[i] != snapped[i] {
			t.Fatalf("snapshot perturbed training: %+v vs %+v", plain[i], snapped[i])
		}
	}
}

// TestSnapshotUntrained: an untrained predictor's snapshot must say so,
// which is what the serve layer keys its requested-runtime fallback on.
func TestSnapshotUntrained(t *testing.T) {
	cfg := TinyConfig()
	p, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	v, err := p.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if v.Trained() {
		t.Fatal("snapshot of an untrained predictor must report !Trained")
	}
}
