package prionn

import (
	"fmt"
	"sort"
	"strings"

	"prionn/internal/mapping"
	"prionn/internal/tensor"
)

// Saliency is a per-character attribution map for one prediction: which
// parts of the job script drove the predicted class. Values are
// normalized to [0, 1] per script.
type Saliency struct {
	Rows, Cols int
	// Weights holds one attribution per script cell, row-major.
	Weights []float32
	// Grid is the standardized script the attributions refer to.
	Grid mapping.Grid
}

// ExplainRuntime computes a gradient×input saliency map for the runtime
// head's prediction on one script: the gradient of the predicted class
// logit with respect to the mapped input, summed in magnitude over
// embedding channels. High values mark characters whose perturbation
// would most change the prediction — on PRIONN's workloads these land on
// application names and numeric parameters, the information the paper
// argues manual parsers discard.
func (p *Predictor) ExplainRuntime(script string) Saliency {
	text := script
	grid := mapping.Standardize(text, p.Config.Rows, p.Config.Cols)
	x := p.mapBatch([]string{text})

	// Forward in train mode so conv layers cache their columns, then
	// backpropagate a one-hot gradient at the argmax logit.
	for _, l := range p.runtime.Layers {
		for _, g := range l.Grads() {
			g.Zero()
		}
	}
	logits := p.runtime.Forward(x, true)
	class := logits.ArgMaxRow(0)
	dlogits := tensor.New(logits.Shape...)
	dlogits.Set(1, 0, class)

	dy := dlogits
	var dx *tensor.Tensor
	for i := len(p.runtime.Layers) - 1; i >= 0; i-- {
		dy = p.runtime.Layers[i].Backward(dy)
	}
	dx = dy // gradient with respect to the mapped input [1, C, R, Cols]

	cells := p.Config.Rows * p.Config.Cols
	ch := p.transform.Channels()
	weights := make([]float32, cells)
	var maxW float32
	for c := 0; c < ch; c++ {
		for i := 0; i < cells; i++ {
			g := dx.Data[c*cells+i] * x.Data[c*cells+i]
			if g < 0 {
				g = -g
			}
			weights[i] += g
			if weights[i] > maxW {
				maxW = weights[i]
			}
		}
	}
	if maxW > 0 {
		inv := 1 / maxW
		for i := range weights {
			weights[i] *= inv
		}
	}
	return Saliency{Rows: p.Config.Rows, Cols: p.Config.Cols, Weights: weights, Grid: grid}
}

// TopCells returns the n highest-attribution cells as (row, col, char,
// weight) records, most salient first.
func (s Saliency) TopCells(n int) []SalientCell {
	cells := make([]SalientCell, 0, len(s.Weights))
	for i, w := range s.Weights {
		if w == 0 {
			continue
		}
		cells = append(cells, SalientCell{
			Row: i / s.Cols, Col: i % s.Cols,
			Char: s.Grid.Chars[i], Weight: w,
		})
	}
	sort.Slice(cells, func(a, b int) bool { return cells[a].Weight > cells[b].Weight })
	if n < len(cells) {
		cells = cells[:n]
	}
	return cells
}

// SalientCell is one attributed script character.
type SalientCell struct {
	Row, Col int
	Char     byte
	Weight   float32
}

// Render prints the script with salient characters highlighted: cells in
// the top-weight decile are wrapped in brackets. Useful for terminal
// inspection of what the model reads.
func (s Saliency) Render() string {
	var b strings.Builder
	for r := 0; r < s.Rows; r++ {
		line := make([]byte, 0, s.Cols+16)
		blank := true
		for c := 0; c < s.Cols; c++ {
			i := r*s.Cols + c
			ch := s.Grid.Chars[i]
			if ch != ' ' {
				blank = false
			}
			if s.Weights[i] > 0.5 {
				line = append(line, '[', ch, ']')
			} else {
				line = append(line, ch)
			}
		}
		if blank {
			continue
		}
		fmt.Fprintf(&b, "%s\n", strings.TrimRight(string(line), " "))
	}
	return b.String()
}
