package prionn

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	jobs := testJobs(60)
	cfg := TinyConfig()
	cfg.PredictIO = true
	cfg.PredictPower = true
	cfg.IncludeDeck = true
	cfg.Epochs = 1
	scripts := make([]string, len(jobs))
	for i, j := range jobs {
		scripts[i] = j.Script
	}
	p, err := New(cfg, scripts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Train(jobs[:40]); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !restored.Trained() {
		t.Fatal("restored predictor lost trained state")
	}

	// Predictions must be bit-identical.
	for _, j := range jobs[:10] {
		a, b := p.PredictJob(j), restored.PredictJob(j)
		if a != b {
			t.Fatalf("prediction differs after restore: %+v vs %+v", a, b)
		}
	}
}

func TestSaveLoadFile(t *testing.T) {
	jobs := testJobs(40)
	cfg := TinyConfig()
	cfg.PredictIO = false
	cfg.Epochs = 1
	scripts := []string{jobs[0].Script}
	p, err := New(cfg, scripts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Train(jobs[:20]); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.gob")
	if err := p.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := restored.PredictJob(jobs[0]), p.PredictJob(jobs[0]); got != want {
		t.Fatalf("file round trip differs: %+v vs %+v", got, want)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
}

func TestLoadGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a model"))); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile("/nonexistent/model.gob"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestSaveLoadPreservesEmbedding(t *testing.T) {
	jobs := testJobs(30)
	cfg := TinyConfig()
	cfg.PredictIO = false
	cfg.Epochs = 1
	scripts := make([]string, len(jobs))
	for i, j := range jobs {
		scripts[i] = j.Script
	}
	p, err := New(cfg, scripts)
	if err != nil {
		t.Fatal(err)
	}
	p.Train(jobs[:20])
	var buf bytes.Buffer
	p.Save(&buf)
	restored, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 128; c++ {
		va := p.emb.Vectors[c]
		vb := restored.emb.Vectors[c]
		for d := range va {
			if va[d] != vb[d] {
				t.Fatal("embedding changed across persistence")
			}
		}
	}
}

func TestWarmStartSurvivesPersistence(t *testing.T) {
	// Save → load → continue training must work (optimizer state is
	// rebuilt, parameters persist).
	jobs := testJobs(80)
	cfg := TinyConfig()
	cfg.PredictIO = false
	cfg.Epochs = 1
	scripts := make([]string, len(jobs))
	for i, j := range jobs {
		scripts[i] = j.Script
	}
	p, _ := New(cfg, scripts)
	p.Train(jobs[:40])
	var buf bytes.Buffer
	p.Save(&buf)
	restored, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := restored.Train(jobs[40:]); err != nil {
		t.Fatalf("training after restore failed: %v", err)
	}
}
