package prionn

import "math"

// runtimeBins maps runtimes in minutes to classifier classes and back.
// With Classes == MaxMin each class is one minute, the paper's setting
// ("the output layer is 960 nodes ... each node is associated with a
// runtime in minutes between 0 and 960").
type runtimeBins struct {
	Classes int
	MaxMin  int
}

// Class returns the class index for a runtime in minutes.
func (b runtimeBins) Class(minutes int) int {
	if minutes < 0 {
		minutes = 0
	}
	if minutes > b.MaxMin {
		minutes = b.MaxMin
	}
	c := minutes * b.Classes / (b.MaxMin + 1)
	if c >= b.Classes {
		c = b.Classes - 1
	}
	return c
}

// Minutes returns the representative runtime (bin center) of a class.
func (b runtimeBins) Minutes(class int) int {
	if class < 0 {
		class = 0
	}
	if class >= b.Classes {
		class = b.Classes - 1
	}
	w := float64(b.MaxMin+1) / float64(b.Classes)
	return int(math.Round((float64(class) + 0.5) * w))
}

// ioBins maps total byte counts to log-scale classes and back. Class 0
// absorbs everything at or below Min (including zero-IO jobs); the
// remaining classes split [log Min, log Max] evenly.
type ioBins struct {
	Classes  int
	Min, Max float64
}

// Class returns the class index for a byte count. Non-finite and
// non-positive inputs are defensive no-information cases: NaN and
// anything at or below Min (including negatives and zero-IO jobs)
// clamp to class 0, +Inf clamps to the top class. Without the explicit
// NaN guard, NaN fell through both range checks (every comparison with
// NaN is false) and 1+int(NaN*…) produced an out-of-range class that
// corrupted one-hot label construction.
func (b ioBins) Class(bytes float64) int {
	if math.IsNaN(bytes) || bytes <= b.Min {
		return 0
	}
	if bytes >= b.Max {
		return b.Classes - 1
	}
	// Config.Validate enforces 0 < Min < Max for every predictor-built
	// ioBins, so the logs below are finite; a hand-built degenerate range
	// (Min <= 0 makes log(Min) NaN/-Inf) still cannot escape [0,
	// Classes-1] thanks to the clamps on both sides.
	frac := (math.Log(bytes) - math.Log(b.Min)) / (math.Log(b.Max) - math.Log(b.Min))
	c := 1 + int(frac*float64(b.Classes-1))
	if math.IsNaN(frac) || c < 1 {
		return 0
	}
	if c >= b.Classes {
		c = b.Classes - 1
	}
	return c
}

// Bytes returns the representative byte count (geometric bin center) of
// a class. Class 0 maps to zero bytes.
func (b ioBins) Bytes(class int) float64 {
	if class <= 0 {
		return 0
	}
	if class >= b.Classes {
		class = b.Classes - 1
	}
	span := (math.Log(b.Max) - math.Log(b.Min)) / float64(b.Classes-1)
	return math.Exp(math.Log(b.Min) + (float64(class-1)+0.5)*span)
}
