package prionn

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzLoadPredictor throws arbitrary bytes — seeded with a valid saved
// predictor plus truncations and bit-flips of it — at Load. The
// contract under test: Load never panics and never returns a predictor
// from damaged input; every rejection is a typed ErrTruncated/ErrCorrupt
// (or a plain error for well-framed payloads whose gob content is
// semantically invalid).
func FuzzLoadPredictor(f *testing.F) {
	jobs := testJobs(30)
	cfg := TinyConfig()
	cfg.Epochs = 1
	scripts := make([]string, len(jobs))
	for i, j := range jobs {
		scripts[i] = j.Script
	}
	p, err := New(cfg, scripts)
	if err != nil {
		f.Fatal(err)
	}
	if _, err := p.Train(jobs); err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()

	f.Add(valid)
	f.Add([]byte{})
	f.Add(valid[:frameHeaderLen])
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:len(valid)-1])
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x40
	f.Add(flipped)
	f.Add(append(append([]byte(nil), valid...), 0xde, 0xad))
	f.Add(bytes.Repeat([]byte{0xff}, 256))

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Load(bytes.NewReader(data))
		if err != nil {
			if p != nil {
				t.Fatal("Load returned both a predictor and an error")
			}
			return
		}
		if p == nil {
			t.Fatal("Load returned neither a predictor nor an error")
		}
		// Anything Load accepts must be well-framed: re-reading the
		// frame cannot report damage.
		if _, ferr := readFrame(bytes.NewReader(data)); errors.Is(ferr, ErrTruncated) || errors.Is(ferr, ErrCorrupt) {
			t.Fatalf("Load accepted bytes the frame layer rejects: %v", ferr)
		}
	})
}

// FuzzQuantizedLoad is FuzzLoadPredictor's twin for the quantized
// snapshot frame: LoadQuantized never panics and never returns a
// snapshot from damaged input, rejecting with typed errors. The seeds
// include a valid float32 predictor frame, which the quantized loader
// must refuse at the version byte.
func FuzzQuantizedLoad(f *testing.F) {
	jobs := testJobs(30)
	cfg := TinyConfig()
	cfg.Epochs = 1
	scripts := make([]string, len(jobs))
	for i, j := range jobs {
		scripts[i] = j.Script
	}
	p, err := New(cfg, scripts)
	if err != nil {
		f.Fatal(err)
	}
	if _, err := p.Train(jobs); err != nil {
		f.Fatal(err)
	}
	q, err := p.SnapshotQuantized(jobs[:10])
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := q.SaveQuantized(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	var fbuf bytes.Buffer
	if err := p.Save(&fbuf); err != nil {
		f.Fatal(err)
	}

	f.Add(valid)
	f.Add([]byte{})
	f.Add(valid[:frameHeaderLen])
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:len(valid)-1])
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x40
	f.Add(flipped)
	f.Add(append(append([]byte(nil), valid...), 0xde, 0xad))
	f.Add(fbuf.Bytes()) // a float32 frame: wrong version byte
	f.Add(bytes.Repeat([]byte{0xff}, 256))

	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := LoadQuantized(bytes.NewReader(data))
		if err != nil {
			if v != nil {
				t.Fatal("LoadQuantized returned both a snapshot and an error")
			}
			return
		}
		if v == nil {
			t.Fatal("LoadQuantized returned neither a snapshot nor an error")
		}
		if v.Kernel() != KernelInt8 {
			t.Fatalf("accepted snapshot has kernel %q", v.Kernel())
		}
		if _, ferr := readFrameV(bytes.NewReader(data), frameVersionQuant); errors.Is(ferr, ErrTruncated) || errors.Is(ferr, ErrCorrupt) {
			t.Fatalf("LoadQuantized accepted bytes the frame layer rejects: %v", ferr)
		}
	})
}
