package prionn

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"sort"

	"prionn/internal/fault"
	"prionn/internal/trace"
)

// OnlineRecord pairs one submitted job with the prediction PRIONN made
// at its submission instant.
type OnlineRecord struct {
	Job  trace.Job
	Pred Prediction
	// Predicted is false for jobs submitted before the first training
	// event (no model existed yet) and for canceled jobs.
	Predicted bool
}

// RunOnline emulates the paper's deployment (§2.3): jobs arrive in
// submission order; each job's resources are predicted at submission
// time; after every cfg.RetrainEvery submissions the models are
// retrained — warm-start — on the cfg.TrainWindow most recently
// completed jobs (a job counts as completed once its end time has
// passed the current submission clock). The word2vec embedding is
// trained once, on the scripts of the first training window.
//
// progress, when non-nil, is called after every training event with the
// number of submissions processed so far.
func RunOnline(jobs []trace.Job, cfg Config, progress func(done, total int)) ([]OnlineRecord, error) {
	return RunOnlineCtx(context.Background(), jobs, cfg, progress)
}

// RunOnlineCtx is RunOnline with cooperative cancellation: the context
// is polled at every submission and inside every training event, so a
// canceled run stops within one minibatch.
func RunOnlineCtx(ctx context.Context, jobs []trace.Job, cfg Config, progress func(done, total int)) ([]OnlineRecord, error) {
	return runOnline(ctx, jobs, cfg, "", nil, progress)
}

// FailpointOnlineSave is the failpoint name fired before each online-
// loop checkpoint write; robustness tests arm it to kill the loop at a
// chosen training event.
const FailpointOnlineSave = "prionn/online/save"

// RunOnlineCheckpointed is RunOnlineCtx with durable progress: after
// every training event the predictor is checkpointed crash-safely at
// path. A deployment killed mid-run (or even mid-save) restarts from
// the last completed event's model via LoadFile instead of retraining
// from scratch — the survivability half of the paper's persistent-tool
// deployment (§2.3).
//
// Restart contract: when a checkpoint already exists at path, the run
// resumes from it — the predictor (embedding included) is restored
// rather than rebuilt, and the persisted event counter tells the loop
// how many training events the previous incarnation completed. Those
// events are replayed as no-ops: the loop skips their retraining and
// leaves their submissions' records unpredicted (the previous
// incarnation already answered them), then continues bitwise-identically
// to an uninterrupted run from the skipped events' state. The replayed
// job stream must match the crashed run's (same jobs, same cfg); a
// checkpoint trained under a different configuration is rejected.
func RunOnlineCheckpointed(ctx context.Context, jobs []trace.Job, cfg Config, path string, progress func(done, total int)) ([]OnlineRecord, error) {
	return runOnline(ctx, jobs, cfg, path, nil, progress)
}

// runOnline is the shared loop. fsys, when non-nil, becomes the
// persistence layer of the internally built predictor — the hook the
// crash-recovery tests use to kill a checkpoint save mid-write.
func runOnline(ctx context.Context, jobs []trace.Job, cfg Config, ckptPath string, fsys fault.FS, progress func(done, total int)) ([]OnlineRecord, error) {
	// Pending completions ordered by end time.
	type completion struct {
		end int64
		idx int
	}
	pending := make([]completion, 0, len(jobs))
	for i, j := range jobs {
		if !j.Canceled {
			pending = append(pending, completion{end: j.SubmitTime + j.ActualSec, idx: i})
		}
	}
	sort.Slice(pending, func(a, b int) bool { return pending[a].end < pending[b].end })

	var completed []int // indices into jobs, in completion order
	pi := 0

	var p *Predictor
	// skipEvents counts training events a previous incarnation already
	// completed and checkpointed: the loop replays them as no-ops so the
	// event cadence (and every later event's shuffle seed) stays aligned
	// with an uninterrupted run.
	skipEvents := 0
	if ckptPath != "" {
		loaded, err := LoadFile(ckptPath)
		switch {
		case err == nil:
			if loaded.Config != cfg {
				return nil, fmt.Errorf("prionn: checkpoint at %s was trained under a different configuration", ckptPath)
			}
			loaded.fs = fsys
			p = loaded
			skipEvents = p.Events()
		case errors.Is(err, fs.ErrNotExist):
			// Fresh start: no checkpoint yet.
		default:
			// A checkpoint exists but cannot be restored (truncated,
			// corrupt, unreadable). Silently retraining from scratch here
			// would discard the warm-start state the caller asked to keep;
			// surface it instead.
			return nil, fmt.Errorf("prionn: restoring checkpoint %s: %w", ckptPath, err)
		}
	}
	eventsFired := 0
	records := make([]OnlineRecord, len(jobs))
	sinceTrain := 0

	for i, j := range jobs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Advance the completion stream to this submission instant.
		for pi < len(pending) && pending[pi].end <= j.SubmitTime {
			completed = append(completed, pending[pi].idx)
			pi++
		}

		sinceTrain++
		if sinceTrain >= cfg.RetrainEvery && len(completed) > 0 {
			if eventsFired < skipEvents {
				// This event was completed and checkpointed by the crashed
				// incarnation: the restored model already contains it.
				// Re-training it would double-apply the window (and
				// misalign every later event's seed), so only the cadence
				// bookkeeping advances. Once the last covered event is
				// replayed, the restored model is exactly the state an
				// uninterrupted run would hold here, and prediction
				// resumes below.
				eventsFired++
				sinceTrain = 0
				if progress != nil {
					progress(i+1, len(jobs))
				}
			} else {
				if err := trainEventAt(ctx, &p, jobs, completed, cfg, ckptPath, fsys); err != nil {
					return nil, err
				}
				eventsFired++
				sinceTrain = 0
				if progress != nil {
					progress(i+1, len(jobs))
				}
			}
		}

		records[i].Job = j
		// eventsFired < skipEvents marks the replayed prefix of a restart:
		// those submissions were answered (and recorded) by the previous
		// incarnation, and their models are unrecoverable — the restored
		// checkpoint holds the state after event skipEvents, not before.
		if p != nil && p.Trained() && !j.Canceled && eventsFired >= skipEvents {
			records[i].Pred = p.PredictJob(j)
			records[i].Predicted = true
		}
	}
	return records, nil
}

// trainEventAt runs one training event of the online loop: build the
// window of the cfg.TrainWindow most recently completed jobs, lazily
// construct the predictor on the first event (training the embedding on
// the first window's scripts), warm-start train, and checkpoint.
func trainEventAt(ctx context.Context, p **Predictor, jobs []trace.Job, completed []int, cfg Config, ckptPath string, fsys fault.FS) error {
	window := completed
	if len(window) > cfg.TrainWindow {
		window = window[len(window)-cfg.TrainWindow:]
	}
	batch := make([]trace.Job, len(window))
	scripts := make([]string, len(window))
	for k, idx := range window {
		batch[k] = jobs[idx]
		scripts[k] = jobs[idx].Script
		if cfg.IncludeDeck {
			scripts[k] += "\n" + jobs[idx].InputDeck
		}
	}
	if *p == nil {
		np, err := New(cfg, scripts)
		if err != nil {
			return err
		}
		np.fs = fsys
		*p = np
	}
	if _, err := (*p).TrainCtx(ctx, batch); err != nil {
		return err
	}
	if ckptPath != "" {
		if err := fault.Here(FailpointOnlineSave); err != nil {
			return err
		}
		if err := (*p).SaveFile(ckptPath); err != nil {
			return err
		}
	}
	return nil
}

// PredictedRecords filters an online run down to the records that carry
// a prediction (post-first-training, non-canceled).
func PredictedRecords(records []OnlineRecord) []OnlineRecord {
	out := make([]OnlineRecord, 0, len(records))
	for _, r := range records {
		if r.Predicted {
			out = append(out, r)
		}
	}
	return out
}
