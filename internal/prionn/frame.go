package prionn

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"path/filepath"

	"prionn/internal/fault"
)

// Checkpoint framing. Every persisted artifact (full model saves and
// mid-training checkpoints) is wrapped in a checksummed frame:
//
//	offset  size  field
//	     0     8  magic "PRIONN\x00" + format version byte
//	     8     8  payload length, little-endian uint64
//	    16    32  SHA-256 of the payload
//	    48     …  payload (gob)
//
// The frame turns every partial-failure mode a crash can produce — a
// truncated file, a torn write, stray bytes — into a typed load error
// instead of a silently wrong model. Combined with the write-temp →
// fsync → atomic-rename writer below, a reader observes either the
// previous complete checkpoint or the new complete checkpoint, never a
// hybrid.

// Frame format versions. The version byte names the payload schema, so
// a float32 predictor frame and a quantized snapshot frame can never be
// confused for one another: loading either through the other's loader
// fails with ErrCorrupt at the header, before any gob decoding.
const (
	// frameVersion is the float32 predictor checkpoint format.
	frameVersion = 1
	// frameVersionQuant is the int8 quantized snapshot format.
	frameVersionQuant = 2
)

var frameMagic = [8]byte{'P', 'R', 'I', 'O', 'N', 'N', 0, frameVersion}

const frameHeaderLen = 8 + 8 + sha256.Size

// Typed load errors. Callers distinguish "the file is short" (a crash
// landed mid-write; retry with the previous checkpoint) from "the bytes
// are wrong" (corruption; the file must be discarded) with errors.Is.
var (
	// ErrTruncated reports a checkpoint cut short: header or payload
	// ends before its declared length.
	ErrTruncated = errors.New("prionn: truncated checkpoint")
	// ErrCorrupt reports checkpoint bytes that are present but wrong:
	// bad magic, unknown version, checksum mismatch, or an undecodable
	// payload.
	ErrCorrupt = errors.New("prionn: corrupt checkpoint")
)

// writeFrame writes a v1 (float32 predictor) frame to w.
func writeFrame(w io.Writer, payload []byte) error {
	return writeFrameV(w, frameVersion, payload)
}

// writeFrameV writes the header (with the given format version byte)
// and payload to w.
func writeFrameV(w io.Writer, version byte, payload []byte) error {
	var hdr [frameHeaderLen]byte
	copy(hdr[:8], frameMagic[:])
	hdr[7] = version
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(len(payload)))
	sum := sha256.Sum256(payload)
	copy(hdr[16:], sum[:])
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame consumes r and returns the verified payload of a v1 frame.
func readFrame(r io.Reader) ([]byte, error) {
	return readFrameV(r, frameVersion)
}

// readFrameV consumes r and returns the verified payload, requiring the
// frame's version byte to match the expected payload schema.
func readFrameV(r io.Reader, version byte) ([]byte, error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("%w: short header", ErrTruncated)
		}
		return nil, err
	}
	if !bytes.Equal(hdr[:7], frameMagic[:7]) {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if hdr[7] != version {
		return nil, fmt.Errorf("%w: format version %d, want %d", ErrCorrupt, hdr[7], version)
	}
	declared := binary.LittleEndian.Uint64(hdr[8:16])
	// Read what is actually there rather than allocating the declared
	// length: a corrupt header must not be able to demand gigabytes.
	payload, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	if uint64(len(payload)) < declared {
		return nil, fmt.Errorf("%w: payload %d of %d bytes", ErrTruncated, len(payload), declared)
	}
	if uint64(len(payload)) > declared {
		return nil, fmt.Errorf("%w: %d bytes past declared payload", ErrCorrupt, uint64(len(payload))-declared)
	}
	sum := sha256.Sum256(payload)
	if !bytes.Equal(sum[:], hdr[16:]) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	return payload, nil
}

// atomicWriteFile persists payload (framed) at path through the
// injectable file-op layer: write to a temp file in the same directory,
// fsync, close, rename over path, fsync the directory. A failure at any
// step leaves the previous contents of path untouched; the temp file is
// removed best-effort (a simulated crash skips even that, as a real
// crash would).
func atomicWriteFile(fsys fault.FS, path string, payload []byte) error {
	return atomicWriteFileV(fsys, path, frameVersion, payload)
}

// atomicWriteFileV is atomicWriteFile with an explicit frame format
// version byte (quantized snapshots persist as frameVersionQuant).
func atomicWriteFileV(fsys fault.FS, path string, version byte, payload []byte) error {
	tmp := path + ".tmp"
	f, err := fsys.Create(tmp)
	if err != nil {
		return err
	}
	cleanup := func() { _ = fsys.Remove(tmp) } // best-effort; path is still intact
	if err := writeFrameV(f, version, payload); err != nil {
		_ = f.Close() // the write error is the one to report
		cleanup()
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		cleanup()
		return err
	}
	if err := f.Close(); err != nil {
		cleanup()
		return err
	}
	if err := fsys.Rename(tmp, path); err != nil {
		cleanup()
		return err
	}
	return fsys.SyncDir(filepath.Dir(path))
}
