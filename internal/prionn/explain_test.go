package prionn

import (
	"strings"
	"testing"
)

func trainedTinyPredictor(t *testing.T) (*Predictor, string) {
	t.Helper()
	jobs := testJobs(60)
	cfg := TinyConfig()
	cfg.PredictIO = false
	cfg.Epochs = 2
	scripts := make([]string, len(jobs))
	for i, j := range jobs {
		scripts[i] = j.Script
	}
	p, err := New(cfg, scripts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Train(jobs[:40]); err != nil {
		t.Fatal(err)
	}
	return p, jobs[0].Script
}

func TestExplainRuntimeShape(t *testing.T) {
	p, script := trainedTinyPredictor(t)
	s := p.ExplainRuntime(script)
	if s.Rows != p.Config.Rows || s.Cols != p.Config.Cols {
		t.Fatalf("saliency extent %dx%d", s.Rows, s.Cols)
	}
	if len(s.Weights) != s.Rows*s.Cols {
		t.Fatalf("weights length %d", len(s.Weights))
	}
	var maxW float32
	for _, w := range s.Weights {
		if w < 0 || w > 1 {
			t.Fatalf("weight %v out of [0,1]", w)
		}
		if w > maxW {
			maxW = w
		}
	}
	if maxW < 0.999 {
		t.Fatalf("max weight %v, want normalized ≈1", maxW)
	}
}

func TestExplainDoesNotPerturbPredictions(t *testing.T) {
	p, script := trainedTinyPredictor(t)
	before := p.PredictOne(script)
	p.ExplainRuntime(script)
	after := p.PredictOne(script)
	if before != after {
		t.Fatalf("explanation changed the model: %+v vs %+v", before, after)
	}
}

func TestTopCells(t *testing.T) {
	p, script := trainedTinyPredictor(t)
	s := p.ExplainRuntime(script)
	top := s.TopCells(5)
	if len(top) == 0 {
		t.Fatal("no salient cells")
	}
	for i := 1; i < len(top); i++ {
		if top[i].Weight > top[i-1].Weight {
			t.Fatal("TopCells not sorted")
		}
	}
	for _, c := range top {
		if c.Row < 0 || c.Row >= s.Rows || c.Col < 0 || c.Col >= s.Cols {
			t.Fatalf("cell out of range: %+v", c)
		}
	}
}

func TestSaliencyRender(t *testing.T) {
	p, script := trainedTinyPredictor(t)
	s := p.ExplainRuntime(script)
	out := s.Render()
	if out == "" {
		t.Fatal("empty render")
	}
	// The render must contain bracket highlighting somewhere (the max
	// cell has weight 1 > 0.5).
	if !strings.Contains(out, "[") {
		t.Fatal("no highlighted cells in render")
	}
}
