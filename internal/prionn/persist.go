package prionn

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"prionn/internal/mapping"
	"prionn/internal/word2vec"
)

// persistedPredictor is the gob wire format for a full predictor: the
// configuration, the trained character embedding, and the parameter
// snapshots of every head. The architecture is rebuilt from the
// configuration on load, then the snapshots are restored into it.
type persistedPredictor struct {
	Config    Config
	Embedding *word2vec.Embedding // nil unless Transform == word2vec
	Trained   bool
	Runtime   []byte
	Read      []byte
	Write     []byte
	Power     []byte
}

// Save serializes the predictor — configuration, embedding, and all
// trained parameters — so a deployment can restore it without retraining
// (the paper's tool runs persistently on a dedicated node; restarting it
// must not lose the warm-start state).
func (p *Predictor) Save(w io.Writer) error {
	pp := persistedPredictor{Config: p.Config, Embedding: p.emb, Trained: p.trained}
	snap := func(m interface{ Save(io.Writer) error }) ([]byte, error) {
		var buf bytes.Buffer
		if err := m.Save(&buf); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	}
	var err error
	if pp.Runtime, err = snap(p.runtime); err != nil {
		return err
	}
	if p.Config.PredictIO {
		if pp.Read, err = snap(p.read); err != nil {
			return err
		}
		if pp.Write, err = snap(p.write); err != nil {
			return err
		}
	}
	if p.Config.PredictPower {
		if pp.Power, err = snap(p.power); err != nil {
			return err
		}
	}
	return gob.NewEncoder(w).Encode(pp)
}

// Load restores a predictor saved with Save.
func Load(r io.Reader) (*Predictor, error) {
	var pp persistedPredictor
	if err := gob.NewDecoder(r).Decode(&pp); err != nil {
		return nil, err
	}
	if err := pp.Config.Validate(); err != nil {
		return nil, fmt.Errorf("prionn: persisted config invalid: %w", err)
	}
	// Rebuild with an empty corpus: the trained embedding is restored
	// directly rather than retrained.
	p, err := New(pp.Config, nil)
	if err != nil {
		return nil, err
	}
	if pp.Config.Transform == TransformWord2Vec {
		if pp.Embedding == nil {
			return nil, fmt.Errorf("prionn: persisted word2vec predictor lacks an embedding")
		}
		p.emb = pp.Embedding
		p.transform = mapping.Word2Vec{Emb: pp.Embedding}
	}
	restore := func(m interface{ Load(io.Reader) error }, data []byte) error {
		return m.Load(bytes.NewReader(data))
	}
	if err := restore(p.runtime, pp.Runtime); err != nil {
		return nil, err
	}
	if pp.Config.PredictIO {
		if err := restore(p.read, pp.Read); err != nil {
			return nil, err
		}
		if err := restore(p.write, pp.Write); err != nil {
			return nil, err
		}
	}
	if pp.Config.PredictPower {
		if err := restore(p.power, pp.Power); err != nil {
			return nil, err
		}
	}
	p.trained = pp.Trained
	return p, nil
}

// SaveFile writes the predictor to a file. A Close failure is reported:
// buffered bytes flushed at close are part of the snapshot, and a
// deployment restored from a truncated file restarts cold.
func (p *Predictor) SaveFile(path string) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	return p.Save(f)
}

// LoadFile restores a predictor from a file written by SaveFile.
func LoadFile(path string) (*Predictor, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer func() { _ = f.Close() }() // read-only; close errors carry no data loss
	return Load(f)
}
