package prionn

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"prionn/internal/fault"
	"prionn/internal/mapping"
	"prionn/internal/nn"
	"prionn/internal/word2vec"
)

// persistedPredictor is the gob wire format for a full predictor: the
// configuration, the trained character embedding, the parameter
// snapshots of every head, and each head's optimizer state. The
// architecture is rebuilt from the configuration on load, then the
// snapshots are restored into it. Optimizer state rides along because
// warm-start retraining (and bitwise-identical resume of an interrupted
// event) continues Adam's moment estimates, not a cold optimizer.
type persistedPredictor struct {
	Config    Config
	Embedding *word2vec.Embedding // nil unless Transform == word2vec
	Trained   bool
	Events    int // completed training events (seeds per-event shuffles)
	Runtime   []byte
	Read      []byte
	Write     []byte
	Power     []byte

	RuntimeOpt []byte
	ReadOpt    []byte
	WriteOpt   []byte
	PowerOpt   []byte
}

// Save serializes the predictor — configuration, embedding, trained
// parameters, and optimizer state — inside a checksummed frame, so a
// deployment can restore it without retraining (the paper's tool runs
// persistently on a dedicated node; restarting it must not lose the
// warm-start state) and so Load can reject truncated or corrupt bytes
// with a typed error instead of restoring garbage.
func (p *Predictor) Save(w io.Writer) error {
	payload, err := p.encode()
	if err != nil {
		return err
	}
	return writeFrame(w, payload)
}

// encode produces the gob payload Save frames.
func (p *Predictor) encode() ([]byte, error) {
	pp := persistedPredictor{Config: p.Config, Embedding: p.emb, Trained: p.trained, Events: p.events}
	snap := func(m interface{ Save(io.Writer) error }) ([]byte, error) {
		var buf bytes.Buffer
		if err := m.Save(&buf); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	}
	snapOpt := func(m *nn.Sequential, opt nn.Optimizer) ([]byte, error) {
		so, ok := opt.(nn.StatefulOptimizer)
		if !ok {
			return nil, nil
		}
		var buf bytes.Buffer
		if err := so.SaveState(m.Params(), &buf); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	}
	var err error
	if pp.Runtime, err = snap(p.runtime); err != nil {
		return nil, err
	}
	if pp.RuntimeOpt, err = snapOpt(p.runtime, p.runtimeOpt); err != nil {
		return nil, err
	}
	if p.Config.PredictIO {
		if pp.Read, err = snap(p.read); err != nil {
			return nil, err
		}
		if pp.Write, err = snap(p.write); err != nil {
			return nil, err
		}
		if pp.ReadOpt, err = snapOpt(p.read, p.readOpt); err != nil {
			return nil, err
		}
		if pp.WriteOpt, err = snapOpt(p.write, p.writeOpt); err != nil {
			return nil, err
		}
	}
	if p.Config.PredictPower {
		if pp.Power, err = snap(p.power); err != nil {
			return nil, err
		}
		if pp.PowerOpt, err = snapOpt(p.power, p.powerOpt); err != nil {
			return nil, err
		}
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(pp); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Load restores a predictor saved with Save. Damaged input is rejected
// with an error wrapping ErrTruncated or ErrCorrupt; Load never returns
// a predictor built from partial bytes.
func Load(r io.Reader) (*Predictor, error) {
	payload, err := readFrame(r)
	if err != nil {
		return nil, err
	}
	return decode(payload)
}

// decode rebuilds a predictor from a verified gob payload.
func decode(payload []byte) (*Predictor, error) {
	var pp persistedPredictor
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&pp); err != nil {
		return nil, fmt.Errorf("%w: decoding payload: %v", ErrCorrupt, err)
	}
	if err := pp.Config.Validate(); err != nil {
		return nil, fmt.Errorf("%w: persisted config invalid: %v", ErrCorrupt, err)
	}
	// Rebuild with an empty corpus: the trained embedding is restored
	// directly rather than retrained.
	p, err := New(pp.Config, nil)
	if err != nil {
		return nil, err
	}
	if pp.Config.Transform == TransformWord2Vec {
		if pp.Embedding == nil {
			return nil, fmt.Errorf("%w: persisted word2vec predictor lacks an embedding", ErrCorrupt)
		}
		p.emb = pp.Embedding
		p.transform = mapping.Word2Vec{Emb: pp.Embedding}
	}
	restore := func(m interface{ Load(io.Reader) error }, data []byte) error {
		if err := m.Load(bytes.NewReader(data)); err != nil {
			return fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		return nil
	}
	restoreOpt := func(m *nn.Sequential, opt nn.Optimizer, data []byte) error {
		if len(data) == 0 {
			return nil // saved without optimizer state; a cold optimizer is still valid
		}
		so, ok := opt.(nn.StatefulOptimizer)
		if !ok {
			return nil
		}
		if err := so.LoadState(m.Params(), bytes.NewReader(data)); err != nil {
			return fmt.Errorf("%w: optimizer state: %v", ErrCorrupt, err)
		}
		return nil
	}
	if err := restore(p.runtime, pp.Runtime); err != nil {
		return nil, err
	}
	if err := restoreOpt(p.runtime, p.runtimeOpt, pp.RuntimeOpt); err != nil {
		return nil, err
	}
	if pp.Config.PredictIO {
		if err := restore(p.read, pp.Read); err != nil {
			return nil, err
		}
		if err := restore(p.write, pp.Write); err != nil {
			return nil, err
		}
		if err := restoreOpt(p.read, p.readOpt, pp.ReadOpt); err != nil {
			return nil, err
		}
		if err := restoreOpt(p.write, p.writeOpt, pp.WriteOpt); err != nil {
			return nil, err
		}
	}
	if pp.Config.PredictPower {
		if err := restore(p.power, pp.Power); err != nil {
			return nil, err
		}
		if err := restoreOpt(p.power, p.powerOpt, pp.PowerOpt); err != nil {
			return nil, err
		}
	}
	p.trained = pp.Trained
	p.events = pp.Events
	return p, nil
}

// SaveFile writes the predictor to path crash-safely: the snapshot goes
// to a temp file that is fsynced and atomically renamed over path, so a
// failure (or a kill) at any point leaves the previous checkpoint at
// path intact — a deployment never observes a truncated model file.
func (p *Predictor) SaveFile(path string) error {
	payload, err := p.encode()
	if err != nil {
		return err
	}
	return atomicWriteFile(p.fileSystem(), path, payload)
}

// LoadFile restores a predictor from a file written by SaveFile.
func LoadFile(path string) (*Predictor, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer func() { _ = f.Close() }() // read-only; close errors carry no data loss
	return Load(f)
}

// SetFS redirects the predictor's persistence writes (SaveFile and
// training checkpoints) through the given file-op layer and returns the
// previous one. The fault-injection tests drive the crash matrix through
// this; nil restores the real filesystem.
func (p *Predictor) SetFS(fsys fault.FS) fault.FS {
	prev := p.fs
	p.fs = fsys
	return prev
}

// fileSystem returns the persistence file-op layer, defaulting to the
// real filesystem.
func (p *Predictor) fileSystem() fault.FS {
	if p.fs == nil {
		return fault.OS{}
	}
	return p.fs
}
