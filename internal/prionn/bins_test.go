package prionn

import (
	"math"
	"testing"
)

// TestIOBinsClassEdgeCases pins the defensive behaviour of ioBins.Class
// on pathological inputs. Before the NaN guard, NaN fell through both
// range checks (every NaN comparison is false) and 1+int(NaN*…)
// produced an out-of-range class that corrupted one-hot label
// construction downstream.
func TestIOBinsClassEdgeCases(t *testing.T) {
	b := ioBins{Classes: 64, Min: 1e3, Max: 1e14}
	cases := []struct {
		name  string
		bytes float64
		want  int
	}{
		{"nan", math.NaN(), 0},
		{"neg-inf", math.Inf(-1), 0},
		{"pos-inf", math.Inf(1), 63},
		{"zero", 0, 0},
		{"negative", -1e9, 0},
		{"sub-min", 999, 0},
		{"at-min", 1e3, 0},
		{"just-above-min", math.Nextafter(1e3, 2e3), 1},
		{"at-max", 1e14, 63},
		{"above-max", 1e20, 63},
	}
	for _, tc := range cases {
		if got := b.Class(tc.bytes); got != tc.want {
			t.Errorf("%s: Class(%g) = %d, want %d", tc.name, tc.bytes, got, tc.want)
		}
	}
}

// TestIOBinsClassAlwaysInRange sweeps every float pathology (plus a
// degenerate hand-built range where log(Min) is not finite) and asserts
// the class can never index outside [0, Classes-1] — the invariant
// one-hot label construction relies on.
func TestIOBinsClassAlwaysInRange(t *testing.T) {
	inputs := []float64{
		math.NaN(), math.Inf(1), math.Inf(-1), 0, -0.0, -1, -1e300,
		math.SmallestNonzeroFloat64, 1, 1e3, 1e7, 1e14, 1e300, math.MaxFloat64,
	}
	bins := []ioBins{
		{Classes: 64, Min: 1e3, Max: 1e14}, // paper-scale config
		{Classes: 2, Min: 1, Max: 10},
		{Classes: 16, Min: 0, Max: 1e9},  // degenerate: log(0) = -Inf
		{Classes: 16, Min: -5, Max: 1e9}, // degenerate: log(-5) = NaN
	}
	for _, b := range bins {
		for _, in := range inputs {
			c := b.Class(in)
			if c < 0 || c >= b.Classes {
				t.Errorf("bins %+v: Class(%g) = %d out of [0, %d)", b, in, c, b.Classes)
			}
		}
	}
}

// TestRuntimeBinsClassBytesRoundTripExact is the exact round-trip
// property for runtime bins: the representative minute of every class
// must land back in that class, for the paper configuration and for
// the coarser ablation/test configurations.
func TestRuntimeBinsClassBytesRoundTripExact(t *testing.T) {
	configs := []runtimeBins{
		{Classes: 960, MaxMin: 960}, // paper: one class per minute
		{Classes: 64, MaxMin: 960},  // TinyConfig
		{Classes: 32, MaxMin: 960},
		{Classes: 2, MaxMin: 10},
	}
	for _, b := range configs {
		for c := 0; c < b.Classes; c++ {
			if got := b.Class(b.Minutes(c)); got != c {
				t.Errorf("runtimeBins %+v: Class(Minutes(%d)) = %d, want %d (Minutes=%d)",
					b, c, got, c, b.Minutes(c))
			}
		}
	}
}

// TestIOBinsClassBytesRoundTripExact is the same exact property for the
// log-scale IO bins (and the power bins, which reuse the type):
// Class(Bytes(c)) == c for every class, so a predicted class decodes to
// a byte count that re-encodes to itself.
func TestIOBinsClassBytesRoundTripExact(t *testing.T) {
	configs := []ioBins{
		{Classes: 64, Min: 1e3, Max: 1e14}, // DefaultConfig IO heads
		{Classes: 32, Min: 1e3, Max: 1e14}, // FastConfig
		{Classes: 16, Min: 1e3, Max: 1e14}, // TinyConfig
		{Classes: 48, Min: 50, Max: 2e5},   // DefaultConfig power head
		{Classes: 2, Min: 1, Max: 10},
	}
	for _, b := range configs {
		for c := 0; c < b.Classes; c++ {
			if got := b.Class(b.Bytes(c)); got != c {
				t.Errorf("ioBins %+v: Class(Bytes(%d)) = %d, want %d (Bytes=%g)",
					b, c, got, c, b.Bytes(c))
			}
		}
	}
}
