package prionn

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"prionn/internal/fault"
	"prionn/internal/mapping"
	"prionn/internal/nn"
	"prionn/internal/trace"
	"prionn/internal/word2vec"
)

// Int8 serving snapshots. SnapshotQuantized freezes the predictor's
// trained heads into int8 quantized twins (per-output-channel symmetric
// weight scales, per-tensor uint8 activation scales calibrated on a
// held-out slice of the training trace) and returns them as an
// Inference whose Kernel() is KernelInt8. The serving stack treats the
// result exactly like a float snapshot — same Predict surface, same
// Clone contract — but its forward passes run on the tensor package's
// integer GEMM and its persisted form is a fraction of the float
// frame's size (int8 weights, no optimizer moments).
//
// The accuracy cost of the scheme is bounded by a gate test in this
// package: on trained heads the int8 and float32 paths must agree on
// runtime classes and IO bins for ≥99.5% of evaluation jobs.

// SnapshotQuantized builds an int8 inference snapshot, calibrating
// every activation range on calib — a held-out slice of completed jobs
// that must be non-empty and should be drawn from the same distribution
// as the training window. The predictor must have trained at least
// once: quantizing He-init noise would produce a well-formed snapshot
// of a meaningless model.
//
// Like Predict, SnapshotQuantized is confined to the predictor's
// goroutine (calibration runs forward passes through the float heads);
// the returned Inference shares nothing mutable with the predictor.
func (p *Predictor) SnapshotQuantized(calib []trace.Job) (*Inference, error) {
	if !p.trained {
		return nil, fmt.Errorf("prionn: cannot quantize an untrained predictor")
	}
	if len(calib) == 0 {
		return nil, fmt.Errorf("prionn: quantization requires a non-empty calibration slice")
	}
	texts := make([]string, len(calib))
	for i, j := range calib {
		texts[i] = p.inputText(j.Script, j.InputDeck)
	}
	x := p.mapBatch(texts)
	out := &Inference{
		cfg:       p.Config,
		transform: p.transform,
		kernel:    KernelInt8,
		rbins:     p.rbins,
		iobin:     p.iobin,
		pbins:     p.pbins,
		trained:   p.trained,
	}
	var err error
	if out.qruntime, err = nn.Quantize(p.runtime, x); err != nil {
		return nil, fmt.Errorf("prionn: quantizing runtime head: %w", err)
	}
	if p.Config.PredictIO {
		if out.qread, err = nn.Quantize(p.read, x); err != nil {
			return nil, fmt.Errorf("prionn: quantizing read head: %w", err)
		}
		if out.qwrite, err = nn.Quantize(p.write, x); err != nil {
			return nil, fmt.Errorf("prionn: quantizing write head: %w", err)
		}
	}
	if p.Config.PredictPower {
		if out.qpower, err = nn.Quantize(p.power, x); err != nil {
			return nil, fmt.Errorf("prionn: quantizing power head: %w", err)
		}
	}
	return out, nil
}

// persistedQuant is the gob wire format of a quantized snapshot: the
// configuration, the (immutable) character embedding, and each head's
// serialized QModel. No optimizer state — a quantized snapshot is a
// serving artifact, not a training checkpoint.
type persistedQuant struct {
	Config    Config
	Embedding *word2vec.Embedding // nil unless Transform == word2vec
	Trained   bool
	Runtime   []byte
	Read      []byte
	Write     []byte
	Power     []byte
}

// SaveQuantized serializes an int8 snapshot inside a checksummed frame
// tagged frameVersionQuant, so the float and quantized loaders can
// never be pointed at each other's files undetected. Calling it on a
// float32 view is an error.
func (v *Inference) SaveQuantized(w io.Writer) error {
	payload, err := v.encodeQuantized()
	if err != nil {
		return err
	}
	return writeFrameV(w, frameVersionQuant, payload)
}

// encodeQuantized produces the gob payload SaveQuantized frames.
func (v *Inference) encodeQuantized() ([]byte, error) {
	if v.Kernel() != KernelInt8 {
		return nil, fmt.Errorf("prionn: SaveQuantized on a %s snapshot", v.Kernel())
	}
	pq := persistedQuant{Config: v.cfg, Trained: v.trained}
	if w2v, ok := v.transform.(mapping.Word2Vec); ok {
		pq.Embedding = w2v.Emb
	}
	snap := func(m *nn.QModel) ([]byte, error) {
		if m == nil {
			return nil, nil
		}
		var buf bytes.Buffer
		if err := m.Save(&buf); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	}
	var err error
	if pq.Runtime, err = snap(v.qruntime); err != nil {
		return nil, err
	}
	if pq.Read, err = snap(v.qread); err != nil {
		return nil, err
	}
	if pq.Write, err = snap(v.qwrite); err != nil {
		return nil, err
	}
	if pq.Power, err = snap(v.qpower); err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(pq); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// LoadQuantized restores an int8 snapshot saved with SaveQuantized.
// Damaged input — truncation, corruption, a float32 frame, or a
// structurally inconsistent quantized model — is rejected with an error
// wrapping ErrTruncated or ErrCorrupt; LoadQuantized never returns a
// snapshot built from partial bytes.
func LoadQuantized(r io.Reader) (*Inference, error) {
	payload, err := readFrameV(r, frameVersionQuant)
	if err != nil {
		return nil, err
	}
	return decodeQuantized(payload)
}

// decodeQuantized rebuilds an int8 snapshot from a verified gob payload.
func decodeQuantized(payload []byte) (*Inference, error) {
	var pq persistedQuant
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&pq); err != nil {
		return nil, fmt.Errorf("%w: decoding quantized payload: %v", ErrCorrupt, err)
	}
	if err := pq.Config.Validate(); err != nil {
		return nil, fmt.Errorf("%w: persisted config invalid: %v", ErrCorrupt, err)
	}
	cfg := pq.Config
	v := &Inference{
		cfg:     cfg,
		kernel:  KernelInt8,
		rbins:   runtimeBins{Classes: cfg.RuntimeClasses, MaxMin: cfg.MaxRuntimeMin},
		iobin:   ioBins{Classes: cfg.IOClasses, Min: cfg.MinIOBytes, Max: cfg.MaxIOBytes},
		pbins:   ioBins{Classes: cfg.PowerClasses, Min: cfg.MinPowerW, Max: cfg.MaxPowerW},
		trained: pq.Trained,
	}
	switch cfg.Transform {
	case TransformBinary:
		v.transform = mapping.Binary{}
	case TransformSimple:
		v.transform = mapping.Simple{}
	case TransformOneHot:
		v.transform = mapping.OneHot{}
	case TransformWord2Vec:
		if pq.Embedding == nil {
			return nil, fmt.Errorf("%w: persisted word2vec snapshot lacks an embedding", ErrCorrupt)
		}
		v.transform = mapping.Word2Vec{Emb: pq.Embedding}
	}
	restore := func(name string, data []byte, required bool) (*nn.QModel, error) {
		if len(data) == 0 {
			if required {
				return nil, fmt.Errorf("%w: quantized snapshot lacks the %s head", ErrCorrupt, name)
			}
			return nil, nil
		}
		m, err := nn.LoadQModel(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("%w: %s head: %v", ErrCorrupt, name, err)
		}
		return m, nil
	}
	var err error
	if v.qruntime, err = restore("runtime", pq.Runtime, true); err != nil {
		return nil, err
	}
	if v.qread, err = restore("read", pq.Read, cfg.PredictIO); err != nil {
		return nil, err
	}
	if v.qwrite, err = restore("write", pq.Write, cfg.PredictIO); err != nil {
		return nil, err
	}
	if v.qpower, err = restore("power", pq.Power, cfg.PredictPower); err != nil {
		return nil, err
	}
	return v, nil
}

// SaveQuantizedFile writes the snapshot to path crash-safely, with the
// same write-temp → fsync → rename discipline as Predictor.SaveFile.
func (v *Inference) SaveQuantizedFile(path string) error {
	payload, err := v.encodeQuantized()
	if err != nil {
		return err
	}
	return atomicWriteFileV(fault.OS{}, path, frameVersionQuant, payload)
}

// LoadQuantizedFile restores a snapshot from a file written by
// SaveQuantizedFile.
func LoadQuantizedFile(path string) (*Inference, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer func() { _ = f.Close() }() // read-only; close errors carry no data loss
	return LoadQuantized(f)
}
