package prionn

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"prionn/internal/fault"
)

// TestOnlineCheckpointRestart pins the restart half of
// RunOnlineCheckpointed's contract: a run killed mid-stream resumes from
// the checkpoint at path — it does not retrain from scratch — and from
// the resume point onward produces records bitwise identical to an
// uninterrupted run, ending in the same model state.
func TestOnlineCheckpointRestart(t *testing.T) {
	jobs := testJobs(150)
	cfg := TinyConfig()
	cfg.RetrainEvery = 30
	cfg.TrainWindow = 40
	cfg.Epochs = 1

	// Uninterrupted reference run.
	refPath := filepath.Join(t.TempDir(), "ref.ckpt")
	want, err := RunOnlineCheckpointed(context.Background(), jobs, cfg, refPath, nil)
	if err != nil {
		t.Fatal(err)
	}
	refModel, err := LoadFile(refPath)
	if err != nil {
		t.Fatal(err)
	}
	if refModel.Events() < 3 {
		t.Fatalf("trace too short: only %d training events", refModel.Events())
	}
	var refBytes bytes.Buffer
	if err := refModel.Save(&refBytes); err != nil {
		t.Fatal(err)
	}

	// Interrupted run: the daemon dies right before the second event's
	// checkpoint save — after event 1 was trained and durably saved.
	path := filepath.Join(t.TempDir(), "online.ckpt")
	boom := errors.New("killed")
	disarm := fault.Arm(FailpointOnlineSave, fault.Failure{Err: boom, After: 1})
	_, err = RunOnlineCheckpointed(context.Background(), jobs, cfg, path, nil)
	disarm()
	if !errors.Is(err, boom) {
		t.Fatalf("interrupted run returned %v, want the armed kill", err)
	}

	// Restart: same stream, same cfg, same path. The loop must load the
	// event-1 checkpoint, replay the covered event as a no-op, and train
	// only the remaining events.
	events := 0
	got, err := RunOnlineCheckpointed(context.Background(), jobs, cfg, path, func(done, total int) { events++ })
	if err != nil {
		t.Fatal(err)
	}
	if events != refModel.Events() {
		t.Fatalf("restart observed %d events, want the full cadence of %d", events, refModel.Events())
	}

	// The restart resumes from the checkpoint instead of retraining: the
	// final model must have the reference run's event counter and
	// byte-identical serialized state (the save format is deterministic,
	// so this is a full bitwise state comparison).
	gotModel, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if gotModel.Events() != refModel.Events() {
		t.Fatalf("restart ended at event %d, want %d", gotModel.Events(), refModel.Events())
	}
	var gotBytes bytes.Buffer
	if err := gotModel.Save(&gotBytes); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotBytes.Bytes(), refBytes.Bytes()) {
		t.Fatal("restarted run's final model differs bitwise from the uninterrupted run's")
	}

	// Records: the replayed prefix (submissions answered by the crashed
	// incarnation) is unpredicted; every record from the first post-resume
	// prediction on is bitwise identical to the uninterrupted run.
	if len(got) != len(want) {
		t.Fatalf("record count %d, want %d", len(got), len(want))
	}
	first := -1
	for i, r := range got {
		if r.Predicted {
			first = i
			break
		}
	}
	if first < 0 {
		t.Fatal("restarted run predicted nothing")
	}
	for i := 0; i < first; i++ {
		if got[i].Predicted {
			t.Fatalf("record %d predicted inside the replayed prefix", i)
		}
	}
	resumed := 0
	for i := first; i < len(got); i++ {
		if got[i].Predicted != want[i].Predicted {
			t.Fatalf("record %d: predicted=%v, reference=%v", i, got[i].Predicted, want[i].Predicted)
		}
		if !got[i].Predicted {
			continue
		}
		if got[i].Pred != want[i].Pred {
			t.Fatalf("record %d prediction diverged after restart:\n got %+v\nwant %+v", i, got[i].Pred, want[i].Pred)
		}
		resumed++
	}
	if resumed == 0 {
		t.Fatal("no post-resume predictions compared; trace too short")
	}
}

// TestOnlineCheckpointRestartConfigMismatch asserts a checkpoint trained
// under a different configuration is rejected instead of silently
// producing a model whose predictions mix two configs.
func TestOnlineCheckpointRestartConfigMismatch(t *testing.T) {
	jobs := testJobs(80)
	cfg := TinyConfig()
	cfg.RetrainEvery = 20
	cfg.TrainWindow = 30
	cfg.Epochs = 1
	path := filepath.Join(t.TempDir(), "online.ckpt")
	if _, err := RunOnlineCheckpointed(context.Background(), jobs, cfg, path, nil); err != nil {
		t.Fatal(err)
	}
	other := cfg
	other.RetrainEvery = 25
	if _, err := RunOnlineCheckpointed(context.Background(), jobs, other, path, nil); err == nil {
		t.Fatal("config-mismatched checkpoint accepted")
	}
}

// TestOnlineCheckpointCorruptRejected asserts a truncated checkpoint
// surfaces an error instead of silently retraining from scratch.
func TestOnlineCheckpointCorruptRejected(t *testing.T) {
	jobs := testJobs(80)
	cfg := TinyConfig()
	cfg.RetrainEvery = 20
	cfg.TrainWindow = 30
	cfg.Epochs = 1
	path := filepath.Join(t.TempDir(), "online.ckpt")
	if _, err := RunOnlineCheckpointed(context.Background(), jobs, cfg, path, nil); err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := RunOnlineCheckpointed(context.Background(), jobs, cfg, path, nil); err == nil {
		t.Fatal("corrupt checkpoint accepted")
	}
}
