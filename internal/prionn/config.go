// Package prionn is the PRIONN tool: it maps whole job scripts to
// image-like data, trains deep learning models on recently completed
// jobs, and predicts per-job runtime and IO (total bytes read and
// written) at submission time (paper §2).
//
// The paper's selected configuration — the word2vec character mapping
// (output size 4) with a 2D CNN of four convolutional and four fully
// connected layers, 64×64 standardized scripts, a 960-class runtime head
// (one class per minute up to the 16-hour cap), training on the 500 most
// recently completed jobs and retraining (warm-start, never
// re-initializing) every 100 submissions — is the default; every knob is
// configurable for the ablations and the scaled-down test runs.
package prionn

import "fmt"

// ModelKind selects the deep learning architecture (paper §2.2).
type ModelKind string

// The three architectures evaluated in the paper.
const (
	ModelNN    ModelKind = "nn"     // fully connected on the flattened 1D sequence
	Model1DCNN ModelKind = "1d-cnn" // 1D convolutions on the flattened sequence
	Model2DCNN ModelKind = "2d-cnn" // 2D convolutions on the script matrix (selected)
)

// TransformKind selects the character-to-pixel transformation (§2.1).
type TransformKind string

// The four data-mapping transformations evaluated in the paper.
const (
	TransformBinary   TransformKind = "binary"
	TransformSimple   TransformKind = "simple"
	TransformOneHot   TransformKind = "one-hot"
	TransformWord2Vec TransformKind = "word2vec" // selected
)

// Config holds every tunable of the PRIONN tool.
type Config struct {
	// Script standardization extent (paper: 64×64).
	Rows, Cols int

	Transform    TransformKind
	EmbeddingDim int // word2vec output size (paper: 4)

	Model ModelKind
	// Width scales hidden-layer sizes (1.0 = paper-scale models; tests
	// use smaller).
	Width float64

	// RuntimeClasses is the width of the runtime output layer; the class
	// range covers [0, MaxRuntimeMin] minutes. With 960 classes and a
	// 960-minute cap each class is one minute (paper).
	RuntimeClasses int
	MaxRuntimeMin  int

	// IOClasses is the width of the two IO heads (total bytes read,
	// total bytes written), binned logarithmically over
	// [MinIOBytes, MaxIOBytes]. The paper does not specify its IO head;
	// log-scale bins match the heavy-tailed byte distribution.
	IOClasses  int
	MinIOBytes float64
	MaxIOBytes float64

	// Online-training loop (§2.3).
	TrainWindow  int // most recently completed jobs to train on (500)
	RetrainEvery int // submissions between retraining events (100)
	Epochs       int // epochs per training event (paper trains 10)
	BatchSize    int
	LR           float64

	// PredictIO enables the two IO heads (runtime is always predicted).
	PredictIO bool

	// IncludeDeck appends each job's application input deck to its
	// script before mapping — the paper's future work ("incorporating
	// application input decks into PRIONN's workflow"). See the
	// ext-deck experiment.
	IncludeDeck bool

	// PredictPower enables a power head predicting each job's mean
	// power draw in watts — the other future-work resource. See the
	// ext-power experiment.
	PredictPower bool
	PowerClasses int
	MinPowerW    float64
	MaxPowerW    float64

	Seed int64
}

// DefaultConfig returns the paper's configuration.
func DefaultConfig() Config {
	return Config{
		Rows: 64, Cols: 64,
		Transform:      TransformWord2Vec,
		EmbeddingDim:   4,
		Model:          Model2DCNN,
		Width:          1.0,
		RuntimeClasses: 960,
		MaxRuntimeMin:  960,
		IOClasses:      64,
		MinIOBytes:     1e3,
		MaxIOBytes:     1e14,
		PowerClasses:   48,
		MinPowerW:      50,
		MaxPowerW:      2e5,
		TrainWindow:    500,
		RetrainEvery:   100,
		Epochs:         10,
		BatchSize:      16,
		LR:             3e-3,
		PredictIO:      true,
		Seed:           1,
	}
}

// FastConfig returns a scaled-down configuration that preserves the
// paper's structure (same transform, same architecture family, same
// online loop) at laptop-test cost: 32×32 scripts, half-width models,
// shorter windows.
func FastConfig() Config {
	c := DefaultConfig()
	c.Rows, c.Cols = 32, 32
	c.Width = 0.5
	c.IOClasses = 32
	c.TrainWindow = 400
	c.RetrainEvery = 100
	c.Epochs = 8
	c.BatchSize = 8
	return c
}

// TinyConfig returns the smallest structurally faithful configuration,
// for unit tests.
func TinyConfig() Config {
	c := DefaultConfig()
	c.Rows, c.Cols = 16, 16
	c.EmbeddingDim = 3
	c.Width = 0.25
	c.RuntimeClasses = 64
	c.IOClasses = 16
	c.TrainWindow = 40
	c.RetrainEvery = 25
	c.Epochs = 2
	c.BatchSize = 8
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Rows < 4 || c.Cols < 4 {
		return fmt.Errorf("prionn: script extent %dx%d too small", c.Rows, c.Cols)
	}
	if c.RuntimeClasses < 2 {
		return fmt.Errorf("prionn: need at least 2 runtime classes")
	}
	if c.MaxRuntimeMin < 1 {
		return fmt.Errorf("prionn: non-positive runtime cap")
	}
	if c.PredictIO {
		if c.IOClasses < 2 {
			return fmt.Errorf("prionn: need at least 2 IO classes")
		}
		if !(c.MaxIOBytes > c.MinIOBytes) || c.MinIOBytes <= 0 {
			return fmt.Errorf("prionn: bad IO byte range [%g, %g]", c.MinIOBytes, c.MaxIOBytes)
		}
	}
	if c.PredictPower {
		if c.PowerClasses < 2 {
			return fmt.Errorf("prionn: need at least 2 power classes")
		}
		if !(c.MaxPowerW > c.MinPowerW) || c.MinPowerW <= 0 {
			return fmt.Errorf("prionn: bad power range [%g, %g]", c.MinPowerW, c.MaxPowerW)
		}
	}
	if c.TrainWindow < 1 || c.RetrainEvery < 1 {
		return fmt.Errorf("prionn: bad online-loop parameters")
	}
	switch c.Model {
	case ModelNN, Model1DCNN, Model2DCNN:
	default:
		return fmt.Errorf("prionn: unknown model %q", c.Model)
	}
	switch c.Transform {
	case TransformBinary, TransformSimple, TransformOneHot, TransformWord2Vec:
	default:
		return fmt.Errorf("prionn: unknown transform %q", c.Transform)
	}
	return nil
}
