package prionn

import (
	"context"
	"math/rand"

	"prionn/internal/fault"
	"prionn/internal/mapping"
	"prionn/internal/nn"
	"prionn/internal/tensor"
	"prionn/internal/trace"
	"prionn/internal/word2vec"
)

// Prediction is PRIONN's per-job output.
type Prediction struct {
	RuntimeMin int     // predicted runtime, minutes
	ReadBytes  float64 // predicted total bytes read
	WriteBytes float64 // predicted total bytes written
	PowerW     float64 // predicted mean power draw (0 unless PredictPower)
}

// ReadBW returns the read bandwidth implied by the prediction: the paper
// computes bandwidth "by dividing the total bytes read and written with
// the predicted runtimes of jobs".
func (p Prediction) ReadBW() float64 {
	if p.RuntimeMin <= 0 {
		return 0
	}
	return p.ReadBytes / (float64(p.RuntimeMin) * 60)
}

// WriteBW returns the write bandwidth implied by the prediction.
func (p Prediction) WriteBW() float64 {
	if p.RuntimeMin <= 0 {
		return 0
	}
	return p.WriteBytes / (float64(p.RuntimeMin) * 60)
}

// Predictor is the PRIONN tool: a trained data mapping plus one deep
// learning classifier per target (runtime, bytes read, bytes written).
// Retraining is warm-start: Train updates the existing parameters, so
// knowledge accumulates across training events (§2.3).
type Predictor struct {
	Config Config

	transform mapping.Transform
	emb       *word2vec.Embedding

	runtime *nn.Sequential
	read    *nn.Sequential
	write   *nn.Sequential
	power   *nn.Sequential

	runtimeOpt nn.Optimizer
	readOpt    nn.Optimizer
	writeOpt   nn.Optimizer
	powerOpt   nn.Optimizer

	rbins runtimeBins
	iobin ioBins
	pbins ioBins // log-scale watt bins reuse the IO binning

	rng     *rand.Rand
	trained bool
	// events counts completed training events. Each event's minibatch
	// shuffles draw from an RNG seeded by (Config.Seed, events, head),
	// so an interrupted event resumes with exactly the permutations the
	// uninterrupted run would have used.
	events int
	// fs is the persistence file-op layer; nil means the real
	// filesystem. See SetFS.
	fs fault.FS
}

// New builds an untrained predictor. When cfg.Transform is word2vec, the
// character embedding is trained on corpus (historical job scripts);
// other transforms ignore corpus.
func New(cfg Config, corpus []string) (*Predictor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	p := &Predictor{
		Config: cfg,
		rbins:  runtimeBins{Classes: cfg.RuntimeClasses, MaxMin: cfg.MaxRuntimeMin},
		iobin:  ioBins{Classes: cfg.IOClasses, Min: cfg.MinIOBytes, Max: cfg.MaxIOBytes},
		pbins:  ioBins{Classes: cfg.PowerClasses, Min: cfg.MinPowerW, Max: cfg.MaxPowerW},
		rng:    rand.New(rand.NewSource(cfg.Seed)),
	}
	switch cfg.Transform {
	case TransformBinary:
		p.transform = mapping.Binary{}
	case TransformSimple:
		p.transform = mapping.Simple{}
	case TransformOneHot:
		p.transform = mapping.OneHot{}
	case TransformWord2Vec:
		w2vCfg := word2vec.DefaultConfig()
		w2vCfg.Dim = cfg.EmbeddingDim
		w2vCfg.Seed = cfg.Seed
		p.emb = word2vec.Train(corpus, w2vCfg)
		p.transform = mapping.Word2Vec{Emb: p.emb}
	}
	p.runtime = p.buildModel(cfg.RuntimeClasses)
	p.runtimeOpt = nn.NewAdam(cfg.LR)
	if cfg.PredictIO {
		p.read = p.buildModel(cfg.IOClasses)
		p.write = p.buildModel(cfg.IOClasses)
		p.readOpt = nn.NewAdam(cfg.LR)
		p.writeOpt = nn.NewAdam(cfg.LR)
	}
	if cfg.PredictPower {
		p.power = p.buildModel(cfg.PowerClasses)
		p.powerOpt = nn.NewAdam(cfg.LR)
	}
	return p, nil
}

// inputText assembles the model input for one job: the script, with the
// input deck appended when IncludeDeck is set.
func (p *Predictor) inputText(script, deck string) string {
	if p.Config.IncludeDeck && deck != "" {
		return script + "\n" + deck
	}
	return script
}

// buildModel constructs one classifier head for the configured
// architecture, drawing initial weights from the predictor's RNG.
func (p *Predictor) buildModel(classes int) *nn.Sequential {
	return p.buildModelWith(p.rng, classes)
}

// buildModelWith is buildModel with an explicit RNG, so Snapshot can
// construct throwaway-initialized heads without consuming the
// predictor's own RNG stream (which seeds minibatch shuffles and must
// stay bitwise-reproducible).
func (p *Predictor) buildModelWith(rng *rand.Rand, classes int) *nn.Sequential {
	arch := nn.ArchConfig{
		Rows:     p.Config.Rows,
		Cols:     p.Config.Cols,
		Channels: p.transform.Channels(),
		Classes:  classes,
		Width:    p.Config.Width,
	}
	switch p.Config.Model {
	case ModelNN:
		return nn.NewFullyConnected(rng, arch)
	case Model1DCNN:
		return nn.NewCNN1D(rng, arch)
	default:
		return nn.NewCNN2D(rng, arch)
	}
}

// mapBatch transforms scripts into the model input layout (see
// Inference.MapTexts, which it delegates to). Like Predict, it is not
// safe for concurrent use: the batch mapping itself is parallel-safe,
// but the surrounding predictor state is single-goroutine.
func (p *Predictor) mapBatch(scripts []string) *tensor.Tensor {
	return p.view().MapTexts(scripts)
}

// Train runs one warm-start training event on a window of completed jobs
// (paper: the 500 most recently completed). It returns the final-epoch
// mean loss of the runtime head.
func (p *Predictor) Train(jobs []trace.Job) (float64, error) {
	return p.TrainCtx(context.Background(), jobs)
}

// TrainCtx is Train with cooperative cancellation: the context is polled
// between minibatches, so a canceled training event returns within one
// batch. The parameters updated by completed batches remain applied.
func (p *Predictor) TrainCtx(ctx context.Context, jobs []trace.Job) (float64, error) {
	return p.trainEvent(ctx, jobs, "", resumePos{})
}

// Trained reports whether at least one training event has run.
func (p *Predictor) Trained() bool { return p.trained }

// Events returns the number of completed training events.
func (p *Predictor) Events() int { return p.events }

// Predict returns predictions for a batch of job scripts.
//
// Contract: Predict runs the forward passes unconditionally, including
// on never-trained weights, whose output is He-init noise with no
// relation to the job. Callers that can reach an untrained predictor
// must check Trained() first and fall back to the job's user-requested
// runtime (the paper's behaviour before the first training event);
// the serve layer does exactly this.
//
// Predict is NOT safe for concurrent use: the nn layers cache per-call
// state (ReLU masks, conv column matrices, cached inputs) even in
// inference mode, so two goroutines predicting on the same heads race.
// Concurrent serving goes through Snapshot + internal/serve, which
// serializes all forwards in a single inference loop.
func (p *Predictor) Predict(scripts []string) []Prediction {
	return p.view().Predict(scripts)
}

// PredictOne returns the prediction for a single job script.
func (p *Predictor) PredictOne(script string) Prediction {
	return p.Predict([]string{script})[0]
}

// PredictJobs predicts a batch of trace jobs, assembling each input from
// the script plus (when IncludeDeck is set) the job's input deck.
func (p *Predictor) PredictJobs(jobs []trace.Job) []Prediction {
	texts := make([]string, len(jobs))
	for i, j := range jobs {
		texts[i] = p.inputText(j.Script, j.InputDeck)
	}
	return p.Predict(texts)
}

// PredictJob predicts a single trace job.
func (p *Predictor) PredictJob(j trace.Job) Prediction {
	return p.PredictJobs([]trace.Job{j})[0]
}

// NumParams returns the total trainable parameter count across heads.
func (p *Predictor) NumParams() int {
	n := p.runtime.NumParams()
	if p.Config.PredictIO {
		n += p.read.NumParams() + p.write.NumParams()
	}
	if p.Config.PredictPower {
		n += p.power.NumParams()
	}
	return n
}

// Reinitialize rebuilds all model parameters from scratch (cold start).
// The paper's loop never does this — it exists for the warm-vs-cold
// ablation benchmark.
func (p *Predictor) Reinitialize() {
	p.runtime = p.buildModel(p.Config.RuntimeClasses)
	p.runtimeOpt = nn.NewAdam(p.Config.LR)
	if p.Config.PredictIO {
		p.read = p.buildModel(p.Config.IOClasses)
		p.write = p.buildModel(p.Config.IOClasses)
		p.readOpt = nn.NewAdam(p.Config.LR)
		p.writeOpt = nn.NewAdam(p.Config.LR)
	}
	if p.Config.PredictPower {
		p.power = p.buildModel(p.Config.PowerClasses)
		p.powerOpt = nn.NewAdam(p.Config.LR)
	}
	p.trained = false
}
