package prionn

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"math/rand"
	"os"

	"prionn/internal/fault"
	"prionn/internal/nn"
	"prionn/internal/trace"
)

// Epoch-granularity checkpoint/resume for training events. A training
// event fits each head (runtime, read, write, power) for E epochs in
// sequence; TrainCheckpointed writes a crash-safe checkpoint after every
// epoch of every head, and ResumeTrain continues an interrupted event
// from its last checkpoint such that the resumed run produces a model
// bitwise-identical to an uninterrupted same-seed run.
//
// Bitwise identity rests on three pieces of state the checkpoint
// carries or reconstructs exactly:
//
//   - model parameters and Adam moment estimates (serialized — an
//     optimizer restarted from zero moments takes different steps);
//   - the minibatch shuffle RNG: each (event, head) pair draws from its
//     own rand.Rand seeded by eventSeed(Config.Seed, event, head), and
//     nn.FitOptions.StartEpoch replays the completed epochs' shuffle
//     draws on resume, reproducing both the permutation sequence and
//     the RNG state;
//   - the event counter, persisted with the model, which keeps later
//     events' seeds aligned after a restart.

// trainCheckpoint is the gob wire format of a mid-event checkpoint: the
// full predictor state plus the resume position within the event.
type trainCheckpoint struct {
	Predictor []byte // framed Save() bytes
	Head      int    // heads before this one are fully fitted this event
	Epoch     int    // epochs of head Head completed
	// RuntimeLoss is the runtime head's final-epoch mean loss, once head
	// 0 has finished, so a resumed event still reports it.
	RuntimeLoss float64
	// Window is the training-window length, a cheap guard against
	// resuming with a different job window than the interrupted run.
	Window int
}

// resumePos locates where within a training event to resume.
type resumePos struct {
	head        int
	epoch       int
	runtimeLoss float64
}

// FailpointTrainCheckpoint is the failpoint name fired after each
// checkpoint write; robustness tests arm it to interrupt training at a
// chosen epoch.
const FailpointTrainCheckpoint = "prionn/train/checkpoint"

// TrainCheckpointed runs one training event like TrainCtx, writing a
// crash-safe checkpoint to path after every completed epoch of every
// head (and a final one when the event completes). If the process dies
// at any point, ResumeTrain picks the event back up from path.
func (p *Predictor) TrainCheckpointed(ctx context.Context, jobs []trace.Job, path string) (float64, error) {
	if path == "" {
		return 0, fmt.Errorf("prionn: empty checkpoint path")
	}
	return p.trainEvent(ctx, jobs, path, resumePos{})
}

// ResumeTrain restores an interrupted training event from its
// checkpoint file and continues it over the same job window, returning
// the restored predictor and the event's runtime-head loss. The window
// must be the one the interrupted event was training on. Resuming a
// checkpoint whose event already completed returns immediately.
func ResumeTrain(ctx context.Context, path string, jobs []trace.Job) (*Predictor, float64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, err
	}
	payload, err := readFrame(bytes.NewReader(raw))
	if err != nil {
		return nil, 0, err
	}
	var ck trainCheckpoint
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&ck); err != nil {
		return nil, 0, fmt.Errorf("%w: decoding train checkpoint: %v", ErrCorrupt, err)
	}
	p, err := Load(bytes.NewReader(ck.Predictor))
	if err != nil {
		return nil, 0, err
	}
	if ck.Window != len(jobs) {
		return nil, 0, fmt.Errorf("prionn: checkpoint trained on a %d-job window, resume offered %d jobs", ck.Window, len(jobs))
	}
	loss, err := p.trainEvent(ctx, jobs, path, resumePos{head: ck.Head, epoch: ck.Epoch, runtimeLoss: ck.RuntimeLoss})
	if err != nil {
		return nil, 0, err
	}
	return p, loss, nil
}

// eventSeed derives the shuffle seed for one (event, head) pair from the
// configured seed via a splitmix64 finalizer, so every head of every
// event gets an independent, reproducible stream.
func eventSeed(seed int64, event, head int) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(event+1) + 0xbf58476d1ce4e5b9*uint64(head+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// headFit is one classifier head's slot within a training event.
type headFit struct {
	model  *nn.Sequential
	opt    nn.Optimizer
	labels []int
}

// trainEvent is the shared engine behind Train, TrainCtx, and
// TrainCheckpointed: fit every enabled head on the window, optionally
// checkpointing after each epoch, starting from pos (zero for a fresh
// event).
func (p *Predictor) trainEvent(ctx context.Context, jobs []trace.Job, ckptPath string, pos resumePos) (float64, error) {
	if len(jobs) == 0 {
		return 0, fmt.Errorf("prionn: empty training window")
	}
	scripts := make([]string, len(jobs))
	rt := make([]int, len(jobs))
	rd := make([]int, len(jobs))
	wr := make([]int, len(jobs))
	pw := make([]int, len(jobs))
	for i, j := range jobs {
		scripts[i] = p.inputText(j.Script, j.InputDeck)
		rt[i] = p.rbins.Class(j.ActualMin())
		rd[i] = p.iobin.Class(float64(j.ReadBytes))
		wr[i] = p.iobin.Class(float64(j.WriteBytes))
		pw[i] = p.pbins.Class(j.AvgPowerW)
	}
	x := p.mapBatch(scripts)
	epochs := p.Config.Epochs
	if !p.trained {
		// Bootstrap: the very first training event runs longer so the
		// warm-start chain begins from a fitted model rather than random
		// weights (subsequent events only need to track drift).
		epochs *= 3
	}

	heads := []headFit{{model: p.runtime, opt: p.runtimeOpt, labels: rt}}
	if p.Config.PredictIO {
		heads = append(heads,
			headFit{model: p.read, opt: p.readOpt, labels: rd},
			headFit{model: p.write, opt: p.writeOpt, labels: wr})
	}
	if p.Config.PredictPower {
		heads = append(heads, headFit{model: p.power, opt: p.powerOpt, labels: pw})
	}

	if pos.head >= len(heads) {
		// Resuming a checkpoint written after its event completed: the
		// event counter already advanced; there is nothing to redo.
		return pos.runtimeLoss, nil
	}

	runtimeLoss := pos.runtimeLoss
	for h := pos.head; h < len(heads); h++ {
		head := heads[h]
		opts := nn.FitOptions{
			Epochs:    epochs,
			BatchSize: p.Config.BatchSize,
			Shuffle:   rand.New(rand.NewSource(eventSeed(p.Config.Seed, p.events, h))),
		}
		if h == pos.head {
			opts.StartEpoch = pos.epoch
		}
		// When the interrupt landed after this head's final epoch, the fit
		// below only replays shuffles and reports no loss; the checkpoint's
		// recorded loss stands.
		ranEpochs := opts.StartEpoch < epochs
		if ckptPath != "" {
			opts.AfterEpoch = func(e int, loss float64) error {
				rl := runtimeLoss
				if h == 0 {
					rl = loss
				}
				if err := p.writeTrainCheckpoint(ckptPath, h, e+1, rl, len(jobs)); err != nil {
					return err
				}
				return fault.Here(FailpointTrainCheckpoint)
			}
		}
		loss, err := head.model.FitCtx(ctx, x, head.labels, head.opt, opts)
		if err != nil {
			return runtimeLoss, err
		}
		if h == 0 && ranEpochs {
			runtimeLoss = loss
		}
	}
	p.trained = true
	p.events++
	if ckptPath != "" {
		// Final checkpoint: the completed event, with the incremented
		// event counter, so a restart after this point resumes the next
		// event with aligned seeds.
		if err := p.writeTrainCheckpoint(ckptPath, len(heads), 0, runtimeLoss, len(jobs)); err != nil {
			return runtimeLoss, err
		}
	}
	return runtimeLoss, nil
}

// writeTrainCheckpoint persists the full predictor plus resume position,
// crash-safely.
func (p *Predictor) writeTrainCheckpoint(path string, head, epoch int, runtimeLoss float64, window int) error {
	var model bytes.Buffer
	if err := p.Save(&model); err != nil {
		return err
	}
	ck := trainCheckpoint{
		Predictor:   model.Bytes(),
		Head:        head,
		Epoch:       epoch,
		RuntimeLoss: runtimeLoss,
		Window:      window,
	}
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(ck); err != nil {
		return err
	}
	return atomicWriteFile(p.fileSystem(), path, payload.Bytes())
}
