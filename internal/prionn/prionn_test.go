package prionn

import (
	"math"
	"testing"

	"prionn/internal/metrics"
	"prionn/internal/trace"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	if err := FastConfig().Validate(); err != nil {
		t.Fatalf("fast config invalid: %v", err)
	}
	if err := TinyConfig().Validate(); err != nil {
		t.Fatalf("tiny config invalid: %v", err)
	}
	bad := DefaultConfig()
	bad.Model = "transformer"
	if err := bad.Validate(); err == nil {
		t.Fatal("unknown model accepted")
	}
	bad = DefaultConfig()
	bad.Rows = 1
	if err := bad.Validate(); err == nil {
		t.Fatal("tiny extent accepted")
	}
	bad = DefaultConfig()
	bad.MinIOBytes = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative IO range accepted")
	}
}

func TestRuntimeBinsRoundTrip(t *testing.T) {
	// Paper setting: 960 classes over 960 minutes → one class per minute.
	b := runtimeBins{Classes: 960, MaxMin: 960}
	for _, m := range []int{0, 1, 44, 959, 960} {
		c := b.Class(m)
		back := b.Minutes(c)
		if int(math.Abs(float64(back-m))) > 1 {
			t.Fatalf("960-bin roundtrip: %d → class %d → %d", m, c, back)
		}
	}
	if b.Class(-5) != 0 {
		t.Fatal("negative runtime must clamp to class 0")
	}
	if b.Class(5000) != 959 {
		t.Fatal("over-cap runtime must clamp to last class")
	}
}

func TestRuntimeBinsCoarse(t *testing.T) {
	b := runtimeBins{Classes: 32, MaxMin: 960}
	// Round trip must stay within one bin width.
	w := 961.0 / 32.0
	for m := 0; m <= 960; m += 37 {
		back := b.Minutes(b.Class(m))
		if math.Abs(float64(back-m)) > w {
			t.Fatalf("coarse roundtrip: %d → %d (bin width %.1f)", m, back, w)
		}
	}
}

func TestIOBinsRoundTrip(t *testing.T) {
	b := ioBins{Classes: 64, Min: 1e3, Max: 1e14}
	for _, bytes := range []float64{0, 500, 1e4, 1e7, 1e10, 1e13, 1e15} {
		c := b.Class(bytes)
		if c < 0 || c >= 64 {
			t.Fatalf("class %d out of range for %g bytes", c, bytes)
		}
		back := b.Bytes(c)
		if bytes <= 1e3 {
			if c != 0 || back != 0 {
				t.Fatalf("small IO %g → class %d → %g, want class 0 → 0", bytes, c, back)
			}
			continue
		}
		// Log-scale round trip within one bin's span.
		span := (math.Log(1e14) - math.Log(1e3)) / 63
		ref := math.Min(bytes, 1e14)
		if math.Abs(math.Log(back)-math.Log(ref)) > span {
			t.Fatalf("IO roundtrip %g → class %d → %g", bytes, c, back)
		}
	}
}

func TestIOBinsMonotone(t *testing.T) {
	b := ioBins{Classes: 16, Min: 1e3, Max: 1e12}
	prev := -1
	for e := 2.0; e <= 13; e += 0.25 {
		c := b.Class(math.Pow(10, e))
		if c < prev {
			t.Fatalf("IO class not monotone at 10^%v", e)
		}
		prev = c
	}
}

func TestPredictionBandwidth(t *testing.T) {
	p := Prediction{RuntimeMin: 10, ReadBytes: 6000, WriteBytes: 1200}
	if bw := p.ReadBW(); math.Abs(bw-10) > 1e-9 {
		t.Fatalf("read BW %v, want 10 B/s", bw)
	}
	if bw := p.WriteBW(); math.Abs(bw-2) > 1e-9 {
		t.Fatalf("write BW %v, want 2 B/s", bw)
	}
	zero := Prediction{RuntimeMin: 0, ReadBytes: 100}
	if zero.ReadBW() != 0 {
		t.Fatal("zero-runtime prediction must give zero bandwidth")
	}
}

func testJobs(n int) []trace.Job {
	return trace.Completed(trace.Generate(trace.Config{Seed: 5, Jobs: n, Users: 20, Apps: 6, ConfigsPerUser: 4}))
}

func TestPredictorTrainPredict(t *testing.T) {
	jobs := testJobs(80)
	cfg := TinyConfig()
	scripts := make([]string, len(jobs))
	for i, j := range jobs {
		scripts[i] = j.Script
	}
	p, err := New(cfg, scripts)
	if err != nil {
		t.Fatal(err)
	}
	if p.Trained() {
		t.Fatal("fresh predictor claims to be trained")
	}
	if _, err := p.Train(jobs[:40]); err != nil {
		t.Fatal(err)
	}
	if !p.Trained() {
		t.Fatal("predictor not marked trained")
	}
	preds := p.Predict(scripts[:10])
	if len(preds) != 10 {
		t.Fatalf("%d predictions", len(preds))
	}
	for _, pr := range preds {
		if pr.RuntimeMin < 0 || pr.RuntimeMin > cfg.MaxRuntimeMin {
			t.Fatalf("runtime prediction %d out of range", pr.RuntimeMin)
		}
		if pr.ReadBytes < 0 || pr.WriteBytes < 0 {
			t.Fatal("negative IO prediction")
		}
	}
}

func TestPredictorLearnsRepeatJobs(t *testing.T) {
	// Train and evaluate on the same heavily repeated scripts: PRIONN
	// must beat the trivial always-median predictor on data it has seen,
	// which is the mechanism behind the paper's ≈100% median accuracy.
	jobs := testJobs(150)
	cfg := TinyConfig()
	cfg.Epochs = 6
	scripts := make([]string, len(jobs))
	for i, j := range jobs {
		scripts[i] = j.Script
	}
	p, err := New(cfg, scripts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Train(jobs); err != nil {
		t.Fatal(err)
	}
	preds := p.Predict(scripts)
	var accSum float64
	for i, j := range jobs {
		accSum += metrics.RelativeAccuracy(float64(j.ActualMin()), float64(preds[i].RuntimeMin))
	}
	acc := accSum / float64(len(jobs))
	if acc < 0.35 {
		t.Fatalf("training-set runtime accuracy %.2f too low — model not learning", acc)
	}
}

func TestPredictorAllModelsRun(t *testing.T) {
	jobs := testJobs(50)
	scripts := make([]string, len(jobs))
	for i, j := range jobs {
		scripts[i] = j.Script
	}
	for _, m := range []ModelKind{ModelNN, Model1DCNN, Model2DCNN} {
		cfg := TinyConfig()
		cfg.Model = m
		cfg.PredictIO = false
		cfg.Epochs = 1
		p, err := New(cfg, scripts)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if _, err := p.Train(jobs[:30]); err != nil {
			t.Fatalf("%s train: %v", m, err)
		}
		if pr := p.PredictOne(scripts[0]); pr.RuntimeMin < 0 {
			t.Fatalf("%s: bad prediction", m)
		}
	}
}

func TestPredictorAllTransformsRun(t *testing.T) {
	jobs := testJobs(40)
	scripts := make([]string, len(jobs))
	for i, j := range jobs {
		scripts[i] = j.Script
	}
	for _, tr := range []TransformKind{TransformBinary, TransformSimple, TransformOneHot, TransformWord2Vec} {
		cfg := TinyConfig()
		cfg.Transform = tr
		cfg.PredictIO = false
		cfg.Epochs = 1
		p, err := New(cfg, scripts)
		if err != nil {
			t.Fatalf("%s: %v", tr, err)
		}
		if _, err := p.Train(jobs[:25]); err != nil {
			t.Fatalf("%s train: %v", tr, err)
		}
		p.PredictOne(scripts[0])
	}
}

func TestTrainEmptyWindow(t *testing.T) {
	p, err := New(TinyConfig(), []string{"x"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Train(nil); err == nil {
		t.Fatal("empty window accepted")
	}
}

func TestWarmStartRetainsKnowledge(t *testing.T) {
	// After training on window A then retraining on window B, predictions
	// must not be identical to a fresh model trained only on B — the warm
	// start carries state. We verify via Reinitialize producing different
	// outputs.
	jobs := testJobs(120)
	cfg := TinyConfig()
	cfg.PredictIO = false
	cfg.Epochs = 2
	scripts := make([]string, len(jobs))
	for i, j := range jobs {
		scripts[i] = j.Script
	}
	warm, err := New(cfg, scripts)
	if err != nil {
		t.Fatal(err)
	}
	warm.Train(jobs[:60])
	warm.Train(jobs[60:])

	cold, err := New(cfg, scripts) // identical seed → identical init
	if err != nil {
		t.Fatal(err)
	}
	cold.Train(jobs[60:])

	// Training on window A first must leave a trace in the parameters:
	// compare raw logits, which differ unless no state was carried.
	x := warm.mapBatch(scripts[:8])
	wl := warm.runtime.Predict(x)
	cl := cold.runtime.Predict(x)
	identical := true
	for i := range wl.Data {
		if wl.Data[i] != cl.Data[i] {
			identical = false
			break
		}
	}
	if identical {
		t.Fatal("warm-start model identical to cold model — no state carried")
	}
}

func TestReinitializeClearsTraining(t *testing.T) {
	jobs := testJobs(40)
	cfg := TinyConfig()
	cfg.PredictIO = false
	cfg.Epochs = 1
	p, err := New(cfg, []string{jobs[0].Script})
	if err != nil {
		t.Fatal(err)
	}
	p.Train(jobs[:20])
	p.Reinitialize()
	if p.Trained() {
		t.Fatal("Reinitialize did not clear trained flag")
	}
}

func TestRunOnlineBasic(t *testing.T) {
	jobs := trace.Generate(trace.Config{Seed: 9, Jobs: 120, Users: 15, Apps: 5, ConfigsPerUser: 3})
	cfg := TinyConfig()
	cfg.PredictIO = false
	cfg.RetrainEvery = 30
	cfg.TrainWindow = 30
	cfg.Epochs = 1
	trainEvents := 0
	recs, err := RunOnline(jobs, cfg, func(done, total int) { trainEvents++ })
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(jobs) {
		t.Fatalf("%d records for %d jobs", len(recs), len(jobs))
	}
	if trainEvents < 2 {
		t.Fatalf("only %d training events over 120 submissions at RetrainEvery=30", trainEvents)
	}
	pred := PredictedRecords(recs)
	if len(pred) == 0 {
		t.Fatal("no predicted records")
	}
	for _, r := range pred {
		if r.Job.Canceled {
			t.Fatal("canceled job carries a prediction")
		}
	}
	// Early jobs (before first training) must be unpredicted.
	if recs[0].Predicted {
		t.Fatal("first submission predicted before any training")
	}
}

func TestRunOnlineOnlyTrainsOnCompletedJobs(t *testing.T) {
	// All jobs submitted in a burst with long runtimes: nothing completes
	// during the trace, so no training can occur and nothing is
	// predicted.
	jobs := make([]trace.Job, 60)
	for i := range jobs {
		jobs[i] = trace.Job{
			ID:         i,
			Script:     "#SBATCH -N 1\nsrun ./x.exe 1 1\n",
			SubmitTime: int64(i),
			ActualSec:  1e9,
		}
	}
	cfg := TinyConfig()
	cfg.PredictIO = false
	cfg.RetrainEvery = 10
	recs, err := RunOnline(jobs, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if r.Predicted {
			t.Fatal("predicted a job although no training data could exist")
		}
	}
}
