package tensor

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"
)

// Arena is a size-bucketed free list of tensors used to take per-batch
// allocation off the training hot path. Get returns a tensor whose
// backing array is recycled from an earlier Put when one of the right
// size class is available; Put hands a tensor back for reuse.
//
// Contract:
//   - Get returns UNINITIALIZED memory: callers must overwrite every
//     element (GEMM destinations and im2col buffers do) or call Zero.
//   - After Put(t), the caller must not touch t again; the same backing
//     array may be handed to the next Get.
//   - Put is optional. A tensor that is never returned is simply
//     reclaimed by the garbage collector; the arena holds no reference
//     to checked-out tensors.
//
// All methods are safe for concurrent use. Size classes are powers of
// two, so a Get/Put cycle at a steady shape always hits the same bucket
// and steady-state training performs zero heap allocation on the paths
// threaded through the arena (see the AllocsPerRun guards in
// pool_test.go).
type Arena struct {
	mu   sync.Mutex
	free map[uint][]*Tensor

	gets atomic.Int64
	puts atomic.Int64
}

// NewArena returns an empty arena.
func NewArena() *Arena {
	return &Arena{free: make(map[uint][]*Tensor)}
}

// defaultArena backs the package-level kernels (GEMM packing buffers,
// conv scratch) and the nn layers. It is never reassigned; its own mutex
// guards the free lists.
var defaultArena = NewArena()

// DefaultArena returns the shared package-level arena. Passing a nil
// *Arena to the kernels that accept one selects this arena.
func DefaultArena() *Arena { return defaultArena }

// sizeClass returns the power-of-two bucket for a payload of n floats.
func sizeClass(n int) uint {
	if n <= 1 {
		return 0
	}
	return uint(bits.Len(uint(n - 1)))
}

// Get returns a tensor with the given shape whose contents are
// unspecified (recycled memory is not cleared).
func (a *Arena) Get(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			// Keep the shape slice out of the message: referencing it here
			// would make every Get's variadic argument escape to the heap,
			// breaking the zero-alloc steady state.
			panic(fmt.Sprintf("tensor: negative dimension %d in arena Get", d))
		}
		n *= d
	}
	a.gets.Add(1)
	class := sizeClass(n)
	a.mu.Lock()
	bucket := a.free[class]
	if len(bucket) > 0 {
		t := bucket[len(bucket)-1]
		a.free[class] = bucket[:len(bucket)-1]
		a.mu.Unlock()
		t.Data = t.Data[:n]
		if cap(t.Shape) < len(shape) {
			// Headroom up to rank 8 so a buffer cycling between ranks
			// (conv [N,C,H,W] one batch, a rank-2 GEMM panel the next)
			// does not reallocate its shape slice every Get.
			t.Shape = make([]int, 0, max(len(shape), 8))
		}
		t.Shape = append(t.Shape[:0], shape...)
		return t
	}
	a.mu.Unlock()
	data := make([]float32, n, 1<<class)
	return &Tensor{Shape: append(make([]int, 0, max(len(shape), 8)), shape...), Data: data}
}

// Put returns a tensor obtained from Get (or any tensor owning its
// backing array) to the arena. Put(nil) is a no-op, so callers can
// unconditionally recycle optional scratch.
func (a *Arena) Put(t *Tensor) {
	if t == nil {
		return
	}
	c := cap(t.Data)
	if c == 0 || c != 1<<sizeClass(c) {
		// Foreign tensor whose capacity is not a size class (e.g. a view
		// into a larger buffer): pooling it would corrupt bucket sizing,
		// and a view's owner may still be live. Drop it for the GC.
		return
	}
	a.puts.Add(1)
	class := sizeClass(c)
	a.mu.Lock()
	a.free[class] = append(a.free[class], t)
	a.mu.Unlock()
}

// Outstanding reports Get calls not yet matched by a Put — the leak
// check used by tests. Tensors intentionally retained by the caller
// (layer outputs) count as outstanding until returned.
func (a *Arena) Outstanding() int {
	return int(a.gets.Load() - a.puts.Load())
}

// Reuse recycles prev (which may be nil) and returns a tensor of the
// given shape. It is the one-liner for layer scratch that is dead by the
// time the next batch needs the same buffer: Put then Get, which at a
// steady shape hands back the same backing array without touching the
// heap.
func (a *Arena) Reuse(prev *Tensor, shape ...int) *Tensor {
	a.Put(prev)
	return a.Get(shape...)
}

// Scope is a checkout scope: every Get is recorded and returned to the
// arena in one Release call. It suits multi-scratch computations where
// threading individual Puts past early returns would be error-prone.
// A Scope is not safe for concurrent use; Release must be called exactly
// once.
type Scope struct {
	a     *Arena
	taken []*Tensor
}

// Scope opens a new checkout scope on the arena.
func (a *Arena) Scope() *Scope { return &Scope{a: a} }

// Get returns a scope-tracked tensor (contents unspecified, as Arena.Get).
func (s *Scope) Get(shape ...int) *Tensor {
	t := s.a.Get(shape...)
	s.taken = append(s.taken, t)
	return t
}

// Release returns every tensor obtained through the scope to the arena.
func (s *Scope) Release() {
	for _, t := range s.taken {
		s.a.Put(t)
	}
	s.taken = s.taken[:0]
}
