package tensor

import "fmt"

// MatMul computes C = A·B for rank-2 tensors A [m,k] and B [k,n], writing
// into dst [m,n] (allocated if nil) and returning it. The blocked GEMM
// core (gemm.go) writes every destination cell, so caller-provided dst is
// not pre-zeroed — its prior contents are simply overwritten.
func MatMul(dst, a, b *Tensor) *Tensor {
	if len(a.Shape) != 2 || len(b.Shape) != 2 {
		panic("tensor: MatMul requires rank-2 operands")
	}
	m, k := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dimension mismatch %v x %v", a.Shape, b.Shape))
	}
	if dst == nil {
		dst = New(m, n)
	} else if dst.Shape[0] != m || dst.Shape[1] != n {
		panic("tensor: MatMul dst shape mismatch")
	}
	gemm(dst.Data, n, m, n, k,
		gemmView{data: a.Data, rs: k, cs: 1},
		gemmView{data: b.Data, rs: n, cs: 1},
		false, nil)
	return dst
}

// MatMulTransA computes C = Aᵀ·B for A [k,m] and B [k,n] into dst [m,n].
// It is the kernel used for weight gradients (xᵀ·dy) and avoids forming
// the transpose explicitly.
func MatMulTransA(dst, a, b *Tensor) *Tensor {
	return matMulTransA(dst, a, b, false)
}

// MatMulTransAAcc computes dst += Aᵀ·B into a caller-provided dst [m,n].
// The accumulate form lets gradient updates (dW += xᵀ·dy) run as a single
// GEMM instead of a multiply into scratch followed by an Add.
func MatMulTransAAcc(dst, a, b *Tensor) *Tensor {
	if dst == nil {
		panic("tensor: MatMulTransAAcc requires a destination")
	}
	return matMulTransA(dst, a, b, true)
}

func matMulTransA(dst, a, b *Tensor, acc bool) *Tensor {
	if len(a.Shape) != 2 || len(b.Shape) != 2 {
		panic("tensor: MatMulTransA requires rank-2 operands")
	}
	k, m := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransA inner dimension mismatch %v x %v", a.Shape, b.Shape))
	}
	if dst == nil {
		dst = New(m, n)
	} else if dst.Shape[0] != m || dst.Shape[1] != n {
		panic("tensor: MatMulTransA dst shape mismatch")
	}
	gemm(dst.Data, n, m, n, k,
		gemmView{data: a.Data, rs: 1, cs: m}, // Aᵀ: element (i,p) at a[p*m+i]
		gemmView{data: b.Data, rs: n, cs: 1},
		acc, nil)
	return dst
}

// MatMulTransB computes C = A·Bᵀ for A [m,k] and B [n,k] into dst [m,n].
// It is the kernel used for input gradients (dy·Wᵀ).
func MatMulTransB(dst, a, b *Tensor) *Tensor {
	if len(a.Shape) != 2 || len(b.Shape) != 2 {
		panic("tensor: MatMulTransB requires rank-2 operands")
	}
	m, k := a.Shape[0], a.Shape[1]
	n, k2 := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransB inner dimension mismatch %v x %v", a.Shape, b.Shape))
	}
	if dst == nil {
		dst = New(m, n)
	} else if dst.Shape[0] != m || dst.Shape[1] != n {
		panic("tensor: MatMulTransB dst shape mismatch")
	}
	gemm(dst.Data, n, m, n, k,
		gemmView{data: a.Data, rs: k, cs: 1},
		gemmView{data: b.Data, rs: 1, cs: k}, // Bᵀ: element (p,j) at b[j*k+p]
		false, nil)
	return dst
}

// Transpose returns a new tensor holding the transpose of a rank-2 tensor.
func (t *Tensor) Transpose() *Tensor {
	if len(t.Shape) != 2 {
		panic("tensor: Transpose requires a rank-2 tensor")
	}
	r, c := t.Shape[0], t.Shape[1]
	out := New(c, r)
	for i := 0; i < r; i++ {
		row := t.Data[i*c : (i+1)*c]
		for j, v := range row {
			out.Data[j*r+i] = v
		}
	}
	return out
}

// AddRowVector adds vector v (length n) to every row of a rank-2 tensor
// [m,n] in place and returns t. Used for bias addition.
func (t *Tensor) AddRowVector(v *Tensor) *Tensor {
	if len(t.Shape) != 2 {
		panic("tensor: AddRowVector requires a rank-2 tensor")
	}
	n := t.Shape[1]
	if len(v.Data) != n {
		panic("tensor: AddRowVector length mismatch")
	}
	for i := 0; i < t.Shape[0]; i++ {
		row := t.Data[i*n : (i+1)*n]
		for j := range row {
			row[j] += v.Data[j]
		}
	}
	return t
}

// SumRows accumulates the rows of a rank-2 tensor [m,n] into dst (length
// n, allocated if nil) and returns dst. Used for bias gradients.
func (t *Tensor) SumRows(dst *Tensor) *Tensor {
	if len(t.Shape) != 2 {
		panic("tensor: SumRows requires a rank-2 tensor")
	}
	n := t.Shape[1]
	if dst == nil {
		dst = New(n)
	} else {
		dst.Zero()
	}
	return t.SumRowsAcc(dst)
}

// SumRowsAcc adds the row sums of a rank-2 tensor [m,n] to dst (length n)
// and returns dst. The accumulate form serves bias-gradient updates
// (dB += Σ rows of dy) without intermediate scratch.
func (t *Tensor) SumRowsAcc(dst *Tensor) *Tensor {
	if len(t.Shape) != 2 {
		panic("tensor: SumRowsAcc requires a rank-2 tensor")
	}
	n := t.Shape[1]
	if len(dst.Data) != n {
		panic("tensor: SumRowsAcc length mismatch")
	}
	for i := 0; i < t.Shape[0]; i++ {
		row := t.Data[i*n : (i+1)*n]
		for j, v := range row {
			dst.Data[j] += v
		}
	}
	return dst
}
