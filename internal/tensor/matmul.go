package tensor

import "fmt"

// MatMul computes C = A·B for rank-2 tensors A [m,k] and B [k,n], writing
// into dst [m,n] (allocated if nil) and returning it. The kernel is
// parallelized over row blocks of A and uses a cache-friendly ikj loop
// order with an unrolled inner accumulation.
func MatMul(dst, a, b *Tensor) *Tensor {
	if len(a.Shape) != 2 || len(b.Shape) != 2 {
		panic("tensor: MatMul requires rank-2 operands")
	}
	m, k := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dimension mismatch %v x %v", a.Shape, b.Shape))
	}
	if dst == nil {
		dst = New(m, n)
	} else {
		if dst.Shape[0] != m || dst.Shape[1] != n {
			panic("tensor: MatMul dst shape mismatch")
		}
		dst.Zero()
	}
	ParallelFor(m, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ai := a.Data[i*k : (i+1)*k]
			ci := dst.Data[i*n : (i+1)*n]
			for p, av := range ai {
				if av == 0 {
					continue
				}
				bp := b.Data[p*n : (p+1)*n]
				axpy(av, bp, ci)
			}
		}
	})
	return dst
}

// axpy computes y += a*x over equal-length slices with 4-way unrolling.
func axpy(a float32, x, y []float32) {
	n := len(x)
	i := 0
	for ; i+4 <= n; i += 4 {
		y[i] += a * x[i]
		y[i+1] += a * x[i+1]
		y[i+2] += a * x[i+2]
		y[i+3] += a * x[i+3]
	}
	for ; i < n; i++ {
		y[i] += a * x[i]
	}
}

// MatMulTransA computes C = Aᵀ·B for A [k,m] and B [k,n] into dst [m,n].
// It is the kernel used for weight gradients (xᵀ·dy) and avoids forming
// the transpose explicitly.
func MatMulTransA(dst, a, b *Tensor) *Tensor {
	if len(a.Shape) != 2 || len(b.Shape) != 2 {
		panic("tensor: MatMulTransA requires rank-2 operands")
	}
	k, m := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransA inner dimension mismatch %v x %v", a.Shape, b.Shape))
	}
	if dst == nil {
		dst = New(m, n)
	} else {
		if dst.Shape[0] != m || dst.Shape[1] != n {
			panic("tensor: MatMulTransA dst shape mismatch")
		}
		dst.Zero()
	}
	// Parallelize over rows of the output (columns of A). Each worker owns
	// a disjoint slice of dst, so no synchronization is needed.
	ParallelFor(m, func(lo, hi int) {
		for p := 0; p < k; p++ {
			ap := a.Data[p*m : (p+1)*m]
			bp := b.Data[p*n : (p+1)*n]
			for i := lo; i < hi; i++ {
				av := ap[i]
				if av == 0 {
					continue
				}
				axpy(av, bp, dst.Data[i*n:(i+1)*n])
			}
		}
	})
	return dst
}

// MatMulTransB computes C = A·Bᵀ for A [m,k] and B [n,k] into dst [m,n].
// It is the kernel used for input gradients (dy·Wᵀ).
func MatMulTransB(dst, a, b *Tensor) *Tensor {
	if len(a.Shape) != 2 || len(b.Shape) != 2 {
		panic("tensor: MatMulTransB requires rank-2 operands")
	}
	m, k := a.Shape[0], a.Shape[1]
	n, k2 := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransB inner dimension mismatch %v x %v", a.Shape, b.Shape))
	}
	if dst == nil {
		dst = New(m, n)
	} else {
		if dst.Shape[0] != m || dst.Shape[1] != n {
			panic("tensor: MatMulTransB dst shape mismatch")
		}
	}
	ParallelFor(m, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ai := a.Data[i*k : (i+1)*k]
			ci := dst.Data[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				ci[j] = dot32(ai, b.Data[j*k:(j+1)*k])
			}
		}
	})
	return dst
}

// dot32 returns the float32 dot product of equal-length slices with 4-way
// unrolling into independent accumulators.
func dot32(x, y []float32) float32 {
	var s0, s1, s2, s3 float32
	n := len(x)
	i := 0
	for ; i+4 <= n; i += 4 {
		s0 += x[i] * y[i]
		s1 += x[i+1] * y[i+1]
		s2 += x[i+2] * y[i+2]
		s3 += x[i+3] * y[i+3]
	}
	s := s0 + s1 + s2 + s3
	for ; i < n; i++ {
		s += x[i] * y[i]
	}
	return s
}

// Transpose returns a new tensor holding the transpose of a rank-2 tensor.
func (t *Tensor) Transpose() *Tensor {
	if len(t.Shape) != 2 {
		panic("tensor: Transpose requires a rank-2 tensor")
	}
	r, c := t.Shape[0], t.Shape[1]
	out := New(c, r)
	for i := 0; i < r; i++ {
		row := t.Data[i*c : (i+1)*c]
		for j, v := range row {
			out.Data[j*r+i] = v
		}
	}
	return out
}

// AddRowVector adds vector v (length n) to every row of a rank-2 tensor
// [m,n] in place and returns t. Used for bias addition.
func (t *Tensor) AddRowVector(v *Tensor) *Tensor {
	if len(t.Shape) != 2 {
		panic("tensor: AddRowVector requires a rank-2 tensor")
	}
	n := t.Shape[1]
	if len(v.Data) != n {
		panic("tensor: AddRowVector length mismatch")
	}
	for i := 0; i < t.Shape[0]; i++ {
		row := t.Data[i*n : (i+1)*n]
		for j := range row {
			row[j] += v.Data[j]
		}
	}
	return t
}

// SumRows accumulates the rows of a rank-2 tensor [m,n] into dst (length
// n, allocated if nil) and returns dst. Used for bias gradients.
func (t *Tensor) SumRows(dst *Tensor) *Tensor {
	if len(t.Shape) != 2 {
		panic("tensor: SumRows requires a rank-2 tensor")
	}
	n := t.Shape[1]
	if dst == nil {
		dst = New(n)
	} else {
		dst.Zero()
	}
	for i := 0; i < t.Shape[0]; i++ {
		row := t.Data[i*n : (i+1)*n]
		for j, v := range row {
			dst.Data[j] += v
		}
	}
	return dst
}
