package tensor

import "sync/atomic"

// Blocked GEMM core.
//
// The kernel follows the classic Goto/BLIS decomposition: the k
// dimension is split into KC-deep panels, B panels are packed into
// contiguous NR-wide column strips, A panels into MR-tall row strips,
// and an MR×NR register-tiled micro-kernel accumulates the product of
// one A strip and one B strip. On amd64 with AVX+FMA the micro-kernel is
// a 4×16 assembly tile (gemm_amd64.s); elsewhere a pure-Go tile computes
// the identical arithmetic.
//
// Determinism. Every output cell C[i,j] is produced by a single
// accumulator that walks p = 0..k-1 in ascending order, applying one
// fused multiply-add per step:
//
//	acc = fma32(A[i,p], B[p,j], acc)
//
// The KC blocking does not change that order: the micro-kernel loads C,
// accumulates KC more steps, and stores C, so the chain is strictly
// sequential across panel boundaries. Worker partitioning assigns whole
// output cells (row or column stripes) to workers and never splits the
// k reduction, so results are bitwise identical for any worker count and
// any stripe geometry. The pure-Go tile emulates the fused operation
// exactly — float32 FMA equals float32(float64(a)*float64(b)+float64(c))
// because the float64 product is exact (24+24 < 53 mantissa bits) and
// double rounding of the sum is innocuous at 53 ≥ 2·24+2 bits — so the
// same bytes are produced with or without the assembly kernel, on every
// platform.
const (
	gemmMR = 4   // micro-tile rows
	gemmNR = 16  // micro-tile columns (two 8-float AVX lanes)
	gemmKC = 256 // k-panel depth: one packed B strip is KC×NR×4B = 16KB (L1)
	gemmMC = 128 // m-panel height: packed A panel is MC×KC×4B = 128KB (L2)
	gemmNC = 512 // n-panel width: packed B panel is KC×NC×4B = 512KB (L2/L3)

	// gemmParallelMin is the multiply-add count below which worker
	// fan-out costs more than it saves.
	gemmParallelMin = 1 << 15
)

// useFMAKernel selects the assembly micro-kernel. It is set once at init
// on amd64 when the CPU supports AVX and FMA3 (gemm_amd64.go) and left
// false elsewhere; tests flip it to prove the generic tile produces
// identical bytes.
var useFMAKernel atomic.Bool

// gemmView adapts a plain or transposed operand to the packing routines:
// logical element (i, j) lives at data[i*rs + j*cs].
type gemmView struct {
	data   []float32
	rs, cs int
}

// gemm computes dst[i,j] = (acc ? dst[i,j] : 0) + Σ_p a(i,p)·b(p,j) for
// i < m, j < n, p < k, with dst rows ldc apart. Pack buffers come from
// ar (nil selects the default arena). Every cell in the m×n destination
// region is written (no pre-zeroing needed); with acc the existing value
// seeds the reduction chain.
func gemm(dst []float32, ldc, m, n, k int, a, b gemmView, acc bool, ar *Arena) {
	if m <= 0 || n <= 0 {
		return
	}
	if k <= 0 {
		if !acc {
			for i := 0; i < m; i++ {
				clear(dst[i*ldc : i*ldc+n])
			}
		}
		return
	}
	if ar == nil {
		ar = defaultArena
	}
	workers := MaxWorkers()
	if workers > 1 && m*n*k >= gemmParallelMin {
		if n >= m {
			// Column stripes, aligned to the micro-tile width so only
			// the rightmost stripe has a ragged edge.
			stripes := (n + gemmNR - 1) / gemmNR
			if stripes > workers {
				stripes = workers
			}
			per := alignUp((n+stripes-1)/stripes, gemmNR)
			ParallelForMin(stripes, 1, func(lo, hi int) {
				for s := lo; s < hi; s++ {
					n0, n1 := s*per, (s+1)*per
					if n1 > n {
						n1 = n
					}
					if n0 < n1 {
						gemmSerial(dst, ldc, 0, m, n0, n1, k, a, b, acc, ar)
					}
				}
			})
		} else {
			// Row stripes, aligned to the micro-tile height.
			stripes := (m + gemmMR - 1) / gemmMR
			if stripes > workers {
				stripes = workers
			}
			per := alignUp((m+stripes-1)/stripes, gemmMR)
			ParallelForMin(stripes, 1, func(lo, hi int) {
				for s := lo; s < hi; s++ {
					m0, m1 := s*per, (s+1)*per
					if m1 > m {
						m1 = m
					}
					if m0 < m1 {
						gemmSerial(dst, ldc, m0, m1, 0, n, k, a, b, acc, ar)
					}
				}
			})
		}
		return
	}
	gemmSerial(dst, ldc, 0, m, 0, n, k, a, b, acc, ar)
}

func alignUp(n, to int) int { return (n + to - 1) / to * to }

// gemmSerial runs the blocked GEMM over the output region
// [m0,m1)×[n0,n1) on one goroutine.
func gemmSerial(dst []float32, ldc, m0, m1, n0, n1, k int, a, b gemmView, acc bool, ar *Arena) {
	packA := ar.Get(gemmMC * gemmKC)
	packB := ar.Get(gemmKC * gemmNC)
	pa, pb := packA.Data, packB.Data
	for jc := n0; jc < n1; jc += gemmNC {
		ncEff := min(gemmNC, n1-jc)
		for pc := 0; pc < k; pc += gemmKC {
			kcEff := min(gemmKC, k-pc)
			// The first k-panel either starts the chain at zero or, in
			// accumulate mode, seeds it with the existing destination.
			zeroAcc := pc == 0 && !acc
			packBPanel(pb, b, pc, jc, kcEff, ncEff)
			for ic := m0; ic < m1; ic += gemmMC {
				mcEff := min(gemmMC, m1-ic)
				packAPanel(pa, a, ic, pc, mcEff, kcEff)
				for jr := 0; jr < ncEff; jr += gemmNR {
					nrEff := min(gemmNR, ncEff-jr)
					bStrip := pb[(jr/gemmNR)*gemmNR*kcEff:]
					for ir := 0; ir < mcEff; ir += gemmMR {
						mrEff := min(gemmMR, mcEff-ir)
						aStrip := pa[(ir/gemmMR)*gemmMR*kcEff:]
						microTile(kcEff, aStrip, bStrip,
							dst[(ic+ir)*ldc+jc+jr:], ldc, zeroAcc, mrEff, nrEff)
					}
				}
			}
		}
	}
	ar.Put(packB)
	ar.Put(packA)
}

// packAPanel packs the A sub-panel rows [i0, i0+mc) × cols [p0, p0+kc)
// into MR-tall strips: strip s holds, for each p, the MR values
// a(i0+s·MR+0..MR-1, p0+p), zero-padded past the panel edge. Padded rows
// feed discarded accumulator lanes, so the zeros never reach a real cell.
func packAPanel(dst []float32, a gemmView, i0, p0, mc, kc int) {
	idx := 0
	for si := 0; si < mc; si += gemmMR {
		rows := min(gemmMR, mc-si)
		base := (i0+si)*a.rs + p0*a.cs
		for p := 0; p < kc; p++ {
			off := base + p*a.cs
			for r := 0; r < rows; r++ {
				dst[idx+r] = a.data[off+r*a.rs]
			}
			for r := rows; r < gemmMR; r++ {
				dst[idx+r] = 0
			}
			idx += gemmMR
		}
	}
}

// packBPanel packs the B sub-panel rows [p0, p0+kc) × cols [j0, j0+nc)
// into NR-wide strips: strip s holds, for each p, the NR values
// b(p0+p, j0+s·NR+0..NR-1), zero-padded past the panel edge.
func packBPanel(dst []float32, b gemmView, p0, j0, kc, nc int) {
	idx := 0
	for sj := 0; sj < nc; sj += gemmNR {
		colsN := min(gemmNR, nc-sj)
		base := p0*b.rs + (j0+sj)*b.cs
		if b.cs == 1 {
			// Contiguous rows (the untransposed common case): bulk-copy
			// each 16-float group.
			for p := 0; p < kc; p++ {
				off := base + p*b.rs
				copy(dst[idx:idx+colsN], b.data[off:off+colsN])
				for j := colsN; j < gemmNR; j++ {
					dst[idx+j] = 0
				}
				idx += gemmNR
			}
			continue
		}
		for p := 0; p < kc; p++ {
			off := base + p*b.rs
			for j := 0; j < colsN; j++ {
				dst[idx+j] = b.data[off+j*b.cs]
			}
			for j := colsN; j < gemmNR; j++ {
				dst[idx+j] = 0
			}
			idx += gemmNR
		}
	}
}

// microTile multiplies one packed MR-strip of A by one packed NR-strip
// of B, folding the result into the dst tile at row stride ldc. Full
// interior tiles go straight to the FMA kernel; edge tiles round-trip
// through a fixed-size scratch tile so the kernel never writes past the
// valid region.
func microTile(kc int, pa, pb, dst []float32, ldc int, zeroAcc bool, mrEff, nrEff int) {
	if mrEff == gemmMR && nrEff == gemmNR && useFMAKernel.Load() {
		z := int64(0)
		if zeroAcc {
			z = 1
		}
		fmaTile4x16(int64(kc), &pa[0], &pb[0], &dst[0], int64(ldc), z)
		return
	}
	var tile [gemmMR * gemmNR]float32
	if !zeroAcc {
		for r := 0; r < mrEff; r++ {
			copy(tile[r*gemmNR:r*gemmNR+nrEff], dst[r*ldc:r*ldc+nrEff])
		}
	}
	if useFMAKernel.Load() {
		// The tile is pre-seeded (zeros or dst), so the kernel always
		// loads its accumulators.
		fmaTile4x16(int64(kc), &pa[0], &pb[0], &tile[0], gemmNR, 0)
	} else {
		fmaTileGeneric(kc, pa, pb, &tile)
	}
	for r := 0; r < mrEff; r++ {
		copy(dst[r*ldc:r*ldc+nrEff], tile[r*gemmNR:r*gemmNR+nrEff])
	}
}

// fmaTileGeneric is the portable micro-kernel: the same MR×NR tile
// update as the assembly version, one emulated float32 FMA per step.
// fma32(a, b, c) = float32(float64(a)*float64(b) + float64(c)) is exact:
// the product is representable exactly in float64 and the double
// rounding of the sum is innocuous (53 ≥ 2·24+2 bits), so this matches
// hardware float32 FMA bit for bit.
func fmaTileGeneric(kc int, pa, pb []float32, tile *[gemmMR * gemmNR]float32) {
	for r := 0; r < gemmMR; r++ {
		for s := 0; s < gemmNR; s++ {
			acc := float64(tile[r*gemmNR+s])
			ai := r
			bi := s
			for p := 0; p < kc; p++ {
				acc = float64(float32(float64(pa[ai])*float64(pb[bi]) + acc))
				ai += gemmMR
				bi += gemmNR
			}
			tile[r*gemmNR+s] = float32(acc)
		}
	}
}
