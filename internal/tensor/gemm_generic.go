//go:build !amd64

package tensor

// fmaTile4x16 is only reachable when useFMAKernel is true, which never
// happens off amd64 (the flag is left false and nothing sets it except
// the amd64 init and tests that first check the platform).
func fmaTile4x16(kc int64, pa, pb, c *float32, ldc int64, zeroAcc int64) {
	panic("tensor: fmaTile4x16 called without FMA kernel support")
}
