package tensor

// Pre-packed left operand for the int8 GEMM. Quantized weights are
// immutable after calibration, yet gemmInt8Serial re-packs the A panel
// inside the jc loop — once per qNC-wide column block, which for a conv
// forward (n = N·OH·OW, often tens of thousands of columns) means the
// same weight bytes are re-laid-out over a hundred times per layer per
// batch. PackInt8A performs that layout exactly once, at quantization
// time, and GemmInt8PackedA consumes the frozen panels directly. The
// packed bytes are byte-for-byte what packAPanelS8 would have produced,
// so results are bitwise identical to GemmInt8 on the same operands.

// PackedInt8A is an immutable m×k int8 matrix stored in the panel
// layout consumed by the micro-kernel: for each qKC-deep k panel (outer)
// and each qMC-tall row panel (inner), qMR-tall strips in quad layout.
// Safe for concurrent use by any number of GEMM calls once built.
type PackedInt8A struct {
	m, k  int
	numIC int    // row panels per k panel
	offs  []int  // panel start offsets, indexed pcIdx*numIC + icIdx
	data  []int8 // all panels, zero-padded to quad and strip boundaries
}

// Dims returns the logical (m, k) shape of the packed matrix.
func (p *PackedInt8A) Dims() (m, k int) { return p.m, p.k }

// PackInt8A packs the m×k matrix a — logical element (i, p) at
// aData[i*ars+p*acs] — into panel layout. m and k must be positive.
func PackInt8A(aData []int8, ars, acs, m, k int) *PackedInt8A {
	if m <= 0 || k <= 0 {
		panic("tensor: PackInt8A requires positive dimensions")
	}
	a := int8View{data: aData, rs: ars, cs: acs}
	numPC := (k + qKC - 1) / qKC
	numIC := (m + qMC - 1) / qMC
	offs := make([]int, numPC*numIC)
	size := 0
	for pcIdx := 0; pcIdx < numPC; pcIdx++ {
		kcEff := min(qKC, k-pcIdx*qKC)
		kq := (kcEff + 3) / 4
		for icIdx := 0; icIdx < numIC; icIdx++ {
			mcEff := min(qMC, m-icIdx*qMC)
			strips := (mcEff + qMR - 1) / qMR
			offs[pcIdx*numIC+icIdx] = size
			size += strips * qMR * kq * 4
		}
	}
	p := &PackedInt8A{m: m, k: k, numIC: numIC, offs: offs, data: make([]int8, size)}
	for pcIdx := 0; pcIdx < numPC; pcIdx++ {
		kcEff := min(qKC, k-pcIdx*qKC)
		kq := (kcEff + 3) / 4
		for icIdx := 0; icIdx < numIC; icIdx++ {
			mcEff := min(qMC, m-icIdx*qMC)
			packAPanelS8(p.data[offs[pcIdx*numIC+icIdx]:], a, icIdx*qMC, pcIdx*qKC, mcEff, kcEff, kq)
		}
	}
	return p
}

// GemmInt8PackedA is GemmInt8 with a pre-packed left operand: it
// computes dst[i,j] = Σ_p pa(i,p)·b(p,j) for i < pa.m, j < n, with dst
// rows ldc apart and b strided over bData by (brs, bcs). Bitwise
// identical to GemmInt8 on the unpacked matrix, for any worker count.
func GemmInt8PackedA(dst []int32, ldc, n int, pa *PackedInt8A, bData []uint8, brs, bcs int) {
	if n <= 0 {
		return
	}
	b := uint8View{data: bData, rs: brs, cs: bcs}
	qStripe(pa.m, n, pa.k, func(m0, m1, n0, n1 int) {
		gemmInt8SerialPackedA(dst, ldc, m0, m1, n0, n1, pa, b)
	})
}

// gemmInt8SerialPackedA is gemmInt8Serial with the A-packing step
// replaced by offset arithmetic into the frozen panels. Row stripes from
// qStripe are qMR-aligned and qMC panel origins are multiples of qMR, so
// a stripe boundary always lands on a strip boundary: the strip holding
// output row ir of panel ic starts at ((ir-ic)/qMR)·qMR·kq·4.
func gemmInt8SerialPackedA(dst []int32, ldc, m0, m1, n0, n1 int, pa *PackedInt8A, b uint8View) {
	bufs := qPackPool.Get().(*qPackBufs)
	pb := bufs.b
	k := pa.k
	for jc := n0; jc < n1; jc += qNC {
		ncEff := min(qNC, n1-jc)
		for pc, pcIdx := 0, 0; pc < k; pc, pcIdx = pc+qKC, pcIdx+1 {
			kcEff := min(qKC, k-pc)
			kq := (kcEff + 3) / 4
			zeroAcc := pc == 0
			packBPanelU8(pb, b, pc, jc, kcEff, ncEff, kq)
			for ic := (m0 / qMC) * qMC; ic < m1; ic += qMC {
				panel := pa.data[pa.offs[pcIdx*pa.numIC+ic/qMC]:]
				row0 := max(m0, ic)
				row1 := min(m1, ic+qMC)
				for jr := 0; jr < ncEff; jr += qNR {
					nrEff := min(qNR, ncEff-jr)
					bStrip := pb[(jr/qNR)*qNR*kq*4:]
					for ir := row0; ir < row1; ir += qMR {
						mrEff := min(qMR, row1-ir)
						aStrip := panel[((ir-ic)/qMR)*qMR*kq*4:]
						microTileInt8(kq, aStrip, bStrip,
							dst[ir*ldc+jc+jr:], ldc, zeroAcc, mrEff, nrEff)
					}
				}
			}
		}
	}
	qPackPool.Put(bufs)
}
