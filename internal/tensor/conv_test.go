package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// conv2dNaive is a direct O(N·F·OH·OW·C·KH·KW) reference implementation.
func conv2dNaive(x, weights, bias *Tensor, c, h, w int, spec ConvSpec) *Tensor {
	n := x.Shape[0]
	f := weights.Shape[0]
	oh, ow := spec.OutDims(h, w)
	y := New(n, f, oh, ow)
	for i := 0; i < n; i++ {
		for fi := 0; fi < f; fi++ {
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					var s float64
					for ch := 0; ch < c; ch++ {
						for ky := 0; ky < spec.KH; ky++ {
							iy := oy*spec.Stride + ky - spec.PadH
							if iy < 0 || iy >= h {
								continue
							}
							for kx := 0; kx < spec.KW; kx++ {
								ix := ox*spec.Stride + kx - spec.PadW
								if ix < 0 || ix >= w {
									continue
								}
								xv := x.Data[((i*c+ch)*h+iy)*w+ix]
								wv := weights.Data[fi*(c*spec.KH*spec.KW)+(ch*spec.KH+ky)*spec.KW+kx]
								s += float64(xv) * float64(wv)
							}
						}
					}
					if bias != nil {
						s += float64(bias.Data[fi])
					}
					y.Data[((i*f+fi)*oh+oy)*ow+ox] = float32(s)
				}
			}
		}
	}
	return y
}

func TestConvSpecOutDims(t *testing.T) {
	s := ConvSpec{KH: 3, KW: 3, Stride: 1, PadH: 1, PadW: 1}
	oh, ow := s.OutDims(8, 8)
	if oh != 8 || ow != 8 {
		t.Fatalf("same-pad 3x3: got %dx%d, want 8x8", oh, ow)
	}
	s = ConvSpec{KH: 2, KW: 2, Stride: 2}
	oh, ow = s.OutDims(8, 6)
	if oh != 4 || ow != 3 {
		t.Fatalf("2x2/2 pool: got %dx%d, want 4x3", oh, ow)
	}
}

func TestConvSpecValidate(t *testing.T) {
	cases := []struct {
		spec ConvSpec
		h, w int
		ok   bool
	}{
		{ConvSpec{KH: 3, KW: 3, Stride: 1, PadH: 1, PadW: 1}, 8, 8, true},
		{ConvSpec{KH: 0, KW: 3, Stride: 1}, 8, 8, false},
		{ConvSpec{KH: 3, KW: 3, Stride: 0}, 8, 8, false},
		{ConvSpec{KH: 3, KW: 3, Stride: 1, PadH: -1, PadW: -1}, 8, 8, false},
		{ConvSpec{KH: 9, KW: 9, Stride: 1}, 4, 4, false},
	}
	for i, c := range cases {
		err := c.spec.Validate(c.h, c.w)
		if (err == nil) != c.ok {
			t.Fatalf("case %d: Validate = %v, want ok=%v", i, err, c.ok)
		}
	}
}

func TestConv2DForwardMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	configs := []struct {
		n, c, h, w, f int
		spec          ConvSpec
	}{
		{1, 1, 5, 5, 1, ConvSpec{KH: 3, KW: 3, Stride: 1}},
		{2, 3, 8, 8, 4, ConvSpec{KH: 3, KW: 3, Stride: 1, PadH: 1, PadW: 1}},
		{3, 2, 7, 9, 5, ConvSpec{KH: 3, KW: 3, Stride: 2, PadH: 1, PadW: 1}},
		{2, 4, 6, 6, 3, ConvSpec{KH: 5, KW: 5, Stride: 1, PadH: 2, PadW: 2}},
		{1, 2, 1, 16, 3, ConvSpec{KH: 1, KW: 3, Stride: 1, PadH: 1, PadW: 1}}, // 1D conv as 2D
	}
	for i, cfg := range configs {
		x := New(cfg.n, cfg.c, cfg.h, cfg.w).RandN(rng, 1)
		wt := New(cfg.f, cfg.c*cfg.spec.KH*cfg.spec.KW).RandN(rng, 1)
		b := New(cfg.f).RandN(rng, 1)
		got, _ := Conv2DForward(x, wt, b, cfg.c, cfg.h, cfg.w, cfg.spec, false)
		want := conv2dNaive(x, wt, b, cfg.c, cfg.h, cfg.w, cfg.spec)
		if !got.SameShape(want) {
			t.Fatalf("config %d: shape %v vs %v", i, got.Shape, want.Shape)
		}
		for j := range got.Data {
			if math.Abs(float64(got.Data[j]-want.Data[j])) > 1e-3 {
				t.Fatalf("config %d: elem %d got %v want %v", i, j, got.Data[j], want.Data[j])
			}
		}
	}
}

func TestIm2ColCol2ImAdjoint(t *testing.T) {
	// <Im2Col(x), y> == <x, Col2Im(y)> — the two must be adjoint linear
	// maps for the conv backward pass to be correct.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c, h, w := 1+rng.Intn(3), 3+rng.Intn(6), 3+rng.Intn(6)
		spec := ConvSpec{KH: 1 + rng.Intn(3), KW: 1 + rng.Intn(3), Stride: 1 + rng.Intn(2), PadH: rng.Intn(2), PadW: rng.Intn(2)}
		if spec.Validate(h, w) != nil {
			return true
		}
		oh, ow := spec.OutDims(h, w)
		colRows := c * spec.KH * spec.KW
		x := New(c, h, w).RandN(rng, 1)
		y := New(colRows, oh*ow).RandN(rng, 1)
		cols := New(colRows, oh*ow)
		Im2Col(cols, x, c, h, w, spec)
		lhs := Dot(cols, y)
		back := New(c, h, w)
		Col2Im(back, y, c, h, w, spec)
		rhs := Dot(x, back)
		return math.Abs(lhs-rhs) < 1e-2*(1+math.Abs(lhs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// numericalGrad estimates d loss / d theta[i] where loss = sum(conv(x)·g).
func convLoss(x, wt, b *Tensor, c, h, w int, spec ConvSpec, g *Tensor) float64 {
	y, _ := Conv2DForward(x, wt, b, c, h, w, spec, false)
	return Dot(y, g)
}

func TestConv2DBackwardNumerical(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	n, c, h, w, f := 2, 2, 6, 6, 3
	spec := ConvSpec{KH: 3, KW: 3, Stride: 1, PadH: 1, PadW: 1}
	x := New(n, c, h, w).RandN(rng, 1)
	wt := New(f, c*spec.KH*spec.KW).RandN(rng, 1)
	b := New(f).RandN(rng, 1)
	oh, ow := spec.OutDims(h, w)
	g := New(n, f, oh, ow).RandN(rng, 1)

	_, cols := Conv2DForward(x, wt, b, c, h, w, spec, true)
	dW := New(f, c*spec.KH*spec.KW)
	dB := New(f)
	dx := Conv2DBackward(g, wt, cols, dW, dB, c, h, w, spec)

	const eps = 1e-2
	check := func(name string, theta *Tensor, grad *Tensor, indices []int) {
		for _, i := range indices {
			orig := theta.Data[i]
			theta.Data[i] = orig + eps
			up := convLoss(x, wt, b, c, h, w, spec, g)
			theta.Data[i] = orig - eps
			down := convLoss(x, wt, b, c, h, w, spec, g)
			theta.Data[i] = orig
			num := (up - down) / (2 * eps)
			got := float64(grad.Data[i])
			if math.Abs(num-got) > 1e-1*(1+math.Abs(num)) {
				t.Fatalf("%s grad[%d]: analytic %v vs numeric %v", name, i, got, num)
			}
		}
	}
	check("weight", wt, dW, []int{0, 5, 17, len(wt.Data) - 1})
	check("bias", b, dB, []int{0, 1, 2})
	check("input", x, dx, []int{0, 10, 77, len(x.Data) - 1})
}

func TestConv2DBackwardParallelDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	n, c, h, w, f := 8, 2, 8, 8, 4
	spec := ConvSpec{KH: 3, KW: 3, Stride: 1, PadH: 1, PadW: 1}
	x := New(n, c, h, w).RandN(rng, 1)
	wt := New(f, c*spec.KH*spec.KW).RandN(rng, 1)
	oh, ow := spec.OutDims(h, w)
	g := New(n, f, oh, ow).RandN(rng, 1)
	_, cols := Conv2DForward(x, wt, nil, c, h, w, spec, true)

	run := func(workers int) (*Tensor, *Tensor) {
		prev := SetMaxWorkers(workers)
		defer SetMaxWorkers(prev)
		dW := New(f, c*spec.KH*spec.KW)
		dB := New(f)
		dx := Conv2DBackward(g, wt, cols, dW, dB, c, h, w, spec)
		return dW, dx
	}
	dW1, dx1 := run(1)
	dW4, dx4 := run(4)
	for i := range dW1.Data {
		if math.Abs(float64(dW1.Data[i]-dW4.Data[i])) > 1e-3 {
			t.Fatalf("dW differs between 1 and 4 workers at %d", i)
		}
	}
	for i := range dx1.Data {
		if math.Abs(float64(dx1.Data[i]-dx4.Data[i])) > 1e-4 {
			t.Fatalf("dx differs between 1 and 4 workers at %d", i)
		}
	}
}

func TestMaxPool2D(t *testing.T) {
	// 1 sample, 1 channel, 4x4 with known values.
	x := FromSlice([]float32{
		1, 2, 5, 3,
		4, 0, 1, 2,
		7, 8, 0, 1,
		2, 9, 3, 6,
	}, 1, 1, 4, 4)
	spec := ConvSpec{KH: 2, KW: 2, Stride: 2}
	y, argmax := MaxPool2DForward(x, 1, 4, 4, spec)
	want := []float32{4, 5, 9, 6}
	for i, wv := range want {
		if y.Data[i] != wv {
			t.Fatalf("pool[%d] = %v, want %v", i, y.Data[i], wv)
		}
	}
	dy := FromSlice([]float32{1, 1, 1, 1}, 1, 1, 2, 2)
	dx := MaxPool2DBackward(dy, argmax, 1, 1, 4, 4)
	// Gradient flows only to the argmax positions.
	if dx.Data[4] != 1 || dx.Data[2] != 1 || dx.Data[13] != 1 || dx.Data[15] != 1 {
		t.Fatalf("pool backward wrong: %v", dx.Data)
	}
	if s := dx.Sum(); s != 4 {
		t.Fatalf("pool backward total %v, want 4", s)
	}
}

func TestMaxPoolGradientSumPreserved(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, c := 1+rng.Intn(3), 1+rng.Intn(3)
		h, w := 4+rng.Intn(5), 4+rng.Intn(5)
		spec := ConvSpec{KH: 2, KW: 2, Stride: 2}
		x := New(n, c, h, w).RandN(rng, 1)
		y, argmax := MaxPool2DForward(x, c, h, w, spec)
		dy := New(y.Shape...).Fill(1)
		dx := MaxPool2DBackward(dy, argmax, n, c, h, w)
		// Every unit of upstream gradient lands somewhere in dx.
		return math.Abs(dx.Sum()-dy.Sum()) < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
