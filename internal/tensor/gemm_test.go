package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// fma32 is the reference fused multiply-add: exact for float32 operands
// because the float64 product is exact and the final rounding is the
// only rounding that matters (see gemm.go).
func fma32(a, b, c float32) float32 {
	return float32(float64(a)*float64(b) + float64(c))
}

// gemmRef computes the reference product with the exact reduction order
// the blocked kernel guarantees: one accumulator per cell, ascending p,
// one fma32 per step. seed provides initial accumulator values for the
// accumulate variants (nil means zero).
func gemmRef(m, n, k int, at func(i, p int) float32, bt func(p, j int) float32, seed *Tensor) *Tensor {
	out := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var acc float32
			if seed != nil {
				acc = seed.Data[i*n+j]
			}
			for p := 0; p < k; p++ {
				acc = fma32(at(i, p), bt(p, j), acc)
			}
			out.Data[i*n+j] = acc
		}
	}
	return out
}

func randTensor(rng *rand.Rand, dims ...int) *Tensor {
	t := New(dims...)
	for i := range t.Data {
		t.Data[i] = float32(rng.NormFloat64())
	}
	return t
}

func requireBitwise(t *testing.T, label string, got, want *Tensor) {
	t.Helper()
	if len(got.Data) != len(want.Data) {
		t.Fatalf("%s: length %d != %d", label, len(got.Data), len(want.Data))
	}
	for i := range got.Data {
		if math.Float32bits(got.Data[i]) != math.Float32bits(want.Data[i]) {
			t.Fatalf("%s: element %d differs: got %v (bits %08x) want %v (bits %08x)",
				label, i, got.Data[i], math.Float32bits(got.Data[i]),
				want.Data[i], math.Float32bits(want.Data[i]))
		}
	}
}

// gemmTestShapes exercises ragged sizes around every blocking boundary:
// the 4×16 micro-tile, the KC=256 panel depth, and sizes well below and
// above each.
var gemmTestShapes = []struct{ m, n, k int }{
	{1, 1, 1},
	{1, 3, 2},
	{3, 15, 7},
	{4, 16, 8},
	{5, 17, 9},
	{3, 16, 256},
	{4, 17, 257},
	{15, 31, 63},
	{16, 32, 64},
	{17, 33, 1},
	{33, 5, 300},
	{64, 48, 100},
	{129, 130, 19},
}

func TestMatMulBitwiseMatchesFMAReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, s := range gemmTestShapes {
		a := randTensor(rng, s.m, s.k)
		b := randTensor(rng, s.k, s.n)
		want := gemmRef(s.m, s.n, s.k,
			func(i, p int) float32 { return a.Data[i*s.k+p] },
			func(p, j int) float32 { return b.Data[p*s.n+j] }, nil)
		got := MatMul(nil, a, b)
		requireBitwise(t, "MatMul", got, want)
	}
}

func TestMatMulTransABitwiseMatchesFMAReference(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, s := range gemmTestShapes {
		a := randTensor(rng, s.k, s.m) // Aᵀ operand layout
		b := randTensor(rng, s.k, s.n)
		want := gemmRef(s.m, s.n, s.k,
			func(i, p int) float32 { return a.Data[p*s.m+i] },
			func(p, j int) float32 { return b.Data[p*s.n+j] }, nil)
		got := MatMulTransA(nil, a, b)
		requireBitwise(t, "MatMulTransA", got, want)

		// Accumulate form seeds the chain with the existing destination.
		dst := randTensor(rng, s.m, s.n)
		wantAcc := gemmRef(s.m, s.n, s.k,
			func(i, p int) float32 { return a.Data[p*s.m+i] },
			func(p, j int) float32 { return b.Data[p*s.n+j] }, dst)
		MatMulTransAAcc(dst, a, b)
		requireBitwise(t, "MatMulTransAAcc", dst, wantAcc)
	}
}

func TestMatMulTransBBitwiseMatchesFMAReference(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, s := range gemmTestShapes {
		a := randTensor(rng, s.m, s.k)
		b := randTensor(rng, s.n, s.k) // Bᵀ operand layout
		want := gemmRef(s.m, s.n, s.k,
			func(i, p int) float32 { return a.Data[i*s.k+p] },
			func(p, j int) float32 { return b.Data[j*s.k+p] }, nil)
		got := MatMulTransB(nil, a, b)
		requireBitwise(t, "MatMulTransB", got, want)
	}
}

// TestMatMulCloseToFloat64Naive is the accuracy (as opposed to
// bit-exactness) check: the fixed-order float32 FMA chain must stay near
// a float64 triple-loop reference.
func TestMatMulCloseToFloat64Naive(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, s := range gemmTestShapes {
		a := randTensor(rng, s.m, s.k)
		b := randTensor(rng, s.k, s.n)
		got := MatMul(nil, a, b)
		for i := 0; i < s.m; i++ {
			for j := 0; j < s.n; j++ {
				var acc float64
				for p := 0; p < s.k; p++ {
					acc += float64(a.Data[i*s.k+p]) * float64(b.Data[p*s.n+j])
				}
				if diff := math.Abs(float64(got.Data[i*s.n+j]) - acc); diff > 1e-3*(1+math.Abs(acc)) {
					t.Fatalf("shape %dx%dx%d cell (%d,%d): got %v want %v", s.m, s.n, s.k, i, j, got.Data[i*s.n+j], acc)
				}
			}
		}
	}
}

// TestGEMMWorkerInvariance sweeps worker counts and demands identical
// bytes: the contract the PR 2 determinism suite builds on.
func TestGEMMWorkerInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	// Large enough to cross the parallel threshold and several block
	// boundaries, ragged so edge tiles land mid-stripe.
	const m, n, k = 130, 93, 301
	a := randTensor(rng, m, k)
	b := randTensor(rng, k, n)
	bT := randTensor(rng, n, k)
	aT := randTensor(rng, k, m)

	prev := SetMaxWorkers(1)
	defer SetMaxWorkers(prev)
	base := MatMul(nil, a, b)
	baseTA := MatMulTransA(nil, aT, b)
	baseTB := MatMulTransB(nil, a, bT)
	for _, workers := range []int{2, 4, 8} {
		SetMaxWorkers(workers)
		requireBitwise(t, "MatMul workers", MatMul(nil, a, b), base)
		requireBitwise(t, "MatMulTransA workers", MatMulTransA(nil, aT, b), baseTA)
		requireBitwise(t, "MatMulTransB workers", MatMulTransB(nil, a, bT), baseTB)
	}
}

// TestGEMMGenericMatchesAsmKernel proves the pure-Go micro-kernel and the
// assembly FMA kernel produce identical bytes, so determinism holds
// across platforms, not just across worker counts.
func TestGEMMGenericMatchesAsmKernel(t *testing.T) {
	if !useFMAKernel.Load() {
		t.Skip("FMA kernel not available on this CPU")
	}
	rng := rand.New(rand.NewSource(12))
	for _, s := range gemmTestShapes {
		a := randTensor(rng, s.m, s.k)
		b := randTensor(rng, s.k, s.n)
		asm := MatMul(nil, a, b)
		useFMAKernel.Store(false)
		gen := MatMul(nil, a, b)
		useFMAKernel.Store(true)
		requireBitwise(t, "generic vs asm", gen, asm)
	}
}

func TestMatMulZeroInnerDimension(t *testing.T) {
	a := New(3, 0)
	b := New(0, 4)
	dst := New(3, 4)
	for i := range dst.Data {
		dst.Data[i] = 5
	}
	MatMul(dst, a, b)
	for i, v := range dst.Data {
		if v != 0 {
			t.Fatalf("k=0 product must zero dst, element %d = %v", i, v)
		}
	}
}

func TestConv2DForwardWorkerInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	const n, c, h, w, f = 5, 3, 13, 11, 7
	spec := ConvSpec{KH: 3, KW: 3, Stride: 1, PadH: 1, PadW: 1}
	x := randTensor(rng, n, c, h, w)
	wt := randTensor(rng, f, c*spec.KH*spec.KW)
	bias := randTensor(rng, f)

	prev := SetMaxWorkers(1)
	defer SetMaxWorkers(prev)
	base, _ := Conv2DForward(x, wt, bias, c, h, w, spec, false)
	for _, workers := range []int{2, 4, 8} {
		SetMaxWorkers(workers)
		got, _ := Conv2DForward(x, wt, bias, c, h, w, spec, false)
		requireBitwise(t, "Conv2DForward workers", got, base)
	}
}
