package tensor

import "math"

// Add computes t += o elementwise and returns t. Shapes must match in
// element count.
func (t *Tensor) Add(o *Tensor) *Tensor {
	if len(t.Data) != len(o.Data) {
		panic("tensor: Add size mismatch")
	}
	for i, v := range o.Data {
		t.Data[i] += v
	}
	return t
}

// Sub computes t -= o elementwise and returns t.
func (t *Tensor) Sub(o *Tensor) *Tensor {
	if len(t.Data) != len(o.Data) {
		panic("tensor: Sub size mismatch")
	}
	for i, v := range o.Data {
		t.Data[i] -= v
	}
	return t
}

// Mul computes t *= o elementwise (Hadamard product) and returns t.
func (t *Tensor) Mul(o *Tensor) *Tensor {
	if len(t.Data) != len(o.Data) {
		panic("tensor: Mul size mismatch")
	}
	for i, v := range o.Data {
		t.Data[i] *= v
	}
	return t
}

// Scale multiplies every element by s and returns t.
func (t *Tensor) Scale(s float32) *Tensor {
	for i := range t.Data {
		t.Data[i] *= s
	}
	return t
}

// AddScaled computes t += s*o elementwise and returns t (axpy).
func (t *Tensor) AddScaled(s float32, o *Tensor) *Tensor {
	if len(t.Data) != len(o.Data) {
		panic("tensor: AddScaled size mismatch")
	}
	for i, v := range o.Data {
		t.Data[i] += s * v
	}
	return t
}

// Sum returns the sum of all elements (accumulated in float64 for
// stability).
func (t *Tensor) Sum() float64 {
	var s float64
	for _, v := range t.Data {
		s += float64(v)
	}
	return s
}

// Max returns the maximum element; it panics on an empty tensor.
func (t *Tensor) Max() float32 {
	if len(t.Data) == 0 {
		panic("tensor: Max of empty tensor")
	}
	m := t.Data[0]
	for _, v := range t.Data[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// ArgMax returns the flat index of the maximum element.
func (t *Tensor) ArgMax() int {
	if len(t.Data) == 0 {
		panic("tensor: ArgMax of empty tensor")
	}
	best, bi := t.Data[0], 0
	for i, v := range t.Data[1:] {
		if v > best {
			best, bi = v, i+1
		}
	}
	return bi
}

// ArgMaxRow returns, for a rank-2 tensor, the column index of the maximum
// element in row i.
func (t *Tensor) ArgMaxRow(i int) int {
	row := t.Row(i)
	best, bi := row[0], 0
	for j, v := range row[1:] {
		if v > best {
			best, bi = v, j+1
		}
	}
	return bi
}

// SoftmaxRows applies a numerically stable softmax to every row of a
// rank-2 tensor in place and returns t. Rows are processed in parallel.
func (t *Tensor) SoftmaxRows() *Tensor {
	if len(t.Shape) != 2 {
		panic("tensor: SoftmaxRows requires a rank-2 tensor")
	}
	rows := t.Shape[0]
	ParallelFor(rows, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			row := t.Row(r)
			m := row[0]
			for _, v := range row[1:] {
				if v > m {
					m = v
				}
			}
			var sum float64
			for j, v := range row {
				e := float32(math.Exp(float64(v - m)))
				row[j] = e
				sum += float64(e)
			}
			inv := float32(1.0 / sum)
			for j := range row {
				row[j] *= inv
			}
		}
	})
	return t
}

// ReLU applies max(0, x) in place and returns t.
func (t *Tensor) ReLU() *Tensor {
	for i, v := range t.Data {
		if v < 0 {
			t.Data[i] = 0
		}
	}
	return t
}

// Dot returns the inner product of t and o viewed as flat vectors.
func Dot(a, b *Tensor) float64 {
	if len(a.Data) != len(b.Data) {
		panic("tensor: Dot size mismatch")
	}
	var s float64
	for i, v := range a.Data {
		s += float64(v) * float64(b.Data[i])
	}
	return s
}

// L2Norm returns the Euclidean norm of t viewed as a flat vector.
func (t *Tensor) L2Norm() float64 {
	var s float64
	for _, v := range t.Data {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

// ClipNorm rescales t in place so its L2 norm does not exceed maxNorm and
// returns the norm observed before clipping. Gradient clipping keeps the
// online warm-start retraining loop stable across distribution shifts.
func (t *Tensor) ClipNorm(maxNorm float64) float64 {
	n := t.L2Norm()
	if maxNorm > 0 && n > maxNorm {
		t.Scale(float32(maxNorm / n))
	}
	return n
}
