package tensor

import (
	"sync"
	"testing"
)

// TestParallelForConcurrentSetMaxWorkers hammers ParallelFor while
// SetMaxWorkers flips the pool size, so `go test -race` exercises the
// atomic maxWorkers path. The old plain-int package var made this exact
// interleaving a data race: ParallelFor read maxWorkers from worker
// goroutines while a configuration goroutine wrote it.
func TestParallelForConcurrentSetMaxWorkers(t *testing.T) {
	defer SetMaxWorkers(0) // restore GOMAXPROCS default

	const (
		iters = 200
		n     = 1 << 12
	)
	var wg sync.WaitGroup

	// Writer: flip the pool size between serial and wide.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			SetMaxWorkers(1 + i%8)
			_ = MaxWorkers()
		}
	}()

	// Readers: run parallel kernels that cover the full range every time
	// regardless of the worker count observed.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				covered := make([]bool, n)
				// Chunks are disjoint, so unsynchronized writes to
				// distinct indices are race-free by construction.
				ParallelFor(n, func(lo, hi int) {
					for j := lo; j < hi; j++ {
						covered[j] = true
					}
				})
				for j, ok := range covered {
					if !ok {
						t.Errorf("index %d not covered", j)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

// TestSetMaxWorkersSwap checks the return-previous contract survives the
// atomic rewrite.
func TestSetMaxWorkersSwap(t *testing.T) {
	orig := MaxWorkers()
	defer SetMaxWorkers(orig)

	prev := SetMaxWorkers(3)
	if prev != orig {
		t.Fatalf("SetMaxWorkers returned %d, want previous value %d", prev, orig)
	}
	if got := MaxWorkers(); got != 3 {
		t.Fatalf("MaxWorkers = %d, want 3", got)
	}
	if prev := SetMaxWorkers(0); prev != 3 {
		t.Fatalf("SetMaxWorkers(0) returned %d, want 3", prev)
	}
	if got := MaxWorkers(); got < 1 {
		t.Fatalf("MaxWorkers after reset = %d, want >= 1", got)
	}
}
