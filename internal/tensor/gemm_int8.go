package tensor

import (
	"encoding/binary"
	"sync"
	"sync/atomic"
)

// Blocked int8 GEMM core: the quantized-inference twin of gemm.go.
//
// The kernel computes C_i32[m,n] = A_s8[m,k] · B_u8[k,n] with int32
// accumulation, following the same Goto/BLIS decomposition as the
// float32 path: KC-deep k panels, B packed into NR-wide column strips,
// A into MR-tall row strips, and an MR×NR register-tiled micro-kernel.
// The k dimension is processed in quads of four bytes — the natural
// granule of the VPDPBUSD instruction, which accumulates four u8·s8
// products into one int32 lane per step — and panels are zero-padded up
// to the next quad boundary. Padding bytes are zero on both operands,
// so each pad contributes an exact 0 to its accumulator.
//
// Determinism. Integer addition is exact and associative: there is no
// rounding anywhere between the int8 operands and the int32 result, so
// any summation order over the same products yields identical bits. The
// asm kernel (gemm_int8_amd64.s) and the pure-Go twin below therefore
// agree bitwise by construction — unlike the float path, no reduction-
// order argument is needed. Worker partitioning assigns whole output
// cells (row or column stripes) to workers and never splits the k
// reduction, mirroring gemm.go, so results are also invariant under any
// worker count. Overflow cannot occur: |s8·u8| ≤ 127·255, and
// 2^31/(127·255) ≈ 66k exceeds any k this codebase produces by orders
// of magnitude.
const (
	// One packed B strip is KC×NR = 4KB of u8; one packed A panel is
	// MC×KC = 32KB of s8 — both smaller than their float32 counterparts,
	// so the float path's cache-driven blocking constants carry over.
	qMR = gemmMR
	qNR = gemmNR
	qKC = gemmKC // multiple of 4: whole quads per panel
	qMC = gemmMC
	qNC = gemmNC
)

// useVNNIKernel selects the assembly micro-kernel. It is set once at
// init on amd64 when the CPU supports AVX-512 VNNI at 256-bit width
// (gemm_int8_amd64.go) and left false elsewhere; tests flip it to prove
// the generic tile produces identical bytes.
var useVNNIKernel atomic.Bool

// int8View / uint8View adapt plain or transposed quantized operands to
// the packing routines: logical element (i, j) lives at data[i*rs+j*cs].
type int8View struct {
	data   []int8
	rs, cs int
}

type uint8View struct {
	data   []uint8
	rs, cs int
}

// qPackBufs is one worker's pair of packing buffers. They come from a
// sync.Pool rather than the float32 Arena: the arena's free lists are
// typed []float32 and these panels are byte-granular.
type qPackBufs struct {
	a []int8  // A panel: up to qMC × qKC bytes
	b []uint8 // B panel: up to qKC × qNC bytes
}

var qPackPool = sync.Pool{New: func() any {
	return &qPackBufs{
		a: make([]int8, qMC*qKC),
		b: make([]uint8, qKC*qNC),
	}
}}

// GemmInt8 computes dst[i,j] = Σ_p a(i,p)·b(p,j) for i < m, j < n,
// p < k, with int32 accumulation, dst rows ldc apart, a strided over
// aData by (ars, acs) and b over bData by (brs, bcs). Every cell of the
// m×n destination region is written (no pre-zeroing needed). This is
// the quantized-inference entry point used by the nn package's int8
// layers.
func GemmInt8(dst []int32, ldc, m, n, k int, aData []int8, ars, acs int, bData []uint8, brs, bcs int) {
	gemmInt8(dst, ldc, m, n, k, int8View{data: aData, rs: ars, cs: acs}, uint8View{data: bData, rs: brs, cs: bcs})
}

func gemmInt8(dst []int32, ldc, m, n, k int, a int8View, b uint8View) {
	if m <= 0 || n <= 0 {
		return
	}
	if k <= 0 {
		for i := 0; i < m; i++ {
			clear(dst[i*ldc : i*ldc+n])
		}
		return
	}
	qStripe(m, n, k, func(m0, m1, n0, n1 int) {
		gemmInt8Serial(dst, ldc, m0, m1, n0, n1, k, a, b)
	})
}

// qStripe partitions the m×n output across workers and calls serial for
// each stripe, or once for the whole region when the problem is small or
// only one worker is available. Stripes are aligned to the micro-tile
// (qMR rows or qNR columns), so workers own whole output cells and never
// split the k reduction — the determinism contract of the package.
func qStripe(m, n, k int, serial func(m0, m1, n0, n1 int)) {
	workers := MaxWorkers()
	if workers > 1 && m*n*k >= gemmParallelMin {
		if n >= m {
			// Column stripes, aligned to the micro-tile width so only
			// the rightmost stripe has a ragged edge.
			stripes := (n + qNR - 1) / qNR
			if stripes > workers {
				stripes = workers
			}
			per := alignUp((n+stripes-1)/stripes, qNR)
			ParallelForMin(stripes, 1, func(lo, hi int) {
				for s := lo; s < hi; s++ {
					n0, n1 := s*per, (s+1)*per
					if n1 > n {
						n1 = n
					}
					if n0 < n1 {
						serial(0, m, n0, n1)
					}
				}
			})
		} else {
			// Row stripes, aligned to the micro-tile height.
			stripes := (m + qMR - 1) / qMR
			if stripes > workers {
				stripes = workers
			}
			per := alignUp((m+stripes-1)/stripes, qMR)
			ParallelForMin(stripes, 1, func(lo, hi int) {
				for s := lo; s < hi; s++ {
					m0, m1 := s*per, (s+1)*per
					if m1 > m {
						m1 = m
					}
					if m0 < m1 {
						serial(m0, m1, 0, n)
					}
				}
			})
		}
		return
	}
	serial(0, m, 0, n)
}

// gemmInt8Serial runs the blocked int8 GEMM over the output region
// [m0,m1)×[n0,n1) on one goroutine.
func gemmInt8Serial(dst []int32, ldc, m0, m1, n0, n1, k int, a int8View, b uint8View) {
	bufs := qPackPool.Get().(*qPackBufs)
	pa, pb := bufs.a, bufs.b
	for jc := n0; jc < n1; jc += qNC {
		ncEff := min(qNC, n1-jc)
		for pc := 0; pc < k; pc += qKC {
			kcEff := min(qKC, k-pc)
			kq := (kcEff + 3) / 4
			// The first k-panel starts every accumulator chain at zero;
			// later panels fold into the stored int32 cells.
			zeroAcc := pc == 0
			packBPanelU8(pb, b, pc, jc, kcEff, ncEff, kq)
			for ic := m0; ic < m1; ic += qMC {
				mcEff := min(qMC, m1-ic)
				packAPanelS8(pa, a, ic, pc, mcEff, kcEff, kq)
				for jr := 0; jr < ncEff; jr += qNR {
					nrEff := min(qNR, ncEff-jr)
					bStrip := pb[(jr/qNR)*qNR*kq*4:]
					for ir := 0; ir < mcEff; ir += qMR {
						mrEff := min(qMR, mcEff-ir)
						aStrip := pa[(ir/qMR)*qMR*kq*4:]
						microTileInt8(kq, aStrip, bStrip,
							dst[(ic+ir)*ldc+jc+jr:], ldc, zeroAcc, mrEff, nrEff)
					}
				}
			}
		}
	}
	qPackPool.Put(bufs)
}

// packAPanelS8 packs the A sub-panel rows [i0, i0+mc) × cols [p0, p0+kc)
// into MR-tall strips in quad layout: strip s holds, for each k-quad q,
// the 4 rows' 4 consecutive k bytes — row r's quad lands at byte offset
// (q·MR + r)·4, ready for one VPBROADCASTD. Rows past the panel edge and
// k bytes past kc pack as zero; zero operands contribute an exact 0.
func packAPanelS8(dst []int8, a int8View, i0, p0, mc, kc, kq int) {
	idx := 0
	for si := 0; si < mc; si += qMR {
		rows := min(qMR, mc-si)
		for q := 0; q < kq; q++ {
			for r := 0; r < qMR; r++ {
				if r >= rows {
					dst[idx] = 0
					dst[idx+1] = 0
					dst[idx+2] = 0
					dst[idx+3] = 0
					idx += 4
					continue
				}
				base := (i0+si+r)*a.rs + p0*a.cs
				for t := 0; t < 4; t++ {
					p := q*4 + t
					if p < kc {
						dst[idx] = a.data[base+p*a.cs]
					} else {
						dst[idx] = 0
					}
					idx++
				}
			}
		}
	}
}

// packBPanelU8 packs the B sub-panel rows [p0, p0+kc) × cols [j0, j0+nc)
// into NR-wide strips in quad layout: strip s holds, for each k-quad q,
// the 16 columns' 4 consecutive k bytes — column j's quad lands at byte
// offset (q·NR + j)·4, so one quad is a 64-byte group read as two ymm
// registers of eight dword lanes (one lane per column).
func packBPanelU8(dst []uint8, b uint8View, p0, j0, kc, nc, kq int) {
	if b.cs == 1 {
		packBPanelU8RowMajor(dst, b, p0, j0, kc, nc, kq)
		return
	}
	idx := 0
	for sj := 0; sj < nc; sj += qNR {
		cols := min(qNR, nc-sj)
		for q := 0; q < kq; q++ {
			for j := 0; j < qNR; j++ {
				if j >= cols {
					dst[idx] = 0
					dst[idx+1] = 0
					dst[idx+2] = 0
					dst[idx+3] = 0
					idx += 4
					continue
				}
				base := p0*b.rs + (j0+sj+j)*b.cs
				for t := 0; t < 4; t++ {
					p := q*4 + t
					if p < kc {
						dst[idx] = b.data[base+p*b.rs]
					} else {
						dst[idx] = 0
					}
					idx++
				}
			}
		}
	}
}

// packBPanelU8RowMajor is the cache-friendly path for row-major B
// (cs == 1) — every B this codebase produces. The generic path walks
// each column's k bytes at stride rs; for the conv column matrix rs is
// N·OH·OW (tens of kilobytes), so every packed byte touched a fresh
// cache line and B packing dominated the serving profile. Here the four
// source k-rows of each quad are read as contiguous spans and scattered
// into the quad layout, whose writes for one quad stay inside a single
// 64-byte group. The packed bytes are identical to the generic path's.
func packBPanelU8RowMajor(dst []uint8, b uint8View, p0, j0, kc, nc, kq int) {
	// Quads outer, column strips inner: for one quad the four source
	// k-rows are then consumed left to right as sequential streams
	// (strip order would instead hop rs ≈ tens-of-KB between 16-byte
	// reads — a fresh page per read). Writes land at stripBase+qOff,
	// which walks the panel at stride kq·64; the whole panel is at most
	// qKC·qNC bytes and stays cache-resident.
	for q := 0; q < kq; q++ {
		base := (p0+q*4)*b.rs + j0
		qOff := q * qNR * 4
		if q*4+4 <= kc {
			r0 := b.data[base : base+nc]
			r1 := b.data[base+b.rs : base+b.rs+nc]
			r2 := b.data[base+2*b.rs : base+2*b.rs+nc]
			r3 := b.data[base+3*b.rs : base+3*b.rs+nc]
			for sj := 0; sj < nc; sj += qNR {
				cols := min(qNR, nc-sj)
				out := dst[sj*kq*4+qOff : sj*kq*4+qOff+qNR*4]
				for j := 0; j < cols; j++ {
					// One dword store per column quad. The layout is
					// defined in bytes (k byte t at offset j·4+t), so the
					// explicit little-endian write is platform-independent.
					binary.LittleEndian.PutUint32(out[j*4:],
						uint32(r0[sj+j])|uint32(r1[sj+j])<<8|uint32(r2[sj+j])<<16|uint32(r3[sj+j])<<24)
				}
				if cols < qNR {
					fillU8(out[cols*4:], 0)
				}
			}
		} else {
			// Ragged final quad: 1–3 valid k rows, rest packs zero.
			rem := kc - q*4
			for sj := 0; sj < nc; sj += qNR {
				cols := min(qNR, nc-sj)
				out := dst[sj*kq*4+qOff : sj*kq*4+qOff+qNR*4]
				for j := 0; j < cols; j++ {
					o := j * 4
					for t := 0; t < 4; t++ {
						if t < rem {
							out[o+t] = b.data[base+t*b.rs+sj+j]
						} else {
							out[o+t] = 0
						}
					}
				}
				if cols < qNR {
					fillU8(out[cols*4:], 0)
				}
			}
		}
	}
}

// microTileInt8 multiplies one packed MR-strip of A by one packed
// NR-strip of B, folding the int32 result into the dst tile at row
// stride ldc. Full interior tiles go straight to the VNNI kernel; edge
// tiles round-trip through a fixed-size scratch tile so the kernel
// never writes past the valid region.
func microTileInt8(kq int, pa []int8, pb []uint8, dst []int32, ldc int, zeroAcc bool, mrEff, nrEff int) {
	if mrEff == qMR && nrEff == qNR && useVNNIKernel.Load() {
		z := int64(0)
		if zeroAcc {
			z = 1
		}
		vnniTile4x16(int64(kq), &pa[0], &pb[0], &dst[0], int64(ldc), z)
		return
	}
	var tile [qMR * qNR]int32
	if !zeroAcc {
		for r := 0; r < mrEff; r++ {
			copy(tile[r*qNR:r*qNR+nrEff], dst[r*ldc:r*ldc+nrEff])
		}
	}
	if useVNNIKernel.Load() {
		// The tile is pre-seeded (zeros or dst), so the kernel always
		// loads its accumulators.
		vnniTile4x16(int64(kq), &pa[0], &pb[0], &tile[0], qNR, 0)
	} else {
		vnniTileGeneric(kq, pa, pb, &tile)
	}
	for r := 0; r < mrEff; r++ {
		copy(dst[r*ldc:r*ldc+nrEff], tile[r*qNR:r*qNR+nrEff])
	}
}

// vnniTileGeneric is the portable micro-kernel: the same MR×NR int32
// tile update as the assembly version. Each output cell folds kq quads
// of four u8·s8 products into its accumulator; because every operation
// is exact integer arithmetic, the result is bitwise identical to the
// VPDPBUSD kernel regardless of summation order.
func vnniTileGeneric(kq int, pa []int8, pb []uint8, tile *[qMR * qNR]int32) {
	for q := 0; q < kq; q++ {
		aOff := q * qMR * 4
		bOff := q * qNR * 4
		for r := 0; r < qMR; r++ {
			a0 := int32(pa[aOff+r*4])
			a1 := int32(pa[aOff+r*4+1])
			a2 := int32(pa[aOff+r*4+2])
			a3 := int32(pa[aOff+r*4+3])
			for s := 0; s < qNR; s++ {
				bo := bOff + s*4
				tile[r*qNR+s] += a0*int32(pb[bo]) +
					a1*int32(pb[bo+1]) +
					a2*int32(pb[bo+2]) +
					a3*int32(pb[bo+3])
			}
		}
	}
}
