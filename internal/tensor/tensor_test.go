package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewShapeAndLen(t *testing.T) {
	x := New(2, 3, 4)
	if x.Len() != 24 {
		t.Fatalf("Len = %d, want 24", x.Len())
	}
	if x.Rank() != 3 {
		t.Fatalf("Rank = %d, want 3", x.Rank())
	}
	if x.Dim(1) != 3 {
		t.Fatalf("Dim(1) = %d, want 3", x.Dim(1))
	}
	for _, v := range x.Data {
		if v != 0 {
			t.Fatal("New tensor not zero-filled")
		}
	}
}

func TestNewNegativeDimPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative dimension")
		}
	}()
	New(2, -1)
}

func TestFromSliceLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for length mismatch")
		}
	}()
	FromSlice([]float32{1, 2, 3}, 2, 2)
}

func TestAtSetRoundTrip(t *testing.T) {
	x := New(3, 4)
	x.Set(7.5, 2, 1)
	if got := x.At(2, 1); got != 7.5 {
		t.Fatalf("At(2,1) = %v, want 7.5", got)
	}
	if got := x.Data[2*4+1]; got != 7.5 {
		t.Fatalf("row-major layout wrong: Data[9] = %v", got)
	}
}

func TestAtOutOfBoundsPanics(t *testing.T) {
	x := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-bounds index")
		}
	}()
	x.At(2, 0)
}

func TestCloneIndependence(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	y := x.Clone()
	y.Data[0] = 99
	if x.Data[0] != 1 {
		t.Fatal("Clone shares data with original")
	}
	if !x.SameShape(y) {
		t.Fatal("Clone shape differs")
	}
}

func TestReshapeSharesData(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	y := x.Reshape(3, 2)
	y.Data[0] = 42
	if x.Data[0] != 42 {
		t.Fatal("Reshape must share data")
	}
	z := x.Reshape(-1, 2)
	if z.Shape[0] != 3 {
		t.Fatalf("inferred dim = %d, want 3", z.Shape[0])
	}
}

func TestReshapeBadSizePanics(t *testing.T) {
	x := New(2, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for bad reshape")
		}
	}()
	x.Reshape(4, 2)
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4}, 4)
	b := FromSlice([]float32{10, 20, 30, 40}, 4)
	a.Add(b)
	want := []float32{11, 22, 33, 44}
	for i, w := range want {
		if a.Data[i] != w {
			t.Fatalf("Add[%d] = %v, want %v", i, a.Data[i], w)
		}
	}
	a.Sub(b)
	for i, w := range []float32{1, 2, 3, 4} {
		if a.Data[i] != w {
			t.Fatalf("Sub[%d] = %v, want %v", i, a.Data[i], w)
		}
	}
	a.Mul(b)
	for i, w := range []float32{10, 40, 90, 160} {
		if a.Data[i] != w {
			t.Fatalf("Mul[%d] = %v, want %v", i, a.Data[i], w)
		}
	}
	a.Scale(0.5)
	if a.Data[3] != 80 {
		t.Fatalf("Scale wrong: %v", a.Data)
	}
	a.AddScaled(2, b)
	if a.Data[0] != 5+20 {
		t.Fatalf("AddScaled wrong: %v", a.Data)
	}
}

func TestSumMaxArgMax(t *testing.T) {
	x := FromSlice([]float32{3, -1, 7, 2}, 4)
	if s := x.Sum(); s != 11 {
		t.Fatalf("Sum = %v, want 11", s)
	}
	if m := x.Max(); m != 7 {
		t.Fatalf("Max = %v, want 7", m)
	}
	if i := x.ArgMax(); i != 2 {
		t.Fatalf("ArgMax = %d, want 2", i)
	}
	y := FromSlice([]float32{1, 5, 2, 9, 0, 3}, 2, 3)
	if i := y.ArgMaxRow(1); i != 0 {
		t.Fatalf("ArgMaxRow(1) = %d, want 0", i)
	}
	if i := y.ArgMaxRow(0); i != 1 {
		t.Fatalf("ArgMaxRow(0) = %d, want 1", i)
	}
}

func TestSoftmaxRows(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 1000, 1000, 1000}, 2, 3)
	x.SoftmaxRows()
	for r := 0; r < 2; r++ {
		var sum float64
		for _, v := range x.Row(r) {
			if v < 0 || v > 1 {
				t.Fatalf("softmax value out of range: %v", v)
			}
			sum += float64(v)
		}
		if math.Abs(sum-1) > 1e-5 {
			t.Fatalf("row %d sums to %v, want 1", r, sum)
		}
	}
	// Row 1 is uniform; row 0 increasing.
	if !(x.At(0, 0) < x.At(0, 1) && x.At(0, 1) < x.At(0, 2)) {
		t.Fatal("softmax not monotone")
	}
	if math.Abs(float64(x.At(1, 0))-1.0/3.0) > 1e-5 {
		t.Fatalf("uniform row wrong: %v", x.At(1, 0))
	}
}

func TestSoftmaxRowsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows, cols := 1+r.Intn(8), 1+r.Intn(16)
		x := New(rows, cols).RandN(r, 10)
		x.SoftmaxRows()
		for i := 0; i < rows; i++ {
			var sum float64
			for _, v := range x.Row(i) {
				if v < 0 {
					return false
				}
				sum += float64(v)
			}
			if math.Abs(sum-1) > 1e-4 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestReLU(t *testing.T) {
	x := FromSlice([]float32{-1, 0, 2, -3}, 4)
	x.ReLU()
	want := []float32{0, 0, 2, 0}
	for i, w := range want {
		if x.Data[i] != w {
			t.Fatalf("ReLU[%d] = %v, want %v", i, x.Data[i], w)
		}
	}
}

func TestClipNorm(t *testing.T) {
	x := FromSlice([]float32{3, 4}, 2)
	n := x.ClipNorm(1)
	if math.Abs(n-5) > 1e-6 {
		t.Fatalf("pre-clip norm = %v, want 5", n)
	}
	if got := x.L2Norm(); math.Abs(got-1) > 1e-5 {
		t.Fatalf("post-clip norm = %v, want 1", got)
	}
	// No clipping when under the bound.
	y := FromSlice([]float32{0.3, 0.4}, 2)
	y.ClipNorm(1)
	if y.Data[0] != 0.3 {
		t.Fatal("ClipNorm changed an in-bound tensor")
	}
}

func matmulNaive(a, b *Tensor) *Tensor {
	m, k, n := a.Shape[0], a.Shape[1], b.Shape[1]
	c := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for p := 0; p < k; p++ {
				s += float64(a.Data[i*k+p]) * float64(b.Data[p*n+j])
			}
			c.Data[i*n+j] = float32(s)
		}
	}
	return c
}

func almostEqual(t *testing.T, got, want *Tensor, tol float64) {
	t.Helper()
	if !got.SameShape(want) {
		t.Fatalf("shape mismatch: %v vs %v", got.Shape, want.Shape)
	}
	for i := range got.Data {
		if math.Abs(float64(got.Data[i]-want.Data[i])) > tol {
			t.Fatalf("element %d: got %v, want %v", i, got.Data[i], want.Data[i])
		}
	}
}

func TestMatMulMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, dims := range [][3]int{{1, 1, 1}, {2, 3, 4}, {5, 7, 3}, {16, 16, 16}, {33, 17, 9}} {
		a := New(dims[0], dims[1]).RandN(rng, 1)
		b := New(dims[1], dims[2]).RandN(rng, 1)
		got := MatMul(nil, a, b)
		want := matmulNaive(a, b)
		almostEqual(t, got, want, 1e-3)
	}
}

func TestMatMulParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := New(64, 32).RandN(rng, 1)
	b := New(32, 48).RandN(rng, 1)
	prev := SetMaxWorkers(1)
	serial := MatMul(nil, a, b)
	SetMaxWorkers(4)
	par := MatMul(nil, a, b)
	SetMaxWorkers(prev)
	almostEqual(t, par, serial, 1e-5)
}

func TestMatMulTransA(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := New(6, 4).RandN(rng, 1) // [k=6, m=4]
	b := New(6, 5).RandN(rng, 1) // [k=6, n=5]
	got := MatMulTransA(nil, a, b)
	want := matmulNaive(a.Transpose(), b)
	almostEqual(t, got, want, 1e-4)
}

func TestMatMulTransB(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	a := New(4, 6).RandN(rng, 1) // [m=4, k=6]
	b := New(5, 6).RandN(rng, 1) // [n=5, k=6]
	got := MatMulTransB(nil, a, b)
	want := matmulNaive(a, b.Transpose())
	almostEqual(t, got, want, 1e-4)
}

func TestMatMulMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for inner-dimension mismatch")
		}
	}()
	MatMul(nil, New(2, 3), New(4, 5))
}

func TestMatMulProperty(t *testing.T) {
	// (A·B)·v == A·(B·v) for random matrices — associativity through the
	// kernel catches indexing errors.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := 1+rng.Intn(10), 1+rng.Intn(10), 1+rng.Intn(10)
		a := New(m, k).RandN(rng, 1)
		b := New(k, n).RandN(rng, 1)
		v := New(n, 1).RandN(rng, 1)
		left := MatMul(nil, MatMul(nil, a, b), v)
		right := MatMul(nil, a, MatMul(nil, b, v))
		for i := range left.Data {
			if math.Abs(float64(left.Data[i]-right.Data[i])) > 1e-2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestTranspose(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	y := x.Transpose()
	if y.Shape[0] != 3 || y.Shape[1] != 2 {
		t.Fatalf("transpose shape %v", y.Shape)
	}
	if y.At(2, 1) != 6 || y.At(0, 1) != 4 {
		t.Fatalf("transpose values wrong: %v", y.Data)
	}
}

func TestAddRowVectorAndSumRows(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	v := FromSlice([]float32{10, 20, 30}, 3)
	x.AddRowVector(v)
	if x.At(1, 2) != 36 || x.At(0, 0) != 11 {
		t.Fatalf("AddRowVector wrong: %v", x.Data)
	}
	s := x.SumRows(nil)
	want := []float32{11 + 14, 22 + 25, 33 + 36}
	for i, w := range want {
		if s.Data[i] != w {
			t.Fatalf("SumRows[%d] = %v, want %v", i, s.Data[i], w)
		}
	}
}

func TestParallelForCoversRange(t *testing.T) {
	for _, workers := range []int{1, 2, 7} {
		prev := SetMaxWorkers(workers)
		seen := make([]int32, 1000)
		ParallelFor(1000, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				seen[i]++
			}
		})
		SetMaxWorkers(prev)
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestParallelForEmpty(t *testing.T) {
	called := false
	ParallelFor(0, func(lo, hi int) { called = true })
	if called {
		t.Fatal("ParallelFor called fn for empty range")
	}
}

func TestHeXavierInitStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	x := New(10000).HeInit(rng, 50)
	var mean, sq float64
	for _, v := range x.Data {
		mean += float64(v)
		sq += float64(v) * float64(v)
	}
	mean /= float64(x.Len())
	std := math.Sqrt(sq/float64(x.Len()) - mean*mean)
	wantStd := math.Sqrt(2.0 / 50)
	if math.Abs(mean) > 0.01 || math.Abs(std-wantStd)/wantStd > 0.1 {
		t.Fatalf("He init mean=%v std=%v, want mean≈0 std≈%v", mean, std, wantStd)
	}
	y := New(10000).XavierInit(rng, 30, 70)
	limit := math.Sqrt(6.0 / 100)
	for _, v := range y.Data {
		if math.Abs(float64(v)) > limit {
			t.Fatalf("Xavier sample %v outside ±%v", v, limit)
		}
	}
}
