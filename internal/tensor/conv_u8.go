package tensor

// Quantized-activation companions to conv.go: the same im2col and
// max-pool shapes over uint8 data. Out-of-range taps pack the
// activation zero point rather than byte 0 — in the asymmetric u8
// scheme the zero point is the quantized representation of real 0.0,
// so padding stays an exact zero after dequantization. Max pooling is
// exact in the quantized domain because quantization is monotonic: the
// u8 maximum is the quantization of the float maximum.

// fillU8 sets every byte of s to v. The compiler keeps this loop tight;
// it exists so the im2col padding path isn't a byte-at-a-time branch.
func fillU8(s []uint8, v uint8) {
	for i := range s {
		s[i] = v
	}
}

// im2colU8Into expands one sample x [C,H,W] into column-matrix rows of
// length OH*OW written at row stride ld starting at dst[0], packing zp
// for taps outside the padded input.
//
// The stride-1 case — every conv layer in this codebase — runs on span
// operations: per output row, a zp fill for the left pad, one copy for
// the contiguous interior, a zp fill for the right pad. The serving
// profile is dominated by this expansion (the int8 GEMM itself is
// bandwidth-trivial next to it), so the byte-at-a-time tap loop is kept
// only for exotic strides.
func im2colU8Into(dst []uint8, ld int, x []uint8, c, h, w int, spec ConvSpec, zp uint8) {
	oh, ow := spec.OutDims(h, w)
	idx := 0
	for ch := 0; ch < c; ch++ {
		base := ch * h * w
		for ky := 0; ky < spec.KH; ky++ {
			for kx := 0; kx < spec.KW; kx++ {
				row := dst[idx*ld:]
				di := 0
				if spec.Stride == 1 {
					// Valid ox range: lo ≤ ox < hi keeps ix inside [0, w).
					lo := spec.PadW - kx
					if lo < 0 {
						lo = 0
					}
					hi := w - kx + spec.PadW
					if hi > ow {
						hi = ow
					}
					if hi < lo {
						hi = lo
					}
					if ow == w && oh == h {
						// 'Same' geometry: source and destination share the
						// row stride, so all valid output rows of this tap
						// form ONE contiguous copy — the per-row pad columns
						// get neighbor bytes from it and are overwritten
						// with zp after. One memmove of ~OH·OW bytes beats
						// OH separate w-byte copies by a wide margin.
						oyLo := spec.PadH - ky
						if oyLo < 0 {
							oyLo = 0
						}
						oyHi := h - ky + spec.PadH
						if oyHi > oh {
							oyHi = oh
						}
						fillU8(row[:oyLo*ow], zp)
						fillU8(row[oyHi*ow:oh*ow], zp)
						if oyLo < oyHi {
							src := base + (oyLo+ky-spec.PadH)*w + lo + kx - spec.PadW
							length := (oyHi-1-oyLo)*w + hi - lo
							copy(row[oyLo*ow+lo:oyLo*ow+lo+length], x[src:src+length])
							if lo > 0 || hi < ow {
								for oy := oyLo; oy < oyHi; oy++ {
									d := oy * ow
									fillU8(row[d:d+lo], zp)
									fillU8(row[d+hi:d+ow], zp)
								}
							}
						}
						idx++
						continue
					}
					for oy := 0; oy < oh; oy++ {
						iy := oy + ky - spec.PadH
						if iy < 0 || iy >= h {
							fillU8(row[di:di+ow], zp)
							di += ow
							continue
						}
						src := base + iy*w + lo + kx - spec.PadW
						fillU8(row[di:di+lo], zp)
						copy(row[di+lo:di+hi], x[src:src+hi-lo])
						fillU8(row[di+hi:di+ow], zp)
						di += ow
					}
					idx++
					continue
				}
				for oy := 0; oy < oh; oy++ {
					iy := oy*spec.Stride + ky - spec.PadH
					if iy < 0 || iy >= h {
						for ox := 0; ox < ow; ox++ {
							row[di] = zp
							di++
						}
						continue
					}
					rowBase := base + iy*w
					for ox := 0; ox < ow; ox++ {
						ix := ox*spec.Stride + kx - spec.PadW
						if ix < 0 || ix >= w {
							row[di] = zp
						} else {
							row[di] = x[rowBase+ix]
						}
						di++
					}
				}
				idx++
			}
		}
	}
}

// Im2ColBatchU8 expands the whole batch x [N,C,H,W] (flat, row-major)
// into one shared column matrix cols [C*KH*KW, N*OH*OW] where sample i
// owns the column block [i*OH*OW, (i+1)*OH*OW). The fill is
// sample-parallel: workers write disjoint column ranges of every row.
func Im2ColBatchU8(cols, x []uint8, n, c, h, w int, spec ConvSpec, zp uint8) {
	oh, ow := spec.OutDims(h, w)
	colW := oh * ow
	ld := n * colW
	ParallelForMin(n, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			im2colU8Into(cols[i*colW:], ld, x[i*c*h*w:(i+1)*c*h*w], c, h, w, spec, zp)
		}
	})
}

// MaxPool2DForwardU8 applies max pooling to x [N, C, H, W] (flat,
// row-major u8) with the given window/stride spec (padding must be
// zero) and writes the pooled output into y [N, C, OH, OW]. The
// maximum is order-independent, so the result is deterministic for any
// worker count.
func MaxPool2DForwardU8(y, x []uint8, n, c, h, w int, spec ConvSpec) {
	if spec.PadH != 0 || spec.PadW != 0 {
		panic("tensor: MaxPool2DForwardU8 does not support padding")
	}
	oh, ow := spec.OutDims(h, w)
	// Fast path for the ubiquitous 2×2/stride-2 window with no ragged
	// edge: the maximum of four loads, no seeding branches.
	if spec.KH == 2 && spec.KW == 2 && spec.Stride == 2 && 2*oh <= h && 2*ow <= w {
		ParallelForMin(n*c, 1, func(lo, hi int) {
			for p := lo; p < hi; p++ {
				inBase := p * h * w
				outBase := p * oh * ow
				for oy := 0; oy < oh; oy++ {
					r0 := x[inBase+2*oy*w : inBase+2*oy*w+2*ow]
					r1 := x[inBase+(2*oy+1)*w : inBase+(2*oy+1)*w+2*ow]
					dst := y[outBase+oy*ow : outBase+(oy+1)*ow]
					for ox := range dst {
						best := r0[2*ox]
						if v := r0[2*ox+1]; v > best {
							best = v
						}
						if v := r1[2*ox]; v > best {
							best = v
						}
						if v := r1[2*ox+1]; v > best {
							best = v
						}
						dst[ox] = best
					}
				}
			}
		})
		return
	}
	ParallelForMin(n, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			for ch := 0; ch < c; ch++ {
				inBase := (i*c + ch) * h * w
				outBase := (i*c + ch) * oh * ow
				for oy := 0; oy < oh; oy++ {
					for ox := 0; ox < ow; ox++ {
						var best uint8
						seeded := false
						for ky := 0; ky < spec.KH; ky++ {
							iy := oy*spec.Stride + ky
							if iy >= h {
								break
							}
							for kx := 0; kx < spec.KW; kx++ {
								ix := ox*spec.Stride + kx
								if ix >= w {
									break
								}
								v := x[inBase+iy*w+ix]
								if !seeded || v > best {
									best, seeded = v, true
								}
							}
						}
						y[outBase+oy*ow+ox] = best
					}
				}
			}
		}
	})
}
