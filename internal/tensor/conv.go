package tensor

import "fmt"

// ConvSpec describes a 2D convolution: kernel extent, stride, and
// symmetric zero padding. The same spec type is reused for pooling.
type ConvSpec struct {
	KH, KW int // kernel height and width
	Stride int // stride in both dimensions (>= 1)
	PadH   int // symmetric zero padding in the height dimension
	PadW   int // symmetric zero padding in the width dimension
}

// OutDims returns the output height and width for an input of h×w.
func (s ConvSpec) OutDims(h, w int) (oh, ow int) {
	oh = (h+2*s.PadH-s.KH)/s.Stride + 1
	ow = (w+2*s.PadW-s.KW)/s.Stride + 1
	return oh, ow
}

// Validate checks the spec against an input of h×w and returns a
// descriptive error for degenerate configurations.
func (s ConvSpec) Validate(h, w int) error {
	if s.KH <= 0 || s.KW <= 0 {
		return fmt.Errorf("tensor: non-positive kernel %dx%d", s.KH, s.KW)
	}
	if s.Stride <= 0 {
		return fmt.Errorf("tensor: non-positive stride %d", s.Stride)
	}
	if s.PadH < 0 || s.PadW < 0 {
		return fmt.Errorf("tensor: negative padding %dx%d", s.PadH, s.PadW)
	}
	oh, ow := s.OutDims(h, w)
	if oh <= 0 || ow <= 0 {
		return fmt.Errorf("tensor: conv of %dx%d input with kernel %dx%d stride %d pad %dx%d yields empty output",
			h, w, s.KH, s.KW, s.Stride, s.PadH, s.PadW)
	}
	return nil
}

// Im2Col expands one sample x [C,H,W] into a column matrix
// [C*KH*KW, OH*OW] so a convolution becomes a single matrix multiply.
// cols must be pre-shaped; it is overwritten.
func Im2Col(cols, x *Tensor, c, h, w int, spec ConvSpec) {
	oh, ow := spec.OutDims(h, w)
	colW := oh * ow
	idx := 0
	for ch := 0; ch < c; ch++ {
		base := ch * h * w
		for ky := 0; ky < spec.KH; ky++ {
			for kx := 0; kx < spec.KW; kx++ {
				dst := cols.Data[idx*colW : (idx+1)*colW]
				di := 0
				for oy := 0; oy < oh; oy++ {
					iy := oy*spec.Stride + ky - spec.PadH
					if iy < 0 || iy >= h {
						for ox := 0; ox < ow; ox++ {
							dst[di] = 0
							di++
						}
						continue
					}
					rowBase := base + iy*w
					for ox := 0; ox < ow; ox++ {
						ix := ox*spec.Stride + kx - spec.PadW
						if ix < 0 || ix >= w {
							dst[di] = 0
						} else {
							dst[di] = x.Data[rowBase+ix]
						}
						di++
					}
				}
				idx++
			}
		}
	}
}

// Col2Im scatters a column-matrix gradient [C*KH*KW, OH*OW] back into an
// input-shaped gradient dx [C,H,W], accumulating overlapping windows.
// dx must be zeroed by the caller if accumulation from a clean slate is
// desired.
func Col2Im(dx, cols *Tensor, c, h, w int, spec ConvSpec) {
	oh, ow := spec.OutDims(h, w)
	colW := oh * ow
	idx := 0
	for ch := 0; ch < c; ch++ {
		base := ch * h * w
		for ky := 0; ky < spec.KH; ky++ {
			for kx := 0; kx < spec.KW; kx++ {
				src := cols.Data[idx*colW : (idx+1)*colW]
				si := 0
				for oy := 0; oy < oh; oy++ {
					iy := oy*spec.Stride + ky - spec.PadH
					if iy < 0 || iy >= h {
						si += ow
						continue
					}
					rowBase := base + iy*w
					for ox := 0; ox < ow; ox++ {
						ix := ox*spec.Stride + kx - spec.PadW
						if ix >= 0 && ix < w {
							dx.Data[rowBase+ix] += src[si]
						}
						si++
					}
				}
				idx++
			}
		}
	}
}

// Conv2DForward computes a batched 2D convolution.
//
//	x: [N, C, H, W], weights: [F, C*KH*KW], bias: [F] (may be nil)
//	returns y: [N, F, OH, OW] and, when keepCols is true, the per-sample
//	im2col matrices needed by the backward pass.
//
// Samples are processed in parallel across the worker pool; each worker
// allocates its own scratch column matrix.
func Conv2DForward(x, weights, bias *Tensor, c, h, w int, spec ConvSpec, keepCols bool) (y *Tensor, cols []*Tensor) {
	n := x.Shape[0]
	f := weights.Shape[0]
	oh, ow := spec.OutDims(h, w)
	y = New(n, f, oh, ow)
	if keepCols {
		cols = make([]*Tensor, n)
	}
	colRows := c * spec.KH * spec.KW
	colW := oh * ow
	ParallelFor(n, func(lo, hi int) {
		scratch := New(colRows, colW)
		for i := lo; i < hi; i++ {
			cm := scratch
			if keepCols {
				cm = New(colRows, colW)
				cols[i] = cm
			}
			xi := FromSlice(x.Data[i*c*h*w:(i+1)*c*h*w], c, h, w)
			Im2Col(cm, xi, c, h, w, spec)
			yi := FromSlice(y.Data[i*f*colW:(i+1)*f*colW], f, colW)
			matmulInto(yi, weights, cm)
			if bias != nil {
				for fi := 0; fi < f; fi++ {
					b := bias.Data[fi]
					row := yi.Data[fi*colW : (fi+1)*colW]
					for j := range row {
						row[j] += b
					}
				}
			}
		}
	})
	return y, cols
}

// matmulInto is a serial matmul used inside already-parallel per-sample
// loops (nested parallelism would oversubscribe the pool).
func matmulInto(dst, a, b *Tensor) {
	m, k := a.Shape[0], a.Shape[1]
	n := b.Shape[1]
	dst.Zero()
	for i := 0; i < m; i++ {
		ai := a.Data[i*k : (i+1)*k]
		ci := dst.Data[i*n : (i+1)*n]
		for p, av := range ai {
			if av == 0 {
				continue
			}
			axpy(av, b.Data[p*n:(p+1)*n], ci)
		}
	}
}

// Conv2DBackward computes gradients for a batched 2D convolution given the
// upstream gradient dy [N, F, OH, OW] and the saved im2col matrices.
// It accumulates into dW [F, C*KH*KW] and dB [F] (dB may be nil) and
// returns dx [N, C, H, W].
func Conv2DBackward(dy, weights *Tensor, cols []*Tensor, dW, dB *Tensor, c, h, w int, spec ConvSpec) (dx *Tensor) {
	n := dy.Shape[0]
	f := weights.Shape[0]
	oh, ow := spec.OutDims(h, w)
	colW := oh * ow
	colRows := c * spec.KH * spec.KW
	dx = New(n, c, h, w)

	// dx is computed sample-parallel; dW/dB accumulation is done with
	// per-worker partials merged at the end to avoid atomics in the hot
	// loop.
	workers := MaxWorkers()
	partialW := make([]*Tensor, workers)
	partialB := make([]*Tensor, workers)
	slots := make(chan int, workers)
	for i := 0; i < workers; i++ {
		slots <- i
	}
	ParallelFor(n, func(lo, hi int) {
		slot := <-slots
		if partialW[slot] == nil {
			partialW[slot] = New(f, colRows)
			partialB[slot] = New(f)
		}
		pw, pb := partialW[slot], partialB[slot]
		dcols := New(colRows, colW)
		for i := lo; i < hi; i++ {
			dyi := FromSlice(dy.Data[i*f*colW:(i+1)*f*colW], f, colW)
			// dW += dy_i · cols_iᵀ
			for fi := 0; fi < f; fi++ {
				dyRow := dyi.Data[fi*colW : (fi+1)*colW]
				pwRow := pw.Data[fi*colRows : (fi+1)*colRows]
				for r := 0; r < colRows; r++ {
					pwRow[r] += dot32(dyRow, cols[i].Data[r*colW:(r+1)*colW])
				}
				var bs float32
				for _, v := range dyRow {
					bs += v
				}
				pb.Data[fi] += bs
			}
			// dcols = Wᵀ · dy_i
			dcols.Zero()
			for fi := 0; fi < f; fi++ {
				wRow := weights.Data[fi*colRows : (fi+1)*colRows]
				dyRow := dyi.Data[fi*colW : (fi+1)*colW]
				for r, wv := range wRow {
					if wv == 0 {
						continue
					}
					axpy(wv, dyRow, dcols.Data[r*colW:(r+1)*colW])
				}
			}
			dxi := FromSlice(dx.Data[i*c*h*w:(i+1)*c*h*w], c, h, w)
			Col2Im(dxi, dcols, c, h, w, spec)
		}
		slots <- slot
	})
	for i := 0; i < workers; i++ {
		if partialW[i] != nil {
			dW.Add(partialW[i])
			if dB != nil {
				dB.Add(partialB[i])
			}
		}
	}
	return dx
}

// MaxPool2DForward applies max pooling to x [N, C, H, W] with the given
// window/stride spec (padding must be zero) and returns the pooled output
// [N, C, OH, OW] plus the flat argmax indices used by the backward pass.
func MaxPool2DForward(x *Tensor, c, h, w int, spec ConvSpec) (y *Tensor, argmax []int32) {
	if spec.PadH != 0 || spec.PadW != 0 {
		panic("tensor: MaxPool2DForward does not support padding")
	}
	n := x.Shape[0]
	oh, ow := spec.OutDims(h, w)
	y = New(n, c, oh, ow)
	argmax = make([]int32, n*c*oh*ow)
	ParallelFor(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			for ch := 0; ch < c; ch++ {
				inBase := (i*c + ch) * h * w
				outBase := (i*c + ch) * oh * ow
				for oy := 0; oy < oh; oy++ {
					for ox := 0; ox < ow; ox++ {
						best := float32(0)
						bestIdx := -1
						for ky := 0; ky < spec.KH; ky++ {
							iy := oy*spec.Stride + ky
							if iy >= h {
								break
							}
							for kx := 0; kx < spec.KW; kx++ {
								ix := ox*spec.Stride + kx
								if ix >= w {
									break
								}
								idx := inBase + iy*w + ix
								if bestIdx < 0 || x.Data[idx] > best {
									best, bestIdx = x.Data[idx], idx
								}
							}
						}
						o := outBase + oy*ow + ox
						y.Data[o] = best
						argmax[o] = int32(bestIdx)
					}
				}
			}
		}
	})
	return y, argmax
}

// MaxPool2DBackward routes the upstream gradient dy through the argmax
// indices recorded by the forward pass, returning dx with the input shape.
func MaxPool2DBackward(dy *Tensor, argmax []int32, n, c, h, w int) *Tensor {
	dx := New(n, c, h, w)
	for i, g := range dy.Data {
		dx.Data[argmax[i]] += g
	}
	return dx
}
