package tensor

import "fmt"

// ConvSpec describes a 2D convolution: kernel extent, stride, and
// symmetric zero padding. The same spec type is reused for pooling.
type ConvSpec struct {
	KH, KW int // kernel height and width
	Stride int // stride in both dimensions (>= 1)
	PadH   int // symmetric zero padding in the height dimension
	PadW   int // symmetric zero padding in the width dimension
}

// OutDims returns the output height and width for an input of h×w.
func (s ConvSpec) OutDims(h, w int) (oh, ow int) {
	oh = (h+2*s.PadH-s.KH)/s.Stride + 1
	ow = (w+2*s.PadW-s.KW)/s.Stride + 1
	return oh, ow
}

// Validate checks the spec against an input of h×w and returns a
// descriptive error for degenerate configurations.
func (s ConvSpec) Validate(h, w int) error {
	if s.KH <= 0 || s.KW <= 0 {
		return fmt.Errorf("tensor: non-positive kernel %dx%d", s.KH, s.KW)
	}
	if s.Stride <= 0 {
		return fmt.Errorf("tensor: non-positive stride %d", s.Stride)
	}
	if s.PadH < 0 || s.PadW < 0 {
		return fmt.Errorf("tensor: negative padding %dx%d", s.PadH, s.PadW)
	}
	oh, ow := s.OutDims(h, w)
	if oh <= 0 || ow <= 0 {
		return fmt.Errorf("tensor: conv of %dx%d input with kernel %dx%d stride %d pad %dx%d yields empty output",
			h, w, s.KH, s.KW, s.Stride, s.PadH, s.PadW)
	}
	return nil
}

// im2colInto expands one sample x [C,H,W] into column-matrix rows of
// length OH*OW written at row stride ld starting at dst[0]. With
// ld == OH*OW this is the classic dense [C*KH*KW, OH*OW] layout; the
// batched path passes ld == N*OH*OW so each sample fills its own column
// block of a shared matrix.
func im2colInto(dst []float32, ld int, x []float32, c, h, w int, spec ConvSpec) {
	oh, ow := spec.OutDims(h, w)
	idx := 0
	for ch := 0; ch < c; ch++ {
		base := ch * h * w
		for ky := 0; ky < spec.KH; ky++ {
			for kx := 0; kx < spec.KW; kx++ {
				row := dst[idx*ld:]
				di := 0
				for oy := 0; oy < oh; oy++ {
					iy := oy*spec.Stride + ky - spec.PadH
					if iy < 0 || iy >= h {
						for ox := 0; ox < ow; ox++ {
							row[di] = 0
							di++
						}
						continue
					}
					rowBase := base + iy*w
					for ox := 0; ox < ow; ox++ {
						ix := ox*spec.Stride + kx - spec.PadW
						if ix < 0 || ix >= w {
							row[di] = 0
						} else {
							row[di] = x[rowBase+ix]
						}
						di++
					}
				}
				idx++
			}
		}
	}
}

// col2imFrom scatters column-matrix rows (length OH*OW, row stride ld,
// starting at src[0]) back into an input-shaped gradient dx [C,H,W],
// accumulating overlapping windows.
func col2imFrom(dx []float32, src []float32, ld int, c, h, w int, spec ConvSpec) {
	oh, ow := spec.OutDims(h, w)
	idx := 0
	for ch := 0; ch < c; ch++ {
		base := ch * h * w
		for ky := 0; ky < spec.KH; ky++ {
			for kx := 0; kx < spec.KW; kx++ {
				row := src[idx*ld:]
				si := 0
				for oy := 0; oy < oh; oy++ {
					iy := oy*spec.Stride + ky - spec.PadH
					if iy < 0 || iy >= h {
						si += ow
						continue
					}
					rowBase := base + iy*w
					for ox := 0; ox < ow; ox++ {
						ix := ox*spec.Stride + kx - spec.PadW
						if ix >= 0 && ix < w {
							dx[rowBase+ix] += row[si]
						}
						si++
					}
				}
				idx++
			}
		}
	}
}

// Im2Col expands one sample x [C,H,W] into a column matrix
// [C*KH*KW, OH*OW] so a convolution becomes a single matrix multiply.
// cols must be pre-shaped; it is overwritten.
func Im2Col(cols, x *Tensor, c, h, w int, spec ConvSpec) {
	oh, ow := spec.OutDims(h, w)
	im2colInto(cols.Data, oh*ow, x.Data, c, h, w, spec)
}

// Col2Im scatters a column-matrix gradient [C*KH*KW, OH*OW] back into an
// input-shaped gradient dx [C,H,W], accumulating overlapping windows.
// dx must be zeroed by the caller if accumulation from a clean slate is
// desired.
func Col2Im(dx, cols *Tensor, c, h, w int, spec ConvSpec) {
	oh, ow := spec.OutDims(h, w)
	col2imFrom(dx.Data, cols.Data, oh*ow, c, h, w, spec)
}

// Im2ColBatch expands the whole batch x [N,C,H,W] into one shared column
// matrix cols [C*KH*KW, N*OH*OW] where sample i owns the column block
// [i*OH*OW, (i+1)*OH*OW). The fill is sample-parallel: workers write
// disjoint column ranges of every row.
func Im2ColBatch(cols, x *Tensor, c, h, w int, spec ConvSpec) {
	n := x.Shape[0]
	oh, ow := spec.OutDims(h, w)
	colW := oh * ow
	ld := n * colW
	// The single-worker branch repeats the loop rather than sharing a
	// closure with the parallel branch: any closure handed to
	// ParallelForMin escapes to a goroutine and heap-allocates even when
	// it ends up running inline, which would break the zero-alloc
	// training steady state.
	if MaxWorkers() == 1 {
		for i := 0; i < n; i++ {
			im2colInto(cols.Data[i*colW:], ld, x.Data[i*c*h*w:(i+1)*c*h*w], c, h, w, spec)
		}
		return
	}
	ParallelForMin(n, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			im2colInto(cols.Data[i*colW:], ld, x.Data[i*c*h*w:(i+1)*c*h*w], c, h, w, spec)
		}
	})
}

// Conv2DForward computes a batched 2D convolution.
//
//	x: [N, C, H, W], weights: [F, C*KH*KW], bias: [F] (may be nil)
//	returns y: [N, F, OH, OW] and, when keepCols is true, the shared
//	batch column matrix [C*KH*KW, N*OH*OW] needed by the backward pass.
//
// Scratch comes from the default arena; see Conv2DForwardArena.
func Conv2DForward(x, weights, bias *Tensor, c, h, w int, spec ConvSpec, keepCols bool) (y, cols *Tensor) {
	return Conv2DForwardArena(nil, x, weights, bias, c, h, w, spec, keepCols)
}

// Conv2DForwardArena is Conv2DForward with an explicit scratch arena
// (nil selects the default arena). The whole batch runs as a single
// weights×cols GEMM over the shared column matrix rather than one small
// multiply per sample. The returned y (and cols, when kept) are arena
// tensors owned by the caller; recycling them with ar.Put when dead is
// optional but keeps steady-state training allocation-free.
func Conv2DForwardArena(ar *Arena, x, weights, bias *Tensor, c, h, w int, spec ConvSpec, keepCols bool) (y, cols *Tensor) {
	if ar == nil {
		ar = defaultArena
	}
	n := x.Shape[0]
	f := weights.Shape[0]
	colRows := weights.Shape[1]
	oh, ow := spec.OutDims(h, w)
	colW := oh * ow

	cols = ar.Get(colRows, n*colW)
	Im2ColBatch(cols, x, c, h, w, spec)

	// yT[fi, i*colW+j] is the pre-permute output: one GEMM for the batch.
	yT := ar.Get(f, n*colW)
	gemm(yT.Data, n*colW, f, n*colW, colRows,
		gemmView{data: weights.Data, rs: colRows, cs: 1},
		gemmView{data: cols.Data, rs: n * colW, cs: 1},
		false, ar)

	// Permute [F, N*OH*OW] → [N, F, OH, OW] and add bias, sample-parallel.
	// The closure captures plain locals, not the named results: capturing
	// a named return would box it on the heap on every call.
	out := ar.Get(n, f, oh, ow)
	if MaxWorkers() == 1 {
		for i := 0; i < n; i++ {
			convScatterOut(out.Data, yT.Data, bias, i, f, colW, n*colW)
		}
	} else {
		ParallelForMin(n, 1, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				convScatterOut(out.Data, yT.Data, bias, i, f, colW, n*colW)
			}
		})
	}
	y = out
	ar.Put(yT)
	if !keepCols {
		ar.Put(cols)
		return y, nil
	}
	return y, cols
}

// convScatterOut copies sample i's rows out of the pre-permute GEMM
// output yT [F, ld] into y's [i, F, OH*OW] block, adding bias when
// present.
func convScatterOut(y, yT []float32, bias *Tensor, i, f, colW, ld int) {
	for fi := 0; fi < f; fi++ {
		src := yT[fi*ld+i*colW : fi*ld+(i+1)*colW]
		dst := y[(i*f+fi)*colW : (i*f+fi+1)*colW]
		if bias != nil {
			b := bias.Data[fi]
			for j, v := range src {
				dst[j] = v + b
			}
		} else {
			copy(dst, src)
		}
	}
}

// Conv2DBackward computes gradients for a batched 2D convolution given
// the upstream gradient dy [N, F, OH, OW] and the shared column matrix
// saved by the forward pass. It accumulates into dW [F, C*KH*KW] and
// dB [F] (dB may be nil) and returns dx [N, C, H, W]. Scratch comes from
// the default arena; see Conv2DBackwardArena.
func Conv2DBackward(dy, weights, cols *Tensor, dW, dB *Tensor, c, h, w int, spec ConvSpec) (dx *Tensor) {
	return Conv2DBackwardArena(nil, dy, weights, cols, dW, dB, c, h, w, spec)
}

// convGatherIn copies sample i's [F, OH*OW] gradient block of dy into
// the column layout dyT [F, ld] matching the shared column matrix.
func convGatherIn(dyT, dy []float32, i, f, colW, ld int) {
	for fi := 0; fi < f; fi++ {
		copy(dyT[fi*ld+i*colW:fi*ld+(i+1)*colW], dy[(i*f+fi)*colW:(i*f+fi+1)*colW])
	}
}

// Conv2DBackwardArena is Conv2DBackward with an explicit scratch arena
// (nil selects the default arena). The gradient reduces to two GEMMs over
// the batch — dW += dyT·colsᵀ and dcols = Wᵀ·dyT — followed by a
// sample-parallel Col2Im scatter into dx. Both GEMMs keep the fixed
// per-cell ascending reduction order, and dB sums each filter's gradient
// row left to right, so all accumulation is bitwise deterministic for any
// worker count (the old per-worker-partial scheme merged in pool order).
// The returned dx is an arena tensor owned by the caller.
func Conv2DBackwardArena(ar *Arena, dy, weights, cols *Tensor, dW, dB *Tensor, c, h, w int, spec ConvSpec) (dx *Tensor) {
	if ar == nil {
		ar = defaultArena
	}
	n := dy.Shape[0]
	f := weights.Shape[0]
	colRows := weights.Shape[1]
	oh, ow := spec.OutDims(h, w)
	colW := oh * ow

	// Permute dy [N, F, OH*OW] → dyT [F, N*OH*OW], matching the column
	// layout of cols. Sample-parallel: workers write disjoint column
	// blocks of every row.
	dyT := ar.Get(f, n*colW)
	if MaxWorkers() == 1 {
		for i := 0; i < n; i++ {
			convGatherIn(dyT.Data, dy.Data, i, f, colW, n*colW)
		}
	} else {
		ParallelForMin(n, 1, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				convGatherIn(dyT.Data, dy.Data, i, f, colW, n*colW)
			}
		})
	}

	// dW += dyT · colsᵀ — one accumulating GEMM for the whole batch.
	gemm(dW.Data, colRows, f, colRows, n*colW,
		gemmView{data: dyT.Data, rs: n * colW, cs: 1},
		gemmView{data: cols.Data, rs: 1, cs: n * colW}, // colsᵀ
		true, ar)

	// dB += per-filter sums, each row reduced in ascending column order.
	// Filter counts are small, so this stays serial.
	if dB != nil {
		for fi := 0; fi < f; fi++ {
			var s float32
			for _, v := range dyT.Data[fi*n*colW : (fi+1)*n*colW] {
				s += v
			}
			dB.Data[fi] += s
		}
	}

	// dcols = Wᵀ · dyT, then scatter each sample's column block into dx.
	dcols := ar.Get(colRows, n*colW)
	gemm(dcols.Data, n*colW, colRows, n*colW, f,
		gemmView{data: weights.Data, rs: 1, cs: colRows}, // Wᵀ
		gemmView{data: dyT.Data, rs: n * colW, cs: 1},
		false, ar)
	ar.Put(dyT)

	out := ar.Get(n, c, h, w)
	out.Zero()
	if MaxWorkers() == 1 {
		for i := 0; i < n; i++ {
			col2imFrom(out.Data[i*c*h*w:(i+1)*c*h*w], dcols.Data[i*colW:], n*colW, c, h, w, spec)
		}
	} else {
		ParallelForMin(n, 1, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				col2imFrom(out.Data[i*c*h*w:(i+1)*c*h*w], dcols.Data[i*colW:], n*colW, c, h, w, spec)
			}
		})
	}
	ar.Put(dcols)
	return out
}

// MaxPool2DForward applies max pooling to x [N, C, H, W] with the given
// window/stride spec (padding must be zero) and returns the pooled output
// [N, C, OH, OW] plus the flat argmax indices used by the backward pass.
func MaxPool2DForward(x *Tensor, c, h, w int, spec ConvSpec) (y *Tensor, argmax []int32) {
	if spec.PadH != 0 || spec.PadW != 0 {
		panic("tensor: MaxPool2DForward does not support padding")
	}
	n := x.Shape[0]
	oh, ow := spec.OutDims(h, w)
	y = New(n, c, oh, ow)
	argmax = make([]int32, n*c*oh*ow)
	ParallelFor(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			for ch := 0; ch < c; ch++ {
				inBase := (i*c + ch) * h * w
				outBase := (i*c + ch) * oh * ow
				for oy := 0; oy < oh; oy++ {
					for ox := 0; ox < ow; ox++ {
						best := float32(0)
						bestIdx := -1
						for ky := 0; ky < spec.KH; ky++ {
							iy := oy*spec.Stride + ky
							if iy >= h {
								break
							}
							for kx := 0; kx < spec.KW; kx++ {
								ix := ox*spec.Stride + kx
								if ix >= w {
									break
								}
								idx := inBase + iy*w + ix
								if bestIdx < 0 || x.Data[idx] > best {
									best, bestIdx = x.Data[idx], idx
								}
							}
						}
						o := outBase + oy*ow + ox
						y.Data[o] = best
						argmax[o] = int32(bestIdx)
					}
				}
			}
		}
	})
	return y, argmax
}

// MaxPool2DBackward routes the upstream gradient dy through the argmax
// indices recorded by the forward pass, returning dx with the input
// shape. The scatter is sample-parallel: sample i's argmax indices all
// fall inside its own dx block [i*C*H*W, (i+1)*C*H*W), so workers own
// disjoint dx regions.
func MaxPool2DBackward(dy *Tensor, argmax []int32, n, c, h, w int) *Tensor {
	dx := New(n, c, h, w)
	per := len(dy.Data) / max(n, 1)
	ParallelForMin(n, 1, func(lo, hi int) {
		for o := lo * per; o < hi*per; o++ {
			dx.Data[argmax[o]] += dy.Data[o]
		}
	})
	return dx
}
