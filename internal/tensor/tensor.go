// Package tensor provides dense float32 tensors and the parallel numerical
// kernels (matrix multiplication, im2col convolution, pooling, elementwise
// operations) that back the neural-network substrate used by PRIONN.
//
// Tensors are row-major and store their data in a flat []float32. The
// package is deliberately small: it implements exactly the operations the
// PRIONN models need (dense layers, 1D/2D convolutions, max pooling,
// softmax) with backward passes, and parallelizes the hot kernels across
// runtime.GOMAXPROCS(0) workers.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Tensor is a dense, row-major float32 tensor. The zero value is an empty
// tensor; use New or one of the initializers to create a usable one.
type Tensor struct {
	// Shape holds the extent of each dimension, outermost first.
	Shape []int
	// Data is the flat row-major backing array; len(Data) == product(Shape).
	Data []float32
}

// New returns a zero-filled tensor with the given shape.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: make([]float32, n)}
}

// FromSlice wraps data in a tensor with the given shape. The slice is used
// directly (not copied); its length must equal the product of the shape.
func FromSlice(data []float32, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if len(data) != n {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v (=%d)", len(data), shape, n))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: data}
}

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.Data) }

// Dim returns the extent of dimension i.
func (t *Tensor) Dim(i int) int { return t.Shape[i] }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.Shape) }

// At returns the element at the given multi-dimensional index.
func (t *Tensor) At(idx ...int) float32 {
	return t.Data[t.offset(idx)]
}

// Set stores v at the given multi-dimensional index.
func (t *Tensor) Set(v float32, idx ...int) {
	t.Data[t.offset(idx)] = v
}

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.Shape) {
		panic(fmt.Sprintf("tensor: index rank %d does not match tensor rank %d", len(idx), len(t.Shape)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.Shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of bounds for shape %v", idx, t.Shape))
		}
		off = off*t.Shape[i] + x
	}
	return off
}

// Clone returns a deep copy of t.
func (t *Tensor) Clone() *Tensor {
	c := New(t.Shape...)
	copy(c.Data, t.Data)
	return c
}

// Reshape returns a tensor sharing t's data with a new shape. The element
// count must be unchanged. A single -1 dimension is inferred.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	shape = append([]int(nil), shape...)
	infer, n := -1, 1
	for i, d := range shape {
		if d == -1 {
			if infer >= 0 {
				panic("tensor: multiple -1 dimensions in Reshape")
			}
			infer = i
			continue
		}
		n *= d
	}
	if infer >= 0 {
		if n == 0 || len(t.Data)%n != 0 {
			panic(fmt.Sprintf("tensor: cannot infer dimension reshaping %v to %v", t.Shape, shape))
		}
		shape[infer] = len(t.Data) / n
		n *= shape[infer]
	}
	if n != len(t.Data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (%d elems) to %v (%d elems)", t.Shape, len(t.Data), shape, n))
	}
	return &Tensor{Shape: shape, Data: t.Data}
}

// Fill sets every element of t to v and returns t.
func (t *Tensor) Fill(v float32) *Tensor {
	for i := range t.Data {
		t.Data[i] = v
	}
	return t
}

// Zero sets every element to zero and returns t.
func (t *Tensor) Zero() *Tensor {
	clear(t.Data)
	return t
}

// SameShape reports whether t and o have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.Shape) != len(o.Shape) {
		return false
	}
	for i := range t.Shape {
		if t.Shape[i] != o.Shape[i] {
			return false
		}
	}
	return true
}

// String renders small tensors fully and large ones as a summary.
func (t *Tensor) String() string {
	if len(t.Data) <= 16 {
		return fmt.Sprintf("Tensor%v%v", t.Shape, t.Data)
	}
	return fmt.Sprintf("Tensor%v[%d elems]", t.Shape, len(t.Data))
}

// Row returns a view of row i of a rank-2 tensor as a slice (no copy).
func (t *Tensor) Row(i int) []float32 {
	if len(t.Shape) != 2 {
		panic("tensor: Row requires a rank-2 tensor")
	}
	c := t.Shape[1]
	return t.Data[i*c : (i+1)*c]
}

// RandN fills t with samples from N(0, std) using rng and returns t.
func (t *Tensor) RandN(rng *rand.Rand, std float64) *Tensor {
	for i := range t.Data {
		t.Data[i] = float32(rng.NormFloat64() * std)
	}
	return t
}

// HeInit fills t with He-normal initialization for a layer with the given
// fan-in, the standard initializer for ReLU networks.
func (t *Tensor) HeInit(rng *rand.Rand, fanIn int) *Tensor {
	if fanIn <= 0 {
		fanIn = 1
	}
	return t.RandN(rng, math.Sqrt(2.0/float64(fanIn)))
}

// XavierInit fills t with Glorot-uniform initialization for the given
// fan-in and fan-out.
func (t *Tensor) XavierInit(rng *rand.Rand, fanIn, fanOut int) *Tensor {
	if fanIn+fanOut <= 0 {
		fanIn, fanOut = 1, 1
	}
	limit := math.Sqrt(6.0 / float64(fanIn+fanOut))
	for i := range t.Data {
		t.Data[i] = float32((rng.Float64()*2 - 1) * limit)
	}
	return t
}
