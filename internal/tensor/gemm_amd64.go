//go:build amd64

package tensor

// fmaTile4x16 is the AVX+FMA3 micro-kernel (gemm_amd64.s): a 4×16
// float32 accumulator tile updated with one fused multiply-add per cell
// per k step, p ascending. With zeroAcc != 0 the accumulators start at
// zero; otherwise they load from c. c rows are ldc floats apart.
//
//go:noescape
func fmaTile4x16(kc int64, pa, pb, c *float32, ldc int64, zeroAcc int64)

func cpuidAsm(leaf uint32) (eax, ebx, ecx, edx uint32)

func xgetbvAsm() (eax, edx uint32)

// hasAVXFMA reports whether both the CPU and the OS support the AVX+FMA3
// kernel: CPUID leaf 1 ECX bits 12 (FMA), 27 (OSXSAVE), 28 (AVX), and
// XCR0 bits 1|2 (the OS preserves XMM and YMM state across context
// switches).
func hasAVXFMA() bool {
	maxLeaf, _, _, _ := cpuidAsm(0)
	if maxLeaf < 1 {
		return false
	}
	_, _, ecx, _ := cpuidAsm(1)
	const fma = 1 << 12
	const osxsave = 1 << 27
	const avx = 1 << 28
	if ecx&(fma|osxsave|avx) != fma|osxsave|avx {
		return false
	}
	xcr0, _ := xgetbvAsm()
	return xcr0&6 == 6
}

func init() {
	useFMAKernel.Store(hasAVXFMA())
}
