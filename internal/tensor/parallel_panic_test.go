package tensor

import (
	"strings"
	"sync/atomic"
	"testing"
)

// TestParallelForPanicPropagates asserts the tentpole contract: a panic
// in one worker chunk surfaces exactly once, on the caller goroutine, as
// a *PanicError carrying the chunk bounds — never as a process-killing
// panic on an anonymous goroutine. Run under -race in the gate, the
// panicking case must also leave no worker running.
func TestParallelForPanicPropagates(t *testing.T) {
	prev := SetMaxWorkers(4)
	defer SetMaxWorkers(prev)

	var caught atomic.Int64
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("worker panic did not reach the caller")
			}
			caught.Add(1)
			pe, ok := r.(*PanicError)
			if !ok {
				t.Fatalf("recovered %T, want *PanicError", r)
			}
			if pe.Value != "chunk boom" {
				t.Fatalf("panic value = %v", pe.Value)
			}
			if pe.Lo < 0 || pe.Hi > 1024 || pe.Lo >= pe.Hi {
				t.Fatalf("bad chunk bounds [%d,%d)", pe.Lo, pe.Hi)
			}
			if !strings.Contains(pe.Error(), "chunk boom") {
				t.Fatalf("Error() = %q", pe.Error())
			}
			if len(pe.Stack) == 0 {
				t.Fatal("no worker stack captured")
			}
		}()
		// 1024 elements across 4 workers: several real goroutines; the
		// chunk holding index 700 panics.
		ParallelFor(1024, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				if i == 700 {
					panic("chunk boom")
				}
			}
		})
	}()
	if got := caught.Load(); got != 1 {
		t.Fatalf("panic surfaced %d times, want exactly 1", got)
	}
}

// TestParallelForPanicAllWorkersJoined asserts every non-panicking
// worker still completes before the panic is re-raised: the caller never
// races surviving workers on shared buffers.
func TestParallelForPanicAllWorkersJoined(t *testing.T) {
	prev := SetMaxWorkers(4)
	defer SetMaxWorkers(prev)

	var visited atomic.Int64
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		ParallelFor(4096, func(lo, hi int) {
			if lo == 0 {
				panic("early chunk dies")
			}
			for i := lo; i < hi; i++ {
				visited.Add(1)
			}
		})
	}()
	// All chunks except the panicking first one ran to completion; with 4
	// workers over 4096 elements the first chunk holds 1024 elements.
	if got := visited.Load(); got != 4096-1024 {
		t.Fatalf("visited %d elements, want %d (all surviving chunks complete)", got, 4096-1024)
	}
}

// TestParallelForInlinePanicWrapped pins the single-worker (inline) path
// to the same *PanicError contract as the parallel path.
func TestParallelForInlinePanicWrapped(t *testing.T) {
	prev := SetMaxWorkers(1)
	defer SetMaxWorkers(prev)

	defer func() {
		pe, ok := recover().(*PanicError)
		if !ok {
			t.Fatalf("inline path recovered %T, want *PanicError", pe)
		}
		if pe.Lo != 0 || pe.Hi != 10 {
			t.Fatalf("inline chunk bounds [%d,%d), want [0,10)", pe.Lo, pe.Hi)
		}
	}()
	ParallelFor(10, func(lo, hi int) { panic("inline boom") })
}

// TestParallelForNestedPanicNotDoubleWrapped asserts a panic crossing
// two ParallelFor frames reports the innermost chunk once.
func TestParallelForNestedPanicNotDoubleWrapped(t *testing.T) {
	prev := SetMaxWorkers(1)
	defer SetMaxWorkers(prev)

	defer func() {
		pe, ok := recover().(*PanicError)
		if !ok {
			t.Fatalf("recovered %T, want *PanicError", pe)
		}
		if pe.Value != "inner" {
			t.Fatalf("panic value = %v, want the innermost panic", pe.Value)
		}
		if pe.Lo != 0 || pe.Hi != 3 {
			t.Fatalf("chunk bounds [%d,%d), want innermost [0,3)", pe.Lo, pe.Hi)
		}
	}()
	ParallelFor(10, func(lo, hi int) {
		ParallelFor(3, func(lo, hi int) { panic("inner") })
	})
}
