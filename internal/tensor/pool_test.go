package tensor

import (
	"math/rand"
	"testing"
)

func TestArenaGetPutRecycles(t *testing.T) {
	ar := NewArena()
	t1 := ar.Get(10, 9)
	if t1.Shape[0] != 10 || t1.Shape[1] != 9 || len(t1.Data) != 90 {
		t.Fatalf("Get shape mismatch: %v len %d", t1.Shape, len(t1.Data))
	}
	p1 := &t1.Data[0]
	ar.Put(t1)
	// 100 floats rounds to the same 128-float size class as 90.
	t2 := ar.Get(100)
	if &t2.Data[0] != p1 {
		t.Fatal("Get after Put did not recycle the backing array")
	}
	if len(t2.Data) != 100 || t2.Shape[0] != 100 {
		t.Fatalf("recycled tensor has wrong shape %v len %d", t2.Shape, len(t2.Data))
	}
	if got := ar.Outstanding(); got != 1 {
		t.Fatalf("Outstanding = %d, want 1", got)
	}
	ar.Put(t2)
	if got := ar.Outstanding(); got != 0 {
		t.Fatalf("Outstanding after final Put = %d, want 0", got)
	}
}

func TestArenaPutRejectsForeignTensors(t *testing.T) {
	ar := NewArena()
	// cap 90 is not a power-of-two size class: must not be pooled.
	ar.Put(New(10, 9))
	got := ar.Get(10, 9)
	if cap(got.Data) != 128 {
		t.Fatalf("foreign tensor was pooled: cap %d", cap(got.Data))
	}
	ar.Put(nil) // no-op by contract
}

func TestArenaReuse(t *testing.T) {
	ar := NewArena()
	t1 := ar.Get(64)
	p1 := &t1.Data[0]
	t2 := ar.Reuse(t1, 8, 8)
	if &t2.Data[0] != p1 {
		t.Fatal("Reuse at same size class must return the same backing array")
	}
	if got := ar.Outstanding(); got != 1 {
		t.Fatalf("Outstanding = %d, want 1", got)
	}
}

func TestArenaScope(t *testing.T) {
	ar := NewArena()
	sc := ar.Scope()
	sc.Get(16)
	sc.Get(32, 2)
	if got := ar.Outstanding(); got != 2 {
		t.Fatalf("Outstanding inside scope = %d, want 2", got)
	}
	sc.Release()
	if got := ar.Outstanding(); got != 0 {
		t.Fatalf("Outstanding after Release = %d, want 0", got)
	}
}

// TestMatMulSteadyStateZeroAlloc proves the GEMM hot path performs no
// heap allocation once the arena is warm.
func TestMatMulSteadyStateZeroAlloc(t *testing.T) {
	prev := SetMaxWorkers(1)
	defer SetMaxWorkers(prev)
	rng := rand.New(rand.NewSource(1))
	a := randTensor(rng, 40, 300)
	b := randTensor(rng, 300, 50)
	dst := New(40, 50)
	MatMul(dst, a, b) // warm the default arena's pack buffers
	if avg := testing.AllocsPerRun(20, func() { MatMul(dst, a, b) }); avg != 0 {
		t.Fatalf("MatMul steady state allocates %.1f times per run", avg)
	}
}

// TestConvSteadyStateZeroAlloc proves a full conv forward+backward cycle
// is allocation-free when its outputs are recycled through the arena.
func TestConvSteadyStateZeroAlloc(t *testing.T) {
	prev := SetMaxWorkers(1)
	defer SetMaxWorkers(prev)
	rng := rand.New(rand.NewSource(2))
	const n, c, h, w, f = 4, 3, 16, 16, 8
	spec := ConvSpec{KH: 3, KW: 3, Stride: 1, PadH: 1, PadW: 1}
	x := randTensor(rng, n, c, h, w)
	wt := randTensor(rng, f, c*spec.KH*spec.KW)
	bias := randTensor(rng, f)
	dW := New(f, c*spec.KH*spec.KW)
	dB := New(f)
	ar := NewArena()

	step := func() {
		y, cols := Conv2DForwardArena(ar, x, wt, bias, c, h, w, spec, true)
		dx := Conv2DBackwardArena(ar, y, wt, cols, dW, dB, c, h, w, spec)
		ar.Put(cols)
		ar.Put(y)
		ar.Put(dx)
	}
	step() // warm the arena
	if avg := testing.AllocsPerRun(10, func() { step() }); avg != 0 {
		t.Fatalf("conv forward+backward steady state allocates %.1f times per run", avg)
	}
	if got := ar.Outstanding(); got != 0 {
		t.Fatalf("arena leak: Outstanding = %d, want 0", got)
	}
}
