// AVX-512 VNNI micro-kernel for the blocked int8 GEMM (see
// gemm_int8.go). Only used after gemm_int8_amd64.go verifies CPU and OS
// support at init.

#include "textflag.h"

// func vnniTile4x16(kq int64, pa *int8, pb *uint8, c *int32, ldc int64, zeroAcc int64)
//
// Computes, for r in 0..3 and s in 0..15:
//
//	C[r*ldc+s] += Σ_q Σ_t pa[(q*4+r)*4+t] · pb[(q*16+s)*4+t]
//
// over q = 0..kq-1, t = 0..3, seeding each accumulator with C
// (zeroAcc == 0) or 0 (zeroAcc != 0). One VPDPBUSD folds a quad of four
// u8·s8 products into each of eight int32 lanes; the widening products
// and the lane sum are exact, so the result matches vnniTileGeneric bit
// for bit (integer arithmetic has no rounding to reorder).
//
// Register plan: Y8..Y15 hold the 4×16 accumulator tile (4 rows × two
// 8-lane halves); Y0/Y1 hold the current packed-B quad group (16
// columns × 4 bytes); Y2..Y5 broadcast the four packed-A row quads.
// Go assembler operand order: VPDPBUSD signed_src, unsigned_src, acc.
TEXT ·vnniTile4x16(SB), NOSPLIT, $0-48
	MOVQ kq+0(FP), CX
	MOVQ pa+8(FP), SI
	MOVQ pb+16(FP), DI
	MOVQ c+24(FP), DX
	MOVQ ldc+32(FP), R8
	SHLQ $2, R8              // row stride in bytes
	MOVQ zeroAcc+40(FP), R9

	LEAQ (DX)(R8*1), R10     // row 1
	LEAQ (R10)(R8*1), R11    // row 2
	LEAQ (R11)(R8*1), R12    // row 3

	TESTQ R9, R9
	JNZ   zero

	VMOVDQU (DX), Y8
	VMOVDQU 32(DX), Y9
	VMOVDQU (R10), Y10
	VMOVDQU 32(R10), Y11
	VMOVDQU (R11), Y12
	VMOVDQU 32(R11), Y13
	VMOVDQU (R12), Y14
	VMOVDQU 32(R12), Y15
	JMP     loop

zero:
	VPXOR Y8, Y8, Y8
	VPXOR Y9, Y9, Y9
	VPXOR Y10, Y10, Y10
	VPXOR Y11, Y11, Y11
	VPXOR Y12, Y12, Y12
	VPXOR Y13, Y13, Y13
	VPXOR Y14, Y14, Y14
	VPXOR Y15, Y15, Y15

loop:
	TESTQ CX, CX
	JZ    done

	VMOVDQU (DI), Y0         // B quad group, columns 0..7
	VMOVDQU 32(DI), Y1       // B quad group, columns 8..15

	VPBROADCASTD (SI), Y2    // A row 0 quad
	VPBROADCASTD 4(SI), Y3   // A row 1 quad
	VPDPBUSD     Y2, Y0, Y8  // Y8 += u8(Y0)·s8(Y2) per dword lane
	VPDPBUSD     Y2, Y1, Y9
	VPDPBUSD     Y3, Y0, Y10
	VPDPBUSD     Y3, Y1, Y11

	VPBROADCASTD 8(SI), Y4   // A row 2 quad
	VPBROADCASTD 12(SI), Y5  // A row 3 quad
	VPDPBUSD     Y4, Y0, Y12
	VPDPBUSD     Y4, Y1, Y13
	VPDPBUSD     Y5, Y0, Y14
	VPDPBUSD     Y5, Y1, Y15

	ADDQ $16, SI             // next packed-A quad group (4 rows × 4 bytes)
	ADDQ $64, DI             // next packed-B quad group (16 cols × 4 bytes)
	DECQ CX
	JMP  loop

done:
	VMOVDQU Y8, (DX)
	VMOVDQU Y9, 32(DX)
	VMOVDQU Y10, (R10)
	VMOVDQU Y11, 32(R10)
	VMOVDQU Y12, (R11)
	VMOVDQU Y13, 32(R11)
	VMOVDQU Y14, (R12)
	VMOVDQU Y15, 32(R12)
	VZEROUPPER
	RET
