package tensor

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// maxWorkers caps the size of worker pools spawned by ParallelFor. It
// defaults to runtime.GOMAXPROCS(0) and exists so tests can exercise both
// the serial and parallel paths deterministically. It is an atomic
// because ParallelFor loads it from arbitrary goroutines while tests
// (and future serving code) call SetMaxWorkers concurrently; a plain
// int here was a data race.
var maxWorkers atomic.Int64

func init() {
	maxWorkers.Store(int64(runtime.GOMAXPROCS(0)))
}

// SetMaxWorkers overrides the number of workers used by parallel kernels
// and returns the previous value. n < 1 resets to runtime.GOMAXPROCS(0).
func SetMaxWorkers(n int) int {
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	return int(maxWorkers.Swap(int64(n)))
}

// MaxWorkers returns the current worker-pool size.
func MaxWorkers() int { return int(maxWorkers.Load()) }

// PanicError is a worker panic captured by ParallelFor and re-raised on
// the caller goroutine. It carries the chunk that panicked and the
// worker's stack, so a crash in one matmul chunk reports where it
// happened instead of killing the process from an anonymous goroutine
// no recover can reach.
type PanicError struct {
	Lo, Hi int         // chunk bounds [Lo, Hi) the worker was processing
	Value  interface{} // the recovered panic value
	Stack  []byte      // worker stack at the panic site
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("tensor: panic in ParallelFor chunk [%d,%d): %v", e.Lo, e.Hi, e.Value)
}

// ParallelFor runs fn(lo, hi) over contiguous chunks covering [0, n),
// splitting the range across the worker pool. When the pool has a single
// worker (or n is small) the function runs inline, avoiding goroutine
// overhead on tiny workloads.
//
// A panic in any chunk is captured and re-raised exactly once, on the
// caller's goroutine, as a *PanicError. All workers are still joined
// first, so no goroutine outlives the call and the caller's recover (the
// experiment harness isolates per-figure panics) can contain the
// failure.
func ParallelFor(n int, fn func(lo, hi int)) {
	// Chunks below this size are not worth a goroutine each when each
	// item is cheap (the elementwise default).
	ParallelForMin(n, 64, fn)
}

// ParallelForMin is ParallelFor with a caller-chosen minimum chunk size.
// Kernels whose per-item cost is large (one conv sample, one GEMM column
// stripe) pass minChunk 1 so small item counts still fan out; cheap
// elementwise loops keep the conservative ParallelFor default.
func ParallelForMin(n, minChunk int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if minChunk < 1 {
		minChunk = 1
	}
	workers := int(maxWorkers.Load())
	if workers > n {
		workers = n
	}
	if workers > 1 && n/workers < minChunk {
		workers = n / minChunk
		if workers < 1 {
			workers = 1
		}
	}
	if workers == 1 {
		runChunk(0, n, fn)
		return
	}
	var (
		wg    sync.WaitGroup
		first sync.Once
		pe    *PanicError
	)
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					err := asPanicError(lo, hi, r)
					first.Do(func() { pe = err })
				}
			}()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	if pe != nil {
		panic(pe)
	}
}

// runChunk executes the inline (single-worker) path with the same panic
// wrapping as the worker goroutines, so callers see one *PanicError
// regardless of which path a given n took.
func runChunk(lo, hi int, fn func(lo, hi int)) {
	defer func() {
		if r := recover(); r != nil {
			panic(asPanicError(lo, hi, r))
		}
	}()
	fn(lo, hi)
}

// asPanicError wraps a recovered value with chunk context, passing an
// already-wrapped *PanicError through so nested ParallelFor calls report
// the innermost chunk.
func asPanicError(lo, hi int, r interface{}) *PanicError {
	if pe, ok := r.(*PanicError); ok {
		return pe
	}
	return &PanicError{Lo: lo, Hi: hi, Value: r, Stack: debug.Stack()}
}
