package tensor

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// maxWorkers caps the size of worker pools spawned by ParallelFor. It
// defaults to runtime.GOMAXPROCS(0) and exists so tests can exercise both
// the serial and parallel paths deterministically. It is an atomic
// because ParallelFor loads it from arbitrary goroutines while tests
// (and future serving code) call SetMaxWorkers concurrently; a plain
// int here was a data race.
var maxWorkers atomic.Int64

func init() {
	maxWorkers.Store(int64(runtime.GOMAXPROCS(0)))
}

// SetMaxWorkers overrides the number of workers used by parallel kernels
// and returns the previous value. n < 1 resets to runtime.GOMAXPROCS(0).
func SetMaxWorkers(n int) int {
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	return int(maxWorkers.Swap(int64(n)))
}

// MaxWorkers returns the current worker-pool size.
func MaxWorkers() int { return int(maxWorkers.Load()) }

// ParallelFor runs fn(lo, hi) over contiguous chunks covering [0, n),
// splitting the range across the worker pool. When the pool has a single
// worker (or n is small) the function runs inline, avoiding goroutine
// overhead on tiny workloads.
func ParallelFor(n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	workers := int(maxWorkers.Load())
	if workers > n {
		workers = n
	}
	// Chunks below this size are not worth a goroutine each.
	const minChunk = 64
	if workers > 1 && n/workers < minChunk {
		workers = n / minChunk
		if workers < 1 {
			workers = 1
		}
	}
	if workers == 1 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
