//go:build amd64

package tensor

// vnniTile4x16 is the AVX-512 VNNI micro-kernel (gemm_int8_amd64.s): a
// 4×16 int32 accumulator tile updated with one VPDPBUSD per cell group
// per k-quad — four u8·s8 products folded into each int32 lane, exactly
// (VPDPBUSD widens to int32 before summing and never saturates). With
// zeroAcc != 0 the accumulators start at zero; otherwise they load from
// c. c rows are ldc int32s apart. pa is the packed A strip (quad layout,
// 16 bytes per quad), pb the packed B strip (64 bytes per quad).
//
//go:noescape
func vnniTile4x16(kq int64, pa *int8, pb *uint8, c *int32, ldc int64, zeroAcc int64)

// hasAVX512VNNI reports whether both the CPU and the OS support the
// VPDPBUSD kernel. The Go assembler emits the EVEX (AVX-512) encoding
// of VPDPBUSD, so 256-bit operation needs AVX512F + AVX512VL + the
// AVX512_VNNI extension (CPUID leaf 7 subleaf 0: EBX bits 16 and 31,
// ECX bit 11), OSXSAVE, and an OS that preserves the full AVX-512
// register state (XCR0 bits 1|2 for XMM/YMM and 5|6|7 for the opmask
// and upper ZMM state).
func hasAVX512VNNI() bool {
	maxLeaf, _, _, _ := cpuidAsm(0)
	if maxLeaf < 7 {
		return false
	}
	_, _, ecx1, _ := cpuidAsm(1)
	const osxsave = 1 << 27
	if ecx1&osxsave == 0 {
		return false
	}
	xcr0, _ := xgetbvAsm()
	const xstate = 1<<1 | 1<<2 | 1<<5 | 1<<6 | 1<<7
	if xcr0&xstate != xstate {
		return false
	}
	_, ebx7, ecx7, _ := cpuidAsm(7)
	const avx512f = 1 << 16
	const avx512vl = 1 << 31
	const avx512vnni = 1 << 11
	return ebx7&(avx512f|avx512vl) == avx512f|avx512vl && ecx7&avx512vnni != 0
}

func init() {
	useVNNIKernel.Store(hasAVX512VNNI())
}
