package tensor

import (
	"math/rand"
	"testing"
)

// refGemmInt8 is the naive reference: a plain triple loop with int32
// accumulation, the definition the blocked path must reproduce exactly.
func refGemmInt8(m, n, k int, a []int8, b []uint8) []int32 {
	out := make([]int32, m*n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var acc int32
			for p := 0; p < k; p++ {
				acc += int32(a[i*k+p]) * int32(b[p*n+j])
			}
			out[i*n+j] = acc
		}
	}
	return out
}

func randInt8(rng *rand.Rand, n int) []int8 {
	out := make([]int8, n)
	for i := range out {
		out[i] = int8(rng.Intn(255) - 127) // full symmetric range [-127, 127]
	}
	return out
}

func randUint8(rng *rand.Rand, n int) []uint8 {
	out := make([]uint8, n)
	for i := range out {
		out[i] = uint8(rng.Intn(256))
	}
	return out
}

// gemmInt8TestShapes exercises full tiles, ragged edges in every
// dimension, k values straddling quad and KC boundaries, and tall/wide
// aspect ratios that flip the row/column stripe choice.
var gemmInt8TestShapes = []struct{ m, n, k int }{
	{1, 1, 1},
	{1, 1, 4},
	{4, 16, 4},
	{4, 16, 256},
	{3, 5, 7},
	{5, 17, 9},
	{7, 33, 31},
	{16, 64, 36},
	{12, 1024, 36}, // conv1-like: few filters, wide columns
	{130, 93, 301}, // crosses MC and KC boundaries, ragged everywhere
	{64, 20, 257},  // k just past one KC panel
	{33, 4, 1000},  // tall: row-stripe parallel path
	{2, 600, 514},  // wide: column-stripe parallel path
	{960, 8, 64},   // classifier-head-like: many rows, few columns
}

func requireInt32Equal(t *testing.T, what string, got, want []int32, m, n, k int) {
	t.Helper()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s shape %dx%dx%d: cell %d got %d want %d", what, m, n, k, i, got[i], want[i])
		}
	}
}

func TestGemmInt8MatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, s := range gemmInt8TestShapes {
		a := randInt8(rng, s.m*s.k)
		b := randUint8(rng, s.k*s.n)
		want := refGemmInt8(s.m, s.n, s.k, a, b)
		got := make([]int32, s.m*s.n)
		GemmInt8(got, s.n, s.m, s.n, s.k, a, s.k, 1, b, s.n, 1)
		requireInt32Equal(t, "GemmInt8", got, want, s.m, s.n, s.k)
	}
}

// TestGemmInt8StridedViews drives the transposed-operand strides the nn
// package uses: the dense head multiplies W[out,in] by xᵀ viewed with
// (rs=1, cs=in).
func TestGemmInt8StridedViews(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	const m, n, k = 37, 19, 53
	a := randInt8(rng, m*k)
	// x is [n, k] row-major; the GEMM consumes xᵀ via strides.
	x := randUint8(rng, n*k)
	bT := make([]uint8, k*n)
	for p := 0; p < k; p++ {
		for j := 0; j < n; j++ {
			bT[p*n+j] = x[j*k+p]
		}
	}
	want := refGemmInt8(m, n, k, a, bT)
	got := make([]int32, m*n)
	GemmInt8(got, n, m, n, k, a, k, 1, x, 1, k)
	requireInt32Equal(t, "GemmInt8 strided", got, want, m, n, k)
}

// TestGemmInt8WorkerInvariance sweeps worker counts and demands
// identical bytes — the int8 path inherits the float path's contract:
// workers own whole output cells and never split the k reduction.
func TestGemmInt8WorkerInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	const m, n, k = 130, 93, 301
	a := randInt8(rng, m*k)
	b := randUint8(rng, k*n)

	prev := SetMaxWorkers(1)
	defer SetMaxWorkers(prev)
	base := make([]int32, m*n)
	GemmInt8(base, n, m, n, k, a, k, 1, b, n, 1)
	for _, workers := range []int{2, 4, 8} {
		SetMaxWorkers(workers)
		got := make([]int32, m*n)
		GemmInt8(got, n, m, n, k, a, k, 1, b, n, 1)
		requireInt32Equal(t, "workers", got, base, m, n, k)
	}
}

// TestGemmInt8GenericMatchesAsmKernel proves the pure-Go micro-kernel
// and the VPDPBUSD assembly kernel produce identical bytes across
// ragged shapes and worker counts, so quantized predictions are
// platform-independent. Integer accumulation is exact, so this is an
// equality of definitions, not of rounding behavior — but the test pins
// the packing layout and operand order the asm kernel assumes.
func TestGemmInt8GenericMatchesAsmKernel(t *testing.T) {
	if !useVNNIKernel.Load() {
		t.Skip("VNNI kernel not available on this CPU")
	}
	rng := rand.New(rand.NewSource(24))
	prevWorkers := SetMaxWorkers(1)
	defer SetMaxWorkers(prevWorkers)
	for _, workers := range []int{1, 2, 4, 8} {
		SetMaxWorkers(workers)
		for _, s := range gemmInt8TestShapes {
			a := randInt8(rng, s.m*s.k)
			b := randUint8(rng, s.k*s.n)
			asm := make([]int32, s.m*s.n)
			GemmInt8(asm, s.n, s.m, s.n, s.k, a, s.k, 1, b, s.n, 1)
			useVNNIKernel.Store(false)
			gen := make([]int32, s.m*s.n)
			GemmInt8(gen, s.n, s.m, s.n, s.k, a, s.k, 1, b, s.n, 1)
			useVNNIKernel.Store(true)
			requireInt32Equal(t, "generic vs asm", gen, asm, s.m, s.n, s.k)
		}
	}
}

// TestGemmInt8ExtremeValues pins the non-saturating contract: the
// largest-magnitude operand products (±127·255) accumulate exactly.
func TestGemmInt8ExtremeValues(t *testing.T) {
	const m, n, k = 4, 16, 64
	a := make([]int8, m*k)
	b := make([]uint8, k*n)
	for i := range a {
		if i%2 == 0 {
			a[i] = -128
		} else {
			a[i] = 127
		}
	}
	for i := range b {
		b[i] = 255
	}
	want := refGemmInt8(m, n, k, a, b)
	got := make([]int32, m*n)
	GemmInt8(got, n, m, n, k, a, k, 1, b, n, 1)
	requireInt32Equal(t, "extremes", got, want, m, n, k)
	if useVNNIKernel.Load() {
		useVNNIKernel.Store(false)
		gen := make([]int32, m*n)
		GemmInt8(gen, n, m, n, k, a, k, 1, b, n, 1)
		useVNNIKernel.Store(true)
		requireInt32Equal(t, "extremes generic", gen, want, m, n, k)
	}
}

// TestGemmInt8PackedAMatches proves the pre-packed weight path is
// byte-for-byte the plain path across ragged shapes and worker counts —
// PackInt8A must reproduce exactly the panels gemmInt8Serial would have
// packed on the fly, including strip offsets under worker row striping.
func TestGemmInt8PackedAMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	prev := SetMaxWorkers(1)
	defer SetMaxWorkers(prev)
	for _, workers := range []int{1, 2, 4, 8} {
		SetMaxWorkers(workers)
		for _, s := range gemmInt8TestShapes {
			a := randInt8(rng, s.m*s.k)
			b := randUint8(rng, s.k*s.n)
			want := make([]int32, s.m*s.n)
			GemmInt8(want, s.n, s.m, s.n, s.k, a, s.k, 1, b, s.n, 1)
			pa := PackInt8A(a, s.k, 1, s.m, s.k)
			if m, k := pa.Dims(); m != s.m || k != s.k {
				t.Fatalf("PackInt8A dims: got %dx%d want %dx%d", m, k, s.m, s.k)
			}
			got := make([]int32, s.m*s.n)
			GemmInt8PackedA(got, s.n, s.n, pa, b, s.n, 1)
			requireInt32Equal(t, "packed A", got, want, s.m, s.n, s.k)
		}
	}
}

// TestGemmInt8PackedAStridedB drives the packed path with the dense
// head's transposed activation view (rs=1, cs=k), the one B shape that
// bypasses the row-major packing fast path.
func TestGemmInt8PackedAStridedB(t *testing.T) {
	rng := rand.New(rand.NewSource(28))
	const m, n, k = 37, 19, 53
	a := randInt8(rng, m*k)
	x := randUint8(rng, n*k) // [n, k] row-major, consumed as xᵀ
	want := make([]int32, m*n)
	GemmInt8(want, n, m, n, k, a, k, 1, x, 1, k)
	got := make([]int32, m*n)
	GemmInt8PackedA(got, n, n, PackInt8A(a, k, 1, m, k), x, 1, k)
	requireInt32Equal(t, "packed A strided B", got, want, m, n, k)
}

// refIm2ColU8 is the naive tap-by-tap definition the span-copy fast
// paths in im2colU8Into must reproduce byte for byte.
func refIm2ColU8(x []uint8, n, c, h, w int, spec ConvSpec, zp uint8) []uint8 {
	oh, ow := spec.OutDims(h, w)
	colW := oh * ow
	ld := n * colW
	cols := make([]uint8, c*spec.KH*spec.KW*ld)
	for i := 0; i < n; i++ {
		xi := x[i*c*h*w:]
		idx := 0
		for ch := 0; ch < c; ch++ {
			for ky := 0; ky < spec.KH; ky++ {
				for kx := 0; kx < spec.KW; kx++ {
					for oy := 0; oy < oh; oy++ {
						for ox := 0; ox < ow; ox++ {
							iy := oy*spec.Stride + ky - spec.PadH
							ix := ox*spec.Stride + kx - spec.PadW
							v := zp
							if iy >= 0 && iy < h && ix >= 0 && ix < w {
								v = xi[ch*h*w+iy*w+ix]
							}
							cols[idx*ld+i*colW+oy*ow+ox] = v
						}
					}
					idx++
				}
			}
		}
	}
	return cols
}

// TestIm2ColBatchU8FastPaths sweeps the specs that select each im2col
// code path: 'same' stride-1 geometry (single contiguous copy per tap),
// stride-1 with shrinking output (per-row spans), and stride > 1 (the
// scalar loop), on dimensions with and without ragged edges.
func TestIm2ColBatchU8FastPaths(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	cases := []struct {
		name string
		h, w int
		spec ConvSpec
	}{
		{"same3x3", 8, 8, ConvSpec{KH: 3, KW: 3, Stride: 1, PadH: 1, PadW: 1}},
		{"same5x5", 9, 7, ConvSpec{KH: 5, KW: 5, Stride: 1, PadH: 2, PadW: 2}},
		{"valid3x3", 8, 8, ConvSpec{KH: 3, KW: 3, Stride: 1}},
		{"padTall", 6, 5, ConvSpec{KH: 3, KW: 3, Stride: 1, PadH: 2, PadW: 1}},
		{"stride2", 9, 7, ConvSpec{KH: 3, KW: 3, Stride: 2, PadH: 1, PadW: 1}},
	}
	const n, c, zp = 2, 3, 77
	for _, tc := range cases {
		x := randUint8(rng, n*c*tc.h*tc.w)
		want := refIm2ColU8(x, n, c, tc.h, tc.w, tc.spec, zp)
		got := make([]uint8, len(want))
		Im2ColBatchU8(got, x, n, c, tc.h, tc.w, tc.spec, zp)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: cell %d got %d want %d", tc.name, i, got[i], want[i])
			}
		}
	}
}

func TestIm2ColBatchU8MatchesFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	const n, c, h, w = 3, 2, 9, 7
	const zp = 13
	spec := ConvSpec{KH: 3, KW: 3, Stride: 2, PadH: 1, PadW: 1}
	oh, ow := spec.OutDims(h, w)
	xq := randUint8(rng, n*c*h*w)
	// Float reference: im2col of the u8 values with zero padding equals
	// the u8 im2col with zp padding after mapping pad cells.
	xf := New(n, c, h, w)
	for i, v := range xq {
		xf.Data[i] = float32(v)
	}
	colsF := New(c*spec.KH*spec.KW, n*oh*ow)
	Im2ColBatch(colsF, xf, c, h, w, spec)
	colsQ := make([]uint8, c*spec.KH*spec.KW*n*oh*ow)
	Im2ColBatchU8(colsQ, xq, n, c, h, w, spec, zp)
	// Zero-pad taps in the float reference are exactly 0; in the u8
	// layout they carry zp. Everything else matches elementwise.
	for i := range colsQ {
		want := colsF.Data[i]
		got := float32(colsQ[i])
		if want == 0 {
			if colsQ[i] != zp && got != want {
				t.Fatalf("cell %d: got %d, want 0 (pad=%d) or a real zero", i, colsQ[i], zp)
			}
			continue
		}
		if got != want {
			t.Fatalf("cell %d: got %v want %v", i, got, want)
		}
	}
}

func TestMaxPool2DForwardU8MatchesFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	// 2×2/stride-2 hits the branch-free fast path (on both even and odd
	// inputs — OutDims never clips a 2-wide stride-2 window); 3×3/stride-2
	// exercises the general loop including clipped edge windows.
	for _, tc := range []struct {
		h, w int
		spec ConvSpec
	}{
		{8, 8, ConvSpec{KH: 2, KW: 2, Stride: 2}},
		{7, 9, ConvSpec{KH: 2, KW: 2, Stride: 2}},
		{8, 8, ConvSpec{KH: 3, KW: 3, Stride: 2}},
	} {
		const n, c = 2, 3
		h, w, spec := tc.h, tc.w, tc.spec
		oh, ow := spec.OutDims(h, w)
		xq := randUint8(rng, n*c*h*w)
		xf := New(n, c, h, w)
		for i, v := range xq {
			xf.Data[i] = float32(v)
		}
		yf, _ := MaxPool2DForward(xf, c, h, w, spec)
		yq := make([]uint8, n*c*oh*ow)
		MaxPool2DForwardU8(yq, xq, n, c, h, w, spec)
		for i := range yq {
			if float32(yq[i]) != yf.Data[i] {
				t.Fatalf("%dx%d %dx%d/s%d: cell %d got %d want %v",
					h, w, spec.KH, spec.KW, spec.Stride, i, yq[i], yf.Data[i])
			}
		}
	}
}
