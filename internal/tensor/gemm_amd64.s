// AVX+FMA3 micro-kernel for the blocked GEMM (see gemm.go). Only used
// after gemm_amd64.go verifies CPU and OS support at init.

#include "textflag.h"

// func fmaTile4x16(kc int64, pa, pb, c *float32, ldc int64, zeroAcc int64)
//
// Computes, for r in 0..3 and s in 0..15:
//
//	C[r*ldc+s] = fma(pa[p*4+r], pb[p*16+s], ...) folded over p = 0..kc-1,
//
// seeding each accumulator with C (zeroAcc == 0) or 0 (zeroAcc != 0).
// One FMA per output cell per p step, ascending p — the exact reduction
// order fmaTileGeneric emulates, so the two paths are bitwise identical.
//
// Register plan: Y8..Y15 hold the 4×16 accumulator tile (4 rows × two
// 8-float lanes); Y0/Y1 hold the current packed-B row; Y2..Y5 broadcast
// the four packed-A values.
TEXT ·fmaTile4x16(SB), NOSPLIT, $0-48
	MOVQ kc+0(FP), CX
	MOVQ pa+8(FP), SI
	MOVQ pb+16(FP), DI
	MOVQ c+24(FP), DX
	MOVQ ldc+32(FP), R8
	SHLQ $2, R8              // row stride in bytes
	MOVQ zeroAcc+40(FP), R9

	LEAQ (DX)(R8*1), R10     // row 1
	LEAQ (R10)(R8*1), R11    // row 2
	LEAQ (R11)(R8*1), R12    // row 3

	TESTQ R9, R9
	JNZ   zero

	VMOVUPS (DX), Y8
	VMOVUPS 32(DX), Y9
	VMOVUPS (R10), Y10
	VMOVUPS 32(R10), Y11
	VMOVUPS (R11), Y12
	VMOVUPS 32(R11), Y13
	VMOVUPS (R12), Y14
	VMOVUPS 32(R12), Y15
	JMP     loop

zero:
	VXORPS Y8, Y8, Y8
	VXORPS Y9, Y9, Y9
	VXORPS Y10, Y10, Y10
	VXORPS Y11, Y11, Y11
	VXORPS Y12, Y12, Y12
	VXORPS Y13, Y13, Y13
	VXORPS Y14, Y14, Y14
	VXORPS Y15, Y15, Y15

loop:
	TESTQ CX, CX
	JZ    done

	VMOVUPS (DI), Y0         // B row, lanes 0..7
	VMOVUPS 32(DI), Y1       // B row, lanes 8..15

	VBROADCASTSS (SI), Y2    // A row 0
	VBROADCASTSS 4(SI), Y3   // A row 1
	VFMADD231PS  Y0, Y2, Y8  // Y8 += Y2*Y0
	VFMADD231PS  Y1, Y2, Y9
	VFMADD231PS  Y0, Y3, Y10
	VFMADD231PS  Y1, Y3, Y11

	VBROADCASTSS 8(SI), Y4   // A row 2
	VBROADCASTSS 12(SI), Y5  // A row 3
	VFMADD231PS  Y0, Y4, Y12
	VFMADD231PS  Y1, Y4, Y13
	VFMADD231PS  Y0, Y5, Y14
	VFMADD231PS  Y1, Y5, Y15

	ADDQ $16, SI             // next packed-A group (4 floats)
	ADDQ $64, DI             // next packed-B group (16 floats)
	DECQ CX
	JMP  loop

done:
	VMOVUPS Y8, (DX)
	VMOVUPS Y9, 32(DX)
	VMOVUPS Y10, (R10)
	VMOVUPS Y11, 32(R10)
	VMOVUPS Y12, (R11)
	VMOVUPS Y13, 32(R11)
	VMOVUPS Y14, (R12)
	VMOVUPS Y15, 32(R12)
	VZEROUPPER
	RET

// func cpuidAsm(leaf uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidAsm(SB), NOSPLIT, $0-24
	MOVL  leaf+0(FP), AX
	XORL  CX, CX
	CPUID
	MOVL  AX, eax+8(FP)
	MOVL  BX, ebx+12(FP)
	MOVL  CX, ecx+16(FP)
	MOVL  DX, edx+20(FP)
	RET

// func xgetbvAsm() (eax, edx uint32)
TEXT ·xgetbvAsm(SB), NOSPLIT, $0-8
	XORL    CX, CX
	XGETBV
	MOVL    AX, eax+0(FP)
	MOVL    DX, edx+4(FP)
	RET
