//go:build !amd64

package tensor

// vnniTile4x16 is only reachable when useVNNIKernel is true, which never
// happens off amd64 (the flag is left false and nothing sets it except
// the amd64 init and tests that first check the platform).
func vnniTile4x16(kq int64, pa *int8, pb *uint8, c *int32, ldc int64, zeroAcc int64) {
	panic("tensor: vnniTile4x16 called without VNNI kernel support")
}
