package cluster

import (
	"hash/fnv"

	"prionn/internal/prionn"
	"sync"
)

// predCache is a replica's memoizing prediction cache. The trace's
// unique-script ratio is ~37%, so roughly two of three submissions
// repeat a script the cluster has already predicted — and forwards are
// deterministic, so a repeated (script, deck) pair under the same
// snapshot has a bitwise-identical answer. Script-hash affinity routing
// sends identical scripts to the same replica, which is what makes a
// per-replica cache hot.
//
// Entries are tagged with the cluster snapshot version: Cluster.Swap
// bumps the version and resets every cache, and a Put racing a swap is
// dropped (its version no longer matches), so a stale prediction can
// never outlive the snapshot that computed it.
type predCache struct {
	mu      sync.Mutex
	cap     int
	version int64
	entries map[uint64]prionn.Prediction
	order   []uint64 // FIFO eviction ring over entries' keys
	next    int
}

func newPredCache(capacity int) *predCache {
	if capacity <= 0 {
		return nil
	}
	return &predCache{
		cap:     capacity,
		entries: make(map[uint64]prionn.Prediction, capacity),
		order:   make([]uint64, 0, capacity),
	}
}

// scriptKey hashes the model input identity (script + deck, separated
// so concatenation ambiguity cannot alias two inputs).
func scriptKey(script, deck string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(script))
	_, _ = h.Write([]byte{0})
	_, _ = h.Write([]byte(deck))
	return h.Sum64()
}

// get returns the cached prediction for key under the given snapshot
// version.
func (c *predCache) get(key uint64, version int64) (prionn.Prediction, bool) {
	if c == nil {
		return prionn.Prediction{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.version != version {
		return prionn.Prediction{}, false
	}
	p, ok := c.entries[key]
	return p, ok
}

// put stores a prediction computed under the given snapshot version.
// If a swap bumped the cache's version since the forward ran, the entry
// is dropped — never cached under the wrong snapshot.
func (c *predCache) put(key uint64, version int64, p prionn.Prediction) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.version != version {
		return
	}
	if _, exists := c.entries[key]; exists {
		return
	}
	if len(c.entries) >= c.cap {
		// FIFO eviction: overwrite the oldest slot in the ring.
		old := c.order[c.next]
		delete(c.entries, old)
		c.order[c.next] = key
		c.next = (c.next + 1) % c.cap
	} else {
		c.order = append(c.order, key)
	}
	c.entries[key] = p
}

// invalidate clears the cache and installs the new snapshot version.
func (c *predCache) invalidate(version int64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.version = version
	clear(c.entries)
	c.order = c.order[:0]
	c.next = 0
}

// len returns the current entry count.
func (c *predCache) size() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
