package cluster

import (
	"hash/fnv"

	"prionn/internal/prionn"
	"sync"
)

// predCache is a replica's memoizing prediction cache. The trace's
// unique-script ratio is ~37%, so roughly two of three submissions
// repeat a script the cluster has already predicted — and forwards are
// deterministic, so a repeated (script, deck) pair under the same
// snapshot has a bitwise-identical answer. Script-hash affinity routing
// sends identical scripts to the same replica, which is what makes a
// per-replica cache hot.
//
// Entries are tagged with a cacheStamp — the cluster snapshot version
// plus the published snapshot's kernel kind. Cluster.Swap bumps the
// version and resets every cache, and a Put racing a swap is dropped
// (its stamp no longer matches), so a stale prediction can never
// outlive the snapshot that computed it.
type predCache struct {
	mu      sync.Mutex
	cap     int
	stamp   cacheStamp
	entries map[uint64]prionn.Prediction
	order   []uint64 // FIFO eviction ring over entries' keys
	next    int
}

// cacheStamp is the validity tag cache entries live under. The kernel
// kind is part of the stamp, not just the version: a float32 and an
// int8 snapshot of the same weights produce near- but not bitwise-
// identical predictions, so an f32↔int8 Swap must invalidate memoized
// answers even if a refactor ever made the version component agree.
type cacheStamp struct {
	version int64
	kernel  prionn.KernelKind
}

func newPredCache(capacity int) *predCache {
	if capacity <= 0 {
		return nil
	}
	return &predCache{
		cap: capacity,
		// Version 0 under the float32 default kernel; a cluster created
		// over an int8 view installs its real stamp before serving.
		stamp:   cacheStamp{version: 0, kernel: prionn.KernelF32},
		entries: make(map[uint64]prionn.Prediction, capacity),
		order:   make([]uint64, 0, capacity),
	}
}

// scriptKey hashes the model input identity (script + deck, separated
// so concatenation ambiguity cannot alias two inputs).
func scriptKey(script, deck string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(script))
	_, _ = h.Write([]byte{0})
	_, _ = h.Write([]byte(deck))
	return h.Sum64()
}

// get returns the cached prediction for key under the given validity
// stamp.
func (c *predCache) get(key uint64, stamp cacheStamp) (prionn.Prediction, bool) {
	if c == nil {
		return prionn.Prediction{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.stamp != stamp {
		return prionn.Prediction{}, false
	}
	p, ok := c.entries[key]
	return p, ok
}

// put stores a prediction computed under the given validity stamp. If a
// swap changed the cache's stamp since the forward ran, the entry is
// dropped — never cached under the wrong snapshot or kernel.
func (c *predCache) put(key uint64, stamp cacheStamp, p prionn.Prediction) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.stamp != stamp {
		return
	}
	if _, exists := c.entries[key]; exists {
		return
	}
	if len(c.entries) >= c.cap {
		// FIFO eviction: overwrite the oldest slot in the ring.
		old := c.order[c.next]
		delete(c.entries, old)
		c.order[c.next] = key
		c.next = (c.next + 1) % c.cap
	} else {
		c.order = append(c.order, key)
	}
	c.entries[key] = p
}

// invalidate clears the cache and installs the new validity stamp.
func (c *predCache) invalidate(stamp cacheStamp) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stamp = stamp
	clear(c.entries)
	c.order = c.order[:0]
	c.next = 0
}

// len returns the current entry count.
func (c *predCache) size() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
