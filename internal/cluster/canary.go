package cluster

import (
	"context"
	"errors"
	"math"
	"sync/atomic"

	"prionn/internal/prionn"
	"prionn/internal/serve"
)

// The canary stage is the cluster half of the online-learning pipeline
// (paper §2.3's continuous retrain loop, hardened for production): a
// candidate snapshot that survived shadow evaluation is not swapped in
// blind. StartCanary routes a configured fraction of live traffic to a
// dedicated canary server holding the candidate, mirrors each canary
// request to a baseline replica, and compares the decoded predictions.
// Error-rate or disagreement-rate spikes roll the canary back
// automatically — the candidate never touches non-canary traffic — and
// a healthy observation budget makes it PromoteReady, at which point
// PromoteCanary publishes it cluster-wide through the all-or-nothing
// Swap.

// CanaryConfig tunes one canary deployment. The zero value of every
// field gets a sensible default from withDefaults.
type CanaryConfig struct {
	// Frac is the fraction of Predict traffic routed to the canary
	// (default 0.1, clamped to (0, 0.5]). Routing is deterministic —
	// every round(1/Frac)-th request — so tests need no statistics.
	Frac float64
	// MinObservations is how many canary observations must accumulate
	// before health verdicts (rollback or promote-ready) are rendered
	// (default 20).
	MinObservations int
	// MaxErrorRate rolls the canary back when its error rate exceeds it
	// (default 0.1).
	MaxErrorRate float64
	// MaxDisagreeRate rolls the canary back when the fraction of canary
	// answers that disagree with the baseline's exceeds it (default
	// 0.5). Disagreement is expected at a healthy rate — the candidate
	// was retrained — but a spike means the candidate diverged wildly.
	MaxDisagreeRate float64
	// PromoteAfter is the healthy observation budget: once this many
	// observations accumulate with both rates in bounds, the canary
	// becomes PromoteReady (default 50).
	PromoteAfter int
}

// withDefaults fills zero fields.
func (c CanaryConfig) withDefaults() CanaryConfig {
	if c.Frac <= 0 {
		c.Frac = 0.1
	}
	if c.Frac > 0.5 {
		c.Frac = 0.5
	}
	if c.MinObservations <= 0 {
		c.MinObservations = 20
	}
	if c.MaxErrorRate <= 0 {
		c.MaxErrorRate = 0.1
	}
	if c.MaxDisagreeRate <= 0 {
		c.MaxDisagreeRate = 0.5
	}
	if c.PromoteAfter <= 0 {
		c.PromoteAfter = 50
	}
	return c
}

// CanaryPhase is the lifecycle state of the canary stage.
type CanaryPhase int32

const (
	// CanaryNone: no canary is deployed.
	CanaryNone CanaryPhase = iota
	// CanaryRunning: the candidate is taking its traffic fraction.
	CanaryRunning
	// CanaryPromoteReady: the healthy budget is met; the candidate
	// stopped taking traffic and awaits PromoteCanary.
	CanaryPromoteReady
	// CanaryRolledBack: a rate spike tripped auto-rollback; the
	// candidate stopped taking traffic and awaits StopCanary.
	CanaryRolledBack
)

// String renders the phase for /stats.
func (p CanaryPhase) String() string {
	switch p {
	case CanaryRunning:
		return "running"
	case CanaryPromoteReady:
		return "promote-ready"
	case CanaryRolledBack:
		return "rolled-back"
	}
	return "none"
}

// CanaryStatus is the point-in-time canary state as /stats reports it.
type CanaryStatus struct {
	Phase         string `json:"phase"`
	Observations  int64  `json:"observations"`
	Errors        int64  `json:"errors"`
	Disagreements int64  `json:"disagreements"`
}

// canaryState is one canary deployment. The phase advances through
// atomic CAS from the serving path (Running → RolledBack,
// Running → PromoteReady) and from the ctl-locked control plane, so a
// rollback decided mid-request wins over a concurrent promotion check.
type canaryState struct {
	cfg  CanaryConfig
	view *prionn.Inference // candidate source; PromoteCanary swaps it in
	srv  *serve.Server     // serves a private clone of view

	phase         atomic.Int32
	seq           atomic.Uint64
	observations  atomic.Int64
	errors        atomic.Int64
	disagreements atomic.Int64
	every         uint64 // route every N-th request to the canary
}

// running reports whether the canary is taking traffic.
func (cs *canaryState) running() bool {
	return CanaryPhase(cs.phase.Load()) == CanaryRunning
}

// take deterministically claims every N-th request for the canary.
func (cs *canaryState) take() bool {
	return cs.seq.Add(1)%cs.every == 0
}

// verdict renders the health verdict after each observation: rate
// spikes roll back, a met healthy budget arms promotion. CAS from
// Running only — a rollback is never overturned.
func (cs *canaryState) verdict() {
	obs := cs.observations.Load()
	if obs < int64(cs.cfg.MinObservations) {
		return
	}
	errRate := float64(cs.errors.Load()) / float64(obs)
	disRate := float64(cs.disagreements.Load()) / float64(obs)
	if errRate > cs.cfg.MaxErrorRate || disRate > cs.cfg.MaxDisagreeRate {
		cs.phase.CompareAndSwap(int32(CanaryRunning), int32(CanaryRolledBack))
		return
	}
	if obs >= int64(cs.cfg.PromoteAfter) {
		cs.phase.CompareAndSwap(int32(CanaryRunning), int32(CanaryPromoteReady))
	}
}

// status snapshots the canary counters.
func (cs *canaryState) status() CanaryStatus {
	return CanaryStatus{
		Phase:         CanaryPhase(cs.phase.Load()).String(),
		Observations:  cs.observations.Load(),
		Errors:        cs.errors.Load(),
		Disagreements: cs.disagreements.Load(),
	}
}

// ErrCanaryActive is returned by StartCanary while a canary is already
// deployed (any phase: a rolled-back canary must be StopCanary'd —
// and its verdict read — before the next candidate goes out).
var ErrCanaryActive = errors.New("cluster: canary already deployed")

// ErrNoCanary is returned by the canary control plane when no canary
// is deployed.
var ErrNoCanary = errors.New("cluster: no canary deployed")

// ErrNotPromoteReady is returned by PromoteCanary unless the canary
// reached its healthy budget.
var ErrNotPromoteReady = errors.New("cluster: canary is not promote-ready")

// StartCanary deploys a candidate snapshot to the canary stage: a
// dedicated serve.Server gets a private clone, and cfg.Frac of Predict
// traffic starts routing to it. Only one canary exists at a time.
func (c *Cluster) StartCanary(v *prionn.Inference, cfg CanaryConfig) error {
	if v == nil || !v.Trained() {
		return errors.New("cluster: canary candidate must be a trained snapshot")
	}
	cfg = cfg.withDefaults()
	clone, err := cloneView(v)
	if err != nil {
		return err
	}
	cs := &canaryState{
		cfg:   cfg,
		view:  v,
		every: uint64(math.Max(1, math.Round(1/cfg.Frac))),
	}
	cs.phase.Store(int32(CanaryRunning))
	c.ctl.Lock()
	if c.canary.Load() != nil {
		c.ctl.Unlock()
		return ErrCanaryActive
	}
	cs.srv = serve.New(clone, c.cfg.Serve)
	c.canary.Store(cs)
	c.ctl.Unlock()
	c.st.canaryStarts.Add(1)
	return nil
}

// CanaryStatus reports the deployed canary's phase and counters; with
// no canary deployed the phase is "none".
func (c *Cluster) CanaryStatus() CanaryStatus {
	cs := c.canary.Load()
	if cs == nil {
		return CanaryStatus{Phase: CanaryNone.String()}
	}
	return cs.status()
}

// PromoteCanary publishes a PromoteReady candidate cluster-wide via the
// all-or-nothing Swap and dismantles the canary stage. The swap is
// atomic: after PromoteCanary returns nil, every replica serves the
// candidate and the caches were invalidated exactly once (one version
// bump). The context bounds the canary server's drain.
func (c *Cluster) PromoteCanary(ctx context.Context) error {
	c.ctl.Lock()
	cs := c.canary.Load()
	if cs == nil {
		c.ctl.Unlock()
		return ErrNoCanary
	}
	if CanaryPhase(cs.phase.Load()) != CanaryPromoteReady {
		c.ctl.Unlock()
		return ErrNotPromoteReady
	}
	if err := c.swapLocked(cs.view); err != nil {
		// Nothing was published (all-or-nothing); the canary stays
		// deployed so the pilot can retry or roll back.
		c.ctl.Unlock()
		return err
	}
	c.canary.Store(nil)
	c.ctl.Unlock()
	c.st.canaryPromotions.Add(1)
	// Outside ctl: draining blocks on the canary server's loop.
	return cs.srv.Stop(ctx)
}

// StopCanary dismantles the canary stage without promoting — the
// explicit rollback lever, and the cleanup step after an auto-rollback.
// It is a no-op when no canary is deployed. The context bounds the
// canary server's drain.
func (c *Cluster) StopCanary(ctx context.Context) error {
	c.ctl.Lock()
	cs := c.canary.Load()
	if cs == nil {
		c.ctl.Unlock()
		return nil
	}
	c.canary.Store(nil)
	c.ctl.Unlock()
	c.st.canaryRollbacks.Add(1)
	return cs.srv.Stop(ctx)
}

// canaryPredict serves one claimed request from the canary server and
// mirrors it to a baseline replica for disagreement scoring. Canary
// answers are never cached: the candidate is not the published
// snapshot, so a cached canary prediction would outlive a rollback.
// Reported back: (response, true) on a canary answer; (zero, false)
// when the canary path failed and the caller must fall through to the
// normal path — a canary fault degrades the canary, never the request.
func (c *Cluster) canaryPredict(ctx context.Context, cs *canaryState, req Request, key uint64) (Response, bool) {
	resp, err := cs.srv.Predict(ctx, req)
	if err != nil {
		cs.errors.Add(1)
		cs.observations.Add(1)
		c.st.canaryRequests.Add(1)
		cs.verdict()
		return Response{}, false
	}
	// Mirror to a baseline replica: same request, normal pick/dispatch.
	// Both answers decode through identical bin layouts, so any
	// divergence is a real model-output difference.
	if r := c.pick(key, 0); r != nil {
		if base, err := c.attempt(ctx, r, req); err == nil && base.FromModel && resp.FromModel {
			if base.Pred != resp.Pred { //prionnvet:ignore float-eq -- bin-decoded predictions are bitwise-reproducible (PR 5); any inequality is a genuine model disagreement, and a tolerance would hide small regressions
				cs.disagreements.Add(1)
			}
		}
	}
	cs.observations.Add(1)
	c.st.canaryRequests.Add(1)
	cs.verdict()
	return Response{Pred: resp.Pred, FromModel: resp.FromModel, Replica: -1, Canary: true}, true
}
