package cluster

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"prionn/internal/prionn"
	"prionn/internal/serve"
	"prionn/internal/trace"
)

// The cluster-throughput family behind BENCH_cluster.json. Same fixture
// as internal/serve's bench pair (dense ModelNN, 64 concurrent clients,
// 256 scripts cycled from the trace) so ns/op is directly comparable to
// BENCH_serve.json.
//
// This host is single-core, so N replica loops add no forward-pass
// parallelism — the aggregate speedup at 4 replicas comes from the
// script-affinity prediction cache: the trace's unique-script ratio is
// ~37%, so most submissions repeat a script whose deterministic answer
// the home replica has already computed, and a cache hit skips the
// forward entirely. The no-cache variants isolate pure routing overhead
// (retry accounting, breaker bookkeeping, policy selection), and the
// hedged variant prices the hedging timer machinery into p50/p99.

const benchClients = 64

// Separate fixture from trainedViews: same trace and training window,
// dense model (matches internal/serve's benchmark fixture).
var (
	benchOnce sync.Once
	benchErr  error
	benchView *prionn.Inference
	benchJobs []trace.Job
)

func benchTrainedView(b *testing.B) (*prionn.Inference, []trace.Job) {
	b.Helper()
	benchOnce.Do(func() {
		cfg := prionn.TinyConfig()
		cfg.Model = prionn.ModelNN
		jobs := trace.Completed(trace.Generate(trace.Config{Seed: 3, Jobs: 120}))
		scripts := make([]string, len(jobs))
		for i, j := range jobs {
			scripts[i] = j.Script
		}
		p, err := prionn.New(cfg, scripts)
		if err != nil {
			benchErr = err
			return
		}
		if _, err := p.Train(jobs[:40]); err != nil {
			benchErr = err
			return
		}
		if benchView, err = p.Snapshot(); err != nil {
			benchErr = err
			return
		}
		benchJobs = jobs
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchView, benchJobs
}

func benchScripts(b *testing.B) []string {
	_, jobs := benchTrainedView(b)
	scripts := make([]string, 256)
	for i := range scripts {
		scripts[i] = jobs[i%len(jobs)].Script
	}
	return scripts
}

// runClients fans total calls of fn across the client pool and joins.
func runClients(total, clients int, fn func(i int)) {
	var next atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= total {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// benchServeConfig mirrors the serve benchmark's coalescer tuning.
func benchServeConfig() serve.Config {
	return serve.Config{
		MaxBatch:   benchClients,
		MaxDelay:   500 * time.Microsecond,
		QueueDepth: 4 * benchClients,
	}
}

// benchCluster drives b.N predictions from 64 concurrent clients
// through a cluster and reports cache hit rate plus dispatch-latency
// percentiles alongside ns/op.
func benchCluster(b *testing.B, cfg Config) {
	v, _ := benchTrainedView(b)
	scripts := benchScripts(b)
	cfg.Serve = benchServeConfig()
	cfg.HealthEvery = -1 // probes would burn the single core for nothing here
	c, err := New(v, cfg)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	runClients(b.N, benchClients, func(i int) {
		resp, err := c.Predict(ctx, Request{Script: scripts[i%len(scripts)]})
		if err != nil {
			b.Error(err)
		} else if resp.Degraded {
			b.Error("degraded response under zero faults")
		}
	})
	b.StopTimer()
	snap := c.Stats()
	if err := c.Stop(ctx); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(snap.CacheHitRate, "hit-rate")
	b.ReportMetric(float64(snap.P50Ns), "p50-ns")
	b.ReportMetric(float64(snap.P99Ns), "p99-ns")
}

// BenchmarkCluster1Replica is the cluster baseline: one replica behind
// the router, no cache — BENCH_serve's coalesced path plus pure routing
// overhead.
func BenchmarkCluster1Replica(b *testing.B) {
	benchCluster(b, Config{Replicas: 1, Policy: RoundRobin})
}

// BenchmarkCluster2ReplicasAffinity: script-affinity routing with the
// memoizing cache at 2 replicas.
func BenchmarkCluster2ReplicasAffinity(b *testing.B) {
	benchCluster(b, Config{Replicas: 2, Policy: ScriptAffinity, CacheSize: 4096})
}

// BenchmarkCluster4ReplicasAffinity is the headline configuration:
// 4 replicas, script-affinity routing, memoizing cache. The acceptance
// target is ≥2.5x aggregate predictions/sec over the single-replica
// serve benchmark, carried by the cache hit rate on repeated scripts.
func BenchmarkCluster4ReplicasAffinity(b *testing.B) {
	benchCluster(b, Config{Replicas: 4, Policy: ScriptAffinity, CacheSize: 4096})
}

// BenchmarkCluster4ReplicasNoCache isolates routing cost: 4 replicas,
// round-robin, every request takes a real forward.
func BenchmarkCluster4ReplicasNoCache(b *testing.B) {
	benchCluster(b, Config{Replicas: 4, Policy: RoundRobin})
}

// BenchmarkCluster4ReplicasHedged prices the hedging machinery: same
// no-cache dispatch path with the p95 hedging timer armed on every
// request once the latency tracker warms.
func BenchmarkCluster4ReplicasHedged(b *testing.B) {
	benchCluster(b, Config{Replicas: 4, Policy: RoundRobin, HedgePercentile: 0.95})
}
