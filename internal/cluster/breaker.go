package cluster

import (
	"sync"
	"time"
)

// BreakerState is a circuit breaker's position in the
// closed → open → half-open state machine.
type BreakerState int32

const (
	// BreakerClosed: requests flow; failures are counted.
	BreakerClosed BreakerState = iota
	// BreakerOpen: requests are refused until the cool-down elapses.
	BreakerOpen
	// BreakerHalfOpen: a bounded number of probe requests may pass; their
	// outcomes decide between closing and re-opening.
	BreakerHalfOpen
)

// String renders the state the way /stats reports it.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// BreakerConfig tunes one replica's circuit breaker. The zero value
// gets defaults from withDefaults.
type BreakerConfig struct {
	// ConsecutiveFailures opens the breaker after this many failures in a
	// row (default 5).
	ConsecutiveFailures int
	// ErrorRate opens the breaker when the failure fraction over the
	// observation window reaches this threshold (default 0.5). Only
	// applied once the window holds at least MinSamples outcomes, so a
	// single early failure cannot trip a cold breaker.
	ErrorRate float64
	// MinSamples is the window population required before ErrorRate
	// applies (default 20).
	MinSamples int
	// OpenFor is the cool-down an open breaker waits before admitting
	// half-open probes (default 500ms).
	OpenFor time.Duration
	// HalfOpenProbes is both the number of probe requests allowed in
	// flight while half-open and the consecutive probe successes required
	// to close (default 3). Any probe failure re-opens immediately.
	HalfOpenProbes int
}

// withDefaults fills zero fields.
func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.ConsecutiveFailures <= 0 {
		c.ConsecutiveFailures = 5
	}
	if c.ErrorRate <= 0 {
		c.ErrorRate = 0.5
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 20
	}
	if c.OpenFor <= 0 {
		c.OpenFor = 500 * time.Millisecond
	}
	if c.HalfOpenProbes <= 0 {
		c.HalfOpenProbes = 3
	}
	return c
}

// breaker is one replica's circuit breaker. All transitions happen
// under mu; Allow and Record are short critical sections touching only
// plain fields (no IO, no channels), so the lock never serializes
// anything slow. nowNs is injectable so cool-down tests are
// deterministic instead of sleeping.
type breaker struct {
	cfg   BreakerConfig
	nowNs func() int64

	mu            sync.Mutex
	state         BreakerState
	consecFails   int
	windowOK      int64
	windowFail    int64
	openedNs      int64 // nowNs at the moment the breaker last opened
	probeInFlight int
	probeSuccess  int

	opens     int64 // closed|half-open → open transitions
	halfOpens int64 // open → half-open transitions
	closes    int64 // half-open → closed transitions
}

func newBreaker(cfg BreakerConfig) *breaker {
	return &breaker{
		cfg: cfg.withDefaults(),
		nowNs: func() int64 {
			//prionnvet:ignore time-dep -- breaker cool-down is wall-clock by design; tests inject a fake clock
			return time.Now().UnixNano()
		},
	}
}

// Allow reports whether a request may be dispatched to this replica,
// accounting half-open probe slots. Every Allow that returns true must
// be paired with exactly one Record.
func (b *breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.nowNs()-b.openedNs < int64(b.cfg.OpenFor) {
			return false
		}
		// Cool-down elapsed: move to half-open and admit this request as
		// the first probe.
		b.state = BreakerHalfOpen
		b.halfOpens++
		b.probeInFlight = 1
		b.probeSuccess = 0
		return true
	default: // BreakerHalfOpen
		if b.probeInFlight >= b.cfg.HalfOpenProbes {
			return false
		}
		b.probeInFlight++
		return true
	}
}

// Record folds one dispatched request's outcome into the state machine.
func (b *breaker) Record(ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		if ok {
			b.consecFails = 0
			b.windowOK++
		} else {
			b.consecFails++
			b.windowFail++
		}
		total := b.windowOK + b.windowFail
		rate := float64(b.windowFail) / float64(total)
		if b.consecFails >= b.cfg.ConsecutiveFailures ||
			(total >= int64(b.cfg.MinSamples) && rate >= b.cfg.ErrorRate) {
			b.open()
			return
		}
		// Keep the window recent: halving on overflow weights new
		// outcomes ~2x over old ones without a ring buffer.
		if total >= 1024 {
			b.windowOK /= 2
			b.windowFail /= 2
		}
	case BreakerOpen:
		// A request allowed while closed/half-open can complete after a
		// concurrent transition opened the breaker; its outcome is stale.
	default: // BreakerHalfOpen
		if b.probeInFlight > 0 {
			b.probeInFlight--
		}
		if !ok {
			b.open()
			return
		}
		b.probeSuccess++
		if b.probeSuccess >= b.cfg.HalfOpenProbes {
			b.state = BreakerClosed
			b.closes++
			b.reset()
		}
	}
}

// open transitions to BreakerOpen. Callers hold mu.
func (b *breaker) open() {
	b.state = BreakerOpen
	b.opens++
	b.openedNs = b.nowNs()
	b.reset()
}

// reset clears the counting state after a transition. Callers hold mu.
func (b *breaker) reset() {
	b.consecFails = 0
	b.windowOK = 0
	b.windowFail = 0
	b.probeInFlight = 0
	b.probeSuccess = 0
}

// restart closes a breaker for a freshly resurrected replica, keeping
// the cumulative transition counters (a restart is operational history,
// not a statistics reset).
func (b *breaker) restart() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = BreakerClosed
	b.reset()
}

// State returns the current position.
func (b *breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// counters returns the transition totals.
func (b *breaker) counters() (opens, halfOpens, closes int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens, b.halfOpens, b.closes
}
