package cluster

import (
	"context"
	"errors"
	"testing"

	"prionn/internal/fault"
)

// TestSwapAllOrNothing: a clone failure mid-swap must publish nothing —
// no replica sees the new snapshot, the version is not bumped, and the
// cache keeps serving the (still-correct) old view's entries. The
// second, un-faulted Swap then succeeds completely.
func TestSwapAllOrNothing(t *testing.T) {
	v1, v2, jobs := trainedViews(t)
	c, err := New(v1, Config{
		Replicas: 3, Serve: fastServe(), Policy: ScriptAffinity,
		CacheSize: 32, HealthEvery: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mustStop(t, c)

	script := jobs[2].Script
	want := v1.PredictOne(script)
	// Warm the cache under the old view.
	if _, err := c.Predict(context.Background(), Request{Script: script}); err != nil {
		t.Fatal(err)
	}
	v0 := c.version.Load()

	// The second replica's clone fails mid-swap.
	boom := errors.New("clone failed")
	disarm := fault.Arm(FailpointSwapClone, fault.Failure{Err: boom, After: 1})
	err = c.Swap(v2)
	disarm()
	if !errors.Is(err, boom) {
		t.Fatalf("faulted swap returned %v, want the injected clone error", err)
	}

	// Nothing was published: version unchanged, every replica still
	// serves v1's bitwise answer, and the pre-swap cache entry is still
	// valid (served as a hit).
	if got := c.version.Load(); got != v0 {
		t.Fatalf("failed swap bumped version %d → %d", v0, got)
	}
	if got := c.st.swaps.Load(); got != 0 {
		t.Fatalf("failed swap counted as a publication (%d swaps)", got)
	}
	hit := false
	for i := 0; i < 2*c.Replicas(); i++ {
		resp, err := c.Predict(context.Background(), Request{Script: script})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Pred != want {
			t.Fatalf("post-failed-swap prediction %+v, want old view's %+v", resp.Pred, want)
		}
		hit = hit || resp.Cached
	}
	if !hit {
		t.Fatal("failed swap invalidated the cache: no request hit the pre-swap entry")
	}

	// Recovery: an un-faulted Swap publishes completely.
	if err := c.Swap(v2); err != nil {
		t.Fatal(err)
	}
	if got := c.version.Load(); got != v0+1 {
		t.Fatalf("successful swap bumped version %d → %d, want exactly one bump", v0, got)
	}
	want2 := v2.PredictOne(script)
	for i := 0; i < 2*c.Replicas(); i++ {
		resp, err := c.Predict(context.Background(), Request{Script: script})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Pred != want2 {
			t.Fatalf("post-swap prediction %+v, want new view's %+v", resp.Pred, want2)
		}
	}
}

// TestCanaryPromotion drives the happy path: a healthy candidate takes
// its traffic fraction, meets the observation budget, becomes
// PromoteReady, and is promoted atomically — one version bump, caches
// invalidated exactly once, every replica then serving the candidate.
func TestCanaryPromotion(t *testing.T) {
	v1, v2, jobs := trainedViews(t)
	c, err := New(v1, Config{
		Replicas: 2, Serve: fastServe(), Policy: ScriptAffinity,
		CacheSize: 32, HealthEvery: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mustStop(t, c)

	ccfg := CanaryConfig{Frac: 0.5, MinObservations: 5, PromoteAfter: 10, MaxDisagreeRate: 1}
	if err := c.StartCanary(v2, ccfg); err != nil {
		t.Fatal(err)
	}
	if err := c.StartCanary(v2, ccfg); !errors.Is(err, ErrCanaryActive) {
		t.Fatalf("second StartCanary returned %v, want ErrCanaryActive", err)
	}
	if err := c.PromoteCanary(context.Background()); !errors.Is(err, ErrNotPromoteReady) {
		t.Fatalf("early PromoteCanary returned %v, want ErrNotPromoteReady", err)
	}

	// Drive traffic until the healthy budget is met. Canary answers must
	// be the candidate's bitwise predictions; non-canary answers the old
	// view's; and canary answers must never enter the cache.
	sawCanary := 0
	for i := 0; i < 200 && c.CanaryStatus().Phase != CanaryPromoteReady.String(); i++ {
		script := jobs[i%8].Script
		resp, err := c.Predict(context.Background(), Request{Script: script})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Canary {
			sawCanary++
			if resp.Cached {
				t.Fatal("canary answer served from cache")
			}
			if want := v2.PredictOne(script); resp.Pred != want {
				t.Fatalf("canary answer %+v, want candidate's %+v", resp.Pred, want)
			}
		} else if !resp.Cached {
			if want := v1.PredictOne(script); resp.Pred != want {
				t.Fatalf("baseline answer %+v, want published view's %+v", resp.Pred, want)
			}
		}
	}
	if sawCanary == 0 {
		t.Fatal("no request was routed to the canary")
	}
	st := c.CanaryStatus()
	if st.Phase != CanaryPromoteReady.String() {
		t.Fatalf("canary phase %q after healthy budget, want promote-ready (%+v)", st.Phase, st)
	}

	v0 := c.version.Load()
	if err := c.PromoteCanary(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := c.version.Load(); got != v0+1 {
		t.Fatalf("promotion bumped version %d → %d, want exactly one bump", v0, got)
	}
	if c.CanaryStatus().Phase != CanaryNone.String() {
		t.Fatal("canary stage still deployed after promotion")
	}
	// Post-promotion: every answer is the candidate's, none canary.
	for i := 0; i < 8; i++ {
		script := jobs[i].Script
		resp, err := c.Predict(context.Background(), Request{Script: script})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Canary {
			t.Fatal("canary answer after promotion")
		}
		if want := v2.PredictOne(script); resp.Pred != want {
			t.Fatalf("post-promotion answer %+v, want candidate's %+v", resp.Pred, want)
		}
	}
	sn := c.Stats()
	if sn.CanaryPromotions != 1 || sn.CanaryStarts != 1 {
		t.Fatalf("stats: %d starts, %d promotions, want 1 and 1", sn.CanaryStarts, sn.CanaryPromotions)
	}
}

// TestCanaryAutoRollback: a candidate whose canary server errors past
// the rate threshold is rolled back automatically — it stops taking
// traffic, never serves non-canary answers, and the published view is
// untouched (version unchanged, baseline answers bitwise-pure to it).
func TestCanaryAutoRollback(t *testing.T) {
	v1, v2, jobs := trainedViews(t)
	c, err := New(v1, Config{
		Replicas: 2, Serve: fastServe(), HealthEvery: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mustStop(t, c)

	if err := c.StartCanary(v2, CanaryConfig{Frac: 0.5, MinObservations: 4, PromoteAfter: 100}); err != nil {
		t.Fatal(err)
	}
	// Kill the canary server: every claimed request then errors with
	// ErrStopped, deterministically, without touching the baseline
	// replicas (serve.FailpointFlush would hit them too).
	cs := c.canary.Load()
	if cs == nil {
		t.Fatal("no canary deployed")
	}
	if err := cs.srv.Stop(context.Background()); err != nil {
		t.Fatal(err)
	}

	v0 := c.version.Load()
	want := make(map[string]struct{})
	for i := 0; i < 40; i++ {
		script := jobs[i%8].Script
		resp, err := c.Predict(context.Background(), Request{Script: script})
		if err != nil {
			t.Fatal(err)
		}
		// The canary path errors on every claim, so the caller always
		// falls through to the published view.
		if resp.Canary {
			t.Fatal("dead canary served an answer")
		}
		if w := v1.PredictOne(script); resp.Pred != w {
			t.Fatalf("baseline answer %+v, want published view's %+v", resp.Pred, w)
		}
		want[script] = struct{}{}
	}
	st := c.CanaryStatus()
	if st.Phase != CanaryRolledBack.String() {
		t.Fatalf("canary phase %q, want rolled-back (%+v)", st.Phase, st)
	}
	if st.Errors == 0 {
		t.Fatal("rollback with zero recorded errors")
	}
	if got := c.version.Load(); got != v0 {
		t.Fatalf("rolled-back canary bumped version %d → %d", v0, got)
	}
	if err := c.PromoteCanary(context.Background()); !errors.Is(err, ErrNotPromoteReady) {
		t.Fatalf("PromoteCanary on rolled-back canary returned %v, want ErrNotPromoteReady", err)
	}
	if err := c.StopCanary(context.Background()); err != nil {
		t.Fatal(err)
	}
	if c.CanaryStatus().Phase != CanaryNone.String() {
		t.Fatal("canary stage still deployed after StopCanary")
	}
	if sn := c.Stats(); sn.CanaryRollbacks != 1 {
		t.Fatalf("stats: %d rollbacks, want 1", sn.CanaryRollbacks)
	}
}

// TestCanaryDisagreementRollback: a candidate that diverges from the
// baseline on too many answers is rolled back on the disagreement rate
// alone — no errors involved.
func TestCanaryDisagreementRollback(t *testing.T) {
	v1, v2, jobs := trainedViews(t)
	// v1 vs v2 disagree on most scripts (different training points);
	// MaxDisagreeRate below the natural divergence trips the rollback.
	diverging := 0
	for i := 0; i < 8; i++ {
		if v1.PredictOne(jobs[i].Script) != v2.PredictOne(jobs[i].Script) {
			diverging++
		}
	}
	if diverging == 0 {
		t.Skip("views agree on every probe script; disagreement unobservable")
	}
	c, err := New(v1, Config{Replicas: 2, Serve: fastServe(), HealthEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer mustStop(t, c)

	if err := c.StartCanary(v2, CanaryConfig{
		Frac: 0.5, MinObservations: 8, PromoteAfter: 1000,
		MaxDisagreeRate: 0.01, MaxErrorRate: 1,
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100 && c.CanaryStatus().Phase == CanaryRunning.String(); i++ {
		if _, err := c.Predict(context.Background(), Request{Script: jobs[i%8].Script}); err != nil {
			t.Fatal(err)
		}
	}
	st := c.CanaryStatus()
	if st.Phase != CanaryRolledBack.String() {
		t.Fatalf("canary phase %q, want rolled-back (%+v)", st.Phase, st)
	}
	if st.Disagreements == 0 {
		t.Fatal("rollback with zero recorded disagreements")
	}
	if err := c.StopCanary(context.Background()); err != nil {
		t.Fatal(err)
	}
}
