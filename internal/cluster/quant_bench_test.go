package cluster

import (
	"context"
	"sync"
	"testing"

	"prionn/internal/prionn"
	"prionn/internal/trace"
)

// The cluster half of the BENCH_quant.json pair: the conv-dominated
// FastConfig fixture from internal/serve's quant benchmarks, dispatched
// through a 4-replica round-robin cluster with the prediction cache off,
// so every request takes a real forward through the measured kernel.
// This is the uncached aggregate-throughput view of the f32 → int8
// comparison; the serve pair measures the single-engine view.

var (
	quantBenchOnce sync.Once
	quantBenchErr  error
	quantBenchF32  *prionn.Inference
	quantBenchInt8 *prionn.Inference
	quantBenchJobs []trace.Job
)

// quantBenchViews trains the FastConfig 2D-CNN once and snapshots it in
// both kernels (mirrors internal/serve's quant fixture).
func quantBenchViews(b *testing.B) (*prionn.Inference, *prionn.Inference) {
	b.Helper()
	quantBenchOnce.Do(func() {
		cfg := prionn.FastConfig()
		cfg.Seed = 3
		cfg.Epochs = 1
		cfg.TrainWindow = 40
		jobs := trace.Completed(trace.Generate(trace.Config{Seed: 3, Jobs: 120}))
		scripts := make([]string, len(jobs))
		for i, j := range jobs {
			scripts[i] = j.Script
		}
		p, err := prionn.New(cfg, scripts)
		if err != nil {
			quantBenchErr = err
			return
		}
		if _, err := p.Train(jobs[:40]); err != nil {
			quantBenchErr = err
			return
		}
		if quantBenchF32, err = p.Snapshot(); err != nil {
			quantBenchErr = err
			return
		}
		if quantBenchInt8, err = p.SnapshotQuantized(jobs[40:80]); err != nil {
			quantBenchErr = err
			return
		}
		quantBenchJobs = jobs
	})
	if quantBenchErr != nil {
		b.Fatal(quantBenchErr)
	}
	return quantBenchF32, quantBenchInt8
}

// benchQuantCluster drives b.N predictions from 64 concurrent clients
// through an uncached 4-replica cluster over the given snapshot.
func benchQuantCluster(b *testing.B, v *prionn.Inference) {
	quantBenchViews(b)
	scripts := make([]string, 256)
	for i := range scripts {
		scripts[i] = quantBenchJobs[i%len(quantBenchJobs)].Script
	}
	c, err := New(v, Config{
		Replicas:    4,
		Policy:      RoundRobin,
		Serve:       benchServeConfig(),
		HealthEvery: -1,
	})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	runClients(b.N, benchClients, func(i int) {
		resp, err := c.Predict(ctx, Request{Script: scripts[i%len(scripts)]})
		if err != nil {
			b.Error(err)
		} else if resp.Degraded {
			b.Error("degraded response under zero faults")
		}
	})
	b.StopTimer()
	snap := c.Stats()
	if err := c.Stop(ctx); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(snap.P50Ns), "p50-ns")
	b.ReportMetric(float64(snap.P99Ns), "p99-ns")
}

// BenchmarkQuantCluster4F32NoCache is the float32 cluster baseline on
// the conv fixture.
func BenchmarkQuantCluster4F32NoCache(b *testing.B) {
	f32, _ := quantBenchViews(b)
	benchQuantCluster(b, f32)
}

// BenchmarkQuantCluster4Int8NoCache is the same dispatch over the int8
// snapshot: the quantized kernel's aggregate uncached throughput.
func BenchmarkQuantCluster4Int8NoCache(b *testing.B) {
	_, int8v := quantBenchViews(b)
	benchQuantCluster(b, int8v)
}
