package cluster

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// retryBudget bounds cluster-wide retry amplification: retries may be
// at most Ratio of the requests seen so far, plus a MinRetries floor so
// a cold cluster can still retry at all. The classic failure mode this
// prevents: every replica slows down, every request retries MaxAttempts
// times, and the cluster DDoSes itself with 3x its own traffic. With a
// budget, sustained failure degrades to at most (1+Ratio)x load and the
// excess requests take the fallback ladder instead.
type retryBudget struct {
	ratio      float64
	minRetries int64

	requests  atomic.Int64
	retries   atomic.Int64
	exhausted atomic.Int64
}

// request notes one incoming cluster request (the budget's deposit).
func (b *retryBudget) request() { b.requests.Add(1) }

// allow reports whether one more retry fits the budget, consuming it
// when it does.
func (b *retryBudget) allow() bool {
	for {
		spent := b.retries.Load()
		limit := b.minRetries + int64(b.ratio*float64(b.requests.Load()))
		if spent >= limit {
			b.exhausted.Add(1)
			return false
		}
		if b.retries.CompareAndSwap(spent, spent+1) {
			return true
		}
	}
}

// splitmix64 is the finalizer from Vigna's splitmix64 PRNG: a cheap,
// stateless bit mixer. The repo already uses it for per-(event, head)
// shuffle seeds; here it turns an atomic counter into backoff jitter
// without math/rand state.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// jitterSource mints uniform [0,1) jitter fractions from a seeded
// counter — deterministic per draw index, no shared RNG lock.
type jitterSource struct {
	seed uint64
	n    atomic.Uint64
}

func (j *jitterSource) next() float64 {
	x := splitmix64(j.seed ^ splitmix64(j.n.Add(1)))
	return float64(x>>11) / (1 << 53)
}

// backoff returns the sleep before retry attempt (1-based), with
// "equal jitter": half the exponential step deterministic, half
// uniformly random, capped at maxBackoff.
func backoff(base time.Duration, attempt int, jitter float64, maxBackoff time.Duration) time.Duration {
	d := base << uint(attempt-1)
	if d <= 0 || d > maxBackoff {
		d = maxBackoff
	}
	return d/2 + time.Duration(jitter*float64(d/2))
}

// latencySamples is the ring capacity of the hedging latency tracker.
// 512 recent model-path latencies are plenty to estimate a tail
// percentile and cheap to sort.
const latencySamples = 512

// hedgeRecompute is how many new samples arrive between threshold
// recomputations — sorting per request would put an O(n log n) in the
// hot path for a value that drifts slowly.
const hedgeRecompute = 64

// latencyTracker keeps a ring of recent request latencies, serves
// percentile queries, and maintains the hedging threshold (the
// configured percentile, recomputed every hedgeRecompute samples).
type latencyTracker struct {
	pct float64 // hedging percentile, e.g. 0.95; 0 disables

	mu      sync.Mutex
	samples [latencySamples]int64
	n       int // total recorded
	next    int

	hedgeNs atomic.Int64 // current hedging threshold; 0 = not ready
}

// record folds one latency into the ring and periodically refreshes
// the hedge threshold.
func (t *latencyTracker) record(d time.Duration) {
	t.mu.Lock()
	t.samples[t.next] = int64(d)
	t.next = (t.next + 1) % latencySamples
	t.n++
	recompute := t.pct > 0 && t.n >= hedgeRecompute && t.n%hedgeRecompute == 0
	var snap []int64
	if recompute {
		snap = t.snapshotLocked()
	}
	t.mu.Unlock()
	if recompute {
		t.hedgeNs.Store(percentile(snap, t.pct))
	}
}

// snapshotLocked copies the populated part of the ring. Callers hold mu.
func (t *latencyTracker) snapshotLocked() []int64 {
	filled := t.n
	if filled > latencySamples {
		filled = latencySamples
	}
	out := make([]int64, filled)
	copy(out, t.samples[:filled])
	return out
}

// percentileNs returns the p-th percentile of the recorded latencies
// (0 when nothing is recorded yet).
func (t *latencyTracker) percentileNs(p float64) int64 {
	t.mu.Lock()
	snap := t.snapshotLocked()
	t.mu.Unlock()
	return percentile(snap, p)
}

// hedgeDelay returns the current hedging threshold, or 0 when hedging
// is disabled or the tracker is still warming up.
func (t *latencyTracker) hedgeDelay() time.Duration {
	if t.pct <= 0 {
		return 0
	}
	return time.Duration(t.hedgeNs.Load())
}

// percentile sorts ns in place and returns the p-th percentile
// (nearest-rank), or 0 for an empty slice.
func percentile(ns []int64, p float64) int64 {
	if len(ns) == 0 {
		return 0
	}
	sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
	idx := int(p * float64(len(ns)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(ns) {
		idx = len(ns) - 1
	}
	return ns[idx]
}
