package cluster

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"prionn/internal/fault"
	"prionn/internal/prionn"
)

// The chaos harness: client goroutines push a fixed request set through
// the cluster while a seeded schedule injects faults — latency and
// errors through the per-replica failpoints, crashes through
// Kill/Restart, snapshot churn through Swap. The invariants asserted
// afterwards are the tentpole's contract:
//
//  1. exactly-once: every submitted request returns exactly one
//     response, none error (the callers' contexts stay alive);
//  2. snapshot purity: every model-path answer is bitwise equal to one
//     published snapshot's single-process prediction for that script —
//     never a blend, never a stale cache entry;
//  3. degradation: every degraded answer echoes the request's own
//     requested runtime (the paper-§2.3 fallback), so the scheduler is
//     never stalled and never handed a fabricated number.
//
// The schedule is driven by a seeded PRNG, so a failure reproduces
// under `-run TestClusterChaos... -count=1` with the same seed.

// chaosConfig turns every resilience mechanism on at once with
// aggressive timing, so mechanisms interact during the run instead of
// idling: fast breakers, active health probing, hedging, caching over
// affinity routing, and a generous retry budget.
func chaosConfig() Config {
	return Config{
		Replicas:        4,
		Serve:           fastServe(),
		Policy:          ScriptAffinity,
		CacheSize:       256,
		MaxAttempts:     4,
		RetryBackoff:    100 * time.Microsecond,
		MaxBackoff:      2 * time.Millisecond,
		RetryBudget:     0.5,
		MinRetries:      50,
		HedgePercentile: 0.90,
		Breaker: BreakerConfig{
			ConsecutiveFailures: 3,
			OpenFor:             10 * time.Millisecond,
			HalfOpenProbes:      2,
		},
		HealthEvery:   5 * time.Millisecond,
		HealthTimeout: 20 * time.Millisecond,
		Seed:          7,
	}
}

// chaosAction is one step kind in the seeded schedule.
type chaosAction int

const (
	chaosLatency chaosAction = iota // arm Sleep on a random replica
	chaosError                      // arm Err on a random replica
	chaosHeal                       // disarm a random replica's failpoint
	chaosKill                       // crash a random live replica
	chaosRestart                    // resurrect a random killed replica
	chaosSwap                       // publish the other snapshot
)

// runChaos drives the harness: 6 clients x 50 requests against a
// 4-replica cluster under the seeded schedule, allowing only the given
// action kinds. It returns the final stats snapshot after asserting the
// three invariants above.
func runChaos(t *testing.T, seed int64, allowed []chaosAction) Snapshot {
	t.Helper()
	v1, v2, jobs := trainedViews(t)

	// Reference answers, computed single-process before the cluster
	// exists: purity means every model answer matches one of these.
	want1 := make(map[string]prionn.Prediction, len(jobs))
	want2 := make(map[string]prionn.Prediction, len(jobs))
	for _, j := range jobs {
		if _, ok := want1[j.Script]; !ok {
			want1[j.Script] = v1.PredictOne(j.Script)
			want2[j.Script] = v2.PredictOne(j.Script)
		}
	}

	c, err := New(v1, chaosConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer mustStop(t, c)

	const clients, perClient = 6, 50
	total := clients * perClient
	type outcome struct {
		script    string
		requested int
		resp      Response
		err       error
	}
	outcomes := make([]outcome, total)
	var answered atomic.Int64

	clientsDone := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				idx := g*perClient + i
				j := jobs[idx%len(jobs)]
				// A per-request requested runtime so a degraded answer is
				// checkably *this* request's fallback, not another's.
				req := Request{Script: j.Script, RequestedMin: 1000 + idx}
				resp, err := c.Predict(context.Background(), req)
				outcomes[idx] = outcome{j.Script, req.RequestedMin, resp, err}
				answered.Add(1)
			}
		}(g)
	}
	go func() {
		wg.Wait()
		close(clientsDone)
	}()

	// The seeded chaos schedule. Everything it arms or kills it also
	// undoes before returning, so the final drain runs on a healthy
	// cluster.
	rng := rand.New(rand.NewSource(seed))
	killed := make([]bool, c.Replicas())
	views := [2]*prionn.Inference{v1, v2}
	nextView := 1
	steps := 0
	for done := false; !done; {
		select {
		case <-clientsDone:
			done = true
			continue
		default:
		}
		steps++
		id := rng.Intn(c.Replicas())
		switch allowed[rng.Intn(len(allowed))] {
		case chaosLatency:
			fault.Arm(ReplicaFailpoint(id), fault.Failure{
				Sleep: time.Duration(1+rng.Intn(4)) * time.Millisecond,
			})
		case chaosError:
			fault.Arm(ReplicaFailpoint(id), fault.Failure{Err: errors.New("chaos: injected dispatch error")})
		case chaosHeal:
			fault.Disarm(ReplicaFailpoint(id))
		case chaosKill:
			if !killed[id] {
				killed[id] = true
				ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
				if err := c.Kill(ctx, id); err != nil {
					t.Errorf("chaos kill %d: %v", id, err)
				}
				cancel()
			}
		case chaosRestart:
			if killed[id] {
				killed[id] = false
				if err := c.Restart(id); err != nil {
					t.Errorf("chaos restart %d: %v", id, err)
				}
			}
		case chaosSwap:
			if err := c.Swap(views[nextView]); err != nil {
				t.Errorf("chaos swap: %v", err)
			}
			nextView = 1 - nextView
		}
		time.Sleep(time.Duration(200+rng.Intn(800)) * time.Microsecond)
	}
	fault.DisarmAll()
	for id, k := range killed {
		if k {
			if err := c.Restart(id); err != nil {
				t.Errorf("final restart %d: %v", id, err)
			}
		}
	}
	wg.Wait()

	// Invariant 1: exactly-once, no errors.
	if got := answered.Load(); got != int64(total) {
		t.Fatalf("answered %d of %d requests", got, total)
	}
	var model, cached, degraded int
	for idx, o := range outcomes {
		if o.err != nil {
			t.Fatalf("request %d returned an error despite a live caller: %v", idx, o.err)
		}
		switch {
		// Invariant 2: snapshot purity for every model-path answer.
		case o.resp.FromModel:
			model++
			if o.resp.Cached {
				cached++
			}
			if o.resp.Pred != want1[o.script] && o.resp.Pred != want2[o.script] {
				t.Fatalf("request %d: prediction %+v matches neither snapshot (%+v / %+v)",
					idx, o.resp.Pred, want1[o.script], want2[o.script])
			}
		// Invariant 3: degraded answers echo this request's fallback.
		case o.resp.Degraded:
			degraded++
			if o.resp.Pred.RuntimeMin != o.requested {
				t.Fatalf("request %d: degraded answer %d != requested %d",
					idx, o.resp.Pred.RuntimeMin, o.requested)
			}
			if o.resp.Replica != -1 {
				t.Fatalf("request %d: degraded answer claims replica %d", idx, o.resp.Replica)
			}
		default:
			// Trained snapshots are published the whole run, so a
			// non-degraded fallback (untrained replica) is impossible.
			t.Fatalf("request %d: response neither model-path nor degraded: %+v", idx, o.resp)
		}
	}
	snap := c.Stats()
	if snap.Requests < int64(total) {
		t.Fatalf("cluster saw %d requests, clients sent %d", snap.Requests, total)
	}
	t.Logf("chaos seed %d: %d steps; %d model (%d cached), %d degraded; stats:\n%s",
		seed, steps, model, cached, degraded, snap)
	return snap
}

// TestClusterChaosLatency: pure latency injection. Nothing errors, so
// nothing may degrade for breaker reasons — every answer must be a
// model answer, with hedging racing past the slow replicas.
func TestClusterChaosLatency(t *testing.T) {
	snap := runChaos(t, 11, []chaosAction{chaosLatency, chaosHeal})
	if snap.Degraded > snap.DeadlineDegraded {
		t.Fatalf("latency-only chaos degraded %d requests beyond the %d deadline degradations",
			snap.Degraded, snap.DeadlineDegraded)
	}
}

// TestClusterChaosErrors: error injection with healing. Failed
// dispatches must be retried or degraded, never surfaced to callers.
func TestClusterChaosErrors(t *testing.T) {
	runChaos(t, 22, []chaosAction{chaosError, chaosHeal})
}

// TestClusterChaosKillRestart: replica crash and resurrection
// mid-traffic; restarted replicas come back on the currently published
// snapshot (purity holds across resurrections).
func TestClusterChaosKillRestart(t *testing.T) {
	runChaos(t, 33, []chaosAction{chaosKill, chaosRestart})
}

// TestClusterChaosMixed: everything at once, including snapshot churn —
// the full robustness claim of the PR.
func TestClusterChaosMixed(t *testing.T) {
	runChaos(t, 44, []chaosAction{
		chaosLatency, chaosError, chaosHeal, chaosKill, chaosRestart, chaosSwap,
	})
}

// TestClusterChaosBreakerTransitions pins the breaker behavior the
// random schedules can't assert deterministically: sustained injected
// errors on half the fleet open exactly those breakers mid-traffic, and
// healing closes them again while traffic continues.
func TestClusterChaosBreakerTransitions(t *testing.T) {
	_, _, jobs := trainedViews(t)
	defer fault.DisarmAll()

	cfg := chaosConfig()
	cfg.HealthEvery = -1 // isolate the breakers from the health prober
	cfg.CacheSize = 0    // cache hits bypass dispatch and would starve the breakers
	c, err := New(view1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer mustStop(t, c)

	push := func(n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			j := jobs[i%len(jobs)]
			if _, err := c.Predict(context.Background(), Request{Script: j.Script, RequestedMin: 1}); err != nil {
				t.Fatal(err)
			}
		}
	}

	fault.Arm(ReplicaFailpoint(0), fault.Failure{Err: errors.New("chaos: injected")})
	fault.Arm(ReplicaFailpoint(1), fault.Failure{Err: errors.New("chaos: injected")})
	deadline := time.Now().Add(10 * time.Second)
	for c.replicas[0].br.State() != BreakerOpen || c.replicas[1].br.State() != BreakerOpen {
		if time.Now().After(deadline) {
			t.Fatalf("breakers never opened: %v / %v", c.replicas[0].br.State(), c.replicas[1].br.State())
		}
		push(8)
	}

	fault.DisarmAll()
	for c.replicas[0].br.State() != BreakerClosed || c.replicas[1].br.State() != BreakerClosed {
		if time.Now().After(deadline) {
			t.Fatalf("breakers never re-closed: %v / %v", c.replicas[0].br.State(), c.replicas[1].br.State())
		}
		push(8)
		time.Sleep(2 * time.Millisecond) // let the 10ms cool-down elapse
	}
	snap := c.Stats()
	for _, id := range []int{0, 1} {
		r := snap.Replicas[id]
		if r.BreakerOpens < 1 || r.BreakerHalfOpens < 1 || r.BreakerCloses < 1 {
			t.Fatalf("replica %d transitions opens=%d halfOpens=%d closes=%d, want all >= 1",
				id, r.BreakerOpens, r.BreakerHalfOpens, r.BreakerCloses)
		}
	}
	for _, id := range []int{2, 3} {
		if got := snap.Replicas[id].BreakerOpens; got != 0 {
			t.Fatalf("healthy replica %d opened its breaker %d times", id, got)
		}
	}
}
