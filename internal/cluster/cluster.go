// Package cluster shards PRIONN's serving layer across N replicas: it
// runs N internal/serve coalescing servers — each owning a private
// deep-copied model snapshot, so the single-goroutine forward
// confinement holds per replica — behind a router with pluggable
// policies, per-request deadlines, budgeted retries with jittered
// exponential backoff, optional hedged requests past a latency
// percentile, per-replica circuit breakers, active health checking,
// and atomic cluster-wide snapshot replication.
//
// The design contract comes from the paper's deployment (§2.3):
// predictions feed the scheduler at job-submission time, so a dead or
// slow replica must degrade a prediction, never stall a submission.
// Concretely, Predict returns an error only when the *caller's* context
// dies; every infrastructure failure — replicas crashed, breakers open,
// retry budget exhausted, per-request deadline exceeded — ends in the
// requested-runtime fallback (Response.Degraded), the same answer the
// paper's system gives before its first training event.
//
// The layer is proven by a chaos harness (chaos_test.go) driving
// latency injection, error injection, and replica kill/restart through
// fault.Arm/fault.Here failpoints mid-traffic, asserting that no
// request is lost or double-answered, that breakers open and recover,
// and that every model-path response stays bitwise-pure to exactly one
// published snapshot.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"prionn/internal/fault"
	"prionn/internal/prionn"
	"prionn/internal/serve"
)

// Request is one job to predict; it is exactly the serving layer's
// request shape.
type Request = serve.Request

// Response is the cluster's answer for one request.
type Response struct {
	Pred prionn.Prediction
	// FromModel is false when the prediction is the requested-runtime
	// fallback (untrained snapshot, or Degraded).
	FromModel bool
	// Cached is true when the prediction came from the memoizing
	// prediction cache instead of a forward pass.
	Cached bool
	// Degraded is true when the cluster could not obtain a model answer
	// (every replica open/unhealthy/erroring, retry budget exhausted, or
	// the per-request deadline expired) and answered from the
	// requested-runtime fallback instead of erroring.
	Degraded bool
	// Replica is the id of the replica that answered (the cache's home
	// replica for cached responses), or -1 for degraded and canary
	// responses.
	Replica int
	// Canary is true when the answer came from the canary stage's
	// candidate snapshot rather than the published one.
	Canary bool
}

// Policy selects how the router spreads requests over replicas.
type Policy int

const (
	// RoundRobin rotates over healthy replicas.
	RoundRobin Policy = iota
	// LeastLoaded prefers the replica with the fewest in-flight
	// dispatches (ties broken by lowest id).
	LeastLoaded
	// ScriptAffinity routes by script hash, so identical scripts hit the
	// same replica — and therefore its warm prediction cache shard.
	ScriptAffinity
)

// ParsePolicy maps the CLI spellings to a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "round-robin":
		return RoundRobin, nil
	case "least-loaded":
		return LeastLoaded, nil
	case "affinity":
		return ScriptAffinity, nil
	}
	return 0, errors.New("cluster: unknown policy " + strconv.Quote(s) + " (round-robin, least-loaded, affinity)")
}

// String renders the CLI spelling.
func (p Policy) String() string {
	switch p {
	case LeastLoaded:
		return "least-loaded"
	case ScriptAffinity:
		return "affinity"
	}
	return "round-robin"
}

// maxReplicas bounds the cluster size: the retry path tracks attempted
// replicas in a 64-bit mask.
const maxReplicas = 64

// Failpoint names compiled into the cluster path; the chaos harness
// arms them for latency injection (Sleep), error injection (Err), and
// deterministic schedules (After).
const (
	// FailpointRoute fires in Predict before routing. An injected error
	// here degrades the request to the fallback (the router itself
	// failing must not stall a submission); Sleep injects admission
	// latency.
	FailpointRoute = "cluster/route"
	// FailpointSwapClone fires in Swap before each per-replica snapshot
	// clone; arming it with After selects which replica's clone fails,
	// so tests can prove a mid-swap failure publishes nothing.
	FailpointSwapClone = "cluster/swap-clone"
)

// ReplicaFailpoint names the per-replica dispatch failpoint: it fires
// in the dispatch path (and in the health prober) of exactly that
// replica, so chaos schedules can take down replica 2 while 0, 1, and 3
// keep serving.
func ReplicaFailpoint(id int) string {
	return "cluster/replica/" + strconv.Itoa(id)
}

// errReplicaDown is the dispatch error for a replica with no live
// server (killed and not yet restarted).
var errReplicaDown = errors.New("cluster: replica down")

// healthProbeScript is the tiny request body the active health checker
// submits; probes ride the normal serve path (admission, coalescing)
// so they observe real serving health, and they always take the
// requested-runtime fallback path on untrained snapshots.
const healthProbeScript = "#!/bin/sh\n#cluster-health-probe\n"

// Config tunes the cluster. The zero value of every field gets a
// sensible default from withDefaults; Replicas defaults to 1.
type Config struct {
	// Replicas is the number of in-process serving replicas (1..64).
	Replicas int
	// Serve configures each replica's coalescing server.
	Serve serve.Config
	// Policy is the routing policy (default RoundRobin).
	Policy Policy
	// RequestTimeout is the per-request deadline. When it expires the
	// request degrades to the requested-runtime fallback instead of
	// erroring. 0 disables.
	RequestTimeout time.Duration
	// MaxAttempts bounds dispatch attempts per request, including the
	// first (default 3).
	MaxAttempts int
	// RetryBackoff is the base of the jittered exponential backoff
	// between attempts (default 500µs), capped at MaxBackoff (default
	// 50ms).
	RetryBackoff time.Duration
	MaxBackoff   time.Duration
	// RetryBudget caps cluster-wide retries at this fraction of requests
	// (default 0.1), with MinRetries as an absolute floor (default 10).
	RetryBudget float64
	MinRetries  int
	// HedgePercentile, when in (0,1), launches a hedged second attempt
	// once the first has been in flight longer than this percentile of
	// recent latencies. 0 disables hedging.
	HedgePercentile float64
	// Breaker tunes each replica's circuit breaker.
	Breaker BreakerConfig
	// HealthEvery is the active health-check interval: 0 means the
	// 100ms default, negative disables active checking (replicas stay
	// routable unless killed).
	HealthEvery time.Duration
	// HealthTimeout bounds one health probe (default 1s). Generous on
	// purpose: probes ride the real serve path and queue behind live
	// traffic, so a tight timeout reads congestion as death. The picker
	// additionally fails open when the health filter alone would empty
	// the pool.
	HealthTimeout time.Duration
	// CacheSize is the per-replica memoizing prediction cache capacity
	// in entries; 0 disables caching. The cache is sharded by script
	// hash: an entry lives on its script's home replica, which the
	// ScriptAffinity policy routes to.
	CacheSize int
	// Seed seeds the backoff jitter stream (default 1).
	Seed int64
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Replicas <= 0 {
		c.Replicas = 1
	}
	if c.Replicas > maxReplicas {
		c.Replicas = maxReplicas
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 500 * time.Microsecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 50 * time.Millisecond
	}
	if c.RetryBudget <= 0 {
		c.RetryBudget = 0.1
	}
	if c.MinRetries <= 0 {
		c.MinRetries = 10
	}
	if c.HealthEvery == 0 {
		c.HealthEvery = 100 * time.Millisecond
	}
	if c.HealthTimeout <= 0 {
		c.HealthTimeout = time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// replica is one serving replica plus its routing state. The server
// pointer is atomic because Kill/Restart replace it mid-traffic.
type replica struct {
	id  int
	srv atomic.Pointer[serve.Server]

	killed  atomic.Bool
	healthy atomic.Bool

	inflight atomic.Int64

	br    *breaker
	cache *predCache

	dispatched atomic.Int64 // successful dispatches
	failed     atomic.Int64 // failed dispatches (injected, stopped, overloaded)
	cacheHits  atomic.Int64 // hits served from this replica's cache shard
}

// Cluster is N serving replicas behind a fault-tolerant router. Create
// with New; all methods are safe for concurrent use.
type Cluster struct {
	cfg Config

	replicas []*replica

	// version counts published snapshots; cache entries are only valid
	// under the cacheStamp — {version, kernel kind} — they were computed
	// at. Bumped by Swap *after* every replica has the new snapshot (see
	// Swap for the ordering argument).
	version atomic.Int64
	// view is the most recently published snapshot source; Restart
	// clones it for the replacement replica.
	view atomic.Pointer[prionn.Inference]

	// ctl serializes the control plane (Swap, Kill, Restart, canary
	// start/promote/stop) so a restart can never resurrect a replica on
	// a stale snapshot and canary transitions never interleave.
	ctl sync.Mutex

	// canary is the active canary deployment, nil when none. Stored
	// under ctl; loaded lock-free on the serving path.
	canary atomic.Pointer[canaryState]

	rr     atomic.Uint64 // round-robin cursor
	jitter jitterSource
	budget retryBudget
	lat    latencyTracker

	st clusterStats

	healthStop chan struct{}
	healthDone chan struct{}
	stopOnce   sync.Once
}

// New builds the cluster: each replica gets its own serve.Server over a
// private Clone of view (nil is allowed — every replica serves the
// requested-runtime fallback until Swap publishes a trained snapshot),
// and the active health checker starts unless disabled.
func New(view *prionn.Inference, cfg Config) (*Cluster, error) {
	cfg = cfg.withDefaults()
	c := &Cluster{
		cfg:        cfg,
		jitter:     jitterSource{seed: uint64(cfg.Seed)},
		budget:     retryBudget{ratio: cfg.RetryBudget, minRetries: int64(cfg.MinRetries)},
		lat:        latencyTracker{pct: cfg.HedgePercentile},
		healthStop: make(chan struct{}),
		healthDone: make(chan struct{}),
	}
	if view != nil {
		c.view.Store(view)
	}
	st0 := cacheStamp{version: 0, kernel: viewKernel(view)}
	for i := 0; i < cfg.Replicas; i++ {
		r := &replica{
			id:    i,
			br:    newBreaker(cfg.Breaker),
			cache: newPredCache(cfg.CacheSize),
		}
		r.cache.invalidate(st0) // install the initial {version, kernel} stamp
		r.healthy.Store(true)
		v, err := cloneView(view)
		if err != nil {
			return nil, err
		}
		r.srv.Store(serve.New(v, cfg.Serve))
		c.replicas = append(c.replicas, r)
	}
	if cfg.HealthEvery > 0 {
		//prionnvet:ignore naked-goroutine -- joined via c.healthDone, closed by healthLoop and received in Stop
		go c.healthLoop()
	} else {
		close(c.healthDone)
	}
	return c, nil
}

// cloneView deep-copies a snapshot (nil stays nil).
func cloneView(v *prionn.Inference) (*prionn.Inference, error) {
	if v == nil {
		return nil, nil
	}
	return v.Clone()
}

// viewKernel names the kernel kind a snapshot serves with; the nil
// (fallback-only) view reports the float32 default.
func viewKernel(v *prionn.Inference) prionn.KernelKind {
	if v == nil {
		return prionn.KernelF32
	}
	return v.Kernel()
}

// stamp is the cluster's current cache-validity stamp. The version and
// view are separate atomics, so a read racing a Swap can observe a
// mixed {old version, new kernel} pair — which matches neither the old
// nor the new cache stamp, so the race degrades to a cache miss, never
// a stale hit.
func (c *Cluster) stamp() cacheStamp {
	return cacheStamp{version: c.version.Load(), kernel: viewKernel(c.view.Load())}
}

// Replicas returns the cluster size.
func (c *Cluster) Replicas() int { return len(c.replicas) }

// Predict answers one job-submission prediction. It routes to a
// replica by policy, memoizes deterministic model answers, retries
// transient failures within the retry budget, optionally hedges slow
// attempts, and — when no replica can answer — degrades to the
// requested-runtime fallback. The only error it returns is the
// caller's own context error; infrastructure failure never stalls a
// submission.
func (c *Cluster) Predict(ctx context.Context, req Request) (Response, error) {
	c.st.requests.Add(1)
	c.budget.request()
	if err := fault.Here(FailpointRoute); err != nil {
		c.st.routeFaults.Add(1)
		return c.degrade(req), nil
	}

	parent := ctx
	if c.cfg.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.cfg.RequestTimeout)
		defer cancel()
	}

	key := scriptKey(req.Script, req.InputDeck)

	// Canary claim: before the cache, so canary traffic always exercises
	// the candidate (a cache hit would silently starve the canary of
	// observations). A failed canary path falls through to the normal
	// route — canary faults never degrade the caller's request.
	if cs := c.canary.Load(); cs != nil && cs.running() && cs.take() {
		if resp, ok := c.canaryPredict(ctx, cs, req, key); ok {
			return resp, nil
		}
		if parent.Err() != nil {
			c.st.callerCanceled.Add(1)
			return Response{}, parent.Err()
		}
	}

	st := c.stamp()
	if home := c.home(key); home.cache != nil {
		if pred, ok := home.cache.get(key, st); ok {
			home.cacheHits.Add(1)
			return Response{Pred: pred, FromModel: true, Cached: true, Replica: home.id}, nil
		}
		c.st.cacheMisses.Add(1)
	}

	var tried uint64
	for attempt := 0; attempt < c.cfg.MaxAttempts; attempt++ {
		r := c.pick(key, tried)
		if r == nil {
			break // nothing dispatchable: degrade
		}
		resp, used, err := c.dispatch(ctx, r, req, key, tried)
		tried |= used
		if err == nil {
			if resp.FromModel {
				c.home(key).cache.put(key, st, resp.Pred)
			}
			return Response{Pred: resp.Pred, FromModel: resp.FromModel, Replica: r.id}, nil
		}
		if parent.Err() != nil {
			// The caller itself is gone; an answer has no reader.
			c.st.callerCanceled.Add(1)
			return Response{}, parent.Err()
		}
		if ctx.Err() != nil {
			// Our per-request deadline fired: the bounded-latency contract
			// says answer now, from the fallback.
			c.st.deadlineDegraded.Add(1)
			break
		}
		if attempt+1 >= c.cfg.MaxAttempts {
			break
		}
		if !c.budget.allow() {
			break
		}
		c.st.retries.Add(1)
		d := backoff(c.cfg.RetryBackoff, attempt+1, c.jitter.next(), c.cfg.MaxBackoff)
		t := time.NewTimer(d)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
		}
	}
	return c.degrade(req), nil
}

// degrade mints the requested-runtime fallback response (the paper's
// §2.3 pre-first-training contract, reused as the cluster's bottom
// rung: a submission always gets *an* answer within its deadline).
func (c *Cluster) degrade(req Request) Response {
	c.st.degraded.Add(1)
	return Response{
		Pred:     prionn.Prediction{RuntimeMin: req.RequestedMin},
		Degraded: true,
		Replica:  -1,
	}
}

// home returns the replica owning a script's cache shard.
func (c *Cluster) home(key uint64) *replica {
	return c.replicas[int(key%uint64(len(c.replicas)))]
}

// pick selects the next replica to try, honoring the routing policy,
// health, the tried-mask, and each candidate's circuit breaker. Every
// non-nil pick consumes one breaker Allow, which the subsequent
// dispatch pairs with exactly one Record. Returns nil when no replica
// is dispatchable.
func (c *Cluster) pick(key uint64, tried uint64) *replica {
	n := len(c.replicas)
	var order [maxReplicas]int
	switch c.cfg.Policy {
	case LeastLoaded:
		// Selection sort by (inflight, id); n is at most 64 and typically
		// single digits.
		var load [maxReplicas]int64
		for i := 0; i < n; i++ {
			order[i] = i
			load[i] = c.replicas[i].inflight.Load()
		}
		for i := 0; i < n; i++ {
			min := i
			for j := i + 1; j < n; j++ {
				if load[order[j]] < load[order[min]] ||
					(load[order[j]] == load[order[min]] && order[j] < order[min]) {
					min = j
				}
			}
			order[i], order[min] = order[min], order[i]
		}
	case ScriptAffinity:
		start := int(key % uint64(n))
		for i := 0; i < n; i++ {
			order[i] = (start + i) % n
		}
	default: // RoundRobin
		start := int((c.rr.Add(1) - 1) % uint64(n))
		for i := 0; i < n; i++ {
			order[i] = (start + i) % n
		}
	}
	scan := func(ignoreHealth bool) *replica {
		for i := 0; i < n; i++ {
			r := c.replicas[order[i]]
			if tried&(1<<uint(r.id)) != 0 {
				continue
			}
			if r.killed.Load() || (!ignoreHealth && !r.healthy.Load()) {
				continue
			}
			if !r.br.Allow() {
				continue
			}
			return r
		}
		return nil
	}
	if r := scan(false); r != nil {
		return r
	}
	// Health checking fails open: if the health filter alone would empty
	// the pool (probes time out on an overloaded-but-live cluster), route
	// anyway rather than convert congestion into a full outage. Killed
	// replicas and open breakers still gate — those are hard signals.
	return scan(true)
}

// attemptResult carries one dispatch attempt's outcome to the hedging
// selector.
type attemptResult struct {
	resp serve.Response
	err  error
	id   int
}

// dispatch runs one routed attempt, hedging a second replica when the
// first exceeds the hedging threshold. It returns the mask of replica
// ids it consumed (for the retry loop's tried-set) alongside the
// winning response. The request is answered exactly once: a losing
// hedge's response lands in the buffered channel and is dropped with
// it.
func (c *Cluster) dispatch(ctx context.Context, r *replica, req Request, key, tried uint64) (serve.Response, uint64, error) {
	used := uint64(1) << uint(r.id)
	delay := c.lat.hedgeDelay()
	if delay <= 0 {
		resp, err := c.attempt(ctx, r, req)
		return resp, used, err
	}

	ch := make(chan attemptResult, 2)
	launch := func(lr *replica) {
		//prionnvet:ignore naked-goroutine -- result delivered via the buffered ch; a losing hedge completes its send and is dropped, never leaked
		go func() {
			defer func() {
				// A panicking replica (a failpoint armed with Panic, a
				// corrupt snapshot) is a failed attempt, not a process
				// kill: convert it so the retry loop can fail over.
				if p := recover(); p != nil {
					ch <- attemptResult{err: fmt.Errorf("replica %d panic: %v", lr.id, p), id: lr.id}
				}
			}()
			resp, err := c.attempt(ctx, lr, req)
			ch <- attemptResult{resp, err, lr.id}
		}()
	}
	launch(r)
	timer := time.NewTimer(delay)
	defer timer.Stop()
	outstanding := 1
	hedged := false
	var lastErr error
	for {
		//prionnvet:ignore nondet-select -- hedging races two attempts by design; both compute snapshot-pure answers, so whichever wins returns identical bytes
		select {
		case res := <-ch:
			outstanding--
			if res.err == nil {
				if hedged && res.id != r.id {
					c.st.hedgeWins.Add(1)
				}
				return res.resp, used, nil
			}
			lastErr = res.err
			if outstanding == 0 {
				return serve.Response{}, used, lastErr
			}
		case <-timer.C:
			if !hedged {
				if r2 := c.pick(key, tried|used); r2 != nil {
					used |= 1 << uint(r2.id)
					c.st.hedges.Add(1)
					hedged = true
					outstanding++
					launch(r2)
				}
			}
		case <-ctx.Done():
			return serve.Response{}, used, ctx.Err()
		}
	}
}

// attempt dispatches one request to one replica through its failpoint,
// recording the outcome in the replica's breaker and the cluster's
// latency tracker. Pairs with the breaker Allow its pick consumed.
func (c *Cluster) attempt(ctx context.Context, r *replica, req Request) (serve.Response, error) {
	r.inflight.Add(1)
	defer r.inflight.Add(-1)
	if err := fault.Here(ReplicaFailpoint(r.id)); err != nil {
		r.failed.Add(1)
		r.br.Record(false)
		return serve.Response{}, err
	}
	srv := r.srv.Load()
	if srv == nil {
		r.failed.Add(1)
		r.br.Record(false)
		return serve.Response{}, errReplicaDown
	}
	//prionnvet:ignore time-dep -- dispatch latency feeds the hedging threshold and p50/p99 stats; wall-clock by design
	t0 := time.Now()
	resp, err := srv.Predict(ctx, req)
	//prionnvet:ignore time-dep -- dispatch latency feeds the hedging threshold and p50/p99 stats; wall-clock by design
	d := time.Since(t0)
	if err != nil {
		r.failed.Add(1)
		r.br.Record(false)
		return resp, err
	}
	r.dispatched.Add(1)
	r.br.Record(true)
	c.lat.record(d)
	return resp, nil
}

// Swap publishes a new snapshot to every replica. Each replica gets a
// private Clone (replica loops must never share layer caches), and the
// per-replica serve.Swap keeps the PR 5 invariant that no batch mixes
// snapshot versions — extended cluster-wide, no batch on any replica
// mixes versions, because every replica's flush loads exactly one
// snapshot pointer.
//
// Ordering: replicas are swapped first, the cache stamp — snapshot
// version plus kernel kind, so publishing an int8 snapshot over a
// float32 one (or back) always reads as a new stamp — is bumped and the
// caches invalidated after. A forward that raced the swap can therefore
// only insert a cache entry under the *old* stamp — erased by the
// invalidation — never a stale prediction under the new one.
//
// Swap is all-or-nothing: every replica's private clone is taken
// before anything is published, so a clone failure (OOM, injected
// fault) leaves the cluster exactly as it was — no replica sees the
// new snapshot, the version is not bumped, and the caches keep serving
// the old view's entries, which are still correct for it.
func (c *Cluster) Swap(v *prionn.Inference) error {
	c.ctl.Lock()
	defer c.ctl.Unlock()
	//prionnvet:ignore lock-held-io -- swapping IS the critical section: ctl must cover clone+publish so a concurrent Restart can never resurrect a replica on a half-swapped snapshot; the only IO reached is the test-only FailpointSwapClone, armed with Err (never Sleep/Panic) by the atomicity tests
	return c.swapLocked(v)
}

// swapLocked is Swap's body; the caller holds ctl.
func (c *Cluster) swapLocked(v *prionn.Inference) error {
	// Phase 1 — clone for every replica. Nothing is published until all
	// clones exist.
	clones := make([]*prionn.Inference, len(c.replicas))
	for i := range c.replicas {
		if err := fault.Here(FailpointSwapClone); err != nil {
			return err
		}
		clone, err := cloneView(v)
		if err != nil {
			return err
		}
		clones[i] = clone
	}
	// Phase 2 — publish. Nothing below can fail.
	if v == nil {
		c.view.Store(nil)
	} else {
		c.view.Store(v)
	}
	for i, r := range c.replicas {
		if srv := r.srv.Load(); srv != nil {
			srv.Swap(clones[i])
		}
	}
	st := cacheStamp{version: c.version.Add(1), kernel: viewKernel(v)}
	for _, r := range c.replicas {
		r.cache.invalidate(st)
	}
	c.st.swaps.Add(1)
	return nil
}

// View returns the most recently published snapshot source (nil if
// none).
func (c *Cluster) View() *prionn.Inference { return c.view.Load() }

// Kill crashes one replica: its server drains and stops, and the
// router stops considering it until Restart. In-flight dispatches to
// it fail over through the retry path. The chaos harness uses this for
// replica-crash injection; it is also the manual drain lever.
func (c *Cluster) Kill(ctx context.Context, id int) error {
	if id < 0 || id >= len(c.replicas) {
		return errors.New("cluster: no replica " + strconv.Itoa(id))
	}
	r := c.replicas[id]
	c.ctl.Lock()
	r.killed.Store(true)
	r.healthy.Store(false)
	srv := r.srv.Load()
	c.ctl.Unlock()
	if srv == nil {
		return nil
	}
	// Outside ctl: draining blocks on the replica's inference loop.
	return srv.Stop(ctx)
}

// Restart resurrects a killed replica on a fresh server holding a
// private clone of the currently published snapshot, with a reset
// breaker and an empty cache shard.
func (c *Cluster) Restart(id int) error {
	if id < 0 || id >= len(c.replicas) {
		return errors.New("cluster: no replica " + strconv.Itoa(id))
	}
	r := c.replicas[id]
	c.ctl.Lock()
	defer c.ctl.Unlock()
	if !r.killed.Load() {
		return errors.New("cluster: replica " + strconv.Itoa(id) + " is not killed")
	}
	v, err := cloneView(c.view.Load())
	if err != nil {
		return err
	}
	r.srv.Store(serve.New(v, c.cfg.Serve))
	r.cache.invalidate(c.stamp())
	r.br.restart()
	r.killed.Store(false)
	r.healthy.Store(true)
	return nil
}

// Stop shuts the cluster down: the health checker exits, then every
// replica drains gracefully (already-admitted requests are answered).
// The context bounds the whole shutdown. Stop is idempotent.
func (c *Cluster) Stop(ctx context.Context) error {
	c.stopOnce.Do(func() { close(c.healthStop) })
	select {
	case <-c.healthDone:
	case <-ctx.Done():
		return ctx.Err()
	}
	var firstErr error
	for _, r := range c.replicas {
		if srv := r.srv.Load(); srv != nil {
			if err := srv.Stop(ctx); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	if cs := c.canary.Load(); cs != nil {
		if err := cs.srv.Stop(ctx); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// healthLoop is the active health checker: it probes every replica at
// the configured cadence and flips routability. It exits when Stop
// closes healthStop.
func (c *Cluster) healthLoop() {
	defer close(c.healthDone)
	t := time.NewTicker(c.cfg.HealthEvery)
	defer t.Stop()
	for {
		select {
		case <-c.healthStop:
			return
		case <-t.C:
			c.probeAll()
		}
	}
}

// probeAll health-checks every replica once.
func (c *Cluster) probeAll() {
	for _, r := range c.replicas {
		if r.killed.Load() {
			continue // stays unhealthy until Restart
		}
		ok := c.probe(r)
		if was := r.healthy.Swap(ok); was != ok {
			c.st.healthFlips.Add(1)
		}
	}
}

// probe submits one bounded health request through the replica's
// failpoint and serve path, so injected latency or errors — and a
// stopped server — all read as unhealthy. Probe outcomes drive
// routability only; the circuit breaker is driven by real traffic.
func (c *Cluster) probe(r *replica) bool {
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.HealthTimeout)
	defer cancel()
	if err := fault.Here(ReplicaFailpoint(r.id)); err != nil {
		return false
	}
	if ctx.Err() != nil {
		return false // injected latency ate the probe deadline
	}
	srv := r.srv.Load()
	if srv == nil {
		return false
	}
	_, err := srv.Predict(ctx, Request{Script: healthProbeScript, RequestedMin: 1})
	return err == nil
}
