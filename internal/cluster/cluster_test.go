package cluster

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"prionn/internal/fault"
	"prionn/internal/prionn"
	"prionn/internal/serve"
	"prionn/internal/trace"
)

// Shared trained snapshots (training dominates test wall time, so every
// test reuses one setup). The two views come from different training
// points, so swap tests can observe a real weight change.
var (
	setupOnce sync.Once
	setupErr  error
	view1     *prionn.Inference
	view2     *prionn.Inference
	qview1    *prionn.Inference // int8 snapshot of view1's weights
	testJobs  []trace.Job
)

func trainedViews(t testing.TB) (*prionn.Inference, *prionn.Inference, []trace.Job) {
	t.Helper()
	setupOnce.Do(func() {
		cfg := prionn.TinyConfig()
		jobs := trace.Completed(trace.Generate(trace.Config{Seed: 3, Jobs: 120}))
		scripts := make([]string, len(jobs))
		for i, j := range jobs {
			scripts[i] = j.Script
		}
		p, err := prionn.New(cfg, scripts)
		if err != nil {
			setupErr = err
			return
		}
		if _, err := p.Train(jobs[:40]); err != nil {
			setupErr = err
			return
		}
		if view1, err = p.Snapshot(); err != nil {
			setupErr = err
			return
		}
		if qview1, err = p.SnapshotQuantized(jobs[80:]); err != nil {
			setupErr = err
			return
		}
		if _, err := p.Train(jobs[40:80]); err != nil {
			setupErr = err
			return
		}
		if view2, err = p.Snapshot(); err != nil {
			setupErr = err
			return
		}
		testJobs = jobs
	})
	if setupErr != nil {
		t.Fatal(setupErr)
	}
	return view1, view2, testJobs
}

// fastServe keeps per-request latency low in tests.
func fastServe() serve.Config {
	return serve.Config{MaxBatch: 8, MaxDelay: 200 * time.Microsecond, QueueDepth: 64}
}

// mustStop drains a cluster at test end.
func mustStop(t *testing.T, c *Cluster) {
	t.Helper()
	if err := c.Stop(context.Background()); err != nil {
		t.Fatalf("cluster stop: %v", err)
	}
}

// TestClusterPredictMatchesSingle: a routed, replicated prediction must
// be bitwise identical to a single-process PredictOne — replication is
// an availability mechanism, never an accuracy change — and round-robin
// must actually spread load over every replica.
func TestClusterPredictMatchesSingle(t *testing.T) {
	v, _, jobs := trainedViews(t)
	c, err := New(v, Config{Replicas: 3, Serve: fastServe(), HealthEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer mustStop(t, c)

	for i := 0; i < 24; i++ {
		j := jobs[i%len(jobs)]
		want := v.PredictOne(j.Script)
		resp, err := c.Predict(context.Background(), Request{Script: j.Script, RequestedMin: j.RequestedMin})
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if !resp.FromModel || resp.Degraded {
			t.Fatalf("request %d not served from model: %+v", i, resp)
		}
		if resp.Pred != want {
			t.Fatalf("request %d: cluster %+v != single %+v", i, resp.Pred, want)
		}
	}
	snap := c.Stats()
	if snap.Requests != 24 || snap.Degraded != 0 {
		t.Fatalf("stats %+v: want 24 requests, 0 degraded", snap)
	}
	for _, r := range snap.Replicas {
		if r.Dispatched == 0 {
			t.Fatalf("round-robin left replica %d idle: %+v", r.ID, snap.Replicas)
		}
	}
}

// TestClusterFallbackUntrained: with no snapshot published anywhere,
// every reply is the requested-runtime fallback (paper §2.3), and a
// cluster-wide Swap switches all replicas to model serving.
func TestClusterFallbackUntrained(t *testing.T) {
	v, _, jobs := trainedViews(t)
	c, err := New(nil, Config{Replicas: 2, Serve: fastServe(), HealthEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer mustStop(t, c)

	resp, err := c.Predict(context.Background(), Request{Script: jobs[0].Script, RequestedMin: 240})
	if err != nil {
		t.Fatal(err)
	}
	if resp.FromModel || resp.Pred.RuntimeMin != 240 {
		t.Fatalf("untrained cluster must fall back to the request: %+v", resp)
	}
	if resp.Degraded {
		t.Fatalf("untrained fallback is not degradation: %+v", resp)
	}

	if err := c.Swap(v); err != nil {
		t.Fatal(err)
	}
	want := v.PredictOne(jobs[0].Script)
	for i := 0; i < 4; i++ { // hit both replicas
		resp, err = c.Predict(context.Background(), Request{Script: jobs[0].Script})
		if err != nil {
			t.Fatal(err)
		}
		if !resp.FromModel || resp.Pred != want {
			t.Fatalf("post-swap response %+v, want model %+v", resp, want)
		}
	}
}

// TestClusterAffinityCache: identical scripts route to the same home
// replica and the second request is a cache hit, bitwise identical to
// the computed answer.
func TestClusterAffinityCache(t *testing.T) {
	v, _, jobs := trainedViews(t)
	c, err := New(v, Config{
		Replicas: 4, Serve: fastServe(), Policy: ScriptAffinity,
		CacheSize: 128, HealthEvery: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mustStop(t, c)

	script := jobs[0].Script
	want := v.PredictOne(script)
	first, err := c.Predict(context.Background(), Request{Script: script})
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Fatal("first request cannot be a cache hit")
	}
	second, err := c.Predict(context.Background(), Request{Script: script})
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Fatal("second identical request must hit the cache")
	}
	if first.Pred != want || second.Pred != want {
		t.Fatalf("cached %+v / computed %+v != single %+v", second.Pred, first.Pred, want)
	}
	if second.Replica != first.Replica {
		t.Fatalf("affinity: computed on %d but cached on %d", first.Replica, second.Replica)
	}
	snap := c.Stats()
	if snap.CacheHits != 1 || snap.CacheMisses != 1 {
		t.Fatalf("cache hits %d misses %d, want 1/1", snap.CacheHits, snap.CacheMisses)
	}
}

// TestClusterCacheInvalidatedOnSwap: a swap must invalidate every cache
// shard — the next identical request recomputes under the new snapshot.
func TestClusterCacheInvalidatedOnSwap(t *testing.T) {
	v1, v2, jobs := trainedViews(t)
	c, err := New(v1, Config{
		Replicas: 2, Serve: fastServe(), Policy: ScriptAffinity,
		CacheSize: 32, HealthEvery: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mustStop(t, c)

	script := jobs[1].Script
	if _, err := c.Predict(context.Background(), Request{Script: script}); err != nil {
		t.Fatal(err)
	}
	if err := c.Swap(v2); err != nil {
		t.Fatal(err)
	}
	resp, err := c.Predict(context.Background(), Request{Script: script})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Cached {
		t.Fatal("post-swap request served a stale cache entry")
	}
	if want := v2.PredictOne(script); resp.Pred != want {
		t.Fatalf("post-swap prediction %+v, want v2's %+v", resp.Pred, want)
	}
}

// TestClusterSwapKernelInvalidatesCache: publishing an int8 snapshot
// over a float32 one (and back) must never serve a memoized prediction
// computed by the other kernel — the two paths agree on classes but not
// on bitwise prediction values, and the cluster's purity contract is
// that every response is bitwise-pure to exactly one published
// snapshot. The cache stamp carries the kernel kind, so the f32-era
// entry can never satisfy an int8-era lookup.
func TestClusterSwapKernelInvalidatesCache(t *testing.T) {
	v1, _, jobs := trainedViews(t)
	c, err := New(v1, Config{
		Replicas: 2, Serve: fastServe(), Policy: ScriptAffinity,
		CacheSize: 32, HealthEvery: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mustStop(t, c)
	if got := c.Stats().Kernel; got != string(prionn.KernelF32) {
		t.Fatalf("stats kernel = %q before any swap, want %q", got, prionn.KernelF32)
	}

	script := jobs[1].Script
	// Warm the f32-era cache entry, and prove it is warm.
	if _, err := c.Predict(context.Background(), Request{Script: script}); err != nil {
		t.Fatal(err)
	}
	resp, err := c.Predict(context.Background(), Request{Script: script})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Cached {
		t.Fatal("second identical request under the f32 snapshot must hit the cache")
	}

	if err := c.Swap(qview1); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().Kernel; got != string(prionn.KernelInt8) {
		t.Fatalf("stats kernel = %q after int8 swap, want %q", got, prionn.KernelInt8)
	}
	resp, err = c.Predict(context.Background(), Request{Script: script})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Cached {
		t.Fatal("post-swap request served a float32-era cache entry on the int8 snapshot")
	}
	if want := qview1.PredictOne(script); resp.Pred != want {
		t.Fatalf("post-swap prediction %+v, want the int8 snapshot's %+v", resp.Pred, want)
	}

	// And the reverse direction: swapping back to f32 must not serve the
	// int8-era entry the predict above memoized.
	if err := c.Swap(v1); err != nil {
		t.Fatal(err)
	}
	resp, err = c.Predict(context.Background(), Request{Script: script})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Cached {
		t.Fatal("swap back to f32 served an int8-era cache entry")
	}
	if want := v1.PredictOne(script); resp.Pred != want {
		t.Fatalf("post-swap-back prediction %+v, want the f32 snapshot's %+v", resp.Pred, want)
	}
}

// TestClusterRetryFailover: a persistently failing replica is routed
// around via retries; the request still gets a model answer.
func TestClusterRetryFailover(t *testing.T) {
	v, _, jobs := trainedViews(t)
	defer fault.DisarmAll()
	fault.Arm(ReplicaFailpoint(0), fault.Failure{Err: errors.New("injected replica fault")})

	c, err := New(v, Config{Replicas: 2, Serve: fastServe(), HealthEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer mustStop(t, c)

	for i := 0; i < 8; i++ {
		j := jobs[i%len(jobs)]
		resp, err := c.Predict(context.Background(), Request{Script: j.Script, RequestedMin: j.RequestedMin})
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if !resp.FromModel {
			t.Fatalf("request %d degraded with a healthy replica available: %+v", i, resp)
		}
		if resp.Replica != 1 {
			t.Fatalf("request %d answered by failing replica %d", i, resp.Replica)
		}
		if want := v.PredictOne(j.Script); resp.Pred != want {
			t.Fatalf("request %d: %+v != %+v", i, resp.Pred, want)
		}
	}
	snap := c.Stats()
	if snap.Retries == 0 {
		t.Fatalf("round-robin over a failing replica must retry: %+v", snap)
	}
	if snap.Replicas[0].Failed == 0 {
		t.Fatalf("replica 0 never saw its injected faults: %+v", snap.Replicas[0])
	}
}

// TestClusterBreakerOpensAndRecovers drives the full
// closed → open → half-open → closed cycle end to end: injected errors
// trip replica 0's breaker, the cool-down (advanced via the injected
// clock) admits probes, and probe successes close it again.
func TestClusterBreakerOpensAndRecovers(t *testing.T) {
	v, _, jobs := trainedViews(t)
	defer fault.DisarmAll()
	fault.Arm(ReplicaFailpoint(0), fault.Failure{Err: errors.New("injected")})

	c, err := New(v, Config{
		Replicas: 2, Serve: fastServe(), HealthEvery: -1,
		Breaker: BreakerConfig{ConsecutiveFailures: 3, OpenFor: time.Hour, HalfOpenProbes: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mustStop(t, c)

	// Fake clock on replica 0's breaker so the cool-down is advanced
	// deterministically instead of slept through.
	var nowNs int64
	br := c.replicas[0].br
	br.mu.Lock()
	br.nowNs = func() int64 { return nowNs }
	br.mu.Unlock()

	predict := func() Response {
		t.Helper()
		j := jobs[0]
		resp, err := c.Predict(context.Background(), Request{Script: j.Script, RequestedMin: j.RequestedMin})
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// Three consecutive injected failures (round-robin sends every other
	// request to replica 0) trip the breaker.
	for i := 0; i < 12 && br.State() != BreakerOpen; i++ {
		predict()
	}
	if got := br.State(); got != BreakerOpen {
		t.Fatalf("breaker state %v after sustained failures, want open", got)
	}
	// While open, replica 0 is never picked: every request dispatches
	// cleanly to replica 1 with no retries consumed.
	failedBefore := c.replicas[0].failed.Load()
	for i := 0; i < 6; i++ {
		if resp := predict(); !resp.FromModel || resp.Replica != 1 {
			t.Fatalf("open breaker must shield replica 0: %+v", resp)
		}
	}
	if got := c.replicas[0].failed.Load(); got != failedBefore {
		t.Fatalf("open breaker leaked %d dispatches to replica 0", got-failedBefore)
	}

	// Heal the replica and elapse the cool-down: the next picks admit
	// half-open probes, and two successes close the breaker.
	fault.DisarmAll()
	nowNs += int64(2 * time.Hour)
	for i := 0; i < 12 && br.State() != BreakerClosed; i++ {
		predict()
	}
	if got := br.State(); got != BreakerClosed {
		t.Fatalf("breaker state %v after recovery traffic, want closed", got)
	}
	opens, halfOpens, closes := br.counters()
	if opens < 1 || halfOpens < 1 || closes < 1 {
		t.Fatalf("transition counters opens=%d halfOpens=%d closes=%d, want all >= 1", opens, halfOpens, closes)
	}
}

// TestClusterRetryBudgetExhaustion: with every replica failing, retries
// stop at the budget instead of amplifying the outage, and requests
// degrade to the fallback.
func TestClusterRetryBudgetExhaustion(t *testing.T) {
	defer fault.DisarmAll()
	fault.Arm(ReplicaFailpoint(0), fault.Failure{Err: errors.New("injected")})
	fault.Arm(ReplicaFailpoint(1), fault.Failure{Err: errors.New("injected")})

	c, err := New(nil, Config{
		Replicas: 2, Serve: fastServe(), HealthEvery: -1,
		MaxAttempts: 4, MinRetries: 3, RetryBudget: 0.05,
		RetryBackoff: 10 * time.Microsecond,
		// A generous breaker so the budget, not the breaker, is what
		// stops the retries in this test.
		Breaker: BreakerConfig{ConsecutiveFailures: 1 << 30, ErrorRate: 1.1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mustStop(t, c)

	const n = 40
	for i := 0; i < n; i++ {
		resp, err := c.Predict(context.Background(), Request{Script: "x", RequestedMin: 9})
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if !resp.Degraded || resp.Pred.RuntimeMin != 9 {
			t.Fatalf("request %d must degrade to the requested runtime: %+v", i, resp)
		}
	}
	snap := c.Stats()
	if snap.BudgetExhausted == 0 {
		t.Fatalf("40 failing requests with a 5%% budget must exhaust it: %+v", snap)
	}
	// Budget math: retries ≤ MinRetries + ceil(ratio·requests).
	if limit := int64(3) + int64(0.05*float64(n)) + 1; snap.Retries > limit {
		t.Fatalf("retries %d exceed the budget limit %d", snap.Retries, limit)
	}
	if snap.Degraded != n {
		t.Fatalf("degraded %d, want %d", snap.Degraded, n)
	}
}

// TestClusterFullyDegradedFallback: with every replica killed the
// router still answers — from the requested-runtime fallback — and a
// restart restores model serving.
func TestClusterFullyDegradedFallback(t *testing.T) {
	v, _, jobs := trainedViews(t)
	c, err := New(v, Config{Replicas: 2, Serve: fastServe(), HealthEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer mustStop(t, c)

	for id := 0; id < 2; id++ {
		if err := c.Kill(context.Background(), id); err != nil {
			t.Fatalf("kill %d: %v", id, err)
		}
	}
	resp, err := c.Predict(context.Background(), Request{Script: jobs[0].Script, RequestedMin: 77})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Degraded || resp.Pred.RuntimeMin != 77 || resp.FromModel {
		t.Fatalf("fully-killed cluster must serve the fallback: %+v", resp)
	}

	if err := c.Restart(0); err != nil {
		t.Fatal(err)
	}
	want := v.PredictOne(jobs[0].Script)
	resp, err = c.Predict(context.Background(), Request{Script: jobs[0].Script})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.FromModel || resp.Pred != want {
		t.Fatalf("restarted replica must serve the published snapshot: %+v want %+v", resp, want)
	}
	if err := c.Restart(0); err == nil {
		t.Fatal("restarting a live replica must error")
	}
}

// TestClusterSwapNeverMixesBatches extends the PR 5 invariant
// cluster-wide: under concurrent cluster Swaps, every model response
// from any replica equals one snapshot's prediction wholly — never a
// blend, never a third value.
func TestClusterSwapNeverMixesBatches(t *testing.T) {
	v1, v2, jobs := trainedViews(t)
	script := jobs[0].Script
	want1 := v1.PredictOne(script)
	want2 := v2.PredictOne(script)

	c, err := New(v1, Config{
		Replicas: 3, Serve: fastServe(), Policy: ScriptAffinity,
		CacheSize: 64, HealthEvery: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mustStop(t, c)

	stop := make(chan struct{})
	swapDone := make(chan struct{})
	go func() {
		defer close(swapDone)
		views := [2]*prionn.Inference{v1, v2}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := c.Swap(views[i%2]); err != nil {
				t.Errorf("swap: %v", err)
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				resp, err := c.Predict(context.Background(), Request{Script: script, RequestedMin: 5})
				if err != nil {
					t.Errorf("predict: %v", err)
					return
				}
				if resp.Degraded {
					continue // overload shedding mid-swap is legal; values are what matter
				}
				if resp.Pred != want1 && resp.Pred != want2 {
					t.Errorf("prediction %+v matches neither snapshot (%+v / %+v)", resp.Pred, want1, want2)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	<-swapDone
}

// TestClusterHedging: once the latency tracker is warm, an attempt
// stalled past the hedging threshold spawns a second attempt on another
// replica, which answers first.
func TestClusterHedging(t *testing.T) {
	v, _, jobs := trainedViews(t)
	c, err := New(v, Config{
		Replicas: 2, Serve: fastServe(), HealthEvery: -1,
		HedgePercentile: 0.95,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mustStop(t, c)

	ctx := context.Background()
	// Warm the tracker past its recompute threshold so hedgeDelay > 0.
	for i := 0; i < 2*hedgeRecompute; i++ {
		if _, err := c.Predict(ctx, Request{Script: jobs[i%len(jobs)].Script}); err != nil {
			t.Fatal(err)
		}
	}
	if c.lat.hedgeDelay() <= 0 {
		t.Fatal("latency tracker did not warm up")
	}

	defer fault.DisarmAll()
	fault.Arm(ReplicaFailpoint(0), fault.Failure{Sleep: 250 * time.Millisecond})
	for i := 0; i < 8; i++ {
		j := jobs[i%len(jobs)]
		resp, err := c.Predict(ctx, Request{Script: j.Script})
		if err != nil {
			t.Fatal(err)
		}
		if want := v.PredictOne(j.Script); resp.Pred != want {
			t.Fatalf("hedged response %+v != %+v", resp.Pred, want)
		}
	}
	snap := c.Stats()
	if snap.Hedges == 0 || snap.HedgeWins == 0 {
		t.Fatalf("latency injection on replica 0 must trigger winning hedges: %+v", snap)
	}
}

// TestClusterHealthProbesMarkUnhealthy: the active checker takes an
// erroring replica out of rotation and returns it after recovery.
func TestClusterHealthProbesMarkUnhealthy(t *testing.T) {
	v, _, jobs := trainedViews(t)
	defer fault.DisarmAll()

	c, err := New(v, Config{
		Replicas: 2, Serve: fastServe(),
		HealthEvery: 2 * time.Millisecond, HealthTimeout: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mustStop(t, c)

	waitHealth := func(id int, want bool) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for c.replicas[id].healthy.Load() != want {
			if time.Now().After(deadline) {
				t.Fatalf("replica %d health never became %v", id, want)
			}
			time.Sleep(time.Millisecond)
		}
	}

	fault.Arm(ReplicaFailpoint(0), fault.Failure{Err: errors.New("injected")})
	waitHealth(0, false)

	// While unhealthy, replica 0 is skipped without burning retries.
	before := c.Stats()
	for i := 0; i < 6; i++ {
		resp, err := c.Predict(context.Background(), Request{Script: jobs[0].Script})
		if err != nil {
			t.Fatal(err)
		}
		if !resp.FromModel || resp.Replica != 1 {
			t.Fatalf("unhealthy replica must be out of rotation: %+v", resp)
		}
	}
	if got := c.Stats().Retries - before.Retries; got != 0 {
		t.Fatalf("routing around an unhealthy replica consumed %d retries", got)
	}

	fault.DisarmAll()
	waitHealth(0, true)
	if snap := c.Stats(); snap.HealthFlips < 2 {
		t.Fatalf("health flips %d, want >= 2", snap.HealthFlips)
	}
}

// TestClusterLeastLoaded: the policy prefers the replica with fewer
// in-flight dispatches.
func TestClusterLeastLoaded(t *testing.T) {
	c, err := New(nil, Config{Replicas: 3, Serve: fastServe(), Policy: LeastLoaded, HealthEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer mustStop(t, c)

	c.replicas[0].inflight.Add(5)
	c.replicas[2].inflight.Add(2)
	if r := c.pick(0, 0); r == nil || r.id != 1 {
		t.Fatalf("least-loaded picked %+v, want replica 1", r)
	}
	c.replicas[1].inflight.Add(9)
	if r := c.pick(0, 0); r == nil || r.id != 2 {
		t.Fatalf("least-loaded picked %+v, want replica 2", r)
	}
}

// TestClusterCallerContextError: the one case Predict errors — the
// caller's own context dying — must surface that error, counted.
func TestClusterCallerContextError(t *testing.T) {
	defer fault.DisarmAll()
	fault.Arm(ReplicaFailpoint(0), fault.Failure{Sleep: 100 * time.Millisecond})

	c, err := New(nil, Config{Replicas: 1, Serve: fastServe(), HealthEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer mustStop(t, c)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if _, err := c.Predict(ctx, Request{Script: "x"}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want the caller's DeadlineExceeded", err)
	}
	if snap := c.Stats(); snap.CallerCanceled != 1 {
		t.Fatalf("caller-canceled %d, want 1", snap.CallerCanceled)
	}
}

// TestClusterDeadlineDegrades: the cluster's own per-request deadline
// converts a slow replica into a fallback answer, not an error — the
// bounded-latency contract.
func TestClusterDeadlineDegrades(t *testing.T) {
	defer fault.DisarmAll()
	fault.Arm(ReplicaFailpoint(0), fault.Failure{Sleep: 200 * time.Millisecond})

	c, err := New(nil, Config{
		Replicas: 1, Serve: fastServe(), HealthEvery: -1,
		RequestTimeout: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mustStop(t, c)

	resp, err := c.Predict(context.Background(), Request{Script: "x", RequestedMin: 33})
	if err != nil {
		t.Fatalf("deadline must degrade, not error: %v", err)
	}
	if !resp.Degraded || resp.Pred.RuntimeMin != 33 {
		t.Fatalf("want requested-runtime fallback, got %+v", resp)
	}
	if snap := c.Stats(); snap.DeadlineDegraded != 1 {
		t.Fatalf("deadline-degraded %d, want 1", snap.DeadlineDegraded)
	}
}

// TestParsePolicy pins the CLI spellings.
func TestParsePolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Policy
	}{{"round-robin", RoundRobin}, {"least-loaded", LeastLoaded}, {"affinity", ScriptAffinity}} {
		got, err := ParsePolicy(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParsePolicy(%q) = %v, %v", tc.in, got, err)
		}
		if got.String() != tc.in {
			t.Fatalf("Policy(%v).String() = %q, want %q", got, got.String(), tc.in)
		}
	}
	if _, err := ParsePolicy("nope"); err == nil {
		t.Fatal("unknown policy must error")
	}
}

// TestBreakerStateMachine unit-tests the transitions with a fake clock.
func TestBreakerStateMachine(t *testing.T) {
	b := newBreaker(BreakerConfig{ConsecutiveFailures: 2, OpenFor: time.Second, HalfOpenProbes: 2})
	var now int64
	b.nowNs = func() int64 { return now }

	if !b.Allow() {
		t.Fatal("closed breaker must allow")
	}
	b.Record(false)
	if !b.Allow() {
		t.Fatal("one failure must not open")
	}
	b.Record(false)
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state %v after 2 consecutive failures, want open", got)
	}
	if b.Allow() {
		t.Fatal("open breaker inside cool-down must refuse")
	}
	now += int64(2 * time.Second)
	if !b.Allow() {
		t.Fatal("cool-down elapsed: first probe must pass")
	}
	if got := b.State(); got != BreakerHalfOpen {
		t.Fatalf("state %v, want half-open", got)
	}
	if !b.Allow() {
		t.Fatal("second probe slot must pass")
	}
	if b.Allow() {
		t.Fatal("probe slots exhausted: third concurrent probe must refuse")
	}
	b.Record(true)
	b.Record(true)
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state %v after %d probe successes, want closed", got, 2)
	}

	// A half-open probe failure re-opens immediately.
	b.Record(false)
	b.Record(false)
	now += int64(2 * time.Second)
	if !b.Allow() {
		t.Fatal("probe after second cool-down must pass")
	}
	b.Record(false)
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state %v after probe failure, want open", got)
	}
}

// TestBreakerErrorRate: the windowed error-rate threshold trips without
// consecutive failures.
func TestBreakerErrorRate(t *testing.T) {
	b := newBreaker(BreakerConfig{
		ConsecutiveFailures: 1 << 30, // rate only
		ErrorRate:           0.5, MinSamples: 10, OpenFor: time.Second,
	})
	var now int64
	b.nowNs = func() int64 { return now }
	for i := 0; i < 10; i++ {
		b.Record(i%2 == 0) // alternate: never 2 consecutive failures
	}
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state %v at 50%% error rate over 10 samples, want open", got)
	}
}

// TestPredCache pins stamp validity ({version, kernel}) and FIFO
// eviction.
func TestPredCache(t *testing.T) {
	c := newPredCache(2)
	p := func(min int) prionn.Prediction { return prionn.Prediction{RuntimeMin: min} }
	st := func(ver int64, k prionn.KernelKind) cacheStamp { return cacheStamp{version: ver, kernel: k} }
	f0 := st(0, prionn.KernelF32)
	c.put(1, f0, p(1))
	c.put(2, f0, p(2))
	if got, ok := c.get(1, f0); !ok || got != p(1) {
		t.Fatalf("get(1) = %+v, %v", got, ok)
	}
	if _, ok := c.get(1, st(9, prionn.KernelF32)); ok {
		t.Fatal("wrong-version get must miss")
	}
	if _, ok := c.get(1, st(0, prionn.KernelInt8)); ok {
		t.Fatal("same version, different kernel must miss: int8 and f32 answers are not interchangeable")
	}
	c.put(3, f0, p(3)) // evicts key 1 (FIFO)
	if _, ok := c.get(1, f0); ok {
		t.Fatal("FIFO eviction must drop the oldest key")
	}
	if _, ok := c.get(3, f0); !ok {
		t.Fatal("newest key must survive eviction")
	}
	q5 := st(5, prionn.KernelInt8)
	c.put(9, q5, p(9)) // stamp mismatch: dropped
	if _, ok := c.get(9, q5); ok {
		t.Fatal("put under a non-current stamp must be dropped")
	}
	c.invalidate(q5)
	if c.size() != 0 {
		t.Fatalf("invalidate left %d entries", c.size())
	}
	c.put(9, q5, p(9))
	if got, ok := c.get(9, q5); !ok || got != p(9) {
		t.Fatalf("post-invalidate put/get = %+v, %v", got, ok)
	}
	var nilCache *predCache
	if _, ok := nilCache.get(1, f0); ok {
		t.Fatal("nil cache must miss")
	}
	nilCache.put(1, f0, p(1)) // must not panic
	nilCache.invalidate(f0)
}

// TestBackoff pins the jittered-exponential bounds.
func TestBackoff(t *testing.T) {
	base, max := time.Millisecond, 50*time.Millisecond
	for attempt := 1; attempt <= 10; attempt++ {
		for _, j := range []float64{0, 0.5, 0.999999} {
			d := backoff(base, attempt, j, max)
			lo := base << uint(attempt-1) / 2
			if lo > max/2 {
				lo = max / 2
			}
			if d < lo || d > max {
				t.Fatalf("backoff(attempt=%d, jitter=%v) = %v outside [%v, %v]", attempt, j, d, lo, max)
			}
		}
	}
	// Overflow-proof: a huge attempt count caps at max.
	if d := backoff(base, 60, 0.5, max); d > max {
		t.Fatalf("overflowed backoff %v", d)
	}
}

// TestPercentile pins nearest-rank percentile math.
func TestPercentile(t *testing.T) {
	if got := percentile(nil, 0.5); got != 0 {
		t.Fatalf("empty percentile = %d", got)
	}
	ns := []int64{50, 10, 40, 20, 30}
	if got := percentile(ns, 0.5); got != 30 {
		t.Fatalf("p50 = %d, want 30", got)
	}
	if got := percentile(ns, 0.99); got != 40 {
		t.Fatalf("p99 = %d, want 40 (nearest rank below)", got)
	}
	if got := percentile(ns, 1); got != 50 {
		t.Fatalf("p100 = %d, want 50", got)
	}
	if got := percentile(ns, 0); got != 10 {
		t.Fatalf("p0 = %d, want 10", got)
	}
}

// TestRetryBudgetMath pins the floor + ratio accounting.
func TestRetryBudgetMath(t *testing.T) {
	b := retryBudget{ratio: 0.5, minRetries: 2}
	if !b.allow() || !b.allow() {
		t.Fatal("floor retries must be allowed with zero requests")
	}
	if b.allow() {
		t.Fatal("third retry exceeds the floor")
	}
	for i := 0; i < 4; i++ {
		b.request()
	}
	if !b.allow() || !b.allow() {
		t.Fatal("4 requests at ratio 0.5 fund 2 more retries")
	}
	if b.allow() {
		t.Fatal("budget must be exhausted again")
	}
	if b.exhausted.Load() != 2 {
		t.Fatalf("exhausted %d, want 2", b.exhausted.Load())
	}
}
