package cluster

import (
	"context"
	"math"
	"testing"
)

// benchPipelineCanary prices the canary stage's request overhead: the
// same uncached 2-replica dispatch path with and without an active
// canary claiming its traffic fraction (each claimed request pays a
// canary forward plus a baseline mirror for disagreement scoring).
// BENCH_pipeline.json derives the on/off overhead ratio from the pair.
func benchPipelineCanary(b *testing.B, canary bool) {
	v, _ := benchTrainedView(b)
	scripts := benchScripts(b)
	c, err := New(v, Config{
		Replicas: 2, Policy: RoundRobin,
		Serve: benchServeConfig(), HealthEvery: -1,
	})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	if canary {
		// Thresholds parked at infinity: the canary stays Running for
		// the whole measurement instead of promoting or rolling back.
		if err := c.StartCanary(v, CanaryConfig{
			Frac:            0.2,
			MinObservations: math.MaxInt32,
			PromoteAfter:    math.MaxInt32,
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	runClients(b.N, benchClients, func(i int) {
		resp, err := c.Predict(ctx, Request{Script: scripts[i%len(scripts)]})
		if err != nil {
			b.Error(err)
		} else if resp.Degraded {
			b.Error("degraded response under zero faults")
		}
	})
	b.StopTimer()
	snap := c.Stats()
	if err := c.Stop(ctx); err != nil {
		b.Fatal(err)
	}
	if canary {
		b.ReportMetric(float64(snap.CanaryRequests), "canary-reqs")
	}
}

func BenchmarkPipelineCanaryOff(b *testing.B) { benchPipelineCanary(b, false) }

func BenchmarkPipelineCanaryOn(b *testing.B) { benchPipelineCanary(b, true) }
