package cluster

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"prionn/internal/serve"
)

// clusterStats is the router's atomic counter block.
type clusterStats struct {
	requests         atomic.Int64 // Predict calls
	retries          atomic.Int64 // retry attempts dispatched
	hedges           atomic.Int64 // hedged second attempts launched
	hedgeWins        atomic.Int64 // hedges that answered before the primary
	degraded         atomic.Int64 // requests answered from the fallback ladder
	deadlineDegraded atomic.Int64 // degradations caused by the per-request deadline
	callerCanceled   atomic.Int64 // requests whose caller context died
	routeFaults      atomic.Int64 // injected routing failures (FailpointRoute)
	cacheMisses      atomic.Int64 // cache lookups that missed (cache enabled only)
	swaps            atomic.Int64 // cluster-wide snapshot publications
	healthFlips      atomic.Int64 // health state transitions observed by the prober
	canaryStarts     atomic.Int64 // canary deployments started
	canaryPromotions atomic.Int64 // canaries promoted to full swap
	canaryRollbacks  atomic.Int64 // canaries stopped without promotion
	canaryRequests   atomic.Int64 // requests claimed by the canary stage
}

// ReplicaSnapshot is one replica's point-in-time state as /stats
// reports it. Serve counters include active health probes (probes ride
// the normal serve path by design).
type ReplicaSnapshot struct {
	ID      int    `json:"id"`
	Healthy bool   `json:"healthy"`
	Killed  bool   `json:"killed"`
	Breaker string `json:"breaker"`

	BreakerOpens     int64 `json:"breaker_opens"`
	BreakerHalfOpens int64 `json:"breaker_half_opens"`
	BreakerCloses    int64 `json:"breaker_closes"`

	Inflight   int64 `json:"inflight"`
	Dispatched int64 `json:"dispatched"`
	Failed     int64 `json:"failed"`

	CacheHits int64 `json:"cache_hits"`
	CacheSize int   `json:"cache_size"`

	Serve serve.Snapshot `json:"serve"`
}

// Snapshot is the cluster-wide point-in-time counter copy. Individual
// loads are atomic; the copy as a whole is not a consistent cut, which
// is fine for monitoring.
type Snapshot struct {
	// Kernel is the published snapshot's serving kernel kind ("f32" or
	// "int8"; the nil fallback-only view reports "f32").
	Kernel string `json:"kernel"`

	Requests         int64 `json:"requests"`
	Retries          int64 `json:"retries"`
	BudgetExhausted  int64 `json:"budget_exhausted"`
	Hedges           int64 `json:"hedges"`
	HedgeWins        int64 `json:"hedge_wins"`
	Degraded         int64 `json:"degraded"`
	DeadlineDegraded int64 `json:"deadline_degraded"`
	CallerCanceled   int64 `json:"caller_canceled"`
	RouteFaults      int64 `json:"route_faults"`
	Swaps            int64 `json:"swaps"`
	HealthFlips      int64 `json:"health_flips"`

	CacheHits    int64   `json:"cache_hits"`
	CacheMisses  int64   `json:"cache_misses"`
	CacheHitRate float64 `json:"cache_hit_rate"`

	// Canary is the canary stage's phase and counters (phase "none"
	// when no canary is deployed); the lifetime counters below survive
	// individual canary deployments.
	Canary           CanaryStatus `json:"canary"`
	CanaryStarts     int64        `json:"canary_starts"`
	CanaryPromotions int64        `json:"canary_promotions"`
	CanaryRollbacks  int64        `json:"canary_rollbacks"`
	CanaryRequests   int64        `json:"canary_requests"`

	// P50Ns/P99Ns are dispatch-latency percentiles over the recent
	// latency window (model-path attempts only; cache hits don't count).
	P50Ns int64 `json:"p50_ns"`
	P99Ns int64 `json:"p99_ns"`

	Replicas []ReplicaSnapshot `json:"replicas"`
}

// Stats returns a point-in-time copy of the cluster counters, including
// one ReplicaSnapshot per replica.
func (c *Cluster) Stats() Snapshot {
	var out Snapshot
	out.Kernel = string(viewKernel(c.view.Load()))
	out.Requests = c.st.requests.Load()
	out.Retries = c.st.retries.Load()
	out.BudgetExhausted = c.budget.exhausted.Load()
	out.Hedges = c.st.hedges.Load()
	out.HedgeWins = c.st.hedgeWins.Load()
	out.Degraded = c.st.degraded.Load()
	out.DeadlineDegraded = c.st.deadlineDegraded.Load()
	out.CallerCanceled = c.st.callerCanceled.Load()
	out.RouteFaults = c.st.routeFaults.Load()
	out.Swaps = c.st.swaps.Load()
	out.HealthFlips = c.st.healthFlips.Load()
	out.CacheMisses = c.st.cacheMisses.Load()
	out.Canary = c.CanaryStatus()
	out.CanaryStarts = c.st.canaryStarts.Load()
	out.CanaryPromotions = c.st.canaryPromotions.Load()
	out.CanaryRollbacks = c.st.canaryRollbacks.Load()
	out.CanaryRequests = c.st.canaryRequests.Load()
	out.P50Ns = c.lat.percentileNs(0.50)
	out.P99Ns = c.lat.percentileNs(0.99)
	for _, r := range c.replicas {
		opens, halfOpens, closes := r.br.counters()
		rs := ReplicaSnapshot{
			ID:               r.id,
			Healthy:          r.healthy.Load(),
			Killed:           r.killed.Load(),
			Breaker:          r.br.State().String(),
			BreakerOpens:     opens,
			BreakerHalfOpens: halfOpens,
			BreakerCloses:    closes,
			Inflight:         r.inflight.Load(),
			Dispatched:       r.dispatched.Load(),
			Failed:           r.failed.Load(),
			CacheHits:        r.cacheHits.Load(),
			CacheSize:        r.cache.size(),
		}
		if srv := r.srv.Load(); srv != nil {
			rs.Serve = srv.Stats()
		}
		out.CacheHits += rs.CacheHits
		out.Replicas = append(out.Replicas, rs)
	}
	if lookups := out.CacheHits + out.CacheMisses; lookups > 0 {
		out.CacheHitRate = float64(out.CacheHits) / float64(lookups)
	}
	return out
}

// String renders the snapshot as the multi-line block `prionnd -stats`
// prints in cluster mode.
func (sn Snapshot) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cluster [%s]: %d requests, %d retries (%d budget-exhausted), %d hedges (%d won), %d degraded (%d deadline), %d swaps\n",
		sn.Kernel, sn.Requests, sn.Retries, sn.BudgetExhausted, sn.Hedges, sn.HedgeWins, sn.Degraded, sn.DeadlineDegraded, sn.Swaps)
	if sn.CacheHits+sn.CacheMisses > 0 {
		fmt.Fprintf(&b, "cache: %d hits, %d misses (%.1f%% hit rate)\n",
			sn.CacheHits, sn.CacheMisses, 100*sn.CacheHitRate)
	}
	if sn.CanaryStarts > 0 {
		fmt.Fprintf(&b, "canary [%s]: %d observations (%d errors, %d disagreements); lifetime %d starts, %d promoted, %d rolled back, %d requests\n",
			sn.Canary.Phase, sn.Canary.Observations, sn.Canary.Errors, sn.Canary.Disagreements,
			sn.CanaryStarts, sn.CanaryPromotions, sn.CanaryRollbacks, sn.CanaryRequests)
	}
	if sn.P50Ns > 0 {
		fmt.Fprintf(&b, "dispatch latency: p50 %v, p99 %v\n",
			time.Duration(sn.P50Ns), time.Duration(sn.P99Ns))
	}
	for _, r := range sn.Replicas {
		state := r.Breaker
		if r.Killed {
			state = "killed"
		} else if !r.Healthy {
			state += ",unhealthy"
		}
		fmt.Fprintf(&b, "replica %d [%s]: %d dispatched, %d failed, %d cache hits; opens %d, closes %d\n",
			r.ID, state, r.Dispatched, r.Failed, r.CacheHits, r.BreakerOpens, r.BreakerCloses)
	}
	return b.String()
}
