package pilot

import (
	"context"
	"testing"

	"prionn/internal/prionn"
	"prionn/internal/serve"
)

// BenchmarkPipelineRetrain measures one full pipeline event — warm-
// start retrain, shadow evaluation, deploy decision — per iteration
// (checkpointing disabled so disk noise stays out of the number). This
// is the latency a completed-job stream pays every RetrainEvery jobs.
func BenchmarkPipelineRetrain(b *testing.B) {
	jobs := pipelineJobs(200)
	cfg := tinyModel()
	srv := serve.New(nil, fastServe())
	defer func() {
		if err := srv.Stop(context.Background()); err != nil {
			b.Fatal(err)
		}
	}()
	pl, err := New(Config{
		Model:        cfg,
		ShadowWindow: 32,
		Gate:         GateConfig{MaxMAPEIncrease: 1e9, MaxAccuracyDrop: 1e9, MaxPearsonDrop: 1e9},
	}, &DirectDeployer{Srv: srv})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	idx := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for k := 0; k < cfg.RetrainEvery; k++ {
			if err := pl.Observe(ctx, jobs[idx%len(jobs)]); err != nil {
				b.Fatal(err)
			}
			idx++
		}
	}
}

// BenchmarkPipelineShadowEval measures one shadow evaluation — clone
// both views, replay a 64-job window through each, score every head,
// gate — per iteration; 1e9/ns_op is the shadow-eval throughput.
func BenchmarkPipelineShadowEval(b *testing.B) {
	jobs := pipelineJobs(160)
	cfg := tinyModel()
	scripts := make([]string, 80)
	for i := range scripts {
		scripts[i] = jobs[i].Script
	}
	p, err := prionn.New(cfg, scripts)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := p.Train(jobs[:80]); err != nil {
		b.Fatal(err)
	}
	baseline, err := p.Snapshot()
	if err != nil {
		b.Fatal(err)
	}
	if _, err := p.Train(jobs[40:120]); err != nil {
		b.Fatal(err)
	}
	candidate, err := p.Snapshot()
	if err != nil {
		b.Fatal(err)
	}
	window := jobs[80:144]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Evaluate(baseline, candidate, window, GateConfig{}); err != nil {
			b.Fatal(err)
		}
	}
}
