package pilot

import (
	"fmt"

	"prionn/internal/metrics"
	"prionn/internal/prionn"
	"prionn/internal/trace"
)

// Shadow evaluation is the pipeline's first gate (the workflow-
// prediction survey's lesson: never trust a retrain blindly). The last
// N completed jobs — jobs whose true runtime and IO are now known —
// are replayed through the currently-served view and the candidate
// view, each head is scored against the truth, and the candidate is
// rejected if any head regresses beyond the configured thresholds.

// HeadMetrics scores one view's predictions on a replay window,
// per head, against the jobs' actual outcomes.
type HeadMetrics struct {
	// RuntimeMAPE / RuntimeR score the runtime head's predicted minutes
	// against actual minutes (MAPE over nonzero truths; Pearson-r over
	// finite pairs).
	RuntimeMAPE float64 `json:"runtime_mape"`
	RuntimeR    float64 `json:"runtime_r"`
	// RuntimeAcc is the runtime head's class accuracy: predicted
	// minutes and actual minutes mapped through the view's bin layout.
	RuntimeAcc float64 `json:"runtime_acc"`
	// ReadMAPE/WriteMAPE and ReadAcc/WriteAcc score the IO heads the
	// same way (bytes; IO bin classes).
	ReadMAPE  float64 `json:"read_mape"`
	ReadAcc   float64 `json:"read_acc"`
	WriteMAPE float64 `json:"write_mape"`
	WriteAcc  float64 `json:"write_acc"`
	// N is the number of replayed (non-canceled) jobs.
	N int `json:"n"`
}

// score replays window through view and computes its HeadMetrics. The
// view must be private to the caller (forwards mutate layer caches).
func score(view *prionn.Inference, window []trace.Job) HeadMetrics {
	texts := make([]string, 0, len(window))
	jobs := make([]trace.Job, 0, len(window))
	for _, j := range window {
		if j.Canceled {
			continue
		}
		texts = append(texts, view.InputText(j.Script, j.InputDeck))
		jobs = append(jobs, j)
	}
	var m HeadMetrics
	m.N = len(jobs)
	if m.N == 0 {
		return m
	}
	preds := view.PredictMapped(view.MapTexts(texts))

	n := len(jobs)
	rt := make([]float64, n) // runtime truth, minutes
	rp := make([]float64, n)
	rct := make([]int, n) // runtime class truth
	rcp := make([]int, n)
	rdt := make([]float64, n) // read bytes
	rdp := make([]float64, n)
	rdct := make([]int, n)
	rdcp := make([]int, n)
	wrt := make([]float64, n) // write bytes
	wrp := make([]float64, n)
	wrct := make([]int, n)
	wrcp := make([]int, n)
	for i, j := range jobs {
		rt[i] = float64(j.ActualMin())
		rp[i] = float64(preds[i].RuntimeMin)
		rct[i] = view.RuntimeClass(j.ActualMin())
		rcp[i] = view.RuntimeClass(preds[i].RuntimeMin)
		rdt[i] = float64(j.ReadBytes)
		rdp[i] = preds[i].ReadBytes
		rdct[i] = view.IOClass(float64(j.ReadBytes))
		rdcp[i] = view.IOClass(preds[i].ReadBytes)
		wrt[i] = float64(j.WriteBytes)
		wrp[i] = preds[i].WriteBytes
		wrct[i] = view.IOClass(float64(j.WriteBytes))
		wrcp[i] = view.IOClass(preds[i].WriteBytes)
	}
	m.RuntimeMAPE, _ = metrics.MAPE(rt, rp)
	m.RuntimeR, _ = metrics.PearsonR(rt, rp)
	m.RuntimeAcc, _ = metrics.ClassAccuracy(rct, rcp)
	m.ReadMAPE, _ = metrics.MAPE(rdt, rdp)
	m.ReadAcc, _ = metrics.ClassAccuracy(rdct, rdcp)
	m.WriteMAPE, _ = metrics.MAPE(wrt, wrp)
	m.WriteAcc, _ = metrics.ClassAccuracy(wrct, wrcp)
	return m
}

// GateConfig sets the shadow gate's regression thresholds. The zero
// value of every field gets a sensible default from withDefaults.
type GateConfig struct {
	// MaxMAPEIncrease rejects a candidate whose per-head MAPE exceeds
	// the baseline's by more than this absolute amount (default 0.10).
	MaxMAPEIncrease float64
	// MaxAccuracyDrop rejects a candidate whose per-head class accuracy
	// falls below the baseline's by more than this (default 0.05).
	MaxAccuracyDrop float64
	// MaxPearsonDrop rejects a candidate whose runtime Pearson-r falls
	// below the baseline's by more than this (default 0.10).
	MaxPearsonDrop float64
	// MinSamples is the smallest replay window the gate will judge on;
	// below it (including an empty or all-canceled window) the gate
	// accepts trivially — "no evidence of regression" — and says so in
	// the report (default 8).
	MinSamples int
}

// withDefaults fills zero fields.
func (g GateConfig) withDefaults() GateConfig {
	if g.MaxMAPEIncrease <= 0 {
		g.MaxMAPEIncrease = 0.10
	}
	if g.MaxAccuracyDrop <= 0 {
		g.MaxAccuracyDrop = 0.05
	}
	if g.MaxPearsonDrop <= 0 {
		g.MaxPearsonDrop = 0.10
	}
	if g.MinSamples <= 0 {
		g.MinSamples = 8
	}
	return g
}

// GateReport is the shadow gate's decision with its evidence.
type GateReport struct {
	Accept bool `json:"accept"`
	// Trivial is true when the gate accepted without judging (no
	// baseline view, or fewer than MinSamples replayable jobs).
	Trivial bool `json:"trivial"`
	// Reasons lists each threshold the candidate tripped (empty on
	// accept).
	Reasons   []string    `json:"reasons,omitempty"`
	Baseline  HeadMetrics `json:"baseline"`
	Candidate HeadMetrics `json:"candidate"`
}

// Evaluate replays window through the baseline and candidate views and
// gates the candidate. Both views are cloned before any forward pass —
// Inference views are goroutine-confined, and the baseline is
// typically the live serving view — so Evaluate never races the
// serving loops. A nil or untrained baseline means there is nothing to
// regress against: the candidate is accepted trivially.
func Evaluate(baseline, candidate *prionn.Inference, window []trace.Job, cfg GateConfig) (GateReport, error) {
	cfg = cfg.withDefaults()
	if candidate == nil || !candidate.Trained() {
		return GateReport{}, fmt.Errorf("pilot: shadow candidate must be a trained view")
	}
	if baseline == nil || !baseline.Trained() {
		return GateReport{Accept: true, Trivial: true}, nil
	}
	b, err := baseline.Clone()
	if err != nil {
		return GateReport{}, fmt.Errorf("pilot: cloning baseline for shadow eval: %w", err)
	}
	c, err := candidate.Clone()
	if err != nil {
		return GateReport{}, fmt.Errorf("pilot: cloning candidate for shadow eval: %w", err)
	}
	rep := GateReport{
		Baseline:  score(b, window),
		Candidate: score(c, window),
	}
	if rep.Candidate.N < cfg.MinSamples {
		rep.Accept, rep.Trivial = true, true
		return rep, nil
	}
	rep.Reasons = decide(rep.Baseline, rep.Candidate, cfg)
	rep.Accept = len(rep.Reasons) == 0
	return rep, nil
}

// decide compares candidate metrics to baseline metrics against the
// thresholds. All metrics helpers return finite values by contract
// (NaN/Inf predictions are skipped pairwise inside MAPE/PearsonR), so
// these comparisons cannot be poisoned into vacuous truth by a broken
// head — a head that emits only non-finite values scores MAPE 0 on
// zero pairs, and the class-accuracy comparison still catches it.
func decide(base, cand HeadMetrics, cfg GateConfig) []string {
	var reasons []string
	chkMAPE := func(head string, b, c float64) {
		if c-b > cfg.MaxMAPEIncrease {
			reasons = append(reasons, fmt.Sprintf("%s MAPE %.4f exceeds baseline %.4f by more than %.4f", head, c, b, cfg.MaxMAPEIncrease))
		}
	}
	chkAcc := func(head string, b, c float64) {
		if b-c > cfg.MaxAccuracyDrop {
			reasons = append(reasons, fmt.Sprintf("%s class accuracy %.4f below baseline %.4f by more than %.4f", head, c, b, cfg.MaxAccuracyDrop))
		}
	}
	chkMAPE("runtime", base.RuntimeMAPE, cand.RuntimeMAPE)
	chkMAPE("read", base.ReadMAPE, cand.ReadMAPE)
	chkMAPE("write", base.WriteMAPE, cand.WriteMAPE)
	chkAcc("runtime", base.RuntimeAcc, cand.RuntimeAcc)
	chkAcc("read", base.ReadAcc, cand.ReadAcc)
	chkAcc("write", base.WriteAcc, cand.WriteAcc)
	if base.RuntimeR-cand.RuntimeR > cfg.MaxPearsonDrop {
		reasons = append(reasons, fmt.Sprintf("runtime Pearson-r %.4f below baseline %.4f by more than %.4f", cand.RuntimeR, base.RuntimeR, cfg.MaxPearsonDrop))
	}
	return reasons
}
