package pilot

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"prionn/internal/cluster"
	"prionn/internal/fault"
	"prionn/internal/prionn"
	"prionn/internal/serve"
	"prionn/internal/trace"
)

// tinyModel is the pipeline-test model config: small enough to retrain
// in milliseconds, real enough to produce distinct snapshots.
func tinyModel() prionn.Config {
	cfg := prionn.TinyConfig()
	cfg.RetrainEvery = 25
	cfg.TrainWindow = 40
	cfg.Epochs = 1
	return cfg
}

func pipelineJobs(n int) []trace.Job {
	return trace.Completed(trace.Generate(trace.Config{Seed: 11, Jobs: n}))
}

func fastServe() serve.Config {
	return serve.Config{MaxBatch: 8, MaxDelay: 200 * time.Microsecond, QueueDepth: 64}
}

// TestPipelineEndToEnd drives the full loop on a live cluster under
// concurrent traffic (run with -race): completed jobs stream into the
// pilot, retraining fires on cadence, candidates pass the shadow gate,
// the canary takes its traffic fraction, and promotion publishes the
// candidate atomically — after which every model answer comes from it.
func TestPipelineEndToEnd(t *testing.T) {
	jobs := pipelineJobs(200)
	c, err := cluster.New(nil, cluster.Config{
		Replicas: 2, Serve: fastServe(), HealthEvery: -1, CacheSize: 32,
		Policy: cluster.ScriptAffinity,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := c.Stop(context.Background()); err != nil {
			t.Errorf("cluster stop: %v", err)
		}
	}()

	pl, err := New(Config{
		Model:          tinyModel(),
		ShadowWindow:   32,
		Canary:         cluster.CanaryConfig{Frac: 0.5, MinObservations: 4, PromoteAfter: 8, MaxErrorRate: 1, MaxDisagreeRate: 1},
		CheckpointPath: filepath.Join(t.TempDir(), "pilot.ckpt"),
	}, c)
	if err != nil {
		t.Fatal(err)
	}

	// Background traffic: concurrent Predicts race the canary routing,
	// the swap, and the cache — the -race proof that the pipeline's
	// publication path is clean.
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ctx.Err() == nil; i++ {
				req := cluster.Request{Script: jobs[(g*7+i)%16].Script, RequestedMin: 30}
				if _, err := c.Predict(ctx, req); err != nil && ctx.Err() == nil {
					t.Errorf("background predict: %v", err)
					return
				}
			}
		}(g)
	}

	// The pilot goroutine: observe the completed-job stream, ticking the
	// canary state machine along.
	for _, j := range jobs {
		if err := pl.Observe(context.Background(), j); err != nil {
			t.Fatal(err)
		}
		if err := pl.Tick(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	// Drain the last canary (it needs traffic to meet its budget).
	for i := 0; i < 200 && pl.Status().Phase == "canarying"; i++ {
		time.Sleep(2 * time.Millisecond)
		if err := pl.Tick(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	cancel()
	wg.Wait()

	st := pl.Status()
	if st.TrainedThisRun == 0 {
		t.Fatal("pipeline never trained")
	}
	if st.CanaryStarts == 0 {
		t.Fatalf("pipeline never deployed a canary: %+v", st)
	}
	if st.CanaryPromotions == 0 {
		t.Fatalf("pipeline never promoted: %+v", st)
	}
	sn := c.Stats()
	if sn.Swaps == 0 {
		t.Fatal("no cluster-wide swap happened")
	}
	// The published view answers from the model now.
	resp, err := c.Predict(context.Background(), cluster.Request{Script: jobs[0].Script, RequestedMin: 30})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.FromModel {
		t.Fatalf("post-promotion answer not from the model: %+v", resp)
	}
	if want := c.View().PredictOne(jobs[0].Script); resp.Pred != want {
		t.Fatalf("post-promotion answer %+v, want published view's %+v", resp.Pred, want)
	}
}

// TestPilotRestartFromEveryFailpoint kills the pilot at each pipeline
// stage boundary during event 2 and restarts it over the same stream
// (ResumeReplay). The restarted pilot must resume from its checkpoint —
// training strictly fewer events than the lifetime counter — and end in
// a model byte-identical to an uninterrupted run's.
func TestPilotRestartFromEveryFailpoint(t *testing.T) {
	jobs := pipelineJobs(200)

	run := func(t *testing.T, path string, resume bool) (*Pilot, error) {
		t.Helper()
		srv := serve.New(nil, fastServe())
		t.Cleanup(func() {
			if err := srv.Stop(context.Background()); err != nil {
				t.Errorf("serve stop: %v", err)
			}
		})
		pl, err := New(Config{
			Model:        tinyModel(),
			ShadowWindow: 32,
			// A gate this loose accepts every candidate, so every event
			// reaches the canary stage and FailpointCanary fires on
			// schedule.
			Gate:           GateConfig{MaxMAPEIncrease: 1e9, MaxAccuracyDrop: 1e9, MaxPearsonDrop: 1e9},
			CheckpointPath: path,
			ResumeReplay:   resume,
		}, &DirectDeployer{Srv: srv})
		if err != nil {
			return nil, err
		}
		for _, j := range jobs {
			if err := pl.Observe(context.Background(), j); err != nil {
				return pl, err
			}
		}
		return pl, nil
	}

	// Uninterrupted reference.
	refPath := filepath.Join(t.TempDir(), "ref.ckpt")
	ref, err := run(t, refPath, false)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Events() < 3 {
		t.Fatalf("trace too short: %d events", ref.Events())
	}
	refBytes, err := os.ReadFile(refPath)
	if err != nil {
		t.Fatal(err)
	}

	for _, fp := range []string{FailpointRetrain, FailpointSave, FailpointShadow, FailpointCanary} {
		t.Run(fp, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "pilot.ckpt")
			boom := errors.New("killed at " + fp)
			disarm := fault.Arm(fp, fault.Failure{Err: boom, After: 1})
			_, err := run(t, path, false)
			disarm()
			if !errors.Is(err, boom) {
				t.Fatalf("interrupted run returned %v, want the armed kill", err)
			}

			pl, err := run(t, path, true)
			if err != nil {
				t.Fatal(err)
			}
			st := pl.Status()
			if st.Events != int64(ref.Events()) {
				t.Fatalf("restart ended at event %d, want %d", st.Events, ref.Events())
			}
			if st.ReplayedEvents == 0 {
				t.Fatalf("restart replayed no events — it retrained from scratch: %+v", st)
			}
			if st.TrainedThisRun >= st.Events {
				t.Fatalf("restart trained %d of %d events — nothing resumed: %+v", st.TrainedThisRun, st.Events, st)
			}
			got, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, refBytes) {
				t.Fatal("restarted pilot's final checkpoint differs bitwise from the uninterrupted run's")
			}
		})
	}
}

// TestPilotShadowRejectsRegression feeds the pipeline a deliberately
// regressed candidate — a view trained on mislabeled jobs — and
// asserts the shadow gate rejects it, so it never reaches the canary
// stage, let alone non-canary traffic.
func TestPilotShadowRejectsRegression(t *testing.T) {
	jobs := pipelineJobs(160)
	cfg := tinyModel()

	// Baseline: trained on honest labels.
	scripts := make([]string, 80)
	for i := 0; i < 80; i++ {
		scripts[i] = jobs[i].Script
	}
	pGood, err := prionn.New(cfg, scripts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pGood.Train(jobs[:80]); err != nil {
		t.Fatal(err)
	}
	baseline, err := pGood.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	// Candidate: same scripts, garbage labels (every outcome shifted to
	// a constant far from the truth).
	bad := append([]trace.Job(nil), jobs[:80]...)
	for i := range bad {
		bad[i].ActualSec = 1       // everything "ran" one second
		bad[i].ReadBytes = 1 << 40 // and "read" a terabyte
		bad[i].WriteBytes = 1 << 40
	}
	pBad, err := prionn.New(cfg, scripts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pBad.Train(bad); err != nil {
		t.Fatal(err)
	}
	regressed, err := pBad.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	window := jobs[80:144]
	rep, err := Evaluate(baseline, regressed, window, GateConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Accept {
		t.Fatalf("regressed candidate accepted: baseline %+v candidate %+v", rep.Baseline, rep.Candidate)
	}
	if len(rep.Reasons) == 0 {
		t.Fatal("rejection carries no reasons")
	}
	// Sanity: the honest candidate passes against itself.
	rep, err = Evaluate(baseline, baseline, window, GateConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Accept || rep.Trivial {
		t.Fatalf("self-evaluation rejected: %+v", rep)
	}
}

// TestEvaluateEdgeWindows pins the gate's trivial-accept contract: an
// empty replay window, an all-canceled window, and a sub-MinSamples
// window each accept trivially (no evidence of regression) instead of
// erroring or rejecting.
func TestEvaluateEdgeWindows(t *testing.T) {
	jobs := pipelineJobs(120)
	cfg := tinyModel()
	scripts := make([]string, 60)
	for i := range scripts {
		scripts[i] = jobs[i].Script
	}
	p, err := prionn.New(cfg, scripts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Train(jobs[:60]); err != nil {
		t.Fatal(err)
	}
	v, err := p.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	canceled := append([]trace.Job(nil), jobs[:20]...)
	for i := range canceled {
		canceled[i].Canceled = true
	}
	cases := []struct {
		name   string
		window []trace.Job
	}{
		{"empty", nil},
		{"all-canceled", canceled},
		{"below-min-samples", jobs[60:63]},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep, err := Evaluate(v, v, tc.window, GateConfig{MinSamples: 8})
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Accept || !rep.Trivial {
				t.Fatalf("window %q: accept=%v trivial=%v, want trivial accept", tc.name, rep.Accept, rep.Trivial)
			}
		})
	}

	// No baseline (cold cluster): trivial accept too.
	rep, err := Evaluate(nil, v, jobs[60:120], GateConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Accept || !rep.Trivial {
		t.Fatalf("nil baseline: accept=%v trivial=%v, want trivial accept", rep.Accept, rep.Trivial)
	}
	// A nil/untrained candidate is a programming error, not a gate call.
	if _, err := Evaluate(v, nil, jobs[60:120], GateConfig{}); err == nil {
		t.Fatal("nil candidate accepted")
	}
}

// TestDecideNaNNeutral pins the gate against metric poisoning: head
// metrics are finite by the metrics package's contract, but even a
// hand-built NaN must not flip a rejection into an acceptance through
// vacuous comparison — NaN comparisons are false, so a NaN candidate
// metric reads as "no regression evidence on this head" and the other
// heads still decide.
func TestDecideNaNNeutral(t *testing.T) {
	nan := func() float64 { var z float64; return 0 / (z + 0) }()
	base := HeadMetrics{RuntimeMAPE: 0.2, RuntimeAcc: 0.9, RuntimeR: 0.8, N: 64}
	cand := HeadMetrics{RuntimeMAPE: nan, RuntimeAcc: 0.2, RuntimeR: nan, N: 64}
	reasons := decide(base, cand, GateConfig{}.withDefaults())
	if len(reasons) == 0 {
		t.Fatal("NaN metrics suppressed a real class-accuracy regression")
	}
}
