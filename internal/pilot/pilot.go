// Package pilot closes the paper's §2.3 online-learning loop: a
// trainer daemon ingests completed jobs as a stream, warm-start
// retrains on a cadence (the same window logic as the offline
// RunOnlineCheckpointed emulation, with the same crash-safe checkpoint
// frames), and deploys each new model through a gated pipeline —
//
//	retrain → checkpoint → shadow-eval → canary → atomic swap
//
// A candidate snapshot must first survive shadow evaluation (replay
// the last ShadowWindow completed jobs through the served view and the
// candidate, reject per-head regressions; see shadow.go), then a
// canary stage (a fraction of live traffic with auto-rollback;
// internal/cluster's canary route), before the all-or-nothing Swap
// publishes it cluster-wide. A pilot killed at any stage restarts from
// its checkpoint and continues without retraining from scratch.
//
// Confinement: Observe and Tick must be called from a single
// goroutine — the pilot owns a mutating Predictor, exactly like the
// serve loop owns its Inference view. Status is safe from any
// goroutine (it reads only atomics).
package pilot

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"sync/atomic"

	"prionn/internal/cluster"
	"prionn/internal/fault"
	"prionn/internal/prionn"
	"prionn/internal/serve"
	"prionn/internal/trace"
)

// Failpoint names compiled into the pipeline's stage boundaries; the
// restart tests arm them to kill the pilot between any two stages.
const (
	// FailpointRetrain fires before each training event's TrainCtx.
	FailpointRetrain = "pilot/retrain"
	// FailpointSave fires before each post-train checkpoint write.
	FailpointSave = "pilot/save"
	// FailpointShadow fires before each shadow evaluation.
	FailpointShadow = "pilot/shadow"
	// FailpointCanary fires before each canary deployment.
	FailpointCanary = "pilot/canary"
)

// Deployer is where accepted candidates go. *cluster.Cluster satisfies
// it natively (real canary routing over live traffic); DirectDeployer
// adapts a single serve.Server (no traffic to canary with, so
// candidates promote immediately).
type Deployer interface {
	// View returns the currently served snapshot (the shadow baseline).
	View() *prionn.Inference
	StartCanary(v *prionn.Inference, cfg cluster.CanaryConfig) error
	CanaryStatus() cluster.CanaryStatus
	PromoteCanary(ctx context.Context) error
	StopCanary(ctx context.Context) error
}

// Config tunes the pilot.
type Config struct {
	// Model is the predictor configuration; Model.RetrainEvery sets the
	// training cadence (completed jobs per event) and Model.TrainWindow
	// the training window, exactly as in the offline online-loop.
	Model prionn.Config
	// ShadowWindow is how many of the most recently completed jobs the
	// shadow evaluation replays (default 64).
	ShadowWindow int
	// Gate sets the shadow gate's regression thresholds.
	Gate GateConfig
	// Canary tunes the canary stage of accepted candidates.
	Canary cluster.CanaryConfig
	// CheckpointPath, when non-empty, persists the predictor crash-
	// safely after every training event; an existing checkpoint is
	// loaded on construction.
	CheckpointPath string
	// ResumeReplay declares that the Observe stream replays the same
	// jobs the checkpointed incarnation already consumed (the offline /
	// test scenario): training events covered by the checkpoint's
	// persisted event counter are then skipped as no-ops, keeping the
	// cadence and every later event's shuffle seed aligned. Leave false
	// for live streams, where new jobs simply continue training the
	// restored model.
	ResumeReplay bool
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.ShadowWindow <= 0 {
		c.ShadowWindow = 64
	}
	return c
}

// Status is the pipeline's point-in-time state as /stats reports it.
type Status struct {
	// Phase is "idle" or "canarying".
	Phase string `json:"phase"`
	// Observed counts completed jobs ingested this incarnation.
	Observed int64 `json:"observed"`
	// Events is the lifetime training-event counter (persisted across
	// restarts via the checkpoint).
	Events int64 `json:"events"`
	// TrainedThisRun counts events actually trained by this
	// incarnation; after a restart it lags Events by the replayed
	// (checkpoint-covered) events.
	TrainedThisRun int64 `json:"trained_this_run"`
	// ReplayedEvents counts checkpoint-covered events skipped as no-ops.
	ReplayedEvents int64 `json:"replayed_events"`

	ShadowAccepted int64 `json:"shadow_accepted"`
	ShadowRejected int64 `json:"shadow_rejected"`
	// DeploysSkipped counts events whose deployment was skipped because
	// a canary was still in flight.
	DeploysSkipped int64 `json:"deploys_skipped"`

	CanaryStarts     int64 `json:"canary_starts"`
	CanaryPromotions int64 `json:"canary_promotions"`
	CanaryRollbacks  int64 `json:"canary_rollbacks"`

	// LastGate is the most recent shadow gate report, nil before the
	// first evaluation.
	LastGate *GateReport `json:"last_gate,omitempty"`
}

// Pilot is the online-learning daemon. Create with New.
type Pilot struct {
	cfg Config
	dep Deployer

	// Single-goroutine state (Observe/Tick).
	p          *prionn.Predictor
	window     []trace.Job // most recently completed jobs, newest last
	sinceTrain int
	skipEvents int // checkpoint-covered events to replay as no-ops
	replayed   int
	canarying  bool

	// Atomic mirrors for Status.
	observed     atomic.Int64
	events       atomic.Int64
	trained      atomic.Int64
	replayedSt   atomic.Int64
	shadowAcc    atomic.Int64
	shadowRej    atomic.Int64
	skippedDep   atomic.Int64
	canStarts    atomic.Int64
	canPromotes  atomic.Int64
	canRollbacks atomic.Int64
	phaseCanary  atomic.Bool
	lastGate     atomic.Pointer[GateReport]
}

// New builds a pilot over a deployer. With CheckpointPath set and a
// checkpoint present, the predictor (embedding included) is restored
// from it — the restart path that makes the daemon survive kills
// without retraining from scratch. A checkpoint trained under a
// different Model configuration is rejected; an unreadable one
// surfaces as an error rather than silently starting cold.
func New(cfg Config, dep Deployer) (*Pilot, error) {
	if dep == nil {
		return nil, errors.New("pilot: nil deployer")
	}
	cfg = cfg.withDefaults()
	pl := &Pilot{cfg: cfg, dep: dep}
	if cfg.CheckpointPath != "" {
		loaded, err := prionn.LoadFile(cfg.CheckpointPath)
		switch {
		case err == nil:
			if loaded.Config != cfg.Model {
				return nil, fmt.Errorf("pilot: checkpoint at %s was trained under a different configuration", cfg.CheckpointPath)
			}
			pl.p = loaded
			pl.events.Store(int64(loaded.Events()))
			if cfg.ResumeReplay {
				pl.skipEvents = loaded.Events()
			}
		case errors.Is(err, fs.ErrNotExist):
			// Fresh start.
		default:
			return nil, fmt.Errorf("pilot: restoring checkpoint %s: %w", cfg.CheckpointPath, err)
		}
	}
	return pl, nil
}

// Status snapshots the pipeline counters. Safe from any goroutine.
func (pl *Pilot) Status() Status {
	phase := "idle"
	if pl.phaseCanary.Load() {
		phase = "canarying"
	}
	return Status{
		Phase:            phase,
		Observed:         pl.observed.Load(),
		Events:           pl.events.Load(),
		TrainedThisRun:   pl.trained.Load(),
		ReplayedEvents:   pl.replayedSt.Load(),
		ShadowAccepted:   pl.shadowAcc.Load(),
		ShadowRejected:   pl.shadowRej.Load(),
		DeploysSkipped:   pl.skippedDep.Load(),
		CanaryStarts:     pl.canStarts.Load(),
		CanaryPromotions: pl.canPromotes.Load(),
		CanaryRollbacks:  pl.canRollbacks.Load(),
		LastGate:         pl.lastGate.Load(),
	}
}

// Events returns the lifetime training-event counter. Safe anywhere.
func (pl *Pilot) Events() int { return int(pl.events.Load()) }

// Observe ingests one completed job. Every Model.RetrainEvery
// observations it runs one pipeline event: retrain, checkpoint, then —
// unless a canary is still in flight — shadow-evaluate a candidate and
// deploy it to the canary stage if accepted. An error leaves the
// checkpoint at the last durable state, so a restarted pilot resumes
// exactly there.
func (pl *Pilot) Observe(ctx context.Context, j trace.Job) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	pl.observed.Add(1)
	if !j.Canceled {
		pl.window = append(pl.window, j)
		if keep := pl.keep(); len(pl.window) > keep {
			pl.window = pl.window[len(pl.window)-keep:]
		}
	}
	pl.sinceTrain++
	if pl.sinceTrain < pl.cfg.Model.RetrainEvery || len(pl.window) == 0 {
		return nil
	}
	if pl.replayed < pl.skipEvents {
		// This event is covered by the loaded checkpoint: the restored
		// model already contains it, so only the cadence advances (and
		// the later events' shuffle seeds stay aligned with the crashed
		// incarnation's).
		pl.replayed++
		pl.replayedSt.Add(1)
		pl.sinceTrain = 0
		return nil
	}
	return pl.runEvent(ctx)
}

// keep bounds the observation buffer: enough for the training window
// and the shadow replay window.
func (pl *Pilot) keep() int {
	k := pl.cfg.Model.TrainWindow
	if pl.cfg.ShadowWindow > k {
		k = pl.cfg.ShadowWindow
	}
	if k <= 0 {
		k = 1
	}
	return k
}

// runEvent is one pipeline event.
func (pl *Pilot) runEvent(ctx context.Context) error {
	// Stage 1 — retrain (warm start; first event builds the predictor
	// and trains the embedding on the first window's scripts).
	if err := fault.Here(FailpointRetrain); err != nil {
		return err
	}
	batch := pl.window
	if len(batch) > pl.cfg.Model.TrainWindow {
		batch = batch[len(batch)-pl.cfg.Model.TrainWindow:]
	}
	if pl.p == nil {
		scripts := make([]string, len(batch))
		for i, j := range batch {
			scripts[i] = j.Script
			if pl.cfg.Model.IncludeDeck {
				scripts[i] += "\n" + j.InputDeck
			}
		}
		np, err := prionn.New(pl.cfg.Model, scripts)
		if err != nil {
			return err
		}
		pl.p = np
	}
	if _, err := pl.p.TrainCtx(ctx, batch); err != nil {
		return err
	}
	pl.sinceTrain = 0
	pl.events.Store(int64(pl.p.Events()))
	pl.trained.Add(1)

	// Stage 2 — checkpoint. Durable before any deployment: a kill past
	// this point restarts with the event already covered.
	if pl.cfg.CheckpointPath != "" {
		if err := fault.Here(FailpointSave); err != nil {
			return err
		}
		if err := pl.p.SaveFile(pl.cfg.CheckpointPath); err != nil {
			return err
		}
	}

	// Settle any finished canary before deciding whether to deploy.
	if err := pl.Tick(ctx); err != nil {
		return err
	}
	if pl.canarying {
		// One candidate in flight at a time; this event's model stays
		// train-only (the next accepted candidate will include it).
		pl.skippedDep.Add(1)
		return nil
	}

	// Stage 3 — shadow evaluation.
	if err := fault.Here(FailpointShadow); err != nil {
		return err
	}
	cand, err := pl.p.Snapshot()
	if err != nil {
		return err
	}
	shadow := pl.window
	if len(shadow) > pl.cfg.ShadowWindow {
		shadow = shadow[len(shadow)-pl.cfg.ShadowWindow:]
	}
	rep, err := Evaluate(pl.dep.View(), cand, shadow, pl.cfg.Gate)
	if err != nil {
		return err
	}
	repCopy := rep
	pl.lastGate.Store(&repCopy)
	if !rep.Accept {
		pl.shadowRej.Add(1)
		return nil
	}
	pl.shadowAcc.Add(1)

	// Stage 4 — canary deployment.
	if err := fault.Here(FailpointCanary); err != nil {
		return err
	}
	if err := pl.dep.StartCanary(cand, pl.cfg.Canary); err != nil {
		if errors.Is(err, cluster.ErrCanaryActive) {
			// Someone else deployed out-of-band; not fatal.
			pl.skippedDep.Add(1)
			return nil
		}
		return err
	}
	pl.canarying = true
	pl.phaseCanary.Store(true)
	pl.canStarts.Add(1)
	return nil
}

// Tick advances the canary state machine: a PromoteReady canary is
// promoted (the deployer's atomic swap), a RolledBack one is
// dismantled. Call it on a cadence (prionnd uses a ticker) so
// promotion latency is bounded even when no training event fires;
// Observe also calls it at every event.
func (pl *Pilot) Tick(ctx context.Context) error {
	if !pl.canarying {
		return nil
	}
	st := pl.dep.CanaryStatus()
	switch st.Phase {
	case cluster.CanaryPromoteReady.String():
		if err := pl.dep.PromoteCanary(ctx); err != nil {
			return err
		}
		pl.canarying = false
		pl.phaseCanary.Store(false)
		pl.canPromotes.Add(1)
	case cluster.CanaryRolledBack.String():
		if err := pl.dep.StopCanary(ctx); err != nil {
			return err
		}
		pl.canarying = false
		pl.phaseCanary.Store(false)
		pl.canRollbacks.Add(1)
	case cluster.CanaryNone.String():
		// Dismantled out-of-band.
		pl.canarying = false
		pl.phaseCanary.Store(false)
	}
	return nil
}

// DirectDeployer adapts a single serve.Server to the Deployer
// interface. A lone server has no traffic-splitting canary stage, so
// an accepted candidate reads as PromoteReady immediately and
// PromoteCanary swaps it in — the shadow gate is the only gate in
// single-replica mode. Confined to the pilot goroutine like the pilot
// itself.
type DirectDeployer struct {
	Srv     *serve.Server
	pending *prionn.Inference
}

func (d *DirectDeployer) View() *prionn.Inference { return d.Srv.View() }

func (d *DirectDeployer) StartCanary(v *prionn.Inference, _ cluster.CanaryConfig) error {
	if d.pending != nil {
		return cluster.ErrCanaryActive
	}
	d.pending = v
	return nil
}

func (d *DirectDeployer) CanaryStatus() cluster.CanaryStatus {
	if d.pending == nil {
		return cluster.CanaryStatus{Phase: cluster.CanaryNone.String()}
	}
	return cluster.CanaryStatus{Phase: cluster.CanaryPromoteReady.String()}
}

func (d *DirectDeployer) PromoteCanary(context.Context) error {
	if d.pending == nil {
		return cluster.ErrNoCanary
	}
	d.Srv.Swap(d.pending)
	d.pending = nil
	return nil
}

func (d *DirectDeployer) StopCanary(context.Context) error {
	d.pending = nil
	return nil
}
