package mlbase

import (
	"math"
	"math/rand"

	"prionn/internal/tensor"
)

// ForestConfig controls random-forest training.
type ForestConfig struct {
	Trees          int // number of trees (default 50)
	MaxDepth       int // per-tree depth limit; 0 unlimited
	MinSamplesLeaf int
	// MaxFeatures per split; 0 selects max(1, nFeatures/3), the customary
	// regression default.
	MaxFeatures int
	Seed        int64
}

// RandomForest is a bagged ensemble of CART regression trees with random
// feature subsets per split. The paper identifies RF as the best
// traditional model and uses it as the representative baseline.
type RandomForest struct {
	Config ForestConfig
	trees  []*DecisionTree
}

// NewRandomForest returns a forest with the given configuration.
func NewRandomForest(cfg ForestConfig) *RandomForest {
	if cfg.Trees <= 0 {
		cfg.Trees = 50
	}
	if cfg.MinSamplesLeaf < 1 {
		cfg.MinSamplesLeaf = 1
	}
	return &RandomForest{Config: cfg}
}

// Fit implements Regressor. Trees are trained in parallel across the
// worker pool, each on a bootstrap resample of the data.
func (rf *RandomForest) Fit(x [][]float64, y []float64) {
	n := len(x)
	rf.trees = make([]*DecisionTree, rf.Config.Trees)
	if n == 0 {
		for i := range rf.trees {
			rf.trees[i] = NewDecisionTree(TreeConfig{})
			rf.trees[i].Fit(nil, nil)
		}
		return
	}
	maxF := rf.Config.MaxFeatures
	if maxF <= 0 {
		maxF = len(x[0]) / 3
		if maxF < 1 {
			maxF = 1
		}
	}
	tensor.ParallelFor(rf.Config.Trees, func(lo, hi int) {
		for ti := lo; ti < hi; ti++ {
			rng := rand.New(rand.NewSource(rf.Config.Seed + int64(ti)*7919))
			bx := make([][]float64, n)
			by := make([]float64, n)
			for i := 0; i < n; i++ {
				j := rng.Intn(n)
				bx[i], by[i] = x[j], y[j]
			}
			tree := NewDecisionTree(TreeConfig{
				MaxDepth:       rf.Config.MaxDepth,
				MinSamplesLeaf: rf.Config.MinSamplesLeaf,
				MaxFeatures:    maxF,
				rng:            rng,
			})
			tree.Fit(bx, by)
			rf.trees[ti] = tree
		}
	})
}

// Predict implements Regressor: the mean of the per-tree predictions.
func (rf *RandomForest) Predict(row []float64) float64 {
	if len(rf.trees) == 0 {
		return 0
	}
	var s float64
	for _, t := range rf.trees {
		s += t.Predict(row)
	}
	return s / float64(len(rf.trees))
}

// KNNConfig controls the k-nearest-neighbors regressor.
type KNNConfig struct {
	K int // neighbor count (default 5)
}

// KNN is a brute-force Euclidean k-nearest-neighbors regressor, the
// weakest of the paper's traditional baselines (label-encoded categorical
// features distort Euclidean distances, as the paper observes).
type KNN struct {
	Config KNNConfig
	x      [][]float64
	y      []float64
}

// NewKNN returns a kNN regressor.
func NewKNN(cfg KNNConfig) *KNN {
	if cfg.K <= 0 {
		cfg.K = 5
	}
	return &KNN{Config: cfg}
}

// Fit implements Regressor (kNN just memorizes the data).
func (k *KNN) Fit(x [][]float64, y []float64) {
	k.x, k.y = x, y
}

// Predict implements Regressor: the mean target of the K nearest rows.
func (k *KNN) Predict(row []float64) float64 {
	n := len(k.x)
	if n == 0 {
		return 0
	}
	kk := k.Config.K
	if kk > n {
		kk = n
	}
	// Bounded insertion into a small sorted buffer beats a full sort for
	// the K we use.
	dists := make([]float64, kk)
	vals := make([]float64, kk)
	count := 0
	for i := 0; i < n; i++ {
		var d float64
		xi := k.x[i]
		for j, v := range row {
			diff := v - xi[j]
			d += diff * diff
		}
		if count < kk {
			// Insert into the sorted prefix.
			p := count
			for p > 0 && dists[p-1] > d {
				dists[p], vals[p] = dists[p-1], vals[p-1]
				p--
			}
			dists[p], vals[p] = d, k.y[i]
			count++
			continue
		}
		if d >= dists[kk-1] {
			continue
		}
		p := kk - 1
		for p > 0 && dists[p-1] > d {
			dists[p], vals[p] = dists[p-1], vals[p-1]
			p--
		}
		dists[p], vals[p] = d, k.y[i]
	}
	var s float64
	for i := 0; i < count; i++ {
		s += vals[i]
	}
	return s / float64(count)
}

// MAE returns the mean absolute error of a regressor over a test set.
func MAE(m Regressor, x [][]float64, y []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var s float64
	for i, row := range x {
		s += math.Abs(m.Predict(row) - y[i])
	}
	return s / float64(len(x))
}
