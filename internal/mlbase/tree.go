// Package mlbase implements the traditional machine-learning regressors
// PRIONN is compared against (paper §2.2): a CART decision tree, a random
// forest, and k-nearest neighbors. These models consume the manually
// extracted job-script features of Table 1 (see package features) — the
// approach of Smith et al. and McKenna et al. that PRIONN's whole-script
// deep learning replaces.
package mlbase

import (
	"math"
	"math/rand"
	"sort"
)

// Regressor predicts a scalar target from a numerical feature vector.
type Regressor interface {
	// Fit trains on rows x with targets y (len(x) == len(y)).
	Fit(x [][]float64, y []float64)
	// Predict returns the prediction for one feature vector.
	Predict(row []float64) float64
}

// TreeConfig controls decision-tree induction.
type TreeConfig struct {
	MaxDepth       int // 0 means unlimited
	MinSamplesLeaf int // minimum samples per leaf (default 1)
	// MaxFeatures restricts the number of candidate features examined per
	// split; 0 means all features. Used by the random forest.
	MaxFeatures int
	// rng supplies the feature subsampling; nil means deterministic
	// full-feature splits.
	rng *rand.Rand
}

// DecisionTree is a CART regression tree using variance reduction as the
// split criterion.
type DecisionTree struct {
	Config TreeConfig
	root   *treeNode
}

type treeNode struct {
	feature   int
	threshold float64
	value     float64
	left      *treeNode
	right     *treeNode
}

func (n *treeNode) leaf() bool { return n.left == nil }

// NewDecisionTree returns a tree with the given configuration.
func NewDecisionTree(cfg TreeConfig) *DecisionTree {
	if cfg.MinSamplesLeaf < 1 {
		cfg.MinSamplesLeaf = 1
	}
	return &DecisionTree{Config: cfg}
}

// Fit implements Regressor.
func (t *DecisionTree) Fit(x [][]float64, y []float64) {
	if len(x) == 0 {
		t.root = &treeNode{value: 0}
		return
	}
	idx := make([]int, len(x))
	for i := range idx {
		idx[i] = i
	}
	t.root = t.build(x, y, idx, 0)
}

func mean(y []float64, idx []int) float64 {
	var s float64
	for _, i := range idx {
		s += y[i]
	}
	return s / float64(len(idx))
}

// build grows the tree recursively over the row subset idx.
func (t *DecisionTree) build(x [][]float64, y []float64, idx []int, depth int) *treeNode {
	node := &treeNode{value: mean(y, idx)}
	if len(idx) < 2*t.Config.MinSamplesLeaf {
		return node
	}
	if t.Config.MaxDepth > 0 && depth >= t.Config.MaxDepth {
		return node
	}
	feature, threshold, ok := t.bestSplit(x, y, idx)
	if !ok {
		return node
	}
	var left, right []int
	for _, i := range idx {
		if x[i][feature] <= threshold {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) < t.Config.MinSamplesLeaf || len(right) < t.Config.MinSamplesLeaf {
		return node
	}
	node.feature = feature
	node.threshold = threshold
	node.left = t.build(x, y, left, depth+1)
	node.right = t.build(x, y, right, depth+1)
	return node
}

// bestSplit finds the (feature, threshold) pair minimizing the weighted
// child variance (equivalently maximizing variance reduction) using the
// sorted prefix-sum sweep.
func (t *DecisionTree) bestSplit(x [][]float64, y []float64, idx []int) (feature int, threshold float64, ok bool) {
	nFeatures := len(x[0])
	candidates := make([]int, nFeatures)
	for i := range candidates {
		candidates[i] = i
	}
	if t.Config.MaxFeatures > 0 && t.Config.MaxFeatures < nFeatures && t.Config.rng != nil {
		t.Config.rng.Shuffle(nFeatures, func(i, j int) {
			candidates[i], candidates[j] = candidates[j], candidates[i]
		})
		candidates = candidates[:t.Config.MaxFeatures]
	}

	n := len(idx)
	order := make([]int, n)
	bestScore := math.Inf(1)
	var total, totalSq float64
	for _, i := range idx {
		total += y[i]
		totalSq += y[i] * y[i]
	}
	// Baseline SSE; a split must strictly improve it.
	baseSSE := totalSq - total*total/float64(n)

	for _, f := range candidates {
		copy(order, idx)
		sort.Slice(order, func(a, b int) bool { return x[order[a]][f] < x[order[b]][f] })
		var leftSum, leftSq float64
		for k := 0; k < n-1; k++ {
			i := order[k]
			leftSum += y[i]
			leftSq += y[i] * y[i]
			// Can't split between equal feature values.
			//prionnvet:ignore float-eq -- bitwise-identical stored features is the correct split criterion; a tolerance would forbid valid splits
			if x[order[k]][f] == x[order[k+1]][f] {
				continue
			}
			nl, nr := float64(k+1), float64(n-k-1)
			if int(nl) < t.Config.MinSamplesLeaf || int(nr) < t.Config.MinSamplesLeaf {
				continue
			}
			rightSum := total - leftSum
			rightSq := totalSq - leftSq
			sse := (leftSq - leftSum*leftSum/nl) + (rightSq - rightSum*rightSum/nr)
			if sse < bestScore {
				bestScore = sse
				feature = f
				threshold = (x[order[k]][f] + x[order[k+1]][f]) / 2
				ok = true
			}
		}
	}
	if ok && bestScore >= baseSSE-1e-12 {
		// No real improvement (e.g. constant target).
		return 0, 0, false
	}
	return feature, threshold, ok
}

// Predict implements Regressor.
func (t *DecisionTree) Predict(row []float64) float64 {
	n := t.root
	if n == nil {
		return 0
	}
	for !n.leaf() {
		if row[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.value
}

// Depth returns the depth of the fitted tree (a single leaf has depth 0).
func (t *DecisionTree) Depth() int {
	var walk func(*treeNode) int
	walk = func(n *treeNode) int {
		if n == nil || n.leaf() {
			return 0
		}
		l, r := walk(n.left), walk(n.right)
		if l > r {
			return l + 1
		}
		return r + 1
	}
	return walk(t.root)
}
