package mlbase

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// stepData generates y = 10 if x0 > 0.5 else 2, with an irrelevant
// second feature.
func stepData(rng *rand.Rand, n int) ([][]float64, []float64) {
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = []float64{rng.Float64(), rng.Float64()}
		if x[i][0] > 0.5 {
			y[i] = 10
		} else {
			y[i] = 2
		}
	}
	return x, y
}

func TestDecisionTreeLearnsStep(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x, y := stepData(rng, 200)
	tree := NewDecisionTree(TreeConfig{MaxDepth: 4})
	tree.Fit(x, y)
	if p := tree.Predict([]float64{0.9, 0.5}); math.Abs(p-10) > 0.5 {
		t.Fatalf("predict(0.9) = %v, want ≈10", p)
	}
	if p := tree.Predict([]float64{0.1, 0.5}); math.Abs(p-2) > 0.5 {
		t.Fatalf("predict(0.1) = %v, want ≈2", p)
	}
}

func TestDecisionTreeConstantTarget(t *testing.T) {
	x := [][]float64{{1}, {2}, {3}, {4}}
	y := []float64{7, 7, 7, 7}
	tree := NewDecisionTree(TreeConfig{})
	tree.Fit(x, y)
	if tree.Depth() != 0 {
		t.Fatalf("constant target grew depth-%d tree", tree.Depth())
	}
	if p := tree.Predict([]float64{99}); p != 7 {
		t.Fatalf("predict = %v, want 7", p)
	}
}

func TestDecisionTreeEmptyFit(t *testing.T) {
	tree := NewDecisionTree(TreeConfig{})
	tree.Fit(nil, nil)
	if p := tree.Predict([]float64{1}); p != 0 {
		t.Fatalf("empty-fit predict = %v, want 0", p)
	}
}

func TestDecisionTreeRespectsMaxDepth(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 256
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = []float64{rng.Float64()}
		y[i] = rng.Float64() // noise forces deep growth if unlimited
	}
	tree := NewDecisionTree(TreeConfig{MaxDepth: 3})
	tree.Fit(x, y)
	if d := tree.Depth(); d > 3 {
		t.Fatalf("depth %d exceeds MaxDepth 3", d)
	}
}

func TestDecisionTreeMinSamplesLeaf(t *testing.T) {
	// With MinSamplesLeaf == n/2 the tree can split at most once.
	rng := rand.New(rand.NewSource(3))
	x, y := stepData(rng, 64)
	tree := NewDecisionTree(TreeConfig{MinSamplesLeaf: 32})
	tree.Fit(x, y)
	if d := tree.Depth(); d > 1 {
		t.Fatalf("depth %d with MinSamplesLeaf covering half the data", d)
	}
}

func TestDecisionTreeInterpolatesTrainingData(t *testing.T) {
	// An unlimited tree with distinct feature values should fit training
	// data exactly.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		x := make([][]float64, n)
		y := make([]float64, n)
		used := map[float64]bool{}
		for i := 0; i < n; i++ {
			v := rng.Float64()
			for used[v] {
				v = rng.Float64()
			}
			used[v] = true
			x[i] = []float64{v}
			y[i] = rng.Float64() * 100
		}
		tree := NewDecisionTree(TreeConfig{})
		tree.Fit(x, y)
		for i := range x {
			if math.Abs(tree.Predict(x[i])-y[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomForestBeatsNoiseOnStep(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x, y := stepData(rng, 300)
	rf := NewRandomForest(ForestConfig{Trees: 20, MaxDepth: 6, Seed: 1})
	rf.Fit(x, y)
	xt, yt := stepData(rng, 100)
	if mae := MAE(rf, xt, yt); mae > 1.0 {
		t.Fatalf("forest MAE %v > 1.0 on step function", mae)
	}
}

func TestRandomForestDeterministicForSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x, y := stepData(rng, 100)
	a := NewRandomForest(ForestConfig{Trees: 5, Seed: 42})
	a.Fit(x, y)
	b := NewRandomForest(ForestConfig{Trees: 5, Seed: 42})
	b.Fit(x, y)
	probe := []float64{0.3, 0.7}
	if a.Predict(probe) != b.Predict(probe) {
		t.Fatal("same-seed forests disagree")
	}
}

func TestRandomForestEmptyFit(t *testing.T) {
	rf := NewRandomForest(ForestConfig{Trees: 3})
	rf.Fit(nil, nil)
	if p := rf.Predict([]float64{1, 2}); p != 0 {
		t.Fatalf("empty forest predicts %v, want 0", p)
	}
}

func TestKNNExactNeighbors(t *testing.T) {
	x := [][]float64{{0}, {1}, {2}, {10}}
	y := []float64{0, 10, 20, 1000}
	k := NewKNN(KNNConfig{K: 2})
	k.Fit(x, y)
	// Nearest two to 0.6 are x=1 and x=0 → mean(10, 0) = 5.
	if p := k.Predict([]float64{0.6}); p != 5 {
		t.Fatalf("kNN predict = %v, want 5", p)
	}
	// Nearest two to 11 are 10 and 2 → mean(1000, 20) = 510.
	if p := k.Predict([]float64{11}); p != 510 {
		t.Fatalf("kNN predict = %v, want 510", p)
	}
}

func TestKNNKLargerThanData(t *testing.T) {
	k := NewKNN(KNNConfig{K: 10})
	k.Fit([][]float64{{0}, {1}}, []float64{4, 6})
	if p := k.Predict([]float64{0.5}); p != 5 {
		t.Fatalf("kNN with K>n predicts %v, want mean 5", p)
	}
}

func TestKNNEmptyFit(t *testing.T) {
	k := NewKNN(KNNConfig{K: 3})
	k.Fit(nil, nil)
	if p := k.Predict([]float64{1}); p != 0 {
		t.Fatalf("empty kNN predicts %v", p)
	}
}

func TestKNNMatchesBruteSort(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(50)
		x := make([][]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = []float64{rng.Float64() * 10, rng.Float64() * 10}
			y[i] = rng.Float64() * 100
		}
		kk := 1 + rng.Intn(5)
		k := NewKNN(KNNConfig{K: kk})
		k.Fit(x, y)
		q := []float64{rng.Float64() * 10, rng.Float64() * 10}
		got := k.Predict(q)

		// Reference: full sort by distance.
		type pair struct{ d, v float64 }
		ps := make([]pair, n)
		for i := range x {
			d := (q[0]-x[i][0])*(q[0]-x[i][0]) + (q[1]-x[i][1])*(q[1]-x[i][1])
			ps[i] = pair{d, y[i]}
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if ps[j].d < ps[i].d {
					ps[i], ps[j] = ps[j], ps[i]
				}
			}
		}
		var want float64
		for i := 0; i < kk; i++ {
			want += ps[i].v
		}
		want /= float64(kk)
		return math.Abs(got-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMAE(t *testing.T) {
	k := NewKNN(KNNConfig{K: 1})
	k.Fit([][]float64{{0}, {10}}, []float64{0, 100})
	x := [][]float64{{1}, {9}}
	y := []float64{10, 90}
	// Predictions: 0 and 100 → errors 10 and 10 → MAE 10.
	if m := MAE(k, x, y); m != 10 {
		t.Fatalf("MAE = %v, want 10", m)
	}
	if m := MAE(k, nil, nil); m != 0 {
		t.Fatalf("MAE on empty set = %v, want 0", m)
	}
}

func TestForestOrderingOnHPCLikeData(t *testing.T) {
	// RF should outperform a depth-limited single tree and kNN on data
	// where the target depends on an interaction of categorical codes —
	// mirroring the paper's observed ordering RF > DT > kNN.
	rng := rand.New(rand.NewSource(6))
	n := 600
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		user := float64(rng.Intn(20))
		app := float64(rng.Intn(8))
		nodes := float64(1 + rng.Intn(16))
		x[i] = []float64{user, app, nodes}
		y[i] = 30*app + 5*nodes + 13*float64(int(user)%3) + rng.NormFloat64()*5
	}
	train := n * 3 / 4
	rf := NewRandomForest(ForestConfig{Trees: 30, Seed: 7})
	rf.Fit(x[:train], y[:train])
	dt := NewDecisionTree(TreeConfig{MaxDepth: 4})
	dt.Fit(x[:train], y[:train])
	knn := NewKNN(KNNConfig{K: 5})
	knn.Fit(x[:train], y[:train])
	rfMAE := MAE(rf, x[train:], y[train:])
	dtMAE := MAE(dt, x[train:], y[train:])
	knnMAE := MAE(knn, x[train:], y[train:])
	if rfMAE >= dtMAE {
		t.Fatalf("RF MAE %v not better than DT MAE %v", rfMAE, dtMAE)
	}
	if rfMAE >= knnMAE {
		t.Fatalf("RF MAE %v not better than kNN MAE %v", rfMAE, knnMAE)
	}
}
