package mapping

import (
	"strings"
	"testing"
)

// The CRLF regression suite: byte-identical script text must standardize
// to the same grid (and therefore the same pixel image) regardless of
// the line-ending convention of the authoring tool. Before the fix,
// Standardize split on "\n" only, so CRLF scripts kept a trailing '\r'
// per line that Binary mapped to 1 and Simple/OneHot mapped to its own
// channel.

// crlfVariants renders one logical script under the three line-ending
// conventions.
func crlfVariants(lines ...string) (lf, crlf, cr string) {
	lf = strings.Join(lines, "\n")
	crlf = strings.Join(lines, "\r\n")
	cr = strings.Join(lines, "\r")
	return
}

func TestStandardizeCRLFIdenticalToLF(t *testing.T) {
	lf, crlf, cr := crlfVariants(
		"#!/bin/bash",
		"#SBATCH -N 4",
		"srun ./lulesh.exe -s 32",
	)
	want := Standardize(lf, 8, 16)
	for name, script := range map[string]string{"crlf": crlf, "lone-cr": cr} {
		got := Standardize(script, 8, 16)
		if string(got.Chars) != string(want.Chars) {
			t.Errorf("%s grid differs from LF grid:\n got %q\nwant %q", name, got.Chars, want.Chars)
		}
	}
}

// TestStandardizeCRLFGolden pins the exact grid for a CRLF script: the
// '\r' must vanish (not occupy a cell, not push characters over).
func TestStandardizeCRLFGolden(t *testing.T) {
	g := Standardize("ab\r\ncd\r\n", 4, 4)
	want := "ab  cd          "
	if string(g.Chars) != want {
		t.Fatalf("grid %q, want %q", g.Chars, want)
	}
	if strings.ContainsRune(string(g.Chars), '\r') {
		t.Fatalf("grid retains a carriage return: %q", g.Chars)
	}
}

// TestStandardizeTrailingCRLFLastLine covers a final line without a
// terminator versus one ended by CRLF — the trailing '\r' case that
// produced the corrupt last pixel column.
func TestStandardizeTrailingCRLFLastLine(t *testing.T) {
	want := Standardize("run", 2, 8)
	for _, script := range []string{"run\r\n", "run\r"} {
		got := Standardize(script, 2, 8)
		if string(got.Chars) != string(want.Chars) {
			t.Errorf("script %q grid %q, want %q", script, got.Chars, want.Chars)
		}
	}
}

// TestMapScriptCRLFIdenticalPixels proves the property the paper's data
// mapping needs end to end: identical pixel tensors for every transform,
// for the same script under every line-ending convention.
func TestMapScriptCRLFIdenticalPixels(t *testing.T) {
	lf, crlf, cr := crlfVariants(
		"#!/bin/bash",
		"#SBATCH --time=01:00:00",
		"",
		"srun -n 64 ./qbox.exe input.i",
	)
	for _, tr := range All(nil) {
		want := MapScript(lf, tr, 8, 32)
		for name, script := range map[string]string{"crlf": crlf, "lone-cr": cr} {
			got := MapScript(script, tr, 8, 32)
			if len(got.Data) != len(want.Data) {
				t.Fatalf("%s/%s: tensor size %d vs %d", tr.Name(), name, len(got.Data), len(want.Data))
			}
			for i := range want.Data {
				if got.Data[i] != want.Data[i] {
					t.Errorf("%s/%s: pixel %d = %g, want %g", tr.Name(), name, i, got.Data[i], want.Data[i])
					break
				}
			}
		}
	}
}

// TestBinaryCRLFNoPhantomInk pins the concrete symptom: under Binary, a
// CRLF script must not light a pixel where the '\r' used to land.
func TestBinaryCRLFNoPhantomInk(t *testing.T) {
	x := MapScript("ab\r\n", Binary{}, 2, 4)
	// Row 0: 'a' 'b' then padding — exactly two lit pixels.
	lit := 0
	for _, v := range x.Data {
		if v != 0 {
			lit++
		}
	}
	if lit != 2 {
		t.Fatalf("binary map of \"ab\\r\\n\" lights %d pixels, want 2 (the '\\r' must not map to ink)", lit)
	}
}
