package mapping

import (
	"strings"
	"testing"
	"testing/quick"

	"prionn/internal/tensor"
	"prionn/internal/word2vec"
)

func TestStandardizePadsShortScript(t *testing.T) {
	g := Standardize("ab\ncd", 4, 4)
	want := "ab  cd          "
	if string(g.Chars) != want {
		t.Fatalf("grid %q, want %q", g.Chars, want)
	}
}

func TestStandardizeCropsLongScript(t *testing.T) {
	var sb strings.Builder
	for i := 0; i < 100; i++ {
		sb.WriteString(strings.Repeat("x", 100))
		sb.WriteByte('\n')
	}
	g := Standardize(sb.String(), 8, 8)
	if len(g.Chars) != 64 {
		t.Fatalf("grid size %d, want 64", len(g.Chars))
	}
	for _, c := range g.Chars {
		if c != 'x' {
			t.Fatalf("expected crop to keep only 'x', got %q", c)
		}
	}
}

func TestStandardizeEmptyScript(t *testing.T) {
	g := Standardize("", 4, 4)
	for _, c := range g.Chars {
		if c != ' ' {
			t.Fatal("empty script must map to all spaces")
		}
	}
}

func TestStandardizeSizeProperty(t *testing.T) {
	f := func(s string, r8, c8 uint8) bool {
		rows, cols := int(r8%32)+1, int(c8%32)+1
		g := Standardize(s, rows, cols)
		return len(g.Chars) == rows*cols && g.Rows == rows && g.Cols == cols
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBinaryTransform(t *testing.T) {
	g := Standardize("a \tb", 1, 4)
	dst := make([]float32, 4)
	Binary{}.Apply(g, dst)
	want := []float32{1, 0, 0, 1}
	for i, w := range want {
		if dst[i] != w {
			t.Fatalf("binary[%d] = %v, want %v", i, dst[i], w)
		}
	}
}

func TestSimpleTransformLossless(t *testing.T) {
	// Distinct characters must map to distinct values (lossless).
	g := Standardize("azAZ09#!", 1, 8)
	dst := make([]float32, 8)
	Simple{}.Apply(g, dst)
	seen := map[float32]bool{}
	for _, v := range dst {
		if v < 0 || v > 1 {
			t.Fatalf("simple value %v out of [0,1]", v)
		}
		if seen[v] {
			t.Fatalf("simple transform collided at %v", v)
		}
		seen[v] = true
	}
}

func TestOneHotTransform(t *testing.T) {
	g := Standardize("ab", 1, 2)
	dst := make([]float32, 128*2)
	OneHot{}.Apply(g, dst)
	// Exactly one 1 per position.
	for pos := 0; pos < 2; pos++ {
		ones := 0
		for ch := 0; ch < 128; ch++ {
			if dst[ch*2+pos] == 1 {
				ones++
				if ch != int(g.Chars[pos]) {
					t.Fatalf("position %d hot at channel %d, want %d", pos, ch, g.Chars[pos])
				}
			}
		}
		if ones != 1 {
			t.Fatalf("position %d has %d hot channels", pos, ones)
		}
	}
}

func TestWord2VecTransform(t *testing.T) {
	emb := word2vec.Train([]string{"abcd"}, word2vec.Config{Dim: 4, Epochs: 1, Seed: 2, MaxPairs: 100})
	tr := Word2Vec{Emb: emb}
	if tr.Channels() != 4 {
		t.Fatalf("channels %d, want 4", tr.Channels())
	}
	g := Standardize("ab", 1, 2)
	dst := make([]float32, 4*2)
	tr.Apply(g, dst)
	va := emb.Vector('a')
	for d := 0; d < 4; d++ {
		if dst[d*2+0] != va[d] {
			t.Fatalf("channel %d for 'a' = %v, want %v", d, dst[d*2], va[d])
		}
	}
}

func TestMapScriptShape(t *testing.T) {
	x := MapScript("#!/bin/bash\nsrun app\n", Simple{}, 16, 32)
	if x.Dim(0) != 1 || x.Dim(1) != 16 || x.Dim(2) != 32 {
		t.Fatalf("shape %v", x.Shape)
	}
}

func TestMapBatchMatchesMapScript(t *testing.T) {
	scripts := []string{
		"#!/bin/bash\n#SBATCH -N 2\nsrun ./a\n",
		"echo hi\n",
		strings.Repeat("longline ", 40),
	}
	for _, tr := range []Transform{Binary{}, Simple{}, OneHot{}} {
		batch := MapBatch(scripts, tr, 8, 16)
		if batch.Dim(0) != 3 || batch.Dim(1) != tr.Channels() {
			t.Fatalf("%s batch shape %v", tr.Name(), batch.Shape)
		}
		sample := tr.Channels() * 8 * 16
		for i, s := range scripts {
			single := MapScript(s, tr, 8, 16)
			for j := 0; j < sample; j++ {
				if batch.Data[i*sample+j] != single.Data[j] {
					t.Fatalf("%s sample %d differs at %d", tr.Name(), i, j)
				}
			}
		}
	}
}

func TestMapBatchParallelDeterministic(t *testing.T) {
	scripts := make([]string, 200)
	for i := range scripts {
		scripts[i] = strings.Repeat("srun ./app --x 1\n", i%10+1)
	}
	prev := tensor.SetMaxWorkers(1)
	serial := MapBatch(scripts, Simple{}, 8, 8)
	tensor.SetMaxWorkers(4)
	par := MapBatch(scripts, Simple{}, 8, 8)
	tensor.SetMaxWorkers(prev)
	for i := range serial.Data {
		if serial.Data[i] != par.Data[i] {
			t.Fatal("parallel batch mapping differs from serial")
		}
	}
}

func TestOneHotExactlyGridOnes(t *testing.T) {
	f := func(s string) bool {
		g := Standardize(s, 8, 8)
		dst := make([]float32, 128*64)
		OneHot{}.Apply(g, dst)
		var sum float32
		for _, v := range dst {
			sum += v
		}
		return sum == 64 // one hot bit per cell
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestAllTransforms(t *testing.T) {
	if got := len(All(nil)); got != 3 {
		t.Fatalf("All(nil) = %d transforms, want 3", got)
	}
	emb := word2vec.Train([]string{"x"}, word2vec.Config{Dim: 2, Epochs: 1, Seed: 1, MaxPairs: 10})
	ts := All(emb)
	if len(ts) != 4 {
		t.Fatalf("All(emb) = %d transforms, want 4", len(ts))
	}
	names := map[string]bool{}
	for _, tr := range ts {
		names[tr.Name()] = true
	}
	for _, n := range []string{"binary", "simple", "one-hot", "word2vec"} {
		if !names[n] {
			t.Fatalf("missing transform %q", n)
		}
	}
}

// The 1D layout is the same buffer reshaped: verify the flattening
// concatenates rows (paper: "all lines of the text are concatenated").
func TestFlattenedLayoutConcatenatesLines(t *testing.T) {
	x := MapScript("ab\ncd", Simple{}, 2, 2)
	flat := x.Reshape(1, 4)
	g := Standardize("ab\ncd", 2, 2)
	for i := 0; i < 4; i++ {
		want := float32(g.Chars[i]) / 127.0
		if flat.Data[i] != want {
			t.Fatalf("flat[%d] = %v, want %v", i, flat.Data[i], want)
		}
	}
}
