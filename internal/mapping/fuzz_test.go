package mapping

import (
	"strings"
	"testing"
)

// FuzzStandardize hunts crop/pad edge cases: the grid must always be
// exactly rows*cols, newline-free, and standardizing the rendered grid
// again must be a fixed point (crop/pad is idempotent).
func FuzzStandardize(f *testing.F) {
	f.Add("#!/bin/bash\n#SBATCH -N 4\nsrun ./app\n", 16, 24)
	f.Add("", 1, 1)
	f.Add("one line longer than the grid width by far", 2, 8)
	f.Add("a\tb\r\nc", 4, 4)
	f.Fuzz(func(t *testing.T, script string, rows, cols int) {
		// Dimensions come from model config, not user input; bound them
		// to keep the fuzzer on the interesting text-handling paths.
		rows, cols = rows&63, cols&63
		g := Standardize(script, rows, cols)
		if len(g.Chars) != rows*cols {
			t.Fatalf("grid size %d, want %d*%d", len(g.Chars), rows, cols)
		}
		for i, c := range g.Chars {
			if c == '\n' {
				t.Fatalf("newline survived standardization at cell %d", i)
			}
		}
		// Render the grid back to text; re-standardizing must not move a
		// single byte.
		lines := make([]string, rows)
		for r := 0; r < rows; r++ {
			lines[r] = string(g.Chars[r*cols : (r+1)*cols])
		}
		again := Standardize(strings.Join(lines, "\n"), rows, cols)
		if string(again.Chars) != string(g.Chars) {
			t.Fatalf("standardize is not idempotent:\n%q\nvs\n%q", g.Chars, again.Chars)
		}
	})
}

// FuzzMapScript checks the script→pixel-matrix invariants the models
// rely on: binary pixels are 0/1, simple pixels sit in [0,1], and
// one-hot positions have exactly one channel set.
func FuzzMapScript(f *testing.F) {
	f.Add("#!/bin/bash\nsrun ./app --steps 100\n")
	f.Add("")
	f.Add("\x00\x7f\x80\xffπ")
	f.Fuzz(func(t *testing.T, script string) {
		const rows, cols = 12, 16
		n := rows * cols

		bin := MapScript(script, Binary{}, rows, cols)
		if len(bin.Data) != n {
			t.Fatalf("binary tensor len %d, want %d", len(bin.Data), n)
		}
		for i, v := range bin.Data {
			if v != 0 && v != 1 {
				t.Fatalf("binary pixel %d = %v, want 0 or 1", i, v)
			}
		}

		simple := MapScript(script, Simple{}, rows, cols)
		for i, v := range simple.Data {
			if v < 0 || v > 1 {
				t.Fatalf("simple pixel %d = %v, out of [0,1]", i, v)
			}
		}

		oh := MapScript(script, OneHot{}, rows, cols)
		if len(oh.Data) != 128*n {
			t.Fatalf("one-hot tensor len %d, want %d", len(oh.Data), 128*n)
		}
		for pos := 0; pos < n; pos++ {
			var sum float32
			for ch := 0; ch < 128; ch++ {
				v := oh.Data[ch*n+pos]
				if v != 0 && v != 1 {
					t.Fatalf("one-hot value %v at ch %d pos %d", v, ch, pos)
				}
				sum += v
			}
			if sum != 1 {
				t.Fatalf("one-hot position %d has %v channels set, want exactly 1", pos, sum)
			}
		}
	})
}
