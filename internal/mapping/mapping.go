// Package mapping implements PRIONN's novel job-script data mapping: the
// text of a whole job script is converted into an image-like matrix of
// pixels, one pixel (or pixel vector) per character, suitable for input
// into deep learning models (paper §2.1, §2.4).
//
// Scripts are first standardized to a fixed Rows×Cols character grid —
// longer scripts are cropped, shorter ones padded with spaces — and then
// each character is transformed to numerical channels by one of four
// transformations: binary, simple, one-hot, or word2vec.
package mapping

import (
	"strings"

	"prionn/internal/tensor"
	"prionn/internal/word2vec"
)

// Grid is a standardized Rows×Cols block of script characters.
type Grid struct {
	Rows, Cols int
	Chars      []byte // row-major, len == Rows*Cols
}

// Standardize crops/pads script text to a rows×cols character grid.
// Lines beyond rows and characters beyond cols are cropped; missing
// cells are padded with spaces. Tabs are preserved as characters (the
// binary transform distinguishes whitespace from code).
//
// Line endings are normalized before gridding: CRLF ("\r\n") and lone
// CR ("\r", classic-Mac files) both terminate a line exactly like LF,
// so byte-identical scripts authored on Windows, Unix, or old Mac
// tooling standardize to the same grid. Without this, a CRLF script
// kept a trailing '\r' on every line, which Binary mapped to pixel 1
// and Simple/OneHot mapped to a distinct channel — different pixel
// images for the same script text.
func Standardize(script string, rows, cols int) Grid {
	g := Grid{Rows: rows, Cols: cols, Chars: make([]byte, rows*cols)}
	for i := range g.Chars {
		g.Chars[i] = ' '
	}
	if strings.ContainsRune(script, '\r') {
		script = strings.ReplaceAll(script, "\r\n", "\n")
		script = strings.ReplaceAll(script, "\r", "\n")
	}
	lines := strings.Split(script, "\n")
	for r := 0; r < rows && r < len(lines); r++ {
		line := lines[r]
		for c := 0; c < cols && c < len(line); c++ {
			g.Chars[r*cols+c] = line[c]
		}
	}
	return g
}

// Transform converts a standardized character grid into pixel channels.
// Apply writes into dst.Data laid out [Channels, Rows, Cols] (row-major),
// the natural input layout for a 2D CNN; flattening the same buffer to
// [Channels, Rows*Cols] yields the 1D-sequence layout, in which all lines
// of text are concatenated into a single line (paper §2.1).
type Transform interface {
	// Name is the paper's name for the transformation.
	Name() string
	// Channels is the per-character vector width (1, 128, or the
	// embedding dimension).
	Channels() int
	// Apply fills dst (len == Channels()*len(g.Chars)) from the grid.
	Apply(g Grid, dst []float32)
}

// Binary is the lossy transformation: space characters (space, tab) map
// to 0 and all other characters map to 1.
type Binary struct{}

// Name implements Transform.
func (Binary) Name() string { return "binary" }

// Channels implements Transform.
func (Binary) Channels() int { return 1 }

// Apply implements Transform.
func (Binary) Apply(g Grid, dst []float32) {
	for i, c := range g.Chars {
		if c == ' ' || c == '\t' {
			dst[i] = 0
		} else {
			dst[i] = 1
		}
	}
}

// Simple is the lossless scalar transformation: each ASCII character maps
// to a unique value, normalized to [0, 1].
type Simple struct{}

// Name implements Transform.
func (Simple) Name() string { return "simple" }

// Channels implements Transform.
func (Simple) Channels() int { return 1 }

// Apply implements Transform.
func (Simple) Apply(g Grid, dst []float32) {
	const inv = 1.0 / 127.0
	for i, c := range g.Chars {
		if c > 127 {
			c = 127
		}
		dst[i] = float32(c) * inv
	}
}

// OneHot is the lossless transformation mapping each character to a
// 128-element indicator vector.
type OneHot struct{}

// Name implements Transform.
func (OneHot) Name() string { return "one-hot" }

// Channels implements Transform.
func (OneHot) Channels() int { return 128 }

// Apply implements Transform.
func (OneHot) Apply(g Grid, dst []float32) {
	n := len(g.Chars)
	clear(dst)
	for i, c := range g.Chars {
		if c > 127 {
			c = 127
		}
		// Channel-major layout: dst[channel*n + position].
		dst[int(c)*n+i] = 1
	}
}

// Word2Vec is the lossless transformation mapping each character to its
// trained embedding vector (paper: output size 4).
type Word2Vec struct {
	Emb *word2vec.Embedding
}

// Name implements Transform.
func (Word2Vec) Name() string { return "word2vec" }

// Channels implements Transform.
func (t Word2Vec) Channels() int { return t.Emb.Dim }

// Apply implements Transform.
func (t Word2Vec) Apply(g Grid, dst []float32) {
	n := len(g.Chars)
	for i, c := range g.Chars {
		v := t.Emb.Vector(c)
		for d := 0; d < t.Emb.Dim; d++ {
			dst[d*n+i] = v[d]
		}
	}
}

// MapScript standardizes one script and applies the transform, returning
// a [Channels, Rows, Cols] tensor.
func MapScript(script string, tr Transform, rows, cols int) *tensor.Tensor {
	g := Standardize(script, rows, cols)
	out := tensor.New(tr.Channels(), rows, cols)
	tr.Apply(g, out.Data)
	return out
}

// MapBatch concurrently transforms a batch of scripts into a stacked
// [N, Channels, Rows, Cols] tensor. This is the "concurrently maps the
// text of each job script" step of the PRIONN workflow; scripts are
// distributed across the tensor worker pool.
func MapBatch(scripts []string, tr Transform, rows, cols int) *tensor.Tensor {
	n := len(scripts)
	ch := tr.Channels()
	out := tensor.New(n, ch, rows, cols)
	sample := ch * rows * cols
	tensor.ParallelFor(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			g := Standardize(scripts[i], rows, cols)
			tr.Apply(g, out.Data[i*sample:(i+1)*sample])
		}
	})
	return out
}

// All returns the four paper transformations. The word2vec entry requires
// a trained embedding; pass nil to omit it.
func All(emb *word2vec.Embedding) []Transform {
	ts := []Transform{Binary{}, Simple{}, OneHot{}}
	if emb != nil {
		ts = append(ts, Word2Vec{Emb: emb})
	}
	return ts
}
