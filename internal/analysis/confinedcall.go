package analysis

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// confinedPrefix marks a function whose contract is single-goroutine
// confinement: //prionnvet:confined on the declaration's doc comment.
// Inference.Predict (PR 5) is the motivating API — it reuses internal
// scratch buffers and is only safe because exactly one goroutine (the
// prionnd batching loop) ever calls it.
const confinedPrefix = "prionnvet:confined"

// ConfinedCall enforces //prionnvet:confined annotations: an annotated
// function must not be reachable from more than one distinct
// goroutine-launch site in a package, nor from a single launch inside a
// loop (one go statement, many goroutines). Reachability is computed
// over the interprocedural call graph, so the confinement contract is
// checked through arbitrarily many wrapper layers.
type ConfinedCall struct{}

// Name implements Checker.
func (ConfinedCall) Name() string { return "confined-call" }

// Doc implements Checker.
func (ConfinedCall) Doc() string {
	return "//prionnvet:confined APIs must be reachable from at most one goroutine-launch site"
}

// Run implements Checker.
func (ConfinedCall) Run(p *Pass) []Finding {
	confined := map[*types.Func]bool{}
	for fn := range p.Confined {
		confined[fn] = true
	}
	// Annotations on this package's own declarations work even without a
	// loader-populated registry (fixtures, direct Pass construction).
	for fn := range scanConfinedFiles(p.Files, p.Info) {
		confined[fn] = true
	}
	if len(confined) == 0 {
		return nil
	}

	g := p.CallGraph()
	perCallee := map[*types.Func][]Launch{}
	for _, l := range g.Launches {
		reached := map[*types.Func]bool{}
		nodes := map[*CGNode]bool{}
		for _, e := range g.SiteEdges(l.Go.Call) {
			if e.Callee != nil && confined[e.Callee] {
				reached[e.Callee] = true
			}
			if e.Target != nil {
				for n := range g.ReachableFrom(e.Target) {
					nodes[n] = true
				}
			}
		}
		for n := range nodes {
			for _, e := range g.EdgesFrom(n) {
				if e.Callee != nil && confined[e.Callee] {
					reached[e.Callee] = true
				}
			}
		}
		for fn := range reached {
			perCallee[fn] = append(perCallee[fn], l)
		}
	}

	// Deterministic finding order despite map iteration: sort callees by
	// name (RunAll re-sorts by position anyway).
	callees := make([]*types.Func, 0, len(perCallee))
	for fn := range perCallee {
		callees = append(callees, fn)
	}
	sort.Slice(callees, func(i, j int) bool {
		return g.FuncName(callees[i]) < g.FuncName(callees[j])
	})

	var out []Finding
	for _, fn := range callees {
		launches := perCallee[fn]
		name := g.FuncName(fn)
		switch {
		case len(launches) > 1:
			for _, l := range launches {
				out = append(out, p.rangeFinding("confined-call", l.Go.Pos(), l.Go.Call.End(),
					"confined function %s is reachable from %d distinct goroutine-launch sites (contract allows one); this launch is one of them", name, len(launches)))
			}
		case launches[0].InLoop:
			l := launches[0]
			out = append(out, p.rangeFinding("confined-call", l.Go.Pos(), l.Go.Call.End(),
				"confined function %s is reachable from a goroutine launched in a loop; one site may spawn many goroutines", name))
		}
	}
	return out
}

// scanConfinedFiles collects the //prionnvet:confined annotations on
// function declarations in the given files. Both the loader (building
// the cross-package registry in Pass.Confined) and the checker (for
// standalone passes) use it.
func scanConfinedFiles(files []*ast.File, info *types.Info) map[*types.Func]bool {
	out := map[*types.Func]bool{}
	for _, file := range files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				line := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(line, confinedPrefix) {
					continue
				}
				if fn, ok := info.Defs[fd.Name].(*types.Func); ok {
					out[fn] = true
				}
				break
			}
		}
	}
	return out
}
