package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one parsed and type-checked package.
type Package struct {
	Dir        string
	ImportPath string
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
	// Confined is a snapshot of the loader's //prionnvet:confined
	// registry taken when this package finished loading: annotations
	// from the package itself and from every dependency the loader
	// type-checked before it (the loader resolves module-internal
	// imports itself, making *types.Func identities stable across
	// packages). A snapshot — not the live registry — so a Pass can be
	// read while another goroutine keeps loading packages.
	Confined map[*types.Func]bool
}

// Pass returns the analysis pass view of the package.
func (p *Package) Pass(fset *token.FileSet) *Pass {
	return &Pass{Fset: fset, Files: p.Files, Pkg: p.Pkg, Info: p.Info, Confined: p.Confined}
}

// Loader parses and type-checks packages using only the standard
// library: module-internal imports are resolved against the module root
// by path prefix, everything else (the standard library) is type-checked
// from source via go/importer's "source" compiler. This avoids any
// dependency on golang.org/x/tools while still giving checkers full
// types.Info.
type Loader struct {
	Fset *token.FileSet
	// ModulePath/ModuleRoot describe the module whose internal imports
	// the loader resolves itself. Both may be empty for standalone
	// directories (fixtures) that import only the standard library.
	ModulePath string
	ModuleRoot string

	// mu serializes all loading: LoadDir and ImportFrom lock it, the
	// unlocked internals (loadDir, importFrom) do the work, and go/types
	// re-enters through loaderImporter — a separate type, so the
	// type-checker's recursive imports never try to re-lock. The byDir,
	// byPath, and confined maps are only touched with mu held.
	mu       sync.Mutex
	std      types.ImporterFrom
	byPath   map[string]*Package
	byDir    map[string]*Package
	confined map[*types.Func]bool
}

// NewLoader returns a loader rooted at moduleRoot. If moduleRoot
// contains a go.mod, its module path is used to resolve internal
// imports; otherwise only standard-library imports are available.
func NewLoader(moduleRoot string) (*Loader, error) {
	fset := token.NewFileSet()
	l := &Loader{
		Fset:     fset,
		std:      importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		byPath:   map[string]*Package{},
		byDir:    map[string]*Package{},
		confined: map[*types.Func]bool{},
	}
	if moduleRoot != "" {
		abs, err := filepath.Abs(moduleRoot)
		if err != nil {
			return nil, err
		}
		l.ModuleRoot = abs
		if data, err := os.ReadFile(filepath.Join(abs, "go.mod")); err == nil {
			l.ModulePath = modulePath(string(data))
		}
	}
	return l, nil
}

// modulePath extracts the module path from go.mod contents.
func modulePath(gomod string) string {
	for _, line := range strings.Split(gomod, "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`)
		}
	}
	return ""
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, "", 0)
}

// ImportFrom implements types.ImporterFrom, routing module-internal
// paths to the loader and everything else to the source importer.
// Safe for concurrent use; loads are serialized on l.mu.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	//prionnvet:ignore lock-held-io -- loading IS the critical section: mu serializes parse+typecheck over the shared memo/confined maps, and no other lock is ever taken under it
	return l.importFrom(path, dir, mode)
}

// loaderImporter is the importer handed to types.Config: it reaches
// the unlocked internals directly, because conf.Check runs with l.mu
// already held and locking again would self-deadlock.
type loaderImporter struct{ l *Loader }

func (li loaderImporter) Import(path string) (*types.Package, error) {
	return li.l.importFrom(path, "", 0)
}

func (li loaderImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	return li.l.importFrom(path, dir, mode)
}

// importFrom is ImportFrom without the lock; callers hold l.mu.
func (l *Loader) importFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if l.ModulePath != "" && (path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/")) {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
		pkg, err := l.loadDir(filepath.Join(l.ModuleRoot, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		return pkg.Pkg, nil
	}
	return l.std.ImportFrom(path, dir, mode)
}

// LoadDir parses and type-checks the package in dir (non-test files
// only). Results are memoized, so shared dependencies are checked once.
// Safe for concurrent use; loads are serialized on l.mu.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	//prionnvet:ignore lock-held-io -- loading IS the critical section: mu serializes parse+typecheck over the shared memo/confined maps, and no other lock is ever taken under it
	return l.loadDir(dir)
}

// loadDir is LoadDir without the lock; callers hold l.mu (go/types
// re-enters here via loaderImporter during conf.Check).
func (l *Loader) loadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	if pkg, ok := l.byDir[abs]; ok {
		if pkg == nil {
			return nil, fmt.Errorf("analysis: import cycle through %s", abs)
		}
		return pkg, nil
	}
	l.byDir[abs] = nil // cycle guard

	files, err := l.parseDir(abs)
	if err != nil {
		delete(l.byDir, abs) // clear the cycle guard: retries must not report a cycle
		return nil, err
	}
	if len(files) == 0 {
		delete(l.byDir, abs)
		return nil, fmt.Errorf("analysis: no buildable Go files in %s", abs)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	importPath := l.importPathFor(abs, files[0].Name.Name)
	conf := types.Config{Importer: loaderImporter{l}}
	tpkg, err := conf.Check(importPath, l.Fset, files, info)
	if err != nil {
		delete(l.byDir, abs)
		return nil, fmt.Errorf("analysis: type-checking %s: %w", abs, err)
	}
	for fn := range scanConfinedFiles(files, info) {
		l.confined[fn] = true
	}
	// Snapshot the registry: a package's relevant annotations come from
	// itself and its dependencies, all loaded (under mu) before this
	// point, so the copy is complete for this package — and immutable,
	// so a Pass over it is safe against later concurrent loads.
	confined := make(map[*types.Func]bool, len(l.confined))
	for fn := range l.confined {
		confined[fn] = true
	}
	pkg := &Package{Dir: abs, ImportPath: importPath, Files: files, Pkg: tpkg, Info: info, Confined: confined}
	l.byDir[abs] = pkg
	l.byPath[importPath] = pkg
	return pkg, nil
}

// importPathFor derives the import path of dir relative to the module
// root, falling back to the package name for standalone directories.
func (l *Loader) importPathFor(dir, pkgName string) string {
	if l.ModuleRoot != "" && l.ModulePath != "" {
		if rel, err := filepath.Rel(l.ModuleRoot, dir); err == nil && !strings.HasPrefix(rel, "..") {
			if rel == "." {
				return l.ModulePath
			}
			return l.ModulePath + "/" + filepath.ToSlash(rel)
		}
	}
	return pkgName
}

// parseDir parses the non-test Go files of dir with comments (needed
// for suppression directives). Build constraints — //go:build and
// legacy +build lines as well as _GOOS/_GOARCH filename suffixes — are
// evaluated against the host target via go/build, so e.g. a
// //go:build amd64 kernel shim is type-checked on amd64 while its
// !amd64 fallback (and anything tagged ignore) is skipped, matching
// what `go build` would compile.
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		match, err := build.Default.MatchFile(dir, name)
		if err != nil {
			return nil, fmt.Errorf("analysis: build constraints of %s: %w", filepath.Join(dir, name), err)
		}
		if !match {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// PackageDirs walks root and returns every directory containing
// buildable (non-test) Go files, skipping testdata, vendor, hidden
// directories, and anything in skip.
func PackageDirs(root string, skip map[string]bool) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if skip[path] {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dir := filepath.Dir(path)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	// WalkDir visits files of a dir contiguously, but dedupe defensively.
	out := dirs[:0]
	for i, d := range dirs {
		if i == 0 || dirs[i-1] != d {
			out = append(out, d)
		}
	}
	return out, nil
}
