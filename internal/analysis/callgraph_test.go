package analysis

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
	"testing"
)

// loadCallgraph loads the engine fixture and builds its call graph.
func loadCallgraph(t *testing.T) (*Pass, *CallGraph) {
	t.Helper()
	loader, pkg := loadFixture(t, "callgraph")
	pass := pkg.Pass(loader.Fset)
	return pass, pass.CallGraph()
}

// declNode resolves a top-level function of the fixture to its node.
func declNode(t *testing.T, p *Pass, g *CallGraph, name string) *CGNode {
	t.Helper()
	fn, ok := p.Pkg.Scope().Lookup(name).(*types.Func)
	if !ok {
		t.Fatalf("fixture has no function %q", name)
	}
	n := g.DeclNode(fn)
	if n == nil {
		t.Fatalf("no call-graph node for %q", name)
	}
	return n
}

// calleeNames renders the resolved callees of a node, sorted.
func calleeNames(g *CallGraph, n *CGNode) []string {
	var out []string
	for _, e := range g.EdgesFrom(n) {
		if e.Unresolved {
			out = append(out, "<unresolved>")
			continue
		}
		if e.Callee != nil {
			out = append(out, g.FuncName(e.Callee))
		}
	}
	sort.Strings(out)
	return out
}

func TestCallGraphEdgeResolution(t *testing.T) {
	p, g := loadCallgraph(t)
	cases := []struct {
		fn      string
		kind    EdgeKind
		callees []string
	}{
		{"caller", EdgeDirect, []string{"helper"}},
		{"callsMethod", EdgeMethod, []string{"thing.method"}},
		{"callsInterface", EdgeInterface, []string{"english.greet", "terse.greet"}},
		{"funcValue", EdgeFuncValue, []string{"helper"}},
	}
	for _, tc := range cases {
		n := declNode(t, p, g, tc.fn)
		got := calleeNames(g, n)
		if strings.Join(got, ",") != strings.Join(tc.callees, ",") {
			t.Errorf("%s: callees = %v, want %v", tc.fn, got, tc.callees)
		}
		for _, e := range g.EdgesFrom(n) {
			if e.Kind != tc.kind {
				t.Errorf("%s: edge kind = %d, want %d", tc.fn, e.Kind, tc.kind)
			}
			if e.Target == nil {
				t.Errorf("%s: in-package callee has no target node", tc.fn)
			}
		}
	}
}

func TestCallGraphUnresolved(t *testing.T) {
	p, g := loadCallgraph(t)
	n := declNode(t, p, g, "unresolved")
	edges := g.EdgesFrom(n)
	if len(edges) != 1 || !edges[0].Unresolved {
		t.Fatalf("call through a func parameter: edges = %+v, want one unresolved edge", edges)
	}
}

func TestCallGraphLaunches(t *testing.T) {
	p, g := loadCallgraph(t)
	launcher := declNode(t, p, g, "launches")
	var plain, looped int
	for _, l := range g.Launches {
		if l.Node != launcher {
			t.Errorf("launch attributed to %s, want launches", g.NodeName(l.Node))
		}
		if l.InLoop {
			looped++
		} else {
			plain++
		}
	}
	if plain != 1 || looped != 1 {
		t.Errorf("launches: plain=%d looped=%d, want 1 and 1", plain, looped)
	}
}

func TestCallGraphReachableAndPropagate(t *testing.T) {
	p, g := loadCallgraph(t)
	src := declNode(t, p, g, "source")
	taint := declNode(t, p, g, "taintUser")
	clean := declNode(t, p, g, "cleanUser")

	reach := g.ReachableFrom(taint)
	if !reach[src] {
		t.Errorf("source not reachable from taintUser")
	}
	if reach[clean] {
		t.Errorf("cleanUser wrongly reachable from taintUser")
	}

	fact := g.Propagate(func(n *CGNode) bool { return n == src })
	for name, want := range map[string]bool{
		"source": true, "wrap": true, "wrapNamed": true,
		"taintUser": true, "namedUser": true,
		"cleanUser": false, "helper": false,
	} {
		if got := fact[declNode(t, p, g, name)]; got != want {
			t.Errorf("Propagate: fact[%s] = %v, want %v", name, got, want)
		}
	}
}

func TestFlowsFromInter(t *testing.T) {
	p, g := loadCallgraph(t)
	sourceFn, _ := p.Pkg.Scope().Lookup("source").(*types.Func)
	pred := func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		return ok && p.Info.Uses[id] == types.Object(sourceFn)
	}
	for name, want := range map[string]bool{
		"taintUser": true,  // through wrap's return expression
		"namedUser": true,  // through wrapNamed's named-result definition
		"cleanUser": false, // helper never touches source
	} {
		n := declNode(t, p, g, name)
		rets := returnExprsOf(n)
		if len(rets) == 0 {
			t.Fatalf("%s: no return expressions", name)
		}
		fi := p.FuncInfoAt(n.Decl.Pos())
		if fi == nil {
			t.Fatalf("%s: no FuncInfo", name)
		}
		if got := p.FlowsFromInter(fi, rets[0], pred); got != want {
			t.Errorf("FlowsFromInter(%s) = %v, want %v", name, got, want)
		}
	}
}
