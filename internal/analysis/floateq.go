package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// FloatEq flags == and != between floating-point operands. Exact float
// comparison silently diverges across refactors that reassociate
// arithmetic (e.g. the parallel matmul kernels), which corrupts the
// accuracy tables the paper reports. Comparisons belong in the approved
// tolerance helpers of internal/metrics (ApproxEqual / ApproxEqualRel),
// which are exempt, as is the x != x NaN idiom.
//
// Comparing against a constant zero is exempt when the dataflow engine
// shows the other operand is a pure load (a field, an element, a
// parameter, a range value): a zero there is a sentinel written as the
// literal 0, and loads reproduce it bit-exactly. The comparison is
// still flagged when the operand derives from float arithmetic, where
// "exactly zero" genuinely depends on rounding.
type FloatEq struct{}

func (FloatEq) Name() string { return "float-eq" }
func (FloatEq) Doc() string {
	return "flags ==/!= on float operands outside internal/metrics tolerance helpers"
}

// floatEqExemptPkgs hold the approved tolerance helpers; comparisons
// there are the implementation of the sanctioned API.
func floatEqExempt(pkgPath string) bool {
	return pkgPath == "prionn/internal/metrics" || strings.HasSuffix(pkgPath, "/internal/metrics")
}

func (c FloatEq) Run(p *Pass) []Finding {
	if p.Pkg != nil && floatEqExempt(p.Pkg.Path()) {
		return nil
	}
	var out []Finding
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloat(p.Info.TypeOf(be.X)) && !isFloat(p.Info.TypeOf(be.Y)) {
				return true
			}
			// x != x is the standard NaN probe; keep it.
			if be.Op == token.NEQ && sameIdent(be.X, be.Y) {
				return true
			}
			if zeroSentinelExempt(p, be) {
				return true
			}
			out = append(out, p.finding(c.Name(), be.Pos(),
				"%s compares floats exactly; use metrics.ApproxEqual (or a documented tolerance) instead", be.Op))
			return true
		})
	}
	return out
}

// zeroSentinelExempt reports whether be compares a pure load against a
// constant zero. Zero sentinels (unset field, empty slot) are written
// as the literal 0 and loads carry them bit-exactly, so the comparison
// is reliable; any float arithmetic on the operand's producing chain
// (binary ops, compound assignments, ++/--) voids the exemption.
func zeroSentinelExempt(p *Pass, be *ast.BinaryExpr) bool {
	var other ast.Expr
	switch {
	case isZeroConst(p.Info, be.Y):
		other = be.X
	case isZeroConst(p.Info, be.X):
		other = be.Y
	default:
		return false
	}
	fi := p.FuncInfoAt(be.Pos())
	if fi == nil {
		return false // package-level initializer: no chains to consult
	}
	return !fi.FlowsFrom(other, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.BinaryExpr:
			switch e.Op {
			case token.ADD, token.SUB, token.MUL, token.QUO:
				return isFloat(p.Info.TypeOf(e))
			}
		case *ast.AssignStmt:
			switch e.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				return isFloat(p.Info.TypeOf(e.Lhs[0]))
			}
		case *ast.IncDecStmt:
			return isFloat(p.Info.TypeOf(e.X))
		}
		return false
	})
}

// isZeroConst reports whether e is a compile-time numeric constant equal
// to zero.
func isZeroConst(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	switch tv.Value.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(tv.Value) == 0
	}
	return false
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func sameIdent(a, b ast.Expr) bool {
	ai, aok := a.(*ast.Ident)
	bi, bok := b.(*ast.Ident)
	return aok && bok && ai.Name == bi.Name
}
