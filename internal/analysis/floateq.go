package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// FloatEq flags == and != between floating-point operands. Exact float
// comparison silently diverges across refactors that reassociate
// arithmetic (e.g. the parallel matmul kernels), which corrupts the
// accuracy tables the paper reports. Comparisons belong in the approved
// tolerance helpers of internal/metrics (ApproxEqual / ApproxEqualRel),
// which are exempt, as is the x != x NaN idiom.
type FloatEq struct{}

func (FloatEq) Name() string { return "float-eq" }
func (FloatEq) Doc() string {
	return "flags ==/!= on float operands outside internal/metrics tolerance helpers"
}

// floatEqExemptPkgs hold the approved tolerance helpers; comparisons
// there are the implementation of the sanctioned API.
func floatEqExempt(pkgPath string) bool {
	return pkgPath == "prionn/internal/metrics" || strings.HasSuffix(pkgPath, "/internal/metrics")
}

func (c FloatEq) Run(p *Pass) []Finding {
	if p.Pkg != nil && floatEqExempt(p.Pkg.Path()) {
		return nil
	}
	var out []Finding
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloat(p.Info.TypeOf(be.X)) && !isFloat(p.Info.TypeOf(be.Y)) {
				return true
			}
			// x != x is the standard NaN probe; keep it.
			if be.Op == token.NEQ && sameIdent(be.X, be.Y) {
				return true
			}
			out = append(out, p.finding(c.Name(), be.Pos(),
				"%s compares floats exactly; use metrics.ApproxEqual (or a documented tolerance) instead", be.Op))
			return true
		})
	}
	return out
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func sameIdent(a, b ast.Expr) bool {
	ai, aok := a.(*ast.Ident)
	bi, bok := b.(*ast.Ident)
	return aok && bok && ai.Name == bi.Name
}
