package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// SeedFlow tracks how seeds and seeded generators travel through a
// function. Three bug classes break per-seed reproducibility even when
// every constructor call looks correct in isolation:
//
//   - a fresh *rand.Rand declared with := shadowing an outer generator,
//     so part of the function silently draws from a different stream;
//   - one *rand.Rand shared across goroutines (rand.Rand is not
//     concurrency-safe, and even with a lock the interleaving order
//     changes the draw sequence between runs);
//   - a seed that reaches rand.NewSource/NewPCG from time.Now through
//     one or more local assignments — the laundering the purely
//     syntactic unseeded-rand checker cannot see.
type SeedFlow struct{}

func (SeedFlow) Name() string { return "seed-flow" }
func (SeedFlow) Doc() string {
	return "flags shadowed rand generators, cross-goroutine rand sharing, and time-derived seeds"
}

func (c SeedFlow) Run(p *Pass) []Finding {
	var out []Finding
	out = append(out, c.shadows(p)...)
	for _, fi := range p.FuncInfos() {
		out = append(out, c.sharedAcrossGoroutines(fi)...)
		out = append(out, c.launderedSeeds(fi)...)
	}
	return out
}

// shadows flags := / var declarations of a rand generator whose name
// shadows an outer generator.
func (c SeedFlow) shadows(p *Pass) []Finding {
	// types.Info.Defs is a map; collect candidates and sort by position
	// so the checker's own report order is deterministic.
	var ids []*ast.Ident
	for id, obj := range p.Info.Defs {
		v, ok := obj.(*types.Var)
		if !ok || v.IsField() || !isRandGenType(v.Type()) {
			continue
		}
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i].Pos() < ids[j].Pos() })

	var out []Finding
	for _, id := range ids {
		v := p.Info.Defs[id].(*types.Var)
		scope := v.Parent()
		if scope == nil || scope.Parent() == nil || scope.Parent() == types.Universe {
			continue // package scope, or no outer scope to shadow
		}
		if isParamIdent(p, id) {
			continue // parameters name the caller's generator on purpose
		}
		if _, prev := scope.Parent().LookupParent(id.Name, id.Pos()); prev != nil {
			if pv, ok := prev.(*types.Var); ok && isRandGenType(pv.Type()) {
				out = append(out, p.finding(c.Name(), id.Pos(),
					"declaration of %s shadows an outer rand generator; the shadowed stream and the new one diverge silently — reuse the outer generator or name the new one distinctly", id.Name))
			}
		}
	}
	return out
}

// sharedAcrossGoroutines flags a rand generator captured by goroutines
// in a way that makes the draw order depend on scheduling: captured by
// a goroutine launched in a loop, by two or more goroutines, or by one
// goroutine while the spawner keeps drawing from it.
func (c SeedFlow) sharedAcrossGoroutines(fi *FuncInfo) []Finding {
	p := fi.Pass
	type launch struct {
		stmt   *ast.GoStmt
		inLoop bool
	}
	var launches []launch
	var walk func(n ast.Node, inLoop bool)
	walk = func(n ast.Node, inLoop bool) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.ForStmt:
				if s.Body != nil {
					walk(s.Body, true)
				}
				return false
			case *ast.RangeStmt:
				if s.Body != nil {
					walk(s.Body, true)
				}
				return false
			case *ast.GoStmt:
				launches = append(launches, launch{s, inLoop})
			}
			return true
		})
	}
	walk(fi.Decl.Body, false)
	if len(launches) == 0 {
		return nil
	}

	// fi.Defs is a map; order the generators by declaration position.
	var gens []*types.Var
	for obj := range fi.Defs {
		if isRandGenType(obj.Type()) {
			gens = append(gens, obj)
		}
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i].Pos() < gens[j].Pos() })

	var out []Finding
	for _, obj := range gens {
		declPos := obj.Pos()
		var inGo []launch       // launches whose body/args use obj
		var lastGoEnd token.Pos // end of the latest such launch
		for _, l := range launches {
			if l.stmt.Pos() <= declPos && declPos <= l.stmt.End() {
				continue // generator declared inside the goroutine: private to it
			}
			usedHere := false
			for _, u := range fi.Uses[obj] {
				if u.Pos() >= l.stmt.Pos() && u.Pos() <= l.stmt.End() {
					usedHere = true
					break
				}
			}
			if usedHere {
				inGo = append(inGo, l)
				if l.stmt.End() > lastGoEnd {
					lastGoEnd = l.stmt.End()
				}
			}
		}
		if len(inGo) == 0 {
			continue
		}
		switch {
		case inGo[0].inLoop:
			out = append(out, p.finding(c.Name(), inGo[0].stmt.Pos(),
				"goroutine launched in a loop captures rand generator %s; concurrent draws race and their order is schedule-dependent — derive one seeded generator per goroutine", obj.Name()))
		case len(inGo) >= 2:
			out = append(out, p.finding(c.Name(), inGo[1].stmt.Pos(),
				"rand generator %s is captured by multiple goroutines; draw order becomes schedule-dependent — derive one seeded generator per goroutine", obj.Name()))
		default:
			for _, u := range fi.Uses[obj] {
				if u.Pos() > lastGoEnd {
					out = append(out, p.finding(c.Name(), u.Pos(),
						"rand generator %s is used here while also captured by a goroutine above; draws race and their interleaving is nondeterministic — derive a separate seeded generator", obj.Name()))
					break
				}
			}
		}
	}
	return out
}

// launderedSeeds flags seeds that reach a rand constructor from
// time.Now through local assignments. The direct form
// rand.NewSource(time.Now().UnixNano()) is unseeded-rand's, so it is
// excluded here to avoid double reports.
func (c SeedFlow) launderedSeeds(fi *FuncInfo) []Finding {
	p := fi.Pass
	var out []Finding
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		pkg, name, ok := qualifiedCall(p.Info, call)
		if !ok || !isRandPkg(pkg) {
			return true
		}
		switch name {
		case "NewSource", "NewPCG", "NewZipf", "New":
		default:
			return true
		}
		for _, arg := range call.Args {
			if isRandGenType(p.Info.TypeOf(arg)) {
				continue // a generator/source argument, not a seed; its own constructor is checked
			}
			if callsTimeNowExpr(p, arg) {
				continue // the syntactic case; unseeded-rand reports it
			}
			if fi.FlowsFrom(arg, func(n ast.Node) bool {
				inner, ok := n.(*ast.CallExpr)
				if !ok {
					return false
				}
				ipkg, iname, ok := qualifiedCall(p.Info, inner)
				return ok && ipkg == "time" && iname == "Now"
			}) {
				out = append(out, p.finding(c.Name(), call.Pos(),
					"seed passed to rand.%s derives from time.Now via local assignments; thread an explicit seed from the caller's Config instead", name))
				break
			}
		}
		return true
	})
	return out
}

// callsTimeNowExpr reports whether the expression subtree itself calls
// time.Now (no dataflow).
func callsTimeNowExpr(p *Pass, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if pkg, name, ok := qualifiedCall(p.Info, call); ok && pkg == "time" && name == "Now" {
				found = true
				return false
			}
		}
		return !found
	})
	return found
}

// isRandGenType reports whether t is a math/rand generator or source
// (possibly behind a pointer): rand.Rand, rand.Source, v2 equivalents.
func isRandGenType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !isRandPkg(obj.Pkg().Path()) {
		return false
	}
	switch obj.Name() {
	case "Rand", "Source", "Source64", "PCG", "ChaCha8":
		return true
	}
	return false
}

// isParamIdent reports whether id is declared in a function's
// parameter/receiver/result list.
func isParamIdent(p *Pass, id *ast.Ident) bool {
	fi := p.FuncInfoAt(id.Pos())
	if fi == nil {
		return false
	}
	obj, ok := p.Info.Defs[id].(*types.Var)
	return ok && fi.ParamObjs[obj]
}
