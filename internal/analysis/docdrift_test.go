package analysis

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// checkerRowRe matches one row of the README checker table:
// | `name` | doc line |
var checkerRowRe = regexp.MustCompile("^\\| `([a-z-]+)` \\| (.+) \\|$")

// TestReadmeCheckerTableMatchesRegistry pins the README checker table
// to the registry: same checkers, same order, same doc lines. Adding,
// renaming, or redocumenting a checker without updating README.md (or
// vice versa) fails here, so the docs cannot drift from the code.
func TestReadmeCheckerTableMatchesRegistry(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("..", "..", "README.md"))
	if err != nil {
		t.Fatalf("reading README.md: %v", err)
	}
	text := string(data)

	const begin = "<!-- prionnvet-checkers:begin -->"
	const end = "<!-- prionnvet-checkers:end -->"
	i := strings.Index(text, begin)
	j := strings.Index(text, end)
	if i < 0 || j < 0 || j < i {
		t.Fatalf("README.md is missing the %s / %s markers", begin, end)
	}

	type row struct{ name, doc string }
	var rows []row
	for _, line := range strings.Split(text[i+len(begin):j], "\n") {
		line = strings.TrimSpace(line)
		if m := checkerRowRe.FindStringSubmatch(line); m != nil {
			rows = append(rows, row{name: m[1], doc: m[2]})
		}
	}

	all := All()
	if len(rows) != len(all) {
		var names []string
		for _, r := range rows {
			names = append(names, r.name)
		}
		t.Fatalf("README table has %d checker rows (%v), registry has %d",
			len(rows), names, len(all))
	}
	for k, c := range all {
		if rows[k].name != c.Name() {
			t.Errorf("row %d: README says %q, registry says %q (order matters)",
				k, rows[k].name, c.Name())
			continue
		}
		if rows[k].doc != c.Doc() {
			t.Errorf("%s: README doc %q != Doc() %q", c.Name(), rows[k].doc, c.Doc())
		}
	}
}
