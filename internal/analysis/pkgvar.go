package analysis

import (
	"go/ast"
	"go/types"
)

// MutablePkgVar flags writes to package-level variables outside init,
// unless the enclosing function visibly acquires a lock. Writable
// package state reachable from exported APIs (the old tensor.maxWorkers
// was the canonical case) is a data race the moment two goroutines use
// the package, and races in the worker-pool configuration corrupt the
// determinism the paper's tables depend on.
//
// Exemptions:
//   - writes inside func init (single-goroutine by the language spec);
//   - vars whose type lives in sync or sync/atomic (mutexes and atomics
//     are the remedies, not the disease);
//   - writes inside functions that call .Lock()/.RLock() somewhere —
//     a coarse but effective "this function knows about locking" signal.
//
// Anything else needs a redesign (atomics, mutex, or constructor-scoped
// state) or a justified suppression.
type MutablePkgVar struct{}

func (MutablePkgVar) Name() string { return "mutable-pkg-var" }
func (MutablePkgVar) Doc() string {
	return "flags unsynchronized writes to package-level variables outside init"
}

func (c MutablePkgVar) Run(p *Pass) []Finding {
	var out []Finding
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if fn.Name.Name == "init" && fn.Recv == nil {
				continue
			}
			locked := acquiresLock(fn.Body)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				switch s := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range s.Lhs {
						if name, obj := writtenPkgVar(p, lhs); obj != nil && !locked {
							out = append(out, p.finding(c.Name(), lhs.Pos(),
								"%s writes package-level var %s without synchronization; use sync/atomic, a mutex, or move the state into a struct", fn.Name.Name, name))
						}
					}
				case *ast.IncDecStmt:
					if name, obj := writtenPkgVar(p, s.X); obj != nil && !locked {
						out = append(out, p.finding(c.Name(), s.Pos(),
							"%s writes package-level var %s without synchronization; use sync/atomic, a mutex, or move the state into a struct", fn.Name.Name, name))
					}
				}
				return true
			})
		}
	}
	return out
}

// writtenPkgVar resolves an assignment target to a mutable package-level
// variable of the package under analysis: a direct assignment to the var,
// or an element/field write through it (m[k] = v mutates shared state
// just as surely as m = v). Vars of sync/atomic types are exempt.
func writtenPkgVar(p *Pass, lhs ast.Expr) (string, types.Object) {
	// Unwrap element and field writes down to the base identifier.
	for {
		switch e := lhs.(type) {
		case *ast.IndexExpr:
			lhs = e.X
			continue
		case *ast.SelectorExpr:
			lhs = e.X
			continue
		case *ast.StarExpr:
			// Writing through a dereferenced pointer: the pointee is not
			// necessarily the package var itself.
			return "", nil
		}
		break
	}
	id, ok := lhs.(*ast.Ident)
	if !ok || id.Name == "_" {
		return "", nil
	}
	obj := p.Info.Uses[id]
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() != p.Pkg {
		return "", nil
	}
	if p.Pkg.Scope().Lookup(id.Name) != obj {
		return "", nil // local, parameter, or field — not package scope
	}
	if isSyncType(v.Type()) {
		return "", nil
	}
	return id.Name, obj
}

// isSyncType reports whether t is (or points to) a type defined in sync
// or sync/atomic.
func isSyncType(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	pkg := named.Obj().Pkg()
	if pkg == nil {
		return false
	}
	return pkg.Path() == "sync" || pkg.Path() == "sync/atomic"
}

// acquiresLock reports whether the body calls a Lock/RLock method
// anywhere — the heuristic signal that writes in this function are
// mutex-guarded.
func acquiresLock(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if sel.Sel.Name == "Lock" || sel.Sel.Name == "RLock" {
				found = true
			}
		}
		return !found
	})
	return found
}
