package analysis

// Lockset engine: the concurrency half of the interprocedural layer.
// On top of the call graph (callgraph.go) it computes, per function
// body, the positional mutex regions (generalized out of lock-held-io,
// which now consumes them), a must-hold *entry lockset* for every node
// (the locks guaranteed held whenever the function is entered,
// propagated top-down through call sites with intersection semantics),
// a may-acquire summary (the locks a function or anything it reaches
// can take, bottom-up with union semantics), and the package-level
// *lock-order graph*: an edge L1→L2 whenever L2 is acquired — directly
// or through any chain of calls — while L1 is held. Cycles in that
// graph are potential deadlocks (lock-order-cycle); the per-position
// lockset answers "is this field access guarded?" (guarded-field) and
// "which locks does Wait hold?" (waitgroup-misuse).
//
// Lock identity is type-based, the standard abstraction for static
// lockset analysis: s.mu in one method and t.mu in another method of
// the same struct are the same lock (distinct instances of one type
// are almost always the same instance when two functions of one
// package touch them, and merging them errs toward reporting).
// Package-level mutexes key by their variable; purely local mutexes by
// their declaration position, so they never unify across functions.
//
// Directions of conservatism: the entry lockset is a MUST analysis —
// exported functions, goroutine bodies, and defer targets start from
// the empty set, because the analysis cannot see their callers' lock
// state (a goroutine never inherits its spawner's locks: they run
// concurrently). The acquisition summary is a MAY analysis — launch
// sites are excluded (a lock taken by a spawned goroutine is not taken
// by the spawner), everything else unions in.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
)

// LockRegion is one positional mutex region inside a single function
// body: from the Lock/RLock call to the first matching positional
// Unlock, or to the end of the body when the unlock is deferred or
// absent.
type LockRegion struct {
	// Key is the canonical lock identity (see lockKeyOf).
	Key string
	// Display is the source-level receiver text, e.g. "s.mu", used in
	// messages.
	Display string
	// RLock marks a read-lock region.
	RLock bool
	// Acquire is the Lock/RLock call.
	Acquire *ast.CallExpr
	// Start and End delimit the region: (Acquire.End(), matching
	// unlock position or body end). An operation at pos is inside the
	// region when Start < pos < End.
	Start, End token.Pos
}

// Covers reports whether pos falls inside the region.
func (r LockRegion) Covers(pos token.Pos) bool { return pos > r.Start && pos < r.End }

// lockKeyOf canonicalizes the receiver expression of a sync method
// call (the s.mu of s.mu.Lock(), or the s of an embedded s.Lock()) to
// a stable cross-function identity. Shared by the lockset engine and
// the WaitGroup checker, which needs the same receiver unification for
// Add/Done/Wait pairing.
func lockKeyOf(p *Pass, recv ast.Expr) (key, display string) {
	display = types.ExprString(recv)
	e := ast.Unparen(recv)
	switch x := e.(type) {
	case *ast.SelectorExpr:
		// Field path: key by the type that holds the field, so s.mu and
		// t.mu unify when s and t have the same type.
		if sel, ok := p.Info.Selections[x]; ok && sel.Kind() == types.FieldVal {
			t := sel.Recv()
			if ptr, isPtr := t.(*types.Pointer); isPtr {
				t = ptr.Elem()
			}
			if named, isNamed := t.(*types.Named); isNamed {
				return "T:" + named.Obj().Name() + "." + x.Sel.Name, display
			}
		}
	case *ast.Ident:
		if v, ok := p.Info.Uses[x].(*types.Var); ok {
			t := v.Type()
			if ptr, isPtr := t.(*types.Pointer); isPtr {
				t = ptr.Elem()
			}
			// Embedded mutex called through the owner value (s.Lock()):
			// key by the owner type so every method agrees.
			if named, isNamed := t.(*types.Named); isNamed && named.Obj().Pkg() == p.Pkg {
				return "T:" + named.Obj().Name(), display
			}
			if v.Parent() == p.Pkg.Scope() {
				return "G:" + v.Name(), display
			}
			// Function-local mutex: unique per declaration, never unified
			// across functions.
			return fmt.Sprintf("L:%d", v.Pos()), display
		}
	}
	return "E:" + display, display
}

// lockRegionsIn computes the positional lock regions of one node's own
// body (nested literals are their own nodes and excluded). Deferred
// unlocks do not close a region — the lock is held to the body end.
func lockRegionsIn(p *Pass, n *CGNode) []LockRegion {
	type unlock struct {
		key  string
		runl bool // RUnlock
		pos  token.Pos
	}
	var locks []LockRegion
	var unlocks []unlock
	deferred := map[*ast.CallExpr]bool{}
	inspectOwn(n.Body(), func(x ast.Node) {
		switch s := x.(type) {
		case *ast.DeferStmt:
			deferred[s.Call] = true
		case *ast.CallExpr:
			op, ok := mutexOpOf(p, s)
			if !ok {
				return
			}
			key, display := lockKeyOf(p, op.recv)
			switch op.name {
			case "Lock", "RLock":
				locks = append(locks, LockRegion{
					Key:     key,
					Display: display,
					RLock:   op.name == "RLock",
					Acquire: s,
					Start:   s.End(),
					End:     n.Body().End(),
				})
			default:
				if !deferred[s] {
					unlocks = append(unlocks, unlock{key: key, runl: op.name == "RUnlock", pos: s.Pos()})
				}
			}
		}
	})
	for i := range locks {
		for _, u := range unlocks {
			if u.key == locks[i].Key && u.runl == locks[i].RLock &&
				u.pos > locks[i].Start && u.pos < locks[i].End {
				locks[i].End = u.pos
			}
		}
	}
	return locks
}

// LockOrderEdge is one edge of the lock-order graph: To was acquired
// while From was held, at Pos inside Node. Why renders the acquisition
// step for reports.
type LockOrderEdge struct {
	From, To string // canonical keys
	Node     *CGNode
	Pos, End token.Pos
	Why      string
}

// LockFacts bundles the lockset analysis of one package, memoized on
// the Pass (see Pass.LockFacts).
type LockFacts struct {
	pass *Pass
	g    *CallGraph

	regions map[*CGNode][]LockRegion
	// entry is the must-hold lockset at each node's entry.
	entry map[*CGNode]map[string]bool
	// acquired is the may-acquire summary: every lock the node or any
	// in-package function it reaches (launches excluded) can take.
	acquired map[*CGNode]map[string]bool
	// display maps canonical keys to the first source spelling seen.
	display map[string]string
	// order is the lock-order graph, deduplicated by (From, To) with
	// the first witness kept; insertion order is deterministic (node
	// order, then source order).
	order []*LockOrderEdge

	launchSite map[*ast.CallExpr]bool
	deferSite  map[*ast.CallExpr]bool
	launched   map[*CGNode]bool
}

// LockFacts returns the package lockset analysis, building it on first
// use. Checkers sharing a Pass share one computation.
func (p *Pass) LockFacts() *LockFacts {
	if p.lf != nil {
		return p.lf
	}
	lf := &LockFacts{
		pass:       p,
		g:          p.CallGraph(),
		regions:    map[*CGNode][]LockRegion{},
		entry:      map[*CGNode]map[string]bool{},
		acquired:   map[*CGNode]map[string]bool{},
		display:    map[string]string{},
		launchSite: map[*ast.CallExpr]bool{},
		deferSite:  map[*ast.CallExpr]bool{},
		launched:   map[*CGNode]bool{},
	}
	lf.build()
	p.lf = lf
	return lf
}

// Regions returns the node's positional lock regions.
func (lf *LockFacts) Regions(n *CGNode) []LockRegion { return lf.regions[n] }

// Display renders a canonical lock key for messages.
func (lf *LockFacts) Display(key string) string {
	if d, ok := lf.display[key]; ok {
		return d
	}
	return key
}

// Launched reports whether n is the body of a goroutine launch.
func (lf *LockFacts) Launched(n *CGNode) bool { return lf.launched[n] }

// Acquired returns the may-acquire summary of n: every lock n or any
// function it reaches (not counting goroutines it spawns) can take.
func (lf *LockFacts) Acquired(n *CGNode) map[string]bool { return lf.acquired[n] }

// HeldAt returns the must-hold lockset at pos inside n: the entry
// lockset plus every local region covering pos.
func (lf *LockFacts) HeldAt(n *CGNode, pos token.Pos) map[string]bool {
	out := map[string]bool{}
	for k := range lf.entry[n] {
		out[k] = true
	}
	for _, r := range lf.regions[n] {
		if r.Covers(pos) {
			out[r.Key] = true
		}
	}
	return out
}

// OrderEdges returns the lock-order graph edges in deterministic order.
func (lf *LockFacts) OrderEdges() []*LockOrderEdge { return lf.order }

func (lf *LockFacts) build() {
	p, g := lf.pass, lf.g

	for _, l := range g.Launches {
		lf.launchSite[l.Go.Call] = true
		for _, e := range g.SiteEdges(l.Go.Call) {
			if e.Target != nil {
				lf.launched[e.Target] = true
			}
		}
	}
	for _, n := range g.Nodes {
		inspectOwn(n.Body(), func(x ast.Node) {
			if d, ok := x.(*ast.DeferStmt); ok {
				lf.deferSite[d.Call] = true
			}
		})
		regs := lockRegionsIn(p, n)
		lf.regions[n] = regs
		for _, r := range regs {
			if _, ok := lf.display[r.Key]; !ok {
				lf.display[r.Key] = r.Display
			}
		}
	}

	lf.buildEntry()
	lf.buildAcquired()
	lf.buildOrder()
}

// localHeld is the lockset contributed by n's own regions at pos,
// without the entry set.
func (lf *LockFacts) localHeld(n *CGNode, pos token.Pos) map[string]bool {
	out := map[string]bool{}
	for _, r := range lf.regions[n] {
		if r.Covers(pos) {
			out[r.Key] = true
		}
	}
	return out
}

// buildEntry computes the must-hold entry lockset per node: the
// intersection over every visible in-edge of the caller's lockset at
// the call site. Nodes whose callers are invisible — exported
// declarations, goroutine bodies, defer targets, nodes with no
// in-package in-edges — start (and stay) empty: claiming fewer held
// locks is the safe direction for a must analysis.
func (lf *LockFacts) buildEntry() {
	g := lf.g
	// nil means "unknown" (top); the loop only ever shrinks sets.
	entry := map[*CGNode]map[string]bool{}
	empty := func(n *CGNode) bool {
		if n.Fn != nil && n.Fn.Exported() {
			return true
		}
		if lf.launched[n] {
			return true
		}
		return len(g.EdgesTo(n)) == 0
	}
	for _, n := range g.Nodes {
		if empty(n) {
			entry[n] = map[string]bool{}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, n := range g.Nodes {
			if e := entry[n]; e != nil && len(e) == 0 {
				continue // already bottom
			}
			var acc map[string]bool // nil = top
			for _, e := range g.EdgesTo(n) {
				var contrib map[string]bool
				switch {
				case lf.launchSite[e.Site] || lf.deferSite[e.Site]:
					// A goroutine runs concurrently with the spawner's
					// locks; a deferred call runs at exit with unknowable
					// lock state. Neither may assume anything held.
					contrib = map[string]bool{}
				default:
					ce := entry[e.Caller]
					if ce == nil {
						continue // caller still unknown: no constraint yet
					}
					contrib = lf.localHeld(e.Caller, e.Site.Pos())
					for k := range ce {
						contrib[k] = true
					}
				}
				if acc == nil {
					acc = contrib
				} else {
					for k := range acc {
						if !contrib[k] {
							delete(acc, k)
						}
					}
				}
			}
			if acc == nil {
				continue // every caller unknown (cycle): stay top
			}
			if prev := entry[n]; prev == nil || len(prev) != len(acc) {
				entry[n] = acc
				changed = true
			}
		}
	}
	for _, n := range g.Nodes {
		if entry[n] == nil {
			entry[n] = map[string]bool{} // pure cycles resolve to bottom
		}
	}
	lf.entry = entry
}

// buildAcquired computes the may-acquire summary bottom-up: direct
// regions union the summaries of every non-launch callee.
func (lf *LockFacts) buildAcquired() {
	g := lf.g
	acq := map[*CGNode]map[string]bool{}
	for _, n := range g.Nodes {
		s := map[string]bool{}
		for _, r := range lf.regions[n] {
			s[r.Key] = true
		}
		acq[n] = s
	}
	for changed := true; changed; {
		changed = false
		for _, n := range g.Nodes {
			for _, e := range g.EdgesFrom(n) {
				if e.Target == nil || lf.launchSite[e.Site] {
					continue
				}
				for k := range acq[e.Target] {
					if !acq[n][k] {
						acq[n][k] = true
						changed = true
					}
				}
			}
		}
	}
	lf.acquired = acq
}

// shortPos renders a position as base-filename:line for why steps
// (module-root-relative paths are the CLI's business; base names keep
// the steps stable and short).
func (lf *LockFacts) shortPos(pos token.Pos) string {
	position := lf.pass.Fset.Position(pos)
	return fmt.Sprintf("%s:%d", filepath.Base(position.Filename), position.Line)
}

// buildOrder derives the lock-order graph. Two edge sources: a direct
// acquisition inside a region of another lock, and a call made while
// holding a lock into a function whose may-acquire summary contains
// another lock. Edges are deduplicated by (From, To), first witness
// wins; iteration order (nodes, then source order, then sorted held
// sets) makes the witness deterministic.
func (lf *LockFacts) buildOrder() {
	g := lf.g
	seen := map[[2]string]bool{}
	add := func(e *LockOrderEdge) {
		k := [2]string{e.From, e.To}
		if seen[k] {
			return
		}
		seen[k] = true
		lf.order = append(lf.order, e)
	}
	for _, n := range g.Nodes {
		for _, r := range lf.regions[n] {
			held := lf.HeldAt(n, r.Acquire.Pos())
			for _, from := range sortedKeys(held) {
				if from == r.Key {
					continue
				}
				add(&LockOrderEdge{
					From: from, To: r.Key, Node: n,
					Pos: r.Acquire.Pos(), End: r.Acquire.End(),
					Why: fmt.Sprintf("%s acquires %s at %s while %s is held",
						g.NodeName(n), lf.Display(r.Key), lf.shortPos(r.Acquire.Pos()), lf.Display(from)),
				})
			}
		}
		for _, e := range g.EdgesFrom(n) {
			if e.Target == nil || lf.launchSite[e.Site] {
				continue
			}
			held := lf.HeldAt(n, e.Site.Pos())
			if len(held) == 0 {
				continue
			}
			callee := g.NodeName(e.Target)
			if e.Callee != nil {
				callee = g.FuncName(e.Callee)
			}
			for _, to := range sortedKeys(lf.acquired[e.Target]) {
				if held[to] {
					continue
				}
				for _, from := range sortedKeys(held) {
					if from == to {
						continue
					}
					add(&LockOrderEdge{
						From: from, To: to, Node: n,
						Pos: e.Site.Pos(), End: e.Site.End(),
						Why: fmt.Sprintf("%s calls %s at %s while %s is held; %s acquires %s",
							g.NodeName(n), callee, lf.shortPos(e.Site.Pos()), lf.Display(from), callee, lf.Display(to)),
					})
				}
			}
		}
	}
}

// OrderCycles returns the cycles of the lock-order graph as edge
// chains (edge i's To is edge i+1's From, and the last edge returns to
// the first's From). One cycle is reported per distinct key set; for
// each starting edge the shortest return path is used, so the common
// two-lock inversion yields exactly its two witnesses.
func (lf *LockFacts) OrderCycles() [][]*LockOrderEdge {
	next := map[string][]*LockOrderEdge{}
	for _, e := range lf.order {
		next[e.From] = append(next[e.From], e)
	}
	var cycles [][]*LockOrderEdge
	seenSet := map[string]bool{}
	for _, start := range lf.order {
		// BFS from start.To back to start.From.
		type pathNode struct {
			key string
			via []*LockOrderEdge
		}
		visited := map[string]bool{start.To: true}
		queue := []pathNode{{key: start.To, via: []*LockOrderEdge{start}}}
		var cycle []*LockOrderEdge
		for len(queue) > 0 && cycle == nil {
			cur := queue[0]
			queue = queue[1:]
			for _, e := range next[cur.key] {
				via := append(append([]*LockOrderEdge{}, cur.via...), e)
				if e.To == start.From {
					cycle = via
					break
				}
				if !visited[e.To] {
					visited[e.To] = true
					queue = append(queue, pathNode{key: e.To, via: via})
				}
			}
		}
		if cycle == nil {
			continue
		}
		keys := map[string]bool{}
		for _, e := range cycle {
			keys[e.From] = true
		}
		sig := fmt.Sprint(sortedKeys(keys))
		if seenSet[sig] {
			continue
		}
		seenSet[sig] = true
		cycles = append(cycles, cycle)
	}
	return cycles
}

// sortedKeys returns the keys of a string set in sorted order, for
// deterministic iteration.
func sortedKeys(s map[string]bool) []string {
	out := make([]string, 0, len(s))
	for k := range s {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
