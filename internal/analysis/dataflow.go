package analysis

// SSA-lite intra-procedural dataflow: def-use chains and reaching
// definitions computed directly over go/ast + go/types, with no
// x/tools dependency. The engine deliberately stops short of full SSA —
// no phi nodes, no control-flow graph — because the checkers built on
// it ask questions that positional def-use chains answer precisely
// enough: "does this value derive from a map-ranged key?", "is this
// error overwritten before it is read?", "does this seed flow from
// time.Now?". Where control flow would matter (defs in sibling
// branches), the queries are conservative: dead-store detection only
// fires for consecutive definitions in the same block, and taint
// queries union over all definitions of a variable.
//
// The unit of analysis is the top-level function declaration; function
// literals nested inside it share the same FuncInfo, because closures
// read and write the enclosing function's variables and the checkers
// need to see that flow (a goroutine capturing the spawner's *rand.Rand
// is exactly the bug class seed-flow hunts).

import (
	"go/ast"
	"go/token"
	"go/types"
)

// DefKind classifies how a definition produces its value.
type DefKind int

const (
	// DefAssign is x = rhs or x := rhs (including multi-value forms,
	// where RHS is the producing call).
	DefAssign DefKind = iota
	// DefCompound is x += rhs, x *= rhs, x++, …: the new value is
	// computed from the previous one.
	DefCompound
	// DefZero is var x T with no initializer.
	DefZero
	// DefParam is a parameter, receiver, or named result.
	DefParam
	// DefRangeKey is the key variable of a range statement; RHS is the
	// ranged container.
	DefRangeKey
	// DefRangeValue is the value variable of a range statement; RHS is
	// the ranged container.
	DefRangeValue
)

// Def is one definition site of a local variable.
type Def struct {
	Ident *ast.Ident // the defining occurrence
	RHS   ast.Expr   // producing expression; nil for DefZero/DefParam; the ranged container for range kinds
	Kind  DefKind
	Stmt  ast.Node       // the defining statement (AssignStmt, IncDecStmt, RangeStmt, ValueSpec, Field)
	Block *ast.BlockStmt // innermost enclosing block; nil for params
}

// FuncInfo holds def-use chains for one top-level function declaration,
// including everything inside nested function literals.
type FuncInfo struct {
	Pass *Pass
	Decl *ast.FuncDecl
	// Defs maps each function-local variable to its definition sites in
	// source order.
	Defs map[*types.Var][]Def
	// Uses maps each function-local variable to its read occurrences in
	// source order. Pure stores (the x of x = v) are excluded; compound
	// assignments and ++/-- count as both a use and a def.
	Uses map[*types.Var][]*ast.Ident
	// ParamObjs is the set of parameter/receiver/result objects of the
	// declaration and of every nested function literal. A value held in
	// a parameter was produced by a caller the engine cannot see.
	ParamObjs map[*types.Var]bool
}

// FuncInfos returns the dataflow view of every top-level function in
// the pass, memoized: checkers sharing a Pass share the analysis.
func (p *Pass) FuncInfos() []*FuncInfo {
	if p.funcs != nil {
		return p.funcs
	}
	var out []*FuncInfo
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			out = append(out, analyzeFunc(p, fn))
		}
	}
	if out == nil {
		out = []*FuncInfo{}
	}
	p.funcs = out
	return out
}

// FuncInfoAt returns the FuncInfo whose declaration contains pos, or
// nil for positions outside any function body (package-level
// initializers).
func (p *Pass) FuncInfoAt(pos token.Pos) *FuncInfo {
	for _, fi := range p.FuncInfos() {
		if fi.Decl.Pos() <= pos && pos <= fi.Decl.End() {
			return fi
		}
	}
	return nil
}

// analyzeFunc builds the def-use chains for one declaration.
func analyzeFunc(p *Pass, fn *ast.FuncDecl) *FuncInfo {
	fi := &FuncInfo{
		Pass:      p,
		Decl:      fn,
		Defs:      map[*types.Var][]Def{},
		Uses:      map[*types.Var][]*ast.Ident{},
		ParamObjs: map[*types.Var]bool{},
	}
	stores := map[*ast.Ident]bool{} // pure-store occurrences, excluded from Uses

	addDef := func(id *ast.Ident, d Def) {
		obj := fi.localVarOfDef(id)
		if obj == nil {
			return
		}
		d.Ident = id
		fi.Defs[obj] = append(fi.Defs[obj], d)
	}

	declParams := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if obj, ok := p.Info.Defs[name].(*types.Var); ok && obj != nil {
					fi.ParamObjs[obj] = true
					fi.Defs[obj] = append(fi.Defs[obj], Def{Ident: name, Kind: DefParam, Stmt: f})
				}
			}
		}
	}
	declParams(fn.Recv)
	declParams(fn.Type.Params)
	declParams(fn.Type.Results)

	// walk records definitions, tracking the innermost enclosing block.
	var walk func(n ast.Node, blk *ast.BlockStmt)
	walk = func(n ast.Node, blk *ast.BlockStmt) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.BlockStmt:
				for _, st := range s.List {
					walk(st, s)
				}
				return false
			case *ast.FuncLit:
				declParams(s.Type.Params)
				declParams(s.Type.Results)
				walk(s.Body, blk)
				return false
			case *ast.AssignStmt:
				switch s.Tok {
				case token.ASSIGN, token.DEFINE:
					for i, lhs := range s.Lhs {
						id, ok := lhs.(*ast.Ident)
						if !ok {
							continue
						}
						// Pure store either way: a reused variable in a :=
						// resolves through Info.Uses, but the occurrence
						// still only writes.
						stores[id] = true
						rhs := s.Rhs[0]
						if len(s.Rhs) == len(s.Lhs) {
							rhs = s.Rhs[i]
						}
						addDef(id, Def{RHS: rhs, Kind: DefAssign, Stmt: s, Block: blk})
					}
				default: // +=, -=, *=, /=, …
					if id, ok := s.Lhs[0].(*ast.Ident); ok {
						addDef(id, Def{RHS: s.Rhs[0], Kind: DefCompound, Stmt: s, Block: blk})
					}
				}
			case *ast.IncDecStmt:
				if id, ok := s.X.(*ast.Ident); ok {
					addDef(id, Def{Kind: DefCompound, Stmt: s, Block: blk})
				}
			case *ast.ValueSpec:
				for i, name := range s.Names {
					d := Def{Kind: DefZero, Stmt: s, Block: blk}
					if len(s.Values) > 0 {
						d.Kind = DefAssign
						d.RHS = s.Values[0]
						if len(s.Values) == len(s.Names) {
							d.RHS = s.Values[i]
						}
					}
					addDef(name, d)
				}
			case *ast.RangeStmt:
				if id, ok := s.Key.(*ast.Ident); ok {
					if s.Tok == token.ASSIGN {
						stores[id] = true
					}
					addDef(id, Def{RHS: s.X, Kind: DefRangeKey, Stmt: s, Block: blk})
				}
				if id, ok := s.Value.(*ast.Ident); ok {
					if s.Tok == token.ASSIGN {
						stores[id] = true
					}
					addDef(id, Def{RHS: s.X, Kind: DefRangeValue, Stmt: s, Block: blk})
				}
			}
			return true
		})
	}
	walk(fn.Body, fn.Body)

	// Uses: every read occurrence of a function-local variable.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || stores[id] {
			return true
		}
		if obj, ok := p.Info.Uses[id].(*types.Var); ok && fi.isLocal(obj) {
			fi.Uses[obj] = append(fi.Uses[obj], id)
		}
		return true
	})
	return fi
}

// isLocal reports whether obj is declared within the function (params
// included, package-level variables excluded).
func (fi *FuncInfo) isLocal(obj *types.Var) bool {
	return obj != nil && !obj.IsField() &&
		fi.Decl.Pos() <= obj.Pos() && obj.Pos() <= fi.Decl.End()
}

// localVarOfDef resolves a defining identifier (:= or = LHS) to its
// local variable object.
func (fi *FuncInfo) localVarOfDef(id *ast.Ident) *types.Var {
	if id.Name == "_" {
		return nil
	}
	if obj, ok := fi.Pass.Info.Defs[id].(*types.Var); ok && fi.isLocal(obj) {
		return obj
	}
	if obj, ok := fi.Pass.Info.Uses[id].(*types.Var); ok && fi.isLocal(obj) {
		return obj
	}
	return nil
}

// LocalVar resolves an expression to the function-local variable it
// names, unwrapping parentheses; nil if it is not a plain local.
func (fi *FuncInfo) LocalVar(e ast.Expr) *types.Var {
	for {
		pe, ok := e.(*ast.ParenExpr)
		if !ok {
			break
		}
		e = pe.X
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	if obj, ok := fi.Pass.Info.Uses[id].(*types.Var); ok && fi.isLocal(obj) {
		return obj
	}
	return nil
}

// FlowsFrom reports whether the value of root may derive from a node
// satisfying pred, following local def-use chains backwards through
// assignments, compound assignments, and range statements. pred is
// offered every expression in the transitive producing set and every
// defining statement on the chain (so callers can treat `x += y` itself
// as a computation). Each variable is resolved at most once, making the
// walk linear and cycle-safe.
func (fi *FuncInfo) FlowsFrom(root ast.Expr, pred func(n ast.Node) bool) bool {
	seen := map[*types.Var]bool{}
	found := false
	var visit func(n ast.Node)
	visit = func(n ast.Node) {
		if found || n == nil {
			return
		}
		ast.Inspect(n, func(n ast.Node) bool {
			if found || n == nil {
				return false
			}
			if pred(n) {
				found = true
				return false
			}
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj, okUse := fi.Pass.Info.Uses[id].(*types.Var)
			if !okUse || !fi.isLocal(obj) || seen[obj] {
				return true
			}
			seen[obj] = true
			for _, d := range fi.Defs[obj] {
				if found {
					break
				}
				if d.Stmt != nil && pred(d.Stmt) {
					found = true
					break
				}
				if d.RHS != nil {
					visit(d.RHS)
				}
			}
			return !found
		})
	}
	visit(root)
	return found
}

// UsedBetween reports whether v has a read occurrence strictly inside
// (after, before).
func (fi *FuncInfo) UsedBetween(v *types.Var, after, before token.Pos) bool {
	for _, u := range fi.Uses[v] {
		if u.Pos() > after && u.Pos() < before {
			return true
		}
	}
	return false
}

// UsedAfter reports whether v has a read occurrence at or after pos.
func (fi *FuncInfo) UsedAfter(v *types.Var, pos token.Pos) bool {
	for _, u := range fi.Uses[v] {
		if u.Pos() >= pos {
			return true
		}
	}
	return false
}
