package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// LockHeldIO flags mutex regions that span operations with unbounded
// latency: file IO, time.Sleep, fault.Here failpoints (an injected
// fault may sleep or panic while the lock is held), and channel
// operations that can block. Every other goroutine contending for the
// lock stalls behind the slow operation — the serve path's tail
// latency and the checkpoint writer's deadlock hazard from PR 4/5.
//
// The lock region is computed positionally inside one function body:
// from a Lock/RLock call to the first matching positional Unlock (or
// to the end of the body when the unlock is deferred or absent).
// Whether an operation blocks is answered interprocedurally: a call
// into an in-package function inherits "performs file IO" facts
// bottom-up through the call graph. Channel operations inside a select
// that has a default case are exempt — that is the non-blocking idiom
// the serve admission path uses deliberately.
type LockHeldIO struct{}

// Name implements Checker.
func (LockHeldIO) Name() string { return "lock-held-io" }

// Doc implements Checker.
func (LockHeldIO) Doc() string {
	return "mutex must not be held across file IO, sleeps, failpoints, or blocking channel ops"
}

// blockingOp is one potentially unbounded operation in a function body.
type blockingOp struct {
	pos, end token.Pos
	why      string
}

// mutexOp is one Lock/RLock/Unlock/RUnlock call.
type mutexOp struct {
	call *ast.CallExpr
	name string
	recv ast.Expr // receiver expression, e.g. the s.mu of s.mu.Lock()
}

// Run implements Checker.
func (LockHeldIO) Run(p *Pass) []Finding {
	g := p.CallGraph()

	// Per-node direct blocking operations, then the bottom-up "reaches a
	// blocking operation" fact with its root cause.
	opsByNode := map[*CGNode][]blockingOp{}
	why := map[*CGNode]string{}
	for _, n := range g.Nodes {
		ops := blockingOpsIn(p, n.Body())
		opsByNode[n] = ops
		if len(ops) > 0 {
			why[n] = ops[0].why
		}
	}
	for changed := true; changed; {
		changed = false
		for _, n := range g.Nodes {
			if why[n] != "" {
				continue
			}
			for _, e := range g.EdgesFrom(n) {
				if e.Target != nil && why[e.Target] != "" {
					why[n] = why[e.Target]
					changed = true
					break
				}
			}
		}
	}

	// Calls that only schedule work (go f(), defer f()) do not block the
	// region they appear in.
	asyncCalls := map[*ast.CallExpr]bool{}
	for _, l := range g.Launches {
		asyncCalls[l.Go.Call] = true
	}

	// Defer sites only schedule; they never execute inside the region.
	lf := p.LockFacts()
	for _, n := range g.Nodes {
		inspectOwn(n.Body(), func(x ast.Node) {
			if d, ok := x.(*ast.DeferStmt); ok {
				asyncCalls[d.Call] = true
			}
		})
	}

	var out []Finding
	for _, n := range g.Nodes {
		// Positional lock regions come from the shared lockset engine
		// (lockRegionsIn, generalized out of this checker).
		for _, r := range lf.Regions(n) {
			for _, op := range opsByNode[n] {
				if r.Covers(op.pos) {
					out = append(out, p.rangeFinding("lock-held-io", op.pos, op.end,
						"%s is held across %s; release the lock first", r.Display, op.why))
				}
			}
			flaggedSite := map[*ast.CallExpr]bool{}
			for _, e := range g.EdgesFrom(n) {
				site := e.Site
				if !r.Covers(site.Pos()) || asyncCalls[site] || flaggedSite[site] {
					continue
				}
				if e.Target == nil || why[e.Target] == "" {
					continue
				}
				flaggedSite[site] = true
				callee := g.NodeName(e.Target)
				if e.Callee != nil {
					callee = g.FuncName(e.Callee)
				}
				out = append(out, p.rangeFinding("lock-held-io", site.Pos(), site.End(),
					"%s is held across a call to %s, which reaches %s; release the lock first", r.Display, callee, why[e.Target]))
			}
		}
	}
	return out
}

// blockingOpsIn scans one body (nested literals excluded — they are
// their own call-graph nodes) for directly blocking operations.
func blockingOpsIn(p *Pass, body *ast.BlockStmt) []blockingOp {
	var ops []blockingOp
	async := map[*ast.CallExpr]bool{}
	var walk func(x ast.Node)
	walk = func(x ast.Node) {
		ast.Inspect(x, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.GoStmt:
				async[s.Call] = true
			case *ast.DeferStmt:
				async[s.Call] = true
			case *ast.SelectStmt:
				hasDefault := false
				for _, c := range s.Body.List {
					if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
						hasDefault = true
					}
				}
				if !hasDefault {
					ops = append(ops, blockingOp{s.Pos(), s.Body.Lbrace, "a select with no default case (may block)"})
				}
				// Clause bodies run after the (possibly non-blocking)
				// selection; the comm statements themselves are accounted
				// to the select above.
				for _, c := range s.Body.List {
					if cc, ok := c.(*ast.CommClause); ok {
						for _, st := range cc.Body {
							walk(st)
						}
					}
				}
				return false
			case *ast.SendStmt:
				ops = append(ops, blockingOp{s.Pos(), s.End(), "a channel send (may block)"})
			case *ast.UnaryExpr:
				if s.Op == token.ARROW {
					ops = append(ops, blockingOp{s.Pos(), s.End(), "a channel receive (may block)"})
				}
			case *ast.CallExpr:
				if async[s] {
					return true // go/defer: scheduled, not executed here
				}
				if why := blockingCallWhy(p, s); why != "" {
					ops = append(ops, blockingOp{s.Pos(), s.End(), why})
				}
			}
			return true
		})
	}
	walk(body)
	return ops
}

// blockingCallWhy classifies a direct call as a blocking operation, or
// returns "".
func blockingCallWhy(p *Pass, call *ast.CallExpr) string {
	if pkg, name, ok := qualifiedCall(p.Info, call); ok {
		switch {
		case pkg == "os":
			return "file IO (os." + name + ")"
		case pkg == "time" && name == "Sleep":
			return "time.Sleep"
		case strings.HasSuffix(pkg, "internal/fault") && name == "Here":
			return "a fault.Here failpoint (an injected fault may sleep or panic)"
		}
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if s, ok := p.Info.Selections[sel]; ok {
			t := s.Recv()
			if ptr, isPtr := t.(*types.Pointer); isPtr {
				t = ptr.Elem()
			}
			if named, isNamed := t.(*types.Named); isNamed {
				obj := named.Obj()
				if obj.Pkg() != nil && obj.Pkg().Path() == "os" && obj.Name() == "File" {
					return "file IO ((*os.File)." + sel.Sel.Name + ")"
				}
			}
		}
	}
	return ""
}

// mutexOpOf recognizes sync.Mutex/RWMutex lock-state calls, including
// through embedded mutexes. The key is the receiver expression text, so
// s.mu.Lock() pairs with s.mu.Unlock().
func mutexOpOf(p *Pass, call *ast.CallExpr) (mutexOp, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return mutexOp{}, false
	}
	name := sel.Sel.Name
	switch name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return mutexOp{}, false
	}
	s, ok := p.Info.Selections[sel]
	if !ok {
		return mutexOp{}, false
	}
	fn, ok := s.Obj().(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return mutexOp{}, false
	}
	return mutexOp{call: call, name: name, recv: sel.X}, true
}
