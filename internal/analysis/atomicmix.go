package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicPlainMix flags variables that are accessed both through the
// sync/atomic functions and by plain loads or stores — the exact shape
// of the pre-PR 1 tensor.maxWorkers race: atomic on the hot path, a
// plain write in a setter, and the race detector only catches it when
// both paths happen to run. Mixing the two defeats the atomics: a plain
// access participates in no happens-before edge.
//
// Known-single-threaded contexts are exempt: occurrences inside init
// functions, composite literals (construction before publication), and
// address-taking for purposes other than the atomic calls themselves
// (which are recognized by their call ranges).
type AtomicPlainMix struct{}

// Name implements Checker.
func (AtomicPlainMix) Name() string { return "atomic-plain-mix" }

// Doc implements Checker.
func (AtomicPlainMix) Doc() string {
	return "variable accessed via sync/atomic must not also be read or written plainly"
}

// Run implements Checker.
func (AtomicPlainMix) Run(p *Pass) []Finding {
	type span struct{ lo, hi token.Pos }
	var atomicRanges []span
	targets := map[*types.Var]token.Position{} // var -> first atomic site

	for _, file := range p.Files {
		ast.Inspect(file, func(x ast.Node) bool {
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkg, _, okQ := qualifiedCall(p.Info, call)
			if !okQ || pkg != "sync/atomic" {
				return true
			}
			atomicRanges = append(atomicRanges, span{call.Pos(), call.End()})
			for _, arg := range call.Args {
				u, okU := ast.Unparen(arg).(*ast.UnaryExpr)
				if !okU || u.Op != token.AND {
					continue
				}
				if v := plainVarOf(p, u.X); v != nil {
					if _, seen := targets[v]; !seen {
						targets[v] = p.Fset.Position(call.Pos())
					}
				}
			}
			return true
		})
	}
	if len(targets) == 0 {
		return nil
	}

	inAtomic := func(pos token.Pos) bool {
		for _, r := range atomicRanges {
			if r.lo <= pos && pos < r.hi {
				return true
			}
		}
		return false
	}

	var out []Finding
	for _, file := range p.Files {
		parents := parentMap(file)
		ast.Inspect(file, func(x ast.Node) bool {
			switch s := x.(type) {
			case *ast.FuncDecl:
				if s.Name.Name == "init" && s.Recv == nil {
					return false // single-threaded by the language spec
				}
				return true
			case *ast.CompositeLit:
				return false // construction before publication
			case *ast.Ident:
				v, ok := p.Info.Uses[s].(*types.Var)
				if !ok {
					return true
				}
				first, isTarget := targets[v]
				if !isTarget || inAtomic(s.Pos()) {
					return true
				}
				// Climb the selector chain (c.n -> the whole SelectorExpr)
				// and skip address-taking: &v outside an atomic call is a
				// hand-off, not a plain access.
				var e ast.Node = s
				for {
					if sel, okSel := parents[e].(*ast.SelectorExpr); okSel && sel.Sel == e {
						e = sel
						continue
					}
					if pe, okPar := parents[e].(*ast.ParenExpr); okPar {
						e = pe
						continue
					}
					break
				}
				if u, okU := parents[e].(*ast.UnaryExpr); okU && u.Op == token.AND {
					return true
				}
				out = append(out, p.finding("atomic-plain-mix", s.Pos(),
					"%s is accessed atomically (e.g. at %s:%d) but read/written plainly here; use sync/atomic on every access",
					v.Name(), shortFile(first.Filename), first.Line))
			}
			return true
		})
	}
	return out
}

// plainVarOf resolves an ident or selector to the variable it names.
func plainVarOf(p *Pass, e ast.Expr) *types.Var {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if v, ok := p.Info.Uses[x].(*types.Var); ok {
			return v
		}
	case *ast.SelectorExpr:
		if sel, ok := p.Info.Selections[x]; ok {
			if v, ok := sel.Obj().(*types.Var); ok {
				return v
			}
		} else if v, ok := p.Info.Uses[x.Sel].(*types.Var); ok {
			return v
		}
	}
	return nil
}

// shortFile trims a path to its base name for compact messages.
func shortFile(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' || path[i] == '\\' {
			return path[i+1:]
		}
	}
	return path
}
