package analysis

import (
	"go/ast"
	"go/types"
	"testing"
)

// findInfo returns the FuncInfo for the named function in the dataflow
// fixture.
func findInfo(t *testing.T, p *Pass, name string) *FuncInfo {
	t.Helper()
	for _, fi := range p.FuncInfos() {
		if fi.Decl.Name.Name == name {
			return fi
		}
	}
	t.Fatalf("no FuncInfo for %s", name)
	return nil
}

// varByName resolves a local variable of the function by name.
func varByName(t *testing.T, fi *FuncInfo, name string) *types.Var {
	t.Helper()
	for obj := range fi.Defs {
		if obj.Name() == name {
			return obj
		}
	}
	t.Fatalf("no local %q in %s", name, fi.Decl.Name.Name)
	return nil
}

func TestDefUseChains(t *testing.T) {
	loader, pkg := loadFixture(t, "dataflow")
	pass := pkg.Pass(loader.Fset)
	fi := findInfo(t, pass, "chain")

	b := varByName(t, fi, "b")
	defs := fi.Defs[b]
	if len(defs) != 3 {
		t.Fatalf("defs of b = %d, want 3 (:=, range-body =, +=)", len(defs))
	}
	if defs[0].Kind != DefAssign || defs[1].Kind != DefAssign || defs[2].Kind != DefCompound {
		t.Errorf("def kinds of b = %v %v %v, want DefAssign DefAssign DefCompound",
			defs[0].Kind, defs[1].Kind, defs[2].Kind)
	}
	// b is read twice: strconv.Itoa(b), and b += 3 (a compound
	// assignment reads the old value). The pure store b = v does not
	// count.
	if got := len(fi.Uses[b]); got != 2 {
		t.Errorf("uses of b = %d, want 2", got)
	}

	v := varByName(t, fi, "v")
	if len(fi.Defs[v]) != 1 || fi.Defs[v][0].Kind != DefRangeValue {
		t.Errorf("v should have one DefRangeValue def, got %+v", fi.Defs[v])
	}
	k := varByName(t, fi, "k")
	if len(fi.Defs[k]) != 1 || fi.Defs[k][0].Kind != DefRangeKey {
		t.Errorf("k should have one DefRangeKey def, got %+v", fi.Defs[k])
	}
}

func TestParamObjs(t *testing.T) {
	loader, pkg := loadFixture(t, "dataflow")
	pass := pkg.Pass(loader.Fset)
	fi := findInfo(t, pass, "params")

	for _, name := range []string{"x", "ys", "out"} {
		if !fi.ParamObjs[varByName(t, fi, name)] {
			t.Errorf("%s should be in ParamObjs", name)
		}
	}
	y := varByName(t, fi, "y")
	if fi.ParamObjs[y] {
		t.Errorf("range variable y must not be in ParamObjs")
	}
}

func TestClosureSharesFuncInfo(t *testing.T) {
	loader, pkg := loadFixture(t, "dataflow")
	pass := pkg.Pass(loader.Fset)
	fi := findInfo(t, pass, "closure")

	total := varByName(t, fi, "total")
	// total := 0 outside, total += d inside the literal: both defs land
	// in the same FuncInfo because closures share the variable.
	if got := len(fi.Defs[total]); got != 2 {
		t.Errorf("defs of total = %d, want 2 (outer := and closure +=)", got)
	}
	d := varByName(t, fi, "d")
	if !fi.ParamObjs[d] {
		t.Errorf("closure parameter d should be in ParamObjs")
	}
}

// returnExpr fetches the i-th result of the last return in fn.
func returnExpr(fi *FuncInfo, i int) ast.Expr {
	var res ast.Expr
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		if r, ok := n.(*ast.ReturnStmt); ok && len(r.Results) > i {
			res = r.Results[i]
		}
		return true
	})
	return res
}

func TestFlowsFrom(t *testing.T) {
	loader, pkg := loadFixture(t, "dataflow")
	pass := pkg.Pass(loader.Fset)
	fi := findInfo(t, pass, "chain")

	ret := returnExpr(fi, 0) // s
	if ret == nil {
		t.Fatal("no return expression in chain")
	}
	isIntLit := func(n ast.Node) bool {
		bl, ok := n.(*ast.BasicLit)
		return ok && bl.Value == "1"
	}
	// s <- strconv.Itoa(b) <- b <- a + 2 <- a <- 1: transitive.
	if !fi.FlowsFrom(ret, isIntLit) {
		t.Errorf("s should flow from the literal 1 via a and b")
	}
	// s must NOT flow from the map range (b's range def happens after s
	// is built, but positional def-use is flow-insensitive by design, so
	// check a predicate that never matches instead: the map m feeds b,
	// hence s under union-over-defs semantics).
	neverMatches := func(n ast.Node) bool {
		bl, ok := n.(*ast.BasicLit)
		return ok && bl.Value == `"nope"`
	}
	if fi.FlowsFrom(ret, neverMatches) {
		t.Errorf("s must not flow from a literal that is not in the fixture")
	}
}

func TestUsedBetween(t *testing.T) {
	loader, pkg := loadFixture(t, "dataflow")
	pass := pkg.Pass(loader.Fset)
	fi := findInfo(t, pass, "chain")

	b := varByName(t, fi, "b")
	defs := fi.Defs[b]
	// b is read (by strconv.Itoa) between its first def and its second.
	if !fi.UsedBetween(b, defs[0].Stmt.End(), defs[1].Stmt.Pos()) {
		t.Errorf("b should be used between def 0 and def 1")
	}
	// ...but not between the second and third defs.
	if fi.UsedBetween(b, defs[1].Stmt.End(), defs[2].Stmt.Pos()) {
		t.Errorf("b should not be used between def 1 and def 2")
	}
	if !fi.UsedAfter(b, defs[0].Stmt.End()) {
		t.Errorf("b should be used after its first def")
	}
}

func TestFuncInfoAt(t *testing.T) {
	loader, pkg := loadFixture(t, "dataflow")
	pass := pkg.Pass(loader.Fset)
	fi := findInfo(t, pass, "params")
	if got := pass.FuncInfoAt(fi.Decl.Body.Pos()); got != fi {
		t.Errorf("FuncInfoAt(body of params) = %v, want the params FuncInfo", got)
	}
	if got := pass.FuncInfoAt(0); got != nil {
		t.Errorf("FuncInfoAt(NoPos) = %v, want nil", got)
	}
}

func TestFuncInfosMemoized(t *testing.T) {
	loader, pkg := loadFixture(t, "dataflow")
	pass := pkg.Pass(loader.Fset)
	a := pass.FuncInfos()
	b := pass.FuncInfos()
	if len(a) == 0 || len(a) != len(b) || a[0] != b[0] {
		t.Errorf("FuncInfos should memoize and return identical slices")
	}
}
